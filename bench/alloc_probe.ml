(* Engine-only probe: schedules self-rescheduling callbacks with a
   network-like delay mix and reports words allocated and wall time per
   event, isolating Sim/Equeue overhead from protocol allocation. *)

open Sss_sim

let () =
  let mode = if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 2 in
  Sim.tune_gc ();
  let sim = Sim.create () in
  let n = ref 0 in
  let limit = 5_000_000 in
  (* xorshift for a deterministic latency-like mix *)
  let st = ref 0x1e3779b97f4a7c15 in
  let rand () =
    let x = !st in
    let x = x lxor (x lsl 13) in
    let x = x lxor (x lsr 7) in
    let x = x lxor (x lsl 17) in
    st := x;
    float_of_int (x land 0xffff) /. 65536.0
  in
  (* 1024 self-rescheduling chains keep the queue at a steady fig3-like
     occupancy; each event schedules exactly one successor. *)
  let rec step () =
    incr n;
    if !n < limit then begin
      (* mode selects the delay profile so engine paths can be measured in
         isolation: 0 = delay-0 wakeups (front fast path), 1 = short hops
         (buckets), 2 = network mix incl. far-future timers (overflow) *)
      let r = rand () in
      let delay =
        match mode with
        | 0 -> 0.0
        | 1 -> 30e-6 *. rand ()
        | _ ->
            if r < 0.80 then 30e-6 *. rand ()
            else if r < 0.95 then 1e-4 +. (9e-4 *. rand ())
            else 1e-3 +. (49e-3 *. rand ())
      in
      (* the zero-allocation fn/arg path — the same API the protocol hot
         paths use, so a regression there shows up in words/event here *)
      Sim.schedule_apply sim ~delay step ()
    end
  in
  for _ = 1 to 1024 do
    Sim.schedule_apply sim ~delay:(1e-5 *. rand ()) step ()
  done;
  let w0 = Gc.allocated_bytes () in
  let t0 = (Unix.gettimeofday () [@wallclock_ok]) in
  Sim.run sim;
  let t1 = (Unix.gettimeofday () [@wallclock_ok]) in
  let w1 = Gc.allocated_bytes () in
  let events = Sim.events_processed sim in
  let words = (w1 -. w0) /. float_of_int (Sys.word_size / 8) in
  Printf.printf "events          %d\n" events;
  Printf.printf "events/sec      %.0f\n" (float_of_int events /. (t1 -. t0));
  Printf.printf "words/event     %.2f\n" (words /. float_of_int events)
