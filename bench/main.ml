(* Benchmark harness.

   Usage:  dune exec bench/main.exe -- [--scale full|quick|smoke]
             [--json FILE] [--observe] [targets]

   Targets are the paper's evaluation artefacts: fig3 fig4a fig4b fig5 fig6
   fig7 fig8 abort-rate (see DESIGN.md §3 for the mapping), plus `micro`
   (Bechamel micro-benchmarks of the core data structures).  With no target,
   everything runs.  Absolute throughput is simulator throughput; the shapes
   (orderings, ratios, crossovers) are what EXPERIMENTS.md compares against
   the paper.

   [--json FILE] additionally writes per-target simulator-performance
   metrics: wall-clock seconds, DES events executed and events/sec, virtual
   seconds simulated, and committed transactions per virtual second.  This
   is the measurement EXPERIMENTS.md's "Simulator performance" table is
   built from.  The report carries a "meta" block (schema version, scale,
   seed, config fingerprint) so regenerated files are comparable; see the
   schema note in EXPERIMENTS.md.

   [--observe] additionally runs one traced SSS cell (Config.observe = true)
   and emits its sss_obs metrics — printed, and embedded as a "metrics"
   object when [--json] is also given.  By the observer-effect contract
   (docs/OBSERVABILITY.md) tracing never changes the measured numbers. *)

open Sss_experiments.Experiments

(* ---------- micro benchmarks (Bechamel) ---------- *)

let micro_tests () =
  let open Bechamel in
  let open Sss_data in
  let n = 20 in
  let rng = Sss_sim.Prng.create ~seed:1 in
  let vc1 = Vclock.of_array (Array.init n (fun i -> i * 3)) in
  let vc2 = Vclock.of_array (Array.init n (fun i -> 50 - i)) in
  let zipf = Sss_workload.Zipf.create ~n:5000 ~theta:0.99 in
  let squeue = Squeue.create () in
  for i = 0 to 15 do
    Squeue.insert_read squeue ~txn:{ Ids.node = i mod 4; local = i } ~sid:(i * 7)
  done;
  let nlog = Nlog.create ~nodes:n ~node:0 in
  for i = 1 to 1000 do
    let vc = Vclock.set (Vclock.of_array (Array.init n (fun w -> i - (w mod 3)))) 0 i in
    Nlog.add nlog ~txn:{ Ids.node = 0; local = i } ~vc ~ws:[ i mod 50 ] ~at:(float_of_int i)
  done;
  let has_read = Array.make n false in
  has_read.(3) <- true;
  let bound = Vclock.of_array (Array.make n 500) in
  let store = Mvstore.create ~nodes:n in
  Mvstore.init_key store 1 ~value:"v0";
  for i = 1 to 32 do
    Mvstore.install store 1 ~value:"v"
      ~vc:(Vclock.set (Vclock.zero n) 0 i)
      ~writer:{ Ids.node = 0; local = i }
  done;
  [
    Test.make ~name:"vclock.max" (Staged.stage (fun () -> Vclock.max vc1 vc2));
    Test.make ~name:"vclock.leq" (Staged.stage (fun () -> Vclock.leq vc1 vc2));
    Test.make ~name:"zipf.sample" (Staged.stage (fun () -> Sss_workload.Zipf.sample zipf rng));
    Test.make ~name:"squeue.blocks_writer"
      (Staged.stage (fun () -> Squeue.blocks_writer squeue ~sid:60));
    Test.make ~name:"nlog.visible_max(unconstrained)"
      (Staged.stage (fun () ->
           Nlog.visible_max nlog ~has_read:(Array.make n false) ~bound ~cutoff:max_int));
    Test.make ~name:"nlog.visible_max(constrained)"
      (Staged.stage (fun () -> Nlog.visible_max nlog ~has_read ~bound ~cutoff:max_int));
    Test.make ~name:"mvstore.select"
      (Staged.stage (fun () ->
           Mvstore.select store 1 ~skip:(fun v -> Vclock.get v.Mvstore.vc 0 > 16)));
  ]

let run_micro () =
  let open Bechamel in
  Printf.printf "\n== Micro-benchmarks (core data structures) ==\n%!";
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) () in
  let tests = Test.make_grouped ~name:"micro" ~fmt:"%s %s" (micro_tests ()) in
  let raw = Benchmark.all cfg instances tests in
  let results =
    Analyze.merge ols instances (List.map (fun i -> Analyze.all ols i raw) instances)
  in
  Hashtbl.iter
    (fun _metric tbl ->
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some [ est ] -> Printf.printf "  %-42s %10.1f ns/op\n" name est
          | _ -> Printf.printf "  %-42s (no estimate)\n" name)
        tbl)
    results;
  print_newline ()

(* ---------- json report ---------- *)

type target_report = {
  target : string;
  wall_seconds : float;
  des_events : int;
  virtual_seconds : float;
  committed_txns : int;
  runs : int;
}

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (function
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* Deterministic fingerprint of the parameters every target derives from:
   same binary + same scale => same hash, so regenerated BENCH_*.json files
   are comparable (EXPERIMENTS.md "Report schema"). *)
let config_fingerprint scale =
  let p = base_params scale in
  Digest.to_hex
    (Digest.string
       (Printf.sprintf
          "nodes=%d;degree=%d;keys=%d;ro=%g;ro_ops=%d;locality=%g;clients=%d;warmup=%g;duration=%g;seed=%d;strict=%b;prio=%b;compress=%b"
          p.nodes p.degree p.keys p.ro_ratio p.ro_ops p.locality p.clients p.warmup p.duration
          p.seed p.strict p.priority_network p.compress))

let write_json file ~scale ~scale_v ~observe ~metrics reports =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf
       "{\n\
       \  \"scale\": \"%s\",\n\
       \  \"meta\": {\n\
       \    \"schema\": 2,\n\
       \    \"scale\": \"%s\",\n\
       \    \"seed\": %d,\n\
       \    \"config_md5\": \"%s\",\n\
       \    \"observe\": %b\n\
       \  },\n\
       \  \"targets\": ["
       scale scale (base_params scale_v).seed (config_fingerprint scale_v) observe);
  List.iteri
    (fun i r ->
      if i > 0 then Buffer.add_char buf ',';
      let events_per_sec =
        if r.wall_seconds > 0.0 then float_of_int r.des_events /. r.wall_seconds else 0.0
      in
      let virtual_tput =
        if r.virtual_seconds > 0.0 then float_of_int r.committed_txns /. r.virtual_seconds
        else 0.0
      in
      Buffer.add_string buf
        (Printf.sprintf
           "\n    {\n\
           \      \"target\": \"%s\",\n\
           \      \"wall_seconds\": %.3f,\n\
           \      \"des_events\": %d,\n\
           \      \"des_events_per_sec\": %.0f,\n\
           \      \"virtual_seconds\": %.6f,\n\
           \      \"committed_txns\": %d,\n\
           \      \"virtual_throughput_txns_per_vsec\": %.1f,\n\
           \      \"runs\": %d\n\
           \    }"
           (json_escape r.target) r.wall_seconds r.des_events events_per_sec
           r.virtual_seconds r.committed_txns virtual_tput r.runs))
    reports;
  Buffer.add_string buf "\n  ]";
  (match metrics with
  | Some m -> Buffer.add_string buf (Printf.sprintf ",\n  \"metrics\": %s" m)
  | None -> ());
  Buffer.add_string buf "\n}\n";
  let oc = open_out file in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.printf "\nwrote %s\n%!" file

(* ---------- dispatch ---------- *)

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let scale = ref Full in
  let json_file = ref None in
  let observe = ref false in
  let targets = ref [] in
  let rec parse = function
    | [] -> ()
    | "--scale" :: s :: rest ->
        (scale :=
           match s with
           | "full" -> Full
           | "quick" -> Quick
           | "smoke" -> Smoke
           | _ -> failwith ("unknown scale " ^ s));
        parse rest
    | "--json" :: f :: rest ->
        json_file := Some f;
        parse rest
    | "--observe" :: rest ->
        observe := true;
        parse rest
    | t :: rest ->
        targets := t :: !targets;
        parse rest
  in
  parse args;
  let targets =
    match List.rev !targets with
    | [] -> [ "fig3"; "fig4a"; "fig4b"; "fig5"; "fig6"; "fig7"; "fig8"; "abort-rate"; "ablation"; "skewed"; "micro" ]
    | ts -> ts
  in
  let scale = !scale in
  set_observe_all !observe;
  let scale_name = match scale with Full -> "full" | Quick -> "quick" | Smoke -> "smoke" in
  Printf.printf "SSS reproduction benchmarks (scale: %s)\n" scale_name;
  let reports = ref [] in
  List.iter
    (fun t ->
      reset_meters ();
      let start = Unix.gettimeofday () in
      let known = ref true in
      (match t with
      | "fig3" -> fig3 scale
      | "fig4a" -> fig4a scale
      | "fig4b" -> fig4b scale
      | "fig5" -> fig5 scale
      | "fig6" -> fig6 scale
      | "fig7" -> fig7 scale
      | "fig8" -> fig8 scale
      | "abort-rate" -> abort_rate scale
      | "ablation" -> ablation scale
      | "skewed" -> skewed scale
      | "all" -> all scale
      | "micro" -> run_micro ()
      | other ->
          known := false;
          Printf.eprintf "unknown target %s (skipped)\n" other);
      if !known then begin
        let wall = Unix.gettimeofday () -. start in
        let m = meters () in
        reports :=
          {
            target = t;
            wall_seconds = wall;
            des_events = m.des_events;
            virtual_seconds = m.virtual_seconds;
            committed_txns = m.committed_txns;
            runs = m.runs;
          }
          :: !reports
      end)
    targets;
  let metrics =
    if !observe then begin
      Printf.printf "\n== Observed metrics (traced SSS cell) ==\n%!";
      let m = observed_metrics scale in
      Printf.printf "%s\n%!" m;
      Some m
    end
    else None
  in
  match !json_file with
  | None -> ()
  | Some f ->
      write_json f ~scale:scale_name ~scale_v:scale ~observe:!observe ~metrics
        (List.rev !reports)
