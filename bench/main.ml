(* Benchmark harness.

   Usage:  dune exec bench/main.exe -- [--scale full|quick|smoke]
             [--json FILE] [--observe] [-j N|max] [--speedup] [--slo MS]
             [targets]

   Targets are the paper's evaluation artefacts: fig3 fig4a fig4b fig5 fig6
   fig7 fig8 abort-rate (see DESIGN.md §3 for the mapping), the extra
   experiments (ablation skewed durability saturation), plus `micro`
   (Bechamel micro-benchmarks of the core data structures).  With no target,
   everything runs.  Absolute throughput is simulator throughput; the shapes
   (orderings, ratios, crossovers) are what EXPERIMENTS.md compares against
   the paper.

   [--json FILE] additionally writes per-target simulator-performance
   metrics: wall-clock seconds, DES events executed and events/sec, virtual
   seconds simulated, and committed transactions per virtual second.  This
   is the measurement EXPERIMENTS.md's "Simulator performance" table is
   built from.  The report carries a "meta" block (schema version, scale,
   seed, config fingerprint) so regenerated files are comparable; see the
   schema note in EXPERIMENTS.md.

   [--observe] additionally runs one traced SSS cell (Config.observe = true)
   and emits its sss_obs metrics — printed, and embedded as a "metrics"
   object when [--json] is also given.  By the observer-effect contract
   (docs/OBSERVABILITY.md) tracing never changes the measured numbers.

   [-j N] fans the independent simulator runs behind each figure across N
   domains (sss_par pool; "max" = Pool.default_jobs).  Output — figure text
   and every deterministic JSON field — is byte-identical at any N; only
   wall-clock fields change.  The smoke.sh parallel gate pins this.
   [--speedup] additionally times a quiet -j1 baseline per figure target
   and records jobs + per-target speedup in a "parallel" JSON block.

   [--slo MS] sets the saturation figure's p99 sojourn SLO bound (default
   5 ms): each protocol reports the highest offered rate whose p99 still
   meets it, echoed as "slo_sustained_rates" in the JSON target. *)

open Sss_experiments.Experiments

(* ---------- micro benchmarks (Bechamel) ---------- *)

let micro_tests () =
  let open Bechamel in
  let open Sss_data in
  let n = 20 in
  let rng = Sss_sim.Prng.create ~seed:1 in
  let vc1 = Vclock.of_array (Array.init n (fun i -> i * 3)) in
  let vc2 = Vclock.of_array (Array.init n (fun i -> 50 - i)) in
  let zipf = Sss_workload.Zipf.create ~n:5000 ~theta:0.99 in
  let squeue = Squeue.create () in
  for i = 0 to 15 do
    Squeue.insert_read squeue ~txn:{ Ids.node = i mod 4; local = i } ~sid:(i * 7)
  done;
  let nlog = Nlog.create ~nodes:n ~node:0 in
  for i = 1 to 1000 do
    let vc = Vclock.set (Vclock.of_array (Array.init n (fun w -> i - (w mod 3)))) 0 i in
    Nlog.add nlog ~txn:{ Ids.node = 0; local = i } ~vc ~ws:[ i mod 50 ] ~at:(float_of_int i)
  done;
  let has_read = Array.make n false in
  has_read.(3) <- true;
  let bound = Vclock.of_array (Array.make n 500) in
  let store = Mvstore.create ~nodes:n in
  Mvstore.init_key store 1 ~value:"v0";
  for i = 1 to 32 do
    Mvstore.install store 1 ~value:"v"
      ~vc:(Vclock.set (Vclock.zero n) 0 i)
      ~writer:{ Ids.node = 0; local = i }
  done;
  [
    Test.make ~name:"vclock.max" (Staged.stage (fun () -> Vclock.max vc1 vc2));
    Test.make ~name:"vclock.leq" (Staged.stage (fun () -> Vclock.leq vc1 vc2));
    Test.make ~name:"zipf.sample" (Staged.stage (fun () -> Sss_workload.Zipf.sample zipf rng));
    Test.make ~name:"squeue.blocks_writer"
      (Staged.stage (fun () -> Squeue.blocks_writer squeue ~sid:60));
    Test.make ~name:"nlog.visible_max(unconstrained)"
      (Staged.stage (fun () ->
           Nlog.visible_max nlog ~has_read:(Array.make n false) ~bound ~cutoff:max_int));
    Test.make ~name:"nlog.visible_max(constrained)"
      (Staged.stage (fun () -> Nlog.visible_max nlog ~has_read ~bound ~cutoff:max_int));
    Test.make ~name:"mvstore.select"
      (Staged.stage (fun () ->
           Mvstore.select store 1 ~skip:(fun cvc -> Vclock.get cvc 0 > 16)));
  ]

let run_micro () =
  let open Bechamel in
  Printf.printf "\n== Micro-benchmarks (core data structures) ==\n%!";
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) () in
  let tests = Test.make_grouped ~name:"micro" ~fmt:"%s %s" (micro_tests ()) in
  let raw = Benchmark.all cfg instances tests in
  let results =
    Analyze.merge ols instances (List.map (fun i -> Analyze.all ols i raw) instances)
  in
  Hashtbl.iter
    (fun _metric tbl ->
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some [ est ] -> Printf.printf "  %-42s %10.1f ns/op\n" name est
          | _ -> Printf.printf "  %-42s (no estimate)\n" name)
        tbl)
    results;
  print_newline ()

(* ---------- json report ---------- *)

type target_report = {
  target : string;
  wall_seconds : float;
  baseline_wall : float option;  (* --speedup: the quiet -j1 wall clock *)
  m : meters;
  (* Allocation probe: Gc deltas around the target, so allocation
     regressions show up in the recorded artifact, not just wall clock.
     [Gc.allocated_bytes] is per-domain, so at -j > 1 the numbers cover
     only the main domain's share — the smoke gate measures at -j 1. *)
  alloc_words : float;
  minor_collections : int;
  major_collections : int;
}

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (function
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* Deterministic fingerprint of the parameters every target derives from:
   same binary + same scale => same hash, so regenerated BENCH_*.json files
   are comparable (EXPERIMENTS.md "Report schema"). *)
let config_fingerprint scale =
  let p = base_params scale in
  Digest.to_hex
    (Digest.string
       (Printf.sprintf
          "nodes=%d;degree=%d;keys=%d;ro=%g;ro_ops=%d;locality=%g;clients=%d;warmup=%g;duration=%g;seed=%d;strict=%b;prio=%b;compress=%b;queue=%d;workers=%d"
          p.nodes p.degree p.keys p.ro_ratio p.ro_ops p.locality p.clients p.warmup p.duration
          p.seed p.strict p.priority_network p.compress p.queue_capacity p.workers))

let write_json file ~scale ~scale_v ~observe ~jobs ~speedup ~metrics reports =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf
       "{\n\
       \  \"scale\": \"%s\",\n\
       \  \"meta\": {\n\
       \    \"schema\": 6,\n\
       \    \"scale\": \"%s\",\n\
       \    \"seed\": %d,\n\
       \    \"config_md5\": \"%s\",\n\
       \    \"observe\": %b,\n\
       \    \"jobs\": %d\n\
       \  },\n\
       \  \"targets\": ["
       scale scale (base_params scale_v).seed (config_fingerprint scale_v) observe jobs);
  List.iteri
    (fun i r ->
      if i > 0 then Buffer.add_char buf ',';
      let events_per_sec =
        if r.wall_seconds > 0.0 then float_of_int r.m.des_events /. r.wall_seconds
        else 0.0
      in
      let virtual_tput =
        if r.m.virtual_seconds > 0.0 then
          float_of_int r.m.committed_txns /. r.m.virtual_seconds
        else 0.0
      in
      let words_per_event =
        if r.m.des_events > 0 then r.alloc_words /. float_of_int r.m.des_events else 0.0
      in
      let words_per_version =
        if r.m.store_versions > 0 then
          float_of_int r.m.store_words /. float_of_int r.m.store_versions
        else 0.0
      in
      let slo_json =
        match r.m.slo_rates with
        | [] -> ""
        | rates ->
            let cells =
              List.map
                (fun (sys, rate) ->
                  match rate with
                  | Some v -> Printf.sprintf "\"%s\": %.0f" (json_escape sys) v
                  | None -> Printf.sprintf "\"%s\": null" (json_escape sys))
                rates
            in
            Printf.sprintf "\n      \"slo_sustained_rates\": { %s },"
              (String.concat ", " cells)
      in
      Buffer.add_string buf
        (Printf.sprintf
           "\n    {\n\
           \      \"target\": \"%s\",\n\
           \      \"wall_seconds\": %.3f,\n\
           \      \"des_events\": %d,\n\
           \      \"des_events_per_sec\": %.0f,\n\
           \      \"virtual_seconds\": %.6f,\n\
           \      \"committed_txns\": %d,\n\
           \      \"virtual_throughput_txns_per_vsec\": %.1f,\n\
           \      \"runs\": %d,\n\
           \      \"offered\": %d,\n\
           \      \"accepted\": %d,\n\
           \      \"rejected\": %d,\n\
           \      \"store_versions\": %d,\n\
           \      \"store_words\": %d,\n\
           \      \"words_per_version\": %.2f,\n\
           \      \"gc_dropped_versions\": %d,%s\n\
           \      \"allocated_words\": %.0f,\n\
           \      \"words_per_des_event\": %.2f,\n\
           \      \"minor_collections\": %d,\n\
           \      \"major_collections\": %d\n\
           \    }"
           (json_escape r.target) r.wall_seconds r.m.des_events events_per_sec
           r.m.virtual_seconds r.m.committed_txns virtual_tput r.m.runs r.m.offered
           r.m.accepted r.m.rejected r.m.store_versions r.m.store_words words_per_version
           r.m.gc_dropped slo_json r.alloc_words words_per_event r.minor_collections
           r.major_collections))
    reports;
  Buffer.add_string buf "\n  ]";
  if speedup then begin
    Buffer.add_string buf
      (Printf.sprintf ",\n  \"parallel\": {\n    \"jobs\": %d,\n    \"speedup_vs_j1\": {" jobs);
    let first = ref true in
    List.iter
      (fun r ->
        match r.baseline_wall with
        | Some base when r.wall_seconds > 0.0 ->
            if not !first then Buffer.add_char buf ',';
            first := false;
            Buffer.add_string buf
              (Printf.sprintf "\n      \"%s\": %.2f" (json_escape r.target)
                 (base /. r.wall_seconds))
        | _ -> ())
      reports;
    Buffer.add_string buf "\n    }\n  }"
  end;
  (match metrics with
  | Some m -> Buffer.add_string buf (Printf.sprintf ",\n  \"metrics\": %s" m)
  | None -> ());
  Buffer.add_string buf "\n}\n";
  let oc = open_out file in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.printf "\nwrote %s\n%!" file

(* ---------- dispatch ---------- *)

let figure_of ~slo_ms = function
  | "fig3" -> Some fig3
  | "fig4a" -> Some fig4a
  | "fig4b" -> Some fig4b
  | "fig5" -> Some fig5
  | "fig6" -> Some fig6
  | "fig7" -> Some fig7
  | "fig8" -> Some fig8
  | "abort-rate" -> Some abort_rate
  | "ablation" -> Some ablation
  | "skewed" -> Some skewed
  | "durability" -> Some durability
  | "saturation" -> Some (fun ctx scale -> saturation ?slo_ms ctx scale)
  | "all" -> Some all
  | _ -> None

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let scale = ref Full in
  let json_file = ref None in
  let observe = ref false in
  let jobs = ref 1 in
  let speedup = ref false in
  let slo_ms = ref None in
  let targets = ref [] in
  let parse_jobs = function
    | "max" -> Sss_par.Pool.default_jobs ()
    | s -> (
        match int_of_string_opt s with
        | Some n when n >= 1 -> n
        | _ -> failwith ("bad -j value " ^ s))
  in
  let rec parse = function
    | [] -> ()
    | "--scale" :: s :: rest ->
        (scale :=
           match s with
           | "full" -> Full
           | "quick" -> Quick
           | "smoke" -> Smoke
           | _ -> failwith ("unknown scale " ^ s));
        parse rest
    | "--json" :: f :: rest ->
        json_file := Some f;
        parse rest
    | "--observe" :: rest ->
        observe := true;
        parse rest
    | ("-j" | "--jobs") :: n :: rest ->
        jobs := parse_jobs n;
        parse rest
    | "--speedup" :: rest ->
        speedup := true;
        parse rest
    | "--slo" :: ms :: rest ->
        (match float_of_string_opt ms with
        | Some v when v > 0.0 -> slo_ms := Some v
        | _ -> failwith ("bad --slo value " ^ ms));
        parse rest
    | t :: rest ->
        targets := t :: !targets;
        parse rest
  in
  parse args;
  let targets =
    match List.rev !targets with
    | [] -> [ "fig3"; "fig4a"; "fig4b"; "fig5"; "fig6"; "fig7"; "fig8"; "abort-rate"; "ablation"; "skewed"; "durability"; "saturation"; "micro" ]
    | ts -> ts
  in
  let scale = !scale in
  let jobs = !jobs in
  let speedup = !speedup && jobs > 1 in
  (* Resize the minor heap before any domain exists (Sim's comment). *)
  Sss_sim.Sim.tune_gc ();
  let run_ctx = ctx ~jobs ~observe_all:!observe () in
  let quiet_ctx = ctx ~jobs:1 ~observe_all:!observe ~out:ignore () in
  let scale_name = match scale with Full -> "full" | Quick -> "quick" | Smoke -> "smoke" in
  Printf.printf "SSS reproduction benchmarks (scale: %s, jobs: %d)\n" scale_name jobs;
  let reports = ref [] in
  let time f =
    let start = (Unix.gettimeofday () [@wallclock_ok]) in
    let v = f () in
    (v, (Unix.gettimeofday () [@wallclock_ok]) -. start)
  in
  (* Wrap a measured target with the Gc allocation probe (main domain). *)
  let time_alloc f =
    let s0 = Gc.quick_stat () in
    let b0 = Gc.allocated_bytes () in
    let v, wall = time f in
    let b1 = Gc.allocated_bytes () in
    let s1 = Gc.quick_stat () in
    ( v,
      wall,
      (b1 -. b0) /. float_of_int (Sys.word_size / 8),
      s1.Gc.minor_collections - s0.Gc.minor_collections,
      s1.Gc.major_collections - s0.Gc.major_collections )
  in
  List.iter
    (fun t ->
      match figure_of ~slo_ms:!slo_ms t with
      | Some fig ->
          let baseline_wall =
            if speedup then begin
              let _, wall = time (fun () -> fig quiet_ctx scale) in
              Some wall
            end
            else None
          in
          let m, wall_seconds, alloc_words, minor_collections, major_collections =
            time_alloc (fun () -> fig run_ctx scale)
          in
          reports :=
            { target = t; wall_seconds; baseline_wall; m; alloc_words;
              minor_collections; major_collections }
            :: !reports
      | None ->
          if String.equal t "micro" then begin
            let (), wall_seconds = time run_micro in
            reports :=
              { target = t; wall_seconds; baseline_wall = None; m = meters_zero;
                alloc_words = 0.0; minor_collections = 0; major_collections = 0 }
              :: !reports
          end
          else Printf.eprintf "unknown target %s (skipped)\n" t)
    targets;
  let metrics =
    if !observe then begin
      Printf.printf "\n== Observed metrics (traced SSS cell) ==\n%!";
      let m = observed_metrics scale in
      Printf.printf "%s\n%!" m;
      Some m
    end
    else None
  in
  match !json_file with
  | None -> ()
  | Some f ->
      write_json f ~scale:scale_name ~scale_v:scale ~observe:!observe ~jobs ~speedup
        ~metrics
        (List.rev !reports)
