#!/bin/sh
# One-command sanity pass: build, run the test suite, lint, then a
# seconds-long fig3 benchmark at smoke scale with the JSON perf report.
# Run from the repository root; refreshes BENCH_smoke.json (the committed
# baseline — commit the refresh when a perf change is intentional).
set -eu

# Engine-throughput baseline for the regression gate below: the committed
# BENCH_smoke.json (HEAD copy, so a previous local run can't move the bar).
baseline_eps=$(git show HEAD:BENCH_smoke.json 2>/dev/null \
  | grep '"des_events_per_sec"' | head -1 | tr -cd '0-9' || true)
# Resident-store baseline for the footprint gate (absent before schema 6).
baseline_wpv=$(git show HEAD:BENCH_smoke.json 2>/dev/null \
  | grep '"words_per_version"' | head -1 | sed -n 's/.*: *\([0-9.]*\).*/\1/p' || true)

dune build
dune runtest
dune build @lint
if command -v odoc >/dev/null 2>&1; then
  dune build @doc
else
  echo "smoke: odoc not installed; skipping doc build"
fi
dune exec bench/main.exe -- --scale smoke fig3 --json BENCH_smoke.json

# Throughput-regression gate: the fresh -j1 run must stay within 10% of
# the committed baseline's DES events/sec.  Machine drift is real, so the
# bar is deliberately loose; a trip means either a genuine engine
# regression or a slower machine — investigate, and if the new number is
# the truth, commit the refreshed BENCH_smoke.json.
new_eps=$(grep '"des_events_per_sec"' BENCH_smoke.json | head -1 | tr -cd '0-9')
if [ -n "$baseline_eps" ] && [ -n "$new_eps" ]; then
  if awk "BEGIN { exit !($new_eps < 0.9 * $baseline_eps) }"; then
    echo "smoke FAIL: des_events_per_sec $new_eps < 90% of baseline $baseline_eps" >&2
    exit 1
  fi
  echo "smoke: throughput gate OK ($new_eps ev/s vs baseline $baseline_eps)"
else
  echo "smoke: throughput gate skipped (no committed baseline)"
fi

# Storage-regression gate: resident words per retained version must stay
# within 10% of the committed baseline.  This is deterministic (arena
# accounting, not wall clock), so a trip is a genuine layout regression —
# or an intentional change, in which case commit the refreshed baseline.
new_wpv=$(grep '"words_per_version"' BENCH_smoke.json | head -1 \
  | sed -n 's/.*: *\([0-9.]*\).*/\1/p')
if [ -n "$baseline_wpv" ] && [ -n "$new_wpv" ]; then
  if awk "BEGIN { exit !($new_wpv > 1.1 * $baseline_wpv) }"; then
    echo "smoke FAIL: words_per_version $new_wpv > 110% of baseline $baseline_wpv" >&2
    exit 1
  fi
  echo "smoke: storage gate OK ($new_wpv words/version vs baseline $baseline_wpv)"
else
  echo "smoke: storage gate skipped (no words_per_version baseline)"
fi

# Observer-effect gate: the same fig3 smoke run traced (--observe) must
# execute the exact same trajectory — identical DES event counts, virtual
# time, and committed transactions (docs/OBSERVABILITY.md).
dune exec bench/main.exe -- --scale smoke fig3 --json BENCH_smoke_observed.json --observe \
  >/dev/null
for key in des_events virtual_seconds committed_txns; do
  off=$(grep "\"$key\"" BENCH_smoke.json)
  on=$(grep "\"$key\"" BENCH_smoke_observed.json)
  if [ "$off" != "$on" ]; then
    echo "smoke FAIL: observer effect detected ($key differs: '$off' vs '$on')" >&2
    exit 1
  fi
done
rm -f BENCH_smoke_observed.json
echo "smoke: observer-effect gate OK (observe=on trajectory identical)"

# Parallel gate: the same fig3 smoke run fanned across every core (-j max,
# sss_par pool) must report the exact same deterministic fields as -j1 —
# the pool merges results in submission order, so only wall-clock keys may
# differ.  With >= 4 cores the run must also be at least 2x faster than
# the quiet -j1 baseline --speedup times alongside it.
JOBS=$(getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)
dune exec bench/main.exe -- --scale smoke fig3 -j max --speedup \
  --json BENCH_smoke_par.json >/dev/null
for key in des_events virtual_seconds committed_txns runs; do
  j1=$(grep "\"$key\"" BENCH_smoke.json)
  jn=$(sed -n '/"targets"/,/\]/p' BENCH_smoke_par.json | grep "\"$key\"")
  if [ "$j1" != "$jn" ]; then
    echo "smoke FAIL: -j$JOBS diverged from -j1 ($key differs: '$j1' vs '$jn')" >&2
    exit 1
  fi
done
echo "smoke: parallel gate OK (-j$JOBS targets identical to -j1)"
speedup=$(sed -n '/"speedup_vs_j1"/,/}/p' BENCH_smoke_par.json \
  | sed -n 's/.*"fig3": \([0-9.]*\).*/\1/p')
if [ "$JOBS" -ge 4 ]; then
  if [ -z "$speedup" ] || ! awk "BEGIN { exit !($speedup >= 2.0) }"; then
    echo "smoke FAIL: fig3 speedup at -j$JOBS is '${speedup:-none}', need >= 2.0" >&2
    exit 1
  fi
  echo "smoke: speedup gate OK (fig3 ${speedup}x at -j$JOBS)"
else
  echo "smoke: speedup gate skipped ($JOBS core(s); fig3 ${speedup:-n/a}x)"
fi
# Keep the parallel run as the recorded artifact: same deterministic fields,
# plus the jobs count and measured speedup.
mv BENCH_smoke_par.json BENCH_smoke.json
echo "smoke OK"
