#!/bin/sh
# One-command sanity pass: build, run the test suite, lint, then a
# seconds-long fig3 benchmark at smoke scale with the JSON perf report.
# Run from the repository root; leaves BENCH_smoke.json (gitignored) behind.
set -eu

dune build
dune runtest
dune build @lint
if command -v odoc >/dev/null 2>&1; then
  dune build @doc
else
  echo "smoke: odoc not installed; skipping doc build"
fi
dune exec bench/main.exe -- --scale smoke fig3 --json BENCH_smoke.json
echo "smoke OK"
