#!/bin/sh
# One-command sanity pass: build, run the test suite, lint, then a
# seconds-long fig3 benchmark at smoke scale with the JSON perf report.
# Run from the repository root; leaves BENCH_smoke.json (gitignored) behind.
set -eu

dune build
dune runtest
dune build @lint
if command -v odoc >/dev/null 2>&1; then
  dune build @doc
else
  echo "smoke: odoc not installed; skipping doc build"
fi
dune exec bench/main.exe -- --scale smoke fig3 --json BENCH_smoke.json

# Observer-effect gate: the same fig3 smoke run traced (--observe) must
# execute the exact same trajectory — identical DES event counts, virtual
# time, and committed transactions (docs/OBSERVABILITY.md).
dune exec bench/main.exe -- --scale smoke fig3 --json BENCH_smoke_observed.json --observe \
  >/dev/null
for key in des_events virtual_seconds committed_txns; do
  off=$(grep "\"$key\"" BENCH_smoke.json)
  on=$(grep "\"$key\"" BENCH_smoke_observed.json)
  if [ "$off" != "$on" ]; then
    echo "smoke FAIL: observer effect detected ($key differs: '$off' vs '$on')" >&2
    exit 1
  fi
done
rm -f BENCH_smoke_observed.json
echo "smoke: observer-effect gate OK (observe=on trajectory identical)"
echo "smoke OK"
