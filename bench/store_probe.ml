(* Store-only microbench: the pre-arena boxed-list layout vs the arena
   store, replaying identical traffic at a 100-node clock size.  Three
   sections isolate where the bytes go:

   - genesis: K keys initialised, nothing written — the shape that
     dominates 1M-key open-loop clusters (the boxed layout shares the
     zero clock but pays cons + record + hashtable + value string per
     key; the arena's implicit genesis pays an index entry and a byte).
   - affine: replica-affine write sets of 4 keys per commit, per-node
     clocks that advance mostly in their own entry — the arena's
     refcount-shared head cells and sparse delta demotion both engage.
   - scattered: uniform single-key commits under a globally racing clock,
     the no-compression worst case — demotion's size cap keeps every
     clock at full-cell cost instead of inflating into wide deltas.

   Each section reports GC-measured live words per version (plus the
   arena's own mem_words model, which should agree), and the churn
   sections report install and select throughput with allocation per
   deep select (the arena decodes into a scratch clock — 0 words).

     store_probe [nodes] [keys] [installs]      (default 100 10000 200000)

   The boxed reference reproduces the replaced implementation faithfully:
   genesis zero clocks shared, one clock and one writer id physically
   shared across a commit's write set, chains as version-record lists in
   per-key refs under a Hashtbl. *)

open Sss_data

module Boxed = struct
  type ver = { value : string; vc : int array; writer : Ids.txn }

  type t = {
    zero : int array;
    tbl : (int, ver list ref) Hashtbl.t;
    mutable key_seq : int list;
  }

  let create ~nodes = { zero = Array.make nodes 0; tbl = Hashtbl.create 1024; key_seq = [] }

  let init_key t k =
    Hashtbl.replace t.tbl k
      (ref [ { value = "init:" ^ string_of_int k; vc = t.zero; writer = Ids.genesis } ]);
    t.key_seq <- k :: t.key_seq

  let install t k ~value ~vc ~writer =
    let r = Hashtbl.find t.tbl k in
    r := { value; vc; writer } :: !r

  let truncate t k ~keep =
    let r = Hashtbl.find t.tbl k in
    let rec take n = function
      | [] -> []
      | v :: rest -> if n = 0 then [] else v :: take (n - 1) rest
    in
    r := take keep !r

  let select t k ~skip =
    let rec walk = function
      | [] -> assert false
      | [ oldest ] -> oldest
      | v :: rest -> if skip (Vclock.unsafe_of_array v.vc [@owned]) then walk rest else v
    in
    walk !(Hashtbl.find t.tbl k)

  let version_count t =
    Hashtbl.fold (fun _ r acc -> acc + List.length !r) t.tbl 0 [@order_ok]
end

let live_words () =
  Gc.full_major ();
  (Gc.stat ()).Gc.live_words

let () =
  let arg i d = if Array.length Sys.argv > i then int_of_string Sys.argv.(i) else d in
  let nodes = arg 1 100 and keys = arg 2 10_000 and installs = arg 3 200_000 in
  let keep = 5 and selects = 200_000 and ws = 4 in
  let st = ref 0x1e3779b97f4a7c15 in
  let rand m =
    let x = !st in
    let x = x lxor (x lsl 13) in
    let x = x lxor (x lsr 7) in
    let x = x lxor (x lsl 17) in
    st := x;
    (x land max_int) mod m
  in
  Printf.printf "store probe: %d nodes, %d keys, %d installs, write set %d, chains kept <= %d\n"
    nodes keys installs ws keep;

  (* pre-generated traffic, identical for both stores *)
  let affine_nodes = Array.init (installs / ws) (fun _ -> rand nodes) in
  let scattered = Array.init installs (fun _ -> (rand keys, rand nodes)) in
  let sel = Array.init selects (fun _ -> rand keys) in
  let kpn = keys / nodes in

  (* replay the affine schedule: node-affine write sets of [ws] consecutive
     keys, per-node clocks advancing in their own entry, a full merge with
     the freshest commit knowledge every 64th commit *)
  let replay_affine ~install ~truncate =
    let own = Array.init nodes (fun _ -> Array.make nodes 0) in
    let latest = Array.make nodes 0 in
    let commits = Array.make nodes 0 in
    let cursor = Array.make nodes 0 in
    Array.iter
      (fun n ->
        let c = commits.(n) + 1 in
        commits.(n) <- c;
        own.(n).(n) <- own.(n).(n) + 1;
        if c land 63 = 0 then
          for i = 0 to nodes - 1 do
            if latest.(i) > own.(n).(i) then own.(n).(i) <- latest.(i)
          done;
        latest.(n) <- own.(n).(n);
        let vc = Array.copy own.(n) in
        let writer = { Ids.node = n; local = c } in
        for j = 0 to ws - 1 do
          let k = (n * kpn) + ((cursor.(n) + j) mod kpn) in
          install k ~value:(Printf.sprintf "v%d:%d" c k) ~vc ~writer;
          truncate k
        done;
        cursor.(n) <- (cursor.(n) + ws) mod kpn)
      affine_nodes
  in
  (* replay the scattered schedule: uniform keys, one racing global clock *)
  let replay_scattered ~install ~truncate =
    let clk = Array.make nodes 0 in
    let locals = Array.make nodes 0 in
    Array.iter
      (fun (k, n) ->
        clk.(n) <- clk.(n) + 1;
        locals.(n) <- locals.(n) + 1;
        install k
          ~value:(Printf.sprintf "v%d:%d" locals.(n) k)
          ~vc:(Array.copy clk)
          ~writer:{ Ids.node = n; local = locals.(n) };
        truncate k)
      scattered
  in

  let shallow vc = ignore (Sys.opaque_identity vc); false in
  let deep vc = ignore (Sys.opaque_identity vc); true in
  let churn name replay =
    (* boxed *)
    let base = live_words () in
    let b = Boxed.create ~nodes in
    for k = 0 to keys - 1 do
      Boxed.init_key b k
    done;
    let t0 = (Unix.gettimeofday () [@wallclock_ok]) in
    replay
      ~install:(fun k ~value ~vc ~writer -> Boxed.install b k ~value ~vc ~writer)
      ~truncate:(fun k -> Boxed.truncate b k ~keep);
    let t1 = (Unix.gettimeofday () [@wallclock_ok]) in
    let bl = live_words () - base in
    let bv = Boxed.version_count b in
    let t2 = (Unix.gettimeofday () [@wallclock_ok]) in
    let sink = ref 0 in
    Array.iter
      (fun k -> sink := !sink + String.length (Boxed.select b k ~skip:deep).Boxed.value)
      sel;
    let t3 = (Unix.gettimeofday () [@wallclock_ok]) in
    Printf.printf "%s, boxed-list reference:\n" name;
    Printf.printf "  live words/version   %.2f  (%d versions, %d words)\n"
      (float_of_int bl /. float_of_int bv) bv bl;
    Printf.printf "  installs/sec         %.0f\n" (float_of_int installs /. (t1 -. t0));
    Printf.printf "  deep selects/sec     %.0f\n" (float_of_int selects /. (t3 -. t2));
    ignore !sink;
    (* arena *)
    let base = live_words () in
    let s = Mvstore.create ~nodes in
    Mvstore.reserve s keys;
    for k = 0 to keys - 1 do
      Mvstore.init_key s k ~value:("init:" ^ string_of_int k)
    done;
    let t0 = (Unix.gettimeofday () [@wallclock_ok]) in
    replay
      ~install:(fun k ~value ~vc ~writer ->
        Mvstore.install s k ~value ~vc:(Vclock.unsafe_of_array vc [@owned]) ~writer)
      ~truncate:(fun k -> Mvstore.truncate s k ~keep);
    let t1 = (Unix.gettimeofday () [@wallclock_ok]) in
    let al = live_words () - base in
    let av = Mvstore.version_count s in
    let mem = Mvstore.mem_words s in
    let w0 = Gc.allocated_bytes () in
    let t2 = (Unix.gettimeofday () [@wallclock_ok]) in
    let sink = ref 0 in
    Array.iter
      (fun k -> sink := !sink + String.length (Mvstore.slot_value s (Mvstore.select s k ~skip:deep)))
      sel;
    let t3 = (Unix.gettimeofday () [@wallclock_ok]) in
    let w1 = Gc.allocated_bytes () in
    let t4 = (Unix.gettimeofday () [@wallclock_ok]) in
    Array.iter
      (fun k -> sink := !sink + String.length (Mvstore.slot_value s (Mvstore.select s k ~skip:shallow)))
      sel;
    let t5 = (Unix.gettimeofday () [@wallclock_ok]) in
    Printf.printf "%s, arena store:\n" name;
    Printf.printf "  live words/version   %.2f  (%d versions, %d words; model %.2f)\n"
      (float_of_int al /. float_of_int av) av al (Mvstore.words_per_version mem);
    Printf.printf "  installs/sec         %.0f\n" (float_of_int installs /. (t1 -. t0));
    Printf.printf "  deep selects/sec     %.0f  (%.2f alloc words/select), head selects/sec %.0f\n"
      (float_of_int selects /. (t3 -. t2))
      ((w1 -. w0) /. float_of_int (Sys.word_size / 8) /. float_of_int selects)
      (float_of_int selects /. (t5 -. t4));
    ignore !sink
  in

  (* -- genesis-only footprint -- *)
  let base = live_words () in
  let b = Boxed.create ~nodes in
  for k = 0 to keys - 1 do
    Boxed.init_key b k
  done;
  let bl = live_words () - base in
  ignore (Sys.opaque_identity b);
  let base = live_words () in
  let s = Mvstore.create ~nodes in
  Mvstore.reserve s keys;
  for k = 0 to keys - 1 do
    Mvstore.init_key s k ~value:("init:" ^ string_of_int k)
  done;
  let al = live_words () - base in
  let mem = Mvstore.mem_words s in
  Printf.printf "genesis only: boxed %.2f words/version, arena %.2f (model %.2f)\n"
    (float_of_int bl /. float_of_int keys)
    (float_of_int al /. float_of_int keys)
    (Mvstore.words_per_version mem);
  ignore (Sys.opaque_identity s);

  churn "affine write sets" replay_affine;
  churn "scattered" replay_scattered
