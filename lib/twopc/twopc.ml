open Sss_sim
open Sss_data
open Sss_net
open Sss_consistency

(* Single-version store: value and the writer that produced it (version
   identity, used for validation and by the consistency checker). *)
type cell = { mutable value : string; mutable writer : Ids.txn }

(* What a recovered participant learns about an in-doubt transaction when
   it queries the coordinator (durability mode, docs/DURABILITY.md). *)
type verdict = Vcommitted | Vaborted | Vundecided

type msg =
  | Read_req of { req : int; key : Ids.key }
  | Read_ret of { req : int; value : string; writer : Ids.txn }
  | Prepare of {
      txn : Ids.txn;
      coord : Ids.node;
      rs : (Ids.key * Ids.txn) list;
      ws : (Ids.key * string) list;
    }
  | Vote of { txn : Ids.txn; ok : bool }
  | Decide of { txn : Ids.txn; outcome : bool }
  | Applied of { txn : Ids.txn }
  | Query of { req : int; txn : Ids.txn }
  | Outcome of { req : int; verdict : verdict }
  | Tracked of { token : int; inner : msg }
  | Delivered of { token : int }

let rec priority = function
  | Decide _ -> 40
  | Vote _ | Applied _ | Query _ | Outcome _ -> 60
  | Read_req _ | Read_ret _ | Prepare _ -> 100
  | Tracked { inner; _ } -> priority inner
  | Delivered _ -> 10

let rec message_kind = function
  | Read_req _ -> "read_request"
  | Read_ret _ -> "read_return"
  | Prepare _ -> "prepare"
  | Vote _ -> "vote"
  | Decide _ -> "decide"
  | Applied _ -> "applied"
  | Query _ -> "query"
  | Outcome _ -> "outcome"
  | Tracked { inner; _ } -> message_kind inner
  | Delivered _ -> "delivered"

type prep = {
  rs_local : (Ids.key * Ids.txn) list;
  ws_local : (Ids.key * string) list;
  coord : Ids.node;
}

type vote_box = {
  expect : int;
  mutable votes : int;
  mutable any_false : bool;
  vchanged : Sim.Cond.t;
}

type ack_box = { ack_expect : int; mutable ack_count : int; ack_done : unit Sim.Ivar.t }

(* Durability-mode write-ahead-log records (docs/DURABILITY.md).  Each is
   appended in the same DES event as the volatile mutation it describes;
   externally-visible actions await the flush. *)
type logrec =
  | PPrepared of { txn : Ids.txn; prep : prep }  (* participant voted yes *)
  | PAborted of { txn : Ids.txn }  (* participant saw Decide(false) *)
  | PDecided of { txn : Ids.txn }  (* coordinator decided commit *)
  | PApplied of { txn : Ids.txn }  (* participant applied the write set *)

(* Checkpoint image: a deep copy of everything redo recovery rebuilds,
   in deterministic (sorted) order. *)
type snap = {
  s_cells : (Ids.key * string * Ids.txn) list;
  s_prepared : (Ids.txn * prep) list;
  s_decided : Ids.txn list;  (* durably decided commits (coordinator role) *)
  s_aborted : Ids.txn list;  (* aborted_decides *)
}

type node = {
  id : Ids.node;
  store : (Ids.key, cell) Hashtbl.t;
  locks : Locks.t;
  prepared : (Ids.txn, prep) Hashtbl.t;
  aborted_decides : (Ids.txn, unit) Hashtbl.t;
  gen : Ids.Gen.t;
  pending_reads : (string * Ids.txn) Rpc.Pending.t;
  vote_boxes : (Ids.txn, vote_box) Hashtbl.t;
  ack_boxes : (Ids.txn, ack_box) Hashtbl.t;
  (* durability mode only *)
  mutable alive : bool;  (* false between a crash and the end of recovery *)
  decided : (Ids.txn, bool) Hashtbl.t;
      (* coordinator commit decisions; [true] once the PDecided record is
         durable — only then may a Query be answered "committed" *)
  pending_outcomes : verdict Rpc.Pending.t;
  mutable wal : (logrec, snap) Sss_storage.Storage.t option;
}

type cluster = {
  sim : Sim.t;
  config : Sss_kv.Config.t;
  repl : Replication.t;
  net : msg Network.t;
  rel : msg Reliable.t;
  nodes : node array;
  history : History.t;
  obs : Sss_obs.Obs.t option;
}

type handle = {
  cl : cluster;
  home : node;
  id : Ids.txn;
  ro : bool;
  mutable rs : (Ids.key * Ids.txn) list;
  mutable ws : (Ids.key * string) list;
  mutable finished : bool;
  begin_at : float;
}

let record t event = History.record t.history ~at:(Sim.now t.sim) event

(* Transaction-class observation shared by all three baselines' shapes:
   commit/abort counters, per-class latency histograms, lifecycle events. *)
let obs_begin t ~txn ~node ~ro =
  match t.obs with
  | Some o ->
      Sss_obs.Obs.incr o (if ro then "txn.begin.ro" else "txn.begin.update");
      Sss_obs.Obs.emit o ~at:(Sim.now t.sim)
        (Sss_obs.Obs.Txn_begin { txn = Ids.txn_to_string txn; node; ro })
  | None -> ()

let obs_commit t ~txn ~node ~ro ~began =
  match t.obs with
  | Some o ->
      let cls = if ro then "ro" else "update" in
      Sss_obs.Obs.incr o ("txn.commit." ^ cls);
      Sss_obs.Obs.observe o ("lat.txn." ^ cls) (Sim.now t.sim -. began);
      Sss_obs.Obs.emit o ~at:(Sim.now t.sim)
        (Sss_obs.Obs.Txn_commit { txn = Ids.txn_to_string txn; node; ro })
  | None -> ()

let obs_abort t ~txn ~node ~ro ~reason =
  match t.obs with
  | Some o ->
      Sss_obs.Obs.incr o ("txn.abort." ^ reason);
      Sss_obs.Obs.emit o ~at:(Sim.now t.sim)
        (Sss_obs.Obs.Txn_abort { txn = Ids.txn_to_string txn; node; ro; reason })
  | None -> ()

let replica_nodes t keys =
  List.sort_uniq Int.compare (List.concat_map (fun k -> Replication.replicas t.repl k) keys)

let is_primary t node_id key =
  match Replication.replicas t.repl key with first :: _ -> first = node_id | [] -> false

let send t ~src ~dst payload =
  let prio = priority payload in
  if t.config.Sss_kv.Config.fault_tolerance then
    Reliable.send t.rel ~prio ~src ~dst (fun token -> Tracked { token; inner = payload })
  else Network.send t.net ~prio ~src ~dst payload

let cell (node : node) key =
  match Hashtbl.find_opt node.store key with
  | Some c -> c
  | None -> invalid_arg "Twopc: unknown key"

let validate node rs =
  List.for_all
    (fun (k, observed) -> Ids.equal_txn (cell node k).writer observed)
    rs

(* ---------- durability (Config.durability; docs/DURABILITY.md) ---------- *)

(* byte-size model for log records, same flavour as Message.wire_size *)
let prep_bytes (p : prep) =
  8 (* coord *)
  + List.fold_left (fun acc (_, _) -> acc + 12) 0 p.rs_local
  + List.fold_left (fun acc (_, v) -> acc + 4 + String.length v) 0 p.ws_local

let logrec_bytes = function
  | PPrepared { prep; _ } -> 16 + 8 + prep_bytes prep
  | PAborted _ | PDecided _ | PApplied _ -> 16 + 8

let snap_bytes (s : snap) =
  64
  + List.fold_left (fun acc (_, v, _) -> acc + 12 + String.length v) 0 s.s_cells
  + List.fold_left (fun acc (_, p) -> acc + 8 + prep_bytes p) 0 s.s_prepared
  + (8 * List.length s.s_decided)
  + (8 * List.length s.s_aborted)

let sorted_bindings table =
  List.sort
    (fun (a, _) (b, _) -> Ids.compare_txn a b)
    (Hashtbl.fold (fun k v acc -> (k, v) :: acc) table [] [@order_ok])

let snap_of (node : node) =
  {
    s_cells =
      List.sort
        (fun (a, _, _) (b, _, _) -> Int.compare a b)
        (Hashtbl.fold (fun k (c : cell) acc -> (k, c.value, c.writer) :: acc)
           node.store [] [@order_ok]);
    s_prepared = sorted_bindings node.prepared;
    s_decided =
      List.sort Ids.compare_txn
        (Hashtbl.fold
           (fun txn durable acc -> if durable then txn :: acc else acc)
           node.decided [] [@order_ok]);
    s_aborted = List.map fst (sorted_bindings node.aborted_decides);
  }

let log (node : node) r =
  match node.wal with
  | Some w -> Some (Sss_storage.Storage.append w r)
  | None -> None

(* Await durability of the given append; [true] when it is safe to act on
   it (immediately so when durability is off). *)
let log_sync (node : node) lsn =
  match (node.wal, lsn) with
  | Some w, Some l -> Sss_storage.Storage.await w l
  | _ -> true

(* Is the client handle's home record still the live one?  A crash under
   durability replaces the record, so stale handles observe it here. *)
let home_live (cl : cluster) (node : node) = cl.nodes.(node.id) == node

let handle_decide t (node : node) ~txn ~outcome =
  match Hashtbl.find_opt node.prepared txn with
  | None -> if not outcome then Hashtbl.replace node.aborted_decides txn ()
  | Some prep ->
      Hashtbl.remove node.prepared txn;
      if outcome then begin
        List.iter
          (fun (k, v) ->
            let c = cell node k in
            c.value <- v;
            c.writer <- txn;
            if is_primary t node.id k then record t (History.Install { txn; key = k }))
          prep.ws_local;
        (* the apply and its log record are made in the same DES event *)
        let lsn = log node (PApplied { txn }) in
        Locks.release_txn node.locks txn;
        (* the coordinator (and through it the client) may only learn of
           the apply once it would survive a crash here *)
        if log_sync node lsn then send t ~src:node.id ~dst:prep.coord (Applied { txn })
      end
      else begin
        (* presumed abort: the record spares recovery a query, but nothing
           externally visible depends on it — no flush wait *)
        ignore (log node (PAborted { txn }) : int option);
        Locks.release_txn node.locks txn
      end

(* Termination protocol for a prepared transaction whose outcome this
   participant does not know — because the participant restarted with the
   prepare on disk, or because the coordinator crashed before deciding.
   Ask the coordinator until the verdict is known. *)
let resolve_indoubt t (node : node) txn (prep : prep) =
  let rec loop attempt =
    if t.nodes.(node.id) == node && Hashtbl.mem node.prepared txn then
      if attempt >= t.config.Sss_kv.Config.retry_limit then
        Rpc.stalled ~system:"2pc" ~phase:"in-doubt" (Ids.txn_to_string txn)
      else begin
        let req, slot = Rpc.Pending.fresh node.pending_outcomes in
        send t ~src:node.id ~dst:prep.coord (Query { req; txn });
        match
          Rpc.Pending.await_timeout t.sim slot ~timeout:t.config.Sss_kv.Config.retry_max
        with
        | Some Vcommitted -> handle_decide t node ~txn ~outcome:true
        | Some Vaborted -> handle_decide t node ~txn ~outcome:false
        | Some Vundecided | None ->
            Rpc.Pending.forget node.pending_outcomes req;
            Sim.sleep t.sim t.config.Sss_kv.Config.retry_initial;
            loop (attempt + 1)
      end
  in
  try loop 0 with Rpc.Crashed _ -> ()

let handle_prepare t (node : node) ~txn ~coord ~rs ~ws =
  let local_rs = List.filter (fun (k, _) -> Replication.is_replica t.repl node.id k) rs in
  let local_ws = List.filter (fun (k, _) -> Replication.is_replica t.repl node.id k) ws in
  let ok =
    (not (Hashtbl.mem node.aborted_decides txn))
    && Locks.acquire_all node.locks txn
         ~exclusive:(List.map fst local_ws)
         ~shared:(List.map fst local_rs)
         ~timeout:t.config.Sss_kv.Config.lock_timeout
    && validate node local_rs
    && not (Hashtbl.mem node.aborted_decides txn)
  in
  if not ok then begin
    Locks.release_txn node.locks txn;
    send t ~src:node.id ~dst:coord (Vote { txn; ok = false })
  end
  else begin
    let prep = { rs_local = local_rs; ws_local = local_ws; coord } in
    Hashtbl.replace node.prepared txn prep;
    (* force the prepare record before promising "yes": after a crash this
       node must still be able to honour a commit decision *)
    let lsn = log node (PPrepared { txn; prep }) in
    (* a yes-voter may be orphaned by a coordinator crash: if the decision
       is still unknown after a couple of retry rounds, go ask for it *)
    if t.config.Sss_kv.Config.durability then
      Sim.spawn t.sim (fun () ->
          Sim.sleep t.sim (2. *. t.config.Sss_kv.Config.retry_max);
          resolve_indoubt t node txn prep);
    if log_sync node lsn then send t ~src:node.id ~dst:coord (Vote { txn; ok = true })
  end

let rec dispatch t (node : node) ~src payload =
  match payload with
  | Tracked { token; inner } ->
      Network.send t.net ~prio:(priority (Delivered { token })) ~src:node.id ~dst:src
        (Delivered { token });
      if Reliable.receive t.rel token then dispatch t node ~src inner
  | Delivered { token } -> Reliable.delivered t.rel token
  | Read_req { req; key } ->
      let c = cell node key in
      send t ~src:node.id ~dst:src (Read_ret { req; value = c.value; writer = c.writer })
  | Read_ret { req; value; writer } ->
      Rpc.Pending.resolve t.sim node.pending_reads req (value, writer)
  | Prepare { txn; coord; rs; ws } -> handle_prepare t node ~txn ~coord ~rs ~ws
  | Vote { txn; ok } -> (
      match Hashtbl.find_opt node.vote_boxes txn with
      | Some box ->
          box.votes <- box.votes + 1;
          if not ok then box.any_false <- true;
          Sim.Cond.broadcast t.sim box.vchanged
      | None -> ())
  | Decide { txn; outcome } -> handle_decide t node ~txn ~outcome
  | Applied { txn } -> (
      match Hashtbl.find_opt node.ack_boxes txn with
      | Some box ->
          box.ack_count <- box.ack_count + 1;
          if box.ack_count = box.ack_expect && not (Sim.Ivar.is_filled box.ack_done) then
            Sim.Ivar.fill t.sim box.ack_done ()
      | None -> ())
  | Query { req; txn } ->
      (* a recovered participant resolving an in-doubt transaction.
         "Committed" may only be answered once the decision record is
         durable; an in-flight decision reads as undecided; everything
         else is presumed aborted. *)
      let verdict =
        match Hashtbl.find_opt node.decided txn with
        | Some true -> Vcommitted
        | Some false -> Vundecided
        | None -> if Hashtbl.mem node.vote_boxes txn then Vundecided else Vaborted
      in
      send t ~src:node.id ~dst:src (Outcome { req; verdict })
  | Outcome { req; verdict } -> Rpc.Pending.resolve t.sim node.pending_outcomes req verdict

let create sim (config : Sss_kv.Config.t) =
  let repl =
    Replication.create ~nodes:config.nodes ~degree:config.replication_degree
      ~total_keys:config.total_keys
  in
  let rng = Prng.create ~seed:config.seed in
  let net = Network.create sim rng ~nodes:config.nodes ~config:config.network in
  let nodes =
    Array.init config.nodes (fun id ->
        {
          id;
          store = Hashtbl.create 256;
          locks = Locks.create sim;
          prepared = Hashtbl.create 64;
          aborted_decides = Hashtbl.create 64;
          gen = Ids.Gen.create id;
          pending_reads = Rpc.Pending.create ();
          vote_boxes = Hashtbl.create 64;
          ack_boxes = Hashtbl.create 64;
          alive = true;
          decided = Hashtbl.create 64;
          pending_outcomes = Rpc.Pending.create ();
          wal = None;
        })
  in
  Array.iter
    (fun node ->
      Array.iter
        (fun k ->
          Hashtbl.replace node.store k
            { value = Printf.sprintf "init:%d" k; writer = Ids.genesis })
        (Replication.keys_at repl node.id))
    nodes;
  let rel =
    Reliable.create sim net
      ~retry:
        {
          Reliable.initial = config.retry_initial;
          max = config.retry_max;
          limit = config.retry_limit;
        }
  in
  let obs =
    if config.observe then Some (Sss_obs.Obs.create ~capacity:config.trace_capacity ())
    else None
  in
  (match obs with
  | Some o -> Network.set_observer net (Some { Network.obs = o; kind_of = message_kind })
  | None -> ());
  Reliable.set_obs rel obs;
  let t =
    { sim; config; repl; net; rel; nodes;
      history = History.create ~enabled:config.record_history (); obs }
  in
  Array.iter
    (fun (n : node) ->
      Network.set_handler net n.id (fun ~src payload -> dispatch t n ~src payload))
    nodes;
  if config.durability then
    Array.iter
      (fun (n : node) ->
        let dev =
          Iodev.create sim ~op_latency:config.fsync_latency
            ~bandwidth:config.disk_bandwidth
        in
        let w =
          Sss_storage.Storage.create sim dev ~record_bytes:logrec_bytes
            ~snapshot:(fun () -> snap_of t.nodes.(n.id))
            ~snapshot_bytes:snap_bytes ?obs:t.obs ()
        in
        n.wal <- Some w;
        Sss_storage.Storage.start_checkpoints w ~interval:config.checkpoint_interval)
      nodes;
  t

(* ------------- crash / recovery (durability mode) ------------- *)

let load_snap (node : node) (s : snap) =
  List.iter
    (fun (k, v, w) ->
      let c = cell node k in
      c.value <- v;
      c.writer <- w)
    s.s_cells;
  List.iter (fun (txn, p) -> Hashtbl.replace node.prepared txn p) s.s_prepared;
  List.iter (fun txn -> Hashtbl.replace node.decided txn true) s.s_decided;
  List.iter (fun txn -> Hashtbl.replace node.aborted_decides txn ()) s.s_aborted

(* Redo one durable record.  Replay never records history: installs of
   already-applied writes were recorded before the crash, and in-doubt
   transactions go through the normal decide path afterwards. *)
let replay_record (node : node) = function
  | PPrepared { txn; prep } -> Hashtbl.replace node.prepared txn prep
  | PAborted { txn } ->
      Hashtbl.remove node.prepared txn;
      Hashtbl.replace node.aborted_decides txn ()
  | PDecided { txn } -> Hashtbl.replace node.decided txn true
  | PApplied { txn } -> (
      match Hashtbl.find_opt node.prepared txn with
      | None -> ()
      | Some prep ->
          Hashtbl.remove node.prepared txn;
          List.iter
            (fun (k, v) ->
              let c = cell node k in
              c.value <- v;
              c.writer <- txn)
            prep.ws_local)

let crash_node t id =
  if t.config.Sss_kv.Config.durability then begin
    let old = t.nodes.(id) in
    old.alive <- false;
    (match old.wal with Some w -> Sss_storage.Storage.crash w | None -> ());
    let e = Rpc.Crashed { system = "2pc"; node = id } in
    Rpc.Pending.poison_all t.sim old.pending_reads e;
    Rpc.Pending.poison_all t.sim old.pending_outcomes e;
    (* wake commit fibers parked on apply acks; they observe the record
       swap and raise *)
    List.iter
      (fun (_, (b : ack_box)) ->
        if not (Sim.Ivar.is_filled b.ack_done) then Sim.Ivar.fill t.sim b.ack_done ())
      (sorted_bindings old.ack_boxes);
    let fresh =
      {
        id;
        store = Hashtbl.create 256;
        locks = Locks.create t.sim;
        prepared = Hashtbl.create 64;
        aborted_decides = Hashtbl.create 64;
        (* transaction ids name client requests, not node state: the
           counter persists so a restarted node never re-mints an id *)
        gen = old.gen;
        pending_reads = Rpc.Pending.create ();
        vote_boxes = Hashtbl.create 64;
        ack_boxes = Hashtbl.create 64;
        alive = false;
        decided = Hashtbl.create 64;
        pending_outcomes = Rpc.Pending.create ();
        wal = old.wal;
      }
    in
    Array.iter
      (fun k ->
        Hashtbl.replace fresh.store k
          { value = Printf.sprintf "init:%d" k; writer = Ids.genesis })
      (Replication.keys_at t.repl id);
    t.nodes.(id) <- fresh;
    Network.set_handler t.net id (fun ~src payload -> dispatch t fresh ~src payload)
  end

let restart_node t id =
  let node = t.nodes.(id) in
  match node.wal with
  | None -> Network.recover t.net id
  | Some w ->
      Sss_storage.Storage.recover w (fun ~recovered ~replay ->
          Sim.run_fiber (fun () ->
              (match recovered with Some s -> load_snap node s | None -> ());
              List.iter (replay_record node) replay;
              let indoubt = sorted_bindings node.prepared in
              (* in-doubt transactions held their locks when the node went
                 down; restore them before admitting new prepares.  The
                 set is mutually compatible, so acquisition is immediate. *)
              List.iter
                (fun (txn, (p : prep)) ->
                  ignore
                    (Locks.acquire_all node.locks txn
                       ~exclusive:(List.map fst p.ws_local)
                       ~shared:(List.map fst p.rs_local)
                       ~timeout:t.config.Sss_kv.Config.lock_timeout
                      : bool))
                indoubt;
              node.alive <- true;
              Network.recover t.net id;
              Sss_storage.Storage.start_checkpoints w
                ~interval:t.config.Sss_kv.Config.checkpoint_interval;
              List.iter
                (fun (txn, p) ->
                  Sim.spawn t.sim (fun () -> resolve_indoubt t node txn p))
                indoubt))

let begin_txn cl ~node ~read_only =
  let home = cl.nodes.(node) in
  if not home.alive then Rpc.crashed ~system:"2pc" ~node;
  let id = Ids.Gen.next home.gen in
  record cl (History.Begin { txn = id; ro = read_only; node });
  obs_begin cl ~txn:id ~node ~ro:read_only;
  { cl; home; id; ro = read_only; rs = []; ws = []; finished = false;
    begin_at = Sim.now cl.sim }

let read h key =
  if h.finished then invalid_arg "Twopc: read on a finished transaction";
  match List.assoc_opt key h.ws with
  | Some v -> v
  | None ->
      let req, ivar = Rpc.Pending.fresh h.home.pending_reads in
      List.iter
        (fun dst -> send h.cl ~src:h.home.id ~dst (Read_req { req; key }))
        (Replication.replicas h.cl.repl key);
      let value, writer =
        if h.cl.config.Sss_kv.Config.fault_tolerance then
          match
            Rpc.Pending.await_timeout h.cl.sim ivar
              ~timeout:h.cl.config.Sss_kv.Config.ack_timeout
          with
          | Some r -> r
          | None ->
              Rpc.stalled ~system:"2pc" ~phase:"read"
                (Printf.sprintf "key %d in %s" key (Ids.txn_to_string h.id))
        else Rpc.Pending.await h.cl.sim ivar
      in
      let pair = (key, writer) in
      if not (List.mem pair h.rs) then h.rs <- pair :: h.rs;
      record h.cl (History.Read { txn = h.id; key; writer });
      value

let write h key value =
  if h.finished then invalid_arg "Twopc: write on a finished transaction";
  if h.ro then invalid_arg "Twopc: write in a read-only transaction";
  h.ws <- (key, value) :: List.remove_assoc key h.ws

let commit h =
  if h.finished then invalid_arg "Twopc: commit on a finished transaction";
  h.finished <- true;
  let cl = h.cl in
  let keys = List.map fst h.rs @ List.map fst h.ws in
  if keys = [] then begin
    record cl (History.Commit { txn = h.id; ws = [] });
    obs_commit cl ~txn:h.id ~node:h.home.id ~ro:h.ro ~began:h.begin_at;
    true
  end
  else begin
    let participants = List.sort_uniq Int.compare (h.home.id :: replica_nodes cl keys) in
    let box =
      { expect = List.length participants; votes = 0; any_false = false;
        vchanged = Sim.Cond.create () }
    in
    Hashtbl.replace h.home.vote_boxes h.id box;
    List.iter
      (fun dst ->
        send cl ~src:h.home.id ~dst (Prepare { txn = h.id; coord = h.home.id; rs = h.rs; ws = h.ws }))
      participants;
    let complete () = box.any_false || box.votes >= box.expect in
    let _ =
      Sim.Cond.await_timeout cl.sim box.vchanged
        ~timeout:cl.config.Sss_kv.Config.vote_timeout complete
    in
    Hashtbl.remove h.home.vote_boxes h.id;
    let all_ok = (not box.any_false) && box.votes >= box.expect in
    (* A crashed home can still abort (nothing was promised), so the
       Decide(false) fan-out below runs either way and frees the
       participants; only the commit path dies with the node. *)
    if all_ok && not (home_live cl h.home) then
      Rpc.crashed ~system:"2pc" ~node:h.home.id;
    if not all_ok then begin
      List.iter
        (fun dst -> send cl ~src:h.home.id ~dst (Decide { txn = h.id; outcome = false }))
        participants;
      record cl (History.Abort { txn = h.id });
      obs_abort cl ~txn:h.id ~node:h.home.id ~ro:h.ro ~reason:"vote";
      false
    end
    else begin
      (* Durable decision point: the commit verdict must reach the log
         before any Decide(true) leaves the node.  While the flush is in
         flight the coordinator answers Query with Vundecided (the
         [decided] entry is [false]), so a recovering participant cannot
         presume abort during the window. *)
      if cl.config.Sss_kv.Config.durability then begin
        Hashtbl.replace h.home.decided h.id false;
        let flush_began = Sim.now cl.sim in
        let lsn = log h.home (PDecided { txn = h.id }) in
        if not (log_sync h.home lsn) || not (home_live cl h.home) then
          Rpc.crashed ~system:"2pc" ~node:h.home.id;
        Hashtbl.replace h.home.decided h.id true;
        match cl.obs with
        | Some o ->
            Sss_obs.Obs.observe o "lat.commit.durable" (Sim.now cl.sim -. flush_began)
        | None -> ()
      end;
      let write_nodes = replica_nodes cl (List.map fst h.ws) in
      let ack =
        { ack_expect = List.length write_nodes; ack_count = 0; ack_done = Sim.Ivar.create () }
      in
      if write_nodes <> [] then Hashtbl.replace h.home.ack_boxes h.id ack;
      List.iter
        (fun dst -> send cl ~src:h.home.id ~dst (Decide { txn = h.id; outcome = true }))
        participants;
      (* The client is informed once every write replica applied: later
         transactions beginning after this response always see the data. *)
      if write_nodes <> [] then begin
        (match
           Sim.Ivar.read_timeout cl.sim ack.ack_done
             ~timeout:cl.config.Sss_kv.Config.ack_timeout
         with
        | Some () -> ()
        | None -> Rpc.stalled ~system:"2pc" ~phase:"apply ack" (Ids.txn_to_string h.id));
        Hashtbl.remove h.home.ack_boxes h.id;
        if not (home_live cl h.home) then Rpc.crashed ~system:"2pc" ~node:h.home.id
      end;
      record cl (History.Commit { txn = h.id; ws = List.map fst h.ws });
      obs_commit cl ~txn:h.id ~node:h.home.id ~ro:h.ro ~began:h.begin_at;
      true
    end
  end

let abort h =
  if h.finished then invalid_arg "Twopc: abort on a finished transaction";
  h.finished <- true;
  record h.cl (History.Abort { txn = h.id });
  obs_abort h.cl ~txn:h.id ~node:h.home.id ~ro:h.ro ~reason:"client"

let txn_id h = h.id

let history t = t.history

let obs t = t.obs

let local_keys t n = Replication.keys_at t.repl n

let network t = t.net

(* Resident words of every node's store, under the same heap model as
   [Sss_data.Mvstore.mem_words]: hash buckets + binding boxes, one cell
   record per key, and the boxed value strings (headers included).  Cold
   path (end-of-run gauge); the sum is bucket-order-insensitive. *)
let store_words t =
  let str_words len = 1 + ((len + 8) / 8) in
  Array.fold_left
    (fun acc (n : node) ->
      let st = (Hashtbl.stats n.store [@order_ok]) in
      (Hashtbl.fold
         (fun _ (c : cell) a -> a + 4 + str_words (String.length c.value))
         n.store
         (acc + st.Hashtbl.num_buckets + (4 * st.Hashtbl.num_bindings))
       [@order_ok]))
    0 t.nodes

let quiescent t =
  let problems = ref [] in
  Array.iter
    (fun (n : node) ->
      if Hashtbl.length n.prepared > 0 then
        problems := Printf.sprintf "node %d: %d prepared linger" n.id (Hashtbl.length n.prepared) :: !problems;
      if Locks.holder_count n.locks > 0 then
        problems := Printf.sprintf "node %d: %d lock holders" n.id (Locks.holder_count n.locks) :: !problems)
    t.nodes;
  match !problems with [] -> Ok () | ps -> Error (String.concat "; " ps)
