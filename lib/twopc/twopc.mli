(** 2PC-baseline competitor (§V of the paper).

    "All transactions execute as SSS's update transactions; read-only
    transactions validate their execution, therefore they can abort; and no
    multi-version data repository is deployed."  Like SSS it guarantees
    external consistency — at the cost of aborting read-only transactions
    and holding locks across the commit round.

    The deployment parameters are shared with SSS ({!Sss_kv.Config.t}) so
    the experiment harness can run both under identical conditions; the
    snapshot-queuing-specific fields are ignored. *)

open Sss_data

type cluster

type handle

type msg
(** The 2PC wire protocol (abstract; inspect with {!message_kind}). *)

val create : Sss_sim.Sim.t -> Sss_kv.Config.t -> cluster

val begin_txn : cluster -> node:Ids.node -> read_only:bool -> handle
(** [read_only] is accepted for interface parity; such transactions simply
    never write, and still validate and may abort. *)

val read : handle -> Ids.key -> string

val write : handle -> Ids.key -> string -> unit

val commit : handle -> bool
(** Runs the full 2PC (lock, validate, apply) for every transaction; the
    client is informed once all participants applied. *)

val abort : handle -> unit

val txn_id : handle -> Ids.txn

val history : cluster -> Sss_consistency.History.t

val obs : cluster -> Sss_obs.Obs.t option
(** The observability sink — [Some] iff [Config.observe] was set at
    creation (docs/OBSERVABILITY.md). *)

val local_keys : cluster -> Ids.node -> Ids.key array
(** Keys replicated at a node (for the locality workload). *)

val network : cluster -> msg Sss_net.Network.t
(** The cluster's network, for attaching fault plans ([Sss_chaos.Chaos]). *)

val message_kind : msg -> string
(** Stable lowercase kind name ("prepare", "vote", …) for per-message-type
    fault rules; transport wrappers report their payload's kind. *)

val quiescent : cluster -> (unit, string) result

val store_words : cluster -> int
(** Resident words of every node's store, under the heap model of
    [Sss_data.Mvstore.mem_words] — the cross-protocol storage-footprint
    gauge of the saturation figure. *)

(** {1 Crash & recovery} — durability mode (docs/DURABILITY.md)

    Wired to {!Sss_chaos.Chaos.install}'s [on_crash]/[on_restart] hooks.
    With [Config.durability = false] both are (nearly) no-ops: the NIC
    fault is all there is, and [restart_node] merely reconnects it. *)

val crash_node : cluster -> Ids.node -> unit
(** Discard the node's volatile state: wound every parked waiter with
    {!Sss_net.Rpc.Crashed}, lose the unflushed log tail, and swap in a
    pristine node record (not yet [alive]).  Bare callback — safe from
    {!Sss_chaos.Chaos} event position. *)

val restart_node : cluster -> Ids.node -> unit
(** Redo recovery: reload the last checkpoint, replay the durable log
    tail, re-take locks for in-doubt prepared transactions, reconnect the
    NIC, and spawn termination watchdogs that query each in-doubt
    transaction's coordinator until its outcome is known. *)
