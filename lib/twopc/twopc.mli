(** 2PC-baseline competitor (§V of the paper).

    "All transactions execute as SSS's update transactions; read-only
    transactions validate their execution, therefore they can abort; and no
    multi-version data repository is deployed."  Like SSS it guarantees
    external consistency — at the cost of aborting read-only transactions
    and holding locks across the commit round.

    The deployment parameters are shared with SSS ({!Sss_kv.Config.t}) so
    the experiment harness can run both under identical conditions; the
    snapshot-queuing-specific fields are ignored. *)

open Sss_data

type cluster

type handle

type msg
(** The 2PC wire protocol (abstract; inspect with {!message_kind}). *)

val create : Sss_sim.Sim.t -> Sss_kv.Config.t -> cluster

val begin_txn : cluster -> node:Ids.node -> read_only:bool -> handle
(** [read_only] is accepted for interface parity; such transactions simply
    never write, and still validate and may abort. *)

val read : handle -> Ids.key -> string

val write : handle -> Ids.key -> string -> unit

val commit : handle -> bool
(** Runs the full 2PC (lock, validate, apply) for every transaction; the
    client is informed once all participants applied. *)

val abort : handle -> unit

val txn_id : handle -> Ids.txn

val history : cluster -> Sss_consistency.History.t

val obs : cluster -> Sss_obs.Obs.t option
(** The observability sink — [Some] iff [Config.observe] was set at
    creation (docs/OBSERVABILITY.md). *)

val local_keys : cluster -> Ids.node -> Ids.key array
(** Keys replicated at a node (for the locality workload). *)

val network : cluster -> msg Sss_net.Network.t
(** The cluster's network, for attaching fault plans ([Sss_chaos.Chaos]). *)

val message_kind : msg -> string
(** Stable lowercase kind name ("prepare", "vote", …) for per-message-type
    fault rules; transport wrappers report their payload's kind. *)

val quiescent : cluster -> (unit, string) result
