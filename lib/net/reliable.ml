(* At-least-once delivery with exactly-once processing on top of
   {!Network}: the machinery behind each protocol's fault-tolerance mode.

   The sender wraps a payload in a protocol-level [Tracked]-style envelope
   carrying a token unique across the cluster (the envelope constructor is
   supplied by the protocol, since the message type is its own), then a
   retry fiber re-sends the envelope with exponential backoff until the
   receiver's receipt arrives or the retry budget is exhausted.  The
   receiver acknowledges every copy (receipts themselves can be lost) but
   processes the payload only the first time, so protocol handlers never
   observe re-deliveries and need no per-message idempotency reasoning.

   Everything runs on virtual time and plain data: no wall clock, no
   ambient randomness, so retries are as deterministic as the rest of the
   simulation.

   Allocation audit: this module is inactive in healthy runs
   ([Config.fault_tolerance] defaults to [false]; [State.send] then calls
   [Network.send] directly), so nothing here sits on the benchmark hot
   path.  In fault-tolerance mode the per-send cost is one envelope, one
   ivar, two hashtable entries and a retry fiber — all inherent to the
   at-least-once contract, none carrying floats across non-inlined
   boundaries (timeouts stay inside the fiber's own frames). *)

open Sss_sim

type retry = { initial : float; max : float; limit : int }

type 'msg t = {
  sim : Sim.t;
  net : 'msg Network.t;
  retry : retry;
  mutable token : int;  (* cluster-global: tokens are unique per send *)
  awaiting : (int, unit Sim.Ivar.t) Hashtbl.t;
  seen : (int, float) Hashtbl.t;  (* token -> first processing time *)
  mutable seen_ops : int;
  mutable retries : int;
  mutable stalled : int;
  mutable obs : Sss_obs.Obs.t option;
}

let create sim net ~retry =
  {
    sim;
    net;
    retry;
    token = 0;
    awaiting = Hashtbl.create 256;
    seen = Hashtbl.create 1024;
    seen_ops = 0;
    retries = 0;
    stalled = 0;
    obs = None;
  }

let set_obs t o = t.obs <- o

let send t ?prio ~src ~dst wrap =
  t.token <- t.token + 1;
  let token = t.token in
  let msg = wrap token in
  let iv = Sim.Ivar.create () in
  Hashtbl.replace t.awaiting token iv;
  Network.send t.net ?prio ~src ~dst msg;
  (* The retry fiber gives up silently after [limit] attempts (counted in
     [stalled]): an unreachable destination must not keep the event queue
     alive forever, and the foreground waiter has its own backstop that
     turns the stall into a typed {!Rpc.Stalled}. *)
  Sim.spawn t.sim (fun () ->
      let rec watch attempt timeout =
        match Sim.Ivar.read_timeout t.sim iv ~timeout with
        | Some () -> Hashtbl.remove t.awaiting token
        | None ->
            if attempt >= t.retry.limit then begin
              Hashtbl.remove t.awaiting token;
              t.stalled <- t.stalled + 1;
              match t.obs with
              | Some o ->
                  Sss_obs.Obs.incr o "transport.stall";
                  Sss_obs.Obs.emit o ~at:(Sim.now t.sim) (Sss_obs.Obs.Stall { src; dst })
              | None -> ()
            end
            else begin
              t.retries <- t.retries + 1;
              (match t.obs with
              | Some o ->
                  Sss_obs.Obs.incr o "transport.retry";
                  Sss_obs.Obs.emit o ~at:(Sim.now t.sim)
                    (Sss_obs.Obs.Retry { src; dst; attempt })
              | None -> ());
              Network.send t.net ?prio ~src ~dst msg;
              watch (attempt + 1) (Float.min (timeout *. 2.0) t.retry.max)
            end
      in
      watch 1 t.retry.initial)

let delivered t token =
  match Hashtbl.find_opt t.awaiting token with
  | Some iv -> if not (Sim.Ivar.is_filled iv) then Sim.Ivar.fill t.sim iv ()
  | None -> ()  (* late receipt of an already-confirmed (or abandoned) send *)

(* Re-delivery ends with the sender's retry horizon, which is bounded by
   [limit] backoffs; anything older than this can be forgotten safely. *)
let seen_horizon = 30.0

let receive t token =
  if Hashtbl.mem t.seen token then false
  else begin
    Hashtbl.replace t.seen token (Sim.now t.sim);
    t.seen_ops <- t.seen_ops + 1;
    if t.seen_ops land 8191 = 0 then begin
      let cutoff = Sim.now t.sim -. seen_horizon in
      (* Sweep in sorted token order so the table's post-sweep shape never
         depends on bucket order (deterministic by construction). *)
      let stale =
        (Hashtbl.fold (fun k at acc -> if at < cutoff then k :: acc else acc) t.seen []
        [@order_ok])
        |> List.sort Int.compare
      in
      List.iter (Hashtbl.remove t.seen) stale
    end;
    true
  end

let retries t = t.retries

let stalled t = t.stalled
