open Sss_sim

exception Stalled of { system : string; phase : string; detail : string }

let stalled ~system ~phase detail = raise (Stalled { system; phase; detail })

exception Crashed of { system : string; node : int }

let crashed ~system ~node = raise (Crashed { system; node })

let () =
  Printexc.register_printer (function
    | Stalled { system; phase; detail } ->
        Some (Printf.sprintf "Rpc.Stalled(%s: %s stalled beyond the retry budget: %s)" system phase detail)
    | Crashed { system; node } ->
        Some (Printf.sprintf "Rpc.Crashed(%s: node %d lost its volatile state)" system node)
    | _ -> None)

module Pending = struct
  type 'a slot = ('a, exn) result Sim.Ivar.t

  type 'a t = { mutable next : int; table : (int, 'a slot) Hashtbl.t }

  let create () = { next = 0; table = Hashtbl.create 64 }

  let fresh t =
    t.next <- t.next + 1;
    let iv = Sim.Ivar.create () in
    Hashtbl.replace t.table t.next iv;
    (t.next, iv)

  let resolve sim t id v =
    match Hashtbl.find_opt t.table id with
    | None -> ()
    | Some iv ->
        Hashtbl.remove t.table id;
        if not (Sim.Ivar.is_filled iv) then Sim.Ivar.fill sim iv (Ok v)

  let await sim slot =
    match Sim.Ivar.read sim slot with Ok v -> v | Error e -> raise e

  let await_timeout sim slot ~timeout =
    match Sim.Ivar.read_timeout sim slot ~timeout with
    | Some (Ok v) -> Some v
    | Some (Error e) -> raise e
    | None -> None

  let poison_all sim t e =
    (* wake the waiters in request-id order: the table's bucket order must
       not leak into the trajectory *)
    let ids =
      List.sort Int.compare (Hashtbl.fold (fun id _ acc -> id :: acc) t.table [] [@order_ok])
    in
    List.iter
      (fun id ->
        match Hashtbl.find_opt t.table id with
        | None -> ()
        | Some iv ->
            Hashtbl.remove t.table id;
            if not (Sim.Ivar.is_filled iv) then Sim.Ivar.fill sim iv (Error e))
      ids

  let forget t id = Hashtbl.remove t.table id

  let outstanding t = Hashtbl.length t.table
end

module Gather = struct
  type 'a t = {
    expect : int;
    mutable responses : 'a list;  (* reverse arrival order *)
    mutable count : int;
    complete : unit Sim.Ivar.t;
  }

  let create ~expect =
    { expect; responses = []; count = 0; complete = Sim.Ivar.create () }

  let add sim t v =
    if t.count < t.expect then begin
      t.responses <- v :: t.responses;
      t.count <- t.count + 1;
      if t.count = t.expect && not (Sim.Ivar.is_filled t.complete) then
        Sim.Ivar.fill sim t.complete ()
    end

  let received t = List.rev t.responses

  let await sim t ~timeout =
    if t.count = t.expect then Some (received t)
    else
      match Sim.Ivar.read_timeout sim t.complete ~timeout with
      | Some () -> Some (received t)
      | None -> None
end
