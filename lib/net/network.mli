(** Simulated message-passing network.

    Models the paper's testbed (§V): reliable asynchronous channels with a
    configurable propagation latency (~20µs on their InfiniBand cluster), a
    per-node serial processing capacity (a message occupies its destination
    node's CPU for [cpu_per_message] before its handler runs), and — like
    SSS's "optimized network component" — per-message priorities: when a
    node is saturated, higher-priority messages (e.g. Remove) overtake
    lower-priority ones in its ingress queue.

    Failures can be injected for tests: message drop probability, link
    partitions, and node crashes (crash-stop; a crashed node neither sends
    nor receives). *)

type config = {
  latency_base : float;  (** fixed one-way propagation delay, seconds *)
  latency_jitter : float;  (** mean of an added exponential jitter; 0 = none *)
  self_latency : float;  (** delay for messages a node sends to itself *)
  cpu_per_message : float;  (** destination service time per message *)
}

val default_config : config
(** 20µs base latency, 2µs jitter, 1µs self delivery, 2µs service — chosen
    to mirror the paper's cluster; experiments override as needed. *)

type 'msg t

val create :
  ?size_of:('msg -> int) ->
  ?fast_dispatch:bool ->
  Sss_sim.Sim.t ->
  Sss_sim.Prng.t ->
  nodes:int ->
  config:config ->
  'msg t
(** [size_of] (default: 0) is charged to the byte counter per sent message,
    letting protocols account for their wire footprint (e.g. vector-clock
    compression).

    [fast_dispatch] (default [true]) selects the inline dispatch fast path:
    one callback event per delivered message, with the handler run inline
    under its own effect handler (parking only if it actually suspends)
    instead of a fiber sleep plus a spawned handler fiber per message.
    Disable to run the reference path, e.g. for the cross-path determinism
    test. *)

val nodes : 'msg t -> int

val set_handler : 'msg t -> Sss_data.Ids.node -> (src:Sss_data.Ids.node -> 'msg -> unit) -> unit
(** Install the message handler for a node.  Each delivery runs the handler
    in a fresh fiber context (inline on the fast path, spawned on the slow
    path), so handlers may block without stalling the node's ingress
    queue. *)

val set_fast_dispatch : 'msg t -> bool -> unit
(** Switch dispatch paths at runtime (see {!create}); intended for tests
    comparing the two. *)

(** {1 Observation} *)

type 'msg observer = { obs : Sss_obs.Obs.t; kind_of : 'msg -> string }
(** A trace/metrics sink plus the protocol's message classifier ([kind_of]
    names a message's kind, e.g. ["Prepare"]). *)

val set_observer : 'msg t -> 'msg observer option -> unit
(** Install (or remove) an observer.  With one installed the network emits
    [Send]/[Recv]/[Enqueue]/[Dequeue]/[Drop] trace events, per-kind
    sent/recv/lost counters, per-kind end-to-end latency histograms
    ([lat.msg.<kind>]) and per-node ingress-depth gauges
    ([net.queue.node<i>]).  Observation is passive: it draws no randomness
    and schedules nothing, so trajectories are unchanged. *)

val queue_depth : 'msg t -> Sss_data.Ids.node -> int
(** Current ingress-queue depth of a node (for gauge sampling). *)

val send : 'msg t -> ?prio:int -> src:Sss_data.Ids.node -> dst:Sss_data.Ids.node -> 'msg -> unit
(** Fire-and-forget; lower [prio] is served first under saturation
    (default 100). *)

val send_many : 'msg t -> ?prio:int -> src:Sss_data.Ids.node -> dst:Sss_data.Ids.node list -> 'msg -> unit

(** {1 Fault injection}

    Raw primitives; the declarative layer that drives them from a seeded,
    reproducible fault plan is [Sss_chaos.Chaos] (see docs/FAULTS.md).
    All of them only affect {e future} sends/deliveries — messages already
    in flight when a fault is injected are not retroactively dropped. *)

val crash : 'msg t -> Sss_data.Ids.node -> unit
(** Fail-stop the node's network interface: every message sent by or
    addressed to it (including messages already in flight towards it) is
    dropped until {!recover}.  The node's in-memory protocol state and its
    running fibers are untouched — this models a network-isolated process,
    and a recovery therefore resumes with its pre-crash state (see
    docs/FAULTS.md for what that does and does not exercise). *)

val recover : 'msg t -> Sss_data.Ids.node -> unit
(** Undo {!crash}: the node sends and receives again. *)

val is_crashed : 'msg t -> Sss_data.Ids.node -> bool

val sever : 'msg t -> Sss_data.Ids.node -> Sss_data.Ids.node -> unit
(** Cut the (bidirectional) link between two nodes: sends in either
    direction are dropped until {!heal}.  Idempotent. *)

val heal : 'msg t -> Sss_data.Ids.node -> Sss_data.Ids.node -> unit
(** Restore a severed link; a no-op if the link is intact. *)

val set_drop_probability : 'msg t -> float -> unit
(** Uniform message loss (default 0): each send is dropped with this
    probability, drawn from the network's own PRNG (so enabling it changes
    the jitter draw sequence of the run — use a {!set_perturb} plan with its
    own PRNG when the surrounding trajectory must stay comparable). *)

val drop_probability : 'msg t -> float
(** Current uniform loss probability. *)

type fault = { drop : bool; extra_delay : float; duplicates : int }
(** Verdict of a perturbation hook for one message: lose it, delay it by
    [extra_delay] seconds on top of the modelled latency, and/or deliver
    [duplicates] extra copies (at the same perturbed latency). *)

val no_fault : fault
(** [{ drop = false; extra_delay = 0.0; duplicates = 0 }] *)

val set_perturb :
  'msg t ->
  (src:Sss_data.Ids.node -> dst:Sss_data.Ids.node -> 'msg -> fault) option ->
  unit
(** Install (or clear, with [None]) a per-send perturbation hook.  The hook
    runs after the built-in checks (crashed source, severed link, uniform
    drop), so when it is absent the send path is exactly the healthy one.
    Any randomness belongs inside the hook, drawn from the caller's own
    seeded PRNG — [Sss_chaos.Chaos] compiles declarative fault plans
    into such a hook. *)

(* Telemetry *)

type stats = { sent : int; delivered : int; dropped : int; bytes : int }

val stats : 'msg t -> stats
