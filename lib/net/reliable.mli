(** At-least-once delivery with exactly-once processing, on top of
    {!Network}.

    This is the transport the protocols switch on in fault-tolerance mode
    (see [Sss_kv.Config.fault_tolerance] and docs/FAULTS.md): a tracked
    send is retried with exponential backoff until the receiver's receipt
    comes back, receipts are re-issued for every duplicate, and the
    receiver processes each token only once — so the protocol logic above
    sees exactly the lossless network it was written for, merely with
    longer and more variable delays.

    The envelope and receipt are ordinary protocol messages (each protocol
    adds a [Tracked of {token; inner}] and a [Delivered of {token}]
    constructor to its message type), so they pay latency, priorities and
    ingress-queue service like everything else.  A typical wiring:

    {[
      (* sender side *)
      Reliable.send rel ~prio ~src ~dst (fun token -> Tracked { token; inner })

      (* receiver side, in the dispatch loop *)
      | Tracked { token; inner } ->
          send_raw ~dst:src (Delivered { token });
          if Reliable.receive rel token then dispatch t node ~src inner
      | Delivered { token } -> Reliable.delivered rel token
    ]}

    Determinism: retries run on virtual time and all state is plain data,
    so a run's trajectory remains a pure function of its seeds and fault
    plan. *)

type retry = {
  initial : float;  (** first re-send after this much virtual time *)
  max : float;  (** backoff doubles up to this cap *)
  limit : int;  (** attempts before the sender gives up (counted in {!stalled}) *)
}

type 'msg t

val create : Sss_sim.Sim.t -> 'msg Network.t -> retry:retry -> 'msg t

val send :
  'msg t -> ?prio:int -> src:Sss_data.Ids.node -> dst:Sss_data.Ids.node -> (int -> 'msg) -> unit
(** [send t ~src ~dst wrap] allocates a fresh token, sends [wrap token] and
    spawns a retry fiber that re-sends it until {!delivered} is called for
    the token or the budget is exhausted.  Give [wrap] no side effects. *)

val delivered : 'msg t -> int -> unit
(** The receiver's receipt for a token arrived: stop retrying it.  Late and
    duplicate receipts are ignored. *)

val receive : 'msg t -> int -> bool
(** [receive t token] is [true] exactly the first time the token is seen;
    the caller processes the payload only then, but must send its receipt
    for every copy (receipts can be lost too).  Old tokens are swept after
    a horizon comfortably beyond any retry schedule. *)

val set_obs : 'msg t -> Sss_obs.Obs.t option -> unit
(** Attach (or detach) an observability sink: each re-send then emits a
    [Retry] trace event and bumps [transport.retry]; each abandoned send
    emits [Stall] and bumps [transport.stall].  Passive — trajectories are
    unchanged. *)

val retries : 'msg t -> int
(** Total re-sends performed (telemetry). *)

val stalled : 'msg t -> int
(** Sends abandoned after exhausting the retry budget — nonzero means the
    fault plan out-lasted the retry schedule (or a destination never
    recovered); protocol waits depending on such a send will surface a
    {!Rpc.Stalled}. *)
