(** Request/response bookkeeping on top of {!Network}.

    Protocols send explicit response messages (so replies pay network
    latency like everything else); these helpers match responses back to
    the fiber that is waiting for them. *)

exception Stalled of { system : string; phase : string; detail : string }
(** A client-side wait outlived every retry and its backstop timeout: under
    fault injection this means the fault plan never let the protocol step
    complete (e.g. a partition that is never healed); in a healthy run it
    indicates a protocol bug.  Replaces the [failwith]s that used to
    terminate timed-out commit waits.  [system] names the protocol stack
    ("sss", "twopc", "walter", "rococo"), [phase] the wait that gave up. *)

val stalled : system:string -> phase:string -> string -> 'a
(** [stalled ~system ~phase detail] raises {!Stalled}. *)

(** Single-response slots: "contact all replicas, take the fastest answer"
    (SSS reads), or plain unicast RPC.  Late and duplicate responses are
    ignored. *)
module Pending : sig
  type 'a t

  val create : unit -> 'a t

  val fresh : 'a t -> int * 'a Sss_sim.Sim.Ivar.t
  (** Allocate a request id and the ivar its response will fill. *)

  val resolve : Sss_sim.Sim.t -> 'a t -> int -> 'a -> unit
  (** Fill the slot for a request id; no-op if unknown or already
      resolved. *)

  val forget : 'a t -> int -> unit

  val outstanding : 'a t -> int
end

(** Fan-out collection: "send Prepare to all participants and wait for every
    Vote, or time out" (2PC). *)
module Gather : sig
  type 'a t

  val create : expect:int -> 'a t

  val add : Sss_sim.Sim.t -> 'a t -> 'a -> unit
  (** Record one response; completing the expected count wakes the
      waiter.  Extra responses beyond [expect] are ignored. *)

  val await : Sss_sim.Sim.t -> 'a t -> timeout:float -> 'a list option
  (** All responses in arrival order, or [None] on timeout. *)

  val received : 'a t -> 'a list
  (** Whatever has arrived so far (arrival order). *)
end
