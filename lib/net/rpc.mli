(** Request/response bookkeeping on top of {!Network}.

    Protocols send explicit response messages (so replies pay network
    latency like everything else); these helpers match responses back to
    the fiber that is waiting for them. *)

exception Stalled of { system : string; phase : string; detail : string }
(** A client-side wait outlived every retry and its backstop timeout: under
    fault injection this means the fault plan never let the protocol step
    complete (e.g. a partition that is never healed); in a healthy run it
    indicates a protocol bug.  Replaces the [failwith]s that used to
    terminate timed-out commit waits.  [system] names the protocol stack
    ("sss", "twopc", "walter", "rococo"), [phase] the wait that gave up. *)

val stalled : system:string -> phase:string -> string -> 'a
(** [stalled ~system ~phase detail] raises {!Stalled}. *)

exception Crashed of { system : string; node : int }
(** Raised by a client-side protocol step whose home node crashed under
    [Config.durability]: the node's volatile state — including the
    rendezvous this step was parked on — is gone, and the transaction can
    never complete.  The workload driver treats it as "this client's node
    is down": the in-flight transaction is abandoned without a history
    verdict (the consistency checker accepts incomplete transactions) and
    the client retries after a backoff, succeeding once recovery finishes.
    Distinct from {!Stalled}, which signals a wait that out-lived its
    retry budget and is a hard failure. *)

val crashed : system:string -> node:int -> 'a
(** [crashed ~system ~node] raises {!Crashed}. *)

(** Single-response slots: "contact all replicas, take the fastest answer"
    (SSS reads), or plain unicast RPC.  Late and duplicate responses are
    ignored. *)
module Pending : sig
  type 'a t

  type 'a slot
  (** One waiter's rendezvous.  Holds either the response or the exception
      a crash poisoned it with. *)

  val create : unit -> 'a t

  val fresh : 'a t -> int * 'a slot
  (** Allocate a request id and the slot its response will fill. *)

  val resolve : Sss_sim.Sim.t -> 'a t -> int -> 'a -> unit
  (** Fill the slot for a request id; no-op if unknown or already
      resolved. *)

  val await : Sss_sim.Sim.t -> 'a slot -> 'a
  (** Park the calling fiber until the slot resolves; re-raises the
      poisoning exception if the node crashed first. *)

  val await_timeout : Sss_sim.Sim.t -> 'a slot -> timeout:float -> 'a option
  (** Like {!await} with a backstop: [None] once [timeout] virtual seconds
      pass without a response. *)

  val poison_all : Sss_sim.Sim.t -> 'a t -> exn -> unit
  (** Fail every outstanding slot with the given exception (in request-id
      order) and empty the table — a crashed node abandoning its
      waiters. *)

  val forget : 'a t -> int -> unit

  val outstanding : 'a t -> int
end

(** Fan-out collection: "send Prepare to all participants and wait for every
    Vote, or time out" (2PC). *)
module Gather : sig
  type 'a t

  val create : expect:int -> 'a t

  val add : Sss_sim.Sim.t -> 'a t -> 'a -> unit
  (** Record one response; completing the expected count wakes the
      waiter.  Extra responses beyond [expect] are ignored. *)

  val await : Sss_sim.Sim.t -> 'a t -> timeout:float -> 'a list option
  (** All responses in arrival order, or [None] on timeout. *)

  val received : 'a t -> 'a list
  (** Whatever has arrived so far (arrival order). *)
end
