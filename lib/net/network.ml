open Sss_sim

type config = {
  latency_base : float;
  latency_jitter : float;
  self_latency : float;
  cpu_per_message : float;
}

let default_config =
  { latency_base = 20e-6; latency_jitter = 2e-6; self_latency = 1e-6; cpu_per_message = 2e-6 }

(* [sent] is the virtual send time, carried only so an observer can report
   end-to-end message latency at dispatch; the heap order ignores it. *)
type 'msg ingress = { prio : int; seq : int; src : Sss_data.Ids.node; sent : float; msg : 'msg }

(* Specialized ingress min-heap on (prio, seq): the comparator is inlined
   instead of a closure call, pop allocates nothing, and sifts fill a hole
   instead of swapping.  One push and one pop per delivered message makes
   this one of the simulator's hottest structures.  (seq is unique, so the
   order is total and pop order independent of heap internals.)  Like the
   generic [Heap], growth fills fresh slots with the pushed element; popped
   slots may pin their last message until overwritten, which is bounded by
   the queue's high-water mark. *)
module Iq = struct
  type 'msg t = { mutable data : 'msg ingress array; mutable size : int }

  let create () = { data = [||]; size = 0 }

  let is_empty q = q.size = 0

  let[@inline] less a b = a.prio < b.prio || (a.prio = b.prio && a.seq < b.seq)

  let push q x =
    let cap = Array.length q.data in
    if q.size = cap then begin
      let ndata = Array.make (if cap = 0 then 16 else cap * 2) x in
      Array.blit q.data 0 ndata 0 q.size;
      q.data <- ndata
    end;
    let data = q.data in
    let i = ref q.size in
    q.size <- q.size + 1;
    let moving = ref true in
    while !moving && !i > 0 do
      let p = (!i - 1) / 2 in
      let pe = Array.unsafe_get data p in
      if less x pe then begin
        Array.unsafe_set data !i pe;
        i := p
      end
      else moving := false
    done;
    Array.unsafe_set data !i x

  (* precondition: size > 0 *)
  let pop_min q =
    let data = q.data in
    let top = Array.unsafe_get data 0 in
    let n = q.size - 1 in
    q.size <- n;
    if n > 0 then begin
      let last = Array.unsafe_get data n in
      let i = ref 0 in
      let moving = ref true in
      while !moving do
        let l = (2 * !i) + 1 in
        if l >= n then moving := false
        else begin
          let r = l + 1 in
          let c =
            if r < n && less (Array.unsafe_get data r) (Array.unsafe_get data l) then r
            else l
          in
          let ce = Array.unsafe_get data c in
          if less ce last then begin
            Array.unsafe_set data !i ce;
            i := c
          end
          else moving := false
        end
      done;
      Array.unsafe_set data !i last
    end;
    top
end

type 'msg node_state = {
  mutable handler : (src:Sss_data.Ids.node -> 'msg -> unit) option;
  queue : 'msg Iq.t;
  mutable serving : bool;
  mutable crashed : bool;
}

type fault = { drop : bool; extra_delay : float; duplicates : int }

let no_fault = { drop = false; extra_delay = 0.0; duplicates = 0 }

type stats = { sent : int; delivered : int; dropped : int; bytes : int }

(* An observer pairs the sink with the protocol's message classifier; the
   network itself has no idea what a message means. *)
type 'msg observer = { obs : Sss_obs.Obs.t; kind_of : 'msg -> string }

type 'msg t = {
  sim : Sim.t;
  rng : Prng.t;
  config : config;
  size_of : 'msg -> int;
  nodes : 'msg node_state array;
  mutable severed : (Sss_data.Ids.node * Sss_data.Ids.node) list;
  mutable drop_probability : float;
  mutable perturb : (src:Sss_data.Ids.node -> dst:Sss_data.Ids.node -> 'msg -> fault) option;
  mutable fast_dispatch : bool;
  mutable observer : 'msg observer option;
  mutable seq : int;
  mutable sent : int;
  mutable delivered : int;
  mutable dropped : int;
  mutable bytes : int;
}

let create ?(size_of = fun _ -> 0) ?(fast_dispatch = true) sim rng ~nodes ~config =
  let mk _ = { handler = None; queue = Iq.create (); serving = false; crashed = false } in
  {
    sim;
    rng;
    config;
    size_of;
    nodes = Array.init nodes mk;
    severed = [];
    drop_probability = 0.0;
    perturb = None;
    fast_dispatch;
    observer = None;
    seq = 0;
    sent = 0;
    delivered = 0;
    dropped = 0;
    bytes = 0;
  }

let nodes t = Array.length t.nodes

let set_handler t n f = t.nodes.(n).handler <- Some f

let set_fast_dispatch t b = t.fast_dispatch <- b

let set_observer t o = t.observer <- o

let queue_depth t n = t.nodes.(n).queue.Iq.size

(* Drain a node's ingress queue — slow (reference) path: each message
   occupies the CPU for the configured service time via a fiber sleep, then
   its handler runs in its own spawned fiber so that a blocking handler
   never stalls the queue. *)
(* Observation of a dispatch: end-to-end latency histogram per message
   kind plus a Dequeue trace event.  Shared by both serve paths; called
   only when an observer is installed. *)
let observe_dispatch t n (o : _ observer) ing =
  let kind = o.kind_of ing.msg in
  let at = Sim.now t.sim in
  let waited = at -. ing.sent in
  Sss_obs.Obs.observe o.obs ("lat.msg." ^ kind) waited;
  Sss_obs.Obs.emit o.obs ~at
    (Sss_obs.Obs.Dequeue { kind; node = n; depth = t.nodes.(n).queue.Iq.size; waited })

let rec serve_slow t n =
  let st = t.nodes.(n) in
  if Iq.is_empty st.queue then st.serving <- false
  else begin
    let ing = Iq.pop_min st.queue in
    Sim.sleep t.sim t.config.cpu_per_message;
    if not st.crashed then begin
      t.delivered <- t.delivered + 1;
      (match t.observer with Some o -> observe_dispatch t n o ing | None -> ());
      match st.handler with
      | Some f -> Sim.spawn t.sim (fun () -> f ~src:ing.src ing.msg)
      | None -> ()
    end;
    serve_slow t n
  end

(* Fast path: one plain-callback event per message instead of a fiber sleep
   plus a spawned handler fiber.  The CPU charge is the event's delay; when
   it fires, the handler runs inline under its own effect handler at the
   same virtual instant the slow path would have started its handler fiber.
   A handler that suspends simply parks its continuation and the serve
   chain moves on — blocking handlers still never stall the queue. *)
let rec serve_fast t n =
  let st = t.nodes.(n) in
  if Iq.is_empty st.queue then st.serving <- false
  else begin
    let ing = Iq.pop_min st.queue in
    Sim.schedule_callback t.sim ~delay:t.config.cpu_per_message (fun () ->
        if not st.crashed then begin
          t.delivered <- t.delivered + 1;
          (match t.observer with Some o -> observe_dispatch t n o ing | None -> ());
          match st.handler with
          | Some f ->
              (* the fused handler still counts as one simulator event so
                 DES events/sec stays comparable across dispatch modes *)
              Sim.tick t.sim;
              Sim.run_fiber (fun () -> f ~src:ing.src ing.msg)
          | None -> ()
        end;
        serve_fast t n)
  end

let deliver t ~prio ~src ~dst ~sent msg =
  let st = t.nodes.(dst) in
  if st.crashed then begin
    t.dropped <- t.dropped + 1;
    match t.observer with
    | Some o ->
        Sss_obs.Obs.emit o.obs ~at:(Sim.now t.sim)
          (Sss_obs.Obs.Drop { kind = o.kind_of msg; src; dst })
    | None -> ()
  end
  else begin
    t.seq <- t.seq + 1;
    Iq.push st.queue { prio; seq = t.seq; src; sent; msg };
    (match t.observer with
    | Some o ->
        let kind = o.kind_of msg in
        let at = Sim.now t.sim in
        let depth = st.queue.Iq.size in
        Sss_obs.Obs.incr o.obs ("msg.recv." ^ kind);
        Sss_obs.Obs.emit o.obs ~at (Sss_obs.Obs.Recv { kind; src; dst });
        Sss_obs.Obs.emit o.obs ~at (Sss_obs.Obs.Enqueue { kind; node = dst; depth });
        Sss_obs.Obs.gauge_set o.obs ("net.queue.node" ^ string_of_int dst) depth
    | None -> ());
    if not st.serving then begin
      st.serving <- true;
      if t.fast_dispatch then
        Sim.schedule_callback t.sim ~delay:0.0 (fun () -> serve_fast t dst)
      else Sim.spawn t.sim (fun () -> serve_slow t dst)
    end
  end

let link_severed t a b =
  List.exists (fun (x, y) -> (x = a && y = b) || (x = b && y = a)) t.severed

let send t ?(prio = 100) ~src ~dst msg =
  t.sent <- t.sent + 1;
  t.bytes <- t.bytes + t.size_of msg;
  (match t.observer with
  | Some o ->
      let kind = o.kind_of msg in
      Sss_obs.Obs.incr o.obs ("msg.sent." ^ kind);
      Sss_obs.Obs.emit o.obs ~at:(Sim.now t.sim)
        (Sss_obs.Obs.Send { kind; src; dst; bytes = t.size_of msg })
  | None -> ());
  let observe_loss () =
    match t.observer with
    | Some o ->
        let kind = o.kind_of msg in
        Sss_obs.Obs.incr o.obs ("msg.lost." ^ kind);
        Sss_obs.Obs.emit o.obs ~at:(Sim.now t.sim) (Sss_obs.Obs.Drop { kind; src; dst })
    | None -> ()
  in
  let lost =
    t.nodes.(src).crashed
    || link_severed t src dst
    || (t.drop_probability > 0.0 && Prng.float t.rng 1.0 < t.drop_probability)
  in
  if lost then begin
    t.dropped <- t.dropped + 1;
    observe_loss ()
  end
  else begin
    (* Installed fault plans see the message after the built-in loss checks;
       when no perturb is installed this path draws from the network PRNG
       exactly as before, so healthy-run trajectories are unchanged. *)
    let fault =
      match t.perturb with None -> no_fault | Some f -> f ~src ~dst msg
    in
    if fault.drop then begin
      t.dropped <- t.dropped + 1;
      observe_loss ()
    end
    else begin
      let latency =
        if src = dst then t.config.self_latency
        else
          t.config.latency_base
          +. (if t.config.latency_jitter > 0.0 then
                Prng.exponential t.rng ~mean:t.config.latency_jitter
              else 0.0)
      in
      let latency = latency +. fault.extra_delay in
      let sent = Sim.now t.sim in
      (* delivery never suspends: a bare callback event, not a fiber *)
      Sim.schedule_callback t.sim ~delay:latency (fun () ->
          deliver t ~prio ~src ~dst ~sent msg);
      for _ = 1 to fault.duplicates do
        Sim.schedule_callback t.sim ~delay:latency (fun () ->
            deliver t ~prio ~src ~dst ~sent msg)
      done
    end
  end

let send_many t ?prio ~src ~dst msg = List.iter (fun d -> send t ?prio ~src ~dst:d msg) dst

let crash t n = t.nodes.(n).crashed <- true

let recover t n = t.nodes.(n).crashed <- false

let is_crashed t n = t.nodes.(n).crashed

let sever t a b = if not (link_severed t a b) then t.severed <- (a, b) :: t.severed

let heal t a b =
  t.severed <- List.filter (fun (x, y) -> not ((x = a && y = b) || (x = b && y = a))) t.severed

let set_drop_probability t p =
  assert (p >= 0.0 && p <= 1.0);
  t.drop_probability <- p

let drop_probability t = t.drop_probability

let set_perturb t f = t.perturb <- f

let stats t = { sent = t.sent; delivered = t.delivered; dropped = t.dropped; bytes = t.bytes }
