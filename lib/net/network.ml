open Sss_sim

type config = {
  latency_base : float;
  latency_jitter : float;
  self_latency : float;
  cpu_per_message : float;
}

let default_config =
  { latency_base = 20e-6; latency_jitter = 2e-6; self_latency = 1e-6; cpu_per_message = 2e-6 }

(* Ingress order is (prio, seq) packed into one int — seq is unique and
   assigned at delivery, prio < 2^18, so a single int comparison reproduces
   the lexicographic order exactly (the same packing the simulator uses for
   its event keys). *)
let[@inline] pack_key ~prio ~seq = (prio lsl 44) lor seq

(* Specialized ingress min-heap on the packed key, struct-of-arrays: keys
   are immediate ints, [sents] is a flat float array (no boxed-float
   traffic), and messages are recycled [Obj.t] slots.  One push and one pop
   per delivered message makes this one of the simulator's hottest
   structures.  [pop_min] writes the minimum into the [p_*] slots — there
   is at most one outstanding dispatch per node, so the slots stay valid
   until the next pop — and poisons the vacated message slot so nothing is
   pinned past its dispatch.  The [Obj] casts are confined to this module;
   push and pop sites repair the ['msg] type. *)
module Iq = struct
  type t = {
    mutable keys : int array;
    mutable srcs : int array;
    mutable sents : float array;
    mutable msgs : Obj.t array;
    mutable size : int;
    mutable p_key : int;
    mutable p_src : int;
    p_sent : float array;  (* 1 element; flat so reuse doesn't box *)
    mutable p_msg : Obj.t;
  }

  let no_msg : Obj.t = Obj.repr ()

  let create () =
    {
      keys = [||];
      srcs = [||];
      sents = [||];
      msgs = [||];
      size = 0;
      p_key = 0;
      p_src = 0;
      p_sent = Array.make 1 0.0;
      p_msg = no_msg;
    }

  let is_empty q = q.size = 0

  let grow q =
    let cap = Array.length q.keys in
    let ncap = if cap = 0 then 16 else cap * 2 in
    let nk = Array.make ncap 0
    and ns = Array.make ncap 0
    and nt = Array.make ncap 0.0
    and nm = Array.make ncap no_msg in
    Array.blit q.keys 0 nk 0 q.size;
    Array.blit q.srcs 0 ns 0 q.size;
    Array.blit q.sents 0 nt 0 q.size;
    Array.blit q.msgs 0 nm 0 q.size;
    q.keys <- nk;
    q.srcs <- ns;
    q.sents <- nt;
    q.msgs <- nm

  let[@hot] push q key src sent msg =
    if q.size = Array.length q.keys then grow q;
    let ks = q.keys and ss = q.srcs and ts = q.sents and ms = q.msgs in
    let i = ref q.size in
    q.size <- q.size + 1;
    let moving = ref true in
    while !moving && !i > 0 do
      let p = (!i - 1) / 2 in
      let pk = Array.unsafe_get ks p in
      if key < pk then begin
        Array.unsafe_set ks !i pk;
        Array.unsafe_set ss !i (Array.unsafe_get ss p);
        Array.unsafe_set ts !i (Array.unsafe_get ts p);
        Array.unsafe_set ms !i (Array.unsafe_get ms p);
        i := p
      end
      else moving := false
    done;
    Array.unsafe_set ks !i key;
    Array.unsafe_set ss !i src;
    Array.unsafe_set ts !i sent;
    Array.unsafe_set ms !i msg

  (* precondition: size > 0 *)
  let[@hot] pop_min q =
    let ks = q.keys and ss = q.srcs and ts = q.sents and ms = q.msgs in
    q.p_key <- Array.unsafe_get ks 0;
    q.p_src <- Array.unsafe_get ss 0;
    q.p_sent.(0) <- Array.unsafe_get ts 0;
    q.p_msg <- Array.unsafe_get ms 0;
    let n = q.size - 1 in
    q.size <- n;
    let lk = Array.unsafe_get ks n in
    let lsrc = Array.unsafe_get ss n in
    let lt = Array.unsafe_get ts n in
    let lm = Array.unsafe_get ms n in
    Array.unsafe_set ms n no_msg;
    if n > 0 then begin
      let i = ref 0 in
      let moving = ref true in
      while !moving do
        let l = (2 * !i) + 1 in
        if l >= n then moving := false
        else begin
          let r = l + 1 in
          let c =
            if r < n && Array.unsafe_get ks r < Array.unsafe_get ks l then r else l
          in
          let ck = Array.unsafe_get ks c in
          if ck < lk then begin
            Array.unsafe_set ks !i ck;
            Array.unsafe_set ss !i (Array.unsafe_get ss c);
            Array.unsafe_set ts !i (Array.unsafe_get ts c);
            Array.unsafe_set ms !i (Array.unsafe_get ms c);
            i := c
          end
          else moving := false
        end
      done;
      Array.unsafe_set ks !i lk;
      Array.unsafe_set ss !i lsrc;
      Array.unsafe_set ts !i lt;
      Array.unsafe_set ms !i lm
    end
end

(* Sentinel handler: a node without one installed.  Compared by physical
   identity on the dispatch path, so the common case is one pointer test
   instead of an option probe, and the no-handler case keeps the exact
   event accounting of the old [None] branch. *)
let no_handler : src:Sss_data.Ids.node -> 'a -> unit = fun ~src:_ _ -> ()

let nop () = ()

type 'msg node_state = {
  mutable handler : src:Sss_data.Ids.node -> 'msg -> unit;
  queue : Iq.t;
  mutable serving : bool;
  mutable crashed : bool;
  (* Persistent per-node closures, created once at [create]: the serve
     chain schedules these instead of allocating a closure per message. *)
  mutable serve_cb : unit -> unit;
  mutable dispatch_cb : unit -> unit;
  mutable handler_thunk : unit -> unit;
}

type fault = { drop : bool; extra_delay : float; duplicates : int }

let no_fault = { drop = false; extra_delay = 0.0; duplicates = 0 }

type stats = { sent : int; delivered : int; dropped : int; bytes : int }

(* An observer pairs the sink with the protocol's message classifier; the
   network itself has no idea what a message means. *)
type 'msg observer = { obs : Sss_obs.Obs.t; kind_of : 'msg -> string }

type 'msg t = {
  sim : Sim.t;
  rng : Prng.t;
  config : config;
  size_of : 'msg -> int;
  nodes : 'msg node_state array;
  (* Free list of flight envelopes (see [flight] below): steady-state send
     and delivery recycle envelopes instead of allocating per message. *)
  mutable pool : 'msg flight array;
  mutable pool_n : int;
  mutable severed : (Sss_data.Ids.node * Sss_data.Ids.node) list;
  mutable drop_probability : float;
  mutable perturb : (src:Sss_data.Ids.node -> dst:Sss_data.Ids.node -> 'msg -> fault) option;
  mutable fast_dispatch : bool;
  mutable observer : 'msg observer option;
  mutable seq : int;
  mutable sent : int;
  mutable delivered : int;
  mutable dropped : int;
  mutable bytes : int;
}

(* A message in flight between [send] and its delivery event: the recycled
   envelope [Sim.schedule_apply] threads through the queue, so a send
   allocates no closure and no fresh record.  [f_sent] is a 1-element float
   array because a mutable float field of a mixed record would box on every
   reuse.  [f_src] doubles as the poison marker: -1 while the envelope sits
   in the free list, so delivery of a double-freed envelope fails fast in
   debug builds. *)
and 'msg flight = {
  f_net : 'msg t;
  mutable f_prio : int;
  mutable f_src : int;
  mutable f_dst : int;
  f_sent : float array;
  mutable f_msg : Obj.t;
}

let nodes t = Array.length t.nodes

let set_handler t n f = t.nodes.(n).handler <- f

let set_fast_dispatch t b = t.fast_dispatch <- b

let set_observer t o = t.observer <- o

let queue_depth t n = t.nodes.(n).queue.Iq.size

(* ---- flight pool ---- *)

let[@hot] take_flight t =
  let n = t.pool_n in
  if n = 0 then
    { f_net = t; f_prio = 0; f_src = 0; f_dst = 0; f_sent = Array.make 1 0.0; f_msg = Iq.no_msg }
  else begin
    t.pool_n <- n - 1;
    Array.unsafe_get t.pool (n - 1)
  end

let[@hot] return_flight t fl =
  fl.f_msg <- Iq.no_msg;
  fl.f_src <- -1;
  let cap = Array.length t.pool in
  if t.pool_n = cap then begin
    let np = Array.make (if cap = 0 then 16 else cap * 2) fl in
    Array.blit t.pool 0 np 0 cap;
    t.pool <- np
  end;
  Array.unsafe_set t.pool t.pool_n fl;
  t.pool_n <- t.pool_n + 1

(* ---- dispatch ---- *)

(* Observation of a dispatch: end-to-end latency histogram per message
   kind plus a Dequeue trace event.  Reads the queue's popped slots; called
   only when an observer is installed. *)
let observe_dispatch t n (o : _ observer) =
  let q = t.nodes.(n).queue in
  let kind = o.kind_of (Obj.obj q.Iq.p_msg) in
  let at = Sim.now t.sim in
  let waited = at -. q.Iq.p_sent.(0) in
  Sss_obs.Obs.observe o.obs ("lat.msg." ^ kind) waited;
  Sss_obs.Obs.emit o.obs ~at
    (Sss_obs.Obs.Dequeue { kind; node = n; depth = q.Iq.size; waited })

(* Drain a node's ingress queue — slow (reference) path: each message
   occupies the CPU for the configured service time via a fiber sleep, then
   its handler runs in its own spawned fiber so that a blocking handler
   never stalls the queue. *)
let rec serve_slow t n =
  let st = t.nodes.(n) in
  if Iq.is_empty st.queue then st.serving <- false
  else begin
    Iq.pop_min st.queue;
    let src = st.queue.Iq.p_src in
    let msg = Obj.obj st.queue.Iq.p_msg in
    Sim.sleep t.sim t.config.cpu_per_message;
    if not st.crashed then begin
      t.delivered <- t.delivered + 1;
      (match t.observer with Some o -> observe_dispatch t n o | None -> ());
      let f = st.handler in
      if f != no_handler then Sim.spawn t.sim (fun () -> f ~src msg)
    end;
    st.queue.Iq.p_msg <- Iq.no_msg;
    serve_slow t n
  end

(* Fast path: one plain-callback event per message instead of a fiber sleep
   plus a spawned handler fiber.  The CPU charge is the event's delay; when
   it fires, [dispatch] runs the handler inline under its own effect
   handler at the same virtual instant the slow path would have started its
   handler fiber.  A handler that suspends simply parks its continuation
   and the serve chain moves on — blocking handlers still never stall the
   queue.  The chain runs entirely on the node's persistent closures: a
   serve step pops into the queue's slots and schedules [dispatch_cb]; at
   most one dispatch per node is outstanding, so the slots survive until it
   reads them. *)
let[@hot] serve_fast t n =
  let st = t.nodes.(n) in
  if Iq.is_empty st.queue then st.serving <- false
  else begin
    Iq.pop_min st.queue;
    Sim.schedule_callback t.sim ~delay:t.config.cpu_per_message st.dispatch_cb
  end

let[@hot] dispatch t n =
  let st = t.nodes.(n) in
  if not st.crashed then begin
    t.delivered <- t.delivered + 1;
    (match t.observer with Some o -> observe_dispatch t n o | None -> ());
    if st.handler != no_handler then begin
      (* the fused handler still counts as one simulator event so DES
         events/sec stays comparable across dispatch modes *)
      Sim.tick t.sim;
      Sim.run_fiber st.handler_thunk
    end
  end;
  (* unpin after the handler: a suspended fiber already read its args *)
  st.queue.Iq.p_msg <- Iq.no_msg;
  serve_fast t n

let install_node_cbs t n =
  let st = t.nodes.(n) in
  st.serve_cb <- (fun () -> serve_fast t n);
  st.dispatch_cb <- (fun () -> dispatch t n);
  st.handler_thunk <-
    (fun () ->
      let q = st.queue in
      st.handler ~src:q.Iq.p_src (Obj.obj q.Iq.p_msg))

let create ?(size_of = fun _ -> 0) ?(fast_dispatch = true) sim rng ~nodes ~config =
  let mk _ =
    {
      handler = no_handler;
      queue = Iq.create ();
      serving = false;
      crashed = false;
      serve_cb = nop;
      dispatch_cb = nop;
      handler_thunk = nop;
    }
  in
  let t =
    {
      sim;
      rng;
      config;
      size_of;
      nodes = Array.init nodes mk;
      pool = [||];
      pool_n = 0;
      severed = [];
      drop_probability = 0.0;
      perturb = None;
      fast_dispatch;
      observer = None;
      seq = 0;
      sent = 0;
      delivered = 0;
      dropped = 0;
      bytes = 0;
    }
  in
  for n = 0 to nodes - 1 do
    install_node_cbs t n
  done;
  t

let[@hot] deliver t ~prio ~src ~dst ~sent msg =
  let st = t.nodes.(dst) in
  if st.crashed then begin
    t.dropped <- t.dropped + 1;
    match t.observer with
    | Some o ->
        Sss_obs.Obs.emit o.obs ~at:(Sim.now t.sim)
          (Sss_obs.Obs.Drop { kind = o.kind_of msg; src; dst })
    | None -> ()
  end
  else begin
    t.seq <- t.seq + 1;
    Iq.push st.queue (pack_key ~prio ~seq:t.seq) src sent (Obj.repr msg);
    (match t.observer with
    | Some o ->
        let kind = o.kind_of msg in
        let at = Sim.now t.sim in
        let depth = st.queue.Iq.size in
        Sss_obs.Obs.incr o.obs ("msg.recv." ^ kind);
        Sss_obs.Obs.emit o.obs ~at (Sss_obs.Obs.Recv { kind; src; dst });
        Sss_obs.Obs.emit o.obs ~at (Sss_obs.Obs.Enqueue { kind; node = dst; depth });
        Sss_obs.Obs.gauge_set o.obs ("net.queue.node" ^ string_of_int dst) depth
    | None -> ());
    if not st.serving then begin
      st.serving <- true;
      if t.fast_dispatch then Sim.schedule_callback t.sim ~delay:0.0 st.serve_cb
      else Sim.spawn t.sim ((fun () -> serve_slow t dst) [@alloc_ok])
    end
  end

(* The delivery event's handler: a static function applied to the recycled
   flight envelope via [Sim.schedule_apply], so the send path allocates
   neither a closure nor an envelope in steady state. *)
let[@hot] deliver_flight : type a. a flight -> unit = fun fl ->
  assert (fl.f_src >= 0);
  let t = fl.f_net in
  let prio = fl.f_prio and src = fl.f_src and dst = fl.f_dst in
  let sent = fl.f_sent.(0) in
  let msg : a = Obj.obj fl.f_msg in
  return_flight t fl;
  deliver t ~prio ~src ~dst ~sent msg

(* [node] annotations keep the body monomorphic (int compares); untyped it
   would generalize to ['a] and compile to [caml_equal]. *)
let[@hot] rec severed_mem sev (a : Sss_data.Ids.node) (b : Sss_data.Ids.node) =
  match sev with
  | [] -> false
  | (x, y) :: tl -> (x = a && y = b) || (x = b && y = a) || severed_mem tl a b

let[@hot] link_severed t a b = severed_mem t.severed a b

let observe_loss t ~src ~dst msg =
  match t.observer with
  | Some o ->
      let kind = o.kind_of msg in
      Sss_obs.Obs.incr o.obs ("msg.lost." ^ kind);
      Sss_obs.Obs.emit o.obs ~at:(Sim.now t.sim) (Sss_obs.Obs.Drop { kind; src; dst })
  | None -> ()

let[@hot] send t ?(prio = 100) ~src ~dst msg =
  t.sent <- t.sent + 1;
  t.bytes <- t.bytes + t.size_of msg;
  (match t.observer with
  | Some o ->
      let kind = o.kind_of msg in
      Sss_obs.Obs.incr o.obs ("msg.sent." ^ kind);
      Sss_obs.Obs.emit o.obs ~at:(Sim.now t.sim)
        (Sss_obs.Obs.Send { kind; src; dst; bytes = t.size_of msg })
  | None -> ());
  let lost =
    t.nodes.(src).crashed
    || link_severed t src dst
    || (t.drop_probability > 0.0 && Prng.float t.rng 1.0 < t.drop_probability)
  in
  if lost then begin
    t.dropped <- t.dropped + 1;
    observe_loss t ~src ~dst msg
  end
  else begin
    (* Installed fault plans see the message after the built-in loss checks;
       when no perturb is installed this path draws from the network PRNG
       exactly as before, so healthy-run trajectories are unchanged. *)
    let fault =
      match t.perturb with None -> no_fault | Some f -> f ~src ~dst msg
    in
    if fault.drop then begin
      t.dropped <- t.dropped + 1;
      observe_loss t ~src ~dst msg
    end
    else begin
      let latency =
        if src = dst then t.config.self_latency
        else
          t.config.latency_base
          +. (if t.config.latency_jitter > 0.0 then
                Prng.exponential t.rng ~mean:t.config.latency_jitter
              else 0.0)
      in
      let latency = latency +. fault.extra_delay in
      let sent = Sim.now t.sim in
      (* delivery never suspends: a bare callback event applying the static
         [deliver_flight] to a recycled envelope — no closure per send *)
      let fl = take_flight t in
      fl.f_prio <- prio;
      fl.f_src <- src;
      fl.f_dst <- dst;
      fl.f_sent.(0) <- sent;
      fl.f_msg <- Obj.repr msg;
      Sim.schedule_apply t.sim ~delay:latency deliver_flight fl;
      for _ = 1 to fault.duplicates do
        let fl = take_flight t in
        fl.f_prio <- prio;
        fl.f_src <- src;
        fl.f_dst <- dst;
        fl.f_sent.(0) <- sent;
        fl.f_msg <- Obj.repr msg;
        Sim.schedule_apply t.sim ~delay:latency deliver_flight fl
      done
    end
  end

let send_many t ?prio ~src ~dst msg = List.iter (fun d -> send t ?prio ~src ~dst:d msg) dst

let crash t n = t.nodes.(n).crashed <- true

let recover t n = t.nodes.(n).crashed <- false

let is_crashed t n = t.nodes.(n).crashed

let sever t a b = if not (link_severed t a b) then t.severed <- (a, b) :: t.severed

let heal t a b =
  t.severed <- List.filter (fun (x, y) -> not ((x = a && y = b) || (x = b && y = a))) t.severed

let set_drop_probability t p =
  assert (p >= 0.0 && p <= 1.0);
  t.drop_probability <- p

let drop_probability t = t.drop_probability

let set_perturb t f = t.perturb <- f

let stats t = { sent = t.sent; delivered = t.delivered; dropped = t.dropped; bytes = t.bytes }
