(** Per-node durable storage: a write-ahead log with group commit, periodic
    fuzzy checkpoints, and redo recovery — all simulated on the virtual
    clock through {!Sss_sim.Iodev}.

    The engine is generic: a protocol instantiates [('r, 's) t] with its own
    log-record type ['r] (plus a byte-size model) and snapshot type ['s].
    Three disciplines make recovery correct without page-level idempotence
    (docs/DURABILITY.md has the full argument):

    {ol
    {- {b Atomic apply+append}: a volatile state change and the log record
       describing it are made in the same DES event, with no suspension
       point between them, so a checkpoint snapshot observes both or
       neither.}
    {- {b Durable before externally visible}: any action that makes an
       effect observable outside the node (sending a vote, a decision, a
       client acknowledgement) first {!await}s the corresponding record.}
    {- {b Copying snapshots}: the snapshot closure returns a deep copy;
       the live state keeps mutating while the checkpoint write is in
       flight.}}

    Group commit falls out of the device being serial: the first buffered
    append starts a flush immediately, and every append that arrives while
    that flush is in flight joins the next batch, which starts the moment
    the device frees up.

    A log is as deterministic as the simulator: no randomness, no
    wall-clock, and with durability disabled none of this code runs at
    all. *)

type ('r, 's) t
(** A write-ahead log holding records of type ['r] with checkpoints of
    type ['s]. *)

val create :
  Sss_sim.Sim.t ->
  Sss_sim.Iodev.t ->
  record_bytes:('r -> int) ->
  snapshot:(unit -> 's) ->
  snapshot_bytes:('s -> int) ->
  ?obs:Sss_obs.Obs.t ->
  unit ->
  ('r, 's) t
(** [create sim dev ~record_bytes ~snapshot ~snapshot_bytes ()] is an empty
    log on the given device.  [snapshot] must return a deep copy of the
    node state it covers (it is called at checkpoint time and again
    never mutated); [snapshot_bytes] prices the checkpoint write. *)

val append : ('r, 's) t -> 'r -> int
(** Buffer one record and return its log sequence number.  Starts a group
    flush if none is in flight.  The record is {e not} durable until a
    flush containing it completes — pair with {!await} before any
    externally-visible action that depends on it. *)

val await : ('r, 's) t -> int -> bool
(** [await t lsn] parks the calling fiber until the record at [lsn] is
    durable ([true]) or the node crashes first ([false]).  Must be called
    from within a fiber. *)

val append_wait : ('r, 's) t -> 'r -> bool
(** [append_wait t r] is [await t (append t r)] — for records with no
    paired volatile mutation. *)

val durable_lsn : ('r, 's) t -> int
(** Highest LSN known durable, or [-1]. *)

val start_checkpoints : ('r, 's) t -> interval:float -> unit
(** Enable fuzzy checkpoints at most every [interval] seconds of virtual
    time: call the snapshot closure, write it to the device, and — once
    the write completes — truncate the durable log below the snapshot's
    LSN boundary.  The timer is demand-driven, not free-running: it arms
    on the first append past the last checkpoint and goes quiescent while
    the log is clean (so an idle cluster's event queue drains and
    [Sim.run] terminates).  A crash disarms it; call again after
    {!recover}.  No-op if [interval <= 0]. *)

val crash : ('r, 's) t -> unit
(** Lose all volatile log state: the append buffer, any in-flight flush
    batch, and any in-flight checkpoint write.  Durable state (flushed
    records, the last completed checkpoint) survives.  Parked {!await}
    callers wake with [false]. *)

val recover : ('r, 's) t -> (recovered:'s option -> replay:'r list -> unit) -> unit
(** [recover t k] simulates reading the durable image back: one device
    operation sized as checkpoint + surviving log tail, after which [k]
    runs with the last completed checkpoint (if any) and the durable
    records past its boundary, in LSN order.  [k] runs as a bare
    callback.  New appends may begin immediately after [k]; LSNs continue
    monotonically across crashes. *)

(** Telemetry counters (deterministic; read at end of run). *)
type stats = {
  flushes : int;  (** group-commit device writes *)
  flushed_records : int;  (** records made durable *)
  flushed_bytes : int;  (** payload bytes across all flushes *)
  checkpoints : int;  (** completed checkpoint writes *)
  recoveries : int;  (** completed {!recover} reads *)
  replayed_records : int;  (** log records handed to recovery continuations *)
  recovery_seconds : float;
      (** virtual time spent reading durable images back, summed over
          recoveries — the knob {!start_checkpoints}' interval trades
          against checkpoint write traffic *)
}

val stats : ('r, 's) t -> stats

val zero_stats : stats
(** All-zero counters — the fold seed for cluster-wide aggregation, and
    what a cluster with durability off reports. *)

val add_stats : stats -> stats -> stats
(** Field-wise sum, for aggregating per-node logs into a cluster view. *)
