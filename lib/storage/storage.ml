(* Write-ahead log with group commit, fuzzy checkpoints and redo recovery,
   simulated on the virtual clock through Iodev.  See storage.mli for the
   three disciplines (atomic apply+append, durable-before-visible, copying
   snapshots) that make redo recovery correct without page idempotence. *)

open Sss_sim

type stats = {
  flushes : int;
  flushed_records : int;
  flushed_bytes : int;
  checkpoints : int;
  recoveries : int;
  replayed_records : int;
  recovery_seconds : float;
}

type ('r, 's) t = {
  sim : Sim.t;
  dev : Iodev.t;
  record_bytes : 'r -> int;
  snapshot : unit -> 's;
  snapshot_bytes : 's -> int;
  obs : Sss_obs.Obs.t option;
  (* volatile: lost at crash *)
  mutable buffer : (int * 'r) list;  (* newest first *)
  mutable buffer_bytes : int;
  mutable flush_inflight : bool;
  mutable ckpt_inflight : bool;
  mutable ckpt_interval : float;  (* 0. = checkpoints disabled *)
  mutable ckpt_armed : bool;  (* a checkpoint timer is pending *)
  (* survives crashes *)
  mutable next_lsn : int;  (* monotone across crashes *)
  mutable epoch : int;  (* bumped at crash; stale completions check it *)
  mutable durable : (int * 'r) list;  (* newest first *)
  mutable durable_lsn : int;
  mutable checkpoint : ('s * int) option;  (* copy, LSN boundary *)
  mutable checkpoint_bytes : int;
  durable_changed : Sim.Cond.t;
  (* telemetry *)
  mutable st_flushes : int;
  mutable st_records : int;
  mutable st_bytes : int;
  mutable st_checkpoints : int;
  mutable st_recoveries : int;
  mutable st_replayed : int;
  mutable st_recovery_seconds : float;
}

(* every flush pays a small framing overhead on top of the record bytes *)
let flush_header_bytes = 16

let create sim dev ~record_bytes ~snapshot ~snapshot_bytes ?obs () =
  {
    sim;
    dev;
    record_bytes;
    snapshot;
    snapshot_bytes;
    obs;
    buffer = [];
    buffer_bytes = 0;
    flush_inflight = false;
    ckpt_inflight = false;
    ckpt_interval = 0.0;
    ckpt_armed = false;
    next_lsn = 0;
    epoch = 0;
    durable = [];
    durable_lsn = -1;
    checkpoint = None;
    checkpoint_bytes = 0;
    durable_changed = Sim.Cond.create ();
    st_flushes = 0;
    st_records = 0;
    st_bytes = 0;
    st_checkpoints = 0;
    st_recoveries = 0;
    st_replayed = 0;
    st_recovery_seconds = 0.0;
  }

let rec start_flush t =
  match t.buffer with
  | [] -> ()
  | batch ->
      t.flush_inflight <- true;
      let bytes = t.buffer_bytes + flush_header_bytes in
      let count = List.length batch in
      let top =
        match batch with (lsn, _) :: _ -> lsn | [] -> assert false
      in
      t.buffer <- [];
      t.buffer_bytes <- 0;
      let epoch = t.epoch in
      let began = Sim.now t.sim in
      Iodev.submit t.dev ~bytes (fun () ->
          if t.epoch = epoch then begin
            t.durable <- List.rev_append (List.rev batch) t.durable;
            t.durable_lsn <- top;
            t.flush_inflight <- false;
            t.st_flushes <- t.st_flushes + 1;
            t.st_records <- t.st_records + count;
            t.st_bytes <- t.st_bytes + bytes;
            (match t.obs with
            | Some o ->
                Sss_obs.Obs.incr o "log.flush";
                Sss_obs.Obs.add o "log.flush.records" count;
                Sss_obs.Obs.observe o "lat.log.flush" (Sim.now t.sim -. began)
            | None -> ());
            Sim.Cond.broadcast t.sim t.durable_changed;
            start_flush t
          end)

(* Records past the last completed checkpoint exist that a crash would
   force into replay — the condition under which a checkpoint is worth
   taking (and its timer worth keeping armed). *)
let dirty t =
  let boundary = match t.checkpoint with Some (_, b) -> b | None -> 0 in
  t.next_lsn > boundary

(* The checkpoint timer is demand-driven: armed by the first append after a
   checkpoint, quiescent while the log is clean.  A free-running periodic
   timer would keep the event queue nonempty forever and [Sim.run] (which
   drains to empty) would never return. *)
let rec take_checkpoint t =
  if not t.ckpt_inflight then begin
    t.ckpt_inflight <- true;
    let snap = t.snapshot () in
    let boundary = t.next_lsn in
    let bytes = t.snapshot_bytes snap in
    let epoch = t.epoch in
    let began = Sim.now t.sim in
    Iodev.submit t.dev ~bytes (fun () ->
        if t.epoch = epoch then begin
          t.checkpoint <- Some (snap, boundary);
          t.checkpoint_bytes <- bytes;
          t.ckpt_inflight <- false;
          t.st_checkpoints <- t.st_checkpoints + 1;
          (* truncation: records the snapshot covers are dead *)
          t.durable <- List.filter (fun (lsn, _) -> lsn >= boundary) t.durable;
          (match t.obs with
          | Some o ->
              Sss_obs.Obs.incr o "log.checkpoint";
              Sss_obs.Obs.observe o "lat.log.checkpoint" (Sim.now t.sim -. began)
          | None -> ());
          if dirty t then maybe_arm t
        end)
  end

and maybe_arm t =
  if t.ckpt_interval > 0.0 && not t.ckpt_armed then begin
    t.ckpt_armed <- true;
    let epoch = t.epoch in
    Sim.schedule_callback t.sim ~delay:t.ckpt_interval (fun () ->
        if t.epoch = epoch then begin
          t.ckpt_armed <- false;
          if dirty t then take_checkpoint t
        end)
  end

let append t r =
  let lsn = t.next_lsn in
  t.next_lsn <- lsn + 1;
  t.buffer <- (lsn, r) :: t.buffer;
  t.buffer_bytes <- t.buffer_bytes + t.record_bytes r;
  if not t.flush_inflight then start_flush t;
  maybe_arm t;
  lsn

let await t lsn =
  let epoch = t.epoch in
  Sim.Cond.await t.sim t.durable_changed (fun () ->
      t.epoch <> epoch || t.durable_lsn >= lsn);
  t.epoch = epoch

let append_wait t r = await t (append t r)

let durable_lsn t = t.durable_lsn

let start_checkpoints t ~interval =
  if interval > 0.0 then begin
    t.ckpt_interval <- interval;
    if dirty t then maybe_arm t
  end

let crash t =
  t.epoch <- t.epoch + 1;
  t.buffer <- [];
  t.buffer_bytes <- 0;
  t.flush_inflight <- false;
  t.ckpt_inflight <- false;
  t.ckpt_armed <- false;
  Sim.Cond.broadcast t.sim t.durable_changed

let recover t k =
  let boundary = match t.checkpoint with Some (_, b) -> b | None -> 0 in
  let tail =
    List.rev (List.filter (fun (lsn, _) -> lsn >= boundary) t.durable)
  in
  let bytes =
    List.fold_left
      (fun acc (_, r) -> acc + t.record_bytes r)
      (t.checkpoint_bytes + flush_header_bytes)
      tail
  in
  let epoch = t.epoch in
  let began = Sim.now t.sim in
  Iodev.submit t.dev ~bytes (fun () ->
      if t.epoch = epoch then begin
        t.st_recoveries <- t.st_recoveries + 1;
        t.st_replayed <- t.st_replayed + List.length tail;
        t.st_recovery_seconds <- t.st_recovery_seconds +. (Sim.now t.sim -. began);
        (match t.obs with
        | Some o ->
            Sss_obs.Obs.incr o "log.recovery";
            Sss_obs.Obs.observe o "lat.log.recovery" (Sim.now t.sim -. began)
        | None -> ());
        let recovered = match t.checkpoint with Some (s, _) -> Some s | None -> None in
        k ~recovered ~replay:(List.map snd tail)
      end)

let stats t =
  {
    flushes = t.st_flushes;
    flushed_records = t.st_records;
    flushed_bytes = t.st_bytes;
    checkpoints = t.st_checkpoints;
    recoveries = t.st_recoveries;
    replayed_records = t.st_replayed;
    recovery_seconds = t.st_recovery_seconds;
  }

let zero_stats =
  {
    flushes = 0;
    flushed_records = 0;
    flushed_bytes = 0;
    checkpoints = 0;
    recoveries = 0;
    replayed_records = 0;
    recovery_seconds = 0.0;
  }

let add_stats a b =
  {
    flushes = a.flushes + b.flushes;
    flushed_records = a.flushed_records + b.flushed_records;
    flushed_bytes = a.flushed_bytes + b.flushed_bytes;
    checkpoints = a.checkpoints + b.checkpoints;
    recoveries = a.recoveries + b.recoveries;
    replayed_records = a.replayed_records + b.replayed_records;
    recovery_seconds = a.recovery_seconds +. b.recovery_seconds;
  }
