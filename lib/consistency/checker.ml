open Sss_data

type check_result = (unit, string) result

module TxnMap = Map.Make (struct
  type t = Ids.txn

  let compare = Ids.compare_txn
end)

type txn_info = {
  mutable ro : bool;
  mutable committed : bool;
  mutable commit_seq : int;
  mutable begin_seq : int;
  mutable home : int;
  mutable aborted : bool;
  mutable reads : (Ids.key * Ids.txn) list;
  mutable installs : Ids.key list;
  mutable declared_ws : Ids.key list;
}

type analysis = {
  infos : txn_info TxnMap.t;
  install_order : (Ids.key, Ids.txn list) Hashtbl.t;  (* oldest first, genesis implicit *)
}

let fresh_info seq =
  {
    ro = false;
    committed = false;
    commit_seq = -1;
    begin_seq = seq;
    home = -1;
    aborted = false;
    reads = [];
    installs = [];
    declared_ws = [];
  }

let analyse history =
  let infos = ref TxnMap.empty in
  let info seq txn =
    match TxnMap.find_opt txn !infos with
    | Some i -> i
    | None ->
        let i = fresh_info seq in
        infos := TxnMap.add txn i !infos;
        i
  in
  let install_order : (Ids.key, Ids.txn list) Hashtbl.t = Hashtbl.create 256 in
  List.iter
    (fun { History.seq; event; _ } ->
      match event with
      | History.Begin { txn; ro; node } ->
          let i = info seq txn in
          i.ro <- ro;
          i.home <- node;
          i.begin_seq <- seq
      | History.Read { txn; key; writer } ->
          let i = info seq txn in
          i.reads <- (key, writer) :: i.reads
      | History.Install { txn; key } ->
          let i = info seq txn in
          (* Keep-first dedup: redo recovery can legitimately re-install a
             version whose apply was recorded but whose log record had not
             reached the disk before the crash (the Decide is redelivered and
             reapplied).  The version's position is its first installation;
             a duplicate must not re-enter the install order. *)
          if not (List.mem key i.installs) then begin
            i.installs <- key :: i.installs;
            let prev = Option.value ~default:[] (Hashtbl.find_opt install_order key) in
            Hashtbl.replace install_order key (txn :: prev)
          end
      | History.Commit { txn; ws } ->
          let i = info seq txn in
          i.committed <- true;
          i.commit_seq <- seq;
          i.declared_ws <- ws
      | History.Abort { txn } -> (info seq txn).aborted <- true)
    (History.events history);
  (* Collect the keys first: replacing bindings while iterating a Hashtbl
     is undefined behaviour (a key can be visited twice, re-reversing its
     list and corrupting the install order).  Sorted so nothing downstream
     can depend on bucket order. *)
  let keys =
    List.sort Int.compare
      (Hashtbl.fold (fun k _ acc -> k :: acc) install_order [] [@order_ok])
  in
  List.iter
    (fun k -> Hashtbl.replace install_order k (List.rev (Hashtbl.find install_order k)))
    keys;
  { infos = !infos; install_order }

let in_graph a txn =
  (not (Ids.equal_txn txn Ids.genesis))
  &&
  match TxnMap.find_opt txn a.infos with
  | None -> false
  | Some i -> (not i.aborted) && (i.committed || i.installs <> [])

(* Successor of [writer]'s version of [key] in the install order; genesis's
   successor is the first installer. *)
let next_writer a key writer =
  match Hashtbl.find_opt a.install_order key with
  | None -> None
  | Some order ->
      if Ids.equal_txn writer Ids.genesis then
        match order with [] -> None | first :: _ -> Some first
      else
        let rec find = function
          | [] -> None
          | w :: rest when Ids.equal_txn w writer -> (
              match rest with [] -> None | nxt :: _ -> Some nxt)
          | _ :: rest -> find rest
        in
        find order

let dependency_edges_of a =
  let edges = ref [] in
  let add src dst label =
    if in_graph a src && in_graph a dst && not (Ids.equal_txn src dst) then
      edges := (src, dst, label) :: !edges
  in
  (* wr and rw edges from reads *)
  TxnMap.iter
    (fun txn i ->
      if in_graph a txn then
        List.iter
          (fun (key, writer) ->
            add writer txn "wr";
            match next_writer a key writer with
            | Some w' -> add txn w' "rw"
            | None -> ())
          i.reads)
    a.infos;
  (* ww edges: consecutive installs of the same key.  Emitted in sorted key
     order so the edge list (and hence which cycle a DFS reports first) is
     independent of Hashtbl bucket order. *)
  let ww_keys =
    List.sort Int.compare
      (Hashtbl.fold (fun k _ acc -> k :: acc) a.install_order [] [@order_ok])
  in
  List.iter
    (fun key ->
      let order = Hashtbl.find a.install_order key in
      let rec pairs = function
        | w1 :: (w2 :: _ as rest) ->
            add w1 w2 "ww";
            pairs rest
        | _ -> ()
      in
      pairs order)
    ww_keys;
  List.rev !edges

(* Cycle search over an integer graph, reporting the cycle's members. *)
let find_cycle ~size succs =
  let color = Array.make size `White in
  let parent = Array.make size (-1) in
  let cycle = ref None in
  (* Explicit stack to survive deep graphs. *)
  let rec dfs v =
    if !cycle = None then begin
      color.(v) <- `Grey;
      List.iter
        (fun w ->
          if !cycle = None then
            match color.(w) with
            | `Grey ->
                let rec walk u acc = if u = w then u :: acc else walk parent.(u) (u :: acc) in
                cycle := Some (walk v [ w ])
            | `Black -> ()
            | `White ->
                parent.(w) <- v;
                dfs w)
        (succs v);
      color.(v) <- `Black
    end
  in
  for v = 0 to size - 1 do
    if color.(v) = `White then dfs v
  done;
  !cycle

(* Build the integer graph: one node per transaction, plus — when checking
   external consistency — one auxiliary node per commit event, chained in
   commit order.  An edge Ti -> C_i together with C_k -> Tj (where C_k is
   the last commit preceding Tj's begin) encodes every real-time precedence
   commit(Ti) < begin(Tj) with O(n) edges instead of O(n^2). *)
(* [realtime] selects which completion->begin precedences become edges:
   [`None] (plain serializability), [`Session] (only between transactions of
   the same node: the order a single client/site can observe directly), or
   [`Global] (every pair, Spanner-style strict serializability). *)
let check_acyclic a ~realtime =
  let txns = TxnMap.fold (fun t _ acc -> if in_graph a t then t :: acc else acc) a.infos [] in
  let n = List.length txns in
  let index = Hashtbl.create (2 * n) in
  List.iteri (fun i t -> Hashtbl.replace index t i) txns;
  let names = Array.of_list txns in
  (* Group transactions into "sessions": one group for global real-time
     (everything), one per home node for session real-time. *)
  let groups =
    match realtime with
    | `None -> []
    | `Global -> [ txns ]
    | `Session ->
        let by_home = Hashtbl.create 16 in
        List.iter
          (fun t ->
            let h = (TxnMap.find t a.infos).home in
            let prev = Option.value ~default:[] (Hashtbl.find_opt by_home h) in
            Hashtbl.replace by_home h (t :: prev))
          txns;
        (* sorted by home node: group order must not leak bucket order *)
        (Hashtbl.fold (fun h g acc -> (h, g) :: acc) by_home [] [@order_ok])
        |> List.sort (fun (h1, _) (h2, _) -> Int.compare h1 h2)
        |> List.map snd
  in
  let chains =
    List.map
      (fun group ->
        let committed =
          List.filter (fun t -> (TxnMap.find t a.infos).committed) group
          |> List.sort (fun t1 t2 ->
                 Int.compare (TxnMap.find t1 a.infos).commit_seq
                   (TxnMap.find t2 a.infos).commit_seq)
          |> Array.of_list
        in
        (group, committed))
      groups
  in
  let m = List.fold_left (fun acc (_, c) -> acc + Array.length c) 0 chains in
  let size = n + m in
  let adj = Array.make (Stdlib.max size 1) [] in
  let add_edge u v = adj.(u) <- v :: adj.(u) in
  List.iter
    (fun (src, dst, _) -> add_edge (Hashtbl.find index src) (Hashtbl.find index dst))
    (dependency_edges_of a);
  let base = ref n in
  List.iter
    (fun (group, committed) ->
      let mg = Array.length committed in
      let off = !base in
      base := off + mg;
      for k = 0 to mg - 2 do
        add_edge (off + k) (off + k + 1)
      done;
      Array.iteri (fun k t -> add_edge (Hashtbl.find index t) (off + k)) committed;
      let commit_seqs = Array.map (fun t -> (TxnMap.find t a.infos).commit_seq) committed in
      List.iter
        (fun t ->
          let b = (TxnMap.find t a.infos).begin_seq in
          (* largest k with commit_seqs.(k) < b *)
          let rec search lo hi best =
            if lo > hi then best
            else
              let mid = (lo + hi) / 2 in
              if commit_seqs.(mid) < b then search (mid + 1) hi mid
              else search lo (mid - 1) best
          in
          let k = search 0 (mg - 1) (-1) in
          if k >= 0 then add_edge (off + k) (Hashtbl.find index t))
        group)
    chains;
  match find_cycle ~size (fun v -> adj.(v)) with
  | None -> Ok ()
  | Some cyc ->
      let pretty v = if v < n then Ids.txn_to_string names.(v) else Printf.sprintf "[rt%d]" (v - n) in
      Error (Printf.sprintf "cycle: %s" (String.concat " -> " (List.map pretty cyc)))

let external_consistency history = check_acyclic (analyse history) ~realtime:`Session

let external_consistency_strict history = check_acyclic (analyse history) ~realtime:`Global

let serializability history = check_acyclic (analyse history) ~realtime:`None

let no_lost_updates history =
  let a = analyse history in
  let bad = ref None in
  TxnMap.iter
    (fun txn i ->
      if !bad = None && in_graph a txn then
        List.iter
          (fun key ->
            match List.assoc_opt key i.reads with
            | None -> ()  (* blind write *)
            | Some observed -> (
                (* The version this RMW observed must be the one directly
                   preceding its own install. *)
                match Hashtbl.find_opt a.install_order key with
                | None -> ()
                | Some order ->
                    let rec pred prev = function
                      | [] -> None
                      | w :: rest -> if Ids.equal_txn w txn then Some prev else pred w rest
                    in
                    (match pred Ids.genesis order with
                    | Some expected when not (Ids.equal_txn expected observed) ->
                        if !bad = None then
                          bad :=
                            Some
                              (Printf.sprintf
                                 "lost update: %s overwrote k%d reading %s instead of %s"
                                 (Ids.txn_to_string txn) key
                                 (Ids.txn_to_string observed)
                                 (Ids.txn_to_string expected))
                    | _ -> ())))
          i.installs)
    a.infos;
  match !bad with None -> Ok () | Some msg -> Error msg

(* Atomicity across crashes: once the client has been told "committed", the
   whole declared write set must be installed.  A missing install means the
   ack escaped before the decision (or an apply) was durable — a torn
   commit.  The converse — a fully installed transaction with no commit
   event — is fine: its coordinator died before replying and the writes
   were driven to completion by recovery (it participates in the graph via
   [in_graph] but carries no completion edge). *)
let no_torn_commits history =
  let a = analyse history in
  let bad = ref None in
  TxnMap.iter
    (fun txn i ->
      if !bad = None && i.committed && not i.aborted then
        List.iter
          (fun key ->
            if !bad = None && not (List.mem key i.installs) then
              bad :=
                Some
                  (Printf.sprintf "torn commit: %s acked to its client but k%d never installed"
                     (Ids.txn_to_string txn) key))
          (List.sort Int.compare i.declared_ws))
    a.infos;
  match !bad with None -> Ok () | Some msg -> Error msg

let read_only_abort_free history =
  let a = analyse history in
  let bad = ref None in
  TxnMap.iter
    (fun txn i ->
      if i.ro && i.aborted && !bad = None then
        bad := Some (Printf.sprintf "read-only %s aborted" (Ids.txn_to_string txn)))
    a.infos;
  match !bad with None -> Ok () | Some msg -> Error msg

let committed_count history =
  let a = analyse history in
  TxnMap.fold (fun _ i acc -> if i.committed then acc + 1 else acc) a.infos 0

let aborted_count history =
  let a = analyse history in
  TxnMap.fold (fun _ i acc -> if i.aborted then acc + 1 else acc) a.infos 0

let txn_count history =
  let a = analyse history in
  TxnMap.cardinal a.infos

let dependency_edges history = dependency_edges_of (analyse history)

let to_dot history =
  let a = analyse history in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "digraph dsg {\n  rankdir=LR;\n";
  TxnMap.iter
    (fun txn i ->
      if in_graph a txn then
        Buffer.add_string buf
          (Printf.sprintf "  \"%s\" [shape=%s%s];\n" (Ids.txn_to_string txn)
             (if i.ro then "ellipse" else "box")
             (if i.committed then "" else ", style=dashed")))
    a.infos;
  List.iter
    (fun (src, dst, label) ->
      let color = match label with "wr" -> "black" | "ww" -> "blue" | _ -> "red" in
      Buffer.add_string buf
        (Printf.sprintf "  \"%s\" -> \"%s\" [label=\"%s\", color=%s];\n"
           (Ids.txn_to_string src) (Ids.txn_to_string dst) label color))
    (dependency_edges_of a);
  Buffer.add_string buf "}\n";
  Buffer.contents buf
