open Sss_data

type event =
  | Begin of { txn : Ids.txn; ro : bool; node : Ids.node }
  | Read of { txn : Ids.txn; key : Ids.key; writer : Ids.txn }
  | Install of { txn : Ids.txn; key : Ids.key }
  | Commit of { txn : Ids.txn; ws : Ids.key list }
  | Abort of { txn : Ids.txn }

type stamped = { at : float; seq : int; event : event }

type t = { mutable events : stamped list; mutable seq : int; enabled : bool }

let create ?(enabled = true) () = { events = []; seq = 0; enabled }

let enabled t = t.enabled

let record t ~at event =
  if t.enabled then begin
    t.events <- { at; seq = t.seq; event } :: t.events;
    t.seq <- t.seq + 1
  end

let events t = List.rev t.events

let length t = t.seq

let pp_event fmt = function
  | Begin { txn; ro; node } ->
      Format.fprintf fmt "begin %a %s @node%d" Ids.pp_txn txn
        (if ro then "ro" else "up")
        node
  | Read { txn; key; writer } ->
      Format.fprintf fmt "read %a k%d <- %a" Ids.pp_txn txn key Ids.pp_txn writer
  | Install { txn; key } -> Format.fprintf fmt "install %a k%d" Ids.pp_txn txn key
  | Commit { txn; ws } ->
      Format.fprintf fmt "commit %a" Ids.pp_txn txn;
      if ws <> [] then
        Format.fprintf fmt " ws{%s}" (String.concat "," (List.map string_of_int ws))
  | Abort { txn } -> Format.fprintf fmt "abort %a" Ids.pp_txn txn
