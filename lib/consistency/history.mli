(** Execution histories.

    Protocol implementations record the externally observable events of
    every transaction here; the {!Checker} then validates consistency
    properties offline.  Recording is optional (benchmarks disable it), and
    cheap: events are consed onto a list.

    Version identity follows Adya: a version of a key is named by the
    transaction that wrote it, with [Ids.genesis] naming the initial
    version. *)

open Sss_data

type event =
  | Begin of { txn : Ids.txn; ro : bool; node : Ids.node }
  | Read of { txn : Ids.txn; key : Ids.key; writer : Ids.txn }
      (** [txn] observed the version of [key] written by [writer]. *)
  | Install of { txn : Ids.txn; key : Ids.key }
      (** A new version of [key] by [txn] became the newest (recorded once,
          at the key's primary replica, in application order). *)
  | Commit of { txn : Ids.txn; ws : Ids.key list }
      (** External commit: the client was informed of success.  For
          read-only transactions this is their (immediate) commit.  [ws] is
          the write set the client believes durable — the {!Checker} uses it
          to reject torn commits (acked but only partially installed). *)
  | Abort of { txn : Ids.txn }

type stamped = { at : float; seq : int; event : event }

type t

val create : ?enabled:bool -> unit -> t
(** [enabled] defaults to [true]; a disabled recorder drops everything. *)

val enabled : t -> bool
(** Whether this recorder keeps events. *)

val record : t -> at:float -> event -> unit
(** Append an event stamped with virtual time [at]. *)

val events : t -> stamped list
(** In recording order ([seq] ascending). *)

val length : t -> int
(** Events recorded so far. *)

val pp_event : Format.formatter -> event -> unit
(** Human-readable event, for test failure output. *)
