(** Offline consistency checking over recorded histories.

    The checker rebuilds Adya's Direct Serialization Graph (DSG) from a
    {!History.t}: nodes are transactions; edges are read-dependencies
    (wr), write-dependencies (ww), anti-dependencies (rw) and — for
    external consistency — real-time precedence: an edge from every
    transaction whose client response happened before another transaction
    began.  A history is external consistent iff this graph is acyclic;
    dropping the real-time edges yields plain (conflict-) serializability.

    Note on the paper's phrasing: §IV describes an edge whenever [Ti]
    externally commits before [Tj] does, i.e. a total completion order.
    Taken literally that contradicts the protocol itself: SSS deliberately
    lets transactions read a pre-commit-held write (progress, §I), so a
    fresh read-only transaction can observe a writer's value and reply to
    its client before that writer's delayed external commit — serializing
    after it while completing first.  The guarantee the protocol actually
    enforces (and what external consistency means in Gifford's and
    Spanner's sense) is strict serializability: the serial order never
    contradicts the order of {e non-overlapping} transactions, which is
    what we check.  The real-time relation is encoded with an auxiliary
    commit-time chain, keeping the graph linear in the history size.

    Aborted transactions are excluded.  Transactions included are the
    committed ones plus update transactions whose writes were installed but
    whose external commit fell outside the recorded window (they constrain
    the graph but carry no completion edge). *)

open Sss_data

type check_result = (unit, string) result
(** [Error msg] describes the violation, including a cycle when one was
    found. *)

val external_consistency : History.t -> check_result
(** DSG + session real-time order must be acyclic: completion->begin
    precedence is enforced between transactions of the same node (what a
    client colocated with a node observes), in addition to all dependency
    edges.  Cross-node orderings propagate through dependencies (reading a
    completed transaction's data orders you after it) rather than through
    wall-clock coincidence. *)

val external_consistency_strict : History.t -> check_result
(** DSG + global real-time order (Spanner-style strict serializability:
    completion->begin edges between every pair of transactions, including
    non-communicating clients on different nodes).  SSS — like any system
    without synchronized clocks or commit-wait — cannot fully guarantee
    this under adversarial timing; exposed for experiments and
    documentation. *)

val serializability : History.t -> check_result
(** DSG alone must be acyclic. *)

val no_lost_updates : History.t -> check_result
(** Every committed read-modify-write observed the immediately preceding
    version of the key it overwrote.  (Holds for snapshot-isolation-class
    systems like Walter even when serializability does not.) *)

val no_torn_commits : History.t -> check_result
(** Crash atomicity: every transaction whose client was told "committed"
    has its whole declared write set ([History.Commit]'s [ws]) installed.
    With durability on, a node must flush the commit decision (and
    participants their applies) before the client ack escapes; a history
    where the ack survives but an install is missing is torn and rejected.
    Fully installed transactions {e without} a commit event are accepted —
    that is a coordinator that died before replying, whose writes recovery
    drove to completion. *)

val read_only_abort_free : History.t -> check_result
(** No transaction that began read-only ever aborted. *)

val committed_count : History.t -> int

val aborted_count : History.t -> int

val txn_count : History.t -> int

(** Exposed for tests: the edges of the dependency graph (without
    completion edges), as (from, to, label). *)
val dependency_edges : History.t -> (Ids.txn * Ids.txn * string) list

val to_dot : History.t -> string
(** Graphviz rendering of the dependency graph (wr/ww/rw edges; read-only
    transactions as ellipses, updates as boxes) — handy for eyeballing a
    violation reported by one of the checks. *)
