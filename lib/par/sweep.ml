let seeds ?(base = 0) n = List.init (max 0 n) (fun i -> base + i + 1)

let cross xs ys = List.concat_map (fun x -> List.map (fun y -> (x, y)) ys) xs
