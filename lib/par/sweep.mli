(** Shared sweep vocabulary for the experiment surfaces (bench, stress,
    experiments): one place that builds seed lists, so every harness fans
    the same seeds through {!Pool} instead of growing its own
    [for seed = 1 to n] loop. *)

val seeds : ?base:int -> int -> int list
(** [seeds n] is [[1; ...; n]]; [seeds ~base n] is
    [[base + 1; ...; base + n]].  [n <= 0] is the empty list. *)

val cross : 'a list -> 'b list -> ('a * 'b) list
(** Row-major cartesian product: for each element of the first list, every
    element of the second — the submission order every sweep surface uses
    when fanning a (config x seed) grid through {!Pool.map}. *)
