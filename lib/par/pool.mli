(** Deterministic domain-pool runner for independent DES runs.

    Each task is a pure-by-contract function of its input: it must build its
    own [Sim.t], PRNG streams, and protocol state, and must not print or
    touch shared mutable toplevel state (lint rule R6 polices the latter —
    see docs/LINT.md).  Under that contract, [map] with any [jobs] value
    returns the exact array a sequential [Array.map] would: tasks are
    claimed from a shared index by self-scheduling workers, but every
    result is written to its submission-index slot, so the merged output —
    and anything printed from it afterwards — is byte-identical to a
    [jobs = 1] run.  Only wall-clock time varies with [jobs]. *)

type t

val create : jobs:int -> t
(** A pool that runs at most [jobs] tasks concurrently ([jobs - 1] spawned
    domains plus the calling domain).  [jobs = 1] never spawns a domain:
    tasks run sequentially on the caller, so existing single-core
    trajectories are untouched.  Raises [Invalid_argument] if [jobs < 1].
    Domains are spawned per [map] call and joined before it returns; the
    pool itself holds no threads, so it needs no shutdown. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()] — what [-j max] resolves to. *)

val jobs : t -> int

val map : t -> ('a -> 'b) -> 'a array -> 'b array
(** [map t f tasks] applies [f] to every element and returns the results in
    submission-index order.  If any [f] raises, no further tasks are
    started, all domains are joined, and the exception of the
    lowest-indexed failed task is re-raised with its backtrace (so the
    failure surfaced is deterministic even when several tasks fail in the
    same round). *)

val map_list : t -> ('a -> 'b) -> 'a list -> 'b list
(** [map] over lists, preserving order. *)
