type t = { jobs : int }

let create ~jobs =
  if jobs < 1 then invalid_arg "Pool.create: jobs must be >= 1";
  { jobs }

let default_jobs () = Domain.recommended_domain_count ()

let jobs t = t.jobs

(* First failure by task index: several tasks can fail in the same round on
   different domains, and which one *finishes* first is scheduling-dependent,
   so the winner is chosen by submission index, not arrival. *)
type failure = {
  mutable index : int;
  mutable exn : exn;
  mutable bt : Printexc.raw_backtrace;
  lock : Mutex.t;
}

let sequential_map f tasks = Array.map f tasks

let parallel_map t f tasks =
  let n = Array.length tasks in
  let results = Array.make n None in
  let next = Atomic.make 0 in
  let stop = Atomic.make false in
  let failure =
    { index = max_int; exn = Not_found; bt = Printexc.get_callstack 0; lock = Mutex.create () }
  in
  let record_failure i exn bt =
    Atomic.set stop true;
    Mutex.lock failure.lock;
    if i < failure.index then begin
      failure.index <- i;
      failure.exn <- exn;
      failure.bt <- bt
    end;
    Mutex.unlock failure.lock
  in
  let worker () =
    let continue = ref true in
    while !continue do
      if Atomic.get stop then continue := false
      else begin
        let i = Atomic.fetch_and_add next 1 in
        if i >= n then continue := false
        else
          match f tasks.(i) with
          | v -> results.(i) <- Some v
          | exception exn -> record_failure i exn (Printexc.get_raw_backtrace ())
      end
    done
  in
  let spawned = Array.init (min t.jobs n - 1) (fun _ -> Domain.spawn worker) in
  worker ();
  Array.iter Domain.join spawned;
  if failure.index < max_int then Printexc.raise_with_backtrace failure.exn failure.bt
  else
    Array.map
      (function Some v -> v | None -> assert false (* no failure => every slot filled *))
      results

let map t f tasks =
  if t.jobs = 1 || Array.length tasks <= 1 then sequential_map f tasks
  else parallel_map t f tasks

let map_list t f tasks = Array.to_list (map t f (Array.of_list tasks))
