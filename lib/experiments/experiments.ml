open Sss_sim
open Sss_data

type system = Sss | Walter | Twopc | Rococo

let system_name = function
  | Sss -> "SSS"
  | Walter -> "Walter"
  | Twopc -> "2PC"
  | Rococo -> "ROCOCO"

type params = {
  system : system;
  nodes : int;
  degree : int;
  keys : int;
  ro_ratio : float;
  ro_ops : int;
  locality : float;
  clients : int;
  warmup : float;
  duration : float;
  seed : int;
  strict : bool;
      (* SSS only: hardened external-commit ordering (DESIGN.md) instead of
         the paper's literal per-key release *)
  priority_network : bool;  (* SSS only: §V's prioritized message queues *)
  compress : bool;  (* SSS only: §III-A metadata compression (byte telemetry) *)
  zipf : float option;  (* skewed key popularity instead of uniform *)
  observe : bool;  (* attach the sss_obs sink; must not change trajectories *)
  durability : bool;  (* write-ahead logging on every node (lib/storage) *)
  checkpoint_interval : float option;  (* override Config.checkpoint_interval *)
  crash : (float * float) option;
      (* fail-stop-recover one node at (crash, restart) virtual seconds; the
         run wires Chaos crash/restart hooks so durable protocols replay
         their log *)
  arrival : Sss_workload.Driver.arrival option;
      (* open-loop arrival process per node; [None] = the paper's closed
         loop (byte-identical to builds without the open-loop engine) *)
  queue_capacity : int;  (* open loop: max waiting arrivals per node *)
  workers : int;  (* open loop: service fibers per node *)
  gc : bool;  (* watermark-driven online GC (SSS; Config.gc) *)
}

let default_params =
  {
    system = Sss;
    nodes = 5;
    degree = 2;
    keys = 5000;
    ro_ratio = 0.5;
    ro_ops = 2;
    locality = 0.0;
    clients = 10;
    warmup = 0.01;
    duration = 0.04;
    seed = 42;
    strict = false;
    priority_network = true;
    compress = true;
    zipf = None;
    observe = false;
    durability = false;
    checkpoint_interval = None;
    crash = None;
    arrival = None;
    queue_capacity = 64;
    workers = 10;
    gc = false;
  }

type outcome = {
  throughput : float;
  committed : int;
  aborted : int;
  abort_rate : float;
  mean_latency : float;
  p99_latency : float;
  mean_update_latency : float;
  mean_ro_latency : float;
  sss_internal : float option;
  sss_wait : float option;
  wait_covered_timeouts : int;
  wire_bytes : int;  (* SSS only: total message bytes (see compress_metadata) *)
  metrics : string option;  (* observe=true: the run's Obs.metrics_json *)
  des_events : int;  (* simulator events this run executed *)
  virtual_seconds : float;  (* virtual time this run simulated *)
  wal : Sss_storage.Storage.stats;
      (* SSS only: cluster-wide write-ahead-log telemetry; zeros when
         durability is off or the system does not expose it *)
  (* open-loop admission telemetry (zeros under the closed loop) *)
  offered : int;
  accepted : int;
  rejected : int;
  p99_sojourn : float;  (* completion - arrival, committed txns *)
  mean_sojourn : float;
  mean_queue_wait : float;
  (* storage-retention gauges at end of run (SSS only; zeros elsewhere) *)
  store_versions : int;
  store_words : int;
  store_mem : Mvstore.mem;
  nlog_entries : int;
  gc_dropped_versions : int;
  gc_dropped_entries : int;
}

(* ---------- execution context ----------

   Every figure runs its points through a [ctx]: the domain pool that fans
   independent runs across cores (jobs = 1 by default, so nothing changes
   for existing callers), the bench [--observe] override, and the output
   sink the figure's text is printed through.  There is deliberately no
   module-level mutable state here — each run builds its own [Sim.t] and
   cluster, so runs are domain-safe by construction (lint rule R6). *)

type ctx = { pool : Sss_par.Pool.t; observe_all : bool; out : string -> unit }

let ctx ?(jobs = 1) ?(observe_all = false) ?(out = print_string) () =
  { pool = Sss_par.Pool.create ~jobs; observe_all; out }

let jobs c = Sss_par.Pool.jobs c.pool

let config_of (p : params) : Sss_kv.Config.t =
  {
    Sss_kv.Config.default with
    nodes = p.nodes;
    replication_degree = p.degree;
    total_keys = p.keys;
    record_history = false;
    seed = p.seed;
    strict_order = p.strict;
    gc = p.gc;
    priority_network = p.priority_network;
    compress_metadata = p.compress;
    observe = p.observe;
    durability = p.durability;
    checkpoint_interval =
      (match p.checkpoint_interval with
      | Some i -> i
      | None -> Sss_kv.Config.default.checkpoint_interval);
    (* a crash needs the fault-tolerant transport so survivors retry around
       the dead NIC; crash-free runs keep the default so existing figures
       are untouched *)
    fault_tolerance = Sss_kv.Config.default.fault_tolerance || p.crash <> None;
  }

let run (p : params) =
  let sim = Sim.create () in
  let config = config_of p in
  let profile =
    {
      Sss_workload.Driver.read_only_ratio = p.ro_ratio;
      update_ops = 2;
      ro_ops = p.ro_ops;
      locality = p.locality;
    }
  in
  let load =
    {
      Sss_workload.Driver.clients_per_node = p.clients;
      warmup = p.warmup;
      duration = p.duration;
      seed = p.seed;
      dist =
        (match p.zipf with
        | None -> Sss_workload.Driver.Uniform
        | Some theta -> Sss_workload.Driver.Zipfian theta);
      retry_aborts = false;
      open_loop =
        (match p.arrival with
        | None -> None
        | Some arrival ->
            Some
              {
                Sss_workload.Driver.arrival;
                queue_capacity = p.queue_capacity;
                workers_per_node = p.workers;
              });
    }
  in
  let drive ~ops ~local_keys =
    Sss_workload.Driver.run sim ~nodes:p.nodes ~total_keys:p.keys ~local_keys ~profile ~load
      ~ops
  in
  let wire_chaos network ~kind_of ~on_crash ~on_restart =
    match p.crash with
    | None -> ()
    | Some (at, restart_at) ->
        let plan =
          {
            Sss_chaos.Chaos.seed = p.seed;
            rules = [];
            events =
              [
                Sss_chaos.Chaos.Crash
                  { at; restart_at = Some restart_at; node = min 2 (p.nodes - 1) };
              ];
          }
        in
        let (_ : Sss_chaos.Chaos.handle) =
          Sss_chaos.Chaos.install sim network ~kind_of ~on_crash ~on_restart plan
        in
        ()
  in
  let metrics_of obs = Option.map Sss_obs.Obs.metrics_json obs in
  let result, sss_cluster, metrics, other_store_words =
    match p.system with
    | Sss ->
        let cl = Sss_kv.Kv.create sim config in
        wire_chaos (Sss_kv.Kv.network cl) ~kind_of:Sss_kv.Message.kind_name
          ~on_crash:(Sss_kv.Kv.crash_node cl)
          ~on_restart:(Sss_kv.Kv.restart_node cl);
        Sss_kv.Kv.set_collect_latencies cl true;
        let ops =
          {
            Sss_workload.Driver.begin_txn =
              (fun ~node ~read_only -> Sss_kv.Kv.begin_txn cl ~node ~read_only);
            read = Sss_kv.Kv.read;
            write = Sss_kv.Kv.write;
            commit = Sss_kv.Kv.commit;
          }
        in
        let r = drive ~ops ~local_keys:(fun n -> Replication.keys_at cl.Sss_kv.State.repl n) in
        (r, Some cl, Sss_kv.Kv.metrics_json cl, 0)
    | Walter ->
        let cl = Walter_kv.Walter.create sim config in
        wire_chaos (Walter_kv.Walter.network cl) ~kind_of:Walter_kv.Walter.message_kind
          ~on_crash:(Walter_kv.Walter.crash_node cl)
          ~on_restart:(Walter_kv.Walter.restart_node cl);
        let ops =
          {
            Sss_workload.Driver.begin_txn =
              (fun ~node ~read_only -> Walter_kv.Walter.begin_txn cl ~node ~read_only);
            read = Walter_kv.Walter.read;
            write = Walter_kv.Walter.write;
            commit = Walter_kv.Walter.commit;
          }
        in
        let r = drive ~ops ~local_keys:(fun n -> Replication.keys_at (Walter_kv.Walter.repl cl) n) in
        (r, None, metrics_of (Walter_kv.Walter.obs cl), Walter_kv.Walter.store_words cl)
    | Twopc ->
        let cl = Twopc_kv.Twopc.create sim config in
        wire_chaos (Twopc_kv.Twopc.network cl) ~kind_of:Twopc_kv.Twopc.message_kind
          ~on_crash:(Twopc_kv.Twopc.crash_node cl)
          ~on_restart:(Twopc_kv.Twopc.restart_node cl);
        let ops =
          {
            Sss_workload.Driver.begin_txn =
              (fun ~node ~read_only -> Twopc_kv.Twopc.begin_txn cl ~node ~read_only);
            read = Twopc_kv.Twopc.read;
            write = Twopc_kv.Twopc.write;
            commit = Twopc_kv.Twopc.commit;
          }
        in
        let r = drive ~ops ~local_keys:(Twopc_kv.Twopc.local_keys cl) in
        (r, None, metrics_of (Twopc_kv.Twopc.obs cl), Twopc_kv.Twopc.store_words cl)
    | Rococo ->
        let cl = Rococo_kv.Rococo.create sim config in
        wire_chaos (Rococo_kv.Rococo.network cl) ~kind_of:Rococo_kv.Rococo.message_kind
          ~on_crash:(Rococo_kv.Rococo.crash_node cl)
          ~on_restart:(Rococo_kv.Rococo.restart_node cl);
        let ops =
          {
            Sss_workload.Driver.begin_txn =
              (fun ~node ~read_only -> Rococo_kv.Rococo.begin_txn cl ~node ~read_only);
            read = Rococo_kv.Rococo.read;
            write = Rococo_kv.Rococo.write;
            commit = Rococo_kv.Rococo.commit;
          }
        in
        let r = drive ~ops ~local_keys:(fun n -> Replication.keys_at (Rococo_kv.Rococo.repl cl) n) in
        (r, None, metrics_of (Rococo_kv.Rococo.obs cl), Rococo_kv.Rococo.store_words cl)
  in
  let wire_bytes =
    match sss_cluster with
    | None -> 0
    | Some cl -> (Sss_kv.Kv.network_stats cl).Sss_net.Network.bytes
  in
  let sss_internal, sss_wait, timeouts =
    match sss_cluster with
    | None -> (None, None, 0)
    | Some cl ->
        let stats = Sss_kv.Kv.stats cl in
        let lats = stats.Sss_kv.State.latencies in
        let n = List.length lats in
        if n = 0 then (None, None, stats.Sss_kv.State.wait_covered_timeouts)
        else begin
          let internal = ref 0.0 and wait = ref 0.0 in
          List.iter
            (fun (b, d, e) ->
              internal := !internal +. (d -. b);
              wait := !wait +. (e -. d))
            lats;
          ( Some (!internal /. float_of_int n),
            Some (!wait /. float_of_int n),
            stats.Sss_kv.State.wait_covered_timeouts )
        end
  in
  {
    throughput = result.Sss_workload.Driver.throughput;
    committed = result.Sss_workload.Driver.committed;
    aborted = result.Sss_workload.Driver.aborted;
    abort_rate = result.Sss_workload.Driver.abort_rate;
    mean_latency = Sss_workload.Stats.mean result.Sss_workload.Driver.latency;
    p99_latency = Sss_workload.Stats.percentile result.Sss_workload.Driver.latency 0.99;
    mean_update_latency = Sss_workload.Stats.mean result.Sss_workload.Driver.update_latency;
    mean_ro_latency = Sss_workload.Stats.mean result.Sss_workload.Driver.ro_latency;
    sss_internal;
    sss_wait;
    wait_covered_timeouts = timeouts;
    wire_bytes;
    metrics;
    des_events = Sim.events_processed sim;
    virtual_seconds = Sim.now sim;
    wal =
      (match sss_cluster with
      | Some cl -> Sss_kv.Kv.wal_stats cl
      | None -> Sss_storage.Storage.zero_stats);
    offered = result.Sss_workload.Driver.offered;
    accepted = result.Sss_workload.Driver.accepted;
    rejected = result.Sss_workload.Driver.rejected;
    p99_sojourn = Sss_workload.Stats.percentile result.Sss_workload.Driver.sojourn 0.99;
    mean_sojourn = Sss_workload.Stats.mean result.Sss_workload.Driver.sojourn;
    mean_queue_wait = Sss_workload.Stats.mean result.Sss_workload.Driver.queue_wait;
    store_versions =
      (match sss_cluster with Some cl -> Sss_kv.Kv.version_count cl | None -> 0);
    store_words =
      (match sss_cluster with
      | Some cl -> Mvstore.mem_total (Sss_kv.Kv.mem_words cl)
      | None -> other_store_words);
    store_mem =
      (match sss_cluster with
      | Some cl -> Sss_kv.Kv.mem_words cl
      | None -> Mvstore.mem_zero);
    nlog_entries =
      (match sss_cluster with Some cl -> Sss_kv.Kv.nlog_entries cl | None -> 0);
    gc_dropped_versions =
      (match sss_cluster with
      | Some cl ->
          let _, v, _ = Sss_kv.Kv.gc_stats cl in
          v
      | None -> 0);
    gc_dropped_entries =
      (match sss_cluster with
      | Some cl ->
          let _, _, e = Sss_kv.Kv.gc_stats cl in
          e
      | None -> 0);
  }

let run_in ctx p = run (if ctx.observe_all then { p with observe = true } else p)

let run_seeds ctx p ~seeds =
  Sss_par.Pool.map_list ctx.pool (fun seed -> run_in ctx { p with seed }) seeds

(* ---------- simulator meters ----------

   Per-figure simulator totals, for the bench harness's --json report (DES
   events/sec and virtual-time throughput per target).  Summed from the
   outcomes in submission order, so the totals — float additions included —
   are identical at every jobs count. *)

type meters = {
  des_events : int;  (* simulator events executed *)
  virtual_seconds : float;  (* virtual time simulated *)
  committed_txns : int;
  runs : int;
  (* open-loop admission totals (zeros for closed-loop figures) *)
  offered : int;
  accepted : int;
  rejected : int;
  (* GC totals: end-of-run retained versions (summed over runs) and
     versions dropped by the online policy *)
  store_versions : int;
  gc_dropped : int;
  store_words : int;
  (* per-protocol highest offered rate meeting the saturation figure's p99
     SLO, [None] when no rung met it; empty for every other figure *)
  slo_rates : (string * float option) list;
}

let meters_zero =
  {
    des_events = 0;
    virtual_seconds = 0.0;
    committed_txns = 0;
    runs = 0;
    offered = 0;
    accepted = 0;
    rejected = 0;
    store_versions = 0;
    gc_dropped = 0;
    store_words = 0;
    slo_rates = [];
  }

let meters_add m (o : outcome) =
  {
    des_events = m.des_events + o.des_events;
    virtual_seconds = m.virtual_seconds +. o.virtual_seconds;
    committed_txns = m.committed_txns + o.committed;
    runs = m.runs + 1;
    offered = m.offered + o.offered;
    accepted = m.accepted + o.accepted;
    rejected = m.rejected + o.rejected;
    store_versions = m.store_versions + o.store_versions;
    gc_dropped = m.gc_dropped + o.gc_dropped_versions;
    store_words = m.store_words + o.store_words;
    slo_rates = m.slo_rates;
  }

let meters_sum a b =
  {
    des_events = a.des_events + b.des_events;
    virtual_seconds = a.virtual_seconds +. b.virtual_seconds;
    committed_txns = a.committed_txns + b.committed_txns;
    runs = a.runs + b.runs;
    offered = a.offered + b.offered;
    accepted = a.accepted + b.accepted;
    rejected = a.rejected + b.rejected;
    store_versions = a.store_versions + b.store_versions;
    gc_dropped = a.gc_dropped + b.gc_dropped;
    store_words = a.store_words + b.store_words;
    slo_rates = a.slo_rates @ b.slo_rates;
  }

(* ---------- staged (two-phase) figure evaluation ----------

   A figure body is a function of [~run] and [~out] whose sequence of [run]
   calls depends only on its own parameters — never on outcomes.  That
   contract lets the same body be interpreted twice:

     phase 1 (record): [run] files the params away in submission order and
       returns a placeholder; [out] discards.  No simulation happens.
     fan-out: the recorded params are executed through the ctx's domain
       pool; results come back in submission-index order (Pool.map's
       ordering guarantee).
     phase 2 (replay): the body runs again, [run] now dealing the banked
       outcomes back in order and [out] printing for real.

   Because phase 2 is the only phase that prints and consumes results
   strictly in submission order, the figure's text and meters are
   byte-identical at any [jobs] — the smoke.sh -j1-vs-jmax gate pins it. *)

let placeholder_outcome =
  {
    throughput = 0.0;
    committed = 0;
    aborted = 0;
    abort_rate = 0.0;
    mean_latency = 0.0;
    p99_latency = 0.0;
    mean_update_latency = 0.0;
    mean_ro_latency = 0.0;
    sss_internal = None;
    sss_wait = None;
    wait_covered_timeouts = 0;
    wire_bytes = 0;
    metrics = None;
    des_events = 0;
    virtual_seconds = 0.0;
    wal = Sss_storage.Storage.zero_stats;
    offered = 0;
    accepted = 0;
    rejected = 0;
    p99_sojourn = 0.0;
    mean_sojourn = 0.0;
    mean_queue_wait = 0.0;
    store_versions = 0;
    store_words = 0;
    store_mem = Mvstore.mem_zero;
    nlog_entries = 0;
    gc_dropped_versions = 0;
    gc_dropped_entries = 0;
  }

let staged ctx body =
  let specs = ref [] in
  body ~run:(fun p -> specs := p :: !specs; placeholder_outcome) ~out:ignore;
  let outs = Sss_par.Pool.map ctx.pool (run_in ctx) (Array.of_list (List.rev !specs)) in
  let idx = ref 0 in
  body
    ~run:(fun _ ->
      let o = outs.(!idx) in
      incr idx;
      o)
    ~out:ctx.out;
  Array.fold_left meters_add meters_zero outs

(* ---------- scales ---------- *)

type scale = Full | Quick | Smoke

let node_counts = function
  | Full -> [ 5; 10; 15; 20 ]
  | Quick -> [ 5; 10; 15 ]
  | Smoke -> [ 3; 5 ]

let keyspaces = function
  | Full -> [ 5000; 10000 ]
  | Quick -> [ 1000; 2000 ]
  | Smoke -> [ 200 ]

let base_params = function
  | Full -> default_params
  | Quick -> { default_params with clients = 8; duration = 0.025; warmup = 0.008 }
  | Smoke -> { default_params with clients = 4; duration = 0.01; warmup = 0.004 }

let ktxs o = o.throughput /. 1000.0

let pr out fmt = Printf.ksprintf out fmt

let header out title = pr out "\n== %s ==\n" title

(* ---------- figures ---------- *)

let fig3_body scale ~run ~out =
  header out "Figure 3: throughput vs nodes, replication degree 2 (KTxs/sec)";
  let base = base_params scale in
  List.iter
    (fun ro ->
      pr out "-- %d%% read-only --\n" (int_of_float (ro *. 100.));
      pr out "%-6s" "nodes";
      List.iter
        (fun sys ->
          List.iter
            (fun keys -> pr out "%14s" (Printf.sprintf "%s-%dk" (system_name sys) (keys / 1000)))
            (keyspaces scale))
        [ Twopc; Walter; Sss ];
      pr out "\n";
      List.iter
        (fun nodes ->
          pr out "%-6d" nodes;
          List.iter
            (fun sys ->
              List.iter
                (fun keys ->
                  let o = run { base with system = sys; nodes; keys; ro_ratio = ro; degree = 2 } in
                  pr out "%14.1f" (ktxs o))
                (keyspaces scale))
            [ Twopc; Walter; Sss ];
          pr out "\n")
        (node_counts scale))
    [ 0.2; 0.5; 0.8 ]

let fig3 ctx scale = staged ctx (fig3_body scale)

let fig4a_body scale ~run ~out =
  header out "Figure 4(a): maximum attainable throughput, 50% read-only, 5k keys (KTxs/sec)";
  let base = base_params scale in
  let keys = List.hd (keyspaces scale) in
  let client_options =
    match scale with Full -> [ 5; 10; 16 ] | Quick -> [ 5; 10 ] | Smoke -> [ 4 ]
  in
  pr out "%-6s%14s%14s\n" "nodes" "SSS" "2PC";
  List.iter
    (fun nodes ->
      let best sys =
        List.fold_left
          (fun acc clients ->
            let o = run { base with system = sys; nodes; keys; ro_ratio = 0.5; clients } in
            Stdlib.max acc (ktxs o))
          0.0 client_options
      in
      pr out "%-6d%14.1f%14.1f\n" nodes (best Sss) (best Twopc))
    (node_counts scale)

let fig4a ctx scale = staged ctx (fig4a_body scale)

let latency_nodes = function Full -> 20 | Quick -> 10 | Smoke -> 5

let fig4b_body scale ~run ~out =
  header out
    "Figure 4(b): transaction latency begin->external commit (ms), 50% read-only, 5k keys";
  let base = base_params scale in
  let keys = List.hd (keyspaces scale) in
  let nodes = latency_nodes scale in
  (* mean over ALL committed transactions: the paper's measurement includes
     read-only transactions, whose cost is where SSS and the 2PC baseline
     differ most (2PC validates and locks them). *)
  pr out "(nodes = %d)\n%-10s%14s%14s%16s%16s\n" nodes "clients" "SSS" "2PC"
    "SSS(update)" "2PC(update)";
  List.iter
    (fun clients ->
      let sss = run { base with system = Sss; nodes; keys; ro_ratio = 0.5; clients } in
      let tp = run { base with system = Twopc; nodes; keys; ro_ratio = 0.5; clients } in
      pr out "%-10d%14.3f%14.3f%16.3f%16.3f\n" clients (sss.mean_latency *. 1e3)
        (tp.mean_latency *. 1e3)
        (sss.mean_update_latency *. 1e3)
        (tp.mean_update_latency *. 1e3))
    [ 1; 3; 5; 10 ]

let fig4b ctx scale = staged ctx (fig4b_body scale)

let fig5_body scale ~run ~out =
  header out
    "Figure 5: SSS update latency breakdown (ms): execution+internal vs snapshot-queue wait";
  let base = base_params scale in
  let keys = List.hd (keyspaces scale) in
  let nodes = latency_nodes scale in
  pr out "(nodes = %d)\n%-10s%14s%14s%14s%10s\n" nodes "clients" "total" "internal"
    "sq-wait" "wait%";
  List.iter
    (fun clients ->
      let o = run { base with system = Sss; nodes; keys; ro_ratio = 0.5; clients } in
      match (o.sss_internal, o.sss_wait) with
      | Some internal, Some wait ->
          let total = internal +. wait in
          pr out "%-10d%14.3f%14.3f%14.3f%9.1f%%\n" clients (total *. 1e3)
            (internal *. 1e3) (wait *. 1e3)
            (100.0 *. wait /. total)
      | _ -> pr out "%-10d (no committed update transactions)\n" clients)
    [ 1; 3; 5; 10 ]

let fig5 ctx scale = staged ctx (fig5_body scale)

let fig6_body scale ~run ~out =
  header out "Figure 6: SSS vs ROCOCO vs 2PC, no replication, 5k keys (KTxs/sec)";
  let base = base_params scale in
  let keys = List.hd (keyspaces scale) in
  List.iter
    (fun ro ->
      pr out "-- %d%% read-only --\n%-6s%14s%14s%14s\n"
        (int_of_float (ro *. 100.))
        "nodes" "SSS" "2PC" "ROCOCO";
      List.iter
        (fun nodes ->
          let o sys = run { base with system = sys; nodes; keys; ro_ratio = ro; degree = 1 } in
          pr out "%-6d%14.1f%14.1f%14.1f\n" nodes (ktxs (o Sss)) (ktxs (o Twopc))
            (ktxs (o Rococo)))
        (node_counts scale))
    [ 0.2; 0.8 ]

let fig6 ctx scale = staged ctx (fig6_body scale)

let fig7_body scale ~run ~out =
  header out "Figure 7: throughput, 80% read-only, 50% locality, degree 2 (KTxs/sec)";
  let base = base_params scale in
  pr out "%-6s" "nodes";
  List.iter
    (fun sys ->
      List.iter
        (fun keys -> pr out "%14s" (Printf.sprintf "%s-%dk" (system_name sys) (keys / 1000)))
        (keyspaces scale))
    [ Twopc; Walter; Sss ];
  pr out "\n";
  List.iter
    (fun nodes ->
      pr out "%-6d" nodes;
      List.iter
        (fun sys ->
          List.iter
            (fun keys ->
              let o =
                run
                  { base with system = sys; nodes; keys; ro_ratio = 0.8; locality = 0.5;
                    degree = 2 }
              in
              pr out "%14.1f" (ktxs o))
            (keyspaces scale))
        [ Twopc; Walter; Sss ];
      pr out "\n")
    (node_counts scale)

let fig7 ctx scale = staged ctx (fig7_body scale)

let fig8_body scale ~run ~out =
  header out "Figure 8: speedup of SSS as read-only size grows (15 nodes, 80% read-only)";
  let base = base_params scale in
  let nodes = match scale with Full -> 15 | Quick -> 10 | Smoke -> 5 in
  pr out "(nodes = %d)\n%-8s" nodes "ro-size";
  List.iter
    (fun keys ->
      pr out "%18s%18s"
        (Printf.sprintf "SSS/ROCOCO-%dk" (keys / 1000))
        (Printf.sprintf "SSS/2PC-%dk" (keys / 1000)))
    (keyspaces scale);
  pr out "\n";
  List.iter
    (fun ro_ops ->
      pr out "%-8d" ro_ops;
      List.iter
        (fun keys ->
          let o sys =
            run
              { base with system = sys; nodes; keys; ro_ratio = 0.8; ro_ops; degree = 1 }
          in
          let sss = (o Sss).throughput in
          let roc = (o Rococo).throughput in
          let tp = (o Twopc).throughput in
          pr out "%18.2f%18.2f" (sss /. roc) (sss /. tp))
        (keyspaces scale);
      pr out "\n")
    [ 2; 4; 8; 16 ]

let fig8 ctx scale = staged ctx (fig8_body scale)

let abort_rate_body scale ~run ~out =
  header out "In-text: SSS abort rate at 20% read-only (paper: 6-28% at 5k, 4-14% at 10k)";
  let base = base_params scale in
  pr out "%-6s" "nodes";
  List.iter (fun keys -> pr out "%14s" (Printf.sprintf "%dk keys" (keys / 1000))) (keyspaces scale);
  pr out "\n";
  List.iter
    (fun nodes ->
      pr out "%-6d" nodes;
      List.iter
        (fun keys ->
          let o = run { base with system = Sss; nodes; keys; ro_ratio = 0.2; degree = 2 } in
          pr out "%13.1f%%" (o.abort_rate *. 100.0))
        (keyspaces scale);
      pr out "\n")
    (node_counts scale)

let abort_rate ctx scale = staged ctx (abort_rate_body scale)

let ablation_body scale ~run ~out =
  header out
    "Ablation: SSS paper-literal release vs hardened external-commit ordering (KTxs/sec)";
  let base = base_params scale in
  let keys = List.hd (keyspaces scale) in
  let nodes = latency_nodes scale in
  pr out "(nodes = %d, 80%% read-only)\n%-8s%14s%14s%10s\n" nodes "ro-size" "paper"
    "hardened" "cost";
  List.iter
    (fun ro_ops ->
      let o strict =
        run { base with system = Sss; nodes; keys; ro_ratio = 0.8; ro_ops; degree = 1; strict }
      in
      let paper = ktxs (o false) and hard = ktxs (o true) in
      pr out "%-8d%14.1f%14.1f%9.0f%%\n" ro_ops paper hard
        (100. *. (paper -. hard) /. paper))
    [ 2; 8; 16 ];
  header out "Ablation: prioritized network queues (the §V optimization) (KTxs/sec)";
  let nodes2 = latency_nodes scale in
  pr out "(nodes = %d, 50%% read-only, saturated clients)\n%-12s%14s%14s\n" nodes2
    "" "prioritized" "fifo";
  let o pn =
    run
      { base with system = Sss; nodes = nodes2; keys; ro_ratio = 0.5;
        clients = base.clients * 2; priority_network = pn }
  in
  let yes = o true and no = o false in
  pr out "%-12s%14.1f%14.1f\n" "throughput" (ktxs yes) (ktxs no);
  pr out "%-12s%13.3fms%13.3fms\n" "p99 latency" (yes.p99_latency *. 1e3)
    (no.p99_latency *. 1e3);
  header out "Ablation: vector-clock metadata compression (bytes on the wire)";
  let o compress =
    run { base with system = Sss; nodes = nodes2; keys; ro_ratio = 0.5; compress }
  in
  let comp = o true and rawb = o false in
  pr out "%-14s%16s%16s\n" "" "compressed" "raw";
  pr out "%-14s%13.1f KB%13.1f KB\n" "total traffic"
    (float_of_int comp.wire_bytes /. 1024.)
    (float_of_int rawb.wire_bytes /. 1024.);
  pr out "%-14s%13.0f  B%13.0f  B\n" "per txn"
    (float_of_int comp.wire_bytes /. float_of_int (max 1 comp.committed))
    (float_of_int rawb.wire_bytes /. float_of_int (max 1 rawb.committed))

let ablation ctx scale = staged ctx (ablation_body scale)

let skewed_body scale ~run ~out =
  header out "Extra (not in the paper): zipfian key popularity, 50% read-only (KTxs/sec)";
  let base = base_params scale in
  let keys = List.hd (keyspaces scale) in
  let nodes = latency_nodes scale in
  pr out "(nodes = %d, theta on X)\n%-8s%14s%14s%14s%14s\n" nodes "theta" "SSS" "Walter"
    "2PC" "ROCOCO";
  List.iter
    (fun theta ->
      let o sys =
        run
          { base with system = sys; nodes; keys; ro_ratio = 0.5;
            zipf = (if theta = 0.0 then None else Some theta);
            degree = (if sys = Rococo then 1 else 2) }
      in
      pr out "%-8.2f%14.1f%14.1f%14.1f%14.1f\n" theta (ktxs (o Sss)) (ktxs (o Walter))
        (ktxs (o Twopc)) (ktxs (o Rococo)))
    [ 0.0; 0.6; 0.9; 0.99 ]

let skewed ctx scale = staged ctx (skewed_body scale)

let durability_body scale ~run ~out =
  header out "Durability: WAL group-commit overhead, and recovery vs checkpoint interval";
  let base = base_params scale in
  let keys = List.hd (keyspaces scale) in
  (* (a) steady-state cost of the log: the same workload with durability
     off and on; durable commits pay the fsync before acknowledging *)
  pr out "-- overhead: durability off vs on (4 nodes, 50%% read-only) --\n";
  pr out "%-8s%12s%12s%14s%14s%8s\n" "system" "off KTxs" "on KTxs" "off upd ms" "on upd ms"
    "cost";
  List.iter
    (fun sys ->
      let o durability =
        run
          { base with system = sys; nodes = 4; keys; ro_ratio = 0.5;
            degree = (if sys = Rococo then 1 else 2); durability }
      in
      let off = o false and on = o true in
      pr out "%-8s%12.1f%12.1f%14.3f%14.3f%7.0f%%\n" (system_name sys) (ktxs off) (ktxs on)
        (off.mean_update_latency *. 1e3)
        (on.mean_update_latency *. 1e3)
        (100. *. (ktxs off -. ktxs on) /. Float.max 1e-9 (ktxs off)))
    [ Sss; Walter; Twopc; Rococo ];
  (* (b) the checkpoint-cadence trade: a crash at 15 ms (restart 19 ms)
     replays the log tail past the last completed checkpoint, so shorter
     intervals buy faster recovery with more checkpoint write traffic *)
  pr out "-- SSS recovery vs checkpoint interval (crash one node at 15 ms, restart 19 ms) --\n";
  pr out "%-12s%13s%12s%14s%12s\n" "interval ms" "checkpoints" "replayed" "recovery ms" "KTxs";
  List.iter
    (fun interval ->
      let o =
        run
          { base with system = Sss; nodes = 4; keys; ro_ratio = 0.5; degree = 2;
            warmup = 0.005; duration = 0.03; durability = true;
            checkpoint_interval = Some interval; crash = Some (0.015, 0.019) }
      in
      let w = o.wal in
      pr out "%-12.1f%13d%12d%14.3f%12.1f\n" (interval *. 1e3)
        w.Sss_storage.Storage.checkpoints w.Sss_storage.Storage.replayed_records
        (w.Sss_storage.Storage.recovery_seconds *. 1e3)
        (ktxs o))
    (match scale with
    | Smoke -> [ 0.005; 0.05 ]
    | Quick | Full -> [ 0.002; 0.005; 0.01; 0.02; 0.05 ])

let durability ctx scale = staged ctx (durability_body scale)

(* offered arrivals per second per node; the ladder must cross each
   protocol's service capacity so the knee and the post-knee sojourn
   blow-up are both visible *)
let saturation_rates = function
  | Full -> [ 10_000.; 20_000.; 40_000.; 80_000.; 160_000. ]
  | Quick -> [ 10_000.; 20_000.; 40_000.; 80_000. ]
  | Smoke -> [ 5_000.; 20_000.; 80_000. ]

let saturation_body scale ~slo_ms ~slo ~run ~out =
  (* the body is interpreted twice (record + replay); only the replay
     pass's SLO verdicts survive *)
  slo := [];
  header out "Saturation: open-loop throughput and p99 sojourn vs offered load";
  let base = base_params scale in
  let keys = List.hd (keyspaces scale) in
  let nodes = match scale with Full -> 10 | Quick -> 5 | Smoke -> 3 in
  (* An open-loop client observes at minimum the protocol's blocking
     structure: a read round plus a commit round, each a request/reply
     exchange — about 2 RTTs plus message service, independent of load.
     Didona & Zwaenepoel (ATC'19) use this floor to anchor saturation
     plots; points near it are uncontended, points far above it are
     queueing. *)
  let nc = Sss_net.Network.default_config in
  let floor_s =
    4.0 *. (nc.Sss_net.Network.latency_base +. nc.Sss_net.Network.cpu_per_message)
  in
  pr out
    "(nodes = %d, %d keys, 50%% read-only, Poisson arrivals per node,\n\
    \ admission queue %d, %d workers/node, GC on)\n"
    nodes keys base.queue_capacity base.workers;
  pr out "latency floor (~2 RTTs, cf. Didona et al.): %.3f ms\n" (floor_s *. 1e3);
  List.iter
    (fun sys ->
      pr out "-- %s --\n" (system_name sys);
      pr out "%-11s%10s%10s%10s%9s%12s%8s%10s%9s%10s\n" "offered/s" "offered" "accepted"
        "committed" "KTxs/s" "p99soj ms" "rej%" "versions" "dropped" "st.words";
      let rungs =
        List.map
          (fun rate ->
            let (o : outcome) =
              run
                { base with system = sys; nodes; keys; ro_ratio = 0.5; gc = true;
                  arrival = Some (Sss_workload.Driver.Poisson rate) }
            in
            pr out "%-11.0f%10d%10d%10d%9.1f%12.3f%7.1f%%%10d%9d%10d\n" rate o.offered
              o.accepted o.committed (ktxs o) (o.p99_sojourn *. 1e3)
              (100. *. float_of_int o.rejected /. float_of_int (max 1 o.offered))
              o.store_versions o.gc_dropped_versions o.store_words;
            (rate, o))
          (saturation_rates scale)
      in
      (* end-of-run resident storage at the hottest rung: versions are per
         SSS's exact accounting ([Mvstore.mem_words]); the other systems
         report their modelled store words *)
      (match List.rev rungs with
      | (_, (last : outcome)) :: _ ->
          if last.store_versions > 0 then
            pr out "   store: %d resident words, %.2f words/version\n" last.store_words
              (float_of_int last.store_words /. float_of_int last.store_versions)
          else pr out "   store: %d resident words\n" last.store_words
      | [] -> ());
      (* SLO verdict (ROADMAP item 1): the highest offered rate whose p99
         sojourn still meets the bound *)
      let met =
        List.fold_left
          (fun acc (rate, (o : outcome)) ->
            if o.p99_sojourn <= slo_ms /. 1e3 then Some rate else acc)
          None rungs
      in
      (match met with
      | Some rate ->
          pr out "   SLO p99 <= %.3f ms: sustained up to %.0f arrivals/s per node\n" slo_ms
            rate
      | None -> pr out "   SLO p99 <= %.3f ms: no rung met the bound\n" slo_ms);
      slo := (system_name sys, met) :: !slo)
    [ Sss; Twopc ];
  (* one ramp run per system: the arrival rate climbs through the knee
     within a single trajectory, so the aggregate mixes the uncontended
     and saturated regimes — a cheap smoke of the Ramp process itself *)
  let rates = saturation_rates scale in
  let lo = List.hd rates and hi = List.fold_left Float.max 0.0 rates in
  pr out "-- ramp %.0f -> %.0f arrivals/s per node --\n" lo hi;
  pr out "%-8s%10s%10s%10s%9s%12s%8s\n" "system" "offered" "accepted" "committed"
    "KTxs/s" "p99soj ms" "rej%";
  List.iter
    (fun sys ->
      let (o : outcome) =
        run
          { base with system = sys; nodes; keys; ro_ratio = 0.5; gc = true;
            arrival = Some (Sss_workload.Driver.Ramp { from_rate = lo; to_rate = hi }) }
      in
      pr out "%-8s%10d%10d%10d%9.1f%12.3f%7.1f%%\n" (system_name sys) o.offered
        o.accepted o.committed (ktxs o) (o.p99_sojourn *. 1e3)
        (100. *. float_of_int o.rejected /. float_of_int (max 1 o.offered)))
    [ Sss; Twopc ]

let saturation ?(slo_ms = 5.0) ctx scale =
  let slo = ref [] in
  let m = staged ctx (saturation_body scale ~slo_ms ~slo) in
  { m with slo_rates = List.rev !slo }

let observed_metrics scale =
  let base = base_params scale in
  let keys = List.hd (keyspaces scale) in
  let nodes = latency_nodes scale in
  let o = run { base with system = Sss; nodes; keys; ro_ratio = 0.5; observe = true } in
  match o.metrics with Some m -> m | None -> "{}"

let all ctx scale =
  List.fold_left
    (fun m fig -> meters_sum m (fig ctx scale))
    meters_zero
    [ fig3; fig4a; fig4b; fig5; fig6; fig7; fig8; abort_rate; ablation; skewed; durability;
      (fun ctx scale -> saturation ctx scale) ]
