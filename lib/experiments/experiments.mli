(** Reproduction harness for every figure of the paper's evaluation (§V).

    Each [figN] function runs the corresponding experiment on the simulated
    cluster and prints the same series the paper plots; EXPERIMENTS.md
    records the paper-vs-measured comparison.  Absolute numbers are
    simulator numbers — the meaningful output is the shape: orderings,
    ratios, crossovers.

    Figures execute through a {!ctx}: the independent simulator runs behind
    a figure are fanned across a {!Sss_par.Pool} (jobs = 1 by default) and
    their results consumed strictly in submission order, so a figure's text
    and {!meters} are byte-identical at every jobs count. *)

type system = Sss | Walter | Twopc | Rococo

val system_name : system -> string

type params = {
  system : system;
  nodes : int;
  degree : int;
  keys : int;
  ro_ratio : float;
  ro_ops : int;  (** reads per read-only transaction *)
  locality : float;  (** probability of accessing a node-local key *)
  clients : int;  (** closed-loop clients per node *)
  warmup : float;
  duration : float;
  seed : int;
  strict : bool;
      (** SSS only: run the hardened external-commit ordering (see
          DESIGN.md) instead of the paper's literal per-key release;
          defaults to the paper's behaviour for benchmark fidelity *)
  priority_network : bool;
      (** SSS only: the §V prioritized message queues (default on) *)
  compress : bool;
      (** SSS only: §III-A vector-clock compression for the byte
          telemetry (default on) *)
  zipf : float option;
      (** skewed key popularity (YCSB zipfian theta) instead of uniform *)
  observe : bool;
      (** attach the {!Sss_obs.Obs} sink to the run (default off).  By the
          observer-effect contract this must not change trajectories — see
          docs/OBSERVABILITY.md and the gate in bench/smoke.sh *)
  durability : bool;
      (** write-ahead logging on every node (default off; see
          docs/DURABILITY.md) *)
  checkpoint_interval : float option;
      (** override {!Sss_kv.Config.t.checkpoint_interval} (default [None]:
          the Config default) *)
  crash : (float * float) option;
      (** [Some (at, restart_at)]: fail-stop one node mid-run and restart
          it, with {!Sss_chaos.Chaos} crash/restart hooks wired so durable
          protocols discard volatile state and replay their log.  Enables
          the fault-tolerant transport for the run. *)
  arrival : Sss_workload.Driver.arrival option;
      (** [Some process]: drive the run open-loop — arrivals from the given
          process instead of [clients] think-free loops.  [None] (default)
          keeps the paper's closed loop, byte-identical to builds without
          the open-loop engine. *)
  queue_capacity : int;
      (** open loop: bounded admission queue per node; arrivals beyond it
          are rejected (counted, not queued) *)
  workers : int;  (** open loop: service fibers per node *)
  gc : bool;
      (** watermark-driven online version GC ({!Sss_kv.Config.t.gc});
          default off, which is trajectory-identical to builds without it *)
}

val default_params : params
(** SSS, 5 nodes, degree 2, 5000 keys, 50% read-only, 10 clients/node,
    10 ms warmup + 40 ms measured. *)

type outcome = {
  throughput : float;  (** committed transactions per second of virtual time *)
  committed : int;
  aborted : int;
  abort_rate : float;
  mean_latency : float;
  p99_latency : float;
  mean_update_latency : float;
  mean_ro_latency : float;
  (* SSS only: mean time from begin to internal commit (Decide sent) and
     from internal to external commit (the snapshot-queue wait) *)
  sss_internal : float option;
  sss_wait : float option;
  wait_covered_timeouts : int;  (** SSS only; 0 in all reported runs *)
  wire_bytes : int;  (** SSS only: total network bytes (compression-aware) *)
  metrics : string option;
      (** [Some json] iff the run had [observe = true]: the
          {!Sss_obs.Obs.metrics_json} of the cluster's sink *)
  des_events : int;  (** simulator events this run executed *)
  virtual_seconds : float;  (** virtual time this run simulated *)
  wal : Sss_storage.Storage.stats;
      (** SSS only: cluster-wide write-ahead-log telemetry —
          {!Sss_storage.Storage.zero_stats} when [durability] is off or
          the system does not expose it *)
  offered : int;  (** open loop: arrivals in the measured window *)
  accepted : int;  (** open loop: arrivals admitted to a queue *)
  rejected : int;  (** open loop: arrivals refused (queue at capacity) *)
  p99_sojourn : float;
      (** open loop: 99th-percentile completion - arrival over committed
          transactions (queueing delay + service) *)
  mean_sojourn : float;
  mean_queue_wait : float;  (** open loop: mean dequeue - arrival *)
  store_versions : int;
      (** SSS only: versions retained across every node's MV-store at end
          of run *)
  store_words : int;
      (** end-of-run resident store words: SSS reports the exact
          arena accounting ({!Sss_kv.Kv.mem_words}); the other systems a
          per-protocol heap model of their stores ([store_words] in each
          facade) — comparable across protocols in the saturation figure *)
  store_mem : Sss_data.Mvstore.mem;
      (** SSS only: the full accounting breakdown behind [store_words]
          ({!Sss_data.Mvstore.mem_zero} for the other systems) *)
  nlog_entries : int;  (** SSS only: node-log entries retained at end of run *)
  gc_dropped_versions : int;  (** SSS only: versions reclaimed by online GC *)
  gc_dropped_entries : int;  (** SSS only: log entries reclaimed by online GC *)
}

val run : params -> outcome
(** Build the cluster, drive the closed-loop workload, return the measured
    window's statistics.  History recording is off (benchmark mode).

    [run] is a pure function of its params: it builds its own simulator and
    cluster and touches no module-level state, so concurrent calls from
    pool domains are safe (lint rule R6 polices the library). *)

(** Execution context for the figure harness: the domain pool fan-out
    width, the bench [--observe] override, and the sink the figure's text
    goes to. *)
type ctx

val ctx :
  ?jobs:int -> ?observe_all:bool -> ?out:(string -> unit) -> unit -> ctx
(** [jobs] defaults to 1 (fully sequential, no domains spawned);
    [Sss_par.Pool.default_jobs ()] gives the machine width.  [observe_all]
    forces [observe = true] on every run the ctx executes (bench's
    [--observe] flag; the smoke.sh observer-effect gate diffs trajectories
    with this on vs off).  [out] receives every byte the figures print
    (default [print_string]); pass [ignore] for a quiet timing run. *)

val jobs : ctx -> int

val run_in : ctx -> params -> outcome
(** {!run}, with the ctx's [observe_all] override applied. *)

val run_seeds : ctx -> params -> seeds:int list -> outcome list
(** The same experiment point at each seed, fanned through the ctx's pool;
    results in the seeds' list order.  The shared seed-sweep entry point —
    harnesses build the seed list with {!Sss_par.Sweep.seeds}. *)

(** Per-figure simulator totals, for the bench harness's [--json] report
    (DES events/sec, virtual-time throughput).  Summed from the outcomes in
    submission order, so identical at every jobs count. *)
type meters = {
  des_events : int;  (** simulator events executed *)
  virtual_seconds : float;  (** virtual time simulated *)
  committed_txns : int;
  runs : int;  (** number of {!run} calls banked *)
  offered : int;  (** open-loop arrivals (0 for closed-loop figures) *)
  accepted : int;
  rejected : int;
  store_versions : int;  (** end-of-run retained versions, summed over runs *)
  gc_dropped : int;  (** versions reclaimed by the online GC *)
  store_words : int;
      (** end-of-run resident store words, summed over runs (words/version
          = store_words / store_versions is the bench-gated metric) *)
  slo_rates : (string * float option) list;
      (** saturation figure only: per protocol, the highest offered rate
          whose p99 sojourn met the SLO bound ([None]: no rung did) *)
}

val meters_zero : meters

val meters_sum : meters -> meters -> meters

(** Experiment scale: [Full] mirrors the paper's parameters (up to 20
    nodes, 5k/10k keys); [Quick] shrinks node counts and durations for a
    fast regeneration; [Smoke] is a seconds-long sanity pass used in CI. *)
type scale = Full | Quick | Smoke

val base_params : scale -> params
(** The parameter template every figure at that scale derives its points
    from (bench/main.ml fingerprints it for the report's meta block). *)

val fig3 : ctx -> scale -> meters
(** Throughput vs node count for SSS/Walter/2PC, replication degree 2,
    read-only ratio in {20, 50, 80}%, 5k and 10k keys. *)

val fig4a : ctx -> scale -> meters
(** Maximum attainable throughput (best over clients-per-node) for SSS vs
    2PC-baseline, 50% read-only, 5k keys. *)

val fig4b : ctx -> scale -> meters
(** Update-transaction latency (begin to external commit) vs clients per
    node, 20 nodes, 50% read-only, 5k keys, SSS vs 2PC-baseline. *)

val fig5 : ctx -> scale -> meters
(** Breakdown of SSS update latency: execution+internal commit vs the
    pre-commit (snapshot-queue) wait; the paper reports the wait at ~30% of
    total, and below 28% on average. *)

val fig6 : ctx -> scale -> meters
(** SSS vs ROCOCO vs 2PC-baseline, no replication, 5k keys, 20% and 80%
    read-only. *)

val fig7 : ctx -> scale -> meters
(** Throughput at 80% read-only with 50% access locality, degree 2, 5k and
    10k keys, SSS/Walter/2PC. *)

val fig8 : ctx -> scale -> meters
(** Speedup of SSS over ROCOCO and over 2PC-baseline as the read-only size
    grows through {2,4,8,16} reads; 15 nodes, 80% read-only, no
    replication. *)

val abort_rate : ctx -> scale -> meters
(** In-text measurement: SSS abort rate from 5 to 20 nodes at 20% read-only
    with 5k and 10k keys (paper: 6-28% and 4-14%). *)

val ablation : ctx -> scale -> meters
(** Design-choice ablation (not in the paper): throughput cost of the
    hardened external-commit ordering that makes the checker properties
    airtight, versus the paper's literal per-key snapshot-queue release. *)

val skewed : ctx -> scale -> meters
(** Extra experiment (not in the paper): all four systems under zipfian
    key popularity of increasing skew — contention sensitivity beyond the
    paper's uniform-access evaluation. *)

val durability : ctx -> scale -> meters
(** Extra experiment (not in the paper): the durable storage engine's two
    trades.  (a) Steady-state overhead — each system with durability off
    vs on, where durable commits wait for the group-commit fsync before
    acknowledging.  (b) Recovery cost vs checkpoint cadence — SSS with a
    mid-run crash/restart, sweeping the checkpoint interval: shorter
    intervals shrink the replayed log tail (faster recovery) at the price
    of more checkpoint write traffic.  EXPERIMENTS.md records the
    measured table. *)

val saturation : ?slo_ms:float -> ctx -> scale -> meters
(** Extra experiment (not in the paper): open-loop saturation sweep.  A
    Poisson offered-load ladder per node is swept through each protocol's
    capacity knee (SSS and 2PC-baseline, online GC on), reporting accepted
    vs committed load, the 99th-percentile sojourn time, the admission
    rejection rate, and the version-retention gauges; a closing section
    drives one [Ramp] trajectory per system through the same range.  The
    printed latency floor (~2 request/reply rounds) anchors the sojourn
    axis the way Didona et al. anchor their saturation plots.  Each ladder
    closes with the protocol's resident store words (cross-protocol, same
    heap model) and its SLO verdict: the highest offered rate whose p99
    sojourn meets [slo_ms] (default 5 ms; bench [--slo]), also returned in
    [meters.slo_rates] for the [--json] report. *)

val observed_metrics : scale -> string
(** Run one traced SSS cell (the fig4b/fig5 configuration with
    [observe = true]) and return its metrics JSON — the "metrics" section
    of [bench --json --observe] and [stress --observe]. *)

val all : ctx -> scale -> meters
(** Run every experiment in order. *)
