(** The simulator's event queue: a calendar/ladder queue ordered by
    [(time, key)].

    The queue is O(1) amortized for the timestamp distributions the network
    models produce: a window of fixed-width buckets absorbs near-future
    events, the current bucket is drained in place by a scan for its
    minimum (a handful of contiguous float compares at typical occupancy —
    no sift, no copy), a small {e front} min-heap takes the spill when one
    bucket grows pathological, and far-future timers fall back to an
    {e overflow} rung that re-anchors the window when it drains.  Ties in
    [time] are broken by the int [key];
    when keys are unique (the simulator packs [(priority, sequence)] into
    one), pop order equals a global sort by [(time, key)] exactly,
    independent of rung internals.

    Payloads are an [(fn, arg)] application rather than a thunk so callers
    with a long-lived handler (the simulator's fiber/callback wrappers, the
    network's delivery handler) can schedule without allocating a closure
    per event.  All internal storage is struct-of-arrays with recycled
    slots: steady-state push/pop allocates nothing, and vacated slots are
    poisoned so spent payloads are not kept alive. *)

type t

val create : ?buckets:int -> ?width:float -> unit -> t
(** [create ()] returns an empty queue anchored at time 0.0 with [buckets]
    rungs of [width] virtual seconds each (defaults: 1024 x 1e-6 s, sized
    for the microsecond-scale network models).  Times pushed must be
    non-decreasing relative to the last pop (the simulator's no-past-events
    invariant); far-future times are unrestricted. *)

val length : t -> int
(** Number of queued events. *)

val is_empty : t -> bool
(** [length t = 0], without counting. *)

val push : t -> time:float -> key:int -> (Obj.t -> unit) -> Obj.t -> unit
(** Insert an event.  O(1) amortized within the window; O(log overflow) for
    far-future times.  The [(fn, arg)] pair is applied by {!run_popped}. *)

val pop : t -> bool
(** Remove the minimal event, exposing it via {!popped_time} and
    {!run_popped}.  Returns [false] iff the queue is empty. *)

val popped_time : t -> float
(** Timestamp of the event removed by the last successful {!pop}. *)

val run_popped : t -> unit
(** Apply the last popped event's [fn] to its [arg], clearing the queue's
    references to both first (so the payload is collectable once it
    returns).  Must be called at most once per successful {!pop}. *)

val min_time : t -> float
(** Smallest queued time, [infinity] when empty.  May advance internal
    cursors but never changes the pop order. *)
