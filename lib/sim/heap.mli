(** Imperative binary min-heap.

    Used as the simulator's event queue. The ordering function is fixed at
    creation time; ties must be broken by the caller (the simulator orders
    events by [(time, priority, sequence)] so the heap order is total). *)

type 'a t

val create : cmp:('a -> 'a -> int) -> 'a t
(** [create ~cmp] returns an empty heap ordered by [cmp]. *)

val length : 'a t -> int
(** Number of elements. *)

val is_empty : 'a t -> bool
(** [length t = 0], without counting. *)

val push : 'a t -> 'a -> unit
(** Insert an element (amortized O(log n)). *)

val peek : 'a t -> 'a option
(** Smallest element without removing it. *)

val pop : 'a t -> 'a option
(** Remove and return the smallest element. *)

val pop_exn : 'a t -> 'a
(** @raise Invalid_argument on an empty heap. *)

val clear : 'a t -> unit
(** Drop every element. *)

val to_list : 'a t -> 'a list
(** Snapshot of the contents in no particular order. *)
