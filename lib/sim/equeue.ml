(* The blessed event queue: a calendar/ladder queue specialized for the
   timestamp distributions the simulator's network models produce (a dense
   cluster of events within a few tens of microseconds of [now], plus a thin
   tail of far-future timers).

   Structure:

   - a window of [nb] *buckets*, each [width] virtual seconds wide, covering
     [origin, origin + nb*width).  A push whose time falls in the window is
     an O(1) append to its bucket's unsorted stack; an occupancy bitmap (32
     buckets per word) lets the cursor skip empty stretches a word at a
     time.
   - the *current* bucket is drained in place: each pop scans its stack for
     the (time, key) minimum and swap-deletes it.  Occupancy is a handful
     of events (bursts of a protocol cascade), so the scan is a few
     contiguous float compares — no sift writes, no copying.  Same-bucket
     pushes (delay-0 wakeups, the highest-volume events) append to it
     directly.
   - the *front* rung: a binary min-heap that absorbs the current bucket
     when its occupancy exceeds [spill] (a broadcast storm landing on one
     microsecond), restoring O(log k) pops in the degenerate case.
   - the *overflow* rung: a min-heap for events at or beyond the horizon
     (timers).  When the window drains, the queue re-anchors at the
     earliest overflow event and migrates the events that now fall inside
     the window into buckets.

   Order is the caller's total order (time, key): ties in time are broken by
   the int [key], which the simulator packs as (priority, sequence) — seq is
   unique, so pop order is fully determined regardless of rung internals,
   and matches a global sort by (time, prio, seq) exactly.  The global
   minimum always lives in the front rung or the current bucket: appends to
   the current bucket are bounded by its upper edge, future buckets start at
   or above that edge, and the overflow rung starts at the horizon.

   Storage is struct-of-arrays: times live in flat [float array]s (no boxed
   floats on push/pop), keys are immediate ints, and the payload is an
   (fn, arg) pair applied on pop — [fn] is a long-lived closure and [arg]
   its argument, so scheduling allocates nothing.  Every slot is recycled
   in place; popped and drained slots are overwritten with poison values so
   spent closures are not kept alive and (in debug builds) reuse of a dead
   slot fails fast.  The (time, key) "less than" test is written out inline
   at each use site rather than as a helper: without flambda a call to a
   comparator boxes both float arguments, which at several comparisons per
   heap level would dominate the engine's allocation profile. *)

type fn = Obj.t -> unit

let dummy_fn : fn = fun _ -> ()

let dummy_arg : Obj.t = Obj.repr ()

(* A rung: binary min-heap on (time, key), struct-of-arrays. *)
type rung = {
  mutable h_times : float array;
  mutable h_keys : int array;
  mutable h_fns : fn array;
  mutable h_args : Obj.t array;
  mutable h_size : int;
}

(* A bucket: unsorted stack, struct-of-arrays. *)
type bucket = {
  mutable b_times : float array;
  mutable b_keys : int array;
  mutable b_fns : fn array;
  mutable b_args : Obj.t array;
  mutable b_size : int;
}

(* Scalar floats that are written on the hot path live in [fl] (a flat float
   array) rather than as mutable record fields: a mutable float field of a
   mixed record is boxed, so every store would allocate. *)
let f_origin = 0

let f_horizon = 1

let f_inv_width = 2

let f_width = 3

let f_pop_time = 4

(* Current-bucket occupancy beyond which it spills into the front rung. *)
let spill = 64

type t = {
  buckets : bucket array;
  nb : int;
  front : rung;
  overflow : rung;
  fl : float array;
  (* Occupancy bitmap over the buckets strictly after [cur], 32 buckets per
     word: the advance scan skips empty buckets a word at a time instead of
     probing each bucket record. *)
  occ : int array;
  mutable cur : int;  (* current bucket index; drained in place *)
  mutable in_window : int;  (* events parked in buckets strictly after [cur] *)
  mutable size : int;  (* total events across front, buckets and overflow *)
  (* Index of the current bucket's (time, key) minimum, or -1 when it must
     be rescanned.  [min_time] followed by [pop] shares one scan, and an
     append only compares itself against the cached minimum. *)
  mutable sc_i : int;
  mutable pop_key : int;
  mutable pop_fn : fn;
  mutable pop_arg : Obj.t;
}

let mk_rung () =
  { h_times = [||]; h_keys = [||]; h_fns = [||]; h_args = [||]; h_size = 0 }

let mk_bucket () =
  { b_times = [||]; b_keys = [||]; b_fns = [||]; b_args = [||]; b_size = 0 }

(* Defaults tuned to the network models: 1 microsecond buckets, a ~1 ms
   window.  Self-delivery (1us), CPU service (2us) and LAN latency
   (20us + exponential jitter) all land well inside the window; retry
   backoffs and await timeouts (0.5 ms - 0.1 s) take the overflow rung. *)
let create ?(buckets = 1024) ?(width = 1e-6) () =
  if buckets < 1 || width <= 0.0 then invalid_arg "Equeue.create";
  let fl = Array.make 5 0.0 in
  fl.(f_origin) <- 0.0;
  fl.(f_horizon) <- width *. float_of_int buckets;
  fl.(f_inv_width) <- 1.0 /. width;
  fl.(f_width) <- width;
  {
    buckets = Array.init buckets (fun _ -> mk_bucket ());
    nb = buckets;
    front = mk_rung ();
    overflow = mk_rung ();
    fl;
    occ = Array.make ((buckets + 31) / 32) 0;
    cur = 0;
    in_window = 0;
    size = 0;
    sc_i = -1;
    pop_key = 0;
    pop_fn = dummy_fn;
    pop_arg = dummy_arg;
  }

let length t = t.size

let is_empty t = t.size = 0

(* ---- rung (heap) operations ---- *)

let[@hot] rung_grow r =
  let cap = Array.length r.h_times in
  let ncap = if cap = 0 then 16 else cap * 2 in
  let nt = Array.make ncap 0.0
  and nk = Array.make ncap 0
  and nf = Array.make ncap dummy_fn
  and na = Array.make ncap dummy_arg in
  Array.blit r.h_times 0 nt 0 r.h_size;
  Array.blit r.h_keys 0 nk 0 r.h_size;
  Array.blit r.h_fns 0 nf 0 r.h_size;
  Array.blit r.h_args 0 na 0 r.h_size;
  r.h_times <- nt;
  r.h_keys <- nk;
  r.h_fns <- nf;
  r.h_args <- na

let[@hot] rung_push r time key fn arg =
  if r.h_size = Array.length r.h_times then rung_grow r;
  let ts = r.h_times and ks = r.h_keys and fs = r.h_fns and xs = r.h_args in
  let i = ref r.h_size in
  r.h_size <- r.h_size + 1;
  let moving = ref true in
  while !moving && !i > 0 do
    let p = (!i - 1) / 2 in
    let pt = Array.unsafe_get ts p and pk = Array.unsafe_get ks p in
    if time < pt || (time = pt && key < pk) then begin
      Array.unsafe_set ts !i pt;
      Array.unsafe_set ks !i pk;
      Array.unsafe_set fs !i (Array.unsafe_get fs p);
      Array.unsafe_set xs !i (Array.unsafe_get xs p);
      i := p
    end
    else moving := false
  done;
  Array.unsafe_set ts !i time;
  Array.unsafe_set ks !i key;
  Array.unsafe_set fs !i fn;
  Array.unsafe_set xs !i arg

(* precondition: r.h_size > 0.  Writes the minimum into t's popped slots and
   re-establishes the heap, poisoning the vacated tail slot. *)
let[@hot] rung_pop r t =
  let ts = r.h_times and ks = r.h_keys and fs = r.h_fns and xs = r.h_args in
  t.fl.(f_pop_time) <- Array.unsafe_get ts 0;
  t.pop_key <- Array.unsafe_get ks 0;
  t.pop_fn <- Array.unsafe_get fs 0;
  t.pop_arg <- Array.unsafe_get xs 0;
  let n = r.h_size - 1 in
  r.h_size <- n;
  let lt = Array.unsafe_get ts n and lk = Array.unsafe_get ks n in
  let lf = Array.unsafe_get fs n and lx = Array.unsafe_get xs n in
  Array.unsafe_set fs n dummy_fn;
  Array.unsafe_set xs n dummy_arg;
  if n > 0 then begin
    let i = ref 0 in
    let moving = ref true in
    while !moving do
      let l = (2 * !i) + 1 in
      if l >= n then moving := false
      else begin
        let r' = l + 1 in
        let c =
          if
            r' < n
            &&
            let rt = Array.unsafe_get ts r' and lt' = Array.unsafe_get ts l in
            rt < lt'
            || (rt = lt' && Array.unsafe_get ks r' < Array.unsafe_get ks l)
          then r'
          else l
        in
        let ct = Array.unsafe_get ts c and ck = Array.unsafe_get ks c in
        if ct < lt || (ct = lt && ck < lk) then begin
          Array.unsafe_set ts !i ct;
          Array.unsafe_set ks !i ck;
          Array.unsafe_set fs !i (Array.unsafe_get fs c);
          Array.unsafe_set xs !i (Array.unsafe_get xs c);
          i := c
        end
        else moving := false
      end
    done;
    Array.unsafe_set ts !i lt;
    Array.unsafe_set ks !i lk;
    Array.unsafe_set fs !i lf;
    Array.unsafe_set xs !i lx
  end

(* ---- bucket operations ---- *)

let[@hot] bucket_grow b =
  let cap = Array.length b.b_times in
  let ncap = if cap = 0 then 8 else cap * 2 in
  let nt = Array.make ncap 0.0
  and nk = Array.make ncap 0
  and nf = Array.make ncap dummy_fn
  and na = Array.make ncap dummy_arg in
  Array.blit b.b_times 0 nt 0 b.b_size;
  Array.blit b.b_keys 0 nk 0 b.b_size;
  Array.blit b.b_fns 0 nf 0 b.b_size;
  Array.blit b.b_args 0 na 0 b.b_size;
  b.b_times <- nt;
  b.b_keys <- nk;
  b.b_fns <- nf;
  b.b_args <- na

let[@inline] bucket_push b time key fn arg =
  if b.b_size = Array.length b.b_times then bucket_grow b;
  let i = b.b_size in
  b.b_size <- i + 1;
  Array.unsafe_set b.b_times i time;
  Array.unsafe_set b.b_keys i key;
  Array.unsafe_set b.b_fns i fn;
  Array.unsafe_set b.b_args i arg

(* Index of [b]'s (time, key) minimum, using the cache when valid.
   precondition: b.b_size > 0 and b is the current bucket. *)
let[@hot] bucket_min_idx t b =
  let c = t.sc_i in
  if c >= 0 then c
  else begin
    let ts = b.b_times and ks = b.b_keys in
    let bi = ref 0 in
    for j = 1 to b.b_size - 1 do
      let tj = Array.unsafe_get ts j and tb = Array.unsafe_get ts !bi in
      if tj < tb || (tj = tb && Array.unsafe_get ks j < Array.unsafe_get ks !bi)
      then bi := j
    done;
    t.sc_i <- !bi;
    !bi
  end

(* Remove slot [i] from the current bucket into t's popped slots: the last
   element moves into the hole and the vacated tail slot is poisoned. *)
let[@hot] take_bucket t b i =
  t.fl.(f_pop_time) <- Array.unsafe_get b.b_times i;
  t.pop_key <- Array.unsafe_get b.b_keys i;
  t.pop_fn <- Array.unsafe_get b.b_fns i;
  t.pop_arg <- Array.unsafe_get b.b_args i;
  let n = b.b_size - 1 in
  b.b_size <- n;
  Array.unsafe_set b.b_times i (Array.unsafe_get b.b_times n);
  Array.unsafe_set b.b_keys i (Array.unsafe_get b.b_keys n);
  Array.unsafe_set b.b_fns i (Array.unsafe_get b.b_fns n);
  Array.unsafe_set b.b_args i (Array.unsafe_get b.b_args n);
  Array.unsafe_set b.b_fns n dummy_fn;
  Array.unsafe_set b.b_args n dummy_arg;
  t.sc_i <- -1

(* Move a bucket's events into the front rung (degenerate occupancy, or a
   re-anchored window's first bucket), poisoning the vacated slots so
   nothing is pinned past its dispatch. *)
let[@hot] spill_bucket t b =
  for i = 0 to b.b_size - 1 do
    rung_push t.front
      (Array.unsafe_get b.b_times i)
      (Array.unsafe_get b.b_keys i)
      (Array.unsafe_get b.b_fns i)
      (Array.unsafe_get b.b_args i);
    Array.unsafe_set b.b_fns i dummy_fn;
    Array.unsafe_set b.b_args i dummy_arg
  done;
  b.b_size <- 0;
  t.sc_i <- -1

(* ---- push ---- *)

let[@hot] push t ~time ~key fn arg =
  t.size <- t.size + 1;
  let fl = t.fl in
  if time >= Array.unsafe_get fl f_horizon then
    rung_push t.overflow time key fn arg
  else begin
    let idx =
      int_of_float ((time -. Array.unsafe_get fl f_origin) *. Array.unsafe_get fl f_inv_width)
    in
    (* clamp: float rounding may land exactly on nb even though
       time < horizon; monotonicity in [time] is preserved. *)
    let idx = if idx >= t.nb then t.nb - 1 else idx in
    if idx <= t.cur then begin
      (* current-bucket append; delay-0 pushes (wakeups, serve kicks) take
         this path.  Beyond [spill] events the bucket overflows into the
         front rung instead, keeping the pop scan bounded. *)
      let b = Array.unsafe_get t.buckets t.cur in
      let i = b.b_size in
      if i >= spill then rung_push t.front time key fn arg
      else begin
        bucket_push b time key fn arg;
        if i = 0 then t.sc_i <- 0
        else begin
          let c = t.sc_i in
          if c >= 0 then begin
            let mt = Array.unsafe_get b.b_times c in
            if time < mt || (time = mt && key < Array.unsafe_get b.b_keys c)
            then t.sc_i <- i
          end
        end
      end
    end
    else begin
      bucket_push (Array.unsafe_get t.buckets idx) time key fn arg;
      let w = idx lsr 5 in
      Array.unsafe_set t.occ w (Array.unsafe_get t.occ w lor (1 lsl (idx land 31)));
      t.in_window <- t.in_window + 1
    end
  end

(* ---- pop ---- *)

(* Re-anchor the window at the earliest overflow event and migrate every
   overflow event that now falls inside it into buckets. *)
let[@hot] re_anchor t =
  let ov = t.overflow in
  let fl = t.fl in
  let origin = ov.h_times.(0) in
  let horizon = origin +. (Array.unsafe_get fl f_width *. float_of_int t.nb) in
  fl.(f_origin) <- origin;
  fl.(f_horizon) <- horizon;
  (* -1, not 0: the migrated minimum lands in bucket 0, and the advance
     scan starts at [cur + 1].  No push can observe the transient value —
     re-anchoring happens inside a pop. *)
  t.cur <- -1;
  let inv = Array.unsafe_get fl f_inv_width in
  while ov.h_size > 0 && Array.unsafe_get ov.h_times 0 < horizon do
    rung_pop ov t;
    let time = Array.unsafe_get fl f_pop_time in
    let idx = int_of_float ((time -. origin) *. inv) in
    let idx = if idx >= t.nb then t.nb - 1 else idx in
    bucket_push (Array.unsafe_get t.buckets idx) time t.pop_key t.pop_fn t.pop_arg;
    let w = idx lsr 5 in
    Array.unsafe_set t.occ w (Array.unsafe_get t.occ w lor (1 lsl (idx land 31)));
    t.in_window <- t.in_window + 1
  done

(* Ensure the front rung or the current bucket holds the globally minimal
   event (advancing over empty buckets and re-anchoring from overflow as
   needed).  Returns false iff the queue is empty.  On return with [true],
   [t.cur] is a valid bucket index. *)
let[@hot] rec ensure_avail t =
  if t.front.h_size > 0 then true
  else if t.cur >= 0 && (Array.unsafe_get t.buckets t.cur).b_size > 0 then true
  else if t.size = 0 then false
  else if t.in_window > 0 then begin
    (* advance to the next occupied bucket via the occupancy bitmap;
       [in_window] > 0 guarantees a set bit before [nb] *)
    let start = t.cur + 1 in
    let w = ref (start lsr 5) in
    let bits = ref (Array.unsafe_get t.occ !w land ((-1) lsl (start land 31))) in
    while !bits = 0 do
      incr w;
      assert (!w < Array.length t.occ);
      bits := Array.unsafe_get t.occ !w
    done;
    (* index of the lowest set bit (b is a power of two < 2^32) *)
    let b = !bits land (- !bits) in
    let j = ref 0 in
    if b land 0xFFFF0000 <> 0 then j := 16;
    if b land 0xFF00FF00 <> 0 then j := !j + 8;
    if b land 0xF0F0F0F0 <> 0 then j := !j + 4;
    if b land 0xCCCCCCCC <> 0 then j := !j + 2;
    if b land 0xAAAAAAAA <> 0 then j := !j + 1;
    let idx = (!w lsl 5) lor !j in
    (* clearing the bit in the masked word is safe: buckets below [start]
       are drained, so their bits are already clear *)
    Array.unsafe_set t.occ !w (!bits lxor b);
    t.cur <- idx;
    t.sc_i <- -1;
    let bk = Array.unsafe_get t.buckets idx in
    t.in_window <- t.in_window - bk.b_size;
    if bk.b_size > spill then spill_bucket t bk;
    true
  end
  else begin
    re_anchor t;
    ensure_avail t
  end

let[@hot] pop t =
  if not (ensure_avail t) then false
  else begin
    let f = t.front in
    let b = Array.unsafe_get t.buckets t.cur in
    (if b.b_size = 0 then rung_pop f t
     else begin
       let i = bucket_min_idx t b in
       if
         f.h_size > 0
         &&
         let ft = Array.unsafe_get f.h_times 0
         and bt = Array.unsafe_get b.b_times i in
         ft < bt
         || (ft = bt && Array.unsafe_get f.h_keys 0 < Array.unsafe_get b.b_keys i)
       then rung_pop f t
       else take_bucket t b i
     end);
    t.size <- t.size - 1;
    true
  end

let[@inline] popped_time t = Array.unsafe_get t.fl f_pop_time

(* Apply the popped event's [fn] to its [arg], clearing the slots first so
   the payload is unreachable from the queue while (and after) it runs. *)
let[@inline] run_popped t =
  let fn = t.pop_fn and arg = t.pop_arg in
  t.pop_fn <- dummy_fn;
  t.pop_arg <- dummy_arg;
  fn arg

(* Smallest time in the queue without removing anything; [infinity] when
   empty.  May advance internal cursors (observationally pure). *)
let min_time t =
  if not (ensure_avail t) then infinity
  else begin
    let f = t.front in
    let b = Array.unsafe_get t.buckets t.cur in
    if b.b_size = 0 then Array.unsafe_get f.h_times 0
    else begin
      let i = bucket_min_idx t b in
      let bt = Array.unsafe_get b.b_times i in
      if f.h_size > 0 then begin
        let ft = Array.unsafe_get f.h_times 0 in
        if ft < bt then ft else bt
      end
      else bt
    end
  end
