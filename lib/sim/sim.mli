(** Deterministic discrete-event simulator with lightweight fibers.

    The engine maintains a virtual clock and an event queue ordered by
    [(time, priority, sequence)].  Code that needs to block — a protocol step
    waiting for a message, a 2PC coordinator waiting for votes, a transaction
    parked on a snapshot-queue — runs inside a {e fiber}: a cooperative
    thread implemented with OCaml effect handlers.  A fiber suspends by
    performing an effect and is resumed by a later event, so the pseudocode's
    "wait until" conditions translate directly into {!Cond.await} calls.

    Everything is single-threaded and deterministic: two runs with the same
    initial events and PRNG seeds produce identical histories. *)

type t

val create : unit -> t
(** A fresh simulator at virtual time 0.0. *)

val tune_gc : unit -> unit
(** Grow the minor heap once for the simulator's allocation profile
    (idempotent; also invoked by {!create}).  Harnesses that fan runs across
    domains should call it before spawning, so the resize happens while the
    runtime is single-domain. *)

val now : t -> float
(** Current virtual time, in seconds. *)

val events_processed : t -> int
(** Number of events executed so far (for reporting and loop guards). *)

val schedule : t -> ?prio:int -> delay:float -> (unit -> unit) -> unit
(** [schedule t ~delay f] runs [f] as a new fiber at time [now t +. delay].
    [f] may suspend.  Events at equal time fire in ascending [prio]
    (default 100), then in scheduling order. *)

val spawn : t -> ?prio:int -> (unit -> unit) -> unit
(** [spawn t f] is [schedule t ~delay:0.0 f]. *)

val schedule_callback : t -> ?prio:int -> delay:float -> (unit -> unit) -> unit
(** Like {!schedule} but the body runs as a bare callback, without the
    effect-handler context of a fiber: it must not suspend (wrap any
    possibly-suspending work in {!run_fiber}).  This is the cheap path for
    the simulator's highest-volume events (message deliveries, CPU
    charges). *)

val schedule_apply : t -> ?prio:int -> delay:float -> ('a -> unit) -> 'a -> unit
(** [schedule_apply t ~delay fn arg] runs [fn arg] as a bare callback at
    [now t +. delay] — semantically [schedule_callback t ~delay (fun () ->
    fn arg)], but without allocating the closure.  Callers with a
    long-lived handler (the network's delivery and dispatch paths) pass it
    directly and thread the per-event state through [arg], so scheduling
    an event allocates nothing.  [fn] must not suspend. *)

val run_fiber : (unit -> unit) -> unit
(** Run [f] immediately under a fresh effect handler.  If [f] suspends,
    the call returns and [f]'s continuation is parked exactly as a
    {!spawn}ed fiber's would be; it resumes through the event queue. *)

val set_probe : t -> (unit -> unit) option -> unit
(** Install (or clear) a passive tap run after every executed event.  The
    probe must not schedule events, suspend, or draw randomness — it exists
    so an observer can sample state (e.g. queue depths) on DES ticks
    without perturbing the trajectory.  At most one probe is installed;
    [None] removes it. *)

val tick : t -> unit
(** Count one logical event against {!events_processed} without executing
    anything.  Used by the network's inline dispatch, which fuses what used
    to be a separate handler event into its CPU-charge event — counting the
    fused delivery keeps DES events/sec comparable across dispatch modes. *)

val sleep : t -> float -> unit
(** Suspend the current fiber for the given amount of virtual time.  Must be
    called from within a fiber. *)

val suspend : t -> ?prio:int -> ((unit -> unit) -> unit) -> unit
(** [suspend t register] parks the current fiber and calls [register resume].
    The fiber continues when [resume ()] is invoked (at most once; later
    calls are errors the caller must prevent).  This is the primitive the
    higher-level {!Cond} and {!Ivar} are built from. *)

val run : t -> unit
(** Execute events until the queue is empty.  Exceptions raised by fibers
    propagate to the caller. *)

val run_until : t -> float -> unit
(** [run_until t limit] executes events with time <= [limit], then stops.
    The clock is left at [min limit time_of_next_event]. *)

(** Broadcast-style condition variables for "wait until P" loops. *)
module Cond : sig
  type sim := t
  type t

  val create : unit -> t

  val wait : sim -> t -> unit
  (** Park the current fiber until the next {!broadcast}. *)

  val broadcast : sim -> t -> unit
  (** Wake every parked fiber (they resume at the current time, in the order
      they started waiting).  Multi-waiter broadcasts are batched: one
      drain event resumes all waiters back-to-back instead of enqueueing
      one event per waiter; {!events_processed} still counts one logical
      event per waiter. *)

  val await : sim -> t -> (unit -> bool) -> unit
  (** [await sim c pred] returns when [pred ()] holds, re-checking after
      every broadcast.  Callers must broadcast [c] whenever the state read by
      [pred] changes. *)

  val await_timeout : sim -> t -> timeout:float -> (unit -> bool) -> bool
  (** Like {!await} but gives up after [timeout] seconds of virtual time.
      Returns [true] if the predicate held, [false] on timeout.  A waiter
      whose timer fires is compacted out of the condition's waiter list
      immediately, so long-lived conditions do not accumulate cancelled
      closures. *)
end

(** Write-once cells, used for request/response rendezvous. *)
module Ivar : sig
  type sim := t
  type 'a t

  val create : unit -> 'a t

  val is_filled : 'a t -> bool

  val peek : 'a t -> 'a option

  val fill : sim -> 'a t -> 'a -> unit
  (** Resolve the ivar and wake its readers.  Filling twice raises
      [Invalid_argument]. *)

  val read : sim -> 'a t -> 'a
  (** Return the value, parking the current fiber until it is available. *)

  val read_timeout : sim -> 'a t -> timeout:float -> 'a option
  (** [read_timeout] returns [None] if the ivar is still empty after
      [timeout] seconds of virtual time. *)
end
