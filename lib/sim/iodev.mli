(** A simulated storage device.

    The device is a serial resource on the virtual clock: submitted
    operations are served FIFO, each costing a fixed per-operation latency
    (the fsync floor) plus a size-proportional transfer time at the
    configured bandwidth.  It is the disk-shaped sibling of the network's
    link model — completions are bare callbacks on the {!Sim} event queue,
    the device draws no randomness and spawns no fibers, so trajectories
    that include it are exactly as deterministic as the rest of the
    simulation.

    {!Sss_storage.Storage} builds the write-ahead log and checkpoint
    machinery on top of this primitive (docs/DURABILITY.md). *)

type t

val create : Sim.t -> op_latency:float -> bandwidth:float -> t
(** [create sim ~op_latency ~bandwidth] is an idle device.  [op_latency]
    is charged once per submitted operation (seconds); [bandwidth] is the
    sustained transfer rate in bytes per second.  Raises [Invalid_argument]
    if [op_latency < 0] or [bandwidth <= 0]. *)

val submit : t -> bytes:int -> (unit -> unit) -> unit
(** [submit t ~bytes k] queues one operation moving [bytes] bytes and runs
    the completion callback [k] when it finishes:
    [max now busy_until + op_latency + bytes/bandwidth] on the virtual
    clock.  [k] runs as a bare callback and must not suspend (wrap
    possibly-suspending work in {!Sim.run_fiber}). *)

val service_time : t -> bytes:int -> float
(** The un-queued cost of one operation of the given size — what [submit]
    would charge on an idle device. *)

val ops : t -> int
(** Operations submitted so far (for telemetry). *)

val bytes_moved : t -> int
(** Total bytes across all submitted operations (for telemetry). *)
