(* Event order is the total order (time, prio, seq).  The priority and the
   per-simulator sequence number are packed into one int key — seq is unique
   and bounded by 2^44 events per simulator (20+ days of wall clock at 10M
   events/sec), so a single int comparison reproduces the lexicographic
   (prio, seq) tie-break exactly and the ladder queue's pop order is fully
   determined regardless of rung internals. *)
let seq_bits = 44

let max_prio = 1 lsl (62 - seq_bits)

let[@inline] pack_key ~prio ~seq = (prio lsl seq_bits) lor seq

type _ Effect.t += Suspend : ((unit -> unit) -> unit) -> unit Effect.t

(* Hoisted to a constant: none of the three closures captures anything, and
   allocating the handler record per [run_fiber] call would cost several
   words on every message delivery. *)
let fiber_handler : (unit, unit) Effect.Deep.handler =
  {
    retc = (fun () -> ());
    exnc = raise;
    effc =
      (fun (type a) (eff : a Effect.t) ->
        match eff with
        | Suspend register ->
            Some
              (fun (k : (a, unit) Effect.Deep.continuation) ->
                register (fun () -> Effect.Deep.continue k ()))
        | _ -> None);
  }

let run_fiber f = Effect.Deep.match_with f () fiber_handler

(* The queue stores events as an (fn, arg) application.  Thunk events (the
   classic [schedule]/[spawn] interface) go through one of these two static
   appliers, so the fiber/callback distinction costs no per-event storage;
   [schedule_apply] events pass the caller's long-lived handler directly.
   The Obj casts are confined to these appliers and [schedule_apply], whose
   types guarantee fn and arg were paired at push time. *)
let call_thunk : Obj.t -> unit = fun f -> (Obj.obj f : unit -> unit) ()

let call_fiber : Obj.t -> unit = fun f -> run_fiber (Obj.obj f : unit -> unit)

type t = {
  (* The clock lives in a flat float array rather than a mutable float
     field: a mixed record's float field is boxed, so writing it would
     allocate on every executed event. *)
  clock : float array;
  mutable seq : int;
  mutable processed : int;
  events : Equeue.t;
  (* Observation tap, run after every executed event.  The probe must be
     passive — no scheduling, no PRNG draws — so installing one cannot
     change a trajectory; the observability layer uses it to sample gauges
     "on DES ticks" without the simulator depending on it.  Stored as a
     bare closure ([ignore] when absent) so the per-event path has no
     option check. *)
  mutable probe : unit -> unit;
}

(* The protocols above the simulator remain allocation-heavy (message
   payloads, vector clocks); the default 256k-word minor heap forces a
   minor collection every few thousand events and promotes long-lived
   in-flight state.  Growing it once to 8M words is worth ~15% wall clock
   on the figure benchmarks.  Only ever grow — respect a larger value from
   OCAMLRUNPARAM.  The guard is an Atomic so concurrent [create] calls from
   pool domains (Sss_par) race benignly: exactly one domain performs the
   [Gc.set].  Harnesses that fan out should call [tune_gc] once before
   spawning so the resize happens while the runtime is single-domain. *)
let gc_tuned = Atomic.make false

let tune_gc () =
  if (not (Atomic.get gc_tuned)) && Atomic.compare_and_set gc_tuned false true then begin
    let g = Gc.get () in
    let want = 8 * 1024 * 1024 in
    if g.Gc.minor_heap_size < want then Gc.set { g with Gc.minor_heap_size = want }
  end

let create () =
  tune_gc ();
  {
    clock = Array.make 1 0.0;
    seq = 0;
    processed = 0;
    events = Equeue.create ();
    probe = ignore;
  }

let[@inline] now t = Array.unsafe_get t.clock 0

let events_processed t = t.processed

let[@inline] [@hot] enqueue t ~prio ~delay ~fiber run =
  assert (delay >= 0.0);
  assert (prio >= 0 && prio < max_prio);
  let key = pack_key ~prio ~seq:t.seq in
  t.seq <- t.seq + 1;
  Equeue.push t.events ~time:(now t +. delay) ~key
    (if fiber then call_fiber else call_thunk)
    (Obj.repr run)

let schedule t ?(prio = 100) ~delay f = enqueue t ~prio ~delay ~fiber:true f

let schedule_callback t ?(prio = 100) ~delay f = enqueue t ~prio ~delay ~fiber:false f

let[@hot] schedule_apply (type a) t ?(prio = 100) ~delay (fn : a -> unit) (arg : a) =
  assert (delay >= 0.0);
  assert (prio >= 0 && prio < max_prio);
  let key = pack_key ~prio ~seq:t.seq in
  t.seq <- t.seq + 1;
  Equeue.push t.events ~time:(now t +. delay) ~key
    (Obj.magic (fn : a -> unit) : Obj.t -> unit)
    (Obj.repr arg)

let spawn t ?prio f = schedule t ?prio ~delay:0.0 f

let tick t = t.processed <- t.processed + 1

(* [raw_suspend register] parks the fiber and hands [register] the raw
   continuation.  Whoever holds it must arrange for it to run (directly or
   as an event body), exactly once, at the current or a later virtual
   time.  The public [suspend] below enforces this by routing through the
   event queue. *)
let raw_suspend register = Effect.perform (Suspend register)

let suspend t ?(prio = 100) register =
  raw_suspend (fun resume ->
      register (fun () -> enqueue t ~prio ~delay:0.0 ~fiber:false resume))

let sleep t delay =
  raw_suspend (fun resume -> enqueue t ~prio:100 ~delay ~fiber:false resume)

let set_probe t p = t.probe <- (match p with None -> ignore | Some f -> f)

let[@inline] [@hot] exec_popped t =
  let q = t.events in
  Array.unsafe_set t.clock 0 (Equeue.popped_time q);
  t.processed <- t.processed + 1;
  Equeue.run_popped q;
  t.probe ()

let run t =
  let q = t.events in
  while Equeue.pop q do
    exec_popped t
  done

let run_until t limit =
  let q = t.events in
  while Equeue.min_time q <= limit && Equeue.pop q do
    exec_popped t
  done;
  if now t < limit then t.clock.(0) <- limit

(* Waiter batching: waking W parked fibers used to enqueue W separate
   events — one heap push and one event-loop turn per waiter.  A broadcast
   or fill now enqueues a single run-queue drain that resumes every waiter
   in FIFO order at the same (time, prio) instant.  Trajectories are
   unchanged: the old per-waiter events held consecutive sequence numbers,
   so nothing could interleave between them, and anything a resumed fiber
   schedules lands after the drain either way.  [tick] keeps
   [events_processed] comparable across engines (one logical event per
   waiter). *)
let drain_waiters ((sim, ws) : t * (unit -> unit) list) =
  match ws with
  | [] -> ()
  | w :: rest ->
      w ();
      List.iter
        (fun r ->
          tick sim;
          r ())
        rest

let wake_all sim ws =
  match ws with
  | [] -> ()
  | [ w ] -> enqueue sim ~prio:100 ~delay:0.0 ~fiber:false w
  | ws -> schedule_apply sim ~prio:100 ~delay:0.0 drain_waiters (sim, List.rev ws)

module Cond = struct

  type t = { mutable waiters : (unit -> unit) list }

  let create () = { waiters = [] }

  let wait _sim c = raw_suspend (fun resume -> c.waiters <- resume :: c.waiters)

  let broadcast sim c =
    let ws = c.waiters in
    c.waiters <- [];
    wake_all sim ws

  let await sim c pred =
    let rec loop () =
      if not (pred ()) then begin
        wait sim c;
        loop ()
      end
    in
    loop ()

  let await_timeout sim c ~timeout pred =
    let deadline = now sim +. timeout in
    let rec loop () =
      if pred () then true
      else if now sim >= deadline then false
      else begin
        (* Park on the condition but also arm a timer; whichever fires
           first wins through the [fired] flag.  When the timer wins, the
           dead waiter is compacted out of [c.waiters] immediately — a
           long-lived condition whose waiters keep timing out (lock waits,
           vote timeouts) must not accumulate cancelled closures until the
           next broadcast. *)
        let fired = ref false in
        raw_suspend (fun resume ->
            let wake () =
              if not !fired then begin
                fired := true;
                resume ()
              end
            in
            c.waiters <- wake :: c.waiters;
            enqueue sim ~prio:100 ~delay:(deadline -. now sim) ~fiber:false
              (fun () ->
                if not !fired then begin
                  fired := true;
                  c.waiters <- List.filter (fun w -> w != wake) c.waiters;
                  resume ()
                end));
        loop ()
      end
    in
    loop ()
end

module Ivar = struct

  type 'a t = { mutable value : 'a option; mutable waiters : (unit -> unit) list }

  let create () = { value = None; waiters = [] }

  let is_filled iv = Option.is_some iv.value

  let peek iv = iv.value

  let fill sim iv v =
    match iv.value with
    | Some _ -> invalid_arg "Sim.Ivar.fill: already filled"
    | None ->
        iv.value <- Some v;
        let ws = iv.waiters in
        iv.waiters <- [];
        wake_all sim ws

  let read sim iv =
    ignore sim;
    match iv.value with
    | Some v -> v
    | None ->
        raw_suspend (fun resume -> iv.waiters <- resume :: iv.waiters);
        (match iv.value with
        | Some v -> v
        | None -> assert false)

  let read_timeout sim iv ~timeout =
    match iv.value with
    | Some _ -> iv.value
    | None ->
        let fired = ref false in
        raw_suspend (fun resume ->
            let wake () =
              if not !fired then begin
                fired := true;
                resume ()
              end
            in
            iv.waiters <- wake :: iv.waiters;
            enqueue sim ~prio:100 ~delay:timeout ~fiber:false (fun () ->
                if not !fired then begin
                  fired := true;
                  (* compact the dead waiter, as in [Cond.await_timeout] *)
                  iv.waiters <- List.filter (fun w -> w != wake) iv.waiters;
                  resume ()
                end));
        iv.value
end
