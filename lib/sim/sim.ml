(* Flat event representation: a [fiber] flag instead of a variant saves one
   block per event, and most events (message deliveries, resumptions) are
   plain callbacks that need no effect-handler context at all. *)
type event = { time : float; prio : int; seq : int; fiber : bool; run : unit -> unit }

(* Immutable sentinel (every [event] field is immutable; it only shares the
   [seq] field name with the mutable [t] below), so sharing it across
   domains is safe. *)
let dummy_event =
  { time = neg_infinity; prio = 0; seq = -1; fiber = false; run = ignore }
[@@domain_safe]

(* Specialized binary min-heap over events.  Compared to the generic [Heap],
   the comparator is a direct inlined test instead of a closure call (the
   event queue sees two heap operations per simulator event, each a
   logarithmic number of comparisons), [pop_min] allocates no option, sifts
   move elements into a hole instead of swapping, and popped slots are
   overwritten with [dummy_event] so spent closures are not kept alive into
   the major heap.  Order is the total order (time, prio, seq) — seq is
   unique, so pop order is fully determined regardless of heap internals. *)
module Eq = struct
  type t = { mutable data : event array; mutable size : int }

  let create () = { data = Array.make 256 dummy_event; size = 0 }

  let[@inline] less a b =
    a.time < b.time
    || (a.time = b.time && (a.prio < b.prio || (a.prio = b.prio && a.seq < b.seq)))

  let push q ev =
    let cap = Array.length q.data in
    if q.size = cap then begin
      let ndata = Array.make (cap * 2) dummy_event in
      Array.blit q.data 0 ndata 0 q.size;
      q.data <- ndata
    end;
    let data = q.data in
    let i = ref q.size in
    q.size <- q.size + 1;
    let moving = ref true in
    while !moving && !i > 0 do
      let p = (!i - 1) / 2 in
      let pe = Array.unsafe_get data p in
      if less ev pe then begin
        Array.unsafe_set data !i pe;
        i := p
      end
      else moving := false
    done;
    Array.unsafe_set data !i ev

  (* precondition: size > 0 *)
  let pop_min q =
    let data = q.data in
    let top = Array.unsafe_get data 0 in
    let n = q.size - 1 in
    q.size <- n;
    let last = Array.unsafe_get data n in
    Array.unsafe_set data n dummy_event;
    if n > 0 then begin
      let i = ref 0 in
      let moving = ref true in
      while !moving do
        let l = (2 * !i) + 1 in
        if l >= n then moving := false
        else begin
          let r = l + 1 in
          let c =
            if r < n && less (Array.unsafe_get data r) (Array.unsafe_get data l) then r
            else l
          in
          let ce = Array.unsafe_get data c in
          if less ce last then begin
            Array.unsafe_set data !i ce;
            i := c
          end
          else moving := false
        end
      done;
      Array.unsafe_set data !i last
    end;
    top
end

type t = {
  mutable now : float;
  mutable seq : int;
  mutable processed : int;
  events : Eq.t;
  (* Observation tap: called after every executed event.  The probe must be
     passive — no scheduling, no PRNG draws — so installing one cannot
     change a trajectory; the observability layer uses it to sample gauges
     "on DES ticks" without the simulator depending on it. *)
  mutable probe : (unit -> unit) option;
}

(* The simulator is allocation-heavy (~75 words/event across the KV
   benchmarks); the default 256k-word minor heap forces a minor collection
   every few thousand events and promotes long queues of in-flight events.
   Growing it once to 8M words is worth ~15% wall clock on the figure
   benchmarks.  Only ever grow — respect a larger value from OCAMLRUNPARAM.
   The guard is an Atomic so concurrent [create] calls from pool domains
   (Sss_par) race benignly: exactly one domain performs the [Gc.set].
   Harnesses that fan out should call [tune_gc] once before spawning so the
   resize happens while the runtime is single-domain. *)
let gc_tuned = Atomic.make false

let tune_gc () =
  if (not (Atomic.get gc_tuned)) && Atomic.compare_and_set gc_tuned false true then begin
    let g = Gc.get () in
    let want = 8 * 1024 * 1024 in
    if g.Gc.minor_heap_size < want then Gc.set { g with Gc.minor_heap_size = want }
  end

let create () =
  tune_gc ();
  { now = 0.0; seq = 0; processed = 0; events = Eq.create (); probe = None }

let now t = t.now

let events_processed t = t.processed

let enqueue t ~prio ~delay ~fiber run =
  assert (delay >= 0.0);
  let ev = { time = t.now +. delay; prio; seq = t.seq; fiber; run } in
  t.seq <- t.seq + 1;
  Eq.push t.events ev

let schedule t ?(prio = 100) ~delay f = enqueue t ~prio ~delay ~fiber:true f

let schedule_callback t ?(prio = 100) ~delay f = enqueue t ~prio ~delay ~fiber:false f

let spawn t ?prio f = schedule t ?prio ~delay:0.0 f

let tick t = t.processed <- t.processed + 1

type _ Effect.t += Suspend : ((unit -> unit) -> unit) -> unit Effect.t

(* Hoisted to a constant: none of the three closures captures anything, and
   allocating the handler record per [run_fiber] call would cost several
   words on every message delivery. *)
let fiber_handler : (unit, unit) Effect.Deep.handler =
  {
    retc = (fun () -> ());
    exnc = raise;
    effc =
      (fun (type a) (eff : a Effect.t) ->
        match eff with
        | Suspend register ->
            Some
              (fun (k : (a, unit) Effect.Deep.continuation) ->
                register (fun () -> Effect.Deep.continue k ()))
        | _ -> None);
  }

let run_fiber f = Effect.Deep.match_with f () fiber_handler

(* [raw_suspend register] parks the fiber and hands [register] the raw
   continuation.  Whoever holds it must arrange for it to run as an event
   body, exactly once.  The public [suspend] below enforces this by routing
   through the event queue. *)
let raw_suspend register = Effect.perform (Suspend register)

let suspend t ?(prio = 100) register =
  raw_suspend (fun resume ->
      register (fun () -> enqueue t ~prio ~delay:0.0 ~fiber:false resume))

let sleep t delay =
  raw_suspend (fun resume -> enqueue t ~prio:100 ~delay ~fiber:false resume)

let set_probe t p = t.probe <- p

let exec t ev =
  t.now <- ev.time;
  t.processed <- t.processed + 1;
  if ev.fiber then run_fiber ev.run else ev.run ();
  match t.probe with None -> () | Some f -> f ()

let run t =
  let q = t.events in
  while q.Eq.size > 0 do
    exec t (Eq.pop_min q)
  done

let run_until t limit =
  let q = t.events in
  let continue_ = ref true in
  while !continue_ && q.Eq.size > 0 do
    if (Array.unsafe_get q.Eq.data 0).time > limit then continue_ := false
    else exec t (Eq.pop_min q)
  done;
  if t.now < limit then t.now <- limit

module Cond = struct

  type t = { mutable waiters : (unit -> unit) list }

  let create () = { waiters = [] }

  let wait _sim c = raw_suspend (fun resume -> c.waiters <- resume :: c.waiters)

  let broadcast sim c =
    let ws = List.rev c.waiters in
    c.waiters <- [];
    List.iter (fun resume -> enqueue sim ~prio:100 ~delay:0.0 ~fiber:false resume) ws

  let await sim c pred =
    let rec loop () =
      if not (pred ()) then begin
        wait sim c;
        loop ()
      end
    in
    loop ()

  let await_timeout sim c ~timeout pred =
    let deadline = now sim +. timeout in
    let rec loop () =
      if pred () then true
      else if now sim >= deadline then false
      else begin
        (* Park on the condition but also arm a timer; whichever fires first
           wins, the other becomes a no-op through the [fired] flag. *)
        let fired = ref false in
        raw_suspend (fun resume ->
            let once () =
              if not !fired then begin
                fired := true;
                resume ()
              end
            in
            c.waiters <- once :: c.waiters;
            enqueue sim ~prio:100 ~delay:(deadline -. now sim) ~fiber:false once);
        loop ()
      end
    in
    loop ()
end

module Ivar = struct

  type 'a t = { mutable value : 'a option; mutable waiters : (unit -> unit) list }

  let create () = { value = None; waiters = [] }

  let is_filled iv = Option.is_some iv.value

  let peek iv = iv.value

  let fill sim iv v =
    match iv.value with
    | Some _ -> invalid_arg "Sim.Ivar.fill: already filled"
    | None ->
        iv.value <- Some v;
        let ws = List.rev iv.waiters in
        iv.waiters <- [];
        List.iter (fun resume -> enqueue sim ~prio:100 ~delay:0.0 ~fiber:false resume) ws

  let read sim iv =
    ignore sim;
    match iv.value with
    | Some v -> v
    | None ->
        raw_suspend (fun resume -> iv.waiters <- resume :: iv.waiters);
        (match iv.value with
        | Some v -> v
        | None -> assert false)

  let read_timeout sim iv ~timeout =
    match iv.value with
    | Some _ -> iv.value
    | None ->
        let fired = ref false in
        raw_suspend (fun resume ->
            let once () =
              if not !fired then begin
                fired := true;
                resume ()
              end
            in
            iv.waiters <- once :: iv.waiters;
            enqueue sim ~prio:100 ~delay:timeout ~fiber:false once);
        iv.value
end
