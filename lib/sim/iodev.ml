(* A simulated storage device: a serial resource on the virtual clock, the
   disk-shaped sibling of the network's link model.  Operations queue FIFO;
   each one costs a fixed per-operation latency (the fsync/flush floor) plus
   a size-proportional transfer time.  Completions are plain callbacks on
   the event queue, so the device adds no randomness and no fibers of its
   own — determinism is inherited from [Sim]. *)

type t = {
  sim : Sim.t;
  op_latency : float;  (* seconds per operation: the fsync floor *)
  bandwidth : float;  (* bytes per second of sustained transfer *)
  mutable busy_until : float;  (* completion time of the last queued op *)
  mutable ops : int;
  mutable bytes_moved : int;
}

let create sim ~op_latency ~bandwidth =
  if op_latency < 0.0 || bandwidth <= 0.0 then
    invalid_arg "Iodev.create: op_latency must be >= 0 and bandwidth > 0";
  { sim; op_latency; bandwidth; busy_until = 0.0; ops = 0; bytes_moved = 0 }

let service_time t ~bytes = t.op_latency +. (float_of_int bytes /. t.bandwidth)

let submit t ~bytes k =
  if bytes < 0 then invalid_arg "Iodev.submit: negative size";
  let now = Sim.now t.sim in
  let start = if t.busy_until > now then t.busy_until else now in
  let finish = start +. service_time t ~bytes in
  t.busy_until <- finish;
  t.ops <- t.ops + 1;
  t.bytes_moved <- t.bytes_moved + bytes;
  Sim.schedule_callback t.sim ~delay:(finish -. now) k

let ops t = t.ops

let bytes_moved t = t.bytes_moved
