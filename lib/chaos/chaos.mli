(** Deterministic fault injection: declarative fault plans for the simulated
    network.

    A {e fault plan} is plain data: probabilistic message-level rules
    (drop / duplicate / extra delay, scoped by link, message kind, and
    virtual-time window) plus scheduled events (network partitions that
    heal, node crashes that restart).  {!install} compiles a plan onto a
    {!Sss_net.Network.t}: events become simulator callbacks and rules become
    the network's perturb hook.

    {b Determinism.}  All randomness comes from a private splitmix64 stream
    seeded by [plan.seed] — never from wall-clock time or [Stdlib.Random] —
    so the same plan, workload seed, and configuration produce a
    byte-identical trajectory: same event count, same message counts, same
    history.  Replays of a failing chaos run are therefore exact.

    The base crash model is {e NIC fail-stop}: a crashed node stops sending
    and receiving (in-flight messages to it are lost), but its in-memory
    state and blocked fibers survive to the restart.  Under
    [Config.durability] the protocols upgrade it to a {e fail-stop-recover}
    model through {!install}'s [on_crash]/[on_restart] hooks: the crash
    additionally discards the node's volatile state, and the restart
    replays the node's write-ahead log before the NIC reconnects
    (docs/DURABILITY.md).  See [docs/FAULTS.md] for the full model and the
    plan syntax.

    Plans only make life harder; with [Config.fault_tolerance = true] the
    protocols mask all of it (see [docs/FAULTS.md] for who retries what). *)

(** {1 Plans} *)

type target = {
  src : int option;  (** match messages sent by this node ([None] = any) *)
  dst : int option;  (** match messages addressed to this node ([None] = any) *)
  kinds : string list;
      (** match these message kinds (names from the protocol's
          [message_kind] / {!Sss_kv.Message.kind_name}); [[]] = any kind *)
}

(** One probabilistic message rule.  Every message matching [target] inside
    the window [\[from_, until)] is independently dropped with probability
    [drop], duplicated with probability [dup] (one extra copy), and delayed
    by a uniform extra latency in [\[0, 2*delay)] seconds (so [delay] is the
    mean).  Rules compose: each matching rule is consulted in list order. *)
type rule = {
  target : target;
  drop : float;  (** drop probability in [\[0, 1\]] *)
  dup : float;  (** duplication probability in [\[0, 1\]] *)
  delay : float;  (** mean extra latency in seconds; [0.] = none *)
  from_ : float;  (** window start, virtual seconds *)
  until : float;  (** window end; [infinity] = forever *)
}

(** A scheduled, non-probabilistic event at an absolute virtual time. *)
type event =
  | Partition of { at : float; heal_at : float; groups : int list list }
      (** At [at], sever every link between nodes in different [groups];
          at [heal_at], restore them.  Nodes absent from every group keep
          all their links. *)
  | Crash of { at : float; restart_at : float option; node : int }
      (** NIC fail-stop [node] at [at]; recover at [restart_at]
          ([None] = never). *)

type plan = { seed : int; rules : rule list; events : event list }

val empty : plan
(** No rules, no events, seed 0 — installing it perturbs nothing. *)

val validate : nodes:int -> plan -> (unit, string) result
(** Check a plan against a cluster size: probabilities in [\[0, 1\]], node
    ids in range, [heal_at > at], [restart_at > at], disjoint partition
    groups, [from_ <= until].  {!install} does not call this — harnesses
    should. *)

(** {1 The plan DSL}

    Plans have a compact textual form (the [--chaos] argument of
    [bin/stress.ml]): clauses separated by [;], each clause one of

    - [seed=7]
    - [drop(p=0.05,kind=prepare+vote,src=1,dst=2,from=0.01,until=0.02)]
    - [dup(p=0.02,...)] / [delay(mean=0.0005,...)] — same scoping keys
    - [rule(drop=0.05,dup=0.02,delay=0.0005,...)] — the general form
    - [partition(at=0.010,heal=0.013,groups=0.1|2.3)] — groups are
      [|]-separated, node ids [.]-separated
    - [crash(at=0.018,restart=0.021,node=2)] — [restart] optional

    Scoping keys ([kind], [src], [dst], [from], [until]) are optional and
    default to "match everything, forever". *)

val parse : string -> (plan, string) result
(** Parse the DSL.  [Error] carries a human-readable message naming the
    offending clause. *)

val to_string : plan -> string
(** Canonical textual form; [parse (to_string p) = Ok p] for every plan
    (floats are printed with enough digits to round-trip). *)

(** {1 Installing} *)

type handle
(** A plan attached to one network; carries injection counters. *)

val install :
  Sss_sim.Sim.t ->
  'msg Sss_net.Network.t ->
  kind_of:('msg -> string) ->
  ?on_crash:(int -> unit) ->
  ?on_restart:(int -> unit) ->
  plan ->
  handle
(** Compile [plan] onto the network: schedule its events on the simulator
    (relative to the current virtual time, which should be 0) and register
    its rules as the network's perturb hook.  [kind_of] names a message's
    kind for rule matching (e.g. {!Sss_kv.Message.kind_name}).  The hook's
    PRNG is private to this handle, so installing a plan never changes the
    network's own latency/drop stream.

    [on_crash node] runs (as a bare callback) right after the NIC is
    crashed — a durable protocol uses it to discard the node's volatile
    state ([Kv.crash_node] and friends).  When [on_restart] is given, it
    {e replaces} the automatic [Network.recover] at restart time: the
    protocol is expected to replay its log and reconnect the NIC itself
    once recovery completes.  Omit both for the legacy liveness-blip
    crash. *)

type stats = {
  injected_drops : int;  (** messages dropped by a rule *)
  injected_dups : int;  (** extra copies scheduled by a rule *)
  injected_delays : int;  (** messages given extra latency by a rule *)
  partitions : int;  (** partition events fired *)
  heals : int;  (** heal events fired *)
  crashes : int;  (** crash events fired *)
  restarts : int;  (** restart events fired *)
}

val stats : handle -> stats
(** Counters so far (monotone during a run). *)
