open Sss_sim
open Sss_net

type target = { src : int option; dst : int option; kinds : string list }

type rule = {
  target : target;
  drop : float;
  dup : float;
  delay : float;
  from_ : float;
  until : float;
}

type event =
  | Partition of { at : float; heal_at : float; groups : int list list }
  | Crash of { at : float; restart_at : float option; node : int }

type plan = { seed : int; rules : rule list; events : event list }

let empty = { seed = 0; rules = []; events = [] }

let default_rule =
  {
    target = { src = None; dst = None; kinds = [] };
    drop = 0.0;
    dup = 0.0;
    delay = 0.0;
    from_ = 0.0;
    until = Float.infinity;
  }

(* ------------------------------------------------------------------ *)
(* Validation                                                          *)

let validate ~nodes plan =
  let problems = ref [] in
  let add fmt = Printf.ksprintf (fun s -> problems := s :: !problems) fmt in
  let check_node what n = if n < 0 || n >= nodes then add "%s %d out of range [0, %d)" what n nodes in
  let check_prob what p = if not (p >= 0.0 && p <= 1.0) then add "%s %g outside [0, 1]" what p in
  List.iteri
    (fun i (r : rule) ->
      check_prob (Printf.sprintf "rule %d: drop" i) r.drop;
      check_prob (Printf.sprintf "rule %d: dup" i) r.dup;
      if not (r.delay >= 0.0) then add "rule %d: delay %g negative" i r.delay;
      Option.iter (check_node (Printf.sprintf "rule %d: src" i)) r.target.src;
      Option.iter (check_node (Printf.sprintf "rule %d: dst" i)) r.target.dst;
      if not (r.from_ >= 0.0) then add "rule %d: from %g negative" i r.from_;
      if r.from_ > r.until then add "rule %d: from %g after until %g" i r.from_ r.until)
    plan.rules;
  List.iteri
    (fun i ev ->
      match ev with
      | Partition { at; heal_at; groups } ->
          if not (at >= 0.0) then add "event %d: partition at %g negative" i at;
          if not (heal_at > at) then add "event %d: heal %g not after at %g" i heal_at at;
          if List.length groups < 2 then add "event %d: partition needs >= 2 groups" i;
          let seen = ref [] in
          List.iter
            (List.iter (fun n ->
                 check_node (Printf.sprintf "event %d: partition node" i) n;
                 if List.mem n !seen then add "event %d: node %d in two groups" i n
                 else seen := n :: !seen))
            groups
      | Crash { at; restart_at; node } ->
          if not (at >= 0.0) then add "event %d: crash at %g negative" i at;
          check_node (Printf.sprintf "event %d: crash node" i) node;
          Option.iter
            (fun r -> if not (r > at) then add "event %d: restart %g not after at %g" i r at)
            restart_at)
    plan.events;
  match !problems with [] -> Ok () | ps -> Error (String.concat "; " (List.rev ps))

(* ------------------------------------------------------------------ *)
(* DSL                                                                 *)

exception Bad of string

let bad fmt = Printf.ksprintf (fun s -> raise (Bad s)) fmt

(* Shortest decimal that parses back to exactly the same float; "inf" for
   open-ended windows. *)
let float_str f =
  if f = Float.infinity then "inf"
  else
    let s = Printf.sprintf "%.12g" f in
    if float_of_string s = f then s else Printf.sprintf "%.17g" f

let parse_float ~clause k v =
  match float_of_string_opt v with
  | Some f -> f
  | None -> bad "%s: %s=%S is not a number" clause k v

let parse_int ~clause k v =
  match int_of_string_opt v with
  | Some i -> i
  | None -> bad "%s: %s=%S is not an integer" clause k v

let split_kvs ~clause s =
  String.split_on_char ',' s
  |> List.filter_map (fun part ->
         let part = String.trim part in
         if part = "" then None
         else
           match String.index_opt part '=' with
           | None -> bad "%s: expected key=value, got %S" clause part
           | Some i ->
               Some
                 ( String.trim (String.sub part 0 i),
                   String.trim (String.sub part (i + 1) (String.length part - i - 1)) ))

let build_rule ~clause kvs =
  List.fold_left
    (fun r (k, v) ->
      match (clause, k) with
      | "drop", "p" -> { r with drop = parse_float ~clause k v }
      | "dup", "p" -> { r with dup = parse_float ~clause k v }
      | "delay", "mean" -> { r with delay = parse_float ~clause k v }
      | "rule", "drop" -> { r with drop = parse_float ~clause k v }
      | "rule", "dup" -> { r with dup = parse_float ~clause k v }
      | "rule", "delay" -> { r with delay = parse_float ~clause k v }
      | _, "kind" ->
          let kinds =
            String.split_on_char '+' v |> List.map String.trim
            |> List.filter (fun s -> s <> "")
          in
          { r with target = { r.target with kinds } }
      | _, "src" -> { r with target = { r.target with src = Some (parse_int ~clause k v) } }
      | _, "dst" -> { r with target = { r.target with dst = Some (parse_int ~clause k v) } }
      | _, "from" -> { r with from_ = parse_float ~clause k v }
      | _, "until" -> { r with until = parse_float ~clause k v }
      | _ -> bad "%s: unknown key %S" clause k)
    default_rule kvs

let build_partition ~clause kvs =
  let at = ref None and heal = ref None and groups = ref None in
  List.iter
    (fun (k, v) ->
      match k with
      | "at" -> at := Some (parse_float ~clause k v)
      | "heal" -> heal := Some (parse_float ~clause k v)
      | "groups" ->
          groups :=
            Some
              (String.split_on_char '|' v
              |> List.map (fun g ->
                     String.split_on_char '.' g |> List.map String.trim
                     |> List.filter (fun s -> s <> "")
                     |> List.map (fun s -> parse_int ~clause "groups" s)))
      | _ -> bad "%s: unknown key %S" clause k)
    kvs;
  match (!at, !heal, !groups) with
  | Some at, Some heal_at, Some groups -> Partition { at; heal_at; groups }
  | _ -> bad "%s: needs at=, heal= and groups=" clause

let build_crash ~clause kvs =
  let at = ref None and restart = ref None and node = ref None in
  List.iter
    (fun (k, v) ->
      match k with
      | "at" -> at := Some (parse_float ~clause k v)
      | "restart" -> restart := Some (parse_float ~clause k v)
      | "node" -> node := Some (parse_int ~clause k v)
      | _ -> bad "%s: unknown key %S" clause k)
    kvs;
  match (!at, !node) with
  | Some at, Some node -> Crash { at; restart_at = !restart; node }
  | _ -> bad "%s: needs at= and node=" clause

let parse s =
  try
    let plan =
      List.fold_left
        (fun plan clause ->
          let clause = String.trim clause in
          if clause = "" then plan
          else
            match String.index_opt clause '(' with
            | None -> (
                match String.index_opt clause '=' with
                | Some i when String.trim (String.sub clause 0 i) = "seed" ->
                    let v = String.trim (String.sub clause (i + 1) (String.length clause - i - 1)) in
                    { plan with seed = parse_int ~clause:"seed" "seed" v }
                | _ -> bad "unrecognised clause %S" clause)
            | Some i ->
                let name = String.trim (String.sub clause 0 i) in
                if clause.[String.length clause - 1] <> ')' then
                  bad "%s: missing closing paren in %S" name clause;
                let args = String.sub clause (i + 1) (String.length clause - i - 2) in
                let kvs = split_kvs ~clause:name args in
                let plan =
                  match name with
                  | "drop" | "dup" | "delay" | "rule" ->
                      { plan with rules = plan.rules @ [ build_rule ~clause:name kvs ] }
                  | "partition" ->
                      { plan with events = plan.events @ [ build_partition ~clause:name kvs ] }
                  | "crash" ->
                      { plan with events = plan.events @ [ build_crash ~clause:name kvs ] }
                  | _ -> bad "unknown clause %S" name
                in
                plan)
        empty
        (String.split_on_char ';' s)
    in
    Ok plan
  with Bad m -> Error m

let rule_str (r : rule) =
  let parts =
    List.concat
      [
        (if r.drop <> 0.0 then [ Printf.sprintf "drop=%s" (float_str r.drop) ] else []);
        (if r.dup <> 0.0 then [ Printf.sprintf "dup=%s" (float_str r.dup) ] else []);
        (if r.delay <> 0.0 then [ Printf.sprintf "delay=%s" (float_str r.delay) ] else []);
        (if r.target.kinds <> [] then
           [ Printf.sprintf "kind=%s" (String.concat "+" r.target.kinds) ]
         else []);
        (match r.target.src with Some s -> [ Printf.sprintf "src=%d" s ] | None -> []);
        (match r.target.dst with Some d -> [ Printf.sprintf "dst=%d" d ] | None -> []);
        (if r.from_ <> 0.0 then [ Printf.sprintf "from=%s" (float_str r.from_) ] else []);
        (if r.until <> Float.infinity then [ Printf.sprintf "until=%s" (float_str r.until) ]
         else []);
      ]
  in
  "rule(" ^ String.concat "," parts ^ ")"

let event_str = function
  | Partition { at; heal_at; groups } ->
      Printf.sprintf "partition(at=%s,heal=%s,groups=%s)" (float_str at) (float_str heal_at)
        (String.concat "|"
           (List.map (fun g -> String.concat "." (List.map string_of_int g)) groups))
  | Crash { at; restart_at; node } ->
      let restart =
        match restart_at with Some r -> Printf.sprintf "restart=%s," (float_str r) | None -> ""
      in
      Printf.sprintf "crash(at=%s,%snode=%d)" (float_str at) restart node

let to_string p =
  String.concat "; "
    ((Printf.sprintf "seed=%d" p.seed :: List.map rule_str p.rules)
    @ List.map event_str p.events)

(* ------------------------------------------------------------------ *)
(* Installation                                                        *)

type handle = {
  mutable drops : int;
  mutable dups : int;
  mutable delays : int;
  mutable parts : int;
  mutable heals_n : int;
  mutable crashes_n : int;
  mutable restarts_n : int;
}

type stats = {
  injected_drops : int;
  injected_dups : int;
  injected_delays : int;
  partitions : int;
  heals : int;
  crashes : int;
  restarts : int;
}

let stats h =
  {
    injected_drops = h.drops;
    injected_dups = h.dups;
    injected_delays = h.delays;
    partitions = h.parts;
    heals = h.heals_n;
    crashes = h.crashes_n;
    restarts = h.restarts_n;
  }

let matches (r : rule) ~src ~dst ~kind ~now =
  (match r.target.src with None -> true | Some s -> s = src)
  && (match r.target.dst with None -> true | Some d -> d = dst)
  && (r.target.kinds = [] || List.mem kind r.target.kinds)
  && now >= r.from_ && now < r.until

(* Every (a, b) with a and b in different groups — the links a partition
   cuts. *)
let cross_pairs groups =
  let rec pairs = function
    | [] -> []
    | g :: rest ->
        List.concat_map (fun a -> List.concat_map (fun b -> [ (a, b) ]) (List.concat rest)) g
        @ pairs rest
  in
  pairs groups

let install sim net ~kind_of ?on_crash ?on_restart plan =
  let rng = Prng.create ~seed:plan.seed in
  let h =
    { drops = 0; dups = 0; delays = 0; parts = 0; heals_n = 0; crashes_n = 0; restarts_n = 0 }
  in
  let base = Sim.now sim in
  let delay_until t = Float.max 0.0 (t -. base) in
  List.iter
    (fun ev ->
      match ev with
      | Partition { at; heal_at; groups } ->
          let cut = cross_pairs groups in
          Sim.schedule_callback sim ~delay:(delay_until at) (fun () ->
              h.parts <- h.parts + 1;
              List.iter (fun (a, b) -> Network.sever net a b) cut);
          Sim.schedule_callback sim ~delay:(delay_until heal_at) (fun () ->
              h.heals_n <- h.heals_n + 1;
              List.iter (fun (a, b) -> Network.heal net a b) cut)
      | Crash { at; restart_at; node } ->
          Sim.schedule_callback sim ~delay:(delay_until at) (fun () ->
              h.crashes_n <- h.crashes_n + 1;
              Network.crash net node;
              match on_crash with Some f -> f node | None -> ());
          Option.iter
            (fun r ->
              Sim.schedule_callback sim ~delay:(delay_until r) (fun () ->
                  h.restarts_n <- h.restarts_n + 1;
                  (* a durable protocol replays its log first and reconnects
                     the NIC itself once recovery completes *)
                  match on_restart with
                  | Some f -> f node
                  | None -> Network.recover net node))
            restart_at)
    plan.events;
  if plan.rules <> [] then
    Network.set_perturb net
      (Some
         (fun ~src ~dst msg ->
           let now = Sim.now sim in
           let kind = kind_of msg in
           let f =
             List.fold_left
               (fun (acc : Network.fault) r ->
                 if matches r ~src ~dst ~kind ~now then begin
                   let acc =
                     if r.drop > 0.0 && Prng.float rng 1.0 < r.drop then
                       { acc with Network.drop = true }
                     else acc
                   in
                   let acc =
                     if r.dup > 0.0 && Prng.float rng 1.0 < r.dup then
                       { acc with Network.duplicates = acc.Network.duplicates + 1 }
                     else acc
                   in
                   if r.delay > 0.0 then
                     { acc with Network.extra_delay = acc.Network.extra_delay +. Prng.float rng (2.0 *. r.delay) }
                   else acc
                 end
                 else acc)
               Network.no_fault plan.rules
           in
           if f.Network.drop then h.drops <- h.drops + 1;
           if f.Network.duplicates > 0 then h.dups <- h.dups + f.Network.duplicates;
           if f.Network.extra_delay > 0.0 then h.delays <- h.delays + 1;
           f));
  h
