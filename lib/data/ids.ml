type node = int

type key = int

type txn = { node : node; local : int }

let genesis = { node = -1; local = 0 }

let compare_txn a b =
  let c = Int.compare a.node b.node in
  if c <> 0 then c else Int.compare a.local b.local

let equal_txn a b = compare_txn a b = 0

let txn_to_string t =
  if equal_txn t genesis then "T<genesis>"
  else Printf.sprintf "T<%d.%d>" t.node t.local

let pp_txn fmt t = Format.pp_print_string fmt (txn_to_string t)

(* Dense single-word encoding for flat storage (Mvstore slot arrays).
   [node + 1] so that {!genesis} packs to 0; node ids fit comfortably above
   bit 40 and node-local counters never approach 2^40 in any run the
   simulator can finish. *)
let local_bits = 40

let pack { node; local } = ((node + 1) lsl local_bits) lor local

let unpack p =
  { node = (p lsr local_bits) - 1; local = p land ((1 lsl local_bits) - 1) }

module Gen = struct
  type nonrec t = { node : node; mutable counter : int }

  let create node = { node; counter = 0 }

  let next t =
    t.counter <- t.counter + 1;
    { node = t.node; local = t.counter }
end
