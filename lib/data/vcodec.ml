type encoded = { data : string; entries : int }

let raw_size vc = 8 * Vclock.size vc

(* zig-zag maps signed deltas to unsigned so small negatives stay small *)
let zigzag n = if n >= 0 then 2 * n else (-2 * n) - 1

let unzigzag z = if z land 1 = 0 then z / 2 else -((z + 1) / 2)

let varint_size n =
  let rec go z acc = if z < 0x80 then acc else go (z lsr 7) (acc + 1) in
  go (zigzag n) 1

let write_varint buf n =
  assert (n >= 0);
  let rec go n =
    if n < 0x80 then Buffer.add_char buf (Char.chr n)
    else begin
      Buffer.add_char buf (Char.chr (0x80 lor (n land 0x7f)));
      go (n lsr 7)
    end
  in
  go n

let read_varint s pos =
  let rec go pos shift acc =
    let b = Char.code s.[pos] in
    let acc = acc lor ((b land 0x7f) lsl shift) in
    if b land 0x80 = 0 then (acc, pos + 1) else go (pos + 1) (shift + 7) acc
  in
  go pos 0 0

let encode ~base vc =
  if Vclock.size base <> Vclock.size vc then invalid_arg "Vcodec.encode: size mismatch";
  let buf = Buffer.create 16 in
  for i = 0 to Vclock.size vc - 1 do
    write_varint buf (zigzag (Vclock.get vc i - Vclock.get base i))
  done;
  { data = Buffer.contents buf; entries = Vclock.size vc }

let decode ~base e =
  if Vclock.size base <> e.entries then invalid_arg "Vcodec.decode: size mismatch";
  let arr = Array.make e.entries 0 in
  let pos = ref 0 in
  for i = 0 to e.entries - 1 do
    let z, next = read_varint e.data !pos in
    pos := next;
    arr.(i) <- Vclock.get base i + unzigzag z
  done;
  Vclock.of_array arr

let size e = String.length e.data

let bytes e = e.data
