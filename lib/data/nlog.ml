type entry = { txn : Ids.txn; vc : Vclock.t; ws : Ids.key list; at : float }

(* Entries are kept in an append-ordered dynamic array (the node-local clock
   component strictly increases with application order), together with
   per-prefix entry-wise maxima so that unconstrained visibility queries are
   a binary search + O(1) lookup instead of a scan. *)
type t = {
  node : int;
  nodes : int;
  mutable entries : entry array;
  mutable pmax : int array array;  (* pmax.(i) = entrywise max of entries 0..i *)
  mutable len : int;
  mutable most_recent : Vclock.t;
  mutable committed_max : Vclock.t;
  mutable floor_max : int array;
      (* entrywise max over entries dropped by prune_covered: those entries
         were below the cluster low-watermark, hence admissible for every
         live and future visibility query, so constrained queries seed
         their accumulator here instead of losing the pruned contributions.
         All-zero until the first covered prune, keeping legacy behaviour
         byte-identical.  Rows are write-once (replaced wholesale). *)
}

let create ~nodes ~node =
  let zero = Vclock.zero nodes in
  let genesis = { txn = Ids.genesis; vc = zero; ws = []; at = 0.0 } in
  {
    node;
    nodes;
    entries = Array.make 64 genesis;
    pmax = Array.make 64 (Array.make nodes 0);
    len = 1;
    most_recent = zero;
    committed_max = zero;
    floor_max = Array.make nodes 0;
  }

let node t = t.node

let grow t =
  if t.len = Array.length t.entries then begin
    let cap = 2 * t.len in
    let entries = Array.make cap t.entries.(0) in
    Array.blit t.entries 0 entries 0 t.len;
    t.entries <- entries;
    let pmax = Array.make cap t.pmax.(0) in
    Array.blit t.pmax 0 pmax 0 t.len;
    t.pmax <- pmax
  end

let add t ~txn ~vc ~ws ~at =
  grow t;
  t.entries.(t.len) <- { txn; vc; ws; at };
  let prev = t.pmax.(t.len - 1) in
  let m = Array.make t.nodes 0 in
  for w = 0 to t.nodes - 1 do
    let v = Vclock.get vc w in
    let p = Array.unsafe_get prev w in
    Array.unsafe_set m w (if v > p then v else p)
  done;
  t.pmax.(t.len) <- m;
  t.len <- t.len + 1;
  t.most_recent <- vc;
  (* prefix-max rows are write-once, so the committed view can share the
     row instead of copying it *)
  t.committed_max <- (Vclock.unsafe_of_array m [@owned])

let most_recent_vc t = t.most_recent

let most_recent_local t = Vclock.get t.most_recent t.node

let committed_max t = t.committed_max

(* Largest index whose entry has local component < cutoff (entries are
   strictly increasing in the local component). *)
let last_below t cutoff =
  if cutoff = max_int then t.len - 1
  else begin
    let rec search lo hi best =
      if lo > hi then best
      else
        let mid = (lo + hi) / 2 in
        if Vclock.get t.entries.(mid).vc t.node < cutoff then search (mid + 1) hi mid
        else search lo (mid - 1) best
    in
    search 0 (t.len - 1) (-1)
  end

let visible_max t ~has_read ~bound ~cutoff =
  let n = t.nodes in
  let top = last_below t cutoff in
  let unconstrained =
    let rec go w = w >= n || ((not has_read.(w)) && go (w + 1)) in
    go 0
  in
  if top < 0 then
    (* even with every retained entry excluded by the cutoff, entries
       dropped by a covered prune stay visible: they were below the
       low-watermark, so both admissible and (via the watermark's parked
       cap) below every present or future cutoff.  The floor row is
       write-once, so it can be shared like a pmax row. *)
    (Vclock.unsafe_of_array t.floor_max [@owned])
  else if unconstrained then
    (* rows are write-once: share, don't copy (this is the common
       first-contact read) *)
    (Vclock.unsafe_of_array t.pmax.(top) [@owned])
  else begin
    (* Ceiling: on already-read nodes we are capped by the bound, elsewhere
       by the maximum over the cutoff prefix; stop once it is reached. *)
    let row = t.pmax.(top) in
    let ceiling = Array.make n 0 in
    for w = 0 to n - 1 do
      let r = Array.unsafe_get row w in
      Array.unsafe_set ceiling w
        (if has_read.(w) then Stdlib.min (Vclock.get bound w) r else r)
    done;
    (* seed with the covered-prune floor (all-zero unless prune_covered
       ran), so constrained queries keep the pruned entries' contributions
       exactly as if they were still in the log *)
    let acc = Array.copy t.floor_max in
    let reached () =
      let rec go w = w >= n || (acc.(w) >= ceiling.(w) && go (w + 1)) in
      go 0
    in
    let admissible vc =
      let rec go w =
        w >= n || (((not has_read.(w)) || Vclock.get vc w <= Vclock.get bound w) && go (w + 1))
      in
      go 0
    in
    let i = ref top in
    let stop = ref false in
    while (not !stop) && !i >= 0 do
      let e = t.entries.(!i) in
      if admissible e.vc then begin
        for w = 0 to n - 1 do
          let v = Vclock.get e.vc w in
          if v > acc.(w) then acc.(w) <- v
        done;
        if reached () then stop := true
      end;
      decr i
    done;
    (Vclock.unsafe_of_array acc [@owned])
  end

let size t = t.len

(* Drop entries [0, from): shift the suffix down and rebuild prefix maxima,
   seeding with the dropped prefix's maximum so visibility bounds never
   regress because of garbage collection (the pruned transactions stay
   inside every later snapshot). *)
let drop_prefix t ~from =
  let new_len = t.len - from in
  let entries = Array.make (Array.length t.entries) t.entries.(0) in
  Array.blit t.entries from entries 0 new_len;
  t.entries <- entries;
  t.len <- new_len;
  let seed = t.pmax.(from - 1) in
  let pmax = Array.make (Array.length t.pmax) t.pmax.(0) in
  let prev = ref seed in
  for i = 0 to new_len - 1 do
    let vc = t.entries.(i).vc in
    let m = Array.init t.nodes (fun w -> Stdlib.max !prev.(w) (Vclock.get vc w)) in
    pmax.(i) <- m;
    prev := m
  done;
  t.pmax <- pmax

let prune ?watermark t ~before =
  (* Keep a contiguous suffix of entries with [at >= before], always keeping
     at least one entry as the floor. *)
  let rec first_kept i =
    if i >= t.len - 1 then t.len - 1
    else if t.entries.(i).at >= before then i
    else first_kept (i + 1)
  in
  (* keep one older entry as the floor, matching the documented contract *)
  let from = Stdlib.max 0 (first_kept 0 - 1) in
  (match watermark with
  | None -> ()
  | Some wm ->
      (* the "no active transaction still needs pruned entries" contract,
         checked: every dropped entry must sit below the caller's cluster
         low-watermark (debug builds only; compiled out under -noassert) *)
      for i = 0 to from - 1 do
        assert (Vclock.leq t.entries.(i).vc wm)
      done);
  if from > 0 then drop_prefix t ~from

let prune_covered t ~watermark =
  (* Drop the longest prefix of entries entry-wise covered by [watermark]
     (coveredness is not prefix-closed along the log, so later covered
     entries may survive — that is only a missed opportunity, never an
     error), always keeping at least one entry. *)
  let rec scan i =
    if i >= t.len - 1 then i
    else if Vclock.leq t.entries.(i).vc watermark then scan (i + 1)
    else i
  in
  let from = scan 0 in
  if from > 0 then begin
    (* fold the dropped contributions into the floor BEFORE the rebuild;
       pmax rows are cumulative (and already >= the current floor), so the
       last dropped row is exactly the new floor.  Fresh array: floor rows
       are shared with readers and must stay write-once. *)
    t.floor_max <- Array.copy t.pmax.(from - 1);
    drop_prefix t ~from
  end;
  from

let floor t = Vclock.of_array t.floor_max

let restore_floor t f = t.floor_max <- Array.init t.nodes (fun w -> Vclock.get f w)

let entries t =
  let rec go i acc = if i < 0 then acc else go (i - 1) (t.entries.(i) :: acc) in
  List.rev (go (t.len - 1) [])
