(** Vector-clock wire codec (§III-A: "To alleviate these costs we adopt
    metadata compression").

    Two encodings are provided:
    - {!raw_size}: fixed 8 bytes per entry (what a naive implementation
      ships);
    - {!encode}/{!decode}: LEB128 varints of the entry *deltas* against a
      base clock both ends already share (the receiving node's last-known
      clock for the sender).  Commit clocks evolve by small increments, so
      deltas are tiny and the varints collapse most entries to one byte.

    The simulator never needs real serialization — the codec exists to
    account for message sizes faithfully (the network layer charges the
    encoded size) and is fully tested for round-tripping. *)

type encoded

val raw_size : Vclock.t -> int
(** Bytes of the uncompressed representation (8 per entry). *)

val encode : base:Vclock.t -> Vclock.t -> encoded
(** Delta-encode against [base].  Entries may grow or shrink relative to
    the base (zig-zag encoding); sizes must match. *)

val decode : base:Vclock.t -> encoded -> Vclock.t
(** Inverse of {!encode} with the same [base]. *)

val size : encoded -> int
(** Encoded size in bytes. *)

val bytes : encoded -> string
(** The actual wire bytes (for tests). *)

val varint_size : int -> int
(** Bytes one entry delta occupies under the zig-zag LEB128 encoding.
    Shared with {!Mvstore}'s checkpoint-image size model, which prices
    at-rest delta clocks with the same codec the wire uses. *)
