type entry = { txn : Ids.txn; sid : int; propagated : bool }

(* Both sequences are sorted by (sid, txn).  Queues stay short in practice
   (they only contain in-flight transactions touching this key), so sorted
   lists beat fancier structures here. *)
type t = { mutable reads : entry list; mutable writes : entry list }

let create () = { reads = []; writes = [] }

let compare_entry a b =
  let c = Int.compare a.sid b.sid in
  if c <> 0 then c
  else
    let c = Ids.compare_txn a.txn b.txn in
    if c <> 0 then c else Bool.compare a.propagated b.propagated

let insert_sorted e l =
  let rec go = function
    | [] -> [ e ]
    | x :: rest as all ->
        let c = compare_entry e x in
        if c = 0 then all  (* idempotent *)
        else if c < 0 then e :: all
        else x :: go rest
  in
  go l

let insert_read t ~txn ~sid =
  t.reads <- insert_sorted { txn; sid; propagated = false } t.reads

let insert_propagated t ~txn ~sid =
  t.reads <- insert_sorted { txn; sid; propagated = true } t.reads

let insert_write t ~txn ~sid =
  t.writes <- insert_sorted { txn; sid; propagated = false } t.writes

(* Single pass per list; when nothing matches, the original list is
   returned physically unchanged so a miss costs no allocation. *)
let remove t txn =
  let removed = ref false in
  let rec drop l =
    match l with
    | [] -> l
    | e :: rest ->
        if Ids.equal_txn e.txn txn then begin
          removed := true;
          drop rest
        end
        else
          let rest' = drop rest in
          if rest' == rest then l else e :: rest'
  in
  t.reads <- drop t.reads;
  t.writes <- drop t.writes;
  !removed

let mem t txn =
  let has l = List.exists (fun e -> Ids.equal_txn e.txn txn) l in
  has t.reads || has t.writes

let readers t = t.reads

let writers t = t.writes

let exists_read_below t ~sid =
  List.exists (fun e -> (not e.propagated) && e.sid < sid) t.reads

let blocks_writer t ~sid =
  List.exists (fun e -> e.propagated || e.sid < sid) t.reads

let min_read_sid t = match t.reads with [] -> None | e :: _ -> Some e.sid

let is_empty t = t.reads = [] && t.writes = []

let length t = List.length t.reads + List.length t.writes

let pp fmt t =
  let pp_entry kind fmt e =
    Format.fprintf fmt "<%a,%d,%s%s>" Ids.pp_txn e.txn e.sid kind
      (if e.propagated then "*" else "")
  in
  Format.fprintf fmt "{R:%a W:%a}"
    (Format.pp_print_list (pp_entry "R"))
    t.reads
    (Format.pp_print_list (pp_entry "W"))
    t.writes
