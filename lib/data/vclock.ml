(* Clocks are plain int arrays.  Every function below is a monomorphic
   loop: the polymorphic structural operations ([Stdlib.compare], [=]) cost
   an order of magnitude more on the read/commit hot paths, and the
   per-operation copies of the original immutable-only interface dominated
   the simulator's allocation profile. *)

type t = int array

let zero n = Array.make n 0

let of_array a = Array.copy a

let unsafe_of_array a = a

let to_array t = Array.copy t

let copy t = Array.copy t

let size t = Array.length t

let get t i = t.(i)

let set t i v =
  let c = Array.copy t in
  c.(i) <- v;
  c

let[@hot] set_into t i v = t.(i) <- v

let bump t i = set t i (t.(i) + 1)

(* Entry-wise maximum without an allocation when one side already
   dominates: the result is then that side itself.  Sound because clocks
   are immutable once published (the *_into operations below are reserved
   for clocks the caller exclusively owns and has not shared). *)
let max a b =
  assert (Array.length a = Array.length b);
  let n = Array.length a in
  (* a_dom: every entry of [a] >= the matching entry of [b]; dually b_dom *)
  let a_dom = ref true and b_dom = ref true in
  for i = 0 to n - 1 do
    let ai = Array.unsafe_get a i and bi = Array.unsafe_get b i in
    if ai < bi then a_dom := false;
    if bi < ai then b_dom := false
  done;
  if !a_dom then a
  else if !b_dom then b
  else begin
    let c = Array.make n 0 in
    for i = 0 to n - 1 do
      let ai = Array.unsafe_get a i and bi = Array.unsafe_get b i in
      Array.unsafe_set c i (if ai < bi then bi else ai)
    done;
    c
  end

(* The [t] annotations below are load-bearing: without them the .ml body
   infers ['a array] (the .mli only constrains the boundary, not the
   generated code) and every comparison compiles to the generic
   [caml_compare] path. *)
let[@hot] max_into (dst : t) (src : t) =
  assert (Array.length dst = Array.length src);
  for i = 0 to Array.length dst - 1 do
    let s = Array.unsafe_get src i in
    if s > Array.unsafe_get dst i then Array.unsafe_set dst i s
  done

let[@hot] blit ~src ~dst = Array.blit src 0 dst 0 (Array.length src)

let blit_into ~src ~dst ~pos = Array.blit src 0 dst pos (Array.length src)

let is_zero (t : t) =
  let n = Array.length t in
  let rec loop i = i >= n || (Array.unsafe_get t i = 0 && loop (i + 1)) in
  loop 0

let leq (a : t) (b : t) =
  assert (Array.length a = Array.length b);
  let n = Array.length a in
  let rec loop i =
    i >= n || (Array.unsafe_get a i <= Array.unsafe_get b i && loop (i + 1))
  in
  loop 0

let equal (a : t) (b : t) =
  Array.length a = Array.length b
  &&
  let n = Array.length a in
  let rec loop i =
    i >= n || (Array.unsafe_get a i = Array.unsafe_get b i && loop (i + 1))
  in
  loop 0

let lt a b = leq a b && not (equal a b)

(* Same total order as the polymorphic compare on int arrays: shorter
   first, then lexicographic. *)
let compare a b =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then Int.compare la lb
  else
    let rec loop i =
      if i >= la then 0
      else
        let c = Int.compare (Array.unsafe_get a i) (Array.unsafe_get b i) in
        if c <> 0 then c else loop (i + 1)
    in
    loop 0

let concurrent a b = (not (leq a b)) && not (leq b a)

let to_string t =
  "["
  ^ String.concat "," (Array.to_list (Array.map string_of_int t))
  ^ "]"

let pp fmt t = Format.pp_print_string fmt (to_string t)
