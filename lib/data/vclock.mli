(** Vector clocks.

    SSS associates a vector clock of size [n] (number of nodes) with every
    transaction, node, and committed version.  The default operations are
    non-destructive and clocks are immutable once shared: a clock that has
    been stored in a message, a log entry, or any published field must never
    be mutated.

    For the steady-state hot paths there are explicit in-place variants
    ([max_into], [set_into], [blit]) restricted to clocks the caller
    exclusively owns (allocated itself and not yet shared), and
    [unsafe_of_array] to adopt an owned buffer without a copy.  [max] may
    return one of its arguments (no copy) when it already dominates the
    other — safe under the same immutability contract. *)

type t

val zero : int -> t
(** [zero n] is the all-zero clock of size [n]. *)

val of_array : int array -> t
(** Copies its argument. *)

val unsafe_of_array : int array -> t
(** Adopts the array without copying.  The caller must relinquish
    ownership: the array must never be written again. *)

val to_array : t -> int array
(** Returns a fresh copy. *)

val copy : t -> t

val size : t -> int

val get : t -> int -> int

val set : t -> int -> int -> t
(** [set vc i v] is a copy of [vc] whose [i]-th entry is [v]. *)

val set_into : t -> int -> int -> unit
(** In-place [set]; the clock must be exclusively owned by the caller. *)

val bump : t -> int -> t
(** [bump vc i] increments entry [i]. *)

val max : t -> t -> t
(** Entry-wise maximum.  Sizes must agree.  When one argument dominates
    the other it is returned as-is (no allocation). *)

val max_into : t -> t -> unit
(** [max_into dst src] folds [src] into [dst] in place; [dst] must be
    exclusively owned by the caller. *)

val blit : src:t -> dst:t -> unit
(** Overwrite the exclusively-owned [dst] with the entries of [src]. *)

val blit_into : src:t -> dst:int array -> pos:int -> unit
(** Copy the entries of [src] into the raw buffer [dst] starting at [pos].
    For arena-style storage that packs many clocks into one flat array
    (e.g. {!Mvstore}'s clock arena); the caller owns [dst]. *)

val is_zero : t -> bool
(** Whether every entry is 0 (the genesis clock). *)

val leq : t -> t -> bool
(** [leq a b] iff every entry of [a] is <= the matching entry of [b]. *)

val lt : t -> t -> bool
(** [lt a b] iff [leq a b] and they differ somewhere. *)

val equal : t -> t -> bool

val compare : t -> t -> int
(** Total order (length, then lexicographic) used only for deterministic
    tie-breaking; not the causal partial order. *)

val concurrent : t -> t -> bool
(** Neither [leq a b] nor [leq b a]. *)

val to_string : t -> string

val pp : Format.formatter -> t -> unit
