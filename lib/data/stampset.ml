(* A sorted dynamic array of integer stamps.  The parked-writer sets it
   indexes hold the handful of in-flight update transactions of one node,
   so the O(n) memmove on insert/remove is noise; what matters is that the
   min-stamp / first-above queries the read path issues per read are O(1)
   and O(log n) instead of a hash-table fold. *)

type t = { mutable data : int array; mutable len : int }

let create () = { data = Array.make 8 0; len = 0 }

let length t = t.len

let is_empty t = t.len = 0

(* index of the first element > x (= t.len if none) *)
let upper_bound t x =
  let lo = ref 0 and hi = ref t.len in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if Array.unsafe_get t.data mid <= x then lo := mid + 1 else hi := mid
  done;
  !lo

let add t x =
  if t.len = Array.length t.data then begin
    let data = Array.make (2 * t.len) 0 in
    Array.blit t.data 0 data 0 t.len;
    t.data <- data
  end;
  let i = upper_bound t x in
  Array.blit t.data i t.data (i + 1) (t.len - i);
  t.data.(i) <- x;
  t.len <- t.len + 1

let remove t x =
  let i = upper_bound t (x - 1) in
  (* first element >= x *)
  if i < t.len && t.data.(i) = x then begin
    Array.blit t.data (i + 1) t.data i (t.len - i - 1);
    t.len <- t.len - 1;
    true
  end
  else false

let min_elt t = if t.len = 0 then None else Some t.data.(0)

let first_above t x =
  let i = upper_bound t x in
  if i < t.len then Some t.data.(i) else None

let mem t x =
  let i = upper_bound t (x - 1) in
  i < t.len && t.data.(i) = x

let exists_leq t x = t.len > 0 && t.data.(0) <= x

let exists_below t x = t.len > 0 && t.data.(0) < x

let to_list t =
  let rec go i acc = if i < 0 then acc else go (i - 1) (t.data.(i) :: acc) in
  go (t.len - 1) []

let clear t = t.len <- 0
