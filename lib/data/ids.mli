(** Identifiers shared across the store: nodes, keys, transactions. *)

type node = int
(** Nodes are numbered [0 .. n-1]. *)

type key = int
(** Keys are numbered [0 .. total_keys-1], as in the YCSB port of the
    paper's evaluation. *)

(** Globally unique transaction identifier: originating node plus a
    node-local sequence number. *)
type txn = { node : node; local : int }

val genesis : txn
(** Pseudo-transaction that wrote the initial version of every key. *)

val compare_txn : txn -> txn -> int
(** Total order: by node, then local sequence number. *)

val equal_txn : txn -> txn -> bool
(** Structural equality (avoids polymorphic compare on the hot path). *)

val txn_to_string : txn -> string
(** ["T<node>.<local>"], for logs and error messages. *)

val pp_txn : Format.formatter -> txn -> unit

val pack : txn -> int
(** Single-word encoding ([(node + 1) lsl 40 lor local]) for flat int-array
    storage; {!genesis} packs to [0].  Requires [local < 2^40] and
    [node < 2^22], both far beyond any simulated run. *)

val unpack : int -> txn
(** Inverse of {!pack} (allocates the record). *)

(** Mint node-local transaction identifiers. *)
module Gen : sig
  type t

  val create : node -> t
  (** A fresh generator for the node, starting at local id 0. *)

  val next : t -> txn
  (** The next identifier, never repeated. *)
end
