(** Per-node multi-version key repository, arena-backed.

    Each key holds a chain of versions, newest first.  A version records the
    value, the commit vector clock of the transaction that produced it, and
    that transaction's identifier (used by the consistency checker to name
    versions).  Keys are initialised with a genesis version carrying the
    all-zero clock.

    {b Representation} (behaviorally invisible; docs/ARCHITECTURE.md "The
    version store"):

    - Versions live in int-indexed {e slots} of growable parallel arrays
      (value, packed writer, clock reference, next-older link) instead of
      boxed records in per-key lists; the online GC returns slots to a
      free list that {!install} recycles, so steady-state churn allocates
      nothing.
    - Commit clocks live in a per-store {e clock arena}: the newest version
      of a chain holds a full clock cell, reference-counted so one cell is
      shared across a transaction's whole write set; every older version
      stores only the sparse delta against its newer neighbour, decoded
      newest-first into a single scratch clock on {!select} — never
      allocated per read.  Genesis (all-zero) clocks are interned.
    - Genesis versions whose value is the boot default are fully implicit
      (derived from the key on demand); keys are interned to dense int
      handles so the GC sweep cursor never hashes.

    Reads therefore return opaque {!slot} handles with O(1) accessors; the
    decoded {!version} record remains for cold paths ({!chain},
    {!restore_chain}).  A slot handle is only valid until the next mutation
    of its store ({!install}/{!truncate}/GC may recycle it). *)

type version = {
  value : string;
  vc : Vclock.t;  (** commit vector clock of the writer *)
  writer : Ids.txn;
}
(** Decoded view of one version (cold paths: {!chain}, {!restore_chain}). *)

type t

type slot
(** Opaque reference to a stored version; valid until the store mutates. *)

val create : nodes:int -> t
(** [create ~nodes] is an empty store on a cluster of [nodes] nodes (fixes
    the clock size of genesis versions). *)

val reserve : t -> int -> unit
(** [reserve t n] pre-sizes the key index for [n] keys (exact dense
    arrays, minimal hash capacity), avoiding growth-doubling slack.  The
    boot path calls it with the node's replica count before the
    {!init_key} loop; purely an allocation hint — never required. *)

val init_key : t -> Ids.key -> value:string -> unit
(** Install the genesis version for [key]. Idempotent. *)

val mem : t -> Ids.key -> bool
(** Whether [key] has been initialised (holds at least its genesis
    version). *)

val last : t -> Ids.key -> slot
(** Newest version. @raise Not_found if the key was never initialised. *)

val install : t -> Ids.key -> value:string -> vc:Vclock.t -> writer:Ids.txn -> unit
(** Prepend a new newest version.  The caller (the CommitQ drain) guarantees
    installation order follows the node-local commit order.  [vc] is
    adopted into the clock arena: physically re-passing one clock across a
    write set shares a single reference-counted cell. *)

val chain : t -> Ids.key -> version list
(** All versions, newest first (decoded fresh — cold paths only). *)

val select : t -> Ids.key -> skip:(Vclock.t -> bool) -> slot
(** Walk the chain newest-first and return the first version whose commit
    clock [skip] rejects.  The clock passed to [skip] is a scratch decode
    {e borrowed} from the store: it must not be retained, and [skip] must
    not re-enter this store.  The genesis version is never skipped if
    everything else is (its zero clock satisfies every visibility bound),
    so [select] always returns. @raise Not_found on unknown key. *)

val slot_value : t -> slot -> string
(** The stored value (implicit genesis values are derived on demand). *)

val slot_writer : t -> slot -> Ids.txn
(** The writing transaction (allocates the identifier record). *)

val slot_writer_is : t -> slot -> Ids.txn -> bool
(** [slot_writer_is t s w] = [Ids.equal_txn (slot_writer t s) w] without
    allocating (single packed-int compare). *)

val truncate : t -> Ids.key -> keep:int -> unit
(** Garbage-collect a chain down to its [keep] newest versions (but never
    dropping the last one). *)

val truncate_covered : t -> Ids.key -> watermark:Vclock.t -> int
(** Watermark-driven collection: keep the newest version whose clock is
    entry-wise [<= watermark] together with everything newer, and drop the
    rest, returning how many versions were dropped.  If no version is
    covered the chain is untouched.  Safe whenever [watermark] is dominated
    by every live (and, being monotone, every future) read-only snapshot
    bound: {!select} walks newest-first and stops at the kept covered
    version at the latest. *)

val sweep_covered : t -> watermark:Vclock.t -> budget:int -> int
(** Advance the store's round-robin sweep cursor by up to [budget] chains,
    applying {!truncate_covered} to each; returns the versions dropped.
    Chains are visited in creation order (deterministic — never Hashtbl
    order) over the dense handle index (no hashing), wrapping around once
    the pass completes, so repeated calls amortize full-store coverage.
    This is what reclaims keys written once and never again: their
    superseded version only becomes watermark-covered long after any
    apply-time hook last saw the key. *)

val chains : t -> int
(** Number of version chains (initialised keys) — O(1); sizes the sweep
    budget. *)

val restore_chain : t -> Ids.key -> version list -> unit
(** Replace [key]'s whole chain with [versions] (newest first; a no-op when
    empty).  Used by redo recovery and tests — normal operation only ever
    prepends through {!install}. *)

val keys : t -> Ids.key list
(** Every initialised key, sorted ascending. *)

val version_count : t -> int
(** Total number of stored versions, across all keys (for tests and GC
    telemetry). *)

(** {2 Checkpoint images}

    Durable checkpoints deep-copy the store.  An {!image} is an
    [Array.blit] bulk copy of the arenas — no per-version traversal, no
    re-boxing — and {!restore} rebuilds a store from it wholesale. *)

type image

val image_of : t -> image
(** Deep copy via bulk array blits.  The image is immutable and reusable
    across multiple {!restore}s (values are shared structurally — strings
    are immutable). *)

val restore : t -> image -> unit
(** Replace [t]'s entire contents with the image's.  The image must come
    from a store created with the same [nodes]. *)

val image_bytes : image -> int
(** On-disk size model of the image, in the spirit of [Message.wire_size]:
    key index + live slots verbatim, full clocks at 8 bytes/entry, delta
    clocks priced with the {!Vcodec} zig-zag varint codec (the same
    compression the wire uses, applied at rest). *)

(** {2 Resident-storage accounting}

    All counters are maintained incrementally; {!mem_words} is O(1) apart
    from sizing the key-handle table. *)

type mem = {
  versions : int;  (** live versions (incl. implicit genesis) *)
  slot_words : int;  (** capacity of the four parallel slot arrays *)
  clock_words : int;  (** full-clock + delta arena capacity *)
  clock_free_words : int;  (** of which parked on arena free lists *)
  index_words : int;  (** key interning: handle table + dense arrays *)
  value_words : int;  (** boxed value strings (headers included) *)
  free_slots : int;  (** recycled slots awaiting reuse *)
}

val mem_words : t -> mem

val mem_zero : mem
(** Fold seed for cluster-wide aggregation. *)

val mem_add : mem -> mem -> mem
(** Field-wise sum. *)

val mem_total : mem -> int
(** Total resident words: slots + clocks + index + values. *)

val words_per_version : mem -> float
(** [mem_total / versions] (0 when empty) — the headline footprint metric
    gated by bench/smoke.sh and asserted by [stress --open]. *)
