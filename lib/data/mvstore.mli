(** Per-node multi-version key repository.

    Each key holds a chain of versions, newest first.  A version records the
    value, the commit vector clock of the transaction that produced it, and
    that transaction's identifier (used by the consistency checker to name
    versions).  Keys are initialised with a genesis version carrying the
    all-zero clock. *)

type version = {
  value : string;
  vc : Vclock.t;  (** commit vector clock of the writer *)
  writer : Ids.txn;
}

type t

val create : nodes:int -> t
(** [create ~nodes] is an empty store on a cluster of [nodes] nodes (fixes
    the clock size of genesis versions). *)

val init_key : t -> Ids.key -> value:string -> unit
(** Install the genesis version for [key]. Idempotent. *)

val mem : t -> Ids.key -> bool
(** Whether [key] has been initialised (holds at least its genesis
    version). *)

val last : t -> Ids.key -> version
(** Newest version. @raise Not_found if the key was never initialised. *)

val install : t -> Ids.key -> value:string -> vc:Vclock.t -> writer:Ids.txn -> unit
(** Prepend a new newest version.  The caller (the CommitQ drain) guarantees
    installation order follows the node-local commit order. *)

val chain : t -> Ids.key -> version list
(** All versions, newest first. *)

val select : t -> Ids.key -> skip:(version -> bool) -> version
(** Walk the chain newest-first and return the first version for which
    [skip] is false.  The genesis version is never skipped if everything
    else is (its zero clock satisfies every visibility bound), so [select]
    always returns. @raise Not_found on unknown key. *)

val truncate : t -> Ids.key -> keep:int -> unit
(** Garbage-collect a chain down to its [keep] newest versions (but never
    dropping the last one). *)

val restore_chain : t -> Ids.key -> version list -> unit
(** Replace [key]'s whole chain with [versions] (newest first; a no-op when
    empty).  Used by redo recovery to reload a checkpointed store — normal
    operation only ever prepends through {!install}. *)

val keys : t -> Ids.key list
(** Every initialised key, in unspecified order (callers that iterate
    sort first). *)

val version_count : t -> int
(** Total number of stored versions, across all keys (for tests and GC
    telemetry). *)
