(** Per-node multi-version key repository.

    Each key holds a chain of versions, newest first.  A version records the
    value, the commit vector clock of the transaction that produced it, and
    that transaction's identifier (used by the consistency checker to name
    versions).  Keys are initialised with a genesis version carrying the
    all-zero clock. *)

type version = {
  value : string;
  vc : Vclock.t;  (** commit vector clock of the writer *)
  writer : Ids.txn;
}

type t

val create : nodes:int -> t
(** [create ~nodes] is an empty store on a cluster of [nodes] nodes (fixes
    the clock size of genesis versions). *)

val init_key : t -> Ids.key -> value:string -> unit
(** Install the genesis version for [key]. Idempotent. *)

val mem : t -> Ids.key -> bool
(** Whether [key] has been initialised (holds at least its genesis
    version). *)

val last : t -> Ids.key -> version
(** Newest version. @raise Not_found if the key was never initialised. *)

val install : t -> Ids.key -> value:string -> vc:Vclock.t -> writer:Ids.txn -> unit
(** Prepend a new newest version.  The caller (the CommitQ drain) guarantees
    installation order follows the node-local commit order. *)

val chain : t -> Ids.key -> version list
(** All versions, newest first. *)

val select : t -> Ids.key -> skip:(version -> bool) -> version
(** Walk the chain newest-first and return the first version for which
    [skip] is false.  The genesis version is never skipped if everything
    else is (its zero clock satisfies every visibility bound), so [select]
    always returns. @raise Not_found on unknown key. *)

val truncate : t -> Ids.key -> keep:int -> unit
(** Garbage-collect a chain down to its [keep] newest versions (but never
    dropping the last one). *)

val truncate_covered : t -> Ids.key -> watermark:Vclock.t -> int
(** Watermark-driven collection: keep the newest version whose clock is
    entry-wise [<= watermark] together with everything newer, and drop the
    rest, returning how many versions were dropped.  If no version is
    covered the chain is untouched.  Safe whenever [watermark] is dominated
    by every live (and, being monotone, every future) read-only snapshot
    bound: {!select} walks newest-first and stops at the kept covered
    version at the latest. *)

val sweep_covered : t -> watermark:Vclock.t -> budget:int -> int
(** Advance the store's round-robin sweep cursor by up to [budget] chains,
    applying {!truncate_covered} to each; returns the versions dropped.
    Chains are visited in creation order (deterministic — never Hashtbl
    order), wrapping around once the pass completes, so repeated calls
    amortize full-store coverage.  This is what reclaims keys written once
    and never again: their superseded version only becomes
    watermark-covered long after any apply-time hook last saw the key. *)

val chains : t -> int
(** Number of version chains (initialised keys) — O(1); sizes the sweep
    budget. *)

val restore_chain : t -> Ids.key -> version list -> unit
(** Replace [key]'s whole chain with [versions] (newest first; a no-op when
    empty).  Used by redo recovery to reload a checkpointed store — normal
    operation only ever prepends through {!install}. *)

val keys : t -> Ids.key list
(** Every initialised key, in unspecified order (callers that iterate
    sort first). *)

val version_count : t -> int
(** Total number of stored versions, across all keys (for tests and GC
    telemetry). *)
