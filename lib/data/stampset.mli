(** Sorted multiset of integer stamps.

    Backs the parked-writer index on each node: the set of apply stamps of
    update transactions that are applied but not yet externally committed.
    The read path queries it once or twice per read ([min_elt],
    [first_above], [exists_leq]); insertions and removals happen once per
    update transaction.  Duplicate stamps are permitted ([remove] drops one
    occurrence). *)

type t

val create : unit -> t

val length : t -> int

val is_empty : t -> bool

val add : t -> int -> unit

val remove : t -> int -> bool
(** Remove one occurrence; [false] if absent. *)

val mem : t -> int -> bool

val min_elt : t -> int option
(** O(1). *)

val first_above : t -> int -> int option
(** Smallest element strictly greater than the argument; O(log n). *)

val exists_leq : t -> int -> bool
(** Some element <= the argument; O(1). *)

val exists_below : t -> int -> bool
(** Some element < the argument; O(1). *)

val to_list : t -> int list
(** Ascending. *)

val clear : t -> unit
