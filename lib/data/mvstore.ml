type version = { value : string; vc : Vclock.t; writer : Ids.txn }

type t = { nodes : int; table : (Ids.key, version list ref) Hashtbl.t }

let create ~nodes = { nodes; table = Hashtbl.create 1024 }

let mem t k = Hashtbl.mem t.table k

let init_key t k ~value =
  if not (mem t k) then
    let genesis = { value; vc = Vclock.zero t.nodes; writer = Ids.genesis } in
    Hashtbl.replace t.table k (ref [ genesis ])

let chain_ref t k =
  match Hashtbl.find_opt t.table k with
  | Some r -> r
  | None -> raise Not_found

let last t k =
  match !(chain_ref t k) with
  | v :: _ -> v
  | [] -> assert false

let install t k ~value ~vc ~writer =
  let r = chain_ref t k in
  r := { value; vc; writer } :: !r

let chain t k = !(chain_ref t k)

let select t k ~skip =
  let rec walk = function
    | [] -> assert false
    | [ oldest ] -> oldest
    | v :: rest -> if skip v then walk rest else v
  in
  walk !(chain_ref t k)

let truncate t k ~keep =
  let keep = Stdlib.max keep 1 in
  let r = chain_ref t k in
  let rec take n = function
    | [] -> []
    | v :: rest -> if n = 0 then [] else v :: take (n - 1) rest
  in
  if List.length !r > keep then r := take keep !r

let restore_chain t k versions =
  match versions with [] -> () | _ -> Hashtbl.replace t.table k (ref versions)

(* Sorted, so callers observe an order independent of Hashtbl internals. *)
let keys t =
  List.sort Int.compare
    (Hashtbl.fold (fun k _ acc -> k :: acc) t.table [] [@order_ok])

let version_count t =
  (Hashtbl.fold (fun _ r acc -> acc + List.length !r) t.table 0 [@order_ok])
