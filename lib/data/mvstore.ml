(* Arena-backed struct-of-arrays version store.

   Layout (docs/ARCHITECTURE.md "The version store"):

   - Keys intern to dense handles [0 .. nkeys).  [key_of]/[head] are the
     handle-indexed views; an open-addressing int map ([h_keys]/[h_vals])
     takes the public Ids.key to its handle (the only hash lookup on any
     path — the GC sweep walks handles).
   - Versions are slots in four parallel arrays ([v_value], [v_writer],
     [v_clock], [v_next]).  [v_next] links newest-to-oldest and doubles as
     the free-list link of recycled slots, so GC churn is in-place reuse
     rather than cons-cell turnover.
   - [v_clock] is a tagged reference into one of two arenas: [-1] interns
     the all-zero genesis clock, [r <= -2] is the {e full} clock cell at
     [ca.(-r - 2)] ([refcount; entries...]), and [r >= 0] is the {e delta}
     cell at [da.(r)] ([npairs; idx, diff; ...]) against the slot's newer
     neighbour.  Heads always hold full cells, shared by refcount across a
     transaction's whole write set (the CommitQ drain re-passes one
     physical clock, which [alloc_full] memoizes); when [install] demotes
     the previous head it re-encodes the clock as a delta {e only if that
     is strictly smaller} ([1 + 2k < nodes + 1] words), otherwise the full
     cell stays — sparse-change neighbours compress, scattered ones never
     cost more than a full clock.  [select]/[truncate_covered] decode
     newest-first into the single [scratch] clock — no per-read allocation.
   - A genesis version whose value is the boot default ["init:<key>"] is
     fully implicit: one state byte per key, value derived on demand.
     Chains therefore cost 0 slots until first written.

   Chains only ever change by head-prepend ([install]), suffix-drop
   ([truncate]/[truncate_covered]) or whole-chain replace ([restore_chain]),
   so a delta's newer neighbour is stable for the delta's whole lifetime.

   [total] maintains the store's version count incrementally so GC telemetry
   is O(1); all [mem] counters are maintained the same way. *)

type version = { value : string; vc : Vclock.t; writer : Ids.txn }

type slot = int

(* Genesis pseudo-slots encode the key handle: handle h <-> slot [-2 - h]
   ([-1] is reserved as the nil chain link). *)
let gslot h = -2 - h

let ghandle s = -2 - s

(* g_state bytes *)
let g_derived = '\000' (* implicit genesis present, value = "init:<key>" *)

let g_custom_v = '\001' (* implicit genesis present, value in [g_custom] *)

let g_dropped = '\002' (* genesis collected *)

let no_value = ""

(* vacant-probe sentinel of the key->handle map ([Ids.key] is never
   [min_int] — keys are small non-negative ints) *)
let hmap_empty = min_int

type t = {
  nodes : int;
  zero : Vclock.t;  (* shared by every decoded genesis version *)
  (* key interning *)
  (* key -> handle map: open addressing with linear probing over two int
     arrays — ~2.7 words/binding at the 3/4 load cap, where Hashtbl's boxed
     buckets cost ~5; at 1M+ keys the interning table is itself a top-three
     heap consumer.  [h_keys] holds [hmap_empty] in vacant probes (bindings
     are never removed: a collected chain keeps its handle).  Capacity is
     always a power of two. *)
  mutable h_keys : int array;
  mutable h_vals : int array;
  mutable key_of : int array;  (* handle -> key *)
  mutable head : int array;  (* handle -> newest explicit slot, -1 if none *)
  mutable g_state : Bytes.t;  (* handle -> implicit-genesis state *)
  g_custom : (int, string) Hashtbl.t;  (* non-default genesis values (tests) *)
  mutable nkeys : int;
  (* version slots *)
  mutable v_value : string array;
  mutable v_writer : int array;  (* Ids.pack *)
  mutable v_clock : int array;  (* tagged: -1 zero | <= -2 [ca] cell | >= 0 [da] cell *)
  mutable v_next : int array;  (* next-older slot, -1 end; free-list link *)
  mutable slot_top : int;
  mutable free_slot : int;
  mutable free_slots : int;
  mutable total : int;
  mutable value_words : int;
  (* full-clock arena: cells of [1 + nodes] ints = [refcount; entries...];
     a free cell stores the free-list link in its refcount word *)
  mutable ca : int array;
  mutable ca_top : int;
  mutable ca_free : int;
  mutable ca_free_cells : int;
  (* write-set sharing memo: the cell holding the last physically installed
     clock (invalidated when that cell's refcount reaches zero) *)
  mutable memo_vc : Vclock.t;
  mutable memo_ref : int;
  (* delta arena: cells of [1 + 2k] ints = [k; idx, diff; ...]; per-class
     free lists (a free cell stores the link in its count word) *)
  mutable da : int array;
  mutable da_top : int;
  da_free : int array;  (* class k -> free-list head, -1 *)
  mutable da_free_words : int;
  (* GC sweep cursor: handles are visited newest-created-first, the bound
     frozen per pass — the exact order of the previous list-based store, so
     gc-on trajectories are unchanged *)
  mutable sweep_hi : int;
  mutable sweep_pos : int;
  (* scratch clock for newest-first decodes; [scratch_vc] is the Vclock
     view lent to [select]'s skip callback *)
  scratch : int array;
  scratch_vc : Vclock.t;
}

let create ~nodes =
  let scratch = Array.make nodes 0 in
  {
    nodes;
    zero = Vclock.zero nodes;
    h_keys = Array.make 256 hmap_empty;
    h_vals = Array.make 256 0;
    key_of = [||];
    head = [||];
    g_state = Bytes.empty;
    g_custom = Hashtbl.create 8;
    nkeys = 0;
    v_value = [||];
    v_writer = [||];
    v_clock = [||];
    v_next = [||];
    slot_top = 0;
    free_slot = -1;
    free_slots = 0;
    total = 0;
    value_words = 0;
    ca = [||];
    ca_top = 0;
    ca_free = -1;
    ca_free_cells = 0;
    memo_vc = Vclock.zero nodes;
    memo_ref = -1;
    da = [||];
    da_top = 0;
    da_free = Array.make (nodes + 1) (-1);
    da_free_words = 0;
    sweep_hi = 0;
    sweep_pos = 0;
    scratch;
    scratch_vc = (Vclock.unsafe_of_array scratch [@owned]);
  }

(* words a string of [len] bytes occupies on the heap (header + padded data) *)
let str_words len = 1 + ((len + 8) / 8)

let derived_value k = "init:" ^ string_of_int k

let genesis_present t h = Bytes.unsafe_get t.g_state h <> g_dropped

(* ---- key -> handle map ---- *)

(* Fibonacci-style multiplicative mix; the fold of high into low bits keeps
   strided key patterns from clustering under the power-of-two mask. *)
let hmap_hash k mask =
  let h = k * 0x2545F4914F6CDD1D in
  ((h lsr 32) lxor h) land mask

let rec hmap_probe keys vals mask k i =
  let kk = Array.unsafe_get keys i in
  if kk = k then Array.unsafe_get vals i
  else if kk = hmap_empty then -1
  else hmap_probe keys vals mask k ((i + 1) land mask)

(* handle of [k], or -1 *)
let[@hot] hmap_find t k =
  let mask = Array.length t.h_keys - 1 in
  hmap_probe t.h_keys t.h_vals mask k (hmap_hash k mask)

let rec hmap_vacant keys mask k i =
  let kk = Array.unsafe_get keys i in
  if kk = hmap_empty || kk = k then i
  else hmap_vacant keys mask k ((i + 1) land mask)

let hmap_put t k v =
  let mask = Array.length t.h_keys - 1 in
  let i = hmap_vacant t.h_keys mask k (hmap_hash k mask) in
  t.h_keys.(i) <- k;
  t.h_vals.(i) <- v

(* rehash every live handle into fresh arrays of capacity [cap] *)
let hmap_rebuild t cap =
  t.h_keys <- Array.make cap hmap_empty;
  t.h_vals <- Array.make cap 0;
  for h = 0 to t.nkeys - 1 do
    hmap_put t t.key_of.(h) h
  done

let[@hot] find_handle t k =
  let h = hmap_find t k in
  if h < 0 then raise Not_found else h

let mem t k = hmap_find t k >= 0

let chains t = t.nkeys

let version_count t = t.total

(* ---- growth ---- *)

let grow_keys t =
  let cap = Array.length t.key_of in
  let ncap = if cap = 0 then 256 else 2 * cap in
  let nk = Array.make ncap (-1) and nh = Array.make ncap (-1) in
  Array.blit t.key_of 0 nk 0 cap;
  Array.blit t.head 0 nh 0 cap;
  t.key_of <- nk;
  t.head <- nh;
  let ng = Bytes.make ncap g_dropped in
  Bytes.blit t.g_state 0 ng 0 cap;
  t.g_state <- ng

let grow_slots t =
  let cap = Array.length t.v_next in
  let ncap = if cap = 0 then 256 else 2 * cap in
  let nv = Array.make ncap no_value in
  Array.blit t.v_value 0 nv 0 cap;
  t.v_value <- nv;
  let grow a =
    let n = Array.make ncap (-1) in
    Array.blit a 0 n 0 cap;
    n
  in
  t.v_writer <- grow t.v_writer;
  t.v_clock <- grow t.v_clock;
  t.v_next <- grow t.v_next

let grow_ca t need =
  let cap = Array.length t.ca in
  let ncap = Stdlib.max (Stdlib.max (2 * cap) 256) (t.ca_top + need) in
  let n = Array.make ncap 0 in
  Array.blit t.ca 0 n 0 cap;
  t.ca <- n

let grow_da t need =
  let cap = Array.length t.da in
  let ncap = Stdlib.max (Stdlib.max (2 * cap) 256) (t.da_top + need) in
  let n = Array.make ncap 0 in
  Array.blit t.da 0 n 0 cap;
  t.da <- n

(* Pre-size the key index for [n] keys: exact dense arrays, next
   power-of-two map under the 3/4 load cap.  The boot path knows each
   node's replica count, and doubling slack on 1M-key clusters would
   otherwise dominate [mem_words]. *)
let reserve t n =
  if n > Array.length t.key_of then begin
    let nk = Array.make n (-1) and nh = Array.make n (-1) in
    Array.blit t.key_of 0 nk 0 t.nkeys;
    Array.blit t.head 0 nh 0 t.nkeys;
    t.key_of <- nk;
    t.head <- nh;
    let ng = Bytes.make n g_dropped in
    Bytes.blit t.g_state 0 ng 0 t.nkeys;
    t.g_state <- ng
  end;
  let cap = ref (Array.length t.h_keys) in
  while 4 * n > 3 * !cap do
    cap := 2 * !cap
  done;
  if !cap > Array.length t.h_keys then hmap_rebuild t !cap

let new_handle t k =
  if t.nkeys >= Array.length t.key_of then grow_keys t;
  let h = t.nkeys in
  t.nkeys <- h + 1;
  t.key_of.(h) <- k;
  t.head.(h) <- -1;
  Bytes.set t.g_state h g_dropped;
  if 4 * (h + 1) > 3 * Array.length t.h_keys then hmap_rebuild t (2 * Array.length t.h_keys);
  hmap_put t k h;
  h

(* ---- arena cells ---- *)

let take_full_cell t =
  if t.ca_free >= 0 then begin
    let c = t.ca_free in
    t.ca_free <- t.ca.(c);
    t.ca_free_cells <- t.ca_free_cells - 1;
    c
  end
  else begin
    let cell = t.nodes + 1 in
    if t.ca_top + cell > Array.length t.ca then grow_ca t cell;
    let c = t.ca_top in
    t.ca_top <- t.ca_top + cell;
    c
  end

let[@hot] alloc_full t vc =
  if t.memo_ref >= 0 && vc == t.memo_vc then begin
    let c = t.memo_ref in
    Array.unsafe_set t.ca c (Array.unsafe_get t.ca c + 1);
    c
  end
  else begin
    let c = take_full_cell t in
    t.ca.(c) <- 1;
    Vclock.blit_into ~src:vc ~dst:t.ca ~pos:(c + 1);
    t.memo_vc <- vc;
    t.memo_ref <- c;
    c
  end

let release_full t c =
  let rc = t.ca.(c) - 1 in
  if rc = 0 then begin
    if t.memo_ref = c then t.memo_ref <- -1;
    t.ca.(c) <- t.ca_free;
    t.ca_free <- c;
    t.ca_free_cells <- t.ca_free_cells + 1
  end
  else t.ca.(c) <- rc

let alloc_delta t k =
  let d = t.da_free.(k) in
  if d >= 0 then begin
    t.da_free.(k) <- t.da.(d);
    t.da_free_words <- t.da_free_words - (1 + (2 * k));
    t.da.(d) <- k;
    d
  end
  else begin
    let cell = 1 + (2 * k) in
    if t.da_top + cell > Array.length t.da then grow_da t cell;
    let d = t.da_top in
    t.da_top <- t.da_top + cell;
    t.da.(d) <- k;
    d
  end

let release_delta t d =
  let k = t.da.(d) in
  t.da.(d) <- t.da_free.(k);
  t.da_free.(k) <- d;
  t.da_free_words <- t.da_free_words + (1 + (2 * k))

(* ---- newest-first clock decode ---- *)

(* scratch := full clock of the head slot [s] (heads are never deltas) *)
let[@hot] load_head_clock t s =
  let r = Array.unsafe_get t.v_clock s in
  if r = -1 then Array.fill t.scratch 0 t.nodes 0
  else Array.blit t.ca (-1 - r) t.scratch 0 t.nodes

(* scratch holds the clock of [s]'s newer neighbour; rewrite it into the
   clock of [s]: apply the delta, or load the cell outright for interned
   zeros and full-cell slots (absolute — the incoming scratch is unused) *)
let[@hot] step_clock t s =
  let r = Array.unsafe_get t.v_clock s in
  if r >= 0 then begin
    let da = t.da and sc = t.scratch in
    let k = Array.unsafe_get da r in
    for j = 0 to k - 1 do
      let idx = Array.unsafe_get da (r + 1 + (2 * j)) in
      let diff = Array.unsafe_get da (r + 2 + (2 * j)) in
      Array.unsafe_set sc idx (Array.unsafe_get sc idx - diff)
    done
  end
  else if r = -1 then Array.fill t.scratch 0 t.nodes 0
  else Array.blit t.ca (-1 - r) t.scratch 0 t.nodes

(* ---- reads ---- *)

let[@hot] last t k =
  let h = find_handle t k in
  let s = Array.unsafe_get t.head h in
  if s >= 0 then s
  else begin
    assert (genesis_present t h);
    gslot h
  end

let slot_value t s =
  if s >= 0 then t.v_value.(s)
  else begin
    let h = ghandle s in
    if Bytes.get t.g_state h = g_custom_v then Hashtbl.find t.g_custom h
    else derived_value t.key_of.(h)
  end

let slot_writer t s = if s >= 0 then Ids.unpack t.v_writer.(s) else Ids.genesis

let[@hot] slot_writer_is t s w =
  if s >= 0 then Array.unsafe_get t.v_writer s = Ids.pack w
  else Ids.equal_txn w Ids.genesis

(* scratch holds the clock of [s]; return the first non-skipped version at
   or below [s].  Toplevel recursion keeps [select]'s spine allocation-free
   (R8): the only allocations on a select are whatever [skip] itself does. *)
let[@hot] rec select_from t h s ~skip =
  let nx = Array.unsafe_get t.v_next s in
  if nx >= 0 then
    if skip t.scratch_vc then begin
      step_clock t nx;
      select_from t h nx ~skip
    end
    else s
  else if genesis_present t h && skip t.scratch_vc then gslot h
  else s

let[@hot] select t k ~skip =
  let h = find_handle t k in
  let s = Array.unsafe_get t.head h in
  if s < 0 then begin
    assert (genesis_present t h);
    gslot h
  end
  else begin
    load_head_clock t s;
    select_from t h s ~skip
  end

let chain t k =
  let h = find_handle t k in
  let acc = ref [] in
  let s = t.head.(h) in
  if s >= 0 then begin
    load_head_clock t s;
    let cur = ref s in
    let continue = ref true in
    while !continue do
      let c = !cur in
      acc :=
        {
          value = t.v_value.(c);
          vc = Vclock.of_array t.scratch;
          writer = Ids.unpack t.v_writer.(c);
        }
        :: !acc;
      let nx = t.v_next.(c) in
      if nx >= 0 then begin
        step_clock t nx;
        cur := nx
      end
      else continue := false
    done
  end;
  if genesis_present t h then
    acc := { value = slot_value t (gslot h); vc = t.zero; writer = Ids.genesis } :: !acc;
  List.rev !acc

(* ---- writes ---- *)

let init_key t k ~value =
  if hmap_find t k < 0 then begin
    let h = new_handle t k in
    if String.equal value (derived_value k) then Bytes.set t.g_state h g_derived
    else begin
      Bytes.set t.g_state h g_custom_v;
      Hashtbl.replace t.g_custom h value;
      t.value_words <- t.value_words + str_words (String.length value)
    end;
    t.total <- t.total + 1
  end

let alloc_slot t =
  if t.free_slot >= 0 then begin
    let s = t.free_slot in
    t.free_slot <- t.v_next.(s);
    t.free_slots <- t.free_slots - 1;
    s
  end
  else begin
    if t.slot_top >= Array.length t.v_next then grow_slots t;
    let s = t.slot_top in
    t.slot_top <- s + 1;
    s
  end

(* The previous head stops being newest: re-encode its full clock as the
   sparse delta against the incoming clock [vc] (the new head) — but only
   when the delta cell ([1 + 2k] words) is strictly smaller than the full
   cell it frees, so scattered-change neighbours never inflate the arena.
   An interned zero stays interned. *)
let demote t old ~vc =
  let r = t.v_clock.(old) in
  if r <= -2 then begin
    let c = -2 - r in
    let n = t.nodes in
    let npairs = ref 0 in
    for i = 0 to n - 1 do
      if Vclock.get vc i <> t.ca.(c + 1 + i) then incr npairs
    done;
    if 1 + (2 * !npairs) < n + 1 then begin
      let d = alloc_delta t !npairs in
      let j = ref (d + 1) in
      for i = 0 to n - 1 do
        let vi = Vclock.get vc i and ci = t.ca.(c + 1 + i) in
        if vi <> ci then begin
          t.da.(!j) <- i;
          t.da.(!j + 1) <- vi - ci;
          j := !j + 2
        end
      done;
      release_full t c;
      t.v_clock.(old) <- d
    end
  end

let[@hot] install t k ~value ~vc ~writer =
  let h = find_handle t k in
  let old = Array.unsafe_get t.head h in
  if old >= 0 then demote t old ~vc;
  let s = alloc_slot t in
  Array.unsafe_set t.v_value s value;
  Array.unsafe_set t.v_writer s (Ids.pack writer);
  Array.unsafe_set t.v_clock s (-2 - alloc_full t vc);
  Array.unsafe_set t.v_next s old;
  Array.unsafe_set t.head h s;
  t.total <- t.total + 1;
  t.value_words <- t.value_words + str_words (String.length value)

(* ---- garbage collection ---- *)

(* Free the slot [s] and everything older, releasing each slot's clock
   cell whichever arena it lives in.  Returns the count. *)
let free_tail t s0 =
  let freed = ref 0 in
  let s = ref s0 in
  while !s >= 0 do
    let c = !s in
    let nx = t.v_next.(c) in
    let r = t.v_clock.(c) in
    if r >= 0 then release_delta t r else if r <= -2 then release_full t (-2 - r);
    t.value_words <- t.value_words - str_words (String.length t.v_value.(c));
    t.v_value.(c) <- no_value;
    t.v_next.(c) <- t.free_slot;
    t.free_slot <- c;
    t.free_slots <- t.free_slots + 1;
    incr freed;
    s := nx
  done;
  t.total <- t.total - !freed;
  !freed

let drop_genesis t h =
  if Bytes.get t.g_state h = g_custom_v then begin
    let v = Hashtbl.find t.g_custom h in
    t.value_words <- t.value_words - str_words (String.length v);
    Hashtbl.remove t.g_custom h
  end;
  Bytes.set t.g_state h g_dropped;
  t.total <- t.total - 1

let truncate t k ~keep =
  let keep = Stdlib.max keep 1 in
  let h = find_handle t k in
  let s = t.head.(h) in
  if s >= 0 then begin
    (* walk to the keep-th newest explicit version, if the chain reaches it *)
    let cur = ref s and n = ref 1 in
    while !n < keep && t.v_next.(!cur) >= 0 do
      cur := t.v_next.(!cur);
      incr n
    done;
    if !n = keep then begin
      let tail = t.v_next.(!cur) in
      if tail >= 0 then begin
        t.v_next.(!cur) <- -1;
        ignore (free_tail t tail)
      end;
      if genesis_present t h then drop_genesis t h
    end
    (* else: fewer than [keep] explicit versions — the genesis (if any)
       sits within the kept prefix too *)
  end

let truncate_covered_h t h ~watermark =
  let s = t.head.(h) in
  if s < 0 then 0 (* genesis-only chain: covered, nothing older *)
  else begin
    load_head_clock t s;
    let cur = ref s in
    let dropped = ref (-1) in
    while !dropped < 0 do
      let c = !cur in
      if Vclock.leq t.scratch_vc watermark then begin
        (* newest covered version: everything older is unreachable *)
        let tail = t.v_next.(c) in
        let d = if tail >= 0 then begin
            t.v_next.(c) <- -1;
            free_tail t tail
          end
          else 0
        in
        if genesis_present t h then begin
          drop_genesis t h;
          dropped := d + 1
        end
        else dropped := d
      end
      else begin
        let nx = t.v_next.(c) in
        if nx >= 0 then begin
          step_clock t nx;
          cur := nx
        end
        else
          (* no explicit version covered; the genesis (if still present) is
             the covered one and has nothing older *)
          dropped := 0
      end
    done;
    !dropped
  end

let truncate_covered t k ~watermark =
  truncate_covered_h t (find_handle t k) ~watermark

let sweep_covered t ~watermark ~budget =
  let dropped = ref 0 in
  let n = ref budget in
  while !n > 0 do
    if t.sweep_pos >= t.sweep_hi then begin
      t.sweep_hi <- t.nkeys;
      t.sweep_pos <- 0;
      if t.sweep_hi = 0 then n := 0
    end;
    if !n > 0 then begin
      let h = t.sweep_hi - 1 - t.sweep_pos in
      dropped := !dropped + truncate_covered_h t h ~watermark;
      t.sweep_pos <- t.sweep_pos + 1;
      decr n
    end
  done;
  !dropped

(* ---- whole-chain replacement (recovery, tests) ---- *)

let clear_chain t h =
  let s = t.head.(h) in
  if s >= 0 then begin
    ignore (free_tail t s);
    t.head.(h) <- -1
  end;
  if genesis_present t h then drop_genesis t h

(* encoded clock ref of [this] against its newer neighbour [newer]: a
   delta cell when strictly smaller than a full cell, else a full cell —
   the same tie-break [demote] applies *)
let alloc_clock_between t ~newer ~this =
  let n = t.nodes in
  let npairs = ref 0 in
  for i = 0 to n - 1 do
    if Vclock.get newer i <> Vclock.get this i then incr npairs
  done;
  if 1 + (2 * !npairs) >= n + 1 then -2 - alloc_full t this
  else begin
    let d = alloc_delta t !npairs in
    let j = ref (d + 1) in
    for i = 0 to n - 1 do
      let ni = Vclock.get newer i and ti = Vclock.get this i in
      if ni <> ti then begin
        t.da.(!j) <- i;
        t.da.(!j + 1) <- ni - ti;
        j := !j + 2
      end
    done;
    d
  end

let restore_chain t k versions =
  match versions with
  | [] -> ()
  | _ ->
      let h =
        match hmap_find t k with
        | h when h >= 0 ->
            clear_chain t h;
            h
        | _ -> new_handle t k
      in
      let arr = Array.of_list versions in
      let m = Array.length arr in
      let oldest = arr.(m - 1) in
      let implicit_genesis =
        Ids.equal_txn oldest.writer Ids.genesis && Vclock.is_zero oldest.vc
      in
      let e = if implicit_genesis then m - 1 else m in
      let prev = ref (-1) in
      for i = e - 1 downto 0 do
        let v = arr.(i) in
        let s = alloc_slot t in
        t.v_value.(s) <- v.value;
        t.value_words <- t.value_words + str_words (String.length v.value);
        t.v_writer.(s) <- Ids.pack v.writer;
        t.v_next.(s) <- !prev;
        t.v_clock.(s) <-
          (if Vclock.is_zero v.vc then -1
           else if i = 0 then -2 - alloc_full t v.vc
           else alloc_clock_between t ~newer:arr.(i - 1).vc ~this:v.vc);
        t.total <- t.total + 1;
        prev := s
      done;
      t.head.(h) <- !prev;
      if implicit_genesis then begin
        if String.equal oldest.value (derived_value k) then
          Bytes.set t.g_state h g_derived
        else begin
          Bytes.set t.g_state h g_custom_v;
          Hashtbl.replace t.g_custom h oldest.value;
          t.value_words <- t.value_words + str_words (String.length oldest.value)
        end;
        t.total <- t.total + 1
      end

(* Sorted, so callers observe an order independent of table internals. *)
let keys t =
  let acc = ref [] in
  for h = t.nkeys - 1 downto 0 do
    acc := t.key_of.(h) :: !acc
  done;
  List.sort Int.compare !acc

(* ---- checkpoint images ---- *)

type image = {
  i_nodes : int;
  i_nkeys : int;
  i_key_of : int array;
  i_head : int array;
  i_g_state : Bytes.t;
  i_g_custom : (int * string) list;
  i_slot_top : int;
  i_value : string array;
  i_writer : int array;
  i_clock : int array;
  i_next : int array;
  i_free_slot : int;
  i_free_slots : int;
  i_total : int;
  i_value_words : int;
  i_ca : int array;
  i_ca_free : int;
  i_ca_free_cells : int;
  i_da : int array;
  i_da_free : int array;
  i_da_free_words : int;
  i_sweep_hi : int;
  i_sweep_pos : int;
  i_bytes : int;
}

(* On-disk size model: a compact writer would emit the key index, the live
   slots verbatim, head clocks raw (8 bytes/entry) and delta clocks with
   the wire's zig-zag varint codec. *)
let disk_bytes t =
  let bytes = ref (64 + (17 * t.nkeys)) in
  for h = 0 to t.nkeys - 1 do
    let s = ref t.head.(h) in
    while !s >= 0 do
      let c = !s in
      bytes := !bytes + 12 + String.length t.v_value.(c);
      let r = t.v_clock.(c) in
      if r >= 0 then begin
        let k = t.da.(r) in
        for j = 0 to k - 1 do
          bytes := !bytes + 1 + Vcodec.varint_size t.da.(r + 2 + (2 * j))
        done
      end
      else if r <= -2 then bytes := !bytes + (8 * t.nodes);
      s := t.v_next.(c)
    done;
    if genesis_present t h && Bytes.get t.g_state h = g_custom_v then
      bytes := !bytes + String.length (Hashtbl.find t.g_custom h)
  done;
  !bytes

let image_of t =
  {
    i_nodes = t.nodes;
    i_nkeys = t.nkeys;
    i_key_of = Array.sub t.key_of 0 t.nkeys;
    i_head = Array.sub t.head 0 t.nkeys;
    i_g_state = Bytes.sub t.g_state 0 t.nkeys;
    i_g_custom =
      List.sort
        (fun (a, _) (b, _) -> Int.compare a b)
        (Hashtbl.fold (fun h v acc -> (h, v) :: acc) t.g_custom [] [@order_ok]);
    i_slot_top = t.slot_top;
    i_value = Array.sub t.v_value 0 t.slot_top;
    i_writer = Array.sub t.v_writer 0 t.slot_top;
    i_clock = Array.sub t.v_clock 0 t.slot_top;
    i_next = Array.sub t.v_next 0 t.slot_top;
    i_free_slot = t.free_slot;
    i_free_slots = t.free_slots;
    i_total = t.total;
    i_value_words = t.value_words;
    i_ca = Array.sub t.ca 0 t.ca_top;
    i_ca_free = t.ca_free;
    i_ca_free_cells = t.ca_free_cells;
    i_da = Array.sub t.da 0 t.da_top;
    i_da_free = Array.copy t.da_free;
    i_da_free_words = t.da_free_words;
    i_sweep_hi = t.sweep_hi;
    i_sweep_pos = t.sweep_pos;
    i_bytes = disk_bytes t;
  }

let image_bytes im = im.i_bytes

let restore t im =
  if im.i_nodes <> t.nodes then invalid_arg "Mvstore.restore: cluster size mismatch";
  t.nkeys <- im.i_nkeys;
  t.key_of <- Array.copy im.i_key_of;
  t.head <- Array.copy im.i_head;
  t.g_state <- Bytes.of_string (Bytes.to_string im.i_g_state);
  let cap = ref 256 in
  while 4 * t.nkeys > 3 * !cap do
    cap := 2 * !cap
  done;
  hmap_rebuild t !cap;
  Hashtbl.reset t.g_custom;
  List.iter (fun (h, v) -> Hashtbl.replace t.g_custom h v) im.i_g_custom;
  t.slot_top <- im.i_slot_top;
  t.v_value <- Array.copy im.i_value;
  t.v_writer <- Array.copy im.i_writer;
  t.v_clock <- Array.copy im.i_clock;
  t.v_next <- Array.copy im.i_next;
  t.free_slot <- im.i_free_slot;
  t.free_slots <- im.i_free_slots;
  t.total <- im.i_total;
  t.value_words <- im.i_value_words;
  t.ca <- Array.copy im.i_ca;
  t.ca_top <- Array.length im.i_ca;
  t.ca_free <- im.i_ca_free;
  t.ca_free_cells <- im.i_ca_free_cells;
  t.memo_ref <- -1;
  t.da <- Array.copy im.i_da;
  t.da_top <- Array.length im.i_da;
  Array.blit im.i_da_free 0 t.da_free 0 (Array.length t.da_free);
  t.da_free_words <- im.i_da_free_words;
  t.sweep_hi <- im.i_sweep_hi;
  t.sweep_pos <- im.i_sweep_pos

(* ---- resident-storage accounting ---- *)

type mem = {
  versions : int;
  slot_words : int;
  clock_words : int;
  clock_free_words : int;
  index_words : int;
  value_words : int;
  free_slots : int;
}

let mem_words t =
  {
    versions = t.total;
    slot_words = (4 * Array.length t.v_next) + 4;
    clock_words = Array.length t.ca + Array.length t.da + Array.length t.da_free + 3;
    clock_free_words = (t.ca_free_cells * (t.nodes + 1)) + t.da_free_words;
    index_words =
      Array.length t.key_of + Array.length t.head
      + ((Bytes.length t.g_state + 8) / 8)
      + Array.length t.h_keys + Array.length t.h_vals
      + 8;
    value_words = t.value_words;
    free_slots = t.free_slots;
  }

let mem_zero =
  {
    versions = 0;
    slot_words = 0;
    clock_words = 0;
    clock_free_words = 0;
    index_words = 0;
    value_words = 0;
    free_slots = 0;
  }

let mem_add a b =
  {
    versions = a.versions + b.versions;
    slot_words = a.slot_words + b.slot_words;
    clock_words = a.clock_words + b.clock_words;
    clock_free_words = a.clock_free_words + b.clock_free_words;
    index_words = a.index_words + b.index_words;
    value_words = a.value_words + b.value_words;
    free_slots = a.free_slots + b.free_slots;
  }

let mem_total m = m.slot_words + m.clock_words + m.index_words + m.value_words

let words_per_version m =
  if m.versions = 0 then 0.0 else float_of_int (mem_total m) /. float_of_int m.versions
