type version = { value : string; vc : Vclock.t; writer : Ids.txn }

(* [zero] is shared by every genesis version (clocks are immutable once
   shared, and at 100+ nodes x 1M keys per-key zero clocks dominate the
   heap).  [total] maintains the cluster's version count incrementally so
   GC telemetry is O(1) instead of a table scan. *)
type t = {
  nodes : int;
  zero : Vclock.t;
  table : (Ids.key, version list ref) Hashtbl.t;
  mutable total : int;
  (* GC sweep cursor: chains are revisited round-robin in creation order —
     a deterministic order, so the online GC's coverage never depends on
     Hashtbl internals.  [key_seq] holds every chain's key (reverse creation
     order); [sweep_arr]/[sweep_pos] are the in-progress pass. *)
  mutable key_seq : Ids.key list;
  mutable sweep_arr : Ids.key array;
  mutable sweep_pos : int;
}

let create ~nodes =
  { nodes; zero = Vclock.zero nodes; table = Hashtbl.create 1024; total = 0;
    key_seq = []; sweep_arr = [||]; sweep_pos = 0 }

let mem t k = Hashtbl.mem t.table k

let init_key t k ~value =
  if not (mem t k) then begin
    let genesis = { value; vc = t.zero; writer = Ids.genesis } in
    Hashtbl.replace t.table k (ref [ genesis ]);
    t.total <- t.total + 1;
    t.key_seq <- k :: t.key_seq
  end

let chain_ref t k =
  match Hashtbl.find_opt t.table k with
  | Some r -> r
  | None -> raise Not_found

let last t k =
  match !(chain_ref t k) with
  | v :: _ -> v
  | [] -> assert false

let install t k ~value ~vc ~writer =
  let r = chain_ref t k in
  r := { value; vc; writer } :: !r;
  t.total <- t.total + 1

let chain t k = !(chain_ref t k)

let select t k ~skip =
  let rec walk = function
    | [] -> assert false
    | [ oldest ] -> oldest
    | v :: rest -> if skip v then walk rest else v
  in
  walk !(chain_ref t k)

let truncate t k ~keep =
  let keep = Stdlib.max keep 1 in
  let r = chain_ref t k in
  let rec take n = function
    | [] -> []
    | v :: rest -> if n = 0 then [] else v :: take (n - 1) rest
  in
  let len = List.length !r in
  if len > keep then begin
    r := take keep !r;
    t.total <- t.total - (len - keep)
  end

let truncate_covered t k ~watermark =
  let r = chain_ref t k in
  (* The newest version with vc <= watermark is visible to (and sufficient
     for) every live and future read-only snapshot whose bound dominates the
     watermark; [select] walks newest-first and can never need anything
     older, so everything behind it is garbage.  If no version is covered,
     keep the whole chain. *)
  let rec walk newer = function
    | [] -> 0
    | v :: older ->
        if Vclock.leq v.vc watermark then begin
          let dropped = List.length older in
          if dropped > 0 then begin
            r := List.rev_append newer [ v ];
            t.total <- t.total - dropped
          end;
          dropped
        end
        else walk (v :: newer) older
  in
  walk [] !r

(* One increment of the round-robin chain sweep: visit up to [budget]
   chains from the cursor, reclaiming everything older than each chain's
   newest watermark-covered version.  Keys written once and never again are
   only ever reclaimed here — their superseded version becomes covered long
   after the writing transaction's apply hook last saw the key. *)
let sweep_covered t ~watermark ~budget =
  let dropped = ref 0 in
  let n = ref budget in
  while !n > 0 do
    if t.sweep_pos >= Array.length t.sweep_arr then begin
      t.sweep_arr <- Array.of_list t.key_seq;
      t.sweep_pos <- 0;
      if Array.length t.sweep_arr = 0 then n := 0
    end;
    if !n > 0 then begin
      dropped := !dropped + truncate_covered t t.sweep_arr.(t.sweep_pos) ~watermark;
      t.sweep_pos <- t.sweep_pos + 1;
      decr n
    end
  done;
  !dropped

let chains t = Hashtbl.length t.table

let restore_chain t k versions =
  match versions with
  | [] -> ()
  | _ ->
      let before =
        match Hashtbl.find_opt t.table k with Some r -> List.length !r | None -> 0
      in
      if before = 0 then t.key_seq <- k :: t.key_seq;
      Hashtbl.replace t.table k (ref versions);
      t.total <- t.total - before + List.length versions

(* Sorted, so callers observe an order independent of Hashtbl internals. *)
let keys t =
  List.sort Int.compare
    (Hashtbl.fold (fun k _ acc -> k :: acc) t.table [] [@order_ok])

let version_count t = t.total
