(** Per-node log of internally-committed transactions (§III-A).

    When an update transaction reaches the head of the CommitQ and applies
    its writes on node [i], its commit vector clock is appended here.  The
    log answers the two questions the read protocol asks:

    - [most_recent_vc]: the clock of the latest internally-committed
      transaction, used to initialise read-only transactions' visibility
      bounds and to admit first reads (Alg. 6 line 5);
    - [visible_max]: the entry-wise maximum over the [VisibleSet] of
      Alg. 6 lines 6–9 — the freshest snapshot compatible with what the
      reading transaction has already observed.

    The log is seeded with a genesis all-zero entry so the visible set is
    never empty. *)

type entry = { txn : Ids.txn; vc : Vclock.t; ws : Ids.key list; at : float }
(** One internal commit: the transaction, its commit clock, its write set
    (key names, for propagation bookkeeping), and the virtual time it
    applied ([at], used only by {!prune}). *)

type t

val create : nodes:int -> node:int -> t
(** [create ~nodes ~node] is the log of node [node] in a cluster of
    [nodes] nodes, seeded with the genesis all-zero entry. *)

val node : t -> int
(** The owning node's index (fixed at {!create}). *)

val add : t -> txn:Ids.txn -> vc:Vclock.t -> ws:Ids.key list -> at:float -> unit
(** Append an internal commit.  [at] is the virtual time of application,
    used only for pruning. *)

val most_recent_vc : t -> Vclock.t
(** Commit clock of the latest internally-committed transaction (the
    genesis all-zero clock while the log is empty). *)

val most_recent_local : t -> int
(** [most_recent_local t] = entry [node t] of {!most_recent_vc}. *)

val committed_max : t -> Vclock.t
(** Entry-wise maximum over every clock ever logged (survives pruning). *)

val visible_max :
  t ->
  has_read:bool array ->
  bound:Vclock.t ->
  cutoff:int ->
  Vclock.t
(** Entry-wise maximum over logged clocks [vc] such that (a) for every node
    [w] with [has_read.(w)], [vc.(w) <= bound.(w)], and (b) the entry's
    local component [vc.(node t)] is strictly below [cutoff].  The cutoff
    is the smallest insertion snapshot among the snapshot-queue writers the
    reader must serialize before: a coherent local snapshot is a prefix of
    this node's apply order, so everything at or after the first invisible
    writer is invisible too.  Pass [max_int] when nothing is excluded.
    Scans newest-first and stops early once the accumulated maximum
    provably cannot grow. *)

val size : t -> int
(** Number of retained entries (shrinks under {!prune}). *)

val prune : ?watermark:Vclock.t -> t -> before:float -> unit
(** Drop entries applied strictly before [before], always keeping at least
    one.  Callers must guarantee no active transaction still needs pruned
    entries (the experiment harness uses a horizon far larger than any
    transaction lifetime).  Passing [watermark] checks that contract in
    debug builds: an assertion fires if any dropped entry's clock is not
    entry-wise [<=] the cluster low-watermark (compiled out under
    [-noassert]). *)

val prune_covered : t -> watermark:Vclock.t -> int
(** Watermark-driven pruning: drop the longest prefix of entries whose
    clocks are entry-wise [<= watermark] (always keeping at least one
    entry) and return how many were dropped.  The dropped contributions are
    folded into an internal floor that seeds every later {!visible_max},
    so — provided [watermark] is dominated by every live read-only bound
    and below every present or future snapshot-queue cutoff — query results
    are exactly what they would have been without pruning. *)

val floor : t -> Vclock.t
(** Entry-wise maximum over every entry dropped by {!prune_covered} (the
    all-zero clock before the first covered prune).  Exposed so durability
    checkpoints can persist it. *)

val restore_floor : t -> Vclock.t -> unit
(** Reinstall a {!floor} captured by a checkpoint (redo recovery rebuilds
    the log from scratch and would otherwise lose the pruned entries'
    contributions). *)

val entries : t -> entry list
(** Newest first (tests only). *)
