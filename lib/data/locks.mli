(** Per-node lock table for the 2PC prepare phase.

    Locks are per key, shared (read validation) or exclusive (write
    installation), re-entrant per transaction, and acquired with a virtual-
    time timeout: SSS resolves distributed deadlock between concurrent
    prepares by timing out and voting abort (§III-E, 1 ms in the paper's
    testbed). *)

type mode = Shared | Exclusive

type t

val create : Sss_sim.Sim.t -> t
(** An empty lock table; the simulator drives its timeouts. *)

val acquire : t -> Ids.txn -> mode -> Ids.key -> timeout:float -> bool
(** Block the current fiber until the lock is granted or the timeout
    elapses; returns whether it was granted.  A transaction holding the
    exclusive lock is granted the shared lock on the same key, and may
    re-acquire either mode it already holds. *)

val acquire_all :
  t -> Ids.txn -> exclusive:Ids.key list -> shared:Ids.key list -> timeout:float -> bool
(** Acquire every lock (exclusive ones first, each set in sorted key order
    to reduce needless deadlocks).  On failure every lock the transaction
    holds at this node is released and [false] is returned. *)

val release_txn : t -> Ids.txn -> unit
(** Release everything the transaction holds and wake waiters. *)

val holds_exclusive : t -> Ids.txn -> Ids.key -> bool
(** Whether the transaction holds the exclusive lock on the key. *)

val holds_shared : t -> Ids.txn -> Ids.key -> bool
(** Whether the transaction holds the shared (or exclusive) lock. *)

val is_free : t -> Ids.key -> bool
(** Whether no transaction holds any lock on the key. *)

val locked_keys : t -> Ids.txn -> Ids.key list
(** Keys currently held by the transaction (tests). *)

val holder_count : t -> int
(** Number of transactions currently holding at least one lock (used by
    quiescence checks in tests). *)
