(** Replica placement.

    SSS assumes a general partial replication scheme with a local look-up
    function mapping keys to the nodes that store them (§II).  We use a
    deterministic hashed placement: a key's replica group is [degree]
    consecutive nodes starting at a pseudo-random offset derived from the
    key, which spreads load uniformly like the paper's YCSB deployment. *)

type t

val create : nodes:int -> degree:int -> total_keys:int -> t
(** @raise Invalid_argument if [degree] is not within [1 .. nodes]. *)

val nodes : t -> int
(** Cluster size this placement was built for. *)

val degree : t -> int
(** Replicas per key. *)

val total_keys : t -> int
(** Size of the key space. *)

val replicas : t -> Ids.key -> Ids.node list
(** The nodes storing the key (constant, length [degree]). *)

val is_replica : t -> Ids.node -> Ids.key -> bool
(** Whether the node stores the key. *)

val keys_at : t -> Ids.node -> Ids.key array
(** Every key the node stores (precomputed; used to initialise stores and
    to draw node-local keys for the locality workload of Fig. 7). *)
