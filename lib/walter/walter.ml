(* Walter-style Parallel Snapshot Isolation (Sovran et al., SOSP'11),
   re-implemented on the same substrate as SSS, as the paper does for its
   evaluation (§V).

   Model implemented (the parts the YCSB evaluation exercises):
   - every transaction gets a start vector timestamp: one sequence number
     per site, denoting the committed prefix applied at its home site;
   - reads return the newest version visible in the start timestamp,
     without validation; read-only transactions never abort and commit
     locally (no messages) — the property that makes Walter the throughput
     upper bound in Fig. 3;
   - update transactions conflict-check their write-set at each written
     key's preferred site (the key's primary replica): fast path when every
     primary is the home site (purely local commit), slow path via a
     2PC-like round otherwise;
   - the client is answered as soon as the home site commits; writes
     propagate to the other replicas asynchronously, in per-site sequence
     order (PSI's "long fork" is observable: snapshots on different sites
     may order non-conflicting transactions differently).

   Omitted (not exercised by the benchmark): c-sets/counting sets, cross-
   data-center disaster tolerance. *)

open Sss_sim
open Sss_data
open Sss_net
open Sss_consistency

type version = {
  value : string;
  writer : Ids.txn;
  site : Ids.node;  (* writer's home site *)
  seq : int;  (* writer's position in its site's commit order *)
  wstart : Vclock.t;  (* the writer's start snapshot: orders same-key versions *)
}

(* What a recovered participant learns about an in-doubt transaction when
   it queries the coordinator (durability mode, docs/DURABILITY.md). *)
type verdict = Vcommitted | Vaborted | Vundecided

type msg =
  | Read_req of { req : int; key : Ids.key; start : Vclock.t }
  | Read_ret of { req : int; value : string; writer : Ids.txn }
  | Wprepare of {
      txn : Ids.txn;
      coord : Ids.node;
      start : Vclock.t;
      keys : Ids.key list;  (* written keys whose primary is this node *)
    }
  | Wvote of { txn : Ids.txn; ok : bool }
  | Wdecide of { txn : Ids.txn; outcome : bool }
  | Propagate of {
      txn : Ids.txn;
      site : Ids.node;
      seq : int;
      start : Vclock.t;
      writes : (Ids.key * string) list;  (* full write set; nodes filter *)
    }
  | Query of { req : int; txn : Ids.txn }
  | Outcome of { req : int; verdict : verdict }
  | Pull of { have : Vclock.t }
      (* recovery: "re-send me your own commits past [have]" *)
  | Tracked of { token : int; inner : msg }
  | Delivered of { token : int }

let rec priority = function
  | Wdecide _ -> 40
  | Wvote _ | Query _ | Outcome _ -> 60
  | Propagate _ | Pull _ -> 80
  | Read_req _ | Read_ret _ | Wprepare _ -> 100
  | Tracked { inner; _ } -> priority inner
  | Delivered _ -> 10

let rec message_kind = function
  | Read_req _ -> "read_request"
  | Read_ret _ -> "read_return"
  | Wprepare _ -> "prepare"
  | Wvote _ -> "vote"
  | Wdecide _ -> "decide"
  | Propagate _ -> "propagate"
  | Query _ -> "query"
  | Outcome _ -> "outcome"
  | Pull _ -> "pull"
  | Tracked { inner; _ } -> message_kind inner
  | Delivered _ -> "delivered"

type vote_box = {
  expect : int;
  mutable votes : int;
  mutable any_false : bool;
  vchanged : Sim.Cond.t;
}

(* A yes-vote's local state: enough to restore locks and find the
   coordinator after a restart. *)
type wprep = { keys : Ids.key list; coord : Ids.node }

(* Durability-mode write-ahead-log records (docs/DURABILITY.md). *)
type logrec =
  | WCommit of {
      txn : Ids.txn;
      seq : int;
      start : Vclock.t;
      writes : (Ids.key * string) list;
    }  (* commit decided at this (home) site *)
  | WPrepared of { txn : Ids.txn; prep : wprep }  (* slow-path yes vote *)
  | WAborted of { txn : Ids.txn }  (* slow-path Wdecide(false) seen *)

(* Checkpoint image: deep copy, deterministic (sorted) order. *)
type snap = {
  s_chains : (Ids.key * version list) list;
  s_applied : Vclock.t;
  s_site_seq : int;
  s_origin : (int * (Ids.txn * Vclock.t * (Ids.key * string) list)) list;
  s_committed : Ids.txn list;
  s_prepared : (Ids.txn * wprep) list;
  s_aborted : Ids.txn list;
}

type node = {
  id : Ids.node;
  chains : (Ids.key, version list ref) Hashtbl.t;  (* newest first by kver *)
  mutable applied : Vclock.t;  (* committed prefix applied locally, per site *)
  mutable site_seq : int;  (* commits originated at this site *)
  holdback :
    (Ids.node, (int * (Ids.txn * Vclock.t * (Ids.key * string) list)) list ref) Hashtbl.t;
  locks : Locks.t;
  prepared : (Ids.txn, wprep) Hashtbl.t;
  aborted_decides : (Ids.txn, unit) Hashtbl.t;
  gen : Ids.Gen.t;
  pending_reads : (string * Ids.txn) Rpc.Pending.t;
  vote_boxes : (Ids.txn, vote_box) Hashtbl.t;
  applied_changed : Sim.Cond.t;
  (* durability mode only *)
  mutable alive : bool;
  origin_log : (int, Ids.txn * Vclock.t * (Ids.key * string) list) Hashtbl.t;
      (* own-site commit order, seq -> payload; serves Pull re-sends *)
  committed : (Ids.txn, bool) Hashtbl.t;
      (* commits decided at this site; [true] once the WCommit record is
         durable — only then may a Query be answered "committed" *)
  pending_outcomes : verdict Rpc.Pending.t;
  mutable wal : (logrec, snap) Sss_storage.Storage.t option;
}

type cluster = {
  sim : Sim.t;
  config : Sss_kv.Config.t;
  repl : Replication.t;
  net : msg Network.t;
  rel : msg Reliable.t;
  nodes : node array;
  history : History.t;
  obs : Sss_obs.Obs.t option;
}

type handle = {
  cl : cluster;
  home : node;
  id : Ids.txn;
  ro : bool;
  start : Vclock.t;
  mutable ws : (Ids.key * string) list;
  mutable finished : bool;
  begin_at : float;
}

let record t event = History.record t.history ~at:(Sim.now t.sim) event

let obs_begin t ~txn ~node ~ro =
  match t.obs with
  | Some o ->
      Sss_obs.Obs.incr o (if ro then "txn.begin.ro" else "txn.begin.update");
      Sss_obs.Obs.emit o ~at:(Sim.now t.sim)
        (Sss_obs.Obs.Txn_begin { txn = Ids.txn_to_string txn; node; ro })
  | None -> ()

let obs_commit t ~txn ~node ~ro ~began =
  match t.obs with
  | Some o ->
      let cls = if ro then "ro" else "update" in
      Sss_obs.Obs.incr o ("txn.commit." ^ cls);
      Sss_obs.Obs.observe o ("lat.txn." ^ cls) (Sim.now t.sim -. began);
      Sss_obs.Obs.emit o ~at:(Sim.now t.sim)
        (Sss_obs.Obs.Txn_commit { txn = Ids.txn_to_string txn; node; ro })
  | None -> ()

let obs_abort t ~txn ~node ~ro ~reason =
  match t.obs with
  | Some o ->
      Sss_obs.Obs.incr o ("txn.abort." ^ reason);
      Sss_obs.Obs.emit o ~at:(Sim.now t.sim)
        (Sss_obs.Obs.Txn_abort { txn = Ids.txn_to_string txn; node; ro; reason })
  | None -> ()

let send t ~src ~dst payload =
  let prio = priority payload in
  if t.config.Sss_kv.Config.fault_tolerance then
    Reliable.send t.rel ~prio ~src ~dst (fun token -> Tracked { token; inner = payload })
  else Network.send t.net ~prio ~src ~dst payload

let primary t key = List.hd (Replication.replicas t.repl key)

let chain (node : node) key =
  match Hashtbl.find_opt node.chains key with
  | Some r -> r
  | None -> invalid_arg "Walter: unknown key"

(* ---------- durability (Config.durability; docs/DURABILITY.md) ---------- *)

(* byte-size model for log records, same flavour as Message.wire_size *)
let writes_bytes ws = List.fold_left (fun acc (_, v) -> acc + 12 + String.length v) 0 ws

let logrec_bytes nodes = function
  | WCommit { writes; _ } -> 16 + 16 + (8 * nodes) + writes_bytes writes
  | WPrepared { prep; _ } -> 16 + 16 + (8 * List.length prep.keys)
  | WAborted _ -> 16 + 8

let snap_bytes nodes (s : snap) =
  64
  + List.fold_left
      (fun acc (_, vers) ->
        acc + 8
        + List.fold_left
            (fun a (v : version) -> a + 24 + (8 * nodes) + String.length v.value)
            0 vers)
      0 s.s_chains
  + (8 * nodes)
  + List.fold_left
      (fun acc (_, (_, _, ws)) -> acc + 16 + (8 * nodes) + writes_bytes ws)
      0 s.s_origin
  + (8 * List.length s.s_committed)
  + List.fold_left (fun acc (_, p) -> acc + 16 + (8 * List.length p.keys)) 0 s.s_prepared
  + (8 * List.length s.s_aborted)

let sorted_bindings table =
  List.sort
    (fun (a, _) (b, _) -> Ids.compare_txn a b)
    (Hashtbl.fold (fun k v acc -> (k, v) :: acc) table [] [@order_ok])

let snap_of (node : node) =
  {
    s_chains =
      List.sort
        (fun (a, _) (b, _) -> Int.compare a b)
        (Hashtbl.fold (fun k r acc -> (k, !r) :: acc) node.chains [] [@order_ok]);
    s_applied = node.applied;
    s_site_seq = node.site_seq;
    s_origin =
      List.sort
        (fun (a, _) (b, _) -> Int.compare a b)
        (Hashtbl.fold (fun s p acc -> (s, p) :: acc) node.origin_log [] [@order_ok]);
    s_committed =
      List.sort Ids.compare_txn
        (Hashtbl.fold
           (fun txn durable acc -> if durable then txn :: acc else acc)
           node.committed [] [@order_ok]);
    s_prepared = sorted_bindings node.prepared;
    s_aborted = List.map fst (sorted_bindings node.aborted_decides);
  }

let log (node : node) r =
  match node.wal with
  | Some w -> Some (Sss_storage.Storage.append w r)
  | None -> None

(* Await durability of the given append; [true] when it is safe to act on
   it (immediately so when durability is off). *)
let log_sync (node : node) lsn =
  match (node.wal, lsn) with
  | Some w, Some l -> Sss_storage.Storage.await w l
  | _ -> true

(* Is this node record still the live one?  A crash under durability
   replaces the record, so stale fibers observe it here. *)
let node_live (cl : cluster) (node : node) = cl.nodes.(node.id) == node

(* Newest version whose writer's commit is within the snapshot.  The caller
   guarantees the snapshot is applied locally, so the first visible version
   in the (write-order sorted) chain is the newest. *)
let visible_read (node : node) key ~start =
  let rec pick = function
    | [] -> assert false
    | [ oldest ] -> oldest
    | v :: rest ->
        if Ids.equal_txn v.writer Ids.genesis || v.seq <= Vclock.get start v.site then v
        else pick rest
  in
  pick !(chain node key)

(* A write is admissible if the newest version of the key was visible in the
   writer's snapshot (no concurrent committed writer: PSI's write-write
   conflict rule). *)
let ww_ok (node : node) key ~start =
  match !(chain node key) with
  | [] -> true
  | v :: _ -> Ids.equal_txn v.writer Ids.genesis || v.seq <= Vclock.get start v.site

(* Install a version, keeping the chain in write order: write-write
   conflicts serialize same-key writers, so for two versions one writer's
   start snapshot always covers the other's commit. *)
let install (node : node) key ver =
  let r = chain node key in
  let after v older =
    Ids.equal_txn older.writer Ids.genesis
    || older.seq <= Vclock.get v.wstart older.site
  in
  let rec insert = function
    | [] -> [ ver ]
    | v :: _ as all when after ver v -> ver :: all
    | v :: rest -> v :: insert rest
  in
  r := insert !r

(* Apply a committed transaction's writes locally and advance the per-site
   applied prefix (in per-site sequence order; out-of-order deliveries are
   held back). *)
let rec apply_committed t (node : node) ~txn ~site ~seq ~start ~writes =
  if seq = Vclock.get node.applied site + 1 then begin
    List.iter
      (fun (k, value) ->
        if Replication.is_replica t.repl node.id k then begin
          if primary t k = node.id then record t (History.Install { txn; key = k });
          install node k { value; writer = txn; site; seq; wstart = start }
        end)
      writes;
    node.applied <- Vclock.set node.applied site seq;
    Hashtbl.remove node.prepared txn;
    Locks.release_txn node.locks txn;
    Sim.Cond.broadcast t.sim node.applied_changed;
    (* drain any held-back successors from the same site *)
    match Hashtbl.find_opt node.holdback site with
    | None -> ()
    | Some pending -> (
        let next = Vclock.get node.applied site + 1 in
        match List.assoc_opt next !pending with
        | None -> ()
        | Some (txn', start', writes') ->
            pending := List.remove_assoc next !pending;
            apply_committed t node ~txn:txn' ~site ~seq:next ~start:start' ~writes:writes')
  end
  else if seq > Vclock.get node.applied site then begin
    let pending =
      match Hashtbl.find_opt node.holdback site with
      | Some r -> r
      | None ->
          let r = ref [] in
          Hashtbl.replace node.holdback site r;
          r
    in
    if not (List.mem_assoc seq !pending) then
      pending := (seq, (txn, start, writes)) :: !pending
  end

(* Termination protocol for a prepared transaction whose outcome this
   participant does not know — because the participant restarted with the
   prepare on disk, or because the coordinator crashed before deciding.
   On "committed" nothing is done here: the (re-)propagated write applies
   the transaction and releases its locks. *)
let resolve_indoubt t (node : node) txn (prep : wprep) =
  let rec loop attempt =
    if node_live t node && Hashtbl.mem node.prepared txn then
      if attempt >= t.config.Sss_kv.Config.retry_limit then
        Rpc.stalled ~system:"walter" ~phase:"in-doubt" (Ids.txn_to_string txn)
      else begin
        let req, slot = Rpc.Pending.fresh node.pending_outcomes in
        send t ~src:node.id ~dst:prep.coord (Query { req; txn });
        match
          Rpc.Pending.await_timeout t.sim slot ~timeout:t.config.Sss_kv.Config.retry_max
        with
        | Some Vcommitted -> ()
        | Some Vaborted ->
            if node_live t node && Hashtbl.mem node.prepared txn then begin
              Hashtbl.replace node.aborted_decides txn ();
              Hashtbl.remove node.prepared txn;
              ignore (log node (WAborted { txn }) : int option);
              Locks.release_txn node.locks txn
            end
        | Some Vundecided | None ->
            Rpc.Pending.forget node.pending_outcomes req;
            Sim.sleep t.sim t.config.Sss_kv.Config.retry_initial;
            loop (attempt + 1)
      end
  in
  try loop 0 with Rpc.Crashed _ -> ()

let handle_prepare t (node : node) ~txn ~coord ~start ~keys =
  let ok =
    (not (Hashtbl.mem node.aborted_decides txn))
    && Locks.acquire_all node.locks txn ~exclusive:keys ~shared:[]
         ~timeout:t.config.Sss_kv.Config.lock_timeout
    && List.for_all (fun k -> ww_ok node k ~start) keys
    && not (Hashtbl.mem node.aborted_decides txn)
    (* the node may have crashed while this fiber waited for the locks:
       a stale record must not vote (or log) on behalf of the fresh one *)
    && node_live t node
  in
  if not ok then begin
    Locks.release_txn node.locks txn;
    send t ~src:node.id ~dst:coord (Wvote { txn; ok = false })
  end
  else begin
    let prep = { keys; coord } in
    Hashtbl.replace node.prepared txn prep;
    (* force the prepare record before promising "yes": after a crash this
       node must still be able to honour a commit decision *)
    let lsn = log node (WPrepared { txn; prep }) in
    (* a yes-voter may be orphaned by a coordinator crash: if the decision
       is still unknown after a couple of retry rounds, go ask for it *)
    if t.config.Sss_kv.Config.durability then
      Sim.spawn t.sim (fun () ->
          Sim.sleep t.sim (2. *. t.config.Sss_kv.Config.retry_max);
          resolve_indoubt t node txn prep);
    if log_sync node lsn then send t ~src:node.id ~dst:coord (Wvote { txn; ok = true })
  end

let rec dispatch t (node : node) ~src payload =
  match payload with
  | Tracked { token; inner } ->
      Network.send t.net ~prio:(priority (Delivered { token })) ~src:node.id ~dst:src
        (Delivered { token });
      if Reliable.receive t.rel token then dispatch t node ~src inner
  | Delivered { token } -> Reliable.delivered t.rel token
  | Read_req { req; key; start } ->
      (* Walter reads block until the local replica has applied the whole
         snapshot (Sovran et al. §4): otherwise a lagging replica would
         return stale data the snapshot already covers. *)
      Sim.Cond.await t.sim node.applied_changed (fun () -> Vclock.leq start node.applied);
      let v = visible_read node key ~start in
      send t ~src:node.id ~dst:src (Read_ret { req; value = v.value; writer = v.writer })
  | Read_ret { req; value; writer } ->
      Rpc.Pending.resolve t.sim node.pending_reads req (value, writer)
  | Wprepare { txn; coord; start; keys } -> handle_prepare t node ~txn ~coord ~start ~keys
  | Wvote { txn; ok } -> (
      match Hashtbl.find_opt node.vote_boxes txn with
      | Some box ->
          box.votes <- box.votes + 1;
          if not ok then box.any_false <- true;
          Sim.Cond.broadcast t.sim box.vchanged
      | None -> ())
  | Wdecide { txn; outcome } ->
      if not outcome then begin
        Hashtbl.replace node.aborted_decides txn ();
        Hashtbl.remove node.prepared txn;
        (* presumed abort: the record spares recovery a query, but nothing
           externally visible depends on it — no flush wait *)
        ignore (log node (WAborted { txn }) : int option);
        Locks.release_txn node.locks txn
      end
      (* on commit the locks are released when the propagated write applies,
         so no concurrent writer can slip a conflicting check in between *)
  | Propagate { txn; site; seq; start; writes } ->
      apply_committed t node ~txn ~site ~seq ~start ~writes
  | Query { req; txn } ->
      (* a participant resolving an in-doubt transaction coordinated here.
         "Committed" may only be answered once the decision record is
         durable; an in-flight decision reads as undecided; everything
         else is presumed aborted. *)
      let verdict =
        match Hashtbl.find_opt node.committed txn with
        | Some true -> Vcommitted
        | Some false -> Vundecided
        | None -> if Hashtbl.mem node.vote_boxes txn then Vundecided else Vaborted
      in
      send t ~src:node.id ~dst:src (Outcome { req; verdict })
  | Outcome { req; verdict } -> Rpc.Pending.resolve t.sim node.pending_outcomes req verdict
  | Pull { have } ->
      (* recovery catch-up: re-send this site's own commits the puller has
         not applied yet, in sequence order *)
      let floor = Vclock.get have node.id in
      let seqs =
        List.sort Int.compare
          (Hashtbl.fold
             (fun s _ acc -> if s > floor then s :: acc else acc)
             node.origin_log [] [@order_ok])
      in
      List.iter
        (fun seq ->
          let txn, start, writes = Hashtbl.find node.origin_log seq in
          send t ~src:node.id ~dst:src
            (Propagate { txn; site = node.id; seq; start; writes }))
        seqs

let create sim (config : Sss_kv.Config.t) =
  let repl =
    Replication.create ~nodes:config.nodes ~degree:config.replication_degree
      ~total_keys:config.total_keys
  in
  let rng = Prng.create ~seed:config.seed in
  let net = Network.create sim rng ~nodes:config.nodes ~config:config.network in
  let nodes =
    Array.init config.nodes (fun id ->
        {
          id;
          chains = Hashtbl.create 256;
          applied = Vclock.zero config.nodes;
          site_seq = 0;
          holdback = Hashtbl.create 8;
          locks = Locks.create sim;
          prepared = Hashtbl.create 64;
          aborted_decides = Hashtbl.create 64;
          gen = Ids.Gen.create id;
          pending_reads = Rpc.Pending.create ();
          vote_boxes = Hashtbl.create 64;
          applied_changed = Sim.Cond.create ();
          alive = true;
          origin_log = Hashtbl.create 64;
          committed = Hashtbl.create 64;
          pending_outcomes = Rpc.Pending.create ();
          wal = None;
        })
  in
  Array.iter
    (fun (node : node) ->
      Array.iter
        (fun k ->
          Hashtbl.replace node.chains k
            (ref
               [
                 {
                   value = Printf.sprintf "init:%d" k;
                   writer = Ids.genesis;
                   site = 0;
                   seq = 0;
                   wstart = Vclock.zero config.nodes;
                 };
               ]))
        (Replication.keys_at repl node.id))
    nodes;
  let rel =
    Reliable.create sim net
      ~retry:
        {
          Reliable.initial = config.retry_initial;
          max = config.retry_max;
          limit = config.retry_limit;
        }
  in
  let obs =
    if config.observe then Some (Sss_obs.Obs.create ~capacity:config.trace_capacity ())
    else None
  in
  (match obs with
  | Some o -> Network.set_observer net (Some { Network.obs = o; kind_of = message_kind })
  | None -> ());
  Reliable.set_obs rel obs;
  let t =
    { sim; config; repl; net; rel; nodes;
      history = History.create ~enabled:config.record_history (); obs }
  in
  Array.iter
    (fun (n : node) ->
      Network.set_handler net n.id (fun ~src payload -> dispatch t n ~src payload))
    nodes;
  if config.durability then
    Array.iter
      (fun (n : node) ->
        let dev =
          Iodev.create sim ~op_latency:config.fsync_latency
            ~bandwidth:config.disk_bandwidth
        in
        let w =
          Sss_storage.Storage.create sim dev
            ~record_bytes:(logrec_bytes config.nodes)
            ~snapshot:(fun () -> snap_of t.nodes.(n.id))
            ~snapshot_bytes:(snap_bytes config.nodes) ?obs:t.obs ()
        in
        n.wal <- Some w;
        Sss_storage.Storage.start_checkpoints w ~interval:config.checkpoint_interval)
      nodes;
  t

(* ------------- crash / recovery (durability mode) ------------- *)

let load_snap (node : node) (s : snap) =
  List.iter (fun (k, vers) -> chain node k := vers) s.s_chains;
  node.applied <- s.s_applied;
  node.site_seq <- s.s_site_seq;
  List.iter (fun (seq, p) -> Hashtbl.replace node.origin_log seq p) s.s_origin;
  List.iter (fun txn -> Hashtbl.replace node.committed txn true) s.s_committed;
  List.iter (fun (txn, p) -> Hashtbl.replace node.prepared txn p) s.s_prepared;
  List.iter (fun txn -> Hashtbl.replace node.aborted_decides txn ()) s.s_aborted

(* Redo one durable record.  Chains are not touched here: own-site commits
   past the applied prefix are re-applied (and re-propagated) in a second
   pass, remote-site writes are pulled from their origins. *)
let replay_record (node : node) = function
  | WCommit { txn; seq; start; writes } ->
      Hashtbl.replace node.origin_log seq (txn, start, writes);
      Hashtbl.replace node.committed txn true;
      if seq > node.site_seq then node.site_seq <- seq
  | WPrepared { txn; prep } -> Hashtbl.replace node.prepared txn prep
  | WAborted { txn } ->
      Hashtbl.remove node.prepared txn;
      Hashtbl.replace node.aborted_decides txn ()

let crash_node t id =
  if t.config.Sss_kv.Config.durability then begin
    let old = t.nodes.(id) in
    old.alive <- false;
    (match old.wal with Some w -> Sss_storage.Storage.crash w | None -> ());
    let e = Rpc.Crashed { system = "walter"; node = id } in
    Rpc.Pending.poison_all t.sim old.pending_reads e;
    Rpc.Pending.poison_all t.sim old.pending_outcomes e;
    let zero = Vclock.zero t.config.Sss_kv.Config.nodes in
    let fresh =
      {
        id;
        chains = Hashtbl.create 256;
        applied = zero;
        site_seq = 0;
        holdback = Hashtbl.create 8;
        locks = Locks.create t.sim;
        prepared = Hashtbl.create 64;
        aborted_decides = Hashtbl.create 64;
        (* transaction ids name client requests, not node state: the
           counter persists so a restarted node never re-mints an id *)
        gen = old.gen;
        pending_reads = Rpc.Pending.create ();
        vote_boxes = Hashtbl.create 64;
        applied_changed = Sim.Cond.create ();
        alive = false;
        origin_log = Hashtbl.create 64;
        committed = Hashtbl.create 64;
        pending_outcomes = Rpc.Pending.create ();
        wal = old.wal;
      }
    in
    Array.iter
      (fun k ->
        Hashtbl.replace fresh.chains k
          (ref
             [
               {
                 value = Printf.sprintf "init:%d" k;
                 writer = Ids.genesis;
                 site = 0;
                 seq = 0;
                 wstart = zero;
               };
             ]))
      (Replication.keys_at t.repl id);
    t.nodes.(id) <- fresh;
    Network.set_handler t.net id (fun ~src payload -> dispatch t fresh ~src payload)
  end

let restart_node t id =
  let node = t.nodes.(id) in
  match node.wal with
  | None -> Network.recover t.net id
  | Some w ->
      Sss_storage.Storage.recover w (fun ~recovered ~replay ->
          Sim.run_fiber (fun () ->
              (match recovered with Some s -> load_snap node s | None -> ());
              List.iter (replay_record node) replay;
              (* redo own-site commits past the applied prefix: a commit
                 can be durable without its local apply (or its Propagate
                 fan-out) having happened *)
              let resend = ref [] in
              let rec catchup () =
                let next = Vclock.get node.applied node.id + 1 in
                if next <= node.site_seq then
                  match Hashtbl.find_opt node.origin_log next with
                  | None -> ()
                  | Some (txn, start, writes) ->
                      apply_committed t node ~txn ~site:node.id ~seq:next ~start
                        ~writes;
                      resend := (txn, next, start, writes) :: !resend;
                      catchup ()
              in
              catchup ();
              let indoubt = sorted_bindings node.prepared in
              (* in-doubt transactions held their (exclusive) locks when
                 the node went down; restore them before admitting new
                 prepares.  The set is mutually compatible, so acquisition
                 is immediate. *)
              List.iter
                (fun (txn, (p : wprep)) ->
                  ignore
                    (Locks.acquire_all node.locks txn ~exclusive:p.keys ~shared:[]
                       ~timeout:t.config.Sss_kv.Config.lock_timeout
                      : bool))
                indoubt;
              node.alive <- true;
              Network.recover t.net id;
              Sss_storage.Storage.start_checkpoints w
                ~interval:t.config.Sss_kv.Config.checkpoint_interval;
              List.iter
                (fun (txn, seq, start, writes) ->
                  for dst = 0 to t.config.Sss_kv.Config.nodes - 1 do
                    if dst <> id then
                      send t ~src:id ~dst
                        (Propagate { txn; site = id; seq; start; writes })
                  done)
                (List.rev !resend);
              (* fetch remote-site commits this replica missed while down *)
              for dst = 0 to t.config.Sss_kv.Config.nodes - 1 do
                if dst <> id then send t ~src:id ~dst (Pull { have = node.applied })
              done;
              List.iter
                (fun (txn, p) ->
                  Sim.spawn t.sim (fun () -> resolve_indoubt t node txn p))
                indoubt))

let begin_txn cl ~node ~read_only =
  let home = cl.nodes.(node) in
  if not home.alive then Rpc.crashed ~system:"walter" ~node;
  let id = Ids.Gen.next home.gen in
  record cl (History.Begin { txn = id; ro = read_only; node });
  obs_begin cl ~txn:id ~node ~ro:read_only;
  { cl; home; id; ro = read_only; start = home.applied; ws = []; finished = false;
    begin_at = Sim.now cl.sim }

let read h key =
  if h.finished then invalid_arg "Walter: read on a finished transaction";
  match List.assoc_opt key h.ws with
  | Some v -> v
  | None ->
      let req, ivar = Rpc.Pending.fresh h.home.pending_reads in
      List.iter
        (fun dst -> send h.cl ~src:h.home.id ~dst (Read_req { req; key; start = h.start }))
        (Replication.replicas h.cl.repl key);
      let value, writer =
        if h.cl.config.Sss_kv.Config.fault_tolerance then
          match
            Rpc.Pending.await_timeout h.cl.sim ivar
              ~timeout:h.cl.config.Sss_kv.Config.ack_timeout
          with
          | Some r -> r
          | None ->
              Rpc.stalled ~system:"walter" ~phase:"read"
                (Printf.sprintf "key %d in %s" key (Ids.txn_to_string h.id))
        else Rpc.Pending.await h.cl.sim ivar
      in
      record h.cl (History.Read { txn = h.id; key; writer });
      value

let write h key value =
  if h.finished then invalid_arg "Walter: write on a finished transaction";
  if h.ro then invalid_arg "Walter: write in a read-only transaction";
  h.ws <- (key, value) :: List.remove_assoc key h.ws

(* Commit at the home site: bump the site sequence, apply locally (which
   also numbers versions for keys whose primary is the home), answer the
   client, and propagate asynchronously. *)
let commit_at_home h =
  let cl = h.cl in
  (* the fiber may have suspended (locks, votes) since the handle was
     made: a stale record must not write to the shared log *)
  if cl.config.Sss_kv.Config.durability && not (node_live cl h.home) then
    Rpc.crashed ~system:"walter" ~node:h.home.id;
  h.home.site_seq <- h.home.site_seq + 1;
  let seq = h.home.site_seq in
  if cl.config.Sss_kv.Config.durability then begin
    (* Durable decision point: bookkeeping and the log record in one
       event; the local apply, the client answer and the Propagate
       fan-out all wait for the flush.  While it is in flight the home
       answers Query with Vundecided (the [committed] entry is [false]),
       so a participant cannot presume abort during the window. *)
    Hashtbl.replace h.home.origin_log seq (h.id, h.start, h.ws);
    Hashtbl.replace h.home.committed h.id false;
    let flush_began = Sim.now cl.sim in
    let lsn = log h.home (WCommit { txn = h.id; seq; start = h.start; writes = h.ws }) in
    if (not (log_sync h.home lsn)) || not (node_live cl h.home) then
      Rpc.crashed ~system:"walter" ~node:h.home.id;
    Hashtbl.replace h.home.committed h.id true;
    match cl.obs with
    | Some o ->
        Sss_obs.Obs.observe o "lat.commit.durable" (Sim.now cl.sim -. flush_began)
    | None -> ()
  end;
  apply_committed cl h.home ~txn:h.id ~site:h.home.id ~seq ~start:h.start ~writes:h.ws;
  record cl (History.Commit { txn = h.id; ws = List.map fst h.ws });
  obs_commit cl ~txn:h.id ~node:h.home.id ~ro:false ~began:h.begin_at;
  for dst = 0 to cl.config.Sss_kv.Config.nodes - 1 do
    if dst <> h.home.id then
      send cl ~src:h.home.id ~dst
        (Propagate { txn = h.id; site = h.home.id; seq; start = h.start; writes = h.ws })
  done;
  true

let commit h =
  if h.finished then invalid_arg "Walter: commit on a finished transaction";
  h.finished <- true;
  let cl = h.cl in
  if h.ws = [] then begin
    (* read-only (or write-free): purely local, never aborts *)
    record cl (History.Commit { txn = h.id; ws = [] });
    obs_commit cl ~txn:h.id ~node:h.home.id ~ro:h.ro ~began:h.begin_at;
    true
  end
  else begin
    (* group written keys by preferred site *)
    let by_primary = Hashtbl.create 4 in
    List.iter
      (fun (k, _) ->
        let p = primary cl k in
        let prev = Option.value ~default:[] (Hashtbl.find_opt by_primary p) in
        Hashtbl.replace by_primary p (k :: prev))
      h.ws;
    (* sorted by site id: prepare-message send order must not depend on
       Hashtbl bucket order *)
    let sites =
      (Hashtbl.fold (fun s ks acc -> (s, ks) :: acc) by_primary [] [@order_ok])
      |> List.sort (fun (s1, _) (s2, _) -> Int.compare s1 s2)
    in
    match sites with
    | [ (s, ks) ] when s = h.home.id ->
        (* fast path: all preferred sites local *)
        if
          Locks.acquire_all h.home.locks h.id ~exclusive:ks ~shared:[]
            ~timeout:cl.config.Sss_kv.Config.lock_timeout
          && List.for_all (fun k -> ww_ok h.home k ~start:h.start) ks
        then commit_at_home h  (* locks released when the local apply runs *)
        else begin
          Locks.release_txn h.home.locks h.id;
          record cl (History.Abort { txn = h.id });
          obs_abort cl ~txn:h.id ~node:h.home.id ~ro:h.ro ~reason:"conflict";
          false
        end
    | _ ->
        (* slow path: conflict-check at each preferred site *)
        let sites = List.sort (fun (a, _) (b, _) -> Int.compare a b) sites in
        let box =
          { expect = List.length sites; votes = 0; any_false = false;
            vchanged = Sim.Cond.create () }
        in
        Hashtbl.replace h.home.vote_boxes h.id box;
        List.iter
          (fun (s, ks) ->
            send cl ~src:h.home.id ~dst:s
              (Wprepare { txn = h.id; coord = h.home.id; start = h.start; keys = ks }))
          sites;
        let complete () = box.any_false || box.votes >= box.expect in
        let _ =
          Sim.Cond.await_timeout cl.sim box.vchanged
            ~timeout:cl.config.Sss_kv.Config.vote_timeout complete
        in
        Hashtbl.remove h.home.vote_boxes h.id;
        let all_ok = (not box.any_false) && box.votes >= box.expect in
        List.iter
          (fun (s, _) -> send cl ~src:h.home.id ~dst:s (Wdecide { txn = h.id; outcome = all_ok }))
          sites;
        if all_ok then commit_at_home h
        else begin
          record cl (History.Abort { txn = h.id });
          obs_abort cl ~txn:h.id ~node:h.home.id ~ro:h.ro ~reason:"vote";
          false
        end
  end

let abort h =
  if h.finished then invalid_arg "Walter: abort on a finished transaction";
  h.finished <- true;
  record h.cl (History.Abort { txn = h.id });
  obs_abort h.cl ~txn:h.id ~node:h.home.id ~ro:h.ro ~reason:"client"

let txn_id h = h.id

let history t = t.history

let obs t = t.obs

let repl t = t.repl

let network t = t.net

(* Resident words of every node's version chains, under the same heap
   model as [Sss_data.Mvstore.mem_words]: hash buckets + binding boxes and
   the chain ref per key, then one list cons + boxed version record + the
   private [wstart] clock array per version, plus the value strings.  Cold
   path (end-of-run gauge); the sum is bucket-order-insensitive. *)
let store_words t =
  let str_words len = 1 + ((len + 8) / 8) in
  Array.fold_left
    (fun acc (n : node) ->
      let st = (Hashtbl.stats n.chains [@order_ok]) in
      (Hashtbl.fold
         (fun _ chain a ->
           List.fold_left
             (fun a (v : version) ->
               a + 3 + 6
               + (Vclock.size v.wstart + 1)
               + str_words (String.length v.value))
             (a + 2) !chain)
         n.chains
         (acc + st.Hashtbl.num_buckets + (4 * st.Hashtbl.num_bindings))
       [@order_ok]))
    0 t.nodes

let quiescent t =
  let problems = ref [] in
  Array.iter
    (fun (n : node) ->
      if Hashtbl.length n.prepared > 0 then
        problems :=
          Printf.sprintf "node %d: %d prepared linger" n.id (Hashtbl.length n.prepared)
          :: !problems;
      if Locks.holder_count n.locks > 0 then
        problems :=
          Printf.sprintf "node %d: %d lock holders" n.id (Locks.holder_count n.locks)
          :: !problems;
      (* report in sorted site order: the text must not depend on bucket order *)
      List.iter
        (fun site ->
          let pending = Hashtbl.find n.holdback site in
          if !pending <> [] then
            problems :=
              Printf.sprintf "node %d: %d held-back propagations from site %d" n.id
                (List.length !pending) site
              :: !problems)
        (List.sort Int.compare
           (Hashtbl.fold (fun s _ acc -> s :: acc) n.holdback [] [@order_ok])))
    t.nodes;
  match !problems with [] -> Ok () | ps -> Error (String.concat "; " ps)
