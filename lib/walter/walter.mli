(** Walter-style Parallel Snapshot Isolation competitor (§V of the paper).

    Walter is included in the paper's evaluation as the fast-but-weaker
    yardstick: its read-only transactions are purely local (never abort,
    never block updates), its update transactions conflict-check only
    write-write pairs, and commits propagate asynchronously — so snapshots
    on different sites may order non-conflicting transactions divergently
    (PSI's "long fork", demonstrably not serializable; see
    [test_baselines.ml] and [examples/document_sync.ml]).

    Deployment parameters are shared with SSS ({!Sss_kv.Config.t}) so the
    experiment harness drives every system identically. *)

open Sss_data

type cluster

type handle

type msg
(** The Walter wire protocol (abstract; inspect with {!message_kind}). *)

val create : Sss_sim.Sim.t -> Sss_kv.Config.t -> cluster

val begin_txn : cluster -> node:Ids.node -> read_only:bool -> handle
(** Snapshots the home site's applied prefix (the start vector
    timestamp). *)

val read : handle -> Ids.key -> string
(** Newest version within the start snapshot; blocks only until the
    contacted replica has applied the snapshot locally. *)

val write : handle -> Ids.key -> string -> unit

val commit : handle -> bool
(** Read-only: always true, no messages.  Updates: write-write conflict
    check at each written key's preferred site (local fast path when they
    all live at the home site), then the client is answered and the writes
    propagate asynchronously in per-site commit order. *)

val abort : handle -> unit

val txn_id : handle -> Ids.txn

val history : cluster -> Sss_consistency.History.t

val obs : cluster -> Sss_obs.Obs.t option
(** The observability sink — [Some] iff [Config.observe] was set at
    creation (docs/OBSERVABILITY.md). *)

val quiescent : cluster -> (unit, string) result

val store_words : cluster -> int
(** Resident words of every node's store, under the heap model of
    [Sss_data.Mvstore.mem_words] — the cross-protocol storage-footprint
    gauge of the saturation figure. *)

(** Exposed for the experiment harness. *)

val repl : cluster -> Replication.t

val network : cluster -> msg Sss_net.Network.t
(** The cluster's network, for attaching fault plans ([Sss_chaos.Chaos]). *)

val message_kind : msg -> string
(** Stable lowercase kind name ("prepare", "propagate", …) for
    per-message-type fault rules; transport wrappers report their payload's
    kind. *)

(** {1 Crash & recovery} — durability mode (docs/DURABILITY.md)

    Wired to {!Sss_chaos.Chaos.install}'s [on_crash]/[on_restart] hooks.
    With [Config.durability = false] both are (nearly) no-ops: the NIC
    fault is all there is, and [restart_node] merely reconnects it. *)

val crash_node : cluster -> Ids.node -> unit
(** Discard the node's volatile state: wound every parked waiter with
    {!Sss_net.Rpc.Crashed}, lose the unflushed log tail, and swap in a
    pristine node record (not yet [alive]).  Bare callback — safe from
    {!Sss_chaos.Chaos} event position. *)

val restart_node : cluster -> Ids.node -> unit
(** Redo recovery: reload the last checkpoint, replay the durable log
    tail, re-apply (and re-propagate) own-site commits past the applied
    prefix, re-take locks for in-doubt prepared transactions, reconnect
    the NIC, Pull the remote-site commits missed while down, and spawn
    termination watchdogs that query each in-doubt transaction's
    coordinator until its outcome is known. *)
