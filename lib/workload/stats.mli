(** Latency/throughput accounting for workload runs. *)

type t

val create : unit -> t
(** An empty accumulator. *)

val add : t -> float -> unit
(** Record one sample (seconds). *)

val count : t -> int
(** Samples recorded so far. *)

val mean : t -> float
(** 0.0 when empty. *)

val percentile : t -> float -> float
(** [percentile t 0.99] — nearest-rank percentile; 0.0 when empty.
    @raise Invalid_argument if the fraction is outside [0, 1]. *)

val min : t -> float
(** Smallest sample; 0.0 when empty. *)

val max : t -> float
(** Largest sample; 0.0 when empty. *)

val clear : t -> unit
(** Forget every sample. *)
