(** YCSB-style workload driver (§V of the paper), closed- or open-loop.

    In the default closed loop, clients are colocated with nodes; each
    issues a new transaction only when the previous one returned, so load
    self-throttles and saturation is invisible by construction.  Update
    transactions read then overwrite [update_ops] keys; read-only
    transactions read [ro_ops] keys.  Keys are drawn uniformly, zipfian, or
    from the local node's replicas with probability [locality] (Fig. 7's
    50%-locality configuration).

    Setting {!load}[.open_loop] switches to an open loop: a seeded arrival
    process generates requests at a configured offered rate regardless of
    completion, arrivals wait in a per-node bounded admission queue (full
    queue = rejection, the backpressure signal), and a fixed pool of worker
    fibers serves them.  Results then separate queueing delay from service
    latency (sojourn = completion − arrival; service = completion −
    dequeue) and report offered vs accepted vs committed load.  The arrival
    randomness lives on a private splitmix stream, so closed-loop
    trajectories are byte-identical to builds without the open-loop engine.

    The driver is protocol-agnostic: any store exposing the {!type:ops}
    quadruple can be measured, which is how SSS, Walter, ROCOCO and the 2PC
    baseline all run under identical load. *)

open Sss_data

type 'h ops = {
  begin_txn : node:Ids.node -> read_only:bool -> 'h;
  read : 'h -> Ids.key -> string;
  write : 'h -> Ids.key -> string -> unit;
  commit : 'h -> bool;
}

type key_dist = Uniform | Zipfian of float

type profile = {
  read_only_ratio : float;
  update_ops : int;  (** keys read and written by an update transaction *)
  ro_ops : int;  (** keys read by a read-only transaction *)
  locality : float;  (** probability of drawing a node-local key *)
}

val paper_profile : read_only_ratio:float -> profile
(** The paper's default: update transactions touch 2 keys, read-only
    transactions read 2 keys, no locality. *)

type arrival =
  | Poisson of float  (** memoryless arrivals at a fixed per-node rate (txn/s) *)
  | Ramp of { from_rate : float; to_rate : float }
      (** instantaneous rate interpolated linearly over the whole run
          (warmup + duration); both rates must be positive *)

type open_loop = {
  arrival : arrival;  (** per-node arrival process *)
  queue_capacity : int;
      (** max WAITING requests per node; arrivals beyond it are rejected
          (capacity 0 rejects everything) *)
  workers_per_node : int;  (** service concurrency per node *)
}

type load = {
  clients_per_node : int;  (** closed loop only; ignored under [open_loop] *)
  warmup : float;  (** seconds of virtual time before measurement starts *)
  duration : float;  (** measured virtual-time window *)
  seed : int;
  dist : key_dist;
  retry_aborts : bool;  (** re-run an aborted transaction on the same keys *)
  open_loop : open_loop option;  (** [None] = the paper's closed loop *)
}

val default_load : load
(** 10 clients/node (the paper's setting), 50 ms warmup, 250 ms measured,
    uniform keys, no retry, closed loop. *)

val arrival_rate : arrival -> at:float -> horizon:float -> float
(** The instantaneous arrival rate at virtual time [at] of a run ending at
    [horizon] (exposed for tests and for plotting offered-load ladders). *)

val arrival_gap : arrival -> Sss_sim.Prng.t -> at:float -> horizon:float -> float
(** Draw the next inter-arrival gap at virtual time [at].  Exponentially
    distributed with mean [1 / arrival_rate].  @raise Invalid_argument if
    the instantaneous rate is not positive. *)

type result = {
  committed : int;  (** committed in the measured window *)
  committed_ro : int;
  aborted : int;  (** aborts in the measured window *)
  throughput : float;  (** committed transactions per second *)
  abort_rate : float;  (** aborted / (committed + aborted) *)
  latency : Stats.t;
      (** all committed transactions — end-to-end in the closed loop,
          service latency (excluding queueing) in the open loop *)
  ro_latency : Stats.t;
  update_latency : Stats.t;
  offered : int;  (** open loop: arrivals generated in the measured window *)
  accepted : int;  (** open loop: arrivals admitted to a queue *)
  rejected : int;  (** open loop: arrivals dropped at a full queue *)
  sojourn : Stats.t;  (** open loop: completion − arrival, committed txns *)
  service : Stats.t;  (** open loop: completion − dequeue *)
  queue_wait : Stats.t;  (** open loop: dequeue − arrival *)
}

val run :
  Sss_sim.Sim.t ->
  nodes:int ->
  total_keys:int ->
  local_keys:(Ids.node -> Ids.key array) ->
  profile:profile ->
  load:load ->
  ops:'h ops ->
  result
(** Spawns the clients, runs the simulator to completion (clients stop
    issuing after [warmup + duration]; in-flight work drains), and returns
    the measured-window statistics. *)
