open Sss_sim
open Sss_data

type 'h ops = {
  begin_txn : node:Ids.node -> read_only:bool -> 'h;
  read : 'h -> Ids.key -> string;
  write : 'h -> Ids.key -> string -> unit;
  commit : 'h -> bool;
}

type key_dist = Uniform | Zipfian of float

type profile = {
  read_only_ratio : float;
  update_ops : int;
  ro_ops : int;
  locality : float;
}

let paper_profile ~read_only_ratio =
  { read_only_ratio; update_ops = 2; ro_ops = 2; locality = 0.0 }

type arrival = Poisson of float | Ramp of { from_rate : float; to_rate : float }

type open_loop = {
  arrival : arrival;
  queue_capacity : int;
  workers_per_node : int;
}

type load = {
  clients_per_node : int;
  warmup : float;
  duration : float;
  seed : int;
  dist : key_dist;
  retry_aborts : bool;
  open_loop : open_loop option;
}

let default_load =
  {
    clients_per_node = 10;
    warmup = 0.05;
    duration = 0.25;
    seed = 42;
    dist = Uniform;
    retry_aborts = false;
    open_loop = None;
  }

type result = {
  committed : int;
  committed_ro : int;
  aborted : int;
  throughput : float;
  abort_rate : float;
  latency : Stats.t;
  ro_latency : Stats.t;
  update_latency : Stats.t;
  offered : int;
  accepted : int;
  rejected : int;
  sojourn : Stats.t;
  service : Stats.t;
  queue_wait : Stats.t;
}

type counters = {
  mutable committed : int;
  mutable committed_ro : int;
  mutable aborted : int;
}

type open_counters = {
  mutable offered : int;
  mutable accepted : int;
  mutable rejected : int;
}

(* The instantaneous arrival rate: constant for Poisson, linearly
   interpolated from [from_rate] to [to_rate] over [0, horizon] for Ramp
   (clamped outside the sweep window). *)
let arrival_rate arrival ~at ~horizon =
  match arrival with
  | Poisson rate -> rate
  | Ramp { from_rate; to_rate } ->
      let frac =
        if horizon <= 0.0 then 1.0 else Float.max 0.0 (Float.min 1.0 (at /. horizon))
      in
      from_rate +. ((to_rate -. from_rate) *. frac)

let arrival_gap arrival rng ~at ~horizon =
  let rate = arrival_rate arrival ~at ~horizon in
  if rate <= 0.0 then invalid_arg "Driver.arrival_gap: arrival rate must be positive";
  Prng.exponential rng ~mean:(1.0 /. rate)

(* pause after an attempt died to a node crash, before trying fresh keys *)
let crashed_backoff = 1e-3

(* Draw [count] distinct keys for a client on [node]. *)
let pick_keys rng ~dist ~zipf ~total_keys ~local ~locality ~count =
  let draw () =
    if locality > 0.0 && Array.length local > 0 && Prng.float rng 1.0 < locality then
      local.(Prng.int rng (Array.length local))
    else
      match dist with
      | Uniform -> Prng.int rng total_keys
      | Zipfian _ -> Zipf.sample (Option.get zipf) rng
  in
  let rec fill acc n guard =
    if n = 0 || guard > 1000 then acc
    else
      let k = draw () in
      if List.mem k acc then fill acc n (guard + 1) else fill (k :: acc) (n - 1) guard
  in
  fill [] count 0

let client_loop sim ~ops ~rng ~node ~profile ~load ~zipf ~total_keys ~local ~stop ~measure_from
    ~counters ~latency ~ro_latency ~update_latency =
  let value_counter = ref 0 in
  let run_once ~read_only keys =
    let h = ops.begin_txn ~node ~read_only in
    if read_only then List.iter (fun k -> ignore (ops.read h k)) keys
    else
      List.iter
        (fun k ->
          let v = ops.read h k in
          incr value_counter;
          ops.write h k (Printf.sprintf "%d:%d.%d (was %s)" node !value_counter k v))
        keys;
    ops.commit h
  in
  let rec txn_loop () =
    if Sim.now sim < stop then begin
      let read_only = Prng.float rng 1.0 < profile.read_only_ratio in
      let count = if read_only then profile.ro_ops else profile.update_ops in
      let keys =
        pick_keys rng ~dist:load.dist ~zipf ~total_keys ~local ~locality:profile.locality
          ~count
      in
      let started = Sim.now sim in
      let rec attempt () =
        let ok =
          (* Under [Config.durability] a crash of the client's home node
             abandons the in-flight transaction: no verdict is recorded
             (the checker accepts incomplete transactions), and the client
             backs off and moves on — begin_txn keeps raising until the
             node finishes recovery. *)
          try Some (run_once ~read_only keys)
          with Sss_net.Rpc.Crashed _ ->
            Sim.sleep sim crashed_backoff;
            None
        in
        match ok with
        | None -> ()
        | Some ok ->
        if not ok then begin
          if Sim.now sim >= measure_from then counters.aborted <- counters.aborted + 1;
          if load.retry_aborts && Sim.now sim < stop then attempt () else ()
        end
        else if Sim.now sim >= measure_from && started >= measure_from then begin
          counters.committed <- counters.committed + 1;
          if read_only then counters.committed_ro <- counters.committed_ro + 1;
          let elapsed = Sim.now sim -. started in
          Stats.add latency elapsed;
          if read_only then Stats.add ro_latency elapsed else Stats.add update_latency elapsed
        end
      in
      attempt ();
      txn_loop ()
    end
  in
  txn_loop ()

(* ---------- open loop: seeded arrival process + bounded admission ---------- *)

(* One node's admission queue: arrival timestamps waiting for a worker.
   The generator pushes (or rejects, when full); workers drain. *)
type lane = {
  queue : float Queue.t;
  mutable gen_done : bool;
  nonempty : Sim.Cond.t;
}

let open_generator sim ~arng ~arrival ~lane ~capacity ~stop ~measure_from ~ocounters =
  let rec gen () =
    let at = Sim.now sim in
    let gap = arrival_gap arrival arng ~at ~horizon:stop in
    if at +. gap < stop then begin
      Sim.sleep sim gap;
      let now = Sim.now sim in
      let measured = now >= measure_from in
      if measured then ocounters.offered <- ocounters.offered + 1;
      (* capacity bounds WAITING requests: a full queue rejects the arrival
         even while workers are busy elsewhere, and capacity 0 rejects
         everything (pure loss system) *)
      if Queue.length lane.queue >= capacity then begin
        if measured then ocounters.rejected <- ocounters.rejected + 1
      end
      else begin
        Queue.push now lane.queue;
        if measured then ocounters.accepted <- ocounters.accepted + 1;
        Sim.Cond.broadcast sim lane.nonempty
      end;
      gen ()
    end
  in
  gen ();
  lane.gen_done <- true;
  Sim.Cond.broadcast sim lane.nonempty

let open_worker sim ~ops ~rng ~node ~profile ~load ~zipf ~total_keys ~local ~measure_from
    ~counters ~lane ~latency ~ro_latency ~update_latency ~sojourn ~service ~queue_wait =
  let value_counter = ref 0 in
  let run_once ~read_only keys =
    let h = ops.begin_txn ~node ~read_only in
    if read_only then List.iter (fun k -> ignore (ops.read h k)) keys
    else
      List.iter
        (fun k ->
          let v = ops.read h k in
          incr value_counter;
          ops.write h k (Printf.sprintf "%d:%d.%d (was %s)" node !value_counter k v))
        keys;
    ops.commit h
  in
  let rec serve () =
    match Queue.take_opt lane.queue with
    | Some arrived ->
        let dequeued = Sim.now sim in
        let read_only = Prng.float rng 1.0 < profile.read_only_ratio in
        let count = if read_only then profile.ro_ops else profile.update_ops in
        let keys =
          pick_keys rng ~dist:load.dist ~zipf ~total_keys ~local ~locality:profile.locality
            ~count
        in
        (* the measurement window is keyed on ARRIVAL time: a request that
           arrived during warmup but finished inside the window would bias
           the sojourn distribution low (its queueing happened off-window) *)
        let measured = arrived >= measure_from in
        let rec attempt () =
          let ok =
            try Some (run_once ~read_only keys)
            with Sss_net.Rpc.Crashed _ ->
              Sim.sleep sim crashed_backoff;
              None
          in
          match ok with
          | None -> ()
          | Some ok ->
              if not ok then begin
                if measured then counters.aborted <- counters.aborted + 1;
                if load.retry_aborts then attempt ()
              end
              else if measured then begin
                counters.committed <- counters.committed + 1;
                if read_only then counters.committed_ro <- counters.committed_ro + 1;
                let finished = Sim.now sim in
                let svc = finished -. dequeued in
                Stats.add latency svc;
                if read_only then Stats.add ro_latency svc else Stats.add update_latency svc;
                Stats.add service svc;
                Stats.add sojourn (finished -. arrived);
                Stats.add queue_wait (dequeued -. arrived)
              end
        in
        attempt ();
        serve ()
    | None ->
        if not lane.gen_done then begin
          Sim.Cond.await sim lane.nonempty (fun () ->
              (not (Queue.is_empty lane.queue)) || lane.gen_done);
          serve ()
        end
  in
  serve ()

let run sim ~nodes ~total_keys ~local_keys ~profile ~load ~ops =
  let zipf =
    match load.dist with
    | Uniform -> None
    | Zipfian theta -> Some (Zipf.create ~n:total_keys ~theta)
  in
  let base_rng = Prng.create ~seed:load.seed in
  let counters = { committed = 0; committed_ro = 0; aborted = 0 } in
  let ocounters = { offered = 0; accepted = 0; rejected = 0 } in
  let latency = Stats.create () in
  let ro_latency = Stats.create () in
  let update_latency = Stats.create () in
  let sojourn = Stats.create () in
  let service = Stats.create () in
  let queue_wait = Stats.create () in
  let measure_from = load.warmup in
  let stop = load.warmup +. load.duration in
  (match load.open_loop with
  | None ->
      for node = 0 to nodes - 1 do
        let local = local_keys node in
        for _ = 1 to load.clients_per_node do
          let rng = Prng.split base_rng in
          Sim.spawn sim (fun () ->
              client_loop sim ~ops ~rng ~node ~profile ~load ~zipf ~total_keys ~local ~stop
                ~measure_from ~counters ~latency ~ro_latency ~update_latency)
        done
      done
  | Some ol ->
      (* The arrival processes draw from a private splitmix stream (seed
         perturbed by a fixed tag), so arrival randomness never interleaves
         with the workers' key/mix draws — mirroring how sss_chaos keeps
         fault injection off the workload's stream. *)
      let arrival_base = Prng.create ~seed:(load.seed lxor 0x6f70656e) in
      for node = 0 to nodes - 1 do
        let local = local_keys node in
        let lane =
          { queue = Queue.create (); gen_done = false; nonempty = Sim.Cond.create () }
        in
        let arng = Prng.split arrival_base in
        Sim.spawn sim (fun () ->
            open_generator sim ~arng ~arrival:ol.arrival ~lane ~capacity:ol.queue_capacity
              ~stop ~measure_from ~ocounters);
        for _ = 1 to ol.workers_per_node do
          let rng = Prng.split base_rng in
          Sim.spawn sim (fun () ->
              open_worker sim ~ops ~rng ~node ~profile ~load ~zipf ~total_keys ~local
                ~measure_from ~counters ~lane ~latency ~ro_latency ~update_latency ~sojourn
                ~service ~queue_wait)
        done
      done);
  Sim.run sim;
  {
    committed = counters.committed;
    committed_ro = counters.committed_ro;
    aborted = counters.aborted;
    throughput = float_of_int counters.committed /. load.duration;
    abort_rate =
      (let total = counters.committed + counters.aborted in
       if total = 0 then 0.0 else float_of_int counters.aborted /. float_of_int total);
    latency;
    ro_latency;
    update_latency;
    offered = ocounters.offered;
    accepted = ocounters.accepted;
    rejected = ocounters.rejected;
    sojourn;
    service;
    queue_wait;
  }
