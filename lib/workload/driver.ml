open Sss_sim
open Sss_data

type 'h ops = {
  begin_txn : node:Ids.node -> read_only:bool -> 'h;
  read : 'h -> Ids.key -> string;
  write : 'h -> Ids.key -> string -> unit;
  commit : 'h -> bool;
}

type key_dist = Uniform | Zipfian of float

type profile = {
  read_only_ratio : float;
  update_ops : int;
  ro_ops : int;
  locality : float;
}

let paper_profile ~read_only_ratio =
  { read_only_ratio; update_ops = 2; ro_ops = 2; locality = 0.0 }

type load = {
  clients_per_node : int;
  warmup : float;
  duration : float;
  seed : int;
  dist : key_dist;
  retry_aborts : bool;
}

let default_load =
  {
    clients_per_node = 10;
    warmup = 0.05;
    duration = 0.25;
    seed = 42;
    dist = Uniform;
    retry_aborts = false;
  }

type result = {
  committed : int;
  committed_ro : int;
  aborted : int;
  throughput : float;
  abort_rate : float;
  latency : Stats.t;
  ro_latency : Stats.t;
  update_latency : Stats.t;
}

type counters = {
  mutable committed : int;
  mutable committed_ro : int;
  mutable aborted : int;
}

(* pause after an attempt died to a node crash, before trying fresh keys *)
let crashed_backoff = 1e-3

(* Draw [count] distinct keys for a client on [node]. *)
let pick_keys rng ~dist ~zipf ~total_keys ~local ~locality ~count =
  let draw () =
    if locality > 0.0 && Array.length local > 0 && Prng.float rng 1.0 < locality then
      local.(Prng.int rng (Array.length local))
    else
      match dist with
      | Uniform -> Prng.int rng total_keys
      | Zipfian _ -> Zipf.sample (Option.get zipf) rng
  in
  let rec fill acc n guard =
    if n = 0 || guard > 1000 then acc
    else
      let k = draw () in
      if List.mem k acc then fill acc n (guard + 1) else fill (k :: acc) (n - 1) guard
  in
  fill [] count 0

let client_loop sim ~ops ~rng ~node ~profile ~load ~zipf ~total_keys ~local ~stop ~measure_from
    ~counters ~latency ~ro_latency ~update_latency =
  let value_counter = ref 0 in
  let run_once ~read_only keys =
    let h = ops.begin_txn ~node ~read_only in
    if read_only then List.iter (fun k -> ignore (ops.read h k)) keys
    else
      List.iter
        (fun k ->
          let v = ops.read h k in
          incr value_counter;
          ops.write h k (Printf.sprintf "%d:%d.%d (was %s)" node !value_counter k v))
        keys;
    ops.commit h
  in
  let rec txn_loop () =
    if Sim.now sim < stop then begin
      let read_only = Prng.float rng 1.0 < profile.read_only_ratio in
      let count = if read_only then profile.ro_ops else profile.update_ops in
      let keys =
        pick_keys rng ~dist:load.dist ~zipf ~total_keys ~local ~locality:profile.locality
          ~count
      in
      let started = Sim.now sim in
      let rec attempt () =
        let ok =
          (* Under [Config.durability] a crash of the client's home node
             abandons the in-flight transaction: no verdict is recorded
             (the checker accepts incomplete transactions), and the client
             backs off and moves on — begin_txn keeps raising until the
             node finishes recovery. *)
          try Some (run_once ~read_only keys)
          with Sss_net.Rpc.Crashed _ ->
            Sim.sleep sim crashed_backoff;
            None
        in
        match ok with
        | None -> ()
        | Some ok ->
        if not ok then begin
          if Sim.now sim >= measure_from then counters.aborted <- counters.aborted + 1;
          if load.retry_aborts && Sim.now sim < stop then attempt () else ()
        end
        else if Sim.now sim >= measure_from && started >= measure_from then begin
          counters.committed <- counters.committed + 1;
          if read_only then counters.committed_ro <- counters.committed_ro + 1;
          let elapsed = Sim.now sim -. started in
          Stats.add latency elapsed;
          if read_only then Stats.add ro_latency elapsed else Stats.add update_latency elapsed
        end
      in
      attempt ();
      txn_loop ()
    end
  in
  txn_loop ()

let run sim ~nodes ~total_keys ~local_keys ~profile ~load ~ops =
  let zipf =
    match load.dist with
    | Uniform -> None
    | Zipfian theta -> Some (Zipf.create ~n:total_keys ~theta)
  in
  let base_rng = Prng.create ~seed:load.seed in
  let counters = { committed = 0; committed_ro = 0; aborted = 0 } in
  let latency = Stats.create () in
  let ro_latency = Stats.create () in
  let update_latency = Stats.create () in
  let measure_from = load.warmup in
  let stop = load.warmup +. load.duration in
  for node = 0 to nodes - 1 do
    let local = local_keys node in
    for _ = 1 to load.clients_per_node do
      let rng = Prng.split base_rng in
      Sim.spawn sim (fun () ->
          client_loop sim ~ops ~rng ~node ~profile ~load ~zipf ~total_keys ~local ~stop
            ~measure_from ~counters ~latency ~ro_latency ~update_latency)
    done
  done;
  Sim.run sim;
  {
    committed = counters.committed;
    committed_ro = counters.committed_ro;
    aborted = counters.aborted;
    throughput = float_of_int counters.committed /. load.duration;
    abort_rate =
      (let total = counters.committed + counters.aborted in
       if total = 0 then 0.0 else float_of_int counters.aborted /. float_of_int total);
    latency;
    ro_latency;
    update_latency;
  }
