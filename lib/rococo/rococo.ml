(* ROCOCO-style two-round concurrency control (Mu et al., OSDI'14),
   re-implemented on the same substrate as SSS, as the paper does for its
   evaluation (§V, Figures 6 and 8).

   The evaluation configures ROCOCO so that every piece is deferrable; we
   implement that mode:

   - Update transactions never abort.  Round 1 (dispatch) places one piece
     per accessed key on the key's server and collects ordering
     information (a per-server logical counter, standing in for ROCOCO's
     collected dependencies).  Round 2 (commit) distributes the
     transaction's final position — the maximum collected counter, with
     the transaction id as tie-break — and every server executes the
     buffered pieces of a key in final-position order, holding back a
     piece while a dispatched-but-not-yet-positioned transaction could
     still be ordered earlier.  This reorder-instead-of-abort execution is
     the essence of ROCOCO's deferrable pieces.
   - A piece is a server-side read-modify-write: the client-visible read
     returns the dispatch-time value, while the authoritative read happens
     at execution time in the agreed order (recorded in the history, which
     is what the consistency checker validates).
   - Read-only transactions are not abort-free (the property the paper
     contrasts with SSS): each read waits until the key has no buffered
     update pieces, and the transaction re-reads its whole key set until
     two consecutive rounds observe identical versions, aborting after a
     bounded number of attempts.  Their cost grows with the number of read
     keys and with contention — the effect Figure 8 measures.

   Replication is disabled in the paper's ROCOCO comparisons (consensus
   replication is out of scope); we honour [replication_degree] but the
   experiments use 1. *)

open Sss_sim
open Sss_data
open Sss_net
open Sss_consistency

type ts = { num : int; owner : Ids.txn }

let ts_compare a b =
  let c = Int.compare a.num b.num in
  if c <> 0 then c else Ids.compare_txn a.owner b.owner

type msg =
  | Dispatch of { req : int; txn : Ids.txn; key : Ids.key }
  | Dispatch_ack of { req : int; counter : int; value : string; writer : Ids.txn }
  | Commit of { txn : Ids.txn; ts : ts; writes : (Ids.key * string) list; round : int }
      (* [round] > 0 only for durability-mode coordinator retries *)
  | Commit_ack of { txn : Ids.txn; round : int }
  | Ro_read of { req : int; key : Ids.key }
  | Ro_ret of { req : int; value : string; writer : Ids.txn; stable : bool }
  | Cancel of { txn : Ids.txn; keys : Ids.key list }
  | Alive_query of { req : int; txn : Ids.txn }
      (* durability: "is this dispatched transaction still being driven?" *)
  | Alive_ret of { req : int; alive : bool }
  | Tracked of { token : int; inner : msg }
  | Delivered of { token : int }

let rec priority = function
  | Commit _ | Commit_ack _ | Cancel _ | Alive_query _ | Alive_ret _ -> 60
  | Dispatch _ | Dispatch_ack _ | Ro_read _ | Ro_ret _ -> 100
  | Tracked { inner; _ } -> priority inner
  | Delivered _ -> 10

let rec message_kind = function
  | Dispatch _ -> "dispatch"
  | Dispatch_ack _ -> "dispatch_ack"
  | Commit _ -> "commit"
  | Commit_ack _ -> "commit_ack"
  | Ro_read _ -> "ro_read"
  | Ro_ret _ -> "ro_return"
  | Cancel _ -> "cancel"
  | Alive_query _ -> "alive_query"
  | Alive_ret _ -> "alive_return"
  | Tracked { inner; _ } -> message_kind inner
  | Delivered _ -> "delivered"

type cell = {
  mutable value : string;
  mutable writer : Ids.txn;
  (* dispatched pieces not yet positioned: txn -> local dispatch counter *)
  pending : (Ids.txn, int) Hashtbl.t;
  (* positioned pieces awaiting execution, sorted by ts *)
  mutable ready : (ts * string) list;
}

type ack_box = {
  ack_expect : int;
  mutable ack_count : int;
  mutable ack_round : int;  (* durability: acks from older retry rounds are stale *)
  ack_done : unit Sim.Ivar.t;
}

(* Durability-mode write-ahead-log records (docs/DURABILITY.md). *)
type logrec =
  | RDispatch of { txn : Ids.txn; key : Ids.key; counter : int }
      (* a piece was buffered and its ordering counter promised *)
  | RInsert of { txn : Ids.txn; ts : ts; writes : (Ids.key * string) list }
      (* a positioned transaction: final timestamp and full write set *)

(* Checkpoint image: deep copy, deterministic (sorted) order. *)
type snap = {
  s_cells :
    (Ids.key * (string * Ids.txn * (Ids.txn * int) list * (ts * string) list)) list;
  s_counter : int;
  s_staged : (Ids.txn * (ts * (Ids.key * string) list)) list;
  s_done : (Ids.txn * int) list;
  s_seen : Ids.txn list;
}

type node = {
  id : Ids.node;
  store : (Ids.key, cell) Hashtbl.t;
  mutable counter : int;
  gen : Ids.Gen.t;
  pending_disp : (int * string * Ids.txn) Rpc.Pending.t;
  pending_ro : (string * Ids.txn * bool) Rpc.Pending.t;
  ack_boxes : (Ids.txn, ack_box) Hashtbl.t;
  executed : Sim.Cond.t;
  (* durability mode only *)
  mutable alive : bool;
  staged : (Ids.txn, ts * (Ids.key * string) list) Hashtbl.t;
      (* positioned transactions whose RInsert flush is still in flight *)
  seen_commits : (Ids.txn, unit) Hashtbl.t;  (* dedup for coordinator retries *)
  done_pieces : (Ids.txn, int) Hashtbl.t;  (* locally executed pieces per txn *)
  rounds : (Ids.txn, int) Hashtbl.t;  (* latest Commit retry round seen *)
  inflight : (Ids.txn, unit) Hashtbl.t;
      (* home-side registry of update transactions still being driven by a
         live client fiber; lost in a crash — which is exactly the signal
         the aliveness protocol needs *)
  pending_alive : bool Rpc.Pending.t;
  mutable wal : (logrec, snap) Sss_storage.Storage.t option;
}

type cluster = {
  sim : Sim.t;
  config : Sss_kv.Config.t;
  repl : Replication.t;
  net : msg Network.t;
  rel : msg Reliable.t;
  nodes : node array;
  history : History.t;
  obs : Sss_obs.Obs.t option;
}

type handle = {
  cl : cluster;
  home : node;
  id : Ids.txn;
  ro : bool;
  mutable rs : (Ids.key * string) list;  (* dispatch-time reads, client-visible *)
  mutable ws : (Ids.key * string) list;
  mutable counters : int list;  (* collected in round 1 *)
  mutable finished : bool;
  begin_at : float;
}

let record t event = History.record t.history ~at:(Sim.now t.sim) event

let obs_begin t ~txn ~node ~ro =
  match t.obs with
  | Some o ->
      Sss_obs.Obs.incr o (if ro then "txn.begin.ro" else "txn.begin.update");
      Sss_obs.Obs.emit o ~at:(Sim.now t.sim)
        (Sss_obs.Obs.Txn_begin { txn = Ids.txn_to_string txn; node; ro })
  | None -> ()

let obs_commit t ~txn ~node ~ro ~began =
  match t.obs with
  | Some o ->
      let cls = if ro then "ro" else "update" in
      Sss_obs.Obs.incr o ("txn.commit." ^ cls);
      Sss_obs.Obs.observe o ("lat.txn." ^ cls) (Sim.now t.sim -. began);
      Sss_obs.Obs.emit o ~at:(Sim.now t.sim)
        (Sss_obs.Obs.Txn_commit { txn = Ids.txn_to_string txn; node; ro })
  | None -> ()

let obs_abort t ~txn ~node ~ro ~reason =
  match t.obs with
  | Some o ->
      Sss_obs.Obs.incr o ("txn.abort." ^ reason);
      Sss_obs.Obs.emit o ~at:(Sim.now t.sim)
        (Sss_obs.Obs.Txn_abort { txn = Ids.txn_to_string txn; node; ro; reason })
  | None -> ()

let send t ~src ~dst payload =
  let prio = priority payload in
  if t.config.Sss_kv.Config.fault_tolerance then
    Reliable.send t.rel ~prio ~src ~dst (fun token -> Tracked { token; inner = payload })
  else Network.send t.net ~prio ~src ~dst payload

let await_read cl ivar ~phase ~detail =
  if cl.config.Sss_kv.Config.fault_tolerance then
    match
      Rpc.Pending.await_timeout cl.sim ivar ~timeout:cl.config.Sss_kv.Config.ack_timeout
    with
    | Some r -> r
    | None -> Rpc.stalled ~system:"rococo" ~phase detail
  else Rpc.Pending.await cl.sim ivar

let cell (node : node) key =
  match Hashtbl.find_opt node.store key with
  | Some c -> c
  | None -> invalid_arg "Rococo: unknown key"

(* ---------- durability (Config.durability; docs/DURABILITY.md) ---------- *)

(* byte-size model for log records, same flavour as Message.wire_size *)
let writes_bytes ws = List.fold_left (fun acc (_, v) -> acc + 12 + String.length v) 0 ws

let logrec_bytes = function
  | RDispatch _ -> 16 + 8 + 8 + 8
  | RInsert { writes; _ } -> 16 + 8 + 16 + writes_bytes writes

let snap_bytes (s : snap) =
  64
  + List.fold_left
      (fun acc (_, (v, _, pending, ready)) ->
        acc + 20 + String.length v
        + (16 * List.length pending)
        + List.fold_left (fun a (_, w) -> a + 20 + String.length w) 0 ready)
      0 s.s_cells
  + List.fold_left (fun acc (_, (_, ws)) -> acc + 24 + writes_bytes ws) 0 s.s_staged
  + (16 * List.length s.s_done)
  + (8 * List.length s.s_seen)

let sorted_bindings table =
  List.sort
    (fun (a, _) (b, _) -> Ids.compare_txn a b)
    (Hashtbl.fold (fun k v acc -> (k, v) :: acc) table [] [@order_ok])

let snap_of (node : node) =
  {
    s_cells =
      List.sort
        (fun (a, _) (b, _) -> Int.compare a b)
        (Hashtbl.fold
           (fun k (c : cell) acc ->
             (k, (c.value, c.writer, sorted_bindings c.pending, c.ready)) :: acc)
           node.store [] [@order_ok]);
    s_counter = node.counter;
    s_staged = sorted_bindings node.staged;
    s_done = sorted_bindings node.done_pieces;
    s_seen = List.map fst (sorted_bindings node.seen_commits);
  }

let log (node : node) r =
  match node.wal with
  | Some w -> Some (Sss_storage.Storage.append w r)
  | None -> None

(* Await durability of the given append; [true] when it is safe to act on
   it (immediately so when durability is off). *)
let log_sync (node : node) lsn =
  match (node.wal, lsn) with
  | Some w, Some l -> Sss_storage.Storage.await w l
  | _ -> true

(* Is this node record still the live one?  A crash under durability
   replaces the record, so stale fibers observe it here. *)
let node_live (cl : cluster) (node : node) = cl.nodes.(node.id) == node

(* Request/response reads (dispatch round-1, read-only rounds).  Without
   durability a single long-timeout wait is enough — the reply can only be
   slow, not gone.  A crash can eat the request or the reply outright (the
   transport receipts on receive, before the handler runs), and the lost
   [Dispatch_ack] is worse than latency: the crashed server's redo restores
   the piece's counter promise into [pending], where it gates every later
   position on the key until the client acts.  So under durability the
   client re-issues the request on a short slice; dispatch re-issue simply
   replaces this transaction's pending counter, and read-only reads are
   idempotent. *)
let read_rpc cl (pending : 'a Rpc.Pending.t) ~(home : node) ~dsts ~mk_msg ~phase ~detail =
  if cl.config.Sss_kv.Config.durability then
    let rec attempt n =
      if n > cl.config.Sss_kv.Config.retry_limit then
        Rpc.stalled ~system:"rococo" ~phase detail;
      if not (node_live cl home) then Rpc.crashed ~system:"rococo" ~node:home.id;
      let req, ivar = Rpc.Pending.fresh pending in
      List.iter (fun dst -> send cl ~src:home.id ~dst (mk_msg req)) dsts;
      match
        Rpc.Pending.await_timeout cl.sim ivar
          ~timeout:(2. *. cl.config.Sss_kv.Config.retry_max)
      with
      | Some r -> r
      | None ->
          Rpc.Pending.forget pending req;
          attempt (n + 1)
    in
    attempt 0
  else begin
    let req, ivar = Rpc.Pending.fresh pending in
    List.iter (fun dst -> send cl ~src:home.id ~dst (mk_msg req)) dsts;
    await_read cl ivar ~phase ~detail
  end

(* Execute every ready piece that can no longer be preceded: the smallest
   positioned ts on the key runs once every still-unpositioned piece is
   guaranteed a larger position (its dispatch counter already exceeds the
   candidate's position number). *)
let rec drain t (node : node) key =
  let c = cell node key in
  match c.ready with
  | [] -> ()
  | (ts, value) :: rest ->
      let could_precede =
        (* disjunction: order-insensitive *)
        (Hashtbl.fold (fun _ d acc -> acc || d <= ts.num) c.pending false
        [@order_ok])
      in
      if not could_precede then begin
        (* authoritative read-modify-write, in the agreed order *)
        if List.hd (Replication.replicas t.repl key) = node.id then begin
          record t (History.Read { txn = ts.owner; key; writer = c.writer });
          record t (History.Install { txn = ts.owner; key })
        end;
        c.value <- value;
        c.writer <- ts.owner;
        c.ready <- rest;
        Sim.Cond.broadcast t.sim node.executed;
        Hashtbl.replace node.done_pieces ts.owner
          (1 + Option.value ~default:0 (Hashtbl.find_opt node.done_pieces ts.owner));
        let round = Option.value ~default:0 (Hashtbl.find_opt node.rounds ts.owner) in
        send t ~src:node.id ~dst:ts.owner.Ids.node (Commit_ack { txn = ts.owner; round });
        drain t node key
      end

let insert_positioned t (node : node) ~txn ~ts ~writes =
  (* Lamport rule: never hand out a dispatch counter at or below a position
     that may already have executed here, or a later transaction could be
     ordered before an already-executed piece. *)
  node.counter <- Stdlib.max node.counter ts.num;
  List.iter
    (fun (key, value) ->
      if Replication.is_replica t.repl node.id key then begin
        let c = cell node key in
        Hashtbl.remove c.pending txn;
        let rec insert = function
          | [] -> [ (ts, value) ]
          | ((ts', _) as hd) :: rest ->
              if ts_compare ts ts' < 0 then (ts, value) :: hd :: rest else hd :: insert rest
        in
        c.ready <- insert c.ready;
        drain t node key
      end)
    writes

let handle_commit t (node : node) ~txn ~ts ~writes ~round =
  match node.wal with
  | None -> insert_positioned t node ~txn ~ts ~writes
  | Some _ when Hashtbl.mem node.seen_commits txn ->
      (* coordinator retry: the position is already durable (or in flight);
         never re-stage — re-acknowledge what has executed so far at the
         newest round so the retry can complete *)
      let prev = Option.value ~default:0 (Hashtbl.find_opt node.rounds txn) in
      let round = Stdlib.max round prev in
      Hashtbl.replace node.rounds txn round;
      let done_ = Option.value ~default:0 (Hashtbl.find_opt node.done_pieces txn) in
      for _ = 1 to done_ do
        send t ~src:node.id ~dst:txn.Ids.node (Commit_ack { txn; round })
      done
  | Some _ ->
      Hashtbl.replace node.rounds txn round;
      Hashtbl.replace node.seen_commits txn ();
      node.counter <- Stdlib.max node.counter ts.num;
      (* stage + append in one event: a fuzzy checkpoint sees the position
         either in [staged] or (after the flush) in the cells *)
      Hashtbl.replace node.staged txn (ts, writes);
      let flush_began = Sim.now t.sim in
      let lsn = log node (RInsert { txn; ts; writes }) in
      if log_sync node lsn && node_live t node then begin
        (match t.obs with
        | Some o ->
            Sss_obs.Obs.observe o "lat.commit.durable" (Sim.now t.sim -. flush_began)
        | None -> ());
        Hashtbl.remove node.staged txn;
        insert_positioned t node ~txn ~ts ~writes
      end

(* Durability only: a dispatched-but-unpositioned piece gates every later
   piece on its key ([could_precede]).  If the driving client is gone — its
   home crashed, or it abandoned the attempt — nothing will ever position
   or cancel the piece, so each one gets a watchdog that periodically asks
   the owner's home whether the transaction is still in flight and
   withdraws the piece once it is not.  A live answer resets the retry
   budget; only sustained silence stalls. *)
let spawn_alive_watchdog t (node : node) ~txn ~key =
  let still_pending () =
    node_live t node
    &&
    match Hashtbl.find_opt node.store key with
    | Some c -> Hashtbl.mem c.pending txn
    | None -> false
  in
  Sim.spawn t.sim (fun () ->
      let rec loop attempt =
        Sim.sleep t.sim (2. *. t.config.Sss_kv.Config.retry_max);
        if still_pending () then
          if attempt >= t.config.Sss_kv.Config.retry_limit then
            Rpc.stalled ~system:"rococo" ~phase:"alive query" (Ids.txn_to_string txn)
          else begin
            let req, slot = Rpc.Pending.fresh node.pending_alive in
            send t ~src:node.id ~dst:txn.Ids.node (Alive_query { req; txn });
            match
              Rpc.Pending.await_timeout t.sim slot
                ~timeout:t.config.Sss_kv.Config.retry_max
            with
            | Some false when still_pending () ->
                (* orphaned: withdraw the piece so it stops gating drains *)
                let c = cell node key in
                Hashtbl.remove c.pending txn;
                drain t node key;
                Sim.Cond.broadcast t.sim node.executed
            | Some false -> ()
            | Some true -> loop 0
            | None ->
                Rpc.Pending.forget node.pending_alive req;
                loop (attempt + 1)
          end
      in
      try loop 0 with Rpc.Crashed _ -> ())

let rec dispatch t (node : node) ~src payload =
  match payload with
  | Tracked { token; inner } ->
      Network.send t.net ~prio:(priority (Delivered { token })) ~src:node.id ~dst:src
        (Delivered { token });
      if Reliable.receive t.rel token then dispatch t node ~src inner
  | Delivered { token } -> Reliable.delivered t.rel token
  | Dispatch { req; txn; key } ->
      let c = cell node key in
      node.counter <- node.counter + 1;
      Hashtbl.replace c.pending txn node.counter;
      if node.wal = None then
        send t ~src:node.id ~dst:src
          (Dispatch_ack { req; counter = node.counter; value = c.value; writer = c.writer })
      else begin
        (* the counter promise must survive a crash before the client may
           build a position on it: recovery rebuilds [pending] from these
           records, and [could_precede] gating is unsound without them *)
        let counter = node.counter and value = c.value and writer = c.writer in
        let lsn = log node (RDispatch { txn; key; counter }) in
        spawn_alive_watchdog t node ~txn ~key;
        if log_sync node lsn && node_live t node then
          send t ~src:node.id ~dst:src (Dispatch_ack { req; counter; value; writer })
      end
  | Dispatch_ack { req; counter; value; writer } ->
      Rpc.Pending.resolve t.sim node.pending_disp req (counter, value, writer)
  | Commit { txn; ts; writes; round } -> handle_commit t node ~txn ~ts ~writes ~round
  | Commit_ack { txn; round } -> (
      match Hashtbl.find_opt node.ack_boxes txn with
      | Some box when round = box.ack_round ->
          box.ack_count <- box.ack_count + 1;
          if box.ack_count = box.ack_expect && not (Sim.Ivar.is_filled box.ack_done) then
            Sim.Ivar.fill t.sim box.ack_done ()
      | Some _ | None -> ())
  | Ro_read { req; key } ->
      (* wait until no buffered update piece conflicts with the read *)
      let c = cell node key in
      let _ =
        Sim.Cond.await_timeout t.sim node.executed ~timeout:0.005 (fun () ->
            Hashtbl.length c.pending = 0 && c.ready = [])
      in
      let stable = Hashtbl.length c.pending = 0 && c.ready = [] in
      send t ~src:node.id ~dst:src (Ro_ret { req; value = c.value; writer = c.writer; stable })
  | Ro_ret { req; value; writer; stable } ->
      Rpc.Pending.resolve t.sim node.pending_ro req (value, writer, stable)
  | Cancel { txn; keys } ->
      List.iter
        (fun key ->
          if Replication.is_replica t.repl node.id key then begin
            let c = cell node key in
            Hashtbl.remove c.pending txn;
            drain t node key;
            Sim.Cond.broadcast t.sim node.executed
          end)
        keys
  | Alive_query { req; txn } ->
      send t ~src:node.id ~dst:src (Alive_ret { req; alive = Hashtbl.mem node.inflight txn })
  | Alive_ret { req; alive } -> Rpc.Pending.resolve t.sim node.pending_alive req alive

let create sim (config : Sss_kv.Config.t) =
  let repl =
    Replication.create ~nodes:config.nodes ~degree:config.replication_degree
      ~total_keys:config.total_keys
  in
  let rng = Prng.create ~seed:config.seed in
  let net = Network.create sim rng ~nodes:config.nodes ~config:config.network in
  let nodes =
    Array.init config.nodes (fun id ->
        {
          id;
          store = Hashtbl.create 256;
          counter = 0;
          gen = Ids.Gen.create id;
          pending_disp = Rpc.Pending.create ();
          pending_ro = Rpc.Pending.create ();
          ack_boxes = Hashtbl.create 64;
          executed = Sim.Cond.create ();
          alive = true;
          staged = Hashtbl.create 16;
          seen_commits = Hashtbl.create 64;
          done_pieces = Hashtbl.create 64;
          rounds = Hashtbl.create 16;
          inflight = Hashtbl.create 16;
          pending_alive = Rpc.Pending.create ();
          wal = None;
        })
  in
  Array.iter
    (fun (node : node) ->
      Array.iter
        (fun k ->
          Hashtbl.replace node.store k
            {
              value = Printf.sprintf "init:%d" k;
              writer = Ids.genesis;
              pending = Hashtbl.create 8;
              ready = [];
            })
        (Replication.keys_at repl node.id))
    nodes;
  let rel =
    Reliable.create sim net
      ~retry:
        {
          Reliable.initial = config.retry_initial;
          max = config.retry_max;
          limit = config.retry_limit;
        }
  in
  let obs =
    if config.observe then Some (Sss_obs.Obs.create ~capacity:config.trace_capacity ())
    else None
  in
  (match obs with
  | Some o -> Network.set_observer net (Some { Network.obs = o; kind_of = message_kind })
  | None -> ());
  Reliable.set_obs rel obs;
  let t =
    { sim; config; repl; net; rel; nodes;
      history = History.create ~enabled:config.record_history (); obs }
  in
  Array.iter
    (fun (n : node) ->
      Network.set_handler net n.id (fun ~src payload -> dispatch t n ~src payload))
    nodes;
  if config.durability then
    Array.iter
      (fun (n : node) ->
        let dev =
          Iodev.create sim ~op_latency:config.fsync_latency
            ~bandwidth:config.disk_bandwidth
        in
        let w =
          Sss_storage.Storage.create sim dev ~record_bytes:logrec_bytes
            ~snapshot:(fun () -> snap_of t.nodes.(n.id))
            ~snapshot_bytes:snap_bytes ?obs:t.obs ()
        in
        n.wal <- Some w;
        Sss_storage.Storage.start_checkpoints w ~interval:config.checkpoint_interval)
      nodes;
  t

(* ------------- crash / recovery (durability mode) ------------- *)

let load_snap (node : node) (s : snap) =
  List.iter
    (fun (k, (value, writer, pending, ready)) ->
      let c = cell node k in
      c.value <- value;
      c.writer <- writer;
      List.iter (fun (txn, d) -> Hashtbl.replace c.pending txn d) pending;
      c.ready <- ready)
    s.s_cells;
  node.counter <- s.s_counter;
  List.iter (fun (txn, sw) -> Hashtbl.replace node.staged txn sw) s.s_staged;
  List.iter (fun (txn, n) -> Hashtbl.replace node.done_pieces txn n) s.s_done;
  List.iter (fun txn -> Hashtbl.replace node.seen_commits txn ()) s.s_seen

(* Redo one durable record into the volatile tables; positioned
   transactions land in [staged] and re-execute after replay, which never
   records history (first execution already did). *)
let replay_record (node : node) = function
  | RDispatch { txn; key; counter } -> (
      node.counter <- Stdlib.max node.counter counter;
      match Hashtbl.find_opt node.store key with
      | Some c -> Hashtbl.replace c.pending txn counter
      | None -> ())
  | RInsert { txn; ts; writes } ->
      Hashtbl.replace node.seen_commits txn ();
      node.counter <- Stdlib.max node.counter ts.num;
      Hashtbl.replace node.staged txn (ts, writes)

let crash_node t id =
  if t.config.Sss_kv.Config.durability then begin
    let old = t.nodes.(id) in
    old.alive <- false;
    (match old.wal with Some w -> Sss_storage.Storage.crash w | None -> ());
    let e = Rpc.Crashed { system = "rococo"; node = id } in
    Rpc.Pending.poison_all t.sim old.pending_disp e;
    Rpc.Pending.poison_all t.sim old.pending_ro e;
    Rpc.Pending.poison_all t.sim old.pending_alive e;
    (* wake commit fibers parked on acks; they observe the record swap and
       raise *)
    List.iter
      (fun (_, (b : ack_box)) ->
        if not (Sim.Ivar.is_filled b.ack_done) then Sim.Ivar.fill t.sim b.ack_done ())
      (sorted_bindings old.ack_boxes);
    let fresh =
      {
        id;
        store = Hashtbl.create 256;
        counter = 0;
        (* transaction ids name client requests, not node state: the
           counter persists so a restarted node never re-mints an id *)
        gen = old.gen;
        pending_disp = Rpc.Pending.create ();
        pending_ro = Rpc.Pending.create ();
        ack_boxes = Hashtbl.create 64;
        executed = Sim.Cond.create ();
        alive = false;
        staged = Hashtbl.create 16;
        seen_commits = Hashtbl.create 64;
        done_pieces = Hashtbl.create 64;
        rounds = Hashtbl.create 16;
        inflight = Hashtbl.create 16;
        pending_alive = Rpc.Pending.create ();
        wal = old.wal;
      }
    in
    Array.iter
      (fun k ->
        Hashtbl.replace fresh.store k
          {
            value = Printf.sprintf "init:%d" k;
            writer = Ids.genesis;
            pending = Hashtbl.create 8;
            ready = [];
          })
      (Replication.keys_at t.repl id);
    t.nodes.(id) <- fresh;
    Network.set_handler t.net id (fun ~src payload -> dispatch t fresh ~src payload)
  end

let restart_node t id =
  let node = t.nodes.(id) in
  match node.wal with
  | None -> Network.recover t.net id
  | Some w ->
      Sss_storage.Storage.recover w (fun ~recovered ~replay ->
          Sim.run_fiber (fun () ->
              (match recovered with Some s -> load_snap node s | None -> ());
              List.iter (replay_record node) replay;
              node.alive <- true;
              Network.recover t.net id;
              (* re-execute positioned transactions whose insert was cut
                 short, in final-position order; their first durable record
                 fixes the order, so this reconstructs the same state *)
              List.iter
                (fun (txn, (ts, writes)) ->
                  Hashtbl.remove node.staged txn;
                  insert_positioned t node ~txn ~ts ~writes)
                (List.sort
                   (fun (_, (a, _)) (_, (b, _)) -> ts_compare a b)
                   (sorted_bindings node.staged));
              let keys =
                List.sort Int.compare
                  (Hashtbl.fold (fun k _ acc -> k :: acc) node.store [] [@order_ok])
              in
              (* gates may have vanished with the crash (their Cancel was
                 volatile); drains + watchdogs settle every restored key *)
              List.iter (fun key -> drain t node key) keys;
              Sss_storage.Storage.start_checkpoints w
                ~interval:t.config.Sss_kv.Config.checkpoint_interval;
              List.iter
                (fun key ->
                  let c = cell node key in
                  List.iter
                    (fun (txn, _) -> spawn_alive_watchdog t node ~txn ~key)
                    (sorted_bindings c.pending))
                keys))

let begin_txn cl ~node ~read_only =
  let home = cl.nodes.(node) in
  if not home.alive then Rpc.crashed ~system:"rococo" ~node;
  let id = Ids.Gen.next home.gen in
  if cl.config.Sss_kv.Config.durability && not read_only then
    (* the aliveness protocol answers for this transaction from here until
       commit/abort deregisters it (or a crash wipes the table) *)
    Hashtbl.replace home.inflight id ();
  record cl (History.Begin { txn = id; ro = read_only; node });
  obs_begin cl ~txn:id ~node ~ro:read_only;
  { cl; home; id; ro = read_only; rs = []; ws = []; counters = []; finished = false;
    begin_at = Sim.now cl.sim }

(* Update-transaction read = round-1 dispatch of the piece; read-only reads
   are handled in [commit] (the round-based protocol needs the full key
   set). *)
let read h key =
  if h.finished then invalid_arg "Rococo: read on a finished transaction";
  match List.assoc_opt key h.ws with
  | Some v -> v
  | None when h.ro -> (
      match List.assoc_opt key h.rs with
      | Some v -> v
      | None ->
          let value, _writer, _stable =
            read_rpc h.cl h.home.pending_ro ~home:h.home
              ~dsts:(Replication.replicas h.cl.repl key)
              ~mk_msg:(fun req -> Ro_read { req; key })
              ~phase:"ro read"
              ~detail:(Printf.sprintf "key %d in %s" key (Ids.txn_to_string h.id))
          in
          h.rs <- (key, value) :: h.rs;
          value)
  | None ->
      let counter, value, _writer =
        read_rpc h.cl h.home.pending_disp ~home:h.home
          ~dsts:(Replication.replicas h.cl.repl key)
          ~mk_msg:(fun req -> Dispatch { req; txn = h.id; key })
          ~phase:"dispatch"
          ~detail:(Printf.sprintf "key %d in %s" key (Ids.txn_to_string h.id))
      in
      h.counters <- counter :: h.counters;
      h.rs <- (key, value) :: h.rs;
      value

let write h key value =
  if h.finished then invalid_arg "Rococo: write on a finished transaction";
  if h.ro then invalid_arg "Rococo: write in a read-only transaction";
  h.ws <- (key, value) :: List.remove_assoc key h.ws

let replica_nodes t keys =
  List.sort_uniq Int.compare (List.concat_map (fun k -> Replication.replicas t.repl k) keys)

let commit_update h =
  let cl = h.cl in
  (* every dispatched key must be written back (deferrable RMW pieces); a
     read without a write is treated as an RMW that rewrites the read
     value *)
  List.iter
    (fun (k, v) -> if not (List.mem_assoc k h.ws) then h.ws <- (k, v) :: h.ws)
    h.rs;
  let ts = { num = List.fold_left Stdlib.max 0 h.counters; owner = h.id } in
  let servers = replica_nodes cl (List.map fst h.ws) in
  let box =
    {
      (* one ack per executed piece per replica *)
      ack_expect =
        List.fold_left
          (fun acc (k, _) -> acc + List.length (Replication.replicas cl.repl k))
          0 h.ws;
      ack_count = 0;
      ack_round = 0;
      ack_done = Sim.Ivar.create ();
    }
  in
  Hashtbl.replace h.home.ack_boxes h.id box;
  let broadcast round =
    List.iter
      (fun dst ->
        send cl ~src:h.home.id ~dst (Commit { txn = h.id; ts; writes = h.ws; round }))
      servers
  in
  if not cl.config.Sss_kv.Config.durability then begin
    broadcast 0;
    match
      Sim.Ivar.read_timeout cl.sim box.ack_done
        ~timeout:cl.config.Sss_kv.Config.ack_timeout
    with
    | Some () -> ()
    | None -> Rpc.stalled ~system:"rococo" ~phase:"commit ack" (Ids.txn_to_string h.id)
  end
  else begin
    (* a server crash can eat Commit or its acks; retry in numbered rounds
       so re-acknowledgements of stale rounds are never double-counted *)
    let rec rounds round =
      if round > cl.config.Sss_kv.Config.retry_limit then
        Rpc.stalled ~system:"rococo" ~phase:"commit ack" (Ids.txn_to_string h.id);
      if not (node_live cl h.home) then Rpc.crashed ~system:"rococo" ~node:h.home.id;
      box.ack_round <- round;
      box.ack_count <- 0;
      broadcast round;
      match
        Sim.Ivar.read_timeout cl.sim box.ack_done
          ~timeout:(2. *. cl.config.Sss_kv.Config.retry_max)
      with
      | Some () -> ()
      | None -> rounds (round + 1)
    in
    rounds 0;
    if not (node_live cl h.home) then Rpc.crashed ~system:"rococo" ~node:h.home.id
  end;
  Hashtbl.remove h.home.ack_boxes h.id;
  Hashtbl.remove h.home.inflight h.id;
  record cl (History.Commit { txn = h.id; ws = List.map fst h.ws });
  obs_commit cl ~txn:h.id ~node:h.home.id ~ro:false ~began:h.begin_at;
  true

(* Round-based read-only: re-read the key set until two consecutive rounds
   observe the same versions; abort after a bounded number of attempts. *)
let commit_read_only h =
  let cl = h.cl in
  let keys = List.rev_map fst h.rs in
  let read_round () =
    List.map
      (fun key ->
        let value, writer, stable =
          read_rpc cl h.home.pending_ro ~home:h.home
            ~dsts:(Replication.replicas cl.repl key)
            ~mk_msg:(fun req -> Ro_read { req; key })
            ~phase:"ro round"
            ~detail:(Printf.sprintf "key %d in %s" key (Ids.txn_to_string h.id))
        in
        (key, value, writer, stable))
      keys
  in
  let rec attempt n prev =
    if n = 0 then None
    else
      let round = read_round () in
      (* Accept only when both rounds saw every key quiescent (no buffered
         pieces anywhere in between) and the same versions: a writer whose
         per-key executions straddle the rounds is in flight on some key
         during both, so it cannot slip through unnoticed. *)
      let same =
        List.for_all2
          (fun (_, _, w1, s1) (_, _, w2, s2) -> s1 && s2 && Ids.equal_txn w1 w2)
          prev round
      in
      if same then Some round else attempt (n - 1) round
  in
  let first = read_round () in
  match attempt 8 first with
  | Some round ->
      List.iter
        (fun (key, _, writer, _) -> record cl (History.Read { txn = h.id; key; writer }))
        round;
      record cl (History.Commit { txn = h.id; ws = [] });
      obs_commit cl ~txn:h.id ~node:h.home.id ~ro:true ~began:h.begin_at;
      true
  | None ->
      record cl (History.Abort { txn = h.id });
      obs_abort cl ~txn:h.id ~node:h.home.id ~ro:true ~reason:"ro-rounds";
      false

let commit h =
  if h.finished then invalid_arg "Rococo: commit on a finished transaction";
  h.finished <- true;
  if h.ro then
    if h.rs = [] then (
      record h.cl (History.Commit { txn = h.id; ws = [] });
      obs_commit h.cl ~txn:h.id ~node:h.home.id ~ro:true ~began:h.begin_at;
      true)
    else commit_read_only h
  else if h.ws = [] && h.rs = [] then (
    Hashtbl.remove h.home.inflight h.id;
    record h.cl (History.Commit { txn = h.id; ws = [] });
    obs_commit h.cl ~txn:h.id ~node:h.home.id ~ro:false ~began:h.begin_at;
    true)
  else commit_update h

let abort h =
  if h.finished then invalid_arg "Rococo: abort on a finished transaction";
  h.finished <- true;
  (* deregister first: even if the Cancel below is lost to a crash, the
     aliveness watchdogs now see a dead transaction and withdraw its
     pieces *)
  Hashtbl.remove h.home.inflight h.id;
  (* withdraw any dispatched pieces so they never gate other transactions *)
  let keys = List.map fst h.rs in
  if (not h.ro) && keys <> [] then
    List.iter
      (fun dst -> send h.cl ~src:h.home.id ~dst (Cancel { txn = h.id; keys }))
      (replica_nodes h.cl keys);
  record h.cl (History.Abort { txn = h.id });
  obs_abort h.cl ~txn:h.id ~node:h.home.id ~ro:h.ro ~reason:"client"

let txn_id h = h.id

let history t = t.history

let obs t = t.obs

let repl t = t.repl

let network t = t.net

(* Resident words of every node's store, under the same heap model as
   [Sss_data.Mvstore.mem_words]: hash buckets + binding boxes, the cell
   record with its [pending] counter table and [ready] piece list, and the
   boxed value strings.  Cold path (end-of-run gauge); the sum is
   bucket-order-insensitive. *)
let store_words t =
  let str_words len = 1 + ((len + 8) / 8) in
  Array.fold_left
    (fun acc (n : node) ->
      let st = (Hashtbl.stats n.store [@order_ok]) in
      (Hashtbl.fold
         (fun _ (c : cell) a ->
           let a = a + 6 + str_words (String.length c.value) in
           let a = a + 16 + (6 * Hashtbl.length c.pending) in
           List.fold_left
             (fun a (_, piece) -> a + 3 + 3 + str_words (String.length piece))
             a c.ready)
         n.store
         (acc + st.Hashtbl.num_buckets + (4 * st.Hashtbl.num_bindings))
       [@order_ok]))
    0 t.nodes

let quiescent t =
  let problems = ref [] in
  Array.iter
    (fun (n : node) ->
      (* report in sorted key order: the text must not depend on bucket order *)
      List.iter
        (fun key ->
          let c = Hashtbl.find n.store key in
          if Hashtbl.length c.pending > 0 || c.ready <> [] then
            problems :=
              Printf.sprintf "node %d: key %d has %d pending / %d ready pieces" n.id key
                (Hashtbl.length c.pending) (List.length c.ready)
              :: !problems)
        (List.sort Int.compare
           (Hashtbl.fold (fun k _ acc -> k :: acc) n.store [] [@order_ok])))
    t.nodes;
  match !problems with [] -> Ok () | ps -> Error (String.concat "; " ps)
