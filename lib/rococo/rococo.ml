(* ROCOCO-style two-round concurrency control (Mu et al., OSDI'14),
   re-implemented on the same substrate as SSS, as the paper does for its
   evaluation (§V, Figures 6 and 8).

   The evaluation configures ROCOCO so that every piece is deferrable; we
   implement that mode:

   - Update transactions never abort.  Round 1 (dispatch) places one piece
     per accessed key on the key's server and collects ordering
     information (a per-server logical counter, standing in for ROCOCO's
     collected dependencies).  Round 2 (commit) distributes the
     transaction's final position — the maximum collected counter, with
     the transaction id as tie-break — and every server executes the
     buffered pieces of a key in final-position order, holding back a
     piece while a dispatched-but-not-yet-positioned transaction could
     still be ordered earlier.  This reorder-instead-of-abort execution is
     the essence of ROCOCO's deferrable pieces.
   - A piece is a server-side read-modify-write: the client-visible read
     returns the dispatch-time value, while the authoritative read happens
     at execution time in the agreed order (recorded in the history, which
     is what the consistency checker validates).
   - Read-only transactions are not abort-free (the property the paper
     contrasts with SSS): each read waits until the key has no buffered
     update pieces, and the transaction re-reads its whole key set until
     two consecutive rounds observe identical versions, aborting after a
     bounded number of attempts.  Their cost grows with the number of read
     keys and with contention — the effect Figure 8 measures.

   Replication is disabled in the paper's ROCOCO comparisons (consensus
   replication is out of scope); we honour [replication_degree] but the
   experiments use 1. *)

open Sss_sim
open Sss_data
open Sss_net
open Sss_consistency

type ts = { num : int; owner : Ids.txn }

let ts_compare a b =
  let c = Int.compare a.num b.num in
  if c <> 0 then c else Ids.compare_txn a.owner b.owner

type msg =
  | Dispatch of { req : int; txn : Ids.txn; key : Ids.key }
  | Dispatch_ack of { req : int; counter : int; value : string; writer : Ids.txn }
  | Commit of { txn : Ids.txn; ts : ts; writes : (Ids.key * string) list }
  | Commit_ack of { txn : Ids.txn }
  | Ro_read of { req : int; key : Ids.key }
  | Ro_ret of { req : int; value : string; writer : Ids.txn; stable : bool }
  | Cancel of { txn : Ids.txn; keys : Ids.key list }
  | Tracked of { token : int; inner : msg }
  | Delivered of { token : int }

let rec priority = function
  | Commit _ | Commit_ack _ | Cancel _ -> 60
  | Dispatch _ | Dispatch_ack _ | Ro_read _ | Ro_ret _ -> 100
  | Tracked { inner; _ } -> priority inner
  | Delivered _ -> 10

let rec message_kind = function
  | Dispatch _ -> "dispatch"
  | Dispatch_ack _ -> "dispatch_ack"
  | Commit _ -> "commit"
  | Commit_ack _ -> "commit_ack"
  | Ro_read _ -> "ro_read"
  | Ro_ret _ -> "ro_return"
  | Cancel _ -> "cancel"
  | Tracked { inner; _ } -> message_kind inner
  | Delivered _ -> "delivered"

type cell = {
  mutable value : string;
  mutable writer : Ids.txn;
  (* dispatched pieces not yet positioned: txn -> local dispatch counter *)
  pending : (Ids.txn, int) Hashtbl.t;
  (* positioned pieces awaiting execution, sorted by ts *)
  mutable ready : (ts * string) list;
}

type ack_box = { ack_expect : int; mutable ack_count : int; ack_done : unit Sim.Ivar.t }

type node = {
  id : Ids.node;
  store : (Ids.key, cell) Hashtbl.t;
  mutable counter : int;
  gen : Ids.Gen.t;
  pending_disp : (int * string * Ids.txn) Rpc.Pending.t;
  pending_ro : (string * Ids.txn * bool) Rpc.Pending.t;
  ack_boxes : (Ids.txn, ack_box) Hashtbl.t;
  executed : Sim.Cond.t;
}

type cluster = {
  sim : Sim.t;
  config : Sss_kv.Config.t;
  repl : Replication.t;
  net : msg Network.t;
  rel : msg Reliable.t;
  nodes : node array;
  history : History.t;
  obs : Sss_obs.Obs.t option;
}

type handle = {
  cl : cluster;
  home : node;
  id : Ids.txn;
  ro : bool;
  mutable rs : (Ids.key * string) list;  (* dispatch-time reads, client-visible *)
  mutable ws : (Ids.key * string) list;
  mutable counters : int list;  (* collected in round 1 *)
  mutable finished : bool;
  begin_at : float;
}

let record t event = History.record t.history ~at:(Sim.now t.sim) event

let obs_begin t ~txn ~node ~ro =
  match t.obs with
  | Some o ->
      Sss_obs.Obs.incr o (if ro then "txn.begin.ro" else "txn.begin.update");
      Sss_obs.Obs.emit o ~at:(Sim.now t.sim)
        (Sss_obs.Obs.Txn_begin { txn = Ids.txn_to_string txn; node; ro })
  | None -> ()

let obs_commit t ~txn ~node ~ro ~began =
  match t.obs with
  | Some o ->
      let cls = if ro then "ro" else "update" in
      Sss_obs.Obs.incr o ("txn.commit." ^ cls);
      Sss_obs.Obs.observe o ("lat.txn." ^ cls) (Sim.now t.sim -. began);
      Sss_obs.Obs.emit o ~at:(Sim.now t.sim)
        (Sss_obs.Obs.Txn_commit { txn = Ids.txn_to_string txn; node; ro })
  | None -> ()

let obs_abort t ~txn ~node ~ro ~reason =
  match t.obs with
  | Some o ->
      Sss_obs.Obs.incr o ("txn.abort." ^ reason);
      Sss_obs.Obs.emit o ~at:(Sim.now t.sim)
        (Sss_obs.Obs.Txn_abort { txn = Ids.txn_to_string txn; node; ro; reason })
  | None -> ()

let send t ~src ~dst payload =
  let prio = priority payload in
  if t.config.Sss_kv.Config.fault_tolerance then
    Reliable.send t.rel ~prio ~src ~dst (fun token -> Tracked { token; inner = payload })
  else Network.send t.net ~prio ~src ~dst payload

let await_read cl ivar ~phase ~detail =
  if cl.config.Sss_kv.Config.fault_tolerance then
    match Sim.Ivar.read_timeout cl.sim ivar ~timeout:cl.config.Sss_kv.Config.ack_timeout with
    | Some r -> r
    | None -> Rpc.stalled ~system:"rococo" ~phase detail
  else Sim.Ivar.read cl.sim ivar

let cell (node : node) key =
  match Hashtbl.find_opt node.store key with
  | Some c -> c
  | None -> invalid_arg "Rococo: unknown key"

(* Execute every ready piece that can no longer be preceded: the smallest
   positioned ts on the key runs once every still-unpositioned piece is
   guaranteed a larger position (its dispatch counter already exceeds the
   candidate's position number). *)
let rec drain t (node : node) key =
  let c = cell node key in
  match c.ready with
  | [] -> ()
  | (ts, value) :: rest ->
      let could_precede =
        (* disjunction: order-insensitive *)
        (Hashtbl.fold (fun _ d acc -> acc || d <= ts.num) c.pending false
        [@order_ok])
      in
      if not could_precede then begin
        (* authoritative read-modify-write, in the agreed order *)
        if List.hd (Replication.replicas t.repl key) = node.id then begin
          record t (History.Read { txn = ts.owner; key; writer = c.writer });
          record t (History.Install { txn = ts.owner; key })
        end;
        c.value <- value;
        c.writer <- ts.owner;
        c.ready <- rest;
        Sim.Cond.broadcast t.sim node.executed;
        (match Hashtbl.find_opt node.ack_boxes ts.owner with
        | Some _ -> ()  (* coordinator-local bookkeeping happens on ack *)
        | None -> ());
        send t ~src:node.id ~dst:ts.owner.Ids.node (Commit_ack { txn = ts.owner });
        drain t node key
      end

let handle_commit t (node : node) ~txn ~ts ~writes =
  (* Lamport rule: never hand out a dispatch counter at or below a position
     that may already have executed here, or a later transaction could be
     ordered before an already-executed piece. *)
  node.counter <- Stdlib.max node.counter ts.num;
  List.iter
    (fun (key, value) ->
      if Replication.is_replica t.repl node.id key then begin
        let c = cell node key in
        Hashtbl.remove c.pending txn;
        let rec insert = function
          | [] -> [ (ts, value) ]
          | ((ts', _) as hd) :: rest ->
              if ts_compare ts ts' < 0 then (ts, value) :: hd :: rest else hd :: insert rest
        in
        c.ready <- insert c.ready;
        drain t node key
      end)
    writes

let rec dispatch t (node : node) ~src payload =
  match payload with
  | Tracked { token; inner } ->
      Network.send t.net ~prio:(priority (Delivered { token })) ~src:node.id ~dst:src
        (Delivered { token });
      if Reliable.receive t.rel token then dispatch t node ~src inner
  | Delivered { token } -> Reliable.delivered t.rel token
  | Dispatch { req; txn; key } ->
      let c = cell node key in
      node.counter <- node.counter + 1;
      Hashtbl.replace c.pending txn node.counter;
      send t ~src:node.id ~dst:src
        (Dispatch_ack { req; counter = node.counter; value = c.value; writer = c.writer })
  | Dispatch_ack { req; counter; value; writer } ->
      Rpc.Pending.resolve t.sim node.pending_disp req (counter, value, writer)
  | Commit { txn; ts; writes } -> handle_commit t node ~txn ~ts ~writes
  | Commit_ack { txn } -> (
      match Hashtbl.find_opt node.ack_boxes txn with
      | Some box ->
          box.ack_count <- box.ack_count + 1;
          if box.ack_count = box.ack_expect && not (Sim.Ivar.is_filled box.ack_done) then
            Sim.Ivar.fill t.sim box.ack_done ()
      | None -> ())
  | Ro_read { req; key } ->
      (* wait until no buffered update piece conflicts with the read *)
      let c = cell node key in
      let _ =
        Sim.Cond.await_timeout t.sim node.executed ~timeout:0.005 (fun () ->
            Hashtbl.length c.pending = 0 && c.ready = [])
      in
      let stable = Hashtbl.length c.pending = 0 && c.ready = [] in
      send t ~src:node.id ~dst:src (Ro_ret { req; value = c.value; writer = c.writer; stable })
  | Ro_ret { req; value; writer; stable } ->
      Rpc.Pending.resolve t.sim node.pending_ro req (value, writer, stable)
  | Cancel { txn; keys } ->
      List.iter
        (fun key ->
          if Replication.is_replica t.repl node.id key then begin
            let c = cell node key in
            Hashtbl.remove c.pending txn;
            drain t node key;
            Sim.Cond.broadcast t.sim node.executed
          end)
        keys

let create sim (config : Sss_kv.Config.t) =
  let repl =
    Replication.create ~nodes:config.nodes ~degree:config.replication_degree
      ~total_keys:config.total_keys
  in
  let rng = Prng.create ~seed:config.seed in
  let net = Network.create sim rng ~nodes:config.nodes ~config:config.network in
  let nodes =
    Array.init config.nodes (fun id ->
        {
          id;
          store = Hashtbl.create 256;
          counter = 0;
          gen = Ids.Gen.create id;
          pending_disp = Rpc.Pending.create ();
          pending_ro = Rpc.Pending.create ();
          ack_boxes = Hashtbl.create 64;
          executed = Sim.Cond.create ();
        })
  in
  Array.iter
    (fun (node : node) ->
      Array.iter
        (fun k ->
          Hashtbl.replace node.store k
            {
              value = Printf.sprintf "init:%d" k;
              writer = Ids.genesis;
              pending = Hashtbl.create 8;
              ready = [];
            })
        (Replication.keys_at repl node.id))
    nodes;
  let rel =
    Reliable.create sim net
      ~retry:
        {
          Reliable.initial = config.retry_initial;
          max = config.retry_max;
          limit = config.retry_limit;
        }
  in
  let obs =
    if config.observe then Some (Sss_obs.Obs.create ~capacity:config.trace_capacity ())
    else None
  in
  (match obs with
  | Some o -> Network.set_observer net (Some { Network.obs = o; kind_of = message_kind })
  | None -> ());
  Reliable.set_obs rel obs;
  let t =
    { sim; config; repl; net; rel; nodes;
      history = History.create ~enabled:config.record_history (); obs }
  in
  Array.iter
    (fun (n : node) ->
      Network.set_handler net n.id (fun ~src payload -> dispatch t n ~src payload))
    nodes;
  t

let begin_txn cl ~node ~read_only =
  let home = cl.nodes.(node) in
  let id = Ids.Gen.next home.gen in
  record cl (History.Begin { txn = id; ro = read_only; node });
  obs_begin cl ~txn:id ~node ~ro:read_only;
  { cl; home; id; ro = read_only; rs = []; ws = []; counters = []; finished = false;
    begin_at = Sim.now cl.sim }

(* Update-transaction read = round-1 dispatch of the piece; read-only reads
   are handled in [commit] (the round-based protocol needs the full key
   set). *)
let read h key =
  if h.finished then invalid_arg "Rococo: read on a finished transaction";
  match List.assoc_opt key h.ws with
  | Some v -> v
  | None when h.ro -> (
      match List.assoc_opt key h.rs with
      | Some v -> v
      | None ->
          let req, ivar = Rpc.Pending.fresh h.home.pending_ro in
          List.iter
            (fun dst -> send h.cl ~src:h.home.id ~dst (Ro_read { req; key }))
            (Replication.replicas h.cl.repl key);
          let value, _writer, _stable =
            await_read h.cl ivar ~phase:"ro read"
              ~detail:(Printf.sprintf "key %d in %s" key (Ids.txn_to_string h.id))
          in
          h.rs <- (key, value) :: h.rs;
          value)
  | None ->
      let req, ivar = Rpc.Pending.fresh h.home.pending_disp in
      List.iter
        (fun dst -> send h.cl ~src:h.home.id ~dst (Dispatch { req; txn = h.id; key }))
        (Replication.replicas h.cl.repl key);
      let counter, value, _writer =
        await_read h.cl ivar ~phase:"dispatch"
          ~detail:(Printf.sprintf "key %d in %s" key (Ids.txn_to_string h.id))
      in
      h.counters <- counter :: h.counters;
      h.rs <- (key, value) :: h.rs;
      value

let write h key value =
  if h.finished then invalid_arg "Rococo: write on a finished transaction";
  if h.ro then invalid_arg "Rococo: write in a read-only transaction";
  h.ws <- (key, value) :: List.remove_assoc key h.ws

let replica_nodes t keys =
  List.sort_uniq Int.compare (List.concat_map (fun k -> Replication.replicas t.repl k) keys)

let commit_update h =
  let cl = h.cl in
  (* every dispatched key must be written back (deferrable RMW pieces); a
     read without a write is treated as an RMW that rewrites the read
     value *)
  List.iter
    (fun (k, v) -> if not (List.mem_assoc k h.ws) then h.ws <- (k, v) :: h.ws)
    h.rs;
  let ts = { num = List.fold_left Stdlib.max 0 h.counters; owner = h.id } in
  let servers = replica_nodes cl (List.map fst h.ws) in
  let box =
    {
      (* one ack per executed piece per replica *)
      ack_expect =
        List.fold_left
          (fun acc (k, _) -> acc + List.length (Replication.replicas cl.repl k))
          0 h.ws;
      ack_count = 0;
      ack_done = Sim.Ivar.create ();
    }
  in
  Hashtbl.replace h.home.ack_boxes h.id box;
  List.iter
    (fun dst -> send cl ~src:h.home.id ~dst (Commit { txn = h.id; ts; writes = h.ws }))
    servers;
  (match
     Sim.Ivar.read_timeout cl.sim box.ack_done ~timeout:cl.config.Sss_kv.Config.ack_timeout
   with
  | Some () -> ()
  | None -> Rpc.stalled ~system:"rococo" ~phase:"commit ack" (Ids.txn_to_string h.id));
  Hashtbl.remove h.home.ack_boxes h.id;
  record cl (History.Commit { txn = h.id });
  obs_commit cl ~txn:h.id ~node:h.home.id ~ro:false ~began:h.begin_at;
  true

(* Round-based read-only: re-read the key set until two consecutive rounds
   observe the same versions; abort after a bounded number of attempts. *)
let commit_read_only h =
  let cl = h.cl in
  let keys = List.rev_map fst h.rs in
  let read_round () =
    List.map
      (fun key ->
        let req, ivar = Rpc.Pending.fresh h.home.pending_ro in
        List.iter
          (fun dst -> send cl ~src:h.home.id ~dst (Ro_read { req; key }))
          (Replication.replicas cl.repl key);
        let value, writer, stable =
          await_read cl ivar ~phase:"ro round"
            ~detail:(Printf.sprintf "key %d in %s" key (Ids.txn_to_string h.id))
        in
        (key, value, writer, stable))
      keys
  in
  let rec attempt n prev =
    if n = 0 then None
    else
      let round = read_round () in
      (* Accept only when both rounds saw every key quiescent (no buffered
         pieces anywhere in between) and the same versions: a writer whose
         per-key executions straddle the rounds is in flight on some key
         during both, so it cannot slip through unnoticed. *)
      let same =
        List.for_all2
          (fun (_, _, w1, s1) (_, _, w2, s2) -> s1 && s2 && Ids.equal_txn w1 w2)
          prev round
      in
      if same then Some round else attempt (n - 1) round
  in
  let first = read_round () in
  match attempt 8 first with
  | Some round ->
      List.iter
        (fun (key, _, writer, _) -> record cl (History.Read { txn = h.id; key; writer }))
        round;
      record cl (History.Commit { txn = h.id });
      obs_commit cl ~txn:h.id ~node:h.home.id ~ro:true ~began:h.begin_at;
      true
  | None ->
      record cl (History.Abort { txn = h.id });
      obs_abort cl ~txn:h.id ~node:h.home.id ~ro:true ~reason:"ro-rounds";
      false

let commit h =
  if h.finished then invalid_arg "Rococo: commit on a finished transaction";
  h.finished <- true;
  if h.ro then
    if h.rs = [] then (
      record h.cl (History.Commit { txn = h.id });
      obs_commit h.cl ~txn:h.id ~node:h.home.id ~ro:true ~began:h.begin_at;
      true)
    else commit_read_only h
  else if h.ws = [] && h.rs = [] then (
    record h.cl (History.Commit { txn = h.id });
    obs_commit h.cl ~txn:h.id ~node:h.home.id ~ro:false ~began:h.begin_at;
    true)
  else commit_update h

let abort h =
  if h.finished then invalid_arg "Rococo: abort on a finished transaction";
  h.finished <- true;
  (* withdraw any dispatched pieces so they never gate other transactions *)
  let keys = List.map fst h.rs in
  if (not h.ro) && keys <> [] then
    List.iter
      (fun dst -> send h.cl ~src:h.home.id ~dst (Cancel { txn = h.id; keys }))
      (replica_nodes h.cl keys);
  record h.cl (History.Abort { txn = h.id });
  obs_abort h.cl ~txn:h.id ~node:h.home.id ~ro:h.ro ~reason:"client"

let txn_id h = h.id

let history t = t.history

let obs t = t.obs

let repl t = t.repl

let network t = t.net

let quiescent t =
  let problems = ref [] in
  Array.iter
    (fun (n : node) ->
      (* report in sorted key order: the text must not depend on bucket order *)
      List.iter
        (fun key ->
          let c = Hashtbl.find n.store key in
          if Hashtbl.length c.pending > 0 || c.ready <> [] then
            problems :=
              Printf.sprintf "node %d: key %d has %d pending / %d ready pieces" n.id key
                (Hashtbl.length c.pending) (List.length c.ready)
              :: !problems)
        (List.sort Int.compare
           (Hashtbl.fold (fun k _ acc -> k :: acc) n.store [] [@order_ok])))
    t.nodes;
  match !problems with [] -> Ok () | ps -> Error (String.concat "; " ps)
