(** ROCOCO-style two-round concurrency control competitor (§V of the
    paper, Figures 6 and 8).

    Configured as the paper does — every piece deferrable: update
    transactions never abort; their pieces are buffered in round 1 and
    executed in an agreed global order in round 2 (reorder instead of
    abort).  Read-only transactions are the contrast with SSS: they wait
    for buffered conflicting pieces and re-read until two consecutive
    rounds observe identical versions, aborting after a bounded number of
    attempts — so their cost grows with the read-set size and contention
    (the effect Figure 8 measures).

    Deployment parameters are shared with SSS ({!Sss_kv.Config.t}); the
    paper disables replication for ROCOCO comparisons (degree 1). *)

open Sss_data

type cluster

type handle

type msg
(** The ROCOCO wire protocol (abstract; inspect with {!message_kind}). *)

val create : Sss_sim.Sim.t -> Sss_kv.Config.t -> cluster

val begin_txn : cluster -> node:Ids.node -> read_only:bool -> handle

val read : handle -> Ids.key -> string
(** Update transactions: dispatches the key's piece (round 1) and returns
    the dispatch-time value; the authoritative read-modify-write happens at
    execution in the agreed order.  Read-only transactions: a conflict-
    waiting read (the commit then re-validates the whole set). *)

val write : handle -> Ids.key -> string -> unit

val commit : handle -> bool
(** Updates: distributes the final position and waits until every piece
    executed (never aborts).  Read-only: the round-based protocol; [false]
    when it exhausts its attempts under contention. *)

val abort : handle -> unit
(** Withdraws dispatched pieces so they never gate other transactions. *)

val txn_id : handle -> Ids.txn

val history : cluster -> Sss_consistency.History.t

val obs : cluster -> Sss_obs.Obs.t option
(** The observability sink — [Some] iff [Config.observe] was set at
    creation (docs/OBSERVABILITY.md). *)

val quiescent : cluster -> (unit, string) result

val store_words : cluster -> int
(** Resident words of every node's store, under the heap model of
    [Sss_data.Mvstore.mem_words] — the cross-protocol storage-footprint
    gauge of the saturation figure. *)

(** Exposed for the experiment harness. *)

val repl : cluster -> Replication.t

val network : cluster -> msg Sss_net.Network.t
(** The cluster's network, for attaching fault plans ([Sss_chaos.Chaos]). *)

val message_kind : msg -> string
(** Stable lowercase kind name ("dispatch", "commit", …) for
    per-message-type fault rules; transport wrappers report their payload's
    kind. *)

(** {1 Crash & recovery} — durability mode (docs/DURABILITY.md)

    Wired to {!Sss_chaos.Chaos.install}'s [on_crash]/[on_restart] hooks.
    With [Config.durability = false] both are (nearly) no-ops: the NIC
    fault is all there is, and [restart_node] merely reconnects it. *)

val crash_node : cluster -> Ids.node -> unit
(** Discard the node's volatile state: wound every parked waiter with
    {!Sss_net.Rpc.Crashed}, lose the unflushed log tail, and swap in a
    pristine node record (not yet [alive]).  Bare callback — safe from
    {!Sss_chaos.Chaos} event position. *)

val restart_node : cluster -> Ids.node -> unit
(** Redo recovery: reload the last checkpoint, replay the durable log
    tail (dispatched-piece counters and positioned write sets), re-execute
    positioned transactions cut short by the crash in final-position
    order, reconnect the NIC, and spawn aliveness watchdogs that withdraw
    restored pieces whose driving client no longer exists. *)
