(** Wire messages of the SSS protocol.

    Sent over {!Sss_net.Network}; [priority] mirrors the paper's optimized
    network component (§V): [Remove] messages unblock external commits and
    therefore jump every queue; 2PC completion traffic ([Decide], [Vote],
    [Ack]) outranks new work. *)

open Sss_data

(* Answer to a [Dquery]: what the coordinator's durable state says about a
   transaction a recovering participant holds in doubt.  [driving] tells the
   participant whether the coordinator is still running the completion
   protocol (Finalize will arrive) or has itself crashed and restarted
   (the participant must self-finalize). *)
type verdict =
  | Vcommitted of { vc : Vclock.t; driving : bool }
  | Vaborted
  | Vundecided

type payload =
  | Read_request of {
      req : int;
      txn : Ids.txn;
      key : Ids.key;
      vc : Vclock.t;
      has_read : bool array;
      is_update : bool;
    }
  | Read_return of {
      req : int;
      value : string;
      vc : Vclock.t;
      writer : Ids.txn;
      propagated : (Ids.txn * int) list;
      parked_coord : Ids.node option;
          (** when the returned version's writer is still parked
              (internally but not externally committed), its coordinator:
              the reading update transaction must chain its own client
              response behind that writer's external commit *)
    }
  | Prepare of {
      txn : Ids.txn;
      coord : Ids.node;
      vc : Vclock.t;
      rs : (Ids.key * Ids.txn) list;
          (** read keys with the version (writer) observed, for validation *)
      ws : (Ids.key * string) list;
      propagated : (Ids.txn * int) list;
    }
  | Vote of { txn : Ids.txn; ok : bool; vc : Vclock.t }
  | Decide of { txn : Ids.txn; vc : Vclock.t; outcome : bool }
  | Ack of { txn : Ids.txn }
  | Finalize of { txn : Ids.txn }
      (** all write replicas acknowledged the pre-commit wait: drop the
          writer entries (re-checking for newly arrived blocking readers)
          and confirm, after which the coordinator informs the client *)
  | Finalize_ack of { txn : Ids.txn }
  | Remove of { txn : Ids.txn }
      (** a read-only transaction committed; drop its snapshot-queue
          entries *)
  | Forward_remove of { reader : Ids.txn; writer : Ids.txn }
      (** relay a [Remove] along a propagation chain: [writer]'s
          coordinator must clean the replicas of [writer]'s write-set *)
  | Wait_finalized of { writer : Ids.txn; req : int }
      (** ask [writer]'s coordinator to answer once [writer] has
          externally committed (immediately if it already has) *)
  | Finalized of { req : int }
  | Dquery of { req : int; txn : Ids.txn }
      (** durability mode: a participant holding [txn] in doubt (prepared
          but without a decide, e.g. after a crash on either side) asks the
          coordinator for the durable outcome *)
  | Doutcome of { req : int; verdict : verdict }  (** answer to a {!Dquery} *)
  | Reader_probe of { reader : Ids.txn }
      (** durability mode: a pre-commit wait blocked on [reader]'s
          snapshot-queue entry asks the reader's home node whether it is
          still running.  Crashes orphan reader entries — a [Remove]
          processed before the crash leaves no durable trace, so redo of a
          prepare re-inserts propagated readers that will never be removed
          again, and a home-node crash kills readers whose [Remove] was
          never sent at all *)
  | Reader_done of { reader : Ids.txn }
      (** answer to a {!Reader_probe}, sent only when the reader has
          finished: the prober treats it exactly like the reader's own
          {!Remove} *)
  | Recovered of { node : int }
      (** durability mode: [node] finished log replay and rejoined.  Each
          receiver runs one eager {!Reader_probe} pass over its own
          snapshot queues — entries orphaned by the crash on keys no
          writer touches again would otherwise linger forever *)
  | Tracked of { token : int; inner : payload }
      (** fault-tolerance mode only: [inner] sent over the at-least-once
          transport ({!Sss_net.Reliable}); the receiver answers every copy
          with {!Delivered} and processes [inner] exactly once *)
  | Delivered of { token : int }  (** receipt for a {!Tracked} envelope *)

let rec priority = function
  | Remove _ | Forward_remove _ | Finalize _ | Finalize_ack _ | Wait_finalized _ | Finalized _ -> 10
  | Decide _ -> 40
  | Vote _ | Ack _ | Dquery _ | Doutcome _ | Reader_probe _ | Reader_done _ | Recovered _ -> 60
  | Read_request _ | Read_return _ | Prepare _ -> 100
  | Tracked { inner; _ } -> priority inner  (* the envelope rides at its payload's rank *)
  | Delivered _ -> 10  (* receipts unblock retry bookkeeping; never queue them *)

(* Wire-size model: 16-byte header, 8 bytes per scalar/txn id, 4 per key,
   payload strings verbatim; vector clocks either raw (8 bytes/entry) or
   varint-compressed (§III-A metadata compression). *)
let vc_size ~compress vc =
  if compress then
    2 + Vcodec.size (Vcodec.encode ~base:(Vclock.zero (Vclock.size vc)) vc)
  else Vcodec.raw_size vc

let rec wire_size ~compress payload =
  let header = 16 in
  let txn = 8 and key = 4 and scalar = 8 in
  let entries l per = List.fold_left (fun acc x -> acc + per x) 0 l in
  header
  +
  match payload with
  | Tracked { inner; _ } -> scalar + wire_size ~compress inner - header
  | Delivered _ -> scalar
  | Read_request { vc; has_read; _ } ->
      scalar + txn + key + vc_size ~compress vc + ((Array.length has_read + 7) / 8)
  | Read_return { value; vc; propagated; _ } ->
      scalar + txn + String.length value + vc_size ~compress vc
      + entries propagated (fun _ -> txn + scalar)
  | Prepare { vc; rs; ws; propagated; _ } ->
      txn + scalar + vc_size ~compress vc
      + entries rs (fun _ -> key + txn)
      + entries ws (fun (_, v) -> key + String.length v)
      + entries propagated (fun _ -> txn + scalar)
  | Vote { vc; _ } -> txn + 1 + vc_size ~compress vc
  | Decide { vc; _ } -> txn + 1 + vc_size ~compress vc
  | Ack _ | Finalize _ | Finalize_ack _ | Remove _ | Reader_probe _ | Reader_done _ -> txn
  | Recovered _ -> scalar
  | Forward_remove _ -> 2 * txn
  | Wait_finalized _ -> txn + scalar
  | Finalized _ -> scalar
  | Dquery _ -> scalar + txn
  | Doutcome { verdict; _ } -> (
      scalar + 1
      + match verdict with Vcommitted { vc; _ } -> vc_size ~compress vc | _ -> 0)

(* [Tracked] is transparent here: fault plans target logical message kinds,
   not the transport envelope. *)
let rec kind_name = function
  | Tracked { inner; _ } -> kind_name inner
  | Delivered _ -> "delivered"
  | Read_request _ -> "read_request"
  | Read_return _ -> "read_return"
  | Prepare _ -> "prepare"
  | Vote _ -> "vote"
  | Decide _ -> "decide"
  | Ack _ -> "ack"
  | Finalize _ -> "finalize"
  | Finalize_ack _ -> "finalize_ack"
  | Wait_finalized _ -> "wait_finalized"
  | Finalized _ -> "finalized"
  | Remove _ -> "remove"
  | Forward_remove _ -> "forward_remove"
  | Dquery _ -> "dquery"
  | Doutcome _ -> "doutcome"
  | Reader_probe _ -> "reader_probe"
  | Reader_done _ -> "reader_done"
  | Recovered _ -> "recovered"
