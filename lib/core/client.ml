(** Coordinator-side transaction execution: read operations (Alg. 5),
    write buffering, and the commit protocol (Alg. 1) including the wait
    for external commit. *)

open Sss_sim
open Sss_data
open Sss_consistency
open State

type handle = {
  cl : State.t;
  home : State.node;
  id : Ids.txn;
  ro : bool;
  mutable vc : Vclock.t;
  has_read : bool array;
  mutable started : bool;  (* has issued its first read *)
  mutable rs : (Ids.key * Ids.txn) list;  (* key with the observed version's writer *)
  mutable ws : (Ids.key * string) list;
  mutable prop_set : (Ids.txn * int) list;
  (* parked writers whose versions this update transaction read; the client
     response is chained behind their external commits *)
  mutable observed_parked : (Ids.txn * Ids.node) list;
  mutable finished : bool;
  begin_at : float;
}

let begin_txn cl ~node:home_id ~read_only =
  let home = State.node cl home_id in
  if not home.alive then Sss_net.Rpc.crashed ~system:"sss" ~node:home_id;
  let id = Ids.Gen.next home.gen in
  Hashtbl.replace home.active id ();
  record cl (History.Begin { txn = id; ro = read_only; node = home_id });
  (match cl.obs with
  | Some o ->
      Sss_obs.Obs.incr o (if read_only then "txn.begin.ro" else "txn.begin.update");
      Sss_obs.Obs.emit o ~at:(now cl)
        (Sss_obs.Obs.Txn_begin { txn = Ids.txn_to_string id; node = home_id; ro = read_only })
  | None -> ());
  (* Hardened mode: read-only transactions start from the externally
     committed (stable) view plus the node's session knowledge, so they
     only ever observe externally committed data; update transactions (and
     paper mode) start from the freshest internally committed view
     (Alg. 5 / §III-A). *)
  let initial_vc (home : State.node) read_only =
    if read_only && cl.config.Config.strict_order then
      Vclock.max home.stable_vc home.coordinated_max
    else Vclock.max (Nlog.most_recent_vc home.nlog) home.coordinated_max
  in
  {
    cl;
    home;
    id;
    ro = read_only;
    vc = initial_vc home read_only;
    has_read = Array.make cl.config.nodes false;
    started = false;
    rs = [];
    ws = [];
    prop_set = [];
    observed_parked = [];
    finished = false;
    begin_at = now cl;
  }

let txn_id h = h.id

let is_read_only h = h.ro

let read h key =
  if h.finished then invalid_arg "Sss_kv: read on a finished transaction";
  match List.assoc_opt key h.ws with
  | Some v -> v  (* read-your-writes from the write buffer (Alg. 5 line 2) *)
  | None ->
      if not h.started then begin
        h.vc <-
          (if h.ro && h.cl.config.Config.strict_order then
             Vclock.max h.home.stable_vc h.home.coordinated_max
           else Vclock.max (Nlog.most_recent_vc h.home.nlog) h.home.coordinated_max);
        h.started <- true;
        (* the bound is now fixed-then-growing, so this is the moment the
           snapshot can pin the GC watermark (registering at begin would be
           wrong: the paper-mode refresh is not entry-wise monotone) *)
        if h.ro then State.gc_register_ro h.cl h.id h.vc
      end;
      let req, ivar = Sss_net.Rpc.Pending.fresh h.home.pending_reads in
      let msg =
        Message.Read_request
          {
            req;
            txn = h.id;
            key;
            vc = h.vc;
            has_read = Array.copy h.has_read;
            is_update = not h.ro;
          }
      in
      send_nodes h.cl ~src:h.home.id
        ~dsts:(Replication.replicas h.cl.repl key)
        msg;
      (* All replicas are contacted; the fastest answer wins (§III-C).  In
         fault-tolerance mode the request and its answer are retried by the
         transport, so the wait only needs the [ack_timeout] backstop; the
         plain read keeps the healthy path free of timeout events. *)
      let resp =
        if h.cl.config.Config.fault_tolerance then
          match
            Sss_net.Rpc.Pending.await_timeout h.cl.sim ivar
              ~timeout:h.cl.config.ack_timeout
          with
          | Some r -> r
          | None ->
              Sss_net.Rpc.stalled ~system:"sss" ~phase:"read"
                (Printf.sprintf "key %d in %s" key (Ids.txn_to_string h.id))
        else Sss_net.Rpc.Pending.await h.cl.sim ivar
      in
      h.has_read.(resp.from) <- true;
      h.vc <- Vclock.max h.vc resp.vc;
      let pair = (key, resp.writer) in
      if not (List.mem pair h.rs) then h.rs <- pair :: h.rs;
      List.iter
        (fun p -> if not (List.mem p h.prop_set) then h.prop_set <- p :: h.prop_set)
        resp.propagated;
      (match resp.parked_coord with
      | Some coord ->
          let entry = (resp.writer, coord) in
          if not (List.mem entry h.observed_parked) then
            h.observed_parked <- entry :: h.observed_parked
      | None -> ());
      record h.cl (History.Read { txn = h.id; key; writer = resp.writer });
      resp.value

let write h key value =
  if h.finished then invalid_arg "Sss_kv: write on a finished transaction";
  if h.ro then invalid_arg "Sss_kv: write in a read-only transaction";
  h.ws <- (key, value) :: List.remove_assoc key h.ws

let read_keys h = List.sort_uniq Int.compare (List.map fst h.rs)

(* Chain this transaction's client response behind the external commits of
   the parked writers it read from (wr-order external consistency: a reader
   of X must not complete before X does).  The wait relation follows strict
   commit-clock domination, so it is deadlock-free. *)
let await_observed_parked h =
  let cl = h.cl in
  if not cl.config.Config.strict_order then ()
  else
  let slots =
    List.map
      (fun (writer, coord) ->
        let req, ivar = Sss_net.Rpc.Pending.fresh h.home.pending_finalized in
        send cl ~src:h.home.id ~dst:coord (Message.Wait_finalized { writer; req });
        ivar)
      h.observed_parked
  in
  List.iter
    (fun ivar ->
      match Sss_net.Rpc.Pending.await_timeout cl.sim ivar ~timeout:cl.config.ack_timeout with
      | Some () -> ()
      | None ->
          Sss_net.Rpc.stalled ~system:"sss" ~phase:"wait-finalized" (Ids.txn_to_string h.id))
    slots

(* Completion waits under durability retry their message: the transport's
   receipt can outrun the processing fiber a crash kills, so "delivered" is
   not "acted on" — a recovered participant holds no trace of the Decide or
   Finalize it receipted.  Re-send to the nodes whose ack is missing every
   few retry periods; the handlers are idempotent.  Without durability the
   single-timeout wait is kept bit-for-bit (no extra timer events). *)
let await_acks cl (h : handle) box ~dsts ~msg ~phase =
  if cl.config.Config.durability then begin
    let slice = 4. *. cl.config.Config.retry_max in
    let deadline = now cl +. cl.config.Config.ack_timeout in
    let rec wait () =
      match Sim.Ivar.read_timeout cl.sim box.ack_done ~timeout:slice with
      | Some () -> ()
      | None ->
          (* a crash of the home node fills the ivar; reaching here means
             the home survives but some participant has not answered *)
          if not (node_live cl h.home) then
            Sss_net.Rpc.crashed ~system:"sss" ~node:h.home.id;
          if now cl >= deadline then
            Sss_net.Rpc.stalled ~system:"sss" ~phase (Ids.txn_to_string h.id);
          List.iter
            (fun dst ->
              if not (Hashtbl.mem box.acked dst) then send cl ~src:h.home.id ~dst msg)
            (List.filter (fun d -> not (Hashtbl.mem box.acked d)) dsts [@order_ok]);
          wait ()
    in
    wait ()
  end
  else
    match Sim.Ivar.read_timeout cl.sim box.ack_done ~timeout:cl.config.ack_timeout with
    | Some () -> ()
    | None -> Sss_net.Rpc.stalled ~system:"sss" ~phase (Ids.txn_to_string h.id)

(* Read-only (and write-free) commit: the client is informed immediately;
   the Remove message then clears this transaction's snapshot-queue entries
   on every replica it read (Alg. 1 lines 2-8). *)
let commit_read_only h =
  let cl = h.cl in
  (* A write-free update transaction may have read a parked writer's data
     (read-only transactions never do): its response chains as well. *)
  if h.observed_parked <> [] then await_observed_parked h;
  h.home.coordinated_max <- Vclock.max h.home.coordinated_max h.vc;
  record cl (History.Commit { txn = h.id; ws = [] });
  if h.ro then cl.stats.committed_ro <- cl.stats.committed_ro + 1
  else cl.stats.committed_update <- cl.stats.committed_update + 1;
  (match cl.obs with
  | Some o ->
      let cls = if h.ro then "ro" else "update" in
      Sss_obs.Obs.incr o ("txn.commit." ^ cls);
      Sss_obs.Obs.observe o ("lat.txn." ^ cls) (now cl -. h.begin_at);
      Sss_obs.Obs.emit o ~at:(now cl)
        (Sss_obs.Obs.Txn_commit { txn = Ids.txn_to_string h.id; node = h.home.id; ro = h.ro })
  | None -> ());
  let keys = read_keys h in
  if keys <> [] then
    send_nodes cl ~src:h.home.id ~dsts:(replica_nodes cl keys) (Message.Remove { txn = h.id });
  true

let mark_finalized h =
  match Hashtbl.find_opt h.home.unfinalized h.id with
  | None -> ()
  | Some waiters ->
      Hashtbl.remove h.home.unfinalized h.id;
      List.iter (fun reply -> reply ()) !waiters

let commit_update h =
  let cl = h.cl in
  Hashtbl.replace h.home.unfinalized h.id (ref []);
  let rs_keys = read_keys h in
  let ws_keys = List.map fst h.ws in
  let participants =
    List.sort_uniq Int.compare (h.home.id :: replica_nodes cl (rs_keys @ ws_keys))
  in
  let box =
    { expect = List.length participants; votes = []; any_false = false;
      vchanged = Sim.Cond.create () }
  in
  Hashtbl.replace h.home.vote_boxes h.id box;
  (* Readers whose Remove already chased this transaction must not be
     re-propagated into snapshot-queues. *)
  let cancelled = take_cancelled h.home h.id in
  let prop =
    List.filter (fun (r, _) -> not (List.exists (Ids.equal_txn r) cancelled)) h.prop_set
  in
  remember_ws cl h.home h.id ws_keys;
  send_nodes cl ~src:h.home.id ~dsts:participants
    (Message.Prepare
       { txn = h.id; coord = h.home.id; vc = h.vc; rs = h.rs; ws = h.ws; propagated = prop });
  let complete () = box.any_false || List.length box.votes >= box.expect in
  let _ = Sim.Cond.await_timeout cl.sim box.vchanged ~timeout:cl.config.vote_timeout complete in
  Hashtbl.remove h.home.vote_boxes h.id;
  let all_ok = (not box.any_false) && List.length box.votes >= box.expect in
  if not all_ok then begin
    send_nodes cl ~src:h.home.id ~dsts:participants
      (Message.Decide { txn = h.id; vc = h.vc; outcome = false });
    mark_finalized h;
    cl.stats.aborted <- cl.stats.aborted + 1;
    record cl (History.Abort { txn = h.id });
    (match cl.obs with
    | Some o ->
        let reason = if box.any_false then "vote-false" else "vote-timeout" in
        Sss_obs.Obs.incr o ("txn.abort." ^ reason);
        Sss_obs.Obs.emit o ~at:(now cl)
          (Sss_obs.Obs.Txn_abort
             { txn = Ids.txn_to_string h.id; node = h.home.id; ro = false; reason })
    | None -> ());
    false
  end
  else begin
    (* The vote wait suspended: the home node may have crashed under it, in
       which case this fiber holds a stale record and must not decide. *)
    if not (node_live cl h.home) then Sss_net.Rpc.crashed ~system:"sss" ~node:h.home.id;
    (* Alg. 1 lines 18-24: entry-wise maximum of the votes, then equalise
       the write replicas' entries so every CommitQ orders this transaction
       identically. *)
    (* The merge works on a private copy so each vote folds in place
       instead of allocating a fresh clock per vote; [commit_vc] is only
       published (in the Decide message) after the last mutation. *)
    let commit_vc = Vclock.copy h.vc in
    List.iter (fun (_, vvc) -> (Vclock.max_into commit_vc vvc [@owned])) box.votes;
    let write_nodes = replica_nodes cl ws_keys in
    let max_entry =
      List.fold_left (fun acc w -> Stdlib.max acc (Vclock.get commit_vc w)) 0 write_nodes
    in
    (* Mint a fresh, globally unique xactVN (Alg. 1 line 21 computes a
       maximum; we additionally guarantee uniqueness, see State.mint). *)
    let xact_vn = mint_xact_vn cl h.home ~at_least:max_entry in
    List.iter (fun w -> (Vclock.set_into commit_vc w xact_vn [@owned])) write_nodes;
    (* Durable decision point: the commit clock is logged and flushed
       before any participant can learn the outcome.  Until the flush
       completes, an in-doubt Dquery is answered "undecided" — a decision
       that could still be lost with this node must not leak. *)
    if cl.config.Config.durability then begin
      Hashtbl.replace h.home.decided_commits h.id
        { dvc = commit_vc; ddurable = false; ddriving = true; d_at = now cl };
      sweep_decided cl h.home;
      let flush_from = now cl in
      let lsn = log h.home (SDecided { d_txn = h.id; d_vc = commit_vc }) in
      if (not (log_sync h.home lsn)) || not (node_live cl h.home) then
        Sss_net.Rpc.crashed ~system:"sss" ~node:h.home.id;
      (Hashtbl.find h.home.decided_commits h.id).ddurable <- true;
      match cl.obs with
      | Some o -> Sss_obs.Obs.observe o "lat.commit.durable" (now cl -. flush_from)
      | None -> ()
    end;
    let ack =
      {
        ack_expect = List.length write_nodes;
        acked = Hashtbl.create 8;
        ack_phase = `Acks;
        ack_done = Sim.Ivar.create ();
      }
    in
    Hashtbl.replace h.home.ack_boxes h.id ack;
    let decide_at = now cl in
    send_nodes cl ~src:h.home.id ~dsts:participants
      (Message.Decide { txn = h.id; vc = commit_vc; outcome = true });
    await_acks cl h ack ~dsts:write_nodes
      ~msg:(Message.Decide { txn = h.id; vc = commit_vc; outcome = true })
      ~phase:"external-commit ack";
    (* a crash fills the ivar to wake this fiber; distinguish it here *)
    if not (node_live cl h.home) then Sss_net.Rpc.crashed ~system:"sss" ~node:h.home.id;
    Hashtbl.remove h.home.ack_boxes h.id;
    if cl.config.Config.strict_order then begin
      (* wr-chaining: the parked writers we read from must externally commit
         before our own writes become reader-visible (and a fortiori before
         our client is informed) — otherwise a reader could observe our
         data, still serialize before the writer we depend on, and close a
         cycle. *)
      await_observed_parked h;
      (* Release the writer entries everywhere and wait for confirmation
         BEFORE informing the client: a reader that finds the entry parked
         can then always safely serialize before this transaction. *)
      let fin =
        {
          ack_expect = List.length write_nodes;
          acked = Hashtbl.create 8;
          ack_phase = `Fin;
          ack_done = Sim.Ivar.create ();
        }
      in
      Hashtbl.replace h.home.ack_boxes h.id fin;
      send_nodes cl ~src:h.home.id ~dsts:write_nodes (Message.Finalize { txn = h.id });
      await_acks cl h fin ~dsts:write_nodes ~msg:(Message.Finalize { txn = h.id })
        ~phase:"finalize ack";
      if not (node_live cl h.home) then Sss_net.Rpc.crashed ~system:"sss" ~node:h.home.id;
      Hashtbl.remove h.home.ack_boxes h.id
    end;
    (* Completion protocol done: in-doubt queries no longer need this
       incarnation (and after a crash the restored decision will say so). *)
    (match Hashtbl.find_opt h.home.decided_commits h.id with
    | Some d -> d.ddriving <- false
    | None -> ());
    mark_finalized h;
    h.home.coordinated_max <- Vclock.max h.home.coordinated_max commit_vc;
    cl.stats.committed_update <- cl.stats.committed_update + 1;
    if cl.stats.collect_latencies then
      cl.stats.latencies <- (h.begin_at, decide_at, now cl) :: cl.stats.latencies;
    record cl (History.Commit { txn = h.id; ws = ws_keys });
    (match cl.obs with
    | Some o ->
        Sss_obs.Obs.incr o "txn.commit.update";
        Sss_obs.Obs.observe o "lat.txn.update" (now cl -. h.begin_at);
        Sss_obs.Obs.emit o ~at:(now cl)
          (Sss_obs.Obs.Txn_commit { txn = Ids.txn_to_string h.id; node = h.home.id; ro = false })
    | None -> ());
    true
  end

let commit h =
  if h.finished then invalid_arg "Sss_kv: commit on a finished transaction";
  h.finished <- true;
  Hashtbl.remove h.home.active h.id;
  if h.ro then State.gc_unregister_ro h.cl h.id;
  if h.ws = [] then commit_read_only h else commit_update h

(* Voluntary abort before commit: nothing distributed is held yet except
   the snapshot-queue entries of a read-only transaction's reads, which the
   Remove message clears. *)
let abort h =
  if h.finished then invalid_arg "Sss_kv: abort on a finished transaction";
  h.finished <- true;
  Hashtbl.remove h.home.active h.id;
  if h.ro then State.gc_unregister_ro h.cl h.id;
  let cl = h.cl in
  cl.stats.aborted <- cl.stats.aborted + 1;
  record cl (History.Abort { txn = h.id });
  (match cl.obs with
  | Some o ->
      Sss_obs.Obs.incr o "txn.abort.client";
      Sss_obs.Obs.emit o ~at:(now cl)
        (Sss_obs.Obs.Txn_abort
           { txn = Ids.txn_to_string h.id; node = h.home.id; ro = h.ro; reason = "client" })
  | None -> ());
  let keys = read_keys h in
  if h.ro && keys <> [] then
    send_nodes cl ~src:h.home.id ~dsts:(replica_nodes cl keys) (Message.Remove { txn = h.id })
