(** SSS deployment parameters. *)

type t = {
  nodes : int;  (** cluster size *)
  replication_degree : int;  (** replicas per key (1 = no replication) *)
  total_keys : int;  (** size of the key space, pre-populated at start *)
  network : Sss_net.Network.config;
  vote_timeout : float;
      (** how long a 2PC coordinator waits for votes before aborting
          (the paper uses 1 ms on a 20 µs-latency network) *)
  lock_timeout : float;  (** prepare-phase lock acquisition timeout *)
  ack_timeout : float;
      (** backstop on the client-side commit waits (external-commit Ack,
          Finalize ack, wait-finalized chaining — and, in fault-tolerance
          mode, reads): exceeding it raises {!Sss_net.Rpc.Stalled}, which in
          a healthy run indicates a protocol bug and under fault injection
          means the plan out-lasted the retry budget *)
  starvation_threshold : float;
      (** a writer parked in a snapshot-queue longer than this triggers
          admission control on new read-only reads of its keys (§III-E) *)
  backoff_initial : float;  (** first admission-control delay *)
  backoff_max : float;  (** exponential back-off cap *)
  record_history : bool;  (** record events for the consistency checker *)
  seed : int;  (** PRNG seed for network jitter *)
  strict_order : bool;
      (** order external commits per node by commit stamp (see DESIGN.md
          "hardening"); disable to measure the paper's literal per-key
          release *)
  gc_horizon : float;
      (** node logs are pruned and version chains truncated for state older
          than this; must exceed the longest transaction lifetime *)
  chain_keep : int;  (** minimum versions kept per key under GC *)
  gc : bool;
      (** watermark-driven online garbage collection: version chains are
          truncated and node logs pruned up to the cluster low-watermark
          (the entry-wise minimum over every node's [coordinated_max] and
          every live read-only snapshot bound), so nothing any live or
          future read-only transaction could still {!Mvstore.select} is
          ever dropped.  Off by default: the legacy amortized
          horizon/chain-keep collection then runs exactly as before, so
          trajectories are byte-for-byte identical to builds without this
          subsystem.  GC is passive — it draws no randomness and schedules
          no events — so turning it on changes memory, not trajectories. *)
  priority_network : bool;
      (** give protocol-completing messages (Remove, Decide, ...) priority
          over new work in node ingress queues, as the paper's optimized
          network component does (§V); disable for the ablation *)
  compress_metadata : bool;
      (** account message sizes with varint-compressed vector clocks
          (§III-A); affects only the byte telemetry, not behaviour *)
  fault_tolerance : bool;
      (** run the protocol over the tracked at-least-once transport
          ({!Sss_net.Reliable}) so it survives message loss, partitions and
          node crashes injected by a fault plan (docs/FAULTS.md).  Off by
          default: the healthy-path wire behaviour — message counts, byte
          telemetry, PRNG draw sequence — is then byte-for-byte what the
          committed benchmark figures were produced with.  All four systems
          (SSS and the three baselines) honour this flag. *)
  retry_initial : float;
      (** fault-tolerance mode: first re-send of an unacknowledged message
          after this much virtual time (default 0.5 ms) *)
  retry_max : float;  (** exponential backoff cap between re-sends (8 ms) *)
  retry_limit : int;
      (** re-send attempts before a tracked send is abandoned (64 — together
          with [retry_max] this rides out fault windows of several hundred
          ms; a foreground wait that depended on an abandoned send fails
          with {!Sss_net.Rpc.Stalled} once [ack_timeout] expires) *)
  observe : bool;
      (** attach an {!Sss_obs.Obs.t} to the cluster: typed trace events,
          per-message-kind counters and latency histograms, per-node
          queue-depth gauges (docs/OBSERVABILITY.md).  Observation is
          passive — it draws no randomness and schedules nothing — so
          trajectories, committed counts, and checker verdicts are
          identical with it on or off; with it off (the default) no
          observation code runs at all.  All four systems honour the
          flag. *)
  trace_capacity : int;
      (** ring capacity of the trace sink when [observe] is set; older
          events are overwritten (and counted) once exceeded *)
  durability : bool;
      (** give every node a simulated write-ahead log
          ({!Sss_storage.Storage} over {!Sss_sim.Iodev}): commit-path
          records are group-flushed before votes, decisions and client
          acknowledgements; the MV-store is checkpointed periodically; and
          a crash injected by a fault plan now {e discards volatile state}
          and replays the log before the node rejoins (docs/DURABILITY.md).
          Off by default: healthy trajectories are then byte-for-byte
          identical to a build without this subsystem.  All four systems
          honour the flag; crash/restart plans under it normally also want
          [fault_tolerance] so in-flight messages survive the outage. *)
  fsync_latency : float;
      (** durability mode: fixed per-operation cost of a log device write
          (the fsync floor, default 50 µs) *)
  disk_bandwidth : float;
      (** durability mode: sustained log-device transfer rate in bytes per
          second (default 2 GB/s) *)
  checkpoint_interval : float;
      (** durability mode: virtual seconds between fuzzy checkpoints of a
          node's store; [<= 0] disables checkpointing, leaving recovery to
          replay the whole log (default 50 ms) *)
}

val default : t
(** 4 nodes, replication degree 2, 64 keys, paper-like timeouts; unit tests
    override fields as needed. *)
