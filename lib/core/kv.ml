open Sss_data

type cluster = State.t

type handle = Client.handle

let create sim config =
  let t = State.create sim config in
  Server.install t;
  t

let begin_txn = Client.begin_txn

let read = Client.read

let write = Client.write

let commit = Client.commit

let abort = Client.abort

let txn_id = Client.txn_id

let with_txn cluster ~node ~read_only ?(max_attempts = 5) f =
  let rec attempt n =
    if n = 0 then None
    else
      let h = Client.begin_txn cluster ~node ~read_only in
      match f h with
      | result -> if Client.commit h then Some result else attempt (n - 1)
      | exception e ->
          Client.abort h;
          raise e
  in
  attempt max_attempts

let is_read_only = Client.is_read_only

let history (t : cluster) = t.State.history

let stats (t : cluster) = t.State.stats

let set_collect_latencies (t : cluster) flag = t.State.stats.State.collect_latencies <- flag

let network_stats (t : cluster) = Sss_net.Network.stats t.State.net

let wal_stats (t : cluster) =
  Array.fold_left
    (fun acc (n : State.node) ->
      match n.State.wal with
      | None -> acc
      | Some w -> Sss_storage.Storage.add_stats acc (Sss_storage.Storage.stats w))
    Sss_storage.Storage.zero_stats t.State.nodes

let version_count = State.version_count

let mem_words (t : cluster) =
  Array.fold_left
    (fun acc (n : State.node) -> Mvstore.mem_add acc (Mvstore.mem_words n.State.store))
    Mvstore.mem_zero t.State.nodes

let nlog_entries = State.nlog_entries

let gc_stats (t : cluster) =
  match t.State.gc with
  | None -> (0, 0, 0)
  | Some g -> (g.State.refreshes, g.State.versions_dropped, g.State.entries_dropped)

let network (t : cluster) = t.State.net

let obs (t : cluster) = t.State.obs

let metrics_json (t : cluster) = Option.map Sss_obs.Obs.metrics_json t.State.obs

let trace_jsonl (t : cluster) = Option.map Sss_obs.Obs.trace_jsonl t.State.obs

let transport_retries (t : cluster) = Sss_net.Reliable.retries t.State.rel

let transport_stalled (t : cluster) = Sss_net.Reliable.stalled t.State.rel

let crash_node = Server.crash_node

let restart_node = Server.restart_node

let quiescent (t : cluster) =
  let problems = ref [] in
  let add fmt = Printf.ksprintf (fun s -> problems := s :: !problems) fmt in
  Array.iter
    (fun (n : State.node) ->
      (* report in sorted key order: the text must not depend on bucket order *)
      List.iter
        (fun key ->
          let q = Hashtbl.find n.State.squeues key in
          if not (Squeue.is_empty q) then
            add "node %d: snapshot-queue of key %d not empty (%d entries)" n.State.id key
              (Squeue.length q))
        (List.sort Int.compare
           (Hashtbl.fold (fun k _ acc -> k :: acc) n.State.squeues [] [@order_ok]));
      if Commitq.length n.State.commitq > 0 then
        add "node %d: commit queue not empty (%d)" n.State.id (Commitq.length n.State.commitq);
      if Hashtbl.length n.State.prepared > 0 then
        add "node %d: %d prepared transactions linger" n.State.id
          (Hashtbl.length n.State.prepared);
      if Locks.holder_count n.State.locks > 0 then
        add "node %d: %d transactions still hold locks" n.State.id
          (Locks.holder_count n.State.locks);
      if Hashtbl.length n.State.active > 0 then
        add "node %d: %d transactions still active" n.State.id (Hashtbl.length n.State.active))
    t.State.nodes;
  match !problems with
  | [] -> Ok ()
  | ps -> Error (String.concat "; " (List.rev ps))
