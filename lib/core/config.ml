type t = {
  nodes : int;
  replication_degree : int;
  total_keys : int;
  network : Sss_net.Network.config;
  vote_timeout : float;
  lock_timeout : float;
  ack_timeout : float;
  starvation_threshold : float;
  backoff_initial : float;
  backoff_max : float;
  record_history : bool;
  seed : int;
  strict_order : bool;
  gc_horizon : float;
  chain_keep : int;
  priority_network : bool;
  compress_metadata : bool;
  fault_tolerance : bool;
  retry_initial : float;
  retry_max : float;
  retry_limit : int;
  observe : bool;
  trace_capacity : int;
}

let default =
  {
    nodes = 4;
    replication_degree = 2;
    total_keys = 64;
    network = Sss_net.Network.default_config;
    vote_timeout = 1e-3;
    lock_timeout = 1e-3;
    ack_timeout = 30.0;
    starvation_threshold = 5e-3;
    backoff_initial = 0.5e-3;
    backoff_max = 8e-3;
    record_history = true;
    seed = 1;
    strict_order = true;
    gc_horizon = 1.0;
    chain_keep = 128;
    priority_network = true;
    compress_metadata = true;
    fault_tolerance = false;
    retry_initial = 0.5e-3;
    retry_max = 8e-3;
    retry_limit = 64;
    observe = false;
    trace_capacity = 65536;
  }
