(** Participant-side protocol logic: read serving with version selection
    (Alg. 6), the 2PC participant (Alg. 2), internal commit and the
    Pre-Commit phase (Alg. 3 and 4), and Remove propagation (§III-C). *)

open Sss_sim
open Sss_data
open Sss_consistency
open State

(* Validation, per the paper's description of Alg. 1 lines 27-33: "checking
   if the latest version of a key matches the read one".  We compare version
   identities (the writer transaction) rather than the pseudocode's clock
   shortcut [k.last.vid[i] > T.VC[i]]: an update transaction's clock can be
   inflated past a conflicting writer by an unrelated later read served on
   the same node, which would let a lost update slip through the clock
   comparison. *)
let validate node rs =
  List.for_all
    (fun (k, observed_writer) ->
      let last = Mvstore.last node.store k in
      Mvstore.slot_writer_is node.store last observed_writer)
    rs

(* Admission control (§III-E): if an update transaction has been parked in
   this key's snapshot-queue beyond the starvation threshold, delay incoming
   read-only reads that would serialize before it (their bound does not
   cover it) with exponential back-off so the writer can drain.  Readers
   whose bound covers the writer never block it and pass straight through. *)
let admission_control t node key ~bound_local =
  let cfg = t.config in
  let old_writer () =
    List.exists
      (fun e ->
        e.Squeue.sid > bound_local
        &&
        match Hashtbl.find_opt node.writer_since e.Squeue.txn with
        | Some since -> now t -. since > cfg.starvation_threshold
        | None -> false)
      (Squeue.writers (squeue node key))
  in
  (* Bounded: this is a delay to let the writer drain, not a gate — an
     unbounded loop here turns a transient pile-up into a livelock (the
     writer waits for existing readers, new readers wait for the writer). *)
  let rec loop delay budget =
    if old_writer () && budget > 0.0 then begin
      Sim.sleep t.sim delay;
      loop (Float.min (delay *. 2.0) cfg.backoff_max) (budget -. delay)
    end
  in
  if cfg.starvation_threshold > 0.0 then
    loop cfg.backoff_initial (4.0 *. cfg.backoff_max)

(* The candidate clock [cvc] is the store's scratch decode, borrowed for the
   duration of the call (see [Mvstore.select]). *)
let version_skipper ~has_read ~maxvc ~me ~cutoff cvc =
  let n = Array.length has_read in
  let rec over_bound w =
    w < n
    && ((has_read.(w) && Vclock.get cvc w > Vclock.get maxvc w)
       || over_bound (w + 1))
  in
  over_bound 0 || Vclock.get cvc me >= cutoff

(* Visibility cutoff for read-only transactions at this node.

   Hardened mode: the smallest stamp among ALL parked (applied but not
   externally committed) writers — readers see exactly the externally
   committed prefix of the apply order; a reader whose bound covers a
   parked writer does not read around it but waits for its (in-flight)
   finalization instead (see [wait_covered_finalizing]).

   Paper mode (Alg. 6 line 7 literally): only parked writers whose
   insertion snapshot exceeds the reader's bound are hidden; covered parked
   writers are read directly.  Covered stamps are all <= the bound < every
   uncovered stamp, so the result is still a prefix of the apply order. *)
let parked_cutoff t node ~bound_local =
  (* Served by the sorted stamp index kept in sync by
     [State.park_writer]/[unpark_writer]; a [writer_since] fold here would
     be O(parked) per read. *)
  let found =
    if t.config.Config.strict_order then Stampset.min_elt node.parked
    else Stampset.first_above node.parked bound_local
  in
  match found with Some stamp -> stamp | None -> max_int

(* Hardened mode: a read-only transaction whose bound covers a parked
   writer must observe it, and may not observe it while parked — so it
   waits out the writer's external commit.  Coverage can only arise through
   finalized state (stable views, committed reads), so the covered writer's
   Finalize is already under way and the wait is a skew window; a generous
   timeout backstops the theoretically possible crossed-wait deadlock, and
   every firing is counted and reported by the experiment harness. *)
let wait_covered_finalizing t node ~bound_local =
  if not t.config.Config.strict_order then ()
  else
    let covered_parked () = Stampset.exists_leq node.parked bound_local in
    let ok =
      Sim.Cond.await_timeout t.sim node.squeue_changed ~timeout:0.1 (fun () ->
          not (covered_parked ()))
    in
    if not ok then t.stats.wait_covered_timeouts <- t.stats.wait_covered_timeouts + 1

let handle_read t node ~src ~req ~txn ~key ~vc ~has_read ~is_update =
  t.stats.reads_served <- t.stats.reads_served + 1;
  let reply ?parked_coord value rvc writer propagated =
    send t ~src:node.id ~dst:src
      (Message.Read_return { req; value; vc = rvc; writer; propagated; parked_coord })
  in
  if is_update then begin
    (* Alg. 6 lines 23-27: update transactions read the newest version and
       collect the key's reader entries as transitive anti-dependencies. *)
    let q = squeue node key in
    let props = List.map (fun e -> (e.Squeue.txn, e.Squeue.sid)) (Squeue.readers q) in
    List.iter (fun (r, _) -> add_forward node ~reader:r ~writer:txn ~coord:src) props;
    let ver = Mvstore.last node.store key in
    let writer = Mvstore.slot_writer node.store ver in
    (* If the version read is still parked (its writer not yet externally
       committed), this update transaction must not reply to its own client
       before that writer does: report the writer's coordinator. *)
    let parked_coord =
      match Hashtbl.find_opt node.prepared writer with
      | Some p when Hashtbl.mem node.writer_since writer -> Some p.coord
      | _ -> None
    in
    reply ?parked_coord
      (Mvstore.slot_value node.store ver)
      (Nlog.most_recent_vc node.nlog) writer props
  end
  else begin
    let me = node.id in
    if not has_read.(me) then begin
      (* First contact by this read-only transaction (Alg. 6 lines 4-14).
         The paper waits for NLog.mostRecentVC[i] >= T.VC[i]; we also wait
         out any CommitQ entry whose clock entry is within the visibility
         bound.  Clock entries only grow from prepare to decide and every
         value is a unique mint, so once no queued entry is at or below the
         bound, nothing not yet applied here can belong to the reader's
         snapshot (found by property testing: without this, a value carried
         by a committed-elsewhere transaction could cover an entry still in
         this queue). *)
      let present_on_arrival =
        if t.config.Config.strict_order then
          List.map (fun e -> e.Commitq.txn) (Commitq.to_list node.commitq)
        else []
      in
      Sim.Cond.await t.sim node.nlog_changed (fun () ->
          Nlog.most_recent_local node.nlog >= Vclock.get vc me
          && (not (Commitq.exists_at_or_below node.commitq ~bound:(Vclock.get vc me)))
          && not (List.exists (Commitq.mem node.commitq) present_on_arrival));
      admission_control t node key ~bound_local:(Vclock.get vc me);
      let q = squeue node key in
      ignore q;
      (* ExcludedSet, strengthened from Alg. 6 line 7: a read-only
         transaction observes a writer only once it is externally
         committed.  Writers its bound does not cover are excluded (the
         reader serializes before them; its queue entry holds their
         external commit).  Writers its bound DOES cover cannot be read
         around (the bound proves someone already observed them), so the
         read waits for their — already imminent — finalization.  The wait
         is bounded: stamps minted for new arrivals always exceed the
         node's issued values, hence the bound.  (The paper's literal
         bound-conditional exclusion without the wait lets two readers
         cover two different parked writers and order them divergently —
         Adya's anomaly; several variants of this were found by property
         testing.) *)
      let bound_local = Vclock.get vc me in
      wait_covered_finalizing t node ~bound_local;
      let cutoff = parked_cutoff t node ~bound_local in
      let maxvc = Nlog.visible_max node.nlog ~has_read ~bound:vc ~cutoff in
      let sid = Vclock.get maxvc me in
      (* A slow replica can reach this point after the transaction already
         committed and its Remove was processed here; the tombstone stops
         the entry from being resurrected unremovably. *)
      if not (is_tombstoned node txn) then begin
        Squeue.insert_read q ~txn ~sid;
        index_reader node txn key
      end;
      let skip = version_skipper ~has_read ~maxvc ~me ~cutoff in
      let ver = Mvstore.select node.store key ~skip in
      reply
        (Mvstore.slot_value node.store ver)
        maxvc
        (Mvstore.slot_writer node.store ver)
        []
    end
    else begin
      (* Repeat contact (Alg. 6 lines 15-21): the visibility bound is the
         transaction's own clock; parked writers within the bound are
         waited out exactly as on first contact (the cutoff only rises, so
         earlier reads at this node stay valid). *)
      let maxvc = vc in
      let bound_local = Vclock.get vc me in
      wait_covered_finalizing t node ~bound_local;
      let cutoff = parked_cutoff t node ~bound_local in
      let sid = Stdlib.min (Vclock.get maxvc me) (cutoff - 1) in
      if not (is_tombstoned node txn) then begin
        Squeue.insert_read (squeue node key) ~txn ~sid;
        index_reader node txn key
      end;
      let skip = version_skipper ~has_read ~maxvc ~me ~cutoff in
      let ver = Mvstore.select node.store key ~skip in
      reply
        (Mvstore.slot_value node.store ver)
        maxvc
        (Mvstore.slot_writer node.store ver)
        []
    end
  end

(* Alg. 4, strengthened: wait out every reader that must serialize before
   this writer, then tell the coordinator.  Unlike the per-key pseudocode we
   do NOT drop the writer entries here — they stay until the coordinator's
   Finalize (external commit).  Removing them per key as each wait clears
   would let a fresh reader serialize after the writer through one key and
   complete while the writer is still held on another key, after which a
   later-starting reader could still serialize before it: a cycle with the
   real-time order.  Keeping the entries until external commit makes
   "serializing after a held writer" possible only for readers whose
   visibility bound already covers its (equalised) commit clock, which then
   forces them to wait for its writes on every written key. *)
let handle_remove t node ~reader =
  add_tombstone t node reader;
  let keys = take_reader_keys node reader in
  List.iter (fun k -> ignore (Squeue.remove (squeue node k) reader)) keys;
  if keys <> [] then Sim.Cond.broadcast t.sim node.squeue_changed;
  List.iter
    (fun (writer, coord) ->
      send t ~src:node.id ~dst:coord (Message.Forward_remove { reader; writer }))
    (take_forwards node reader)

(* Wait until no reader entry blocks a writer of stamp [sid] at [key].
   Without durability a blocking entry always has a live owner whose
   [Remove] (or abort) clears it, so a bare condition wait suffices — and is
   kept bit-for-bit.  Crashes break that ownership two ways: a [Remove]
   processed before the crash leaves no durable trace, so redo of a
   prepare's apply re-inserts propagated readers nobody will ever remove
   again; and a home-node crash kills readers whose [Remove] was never sent
   at all.  So under durability a wait that overstays a retry slice probes
   each blocking reader's home node — "no longer active there" is exactly
   the [Remove] promise (ids are never reused and [active] is cleared
   before the removes go out), and the {!Message.Reader_done} answer runs
   the normal remove path. *)
let await_writer_unblocked t node ~sid key =
  let q = squeue node key in
  let clear () = not (Squeue.blocks_writer q ~sid) in
  if not t.config.Config.durability then Sim.Cond.await t.sim node.squeue_changed clear
  else
    let slice = 4. *. t.config.Config.retry_max in
    let rec loop () =
      if
        (not (Sim.Cond.await_timeout t.sim node.squeue_changed ~timeout:slice clear))
        && node_live t node
      then begin
        List.iter
          (fun (e : Squeue.entry) ->
            if e.Squeue.propagated || e.Squeue.sid < sid then begin
              let reader = e.Squeue.txn in
              let home = reader.Ids.node in
              if home = node.id then begin
                if not (Hashtbl.mem node.active reader) then handle_remove t node ~reader
              end
              else send t ~src:node.id ~dst:home (Message.Reader_probe { reader })
            end)
          (Squeue.readers q);
        loop ()
      end
    in
    loop ()

(* One eager pass of the reader-liveness probe over every entry this node
   holds — run once per recovery (on the recovered node itself and, via
   {!Message.Recovered}, on every other node).  The lazy probe above only
   fires while a writer is blocked; an entry orphaned by the crash on a key
   no writer touches again would linger forever otherwise (harmless for
   safety, but residue a quiescence audit rightly rejects).  Probing a
   reader that is still running is a no-op: its home node stays silent. *)
let probe_orphans t node =
  List.iter
    (fun key ->
      List.iter
        (fun (e : Squeue.entry) ->
          let reader = e.Squeue.txn in
          let home = reader.Ids.node in
          if home = node.id then begin
            if not (Hashtbl.mem node.active reader) then handle_remove t node ~reader
          end
          else send t ~src:node.id ~dst:home (Message.Reader_probe { reader }))
        (Squeue.readers (squeue node key)))
    (List.sort Int.compare
       (Hashtbl.fold (fun k _ acc -> k :: acc) node.squeues [] [@order_ok]))

let pre_commit_wait t node ~txn ~sid ~keys ~coord ~lsn =
  if t.config.Config.strict_order then begin
    List.iter (fun k -> await_writer_unblocked t node ~sid k) keys;
    (* The Ack promises the writes survive this node: it must not outrun
       their log records.  [lsn] is the apply record; the device is serial
       FIFO, so awaiting it covers the whole log prefix. *)
    if log_sync node lsn && node_live t node then
      send t ~src:node.id ~dst:coord (Message.Ack { txn })
  end
  else begin
    (* Paper mode: Alg. 4 literally — drop each writer entry as soon as its
       key's wait first clears; readers arriving later at that key simply
       observe the version.  Fast, but the per-key staggered release is the
       source of the anomalies documented in DESIGN.md. *)
    List.iter
      (fun k ->
        await_writer_unblocked t node ~sid k;
        ignore (Squeue.remove (squeue node k) txn);
        Sim.Cond.broadcast t.sim node.squeue_changed)
      keys;
    if node_live t node then begin
      (match (Hashtbl.find_opt node.prepared txn : prep option) with
      | Some { final_vc = Some fvc; _ } -> node.stable_vc <- Vclock.max node.stable_vc fvc
      | _ -> ());
      Hashtbl.remove node.prepared txn;
      unpark_writer t node txn;
      (* The prepared entry retires here in paper mode, so the retirement
         is what must reach the disk before the Ack (which covers the apply
         record too — serial device). *)
      let flsn = log node (SFinalized { f_txn = txn }) in
      let gate = match flsn with Some _ -> flsn | None -> lsn in
      if log_sync node gate && node_live t node then
        send t ~src:node.id ~dst:coord (Message.Ack { txn })
    end
  end

(* Alg. 2 lines 29-36 fused with Alg. 3: commit ready transactions from the
   head of the CommitQ in the order of this node's clock entry, making the
   apply and the snapshot-queue insertion atomic (no window in which the
   version is visible but its writer is not yet parked). *)
let rec try_drain t node =
  match Commitq.head node.commitq with
  | Some { Commitq.txn; vc; status = Ready } ->
      let prep = Hashtbl.find node.prepared txn in
      let sid = Vclock.get vc node.id in
      prep.final_vc <- Some vc;
      park_writer t node txn ~stamp:sid;
      List.iter
        (fun (k, v) ->
          Mvstore.install node.store k ~value:v ~vc ~writer:txn;
          if is_primary t node.id k then record t (History.Install { txn; key = k });
          let q = squeue node k in
          Squeue.insert_write q ~txn ~sid;
          List.iter
            (fun (r, rsid) ->
              if not (is_tombstoned node r) then begin
                Squeue.insert_propagated q ~txn:r ~sid:rsid;
                index_reader node r k
              end)
            prep.prop_set)
        prep.ws_local;
      Nlog.add node.nlog ~txn ~vc ~ws:(List.map fst prep.ws_local) ~at:(now t);
      (match t.gc with
      | Some g ->
          (* watermark-driven collection: drop only state no live or future
             read-only snapshot can still reach (State.gc_after_apply) *)
          gc_after_apply t g node ~ws:prep.ws_local
      | None ->
          (* inline garbage collection, amortized over applies *)
          if Nlog.size node.nlog land 1023 = 0 then
            Nlog.prune node.nlog ~before:(now t -. t.config.Config.gc_horizon);
          List.iter
            (fun (k, _) -> Mvstore.truncate node.store k ~keep:t.config.Config.chain_keep)
            prep.ws_local);
      Commitq.remove node.commitq txn;
      Locks.release_txn node.locks txn;
      (match t.obs with
      | Some o ->
          Sss_obs.Obs.incr o "lock.release";
          Sss_obs.Obs.emit o ~at:(now t)
            (Sss_obs.Obs.Lock_release { txn = Ids.txn_to_string txn; node = node.id })
      | None -> ());
      Sim.Cond.broadcast t.sim node.nlog_changed;
      Sim.Cond.broadcast t.sim node.squeue_changed;
      (* Logged in the same event as the apply: redo either replays the
         whole install-park-insert bundle or none of it. *)
      let lsn = log node (SApplied { ap_txn = txn; ap_vc = vc }) in
      let keys = List.map fst prep.ws_local in
      Sim.spawn t.sim (fun () ->
          pre_commit_wait t node ~txn ~sid ~keys ~coord:prep.coord ~lsn);
      try_drain t node
  | _ -> ()

(* Every write replica's pre-commit wait cleared once; remove the writer
   entries so the transaction can externally commit.  New readers may have
   serialized before it since the Ack (they found the entry still parked),
   so the wait condition is re-checked — the client is only informed after
   every replica confirms removal, keeping "parked" synonymous with "not
   yet externally committed". *)
let handle_finalize t node ~txn ~reply_to =
  match Hashtbl.find_opt node.prepared txn with
  | None -> (
      (* Duplicate finalize; the first one answered — except under
         durability, where "no entry" can mean the retirement is durable
         but the ack died with the crash (or the finalize fiber did).  The
         coordinator is retrying precisely because it lacks our ack, so
         answer again. *)
      match reply_to with
      | Some coord when t.config.Config.durability ->
          send t ~src:node.id ~dst:coord (Message.Finalize_ack { txn })
      | _ -> ())
  | Some prep ->
      prep.finalizing <- true;
      Sim.Cond.broadcast t.sim node.squeue_changed;
      Sim.spawn t.sim (fun () ->
          let keys = List.map fst prep.ws_local in
          let my_sid =
            match prep.final_vc with Some fvc -> Vclock.get fvc node.id | None -> 0
          in
          (* Release strictly in this node's apply (stamp) order so the
             reader-side cutoff prefix can never hide an already externally
             committed transaction behind a still-parked earlier one.  The
             stamp order is global (one minted xactVN per transaction), so
             the waits are well-founded. *)
          (* Stamps are globally unique (one minted xactVN per transaction),
             so "another parked writer with a smaller stamp" is exactly "the
             index minimum is below my stamp" — our own entry sits at
             [my_sid] and can never satisfy the strict inequality. *)
          let earlier_parked () = Stampset.exists_below node.parked my_sid in
          Sim.Cond.await t.sim node.squeue_changed (fun () -> not (earlier_parked ()));
          (* Re-check for readers that serialized below this writer since
             the Ack: their clients must not be outrun. *)
          let entry_sid k =
            List.find_map
              (fun e -> if Ids.equal_txn e.Squeue.txn txn then Some e.Squeue.sid else None)
              (Squeue.writers (squeue node k))
          in
          List.iter
            (fun k ->
              match entry_sid k with
              | None -> ()
              | Some sid -> await_writer_unblocked t node ~sid k)
            keys;
          if node_live t node then begin
            List.iter (fun k -> ignore (Squeue.remove (squeue node k) txn)) keys;
            (match prep.final_vc with
            | Some fvc -> node.stable_vc <- Vclock.max node.stable_vc fvc
            | None -> ());
            Hashtbl.remove node.prepared txn;
            unpark_writer t node txn;
            Sim.Cond.broadcast t.sim node.squeue_changed;
            let lsn = log node (SFinalized { f_txn = txn }) in
            if log_sync node lsn && node_live t node then
              send t ~src:node.id ~dst:prep.coord (Message.Finalize_ack { txn })
          end)

let handle_decide t node ~txn ~vc ~outcome =
  match Hashtbl.find_opt node.prepared txn with
  | None ->
      (* We voted false (kept nothing), this is a duplicate decide, or our
         Prepare is still in flight — remember aborts so a late Prepare
         cannot resurrect the transaction. *)
      if not outcome then begin
        note_aborted_decide t node txn;
        (* Fire-and-forget: losing an abort record only resurrects the
           prepared entry at recovery, and the in-doubt watchdog re-learns
           the abort from the coordinator. *)
        ignore (log node (SAborted { a_txn = txn }) : int option);
        Commitq.remove node.commitq txn;
        Locks.release_txn node.locks txn;
        try_drain t node;
        Sim.Cond.broadcast t.sim node.nlog_changed
      end
  | Some prep ->
      if outcome then begin
        (* node_vc is exclusively owned: fold the decide clock in place *)
        (Vclock.max_into node.node_vc vc [@owned]);
        if prep.ws_local <> [] then begin
          Commitq.update node.commitq ~txn ~vc;
          try_drain t node;
          (* Readers waiting on the commit queue re-check: the final clock
             may have moved this entry out of their visibility bound. *)
          Sim.Cond.broadcast t.sim node.nlog_changed
        end
        else begin
          Locks.release_txn node.locks txn;
          Hashtbl.remove node.prepared txn;
          drop_parked_stamp t node txn;
          (* read-only participant: retire the prepared entry durably *)
          ignore (log node (SFinalized { f_txn = txn }) : int option)
        end
      end
      else begin
        ignore (log node (SAborted { a_txn = txn }) : int option);
        Commitq.remove node.commitq txn;
        Locks.release_txn node.locks txn;
        Hashtbl.remove node.prepared txn;
        drop_parked_stamp t node txn;
        try_drain t node;
        Sim.Cond.broadcast t.sim node.nlog_changed
      end

(* Termination watchdog (durability mode): spawned for every prepared entry
   at yes-vote time and again at recovery.  While this node holds [txn] in
   doubt it queries the coordinator's durable decision, completing lost
   Decides and — when the coordinator itself crashed mid-completion
   ([driving] false) — self-finalizing applied entries.  The latter is safe:
   a restarted coordinator answered no client, so finishing without it can
   violate no completion-order constraint. *)
let resolve_indoubt t node txn =
  let live_prep () =
    if node_live t node then Hashtbl.find_opt node.prepared txn else None
  in
  let rec loop attempt =
    match live_prep () with
    | None -> ()
    | Some prep ->
        if attempt >= t.config.Config.retry_limit then
          Sss_net.Rpc.stalled ~system:"sss" ~phase:"in-doubt" (Ids.txn_to_string txn)
        else begin
          let req, slot = Sss_net.Rpc.Pending.fresh node.pending_outcomes in
          send t ~src:node.id ~dst:prep.coord (Message.Dquery { req; txn });
          match
            Sss_net.Rpc.Pending.await_timeout t.sim slot ~timeout:t.config.Config.retry_max
          with
          | Some (Message.Vcommitted { vc; driving }) -> (
              match live_prep () with
              | None -> ()
              | Some prep -> (
                  match prep.final_vc with
                  | None ->
                      (* the Decide was lost: complete the internal commit *)
                      handle_decide t node ~txn ~vc ~outcome:true;
                      Sim.sleep t.sim (2. *. t.config.Config.retry_max);
                      loop 0
                  | Some _ when driving ->
                      (* the coordinator is alive and mid-completion: its
                         Finalize (strict mode) or this node's own
                         pre-commit fiber retires the entry in due course *)
                      Sim.sleep t.sim (2. *. t.config.Config.retry_max);
                      loop 0
                  | Some _ ->
                      (* orphaned applied entry: the coordinator restarted
                         and no longer drives completion.  In paper mode the
                         (respawned) pre-commit fiber retires the entry; in
                         strict mode nobody else will. *)
                      if t.config.Config.strict_order && not prep.finalizing then
                        handle_finalize t node ~txn ~reply_to:None;
                      Sim.sleep t.sim (2. *. t.config.Config.retry_max);
                      loop 0))
          | Some Message.Vaborted ->
              if live_prep () <> None then
                handle_decide t node ~txn ~vc:prep.prep_vc ~outcome:false
          | Some Message.Vundecided ->
              Sim.sleep t.sim t.config.Config.retry_initial;
              loop (attempt + 1)
          | None ->
              Sss_net.Rpc.Pending.forget node.pending_outcomes req;
              Sim.sleep t.sim t.config.Config.retry_initial;
              loop (attempt + 1)
        end
  in
  try loop 0 with Sss_net.Rpc.Crashed _ -> ()

let handle_prepare t node ~txn ~coord ~vc ~rs ~ws ~propagated =
  let local_rs = List.filter (fun (k, _) -> Replication.is_replica t.repl node.id k) rs in
  let local_ws = List.filter (fun (k, _) -> Replication.is_replica t.repl node.id k) ws in
  let got_locks =
    (not (was_abort_decided node txn))
    && Locks.acquire_all node.locks txn
         ~exclusive:(List.map fst local_ws)
         ~shared:(List.map fst local_rs) ~timeout:t.config.lock_timeout
  in
  (* The coordinator's vote timeout can beat a lock wait: its Decide(abort)
     then overtakes this very Prepare.  A late success here would strand an
     orphan in the CommitQ, so the abort decision wins.  The lock wait is
     also a suspension: the node may have crashed under it, in which case
     nothing externally visible may happen on this (stale) record. *)
  let ok =
    got_locks
    && validate node local_rs
    && (not (was_abort_decided node txn))
    && node_live t node
  in
  if not ok then begin
    Locks.release_txn node.locks txn;
    (match t.obs with
    | Some o when got_locks ->
        Sss_obs.Obs.incr o "lock.release";
        Sss_obs.Obs.emit o ~at:(now t)
          (Sss_obs.Obs.Lock_release { txn = Ids.txn_to_string txn; node = node.id })
    | _ -> ());
    if node_live t node then
      send t ~src:node.id ~dst:coord (Message.Vote { txn; ok = false; vc })
  end
  else begin
    (match t.obs with
    | Some o ->
        Sss_obs.Obs.incr o "lock.acquire";
        Sss_obs.Obs.emit o ~at:(now t)
          (Sss_obs.Obs.Lock_acquire
             {
               txn = Ids.txn_to_string txn;
               node = node.id;
               keys = List.length local_ws + List.length local_rs;
             })
    | None -> ());
    let prep_vc =
      if local_ws <> [] then begin
        let vc = bump_local t node in
        Commitq.put node.commitq ~txn ~vc;
        vc
      end
      else Nlog.most_recent_vc node.nlog
    in
    Hashtbl.replace node.prepared txn
      { rs_local = local_rs; ws_local = local_ws; prop_set = propagated; coord;
        prep_vc; final_vc = None; finalizing = false };
    (* The yes-vote is a durable promise (presumed abort: a no-vote needs
       no record).  Logged atomically with the CommitQ insertion; the vote
       leaves only once the record did. *)
    let lsn =
      log node
        (SPrepared
           { p_txn = txn; p_rs = local_rs; p_ws = local_ws; p_prop = propagated;
             p_coord = coord; p_vc = prep_vc })
    in
    if t.config.Config.durability then
      Sim.spawn t.sim (fun () ->
          (* linger past the healthy decide round-trip before querying *)
          Sim.sleep t.sim (2. *. t.config.Config.retry_max);
          resolve_indoubt t node txn);
    if log_sync node lsn && node_live t node then
      send t ~src:node.id ~dst:coord (Message.Vote { txn; ok = true; vc = prep_vc })
  end

let handle_forward_remove t node ~reader ~writer =
  if Hashtbl.mem node.active writer then
    (* The writer has not prepared yet: make sure it never propagates this
       reader at all. *)
    add_cancelled node ~writer ~reader
  else
    match find_ws node writer with
    | Some ws_keys ->
        send_nodes t ~src:node.id ~dsts:(replica_nodes t ws_keys)
          (Message.Remove { txn = reader })
    | None -> ()  (* long finished; its propagated entries are already gone *)

(* Completion acknowledgements: deduplicated by sender and matched to the
   phase the box collects for — a participant's recovery re-sends the Ack of
   a pre-commit wait that may already have counted, and an Ack arriving
   while the coordinator collects Finalize_acks must not be mistaken for
   one. *)
let same_phase a b =
  match (a, b) with `Acks, `Acks | `Fin, `Fin -> true | (`Acks | `Fin), _ -> false

let ack_arrival t node ~src ~txn ~phase =
  match Hashtbl.find_opt node.ack_boxes txn with
  | Some box when same_phase box.ack_phase phase ->
      if not (Hashtbl.mem box.acked src) then begin
        Hashtbl.replace box.acked src ();
        if Hashtbl.length box.acked = box.ack_expect && not (Sim.Ivar.is_filled box.ack_done)
        then Sim.Ivar.fill t.sim box.ack_done ()
      end
  | Some _ | None -> ()

let rec dispatch t node ~src payload =
  match payload with
  | Message.Tracked { token; inner } ->
      (* Receipt for every copy (receipts can be lost), processing only for
         the first: the protocol handlers below never see re-deliveries. *)
      Sss_net.Network.send t.net ~prio:(Message.priority (Message.Delivered { token }))
        ~src:node.id ~dst:src
        (Message.Delivered { token });
      if Sss_net.Reliable.receive t.rel token then dispatch t node ~src inner
  | Message.Delivered { token } -> Sss_net.Reliable.delivered t.rel token
  | Message.Read_request { req; txn; key; vc; has_read; is_update } ->
      handle_read t node ~src ~req ~txn ~key ~vc ~has_read ~is_update
  | Message.Read_return { req; value; vc; writer; propagated; parked_coord } ->
      Sss_net.Rpc.Pending.resolve t.sim node.pending_reads req
        { value; vc; writer; propagated; parked_coord; from = src }
  | Message.Prepare { txn; coord; vc; rs; ws; propagated } ->
      handle_prepare t node ~txn ~coord ~vc ~rs ~ws ~propagated
  | Message.Vote { txn; ok; vc } -> (
      match Hashtbl.find_opt node.vote_boxes txn with
      | Some box ->
          box.votes <- (ok, vc) :: box.votes;
          if not ok then box.any_false <- true;
          Sim.Cond.broadcast t.sim box.vchanged
      | None -> () (* the coordinator timed out and moved on *))
  | Message.Decide { txn; vc; outcome } -> handle_decide t node ~txn ~vc ~outcome
  | Message.Ack { txn } -> ack_arrival t node ~src ~txn ~phase:`Acks
  | Message.Finalize { txn } -> handle_finalize t node ~txn ~reply_to:(Some src)
  | Message.Finalize_ack { txn } -> ack_arrival t node ~src ~txn ~phase:`Fin
  | Message.Dquery { req; txn } ->
      (* In-doubt query: answer from the durable decision table.  A not yet
         flushed decision is "undecided" (it could still be lost with this
         node); no trace at all means presumed abort — either we never
         decided, or the decision is older than the retention horizon, by
         which time no participant can still hold the transaction in doubt. *)
      let verdict =
        match Hashtbl.find_opt node.decided_commits txn with
        | Some d when d.ddurable -> Message.Vcommitted { vc = d.dvc; driving = d.ddriving }
        | Some _ -> Message.Vundecided
        | None ->
            if Hashtbl.mem node.vote_boxes txn then Message.Vundecided else Message.Vaborted
      in
      send t ~src:node.id ~dst:src (Message.Doutcome { req; verdict })
  | Message.Doutcome { req; verdict } ->
      Sss_net.Rpc.Pending.resolve t.sim node.pending_outcomes req verdict
  | Message.Wait_finalized { writer; req } -> (
      match Hashtbl.find_opt node.unfinalized writer with
      | Some waiters ->
          let reply () = send t ~src:node.id ~dst:src (Message.Finalized { req }) in
          waiters := reply :: !waiters
      | None -> send t ~src:node.id ~dst:src (Message.Finalized { req }))
  | Message.Finalized { req } -> Sss_net.Rpc.Pending.resolve t.sim node.pending_finalized req ()
  | Message.Remove { txn } -> handle_remove t node ~reader:txn
  | Message.Forward_remove { reader; writer } -> handle_forward_remove t node ~reader ~writer
  | Message.Reader_probe { reader } ->
      if not (Hashtbl.mem node.active reader) then
        send t ~src:node.id ~dst:src (Message.Reader_done { reader })
  | Message.Reader_done { reader } -> handle_remove t node ~reader
  | Message.Recovered { node = _ } -> probe_orphans t node

let install t =
  Array.iter
    (fun n ->
      Sss_net.Network.set_handler t.net n.id (fun ~src payload -> dispatch t n ~src payload))
    t.nodes

(* ---- crash & redo recovery (durability mode; docs/DURABILITY.md) ---- *)

let load_snap t node (s : snap) =
  Mvstore.restore node.store s.s_store;
  List.iter (fun (txn, vc, ws, at) -> Nlog.add node.nlog ~txn ~vc ~ws ~at) s.s_nlog;
  Nlog.restore_floor node.nlog s.s_nlog_floor;
  node.node_vc <- Vclock.copy s.s_node_vc;
  node.coordinated_max <- s.s_coordinated_max;
  node.stable_vc <- s.s_stable_vc;
  node.minted <- s.s_minted;
  List.iter
    (fun (txn, sp) ->
      Hashtbl.replace node.prepared txn
        {
          rs_local = sp.sp_rs;
          ws_local = sp.sp_ws;
          prop_set = sp.sp_prop;
          coord = sp.sp_coord;
          prep_vc = sp.sp_vc;
          final_vc = sp.sp_final_vc;
          finalizing = sp.sp_finalizing;
        };
      if sp.sp_ws <> [] && sp.sp_final_vc = None then
        Commitq.put node.commitq ~txn ~vc:sp.sp_vc)
    s.s_prepared;
  List.iter
    (fun (txn, vc) ->
      Hashtbl.replace node.decided_commits txn
        { dvc = vc; ddurable = true; ddriving = false; d_at = now t })
    s.s_decided;
  List.iter (fun (txn, at) -> Hashtbl.replace node.aborted_decides txn at) s.s_aborted;
  List.iter (fun (txn, at) -> Hashtbl.replace node.tombstones txn at) s.s_tombstones;
  List.iter (fun (r, l) -> Hashtbl.replace node.forwards r (ref l)) s.s_forwards;
  List.iter (fun (txn, entry) -> Hashtbl.replace node.recent_ws txn entry) s.s_recent_ws

let replay_record t node = function
  | SPrepared { p_txn; p_rs; p_ws; p_prop; p_coord; p_vc } ->
      Hashtbl.replace node.prepared p_txn
        {
          rs_local = p_rs;
          ws_local = p_ws;
          prop_set = p_prop;
          coord = p_coord;
          prep_vc = p_vc;
          final_vc = None;
          finalizing = false;
        };
      (* the prepare's clock bump must stay visible to [bump_local]'s
         uniqueness argument even though the bump itself was volatile *)
      (Vclock.max_into node.node_vc p_vc [@owned]);
      if p_ws <> [] then Commitq.put node.commitq ~txn:p_txn ~vc:p_vc
  | SAborted { a_txn } ->
      Hashtbl.replace node.aborted_decides a_txn (now t);
      Commitq.remove node.commitq a_txn;
      Hashtbl.remove node.prepared a_txn
  | SApplied { ap_txn; ap_vc } -> (
      match Hashtbl.find_opt node.prepared ap_txn with
      | None -> ()
      | Some prep ->
          (* redo of the try_drain bundle, from the prepare's write set *)
          prep.final_vc <- Some ap_vc;
          (Vclock.max_into node.node_vc ap_vc [@owned]);
          List.iter
            (fun (k, v) -> Mvstore.install node.store k ~value:v ~vc:ap_vc ~writer:ap_txn)
            prep.ws_local;
          Nlog.add node.nlog ~txn:ap_txn ~vc:ap_vc
            ~ws:(List.map fst prep.ws_local)
            ~at:(now t);
          (* legacy chain-keep trimming only: watermark GC waits for the
             next live apply (replay must not consult a watermark computed
             against the pre-crash registry) *)
          (match t.gc with
          | None ->
              List.iter
                (fun (k, _) -> Mvstore.truncate node.store k ~keep:t.config.Config.chain_keep)
                prep.ws_local
          | Some _ -> ());
          Commitq.remove node.commitq ap_txn)
  | SFinalized { f_txn } -> (
      match Hashtbl.find_opt node.prepared f_txn with
      | None -> ()
      | Some prep ->
          (match prep.final_vc with
          | Some fvc -> node.stable_vc <- Vclock.max node.stable_vc fvc
          | None -> ());
          Hashtbl.remove node.prepared f_txn;
          Commitq.remove node.commitq f_txn)
  | SDecided { d_txn; d_vc } ->
      (* restored decisions no longer drive completion: in-doubt
         participants asking about them must self-finalize *)
      Hashtbl.replace node.decided_commits d_txn
        { dvc = d_vc; ddurable = true; ddriving = false; d_at = now t };
      (* re-learn the mint floor so this node never re-mints a clock value
         a pre-crash decision already published *)
      for i = 0 to Vclock.size d_vc - 1 do
        if Vclock.get d_vc i > node.minted then node.minted <- Vclock.get d_vc i
      done

let crash_node t id =
  if t.config.Config.durability then begin
    let old = t.nodes.(id) in
    old.alive <- false;
    (match old.wal with Some w -> Sss_storage.Storage.crash w | None -> ());
    let exn = Sss_net.Rpc.Crashed { system = "sss"; node = id } in
    Sss_net.Rpc.Pending.poison_all t.sim old.pending_reads exn;
    Sss_net.Rpc.Pending.poison_all t.sim old.pending_finalized exn;
    Sss_net.Rpc.Pending.poison_all t.sim old.pending_outcomes exn;
    (* Wake the old record's waiters so their fibers observe the crash
       (they re-check [node_live] and raise); sorted for determinism. *)
    List.iter
      (fun (_, (b : vote_box)) -> Sim.Cond.broadcast t.sim b.vchanged)
      (sorted_bindings old.vote_boxes);
    List.iter
      (fun (_, (b : ack_box)) ->
        if not (Sim.Ivar.is_filled b.ack_done) then Sim.Ivar.fill t.sim b.ack_done ())
      (sorted_bindings old.ack_boxes);
    Sim.Cond.broadcast t.sim old.nlog_changed;
    Sim.Cond.broadcast t.sim old.squeue_changed;
    (* Read-only transactions homed here die with the node (their clients
       observe Crashed and abandon them): release their watermark pins, or
       the GC floor would stay anchored to a snapshot nobody can use. *)
    (match t.gc with
    | Some g ->
        List.iter (fun (txn, ()) -> Hashtbl.remove g.ro_bounds txn) (sorted_bindings old.active)
    | None -> ());
    (* Fresh volatile state; the generator is carried over (transaction ids
       name client requests, not node state) and the log survives on its
       device.  The genesis versions are re-created exactly as at boot —
       recovery overwrites them from the checkpoint. *)
    let fresh = make_node ~gen:old.gen t.sim ~nodes:t.config.Config.nodes ~id in
    fresh.alive <- false;
    fresh.wal <- old.wal;
    let ks = Replication.keys_at t.repl id in
    Mvstore.reserve fresh.store (Array.length ks);
    Array.iter
      (fun k -> Mvstore.init_key fresh.store k ~value:(Printf.sprintf "init:%d" k))
      ks;
    t.nodes.(id) <- fresh;
    Sss_net.Network.set_handler t.net id (fun ~src payload -> dispatch t fresh ~src payload)
  end

let restart_node t id =
  let node = t.nodes.(id) in
  match node.wal with
  | None -> Sss_net.Network.recover t.net id
  | Some w ->
      Sss_storage.Storage.recover w (fun ~recovered ~replay ->
          Sim.run_fiber (fun () ->
              (match recovered with Some s -> load_snap t node s | None -> ());
              List.iter (replay_record t node) replay;
              (* Re-derive the volatile side of the prepared table: in-doubt
                 entries re-take their locks (mutually compatible — they
                 co-held them before the crash), applied entries re-park and
                 re-insert their snapshot-queue writer entries. *)
              let indoubt = sorted_bindings node.prepared in
              List.iter
                (fun (txn, (p : prep)) ->
                  match p.final_vc with
                  | None ->
                      ignore
                        (Locks.acquire_all node.locks txn
                           ~exclusive:(List.map fst p.ws_local)
                           ~shared:(List.map fst p.rs_local)
                           ~timeout:t.config.Config.lock_timeout
                          : bool)
                  | Some fvc ->
                      let sid = Vclock.get fvc node.id in
                      park_writer t node txn ~stamp:sid;
                      List.iter
                        (fun (k, _) -> Squeue.insert_write (squeue node k) ~txn ~sid)
                        p.ws_local)
                indoubt;
              (* The checkpoint may predate read-only completions whose
                 bounds fed past watermarks; folding the GC floor into the
                 reborn node's visibility floor guarantees its future
                 readers start at or above everything already collected. *)
              (match t.gc with
              | Some g -> node.coordinated_max <- Vclock.max node.coordinated_max g.floor_used
              | None -> ());
              node.alive <- true;
              Sss_net.Network.recover t.net id;
              Sss_storage.Storage.start_checkpoints w
                ~interval:t.config.Config.checkpoint_interval;
              Sim.Cond.broadcast t.sim node.nlog_changed;
              Sim.Cond.broadcast t.sim node.squeue_changed;
              (* Resume the interrupted lifecycles: applied entries re-enter
                 the pre-commit wait (their Ack may have been lost with us;
                 re-sends are deduplicated at the coordinator), finalizing
                 entries re-enter the release path, and every in-doubt entry
                 gets a termination watchdog. *)
              List.iter
                (fun (txn, (p : prep)) ->
                  (match p.final_vc with
                  | Some _ when p.finalizing -> handle_finalize t node ~txn ~reply_to:None
                  | Some fvc ->
                      let sid = Vclock.get fvc node.id in
                      let keys = List.map fst p.ws_local in
                      Sim.spawn t.sim (fun () ->
                          pre_commit_wait t node ~txn ~sid ~keys ~coord:p.coord ~lsn:None)
                  | None -> ());
                  Sim.spawn t.sim (fun () -> resolve_indoubt t node txn))
                indoubt;
              (* Reclaim entries the crash orphaned, here and cluster-wide:
                 redo just re-inserted propagated readers whose pre-crash
                 Remove left no durable trace, and readers homed here died
                 without sending theirs.  One probe pass per node. *)
              probe_orphans t node;
              for dst = 0 to t.config.Config.nodes - 1 do
                if dst <> id then send t ~src:id ~dst (Message.Recovered { node = id })
              done))
