(** SSS — the public key-value store API.

    A cluster is a set of simulated nodes running the SSS concurrency
    control (vector clocks + snapshot-queuing) over a partially replicated
    multi-version store.  All operations must be called from inside a
    simulator fiber ({!Sss_sim.Sim.spawn}); they block the calling fiber
    until the protocol completes.

    Guarantees (the paper's headline properties):
    - every committed transaction is {e externally consistent}: the single
      serialization order matches the order in which clients observe
      transaction completions;
    - read-only transactions never abort due to concurrency and never block
      update transactions (update transactions may instead delay their
      {e client response} until conflicting readers finish — the
      Pre-Commit phase).

    {1 Example}

    {[
      let sim = Sss_sim.Sim.create () in
      let cluster = Sss_kv.Kv.create sim Sss_kv.Config.default in
      Sss_sim.Sim.spawn sim (fun () ->
          let t = Sss_kv.Kv.begin_txn cluster ~node:0 ~read_only:false in
          let v = Sss_kv.Kv.read t 1 in
          Sss_kv.Kv.write t 1 (v ^ "!");
          ignore (Sss_kv.Kv.commit t));
      Sss_sim.Sim.run sim
    ]} *)

open Sss_data

type cluster = State.t

type handle = Client.handle

val create : Sss_sim.Sim.t -> Config.t -> cluster
(** Build a cluster: nodes, network, replica placement, and pre-populated
    keys ([0 .. total_keys-1], each initialised to ["init:<k>"]). *)

val begin_txn : cluster -> node:Ids.node -> read_only:bool -> handle
(** Start a transaction whose client is colocated with [node].  SSS
    requires the programmer to declare read-only transactions (§II). *)

val read : handle -> Ids.key -> string
(** Transactional read.  Reads the transaction's own buffered write if any;
    otherwise contacts every replica and returns the fastest consistent
    answer. *)

val write : handle -> Ids.key -> string -> unit
(** Buffer a write (visible to this transaction's later reads, installed at
    commit).  @raise Invalid_argument on a read-only transaction. *)

val commit : handle -> bool
(** Commit.  Read-only transactions always return [true] immediately (they
    are abort-free); update transactions run 2PC and return once the
    transaction is {e externally} committed, or [false] if validation/locking
    aborted it. *)

val abort : handle -> unit
(** Voluntarily abandon the transaction (cleans up snapshot-queue entries
    for read-only transactions). *)

val txn_id : handle -> Ids.txn

val with_txn :
  cluster ->
  node:Ids.node ->
  read_only:bool ->
  ?max_attempts:int ->
  (handle -> 'a) ->
  'a option
(** [with_txn cluster ~node ~read_only f] runs [f] inside a fresh
    transaction and commits it, retrying the whole body (new snapshot) if
    validation aborts it, up to [max_attempts] (default 5) times.
    Read-only transactions never abort, so they never retry.  Returns the
    body's result on commit, [None] if every attempt aborted.  Exceptions
    from [f] abort the transaction and propagate. *)

val is_read_only : handle -> bool

(** {1 Introspection} *)

val history : cluster -> Sss_consistency.History.t

val stats : cluster -> State.stats

val set_collect_latencies : cluster -> bool -> unit
(** Record (begin, internal-commit, external-commit) timestamps per
    committed update transaction (Figures 4(b) and 5). *)

val network_stats : cluster -> Sss_net.Network.stats

val wal_stats : cluster -> Sss_storage.Storage.stats
(** Cluster-wide write-ahead-log telemetry, summed over nodes — all zeros
    unless {!Config.t.durability} is on. *)

val version_count : cluster -> int
(** Total stored versions across every node's MV-store (O(nodes): the
    per-store counters are maintained incrementally). *)

val mem_words : cluster -> Sss_data.Mvstore.mem
(** Resident-storage accounting summed over every node's MV-store
    ({!Sss_data.Mvstore.mem_words}): the words/version figure gated by
    bench/smoke.sh and asserted by [stress --open]. *)

val nlog_entries : cluster -> int
(** Total retained node-log entries across the cluster. *)

val gc_stats : cluster -> int * int * int
(** [(watermark refreshes, versions dropped, log entries dropped)] by the
    online GC — all zeros unless {!Config.t.gc} is on. *)

val network : cluster -> Message.payload Sss_net.Network.t
(** The cluster's simulated network — exposed so fault plans
    ([Sss_chaos.Chaos.install]) can be attached to it.  Message kinds for
    per-type fault rules come from {!Message.kind_name}. *)

val obs : cluster -> Sss_obs.Obs.t option
(** The cluster's observability sink — [Some] iff {!Config.t.observe} was
    set at creation.  See docs/OBSERVABILITY.md for what it records. *)

val metrics_json : cluster -> string option
(** Shorthand: the sink's {!Sss_obs.Obs.metrics_json} when observing. *)

val trace_jsonl : cluster -> string option
(** Shorthand: the retained trace as JSON Lines when observing. *)

val transport_retries : cluster -> int
(** Re-sends performed by the fault-tolerance transport (0 unless
    {!Config.t.fault_tolerance} is on and faults actually bit). *)

val transport_stalled : cluster -> int
(** Tracked sends abandoned after the retry budget; nonzero means the fault
    plan out-lasted {!Config.t.retry_limit}. *)

val quiescent : cluster -> (unit, string) result
(** At a moment with no in-flight transactions, verify that no residue
    remains: snapshot-queues and commit queues empty, no locks held, no
    prepared 2PC state.  Catches protocol leaks in tests. *)

(** {1 Crash & recovery} — durability mode (docs/DURABILITY.md)

    Wired to {!Sss_chaos.Chaos.install}'s [on_crash]/[on_restart] hooks.
    With [Config.durability = false] both are (nearly) no-ops: the NIC
    fault is all there is, and [restart_node] merely reconnects it. *)

val crash_node : cluster -> Ids.node -> unit
(** Discard the node's volatile state: wound every parked waiter with
    {!Sss_net.Rpc.Crashed}, lose the unflushed log tail, and swap in a
    pristine node record (not yet alive).  Bare callback — safe from
    {!Sss_chaos.Chaos} event position. *)

val restart_node : cluster -> Ids.node -> unit
(** Redo recovery: reload the last checkpoint, replay the durable log tail
    (re-installing applied writes), re-take locks for in-doubt prepared
    transactions, re-park applied-but-unfinalized writers, reconnect the
    NIC, resume interrupted pre-commit/finalize fibers, and spawn
    termination watchdogs that query each in-doubt transaction's
    coordinator ([Dquery]) until its outcome is known. *)
