(** Runtime state of an SSS deployment: per-node protocol state plus the
    cluster-wide wiring (simulator, network, replica map, history).

    This module only holds data and small helpers; the protocol logic lives
    in {!Server} (participant side) and {!Client} (coordinator side). *)

open Sss_sim
open Sss_data
open Sss_net
open Sss_consistency

(* Response to a read, delivered to the requesting coordinator. *)
type read_resp = {
  value : string;
  vc : Vclock.t;
  writer : Ids.txn;
  propagated : (Ids.txn * int) list;
  parked_coord : Ids.node option;
  from : Ids.node;
}

(* Vote collection: unlike a plain Gather, the coordinator wants to stop
   early on the first negative vote. *)
type vote_box = {
  expect : int;
  mutable votes : (bool * Vclock.t) list;
  mutable any_false : bool;
  vchanged : Sim.Cond.t;
}

(* Completion-phase rendezvous.  Arrivals are deduplicated by sender and
   tagged with the phase they acknowledge: after a participant crash its
   recovery re-sends the Ack of a pre-commit wait that already counted, and
   without the dedup (or with a single shared counter across the Ack and
   Finalize_ack phases) the coordinator would move on before every replica
   really confirmed. *)
type ack_box = {
  ack_expect : int;
  acked : (Ids.node, unit) Hashtbl.t;
  ack_phase : [ `Acks | `Fin ];
  ack_done : unit Sim.Ivar.t;
}

(* What a participant remembers between Prepare and Finalize. *)
type prep = {
  rs_local : (Ids.key * Ids.txn) list;
  ws_local : (Ids.key * string) list;
  prop_set : (Ids.txn * int) list;
  coord : Ids.node;
  prep_vc : Vclock.t;  (* the clock sent with the yes-vote (CommitQ position) *)
  mutable final_vc : Vclock.t option;  (* set when the writes are applied *)
  mutable finalizing : bool;  (* the coordinator's Finalize has arrived *)
}

(* Coordinator-side durable decision bookkeeping (durability mode).
   [ddurable] flips once the SDecided record is flushed — until then a
   participant's Dquery is answered "undecided" (the decision could still be
   lost with the coordinator).  [ddriving] is true while this incarnation of
   the coordinator is running the completion protocol; a restarted
   coordinator loads decisions with [ddriving = false], telling in-doubt
   participants to finalize themselves. *)
type decided_rec = {
  dvc : Vclock.t;
  mutable ddurable : bool;
  mutable ddriving : bool;
  d_at : float;  (* insertion time, for the retention sweep *)
}

(* ---- write-ahead log records and checkpoint snapshot (durability mode) ---- *)

type logrec =
  | SPrepared of {
      p_txn : Ids.txn;
      p_rs : (Ids.key * Ids.txn) list;
      p_ws : (Ids.key * string) list;
      p_prop : (Ids.txn * int) list;
      p_coord : Ids.node;
      p_vc : Vclock.t;
    }  (** logged before the yes-vote leaves the node *)
  | SAborted of { a_txn : Ids.txn }  (** participant processed Decide(abort) *)
  | SApplied of { ap_txn : Ids.txn; ap_vc : Vclock.t }
      (** the CommitQ drain installed the writes (redo uses the ws of the
          matching [SPrepared]) *)
  | SFinalized of { f_txn : Ids.txn }
      (** the prepared entry retired after commit (external commit at a
          write replica, or a read-only participant's Decide(commit)) *)
  | SDecided of { d_txn : Ids.txn; d_vc : Vclock.t }
      (** coordinator's commit decision; flushed before Decide is sent *)

type sprep = {
  sp_rs : (Ids.key * Ids.txn) list;
  sp_ws : (Ids.key * string) list;
  sp_prop : (Ids.txn * int) list;
  sp_coord : Ids.node;
  sp_vc : Vclock.t;
  sp_final_vc : Vclock.t option;
  sp_finalizing : bool;
}

type snap = {
  s_store : Mvstore.image;
  s_nlog : (Ids.txn * Vclock.t * Ids.key list * float) list;
  (* the NLog's covered-prune floor: recovery rebuilds the log entry by
     entry and would otherwise lose the pruned contributions (Config.gc) *)
  s_nlog_floor : Vclock.t;
  s_node_vc : Vclock.t;
  s_coordinated_max : Vclock.t;
  s_stable_vc : Vclock.t;
  s_minted : int;
  s_prepared : (Ids.txn * sprep) list;
  s_decided : (Ids.txn * Vclock.t) list;  (* durable decisions only *)
  s_aborted : (Ids.txn * float) list;
  s_tombstones : (Ids.txn * float) list;
  s_forwards : (Ids.txn * (Ids.txn * Ids.node) list) list;
  s_recent_ws : (Ids.txn * (Ids.key list * float)) list;
}

type node = {
  id : Ids.node;
  (* false between a crash and the end of recovery; begin_txn refuses *)
  mutable alive : bool;
  (* the node's log — [None] unless [Config.durability]; survives crashes
     (the device is the durable medium, the node record is the volatile
     state) *)
  mutable wal : (logrec, snap) Sss_storage.Storage.t option;
  store : Mvstore.t;
  nlog : Nlog.t;
  commitq : Commitq.t;
  locks : Locks.t;
  squeues : (Ids.key, Squeue.t) Hashtbl.t;
  mutable node_vc : Vclock.t;
  (* Entry-wise max over the final clocks of transactions completed at this
     node (coordinated updates and read-only snapshots).  Folded into new
     transactions' initial visibility so a client never misses what it was
     already told committed ("latest committed transaction in Ni", §III-A,
     includes locally coordinated ones). *)
  mutable coordinated_max : Vclock.t;
  (* Like the NLog's most recent clock but restricted to *finalized*
     (externally committed) transactions.  Read-only transactions start
     from this: starting from the raw NLog would make them "cover" a
     writer that is applied locally but still parked in snapshot-queues
     elsewhere, and two readers covering two different parked writers can
     order them divergently (Adya's anomaly, found by property testing). *)
  mutable stable_vc : Vclock.t;
  (* last clock value minted by this node as a coordinator (see
     [mint_xact_vn]) *)
  mutable minted : int;
  gen : Ids.Gen.t;
  (* coordinator-side rendezvous *)
  pending_reads : read_resp Rpc.Pending.t;
  vote_boxes : (Ids.txn, vote_box) Hashtbl.t;
  ack_boxes : (Ids.txn, ack_box) Hashtbl.t;
  (* durable commit decisions made as a coordinator (durability mode) *)
  decided_commits : (Ids.txn, decided_rec) Hashtbl.t;
  (* in-doubt watchdogs' Dquery rendezvous *)
  pending_outcomes : Message.verdict Rpc.Pending.t;
  (* participant-side 2PC state *)
  prepared : (Ids.txn, prep) Hashtbl.t;
  (* abort decisions that may have overtaken their own Prepare *)
  aborted_decides : (Ids.txn, float) Hashtbl.t;
  (* Remove propagation machinery *)
  tombstones : (Ids.txn, float) Hashtbl.t;
  forwards : (Ids.txn, (Ids.txn * Ids.node) list ref) Hashtbl.t;
  reader_keys : (Ids.txn, Ids.key list ref) Hashtbl.t;
  writer_since : (Ids.txn, float) Hashtbl.t;
  (* Sorted index over the local apply stamps of parked writers (entries of
     [writer_since] whose [prepared] record carries a final clock).  The
     read path needs the minimum parked stamp and the smallest stamp above
     a bound once or twice per read; the index answers both in O(1)/O(log n)
     where a [writer_since] fold would be O(parked).  [parked_stamp]
     remembers each writer's stamp so removal never needs the (possibly
     already dropped) [prepared] record. *)
  parked : Stampset.t;
  parked_stamp : (Ids.txn, int) Hashtbl.t;
  recent_ws : (Ids.txn, Ids.key list * float) Hashtbl.t;
  cancelled : (Ids.txn, Ids.txn list ref) Hashtbl.t;
  active : (Ids.txn, unit) Hashtbl.t;  (* txns begun here, not yet finished *)
  (* update txns coordinated here that are past begin but not yet externally
     committed, with the reply closures of Wait_finalized requests *)
  unfinalized : (Ids.txn, (unit -> unit) list ref) Hashtbl.t;
  pending_finalized : unit Rpc.Pending.t;
  mutable recent_ws_ops : int;
  (* wake-ups *)
  nlog_changed : Sim.Cond.t;
  squeue_changed : Sim.Cond.t;
}

type stats = {
  mutable wait_covered_timeouts : int;
  mutable committed_update : int;
  mutable committed_ro : int;
  mutable aborted : int;
  mutable reads_served : int;
  (* (begin, decide-sent, external-commit) per committed update txn *)
  mutable latencies : (float * float * float) list;
  mutable collect_latencies : bool;
}

(* Online GC bookkeeping ([None] unless [Config.gc]).  [ro_bounds] holds
   the visibility bound of every live read-only transaction, registered at
   its first read (where the bound is refreshed and then only grows) and
   removed at commit/abort/crash; the cluster low-watermark is the
   entry-wise minimum over these and every node's [coordinated_max] — the
   floor below which no live or future reader can look. *)
type gc_state = {
  ro_bounds : (Ids.txn, Vclock.t) Hashtbl.t;
  (* cached cluster watermark: every input is monotone (given first-read
     registration), so a stale cache is merely conservative *)
  mutable wm_cache : Vclock.t;
  (* running max over watermarks ever applied; folded into a reborn node's
     [coordinated_max] so recovery can never re-expose collected state *)
  mutable floor_used : Vclock.t;
  mutable applies_since_refresh : int;
  mutable refreshes : int;
  mutable versions_dropped : int;
  mutable entries_dropped : int;
}

type t = {
  sim : Sim.t;
  config : Config.t;
  repl : Replication.t;
  net : Message.payload Network.t;
  rel : Message.payload Reliable.t;
      (* the at-least-once transport; consulted only when
         [config.fault_tolerance] is set *)
  nodes : node array;
  history : History.t;
  stats : stats;
  gc : gc_state option;
  (* observability sink; [None] unless [config.observe] — every emit site
     matches on this, so a disabled run executes no observation code *)
  obs : Sss_obs.Obs.t option;
}

(* [gen] is threaded through crash/restart cycles: transaction ids name
   client requests, not node state, so a reborn node must never re-mint an
   id its previous incarnation already handed out. *)
let make_node ?gen sim ~nodes ~id =
  {
    id;
    alive = true;
    wal = None;
    store = Mvstore.create ~nodes;
    nlog = Nlog.create ~nodes ~node:id;
    commitq = Commitq.create ~node:id;
    locks = Locks.create sim;
    squeues = Hashtbl.create 256;
    node_vc = Vclock.zero nodes;
    coordinated_max = Vclock.zero nodes;
    stable_vc = Vclock.zero nodes;
    minted = 0;
    gen = (match gen with Some g -> g | None -> Ids.Gen.create id);
    pending_reads = Rpc.Pending.create ();
    vote_boxes = Hashtbl.create 64;
    ack_boxes = Hashtbl.create 64;
    decided_commits = Hashtbl.create 64;
    pending_outcomes = Rpc.Pending.create ();
    prepared = Hashtbl.create 64;
    aborted_decides = Hashtbl.create 64;
    tombstones = Hashtbl.create 256;
    forwards = Hashtbl.create 256;
    reader_keys = Hashtbl.create 256;
    writer_since = Hashtbl.create 64;
    parked = Stampset.create ();
    parked_stamp = Hashtbl.create 64;
    recent_ws = Hashtbl.create 1024;
    cancelled = Hashtbl.create 16;
    active = Hashtbl.create 64;
    unfinalized = Hashtbl.create 64;
    pending_finalized = Rpc.Pending.create ();
    recent_ws_ops = 0;
    nlog_changed = Sim.Cond.create ();
    squeue_changed = Sim.Cond.create ();
  }

(* ---- durability helpers ---- *)

(* Deterministic traversal of txn-keyed tables (snapshots, crash sweeps). *)
let sorted_bindings tbl =
  (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] [@order_ok])
  |> List.sort (fun (a, _) (b, _) -> Ids.compare_txn a b)

(* On-disk size model, in the same spirit as [Message.wire_size]: 16-byte
   record header, 8 bytes per scalar/txn id, raw clocks, values verbatim. *)
let logrec_bytes = function
  | SPrepared { p_rs; p_ws; p_prop; p_vc; _ } ->
      16 + 8 + 8
      + Vcodec.raw_size p_vc
      + List.fold_left (fun acc _ -> acc + 12) 0 p_rs
      + List.fold_left (fun acc (_, v) -> acc + 12 + String.length v) 0 p_ws
      + (16 * List.length p_prop)
  | SAborted _ | SFinalized _ -> 16 + 8
  | SApplied { ap_vc = vc; _ } | SDecided { d_vc = vc; _ } -> 16 + 8 + Vcodec.raw_size vc

let snap_bytes s =
  let vc = Vcodec.raw_size in
  let sprep_bytes (_, sp) =
    8 + 8 + vc sp.sp_vc
    + (match sp.sp_final_vc with Some f -> vc f | None -> 0)
    + List.fold_left (fun acc _ -> acc + 12) 0 sp.sp_rs
    + List.fold_left (fun acc (_, v) -> acc + 12 + String.length v) 0 sp.sp_ws
    + (16 * List.length sp.sp_prop)
  in
  64
  + Mvstore.image_bytes s.s_store
  + List.fold_left
      (fun acc (_, c, ws, _) -> acc + 24 + vc c + (4 * List.length ws))
      0 s.s_nlog
  + vc s.s_nlog_floor
  + vc s.s_node_vc + vc s.s_coordinated_max + vc s.s_stable_vc
  + List.fold_left (fun acc sp -> acc + sprep_bytes sp) 0 s.s_prepared
  + List.fold_left (fun acc (_, c) -> acc + 8 + vc c) 0 s.s_decided
  + (16 * (List.length s.s_aborted + List.length s.s_tombstones))
  + List.fold_left (fun acc (_, l) -> acc + 8 + (16 * List.length l)) 0 s.s_forwards
  + List.fold_left
      (fun acc (_, (ks, _)) -> acc + 16 + (4 * List.length ks))
      0 s.s_recent_ws

(* Fuzzy-checkpoint snapshot: everything a reborn node cannot re-derive
   from its peers.  [node_vc] is the only clock mutated in place, so it is
   the only one copied; the rest are published (hence frozen) values.
   CommitQ entries, snapshot-queues and parked stamps are derived from
   [prepared] at recovery; reader entries are deliberately volatile (losing
   one can only make a writer's client answer earlier, never produce a
   stale read — docs/DURABILITY.md). *)
let snap_of (node : node) =
  {
    s_store = Mvstore.image_of node.store;
    s_nlog =
      List.filter_map
        (fun (e : Nlog.entry) ->
          if Ids.equal_txn e.txn Ids.genesis then None else Some (e.txn, e.vc, e.ws, e.at))
        (Nlog.entries node.nlog);
    s_nlog_floor = Nlog.floor node.nlog;
    s_node_vc = Vclock.copy node.node_vc;
    s_coordinated_max = node.coordinated_max;
    s_stable_vc = node.stable_vc;
    s_minted = node.minted;
    s_prepared =
      List.map
        (fun (txn, (p : prep)) ->
          ( txn,
            {
              sp_rs = p.rs_local;
              sp_ws = p.ws_local;
              sp_prop = p.prop_set;
              sp_coord = p.coord;
              sp_vc = p.prep_vc;
              sp_final_vc = p.final_vc;
              sp_finalizing = p.finalizing;
            } ))
        (sorted_bindings node.prepared);
    s_decided =
      List.filter_map
        (fun (txn, (d : decided_rec)) -> if d.ddurable then Some (txn, d.dvc) else None)
        (sorted_bindings node.decided_commits);
    s_aborted = sorted_bindings node.aborted_decides;
    s_tombstones = sorted_bindings node.tombstones;
    s_forwards = List.map (fun (r, l) -> (r, !l)) (sorted_bindings node.forwards);
    s_recent_ws = sorted_bindings node.recent_ws;
  }

let log (node : node) r =
  match node.wal with Some w -> Some (Sss_storage.Storage.append w r) | None -> None

(* Wait for [lsn] to reach the disk; true without suspending when not in
   durability mode.  The device is serial FIFO, so a durable [lsn] implies
   every earlier record is durable too. *)
let log_sync (node : node) lsn =
  match (node.wal, lsn) with
  | Some w, Some l -> Sss_storage.Storage.await w l
  | _ -> true

(* A fiber that suspended may resume on a node record that crashed in the
   meantime (the cluster slot then holds the replacement).  Everything
   externally visible — sends, log appends — must re-check this in the
   event that performs it. *)
let node_live (t : t) (node : node) = t.nodes.(node.id) == node

let create sim (config : Config.t) =
  let repl =
    Replication.create ~nodes:config.nodes ~degree:config.replication_degree
      ~total_keys:config.total_keys
  in
  let rng = Prng.create ~seed:config.seed in
  let net =
    Network.create
      ~size_of:(Message.wire_size ~compress:config.compress_metadata)
      sim rng ~nodes:config.nodes ~config:config.network
  in
  let nodes = Array.init config.nodes (fun id -> make_node sim ~nodes:config.nodes ~id) in
  let obs =
    if config.observe then Some (Sss_obs.Obs.create ~capacity:config.trace_capacity ())
    else None
  in
  (match obs with
  | Some o ->
      Network.set_observer net (Some { Network.obs = o; kind_of = Message.kind_name });
      (* Sample per-node ingress depths on DES ticks (amortized: every
         1024th event).  The probe is passive, so the trajectory is the
         same with or without it. *)
      Sim.set_probe sim
        (Some
           (fun () ->
             if Sim.events_processed sim land 1023 = 0 then
               for i = 0 to config.nodes - 1 do
                 Sss_obs.Obs.gauge_set o
                   ("net.queue.node" ^ string_of_int i)
                   (Network.queue_depth net i);
                 (* storage-retention gauges (GC telemetry; O(1) counters) *)
                 Sss_obs.Obs.gauge_set o
                   ("store.versions.node" ^ string_of_int i)
                   (Mvstore.version_count nodes.(i).store);
                 Sss_obs.Obs.gauge_set o
                   ("nlog.entries.node" ^ string_of_int i)
                   (Nlog.size nodes.(i).nlog)
               done))
  | None -> ());
  (* Pre-populate every key on its replicas with a genesis version. *)
  Array.iter
    (fun node ->
      let ks = Replication.keys_at repl node.id in
      Mvstore.reserve node.store (Array.length ks);
      Array.iter
        (fun k -> Mvstore.init_key node.store k ~value:(Printf.sprintf "init:%d" k))
        ks)
    nodes;
  let rel =
    Reliable.create sim net
      ~retry:
        {
          Reliable.initial = config.retry_initial;
          max = config.retry_max;
          limit = config.retry_limit;
        }
  in
  Reliable.set_obs rel obs;
  let t =
    {
      sim;
      config;
      repl;
      net;
      rel;
      nodes;
      history = History.create ~enabled:config.record_history ();
      stats =
        {
          wait_covered_timeouts = 0;
          committed_update = 0;
          committed_ro = 0;
          aborted = 0;
          reads_served = 0;
          latencies = [];
          collect_latencies = false;
        };
      gc =
        (if config.gc then
           Some
             {
               ro_bounds = Hashtbl.create 256;
               wm_cache = Vclock.zero config.nodes;
               floor_used = Vclock.zero config.nodes;
               applies_since_refresh = 0;
               refreshes = 0;
               versions_dropped = 0;
               entries_dropped = 0;
             }
         else None);
      obs;
    }
  in
  if config.durability then
    Array.iter
      (fun n ->
        let id = n.id in
        let dev =
          Iodev.create sim ~op_latency:config.fsync_latency ~bandwidth:config.disk_bandwidth
        in
        (* The snapshot closure reads through [t.nodes]: checkpoints must
           cover the node's current incarnation, not the one alive at
           creation time. *)
        let w =
          Sss_storage.Storage.create sim dev ~record_bytes:logrec_bytes
            ~snapshot:(fun () -> snap_of t.nodes.(id))
            ~snapshot_bytes:snap_bytes ?obs ()
        in
        n.wal <- Some w;
        Sss_storage.Storage.start_checkpoints w ~interval:config.checkpoint_interval)
      nodes;
  t

let node t i = t.nodes.(i)

let now t = Sim.now t.sim

let squeue node key =
  match Hashtbl.find_opt node.squeues key with
  | Some q -> q
  | None ->
      let q = Squeue.create () in
      Hashtbl.replace node.squeues key q;
      q

let send t ~src ~dst payload =
  let prio = if t.config.Config.priority_network then Message.priority payload else 100 in
  if t.config.Config.fault_tolerance then
    Reliable.send t.rel ~prio ~src ~dst (fun token -> Message.Tracked { token; inner = payload })
  else Network.send t.net ~prio ~src ~dst payload

let send_nodes t ~src ~dsts payload =
  List.iter (fun dst -> send t ~src ~dst payload) dsts

(* Nodes storing any key of [keys], deduplicated, ascending. *)
let replica_nodes t keys =
  List.sort_uniq Int.compare
    (List.concat_map (fun k -> Replication.replicas t.repl k) keys)

let record t event = History.record t.history ~at:(now t) event

(* Clock values are [raw * nodes + minting_node]: every value is created by
   exactly one bump or one xactVN mint, so equal scalars always denote the
   same transaction.  Without this, two transactions committing through
   disjoint nodes can end up with the same equalised clock entry at a node
   (the coordinator's xactVN maximum can resolve to a value imported from
   the transaction's causal past), and a reader that learned the value from
   one of them would silently treat the other as covered by its snapshot. *)
let bump_local t node =
  let n = t.config.Config.nodes in
  let current = Vclock.get node.node_vc node.id in
  let fresh = (((current / n) + 1) * n) + node.id in
  (* [node_vc] is exclusively owned (never published), so it is bumped in
     place; callers get a private snapshot they may share freely. *)
  (Vclock.set_into node.node_vc node.id fresh [@owned]);
  (match t.obs with
  | Some o ->
      Sss_obs.Obs.incr o "vclock.advance";
      Sss_obs.Obs.emit o ~at:(now t) (Sss_obs.Obs.Vclock_advance { node = node.id; value = fresh })
  | None -> ());
  Vclock.copy node.node_vc

let mint_xact_vn t node ~at_least =
  let n = t.config.Config.nodes in
  let base = Int.max at_least node.minted in
  let fresh = (((base / n) + 1) * n) + node.id in
  node.minted <- fresh;
  fresh

let is_primary t node_id key =
  match Replication.replicas t.repl key with
  | first :: _ -> first = node_id
  | [] -> false

(* ---- parked-writer stamp index ---- *)

(* A writer is parked while it is in [writer_since] with a final clock in
   [prepared]; these helpers keep [parked]/[parked_stamp] exactly in sync
   with that definition. *)

let park_writer t node txn ~stamp =
  Hashtbl.replace node.writer_since txn (now t);
  if not (Hashtbl.mem node.parked_stamp txn) then begin
    Hashtbl.replace node.parked_stamp txn stamp;
    Stampset.add node.parked stamp;
    match t.obs with
    | Some o ->
        Sss_obs.Obs.incr o "sq.park";
        Sss_obs.Obs.emit o ~at:(now t)
          (Sss_obs.Obs.Park { txn = Ids.txn_to_string txn; node = node.id; stamp })
    | None -> ()
  end

(* Drop only the index entry: must accompany every removal from [prepared]
   (having a [prepared] record is what qualifies a [writer_since] entry as
   parked). *)
let drop_parked_stamp t node txn =
  match Hashtbl.find_opt node.parked_stamp txn with
  | Some stamp -> (
      Hashtbl.remove node.parked_stamp txn;
      ignore (Stampset.remove node.parked stamp);
      match t.obs with
      | Some o ->
          Sss_obs.Obs.incr o "sq.unpark";
          Sss_obs.Obs.emit o ~at:(now t)
            (Sss_obs.Obs.Unpark { txn = Ids.txn_to_string txn; node = node.id; stamp })
      | None -> ())
  | None -> ()

let unpark_writer t node txn =
  drop_parked_stamp t node txn;
  Hashtbl.remove node.writer_since txn

(* ---- online version GC (Config.gc) ----

   The cluster low-watermark is the entry-wise minimum over (a) every
   node's [coordinated_max] and (b) every registered live read-only bound.
   Every future read-only bound dominates its home's [coordinated_max]
   (both the strict and the paper-mode first-read refresh fold it in), and
   registered bounds only grow after registration, so the watermark is
   non-decreasing and a cached value stays valid.  GC passes add no events
   and draw no randomness: with the policy on, trajectories are identical
   to GC-off (verified by a test_consistency property test). *)

let cluster_watermark t g =
  let n = t.config.Config.nodes in
  let wm = Array.make n max_int in
  Array.iter
    (fun node ->
      for w = 0 to n - 1 do
        let c = Vclock.get node.coordinated_max w in
        if c < wm.(w) then wm.(w) <- c
      done)
    t.nodes;
  (Hashtbl.fold
     (fun _ b () ->
       for w = 0 to n - 1 do
         let c = Vclock.get b w in
         if c < wm.(w) then wm.(w) <- c
       done)
     g.ro_bounds () [@order_ok]);
  (* [wm] is never written after adoption *)
  (Vclock.unsafe_of_array wm [@owned])

(* A read-only transaction enters the watermark at its first read — the
   moment its bound is refreshed and becomes monotone (a paper-mode bound
   registered at begin could still shrink at the refresh). *)
let gc_register_ro t txn bound =
  match t.gc with Some g -> Hashtbl.replace g.ro_bounds txn bound | None -> ()

let gc_unregister_ro t txn =
  match t.gc with Some g -> Hashtbl.remove g.ro_bounds txn | None -> ()

(* The watermark as applicable to [node]'s own store and log: the local
   component additionally capped below the minimum parked apply stamp, so
   the kept covered version and the pruned log entries sit under every
   present — and, stamps being released in order, every future —
   snapshot-queue cutoff at this node. *)
let node_watermark g (node : node) =
  let wm = g.wm_cache in
  match Stampset.min_elt node.parked with
  | Some s when Vclock.get wm node.id > s - 1 -> Vclock.set wm node.id (s - 1)
  | _ -> wm

(* Hook run by the CommitQ drain after each apply when [Config.gc] is on:
   refresh the cached watermark every 256 applies, collect the chains the
   apply just extended, advance the node's round-robin chain sweep (what
   reclaims keys written once and never touched again), and prune the node
   log on an amortized cadence. *)
let gc_after_apply t g (node : node) ~ws =
  g.applies_since_refresh <- g.applies_since_refresh + 1;
  let refreshed = g.applies_since_refresh >= 256 in
  if refreshed then begin
    g.applies_since_refresh <- 0;
    let wm = cluster_watermark t g in
    g.wm_cache <- wm;
    g.floor_used <- Vclock.max g.floor_used wm;
    g.refreshes <- g.refreshes + 1
  end;
  let wm = node_watermark g node in
  List.iter
    (fun (k, _) ->
      g.versions_dropped <-
        g.versions_dropped + Mvstore.truncate_covered node.store k ~watermark:wm)
    ws;
  (* Budget scales with store size so a full pass completes within a small
     constant number of applies per chain, yet stays O(1)-ish per apply. *)
  let budget = 32 + (Mvstore.chains node.store / 32) in
  g.versions_dropped <-
    g.versions_dropped + Mvstore.sweep_covered node.store ~watermark:wm ~budget;
  if refreshed || Nlog.size node.nlog land 255 = 0 then
    g.entries_dropped <- g.entries_dropped + Nlog.prune_covered node.nlog ~watermark:wm

(* Cluster-wide storage gauges (O(nodes): both counters are maintained
   incrementally). *)
let version_count t =
  Array.fold_left (fun acc node -> acc + Mvstore.version_count node.store) 0 t.nodes

let nlog_entries t = Array.fold_left (fun acc node -> acc + Nlog.size node.nlog) 0 t.nodes

(* ---- tombstones and recent write-set GC ---- *)

let tombstone_horizon = 10.0

let add_tombstone t node txn =
  Hashtbl.replace node.tombstones txn (now t);
  if Hashtbl.length node.tombstones > 20_000 then begin
    let cutoff = now t -. tombstone_horizon in
    (* Sweep in sorted txn order so the table's post-sweep shape never
       depends on bucket order (deterministic by construction). *)
    let stale =
      (Hashtbl.fold (fun k at acc -> if at < cutoff then k :: acc else acc) node.tombstones []
      [@order_ok])
      |> List.sort Ids.compare_txn
    in
    List.iter (Hashtbl.remove node.tombstones) stale
  end

let is_tombstoned node txn = Hashtbl.mem node.tombstones txn

let note_aborted_decide t node txn =
  Hashtbl.replace node.aborted_decides txn (now t);
  if Hashtbl.length node.aborted_decides > 20_000 then begin
    let cutoff = now t -. tombstone_horizon in
    let stale =
      (Hashtbl.fold
         (fun k at acc -> if at < cutoff then k :: acc else acc)
         node.aborted_decides []
      [@order_ok])
      |> List.sort Ids.compare_txn
    in
    List.iter (Hashtbl.remove node.aborted_decides) stale
  end

let was_abort_decided node txn = Hashtbl.mem node.aborted_decides txn

(* Bound the durable-decision table like the tombstone table: entries past
   the horizon answer no live in-doubt query (watchdogs only exist while a
   prepared entry does, and those retire well within it).  A swept commit
   then reads as presumed abort, which is exactly the 2PC convention. *)
let sweep_decided t node =
  if Hashtbl.length node.decided_commits > 20_000 then begin
    let cutoff = now t -. tombstone_horizon in
    let stale =
      (Hashtbl.fold
         (fun k (d : decided_rec) acc ->
           if d.d_at < cutoff && not d.ddriving then k :: acc else acc)
         node.decided_commits []
      [@order_ok])
      |> List.sort Ids.compare_txn
    in
    List.iter (Hashtbl.remove node.decided_commits) stale
  end

let recent_ws_horizon = 5.0

let remember_ws t node txn keys =
  Hashtbl.replace node.recent_ws txn (keys, now t);
  node.recent_ws_ops <- node.recent_ws_ops + 1;
  if node.recent_ws_ops land 4095 = 0 then begin
    let cutoff = now t -. recent_ws_horizon in
    let stale =
      (Hashtbl.fold
         (fun k (_, at) acc -> if at < cutoff then k :: acc else acc)
         node.recent_ws []
      [@order_ok])
      |> List.sort Ids.compare_txn
    in
    List.iter (Hashtbl.remove node.recent_ws) stale
  end

let find_ws node txn =
  Option.map fst (Hashtbl.find_opt node.recent_ws txn)

(* ---- reader entry index (reader txn -> keys with entries on this node) ---- *)

let index_reader node reader key =
  let keys =
    match Hashtbl.find_opt node.reader_keys reader with
    | Some r -> r
    | None ->
        let r = ref [] in
        Hashtbl.replace node.reader_keys reader r;
        r
  in
  if not (List.mem key !keys) then keys := key :: !keys

let take_reader_keys node reader =
  match Hashtbl.find_opt node.reader_keys reader with
  | None -> []
  | Some r ->
      Hashtbl.remove node.reader_keys reader;
      !r

let add_forward node ~reader ~writer ~coord =
  let l =
    match Hashtbl.find_opt node.forwards reader with
    | Some r -> r
    | None ->
        let r = ref [] in
        Hashtbl.replace node.forwards reader r;
        r
  in
  if not (List.mem (writer, coord) !l) then l := (writer, coord) :: !l

let take_forwards node reader =
  match Hashtbl.find_opt node.forwards reader with
  | None -> []
  | Some r ->
      Hashtbl.remove node.forwards reader;
      !r

let add_cancelled node ~writer ~reader =
  let l =
    match Hashtbl.find_opt node.cancelled writer with
    | Some r -> r
    | None ->
        let r = ref [] in
        Hashtbl.replace node.cancelled writer r;
        r
  in
  if not (List.exists (Ids.equal_txn reader) !l) then l := reader :: !l

let take_cancelled node writer =
  match Hashtbl.find_opt node.cancelled writer with
  | None -> []
  | Some r ->
      Hashtbl.remove node.cancelled writer;
      !r
