(** Fixed-bucket geometric histograms over virtual-time durations.

    Buckets are fixed at creation: bucket 0 holds values below [lo], bucket
    [i >= 1] holds [lo * ratio^(i-1) <= v < lo * ratio^i], and the last
    bucket additionally absorbs everything larger.  The defaults (100 ns
    lower edge, ratio 2, 48 buckets) span nanoseconds to hours of virtual
    time, which covers every latency the simulator can produce.

    Recording is allocation-free after creation and never consults a clock
    or PRNG, so an enabled histogram cannot perturb a trajectory.
    Percentiles are bucket-resolution estimates: the reported quantile is
    the upper edge of the bucket containing the rank, clamped to the
    largest value actually observed. *)

type t

val create : ?lo:float -> ?ratio:float -> ?buckets:int -> unit -> t
(** [lo] > 0 is bucket 1's lower edge (default [1e-7]); [ratio] > 1 the
    geometric growth factor (default [2.0]); [buckets] >= 2 the total
    bucket count (default [48]). *)

val observe : t -> float -> unit
(** Record one (non-negative) value. *)

val count : t -> int
val sum : t -> float

val mean : t -> float
(** [0.0] when empty. *)

val min_value : t -> float
(** Smallest observed value; [0.0] when empty. *)

val max_value : t -> float
(** Largest observed value; [0.0] when empty. *)

val bucket_count : t -> int

val bucket_of : t -> float -> int
(** Index of the bucket a value falls in. *)

val bucket_bounds : t -> int -> float * float
(** [(lower, upper)] edges of a bucket; bucket 0's lower edge is [0.0] and
    the last bucket's upper edge is [infinity]. *)

val counts : t -> int array
(** A copy of the per-bucket counts. *)

val percentile : t -> float -> float
(** [percentile t p] for [0.0 < p <= 1.0]; [0.0] when empty. *)

val merge : t -> t -> t
(** Combine two histograms of identical shape into a fresh one.
    @raise Invalid_argument on shape mismatch. *)

val to_json : t -> string
(** [{"count":..,"mean":..,"min":..,"max":..,"p50":..,"p95":..,"p99":..}] *)
