type event =
  | Send of { kind : string; src : int; dst : int; bytes : int }
  | Recv of { kind : string; src : int; dst : int }
  | Enqueue of { kind : string; node : int; depth : int }
  | Dequeue of { kind : string; node : int; depth : int; waited : float }
  | Drop of { kind : string; src : int; dst : int }
  | Txn_begin of { txn : string; node : int; ro : bool }
  | Txn_commit of { txn : string; node : int; ro : bool }
  | Txn_abort of { txn : string; node : int; ro : bool; reason : string }
  | Park of { txn : string; node : int; stamp : int }
  | Unpark of { txn : string; node : int; stamp : int }
  | Lock_acquire of { txn : string; node : int; keys : int }
  | Lock_release of { txn : string; node : int }
  | Vclock_advance of { node : int; value : int }
  | Retry of { src : int; dst : int; attempt : int }
  | Stall of { src : int; dst : int }

type stamped = { at : float; seq : int; event : event }

type gauge = { mutable current : int; mutable peak : int }

type t = {
  capacity : int;
  ring : stamped array;
  mutable next : int;  (* total events ever emitted; write slot is next mod capacity *)
  counters : (string, int ref) Hashtbl.t;
  hists : (string, Hist.t) Hashtbl.t;
  gauges : (string, gauge) Hashtbl.t;
}

let placeholder = { at = 0.0; seq = -1; event = Stall { src = -1; dst = -1 } }

let create ?(capacity = 65536) () =
  if capacity < 1 then invalid_arg "Obs.create: capacity must be positive";
  {
    capacity;
    ring = Array.make capacity placeholder;
    next = 0;
    counters = Hashtbl.create 64;
    hists = Hashtbl.create 32;
    gauges = Hashtbl.create 16;
  }

let emit t ~at event =
  t.ring.(t.next mod t.capacity) <- { at; seq = t.next; event };
  t.next <- t.next + 1

let incr t name =
  match Hashtbl.find_opt t.counters name with
  | Some r -> Stdlib.incr r
  | None -> Hashtbl.replace t.counters name (ref 1)

let add t name n =
  match Hashtbl.find_opt t.counters name with
  | Some r -> r := !r + n
  | None -> Hashtbl.replace t.counters name (ref n)

let observe t name v =
  match Hashtbl.find_opt t.hists name with
  | Some h -> Hist.observe h v
  | None ->
      let h = Hist.create () in
      Hist.observe h v;
      Hashtbl.replace t.hists name h

let gauge_set t name v =
  match Hashtbl.find_opt t.gauges name with
  | Some g ->
      g.current <- v;
      if v > g.peak then g.peak <- v
  | None -> Hashtbl.replace t.gauges name { current = v; peak = v }

let emitted t = t.next

let dropped t = if t.next > t.capacity then t.next - t.capacity else 0

let events t =
  let retained = if t.next < t.capacity then t.next else t.capacity in
  let first = t.next - retained in
  List.init retained (fun i -> t.ring.((first + i) mod t.capacity))

let counter t name = match Hashtbl.find_opt t.counters name with Some r -> !r | None -> 0

(* All registry read-backs sort by name: Hashtbl order must never reach
   output (same discipline lint rule R4 enforces on protocol state). *)
let sorted_bindings fold tbl =
  List.sort (fun (a, _) (b, _) -> String.compare a b) (fold (fun k v acc -> (k, v) :: acc) tbl [])

let counters t =
  List.map (fun (k, r) -> (k, !r))
    (sorted_bindings (Hashtbl.fold [@order_ok]) t.counters)

let hist t name = Hashtbl.find_opt t.hists name

let hists t = sorted_bindings (Hashtbl.fold [@order_ok]) t.hists

let gauges t =
  List.map (fun (k, g) -> (k, (g.current, g.peak))) (sorted_bindings (Hashtbl.fold [@order_ok]) t.gauges)

let kind_of_event = function
  | Send _ -> "send"
  | Recv _ -> "recv"
  | Enqueue _ -> "enqueue"
  | Dequeue _ -> "dequeue"
  | Drop _ -> "drop"
  | Txn_begin _ -> "txn_begin"
  | Txn_commit _ -> "txn_commit"
  | Txn_abort _ -> "txn_abort"
  | Park _ -> "park"
  | Unpark _ -> "unpark"
  | Lock_acquire _ -> "lock_acquire"
  | Lock_release _ -> "lock_release"
  | Vclock_advance _ -> "vclock_advance"
  | Retry _ -> "retry"
  | Stall _ -> "stall"

let escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let event_fields = function
  | Send { kind; src; dst; bytes } ->
      Printf.sprintf {|"kind":"%s","src":%d,"dst":%d,"bytes":%d|} (escape kind) src dst bytes
  | Recv { kind; src; dst } ->
      Printf.sprintf {|"kind":"%s","src":%d,"dst":%d|} (escape kind) src dst
  | Enqueue { kind; node; depth } ->
      Printf.sprintf {|"kind":"%s","node":%d,"depth":%d|} (escape kind) node depth
  | Dequeue { kind; node; depth; waited } ->
      Printf.sprintf {|"kind":"%s","node":%d,"depth":%d,"waited":%.9g|} (escape kind) node depth
        waited
  | Drop { kind; src; dst } ->
      Printf.sprintf {|"kind":"%s","src":%d,"dst":%d|} (escape kind) src dst
  | Txn_begin { txn; node; ro } ->
      Printf.sprintf {|"txn":"%s","node":%d,"ro":%b|} (escape txn) node ro
  | Txn_commit { txn; node; ro } ->
      Printf.sprintf {|"txn":"%s","node":%d,"ro":%b|} (escape txn) node ro
  | Txn_abort { txn; node; ro; reason } ->
      Printf.sprintf {|"txn":"%s","node":%d,"ro":%b,"reason":"%s"|} (escape txn) node ro
        (escape reason)
  | Park { txn; node; stamp } ->
      Printf.sprintf {|"txn":"%s","node":%d,"stamp":%d|} (escape txn) node stamp
  | Unpark { txn; node; stamp } ->
      Printf.sprintf {|"txn":"%s","node":%d,"stamp":%d|} (escape txn) node stamp
  | Lock_acquire { txn; node; keys } ->
      Printf.sprintf {|"txn":"%s","node":%d,"keys":%d|} (escape txn) node keys
  | Lock_release { txn; node } -> Printf.sprintf {|"txn":"%s","node":%d|} (escape txn) node
  | Vclock_advance { node; value } -> Printf.sprintf {|"node":%d,"value":%d|} node value
  | Retry { src; dst; attempt } ->
      Printf.sprintf {|"src":%d,"dst":%d,"attempt":%d|} src dst attempt
  | Stall { src; dst } -> Printf.sprintf {|"src":%d,"dst":%d|} src dst

let event_json { at; seq; event } =
  Printf.sprintf {|{"at":%.9g,"seq":%d,"ev":"%s",%s}|} at seq (kind_of_event event)
    (event_fields event)

let trace_jsonl t =
  let b = Buffer.create 4096 in
  List.iter
    (fun s ->
      Buffer.add_string b (event_json s);
      Buffer.add_char b '\n')
    (events t);
  Buffer.contents b

let metrics_json t =
  let b = Buffer.create 4096 in
  let obj b fmt_binding = function
    | [] -> Buffer.add_string b "{}"
    | bindings ->
        Buffer.add_char b '{';
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_char b ',';
            Buffer.add_string b (Printf.sprintf {|"%s":|} (escape k));
            fmt_binding b v)
          bindings;
        Buffer.add_char b '}'
  in
  Buffer.add_string b {|{"counters":|};
  obj b (fun b v -> Buffer.add_string b (string_of_int v)) (counters t);
  Buffer.add_string b {|,"histograms":|};
  obj b (fun b h -> Buffer.add_string b (Hist.to_json h)) (hists t);
  Buffer.add_string b {|,"gauges":|};
  obj b
    (fun b (current, peak) ->
      Buffer.add_string b (Printf.sprintf {|{"current":%d,"peak":%d}|} current peak))
    (gauges t);
  Buffer.add_string b
    (Printf.sprintf {|,"trace":{"emitted":%d,"retained":%d,"dropped":%d}}|} (emitted t)
       (if t.next < t.capacity then t.next else t.capacity)
       (dropped t));
  Buffer.contents b
