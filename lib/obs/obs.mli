(** Structured observability for the simulated cluster: a typed trace ring
    plus a metrics registry (counters, latency histograms, gauges), all on
    virtual time.

    Everything here is passive: recording never draws from a PRNG, never
    schedules simulator events, and never touches a wall clock, so an
    enabled observer cannot change a trajectory — only look at it.  The
    protocols hold an [Obs.t option] and skip every call site when it is
    [None], which keeps the disabled case allocation-free (the
    observer-effect contract pinned by [test/test_obs.ml] and the
    [bench/smoke.sh] gate).

    See docs/OBSERVABILITY.md for the event taxonomy and metric naming
    scheme. *)

(** One protocol-level occurrence.  Transaction ids are pre-rendered
    strings ([Ids.txn_to_string]) so this library depends on nothing. *)
type event =
  | Send of { kind : string; src : int; dst : int; bytes : int }
      (** a message left [src] for [dst] *)
  | Recv of { kind : string; src : int; dst : int }
      (** a message arrived at [dst] (before queueing) *)
  | Enqueue of { kind : string; node : int; depth : int }
      (** pushed onto a node's ingress queue; [depth] includes it *)
  | Dequeue of { kind : string; node : int; depth : int; waited : float }
      (** dispatched to its handler; [waited] is virtual time since send *)
  | Drop of { kind : string; src : int; dst : int }
      (** lost: crashed endpoint, severed link, or injected loss *)
  | Txn_begin of { txn : string; node : int; ro : bool }
  | Txn_commit of { txn : string; node : int; ro : bool }
  | Txn_abort of { txn : string; node : int; ro : bool; reason : string }
  | Park of { txn : string; node : int; stamp : int }
      (** an applied writer entered the parked (not externally committed) set *)
  | Unpark of { txn : string; node : int; stamp : int }
      (** it left that set (finalized or aborted) *)
  | Lock_acquire of { txn : string; node : int; keys : int }
  | Lock_release of { txn : string; node : int }
  | Vclock_advance of { node : int; value : int }
      (** a node bumped its own vector-clock entry to [value] *)
  | Retry of { src : int; dst : int; attempt : int }
      (** the at-least-once transport re-sent an unacknowledged message *)
  | Stall of { src : int; dst : int }
      (** it gave up on one after exhausting the retry budget *)

type stamped = { at : float;  (** virtual time *) seq : int; event : event }

type t

val create : ?capacity:int -> unit -> t
(** A fresh observer whose trace ring holds [capacity] events
    (default 65536); older events are overwritten and counted in
    {!dropped}. *)

(** {1 Recording} *)

val emit : t -> at:float -> event -> unit

val incr : t -> string -> unit
(** Bump a named counter (created on first use). *)

val add : t -> string -> int -> unit

val observe : t -> string -> float -> unit
(** Record a value into a named histogram (created on first use with the
    {!Hist.create} defaults). *)

val gauge_set : t -> string -> int -> unit
(** Set a named gauge's current value; its peak is tracked automatically. *)

(** {1 Reading back} *)

val emitted : t -> int
(** Total events ever emitted (including overwritten ones). *)

val dropped : t -> int
(** Events lost to ring wraparound. *)

val events : t -> stamped list
(** The retained trace, oldest first. *)

val counter : t -> string -> int
(** [0] when never bumped. *)

val counters : t -> (string * int) list
(** All counters, sorted by name. *)

val hist : t -> string -> Hist.t option

val hists : t -> (string * Hist.t) list
(** All histograms, sorted by name. *)

val gauges : t -> (string * (int * int)) list
(** All gauges as [(name, (current, peak))], sorted by name. *)

val kind_of_event : event -> string
(** The variant's name in the JSONL dump: ["send"], ["txn_commit"], ... *)

(** {1 Dumps} *)

val event_json : stamped -> string
(** One trace event as a single-line JSON object. *)

val trace_jsonl : t -> string
(** The retained trace as JSON Lines, oldest first, one event per line. *)

val metrics_json : t -> string
(** The whole registry as one JSON object:
    [{"counters":{..},"histograms":{..},"gauges":{..},
      "trace":{"emitted":..,"retained":..,"dropped":..}}]
    with keys sorted, so equal registries render identically. *)
