type t = {
  lo : float;
  ratio : float;
  counts : int array;
  mutable total : int;
  mutable sum : float;
  mutable vmin : float;
  mutable vmax : float;
}

let create ?(lo = 1e-7) ?(ratio = 2.0) ?(buckets = 48) () =
  if not (lo > 0.0) then invalid_arg "Hist.create: lo must be positive";
  if not (ratio > 1.0) then invalid_arg "Hist.create: ratio must exceed 1";
  if buckets < 2 then invalid_arg "Hist.create: need at least 2 buckets";
  {
    lo;
    ratio;
    counts = Array.make buckets 0;
    total = 0;
    sum = 0.0;
    vmin = infinity;
    vmax = neg_infinity;
  }

let bucket_count t = Array.length t.counts

(* Iterative edge walk rather than a log/exp round trip: 48 multiplies at
   most, and the boundary semantics are exact (a value equal to an edge
   lands in the bucket above it, with no floating-point log fuzz). *)
let bucket_of t v =
  let n = Array.length t.counts in
  if v < t.lo then 0
  else begin
    let i = ref 1 in
    let edge = ref (t.lo *. t.ratio) in
    while !i < n - 1 && v >= !edge do
      incr i;
      edge := !edge *. t.ratio
    done;
    !i
  end

let bucket_bounds t i =
  let n = Array.length t.counts in
  if i < 0 || i >= n then invalid_arg "Hist.bucket_bounds: index out of range";
  if i = 0 then (0.0, t.lo)
  else begin
    let lower = ref t.lo in
    for _ = 2 to i do
      lower := !lower *. t.ratio
    done;
    let upper = if i = n - 1 then infinity else !lower *. t.ratio in
    (!lower, upper)
  end

let observe t v =
  let v = if v < 0.0 then 0.0 else v in
  let i = bucket_of t v in
  t.counts.(i) <- t.counts.(i) + 1;
  t.total <- t.total + 1;
  t.sum <- t.sum +. v;
  if v < t.vmin then t.vmin <- v;
  if v > t.vmax then t.vmax <- v

let count t = t.total

let sum t = t.sum

let mean t = if t.total = 0 then 0.0 else t.sum /. float_of_int t.total

let min_value t = if t.total = 0 then 0.0 else t.vmin

let max_value t = if t.total = 0 then 0.0 else t.vmax

let counts t = Array.copy t.counts

(* Upper edge of the bucket holding the rank, clamped to the observed
   maximum so an estimate never exceeds any real value. *)
let percentile t p =
  if not (p > 0.0 && p <= 1.0) then invalid_arg "Hist.percentile: p outside (0, 1]";
  if t.total = 0 then 0.0
  else begin
    let rank =
      let r = int_of_float (ceil (p *. float_of_int t.total)) in
      if r < 1 then 1 else r
    in
    let n = Array.length t.counts in
    let cum = ref 0 in
    let found = ref (n - 1) in
    (try
       for i = 0 to n - 1 do
         cum := !cum + t.counts.(i);
         if !cum >= rank then begin
           found := i;
           raise Exit
         end
       done
     with Exit -> ());
    let _, upper = bucket_bounds t !found in
    if upper > t.vmax then t.vmax else upper
  end

let same_shape a b =
  a.lo = b.lo && a.ratio = b.ratio && Array.length a.counts = Array.length b.counts

let merge a b =
  if not (same_shape a b) then invalid_arg "Hist.merge: shape mismatch";
  let m = create ~lo:a.lo ~ratio:a.ratio ~buckets:(Array.length a.counts) () in
  Array.iteri (fun i c -> m.counts.(i) <- c + b.counts.(i)) a.counts;
  m.total <- a.total + b.total;
  m.sum <- a.sum +. b.sum;
  m.vmin <- Float.min a.vmin b.vmin;
  m.vmax <- Float.max a.vmax b.vmax;
  m

let to_json t =
  Printf.sprintf
    {|{"count":%d,"mean":%.9g,"min":%.9g,"max":%.9g,"p50":%.9g,"p95":%.9g,"p99":%.9g}|}
    t.total (mean t) (min_value t) (max_value t)
    (if t.total = 0 then 0.0 else percentile t 0.50)
    (if t.total = 0 then 0.0 else percentile t 0.95)
    (if t.total = 0 then 0.0 else percentile t 0.99)
