#!/bin/sh
# Full local gate, in dependency order:
#
#   1. dune build           — the tree compiles (warn-error in every scope)
#   2. dune runtest         — unit/property/golden suites (includes @lint via
#                             the runtest alias, but run the linter explicitly
#                             below so a lint failure is unmistakable)
#   3. sss_lint, no baseline — typed whole-program engine over all four
#                             source trees; the repo promise is an EMPTY
#                             baseline, so any finding fails the gate
#   4. bench/smoke.sh       — fig3 smoke benchmark + throughput-regression
#                             gate against the committed BENCH_smoke.json
#   5. durability smoke     — durability=off must not move the fig3 smoke
#                             trajectory vs the committed baseline, and the
#                             durable paths (WAL overhead + crash recovery)
#                             must run clean at smoke scale
#   6. saturation smoke     — the open-loop engine + online GC: the smoke
#                             sweep must replay the committed golden
#                             byte-for-byte, and the bench JSON must show
#                             admission rejection and GC drops actually
#                             happened
#
# Run from the repository root.
set -eu

echo "check: dune build"
dune build

echo "check: dune runtest"
dune runtest

echo "check: sss_lint (typed, empty baseline)"
# @check materializes fresh .cmt artifacts for every scope, including the
# executables' (plain `dune build` does not refresh those).
dune build @check
dune exec tools/lint/sss_lint.exe -- lib bin bench tools

echo "check: bench smoke"
sh bench/smoke.sh

echo "check: durability smoke"
# Durability is off by default, and off must mean OFF: the fig3 smoke
# trajectory (deterministic fields of the run smoke.sh just wrote) has to
# be byte-identical to the committed baseline.  A drift here means the
# storage engine leaked into the non-durable hot path.
for key in '"des_events"' '"virtual_seconds"' '"committed_txns"'; do
  head_line=$(git show HEAD:BENCH_smoke.json 2>/dev/null | grep "$key" | head -1 || true)
  new_line=$(grep "$key" BENCH_smoke.json | head -1)
  if [ -n "$head_line" ] && [ "$head_line" != "$new_line" ]; then
    echo "check FAIL: durability=off trajectory moved ($key: '$head_line' vs '$new_line')" >&2
    echo "  (commit the refreshed BENCH_smoke.json only if the change is intentional)" >&2
    exit 1
  fi
done
# And the durable paths themselves must run clean: the WAL overhead table
# plus the crash-recovery checkpoint sweep, seconds-long at smoke scale.
dune exec bench/main.exe -- --scale smoke durability >/dev/null
echo "check: durability gates OK"

echo "check: saturation smoke"
# Open-loop + GC trajectory gate: the saturation smoke sweep (Poisson and
# Ramp arrivals, admission queues, watermark GC, SSS + 2PC) regenerated
# from scratch must equal the committed golden byte-for-byte.
dune exec bin/golden.exe -- saturation > BENCH_sat_check.txt
if ! cmp -s BENCH_sat_check.txt test/golden/saturation_smoke.txt; then
  diff BENCH_sat_check.txt test/golden/saturation_smoke.txt >&2 || true
  echo "check FAIL: saturation smoke trajectory diverged from test/golden/saturation_smoke.txt" >&2
  echo "  (regenerate with 'dune exec bin/golden.exe -- saturation' only if intentional)" >&2
  exit 1
fi
rm -f BENCH_sat_check.txt
# And the open-loop engine must be doing real work: the bench target's
# JSON counters have to show arrivals were rejected (the knee was crossed)
# and the online GC collected versions.
dune exec bench/main.exe -- --scale smoke saturation --json BENCH_sat_check.json >/dev/null
for key in rejected gc_dropped_versions; do
  val=$(grep -o "\"$key\": [0-9]*" BENCH_sat_check.json | head -1 | tr -cd '0-9')
  if [ -z "$val" ] || [ "$val" -eq 0 ]; then
    echo "check FAIL: saturation smoke JSON has $key = '${val:-missing}', expected > 0" >&2
    exit 1
  fi
done
rm -f BENCH_sat_check.json
echo "check: saturation gates OK"

echo "check: all gates passed"
