#!/bin/sh
# Full local gate, in dependency order:
#
#   1. dune build           — the tree compiles (warn-error in every scope)
#   2. dune runtest         — unit/property/golden suites (includes @lint via
#                             the runtest alias, but run the linter explicitly
#                             below so a lint failure is unmistakable)
#   3. sss_lint, no baseline — typed whole-program engine over all four
#                             source trees; the repo promise is an EMPTY
#                             baseline, so any finding fails the gate
#   4. bench/smoke.sh       — fig3 smoke benchmark + throughput-regression
#                             gate against the committed BENCH_smoke.json
#
# Run from the repository root.
set -eu

echo "check: dune build"
dune build

echo "check: dune runtest"
dune runtest

echo "check: sss_lint (typed, empty baseline)"
# @check materializes fresh .cmt artifacts for every scope, including the
# executables' (plain `dune build` does not refresh those).
dune build @check
dune exec tools/lint/sss_lint.exe -- lib bin bench tools

echo "check: bench smoke"
sh bench/smoke.sh

echo "check: all gates passed"
