(** sss_lint typed engine: whole-program analysis over dune's [-bin-annot]
    [.cmt] artifacts ([Cmt_format] + [Typedtree] from compiler-libs).

    Where the syntactic pass in {!Lint} matches identifier *strings*, this
    engine works on resolved [Path.t]s and instantiated types, then links
    every compilation unit of the project into one program:

    - {b name resolution}: wrapper-mangled components
      ([Sss_sim__Equeue]) are demangled, library wrapper heads dropped,
      and a project-wide module-alias table (from [Tmod_ident] bindings,
      the [module U = Unix] laundering trick) is applied by iterative
      longest-prefix rewriting — so R1 flags [V.time] when [V] is an
      alias chain ending at [Unix], which the Parsetree pass cannot see;
    - {b typed R2}: a polymorphic primitive occurrence is judged by the
      instantiated type at the use site — scalar instantiations
      (int/float/bool/char/unit, or a type alias resolving to one, e.g.
      [Ids.node = int]) pass, anything structured or still polymorphic is
      flagged (constant-constructor operands exempt, [@poly_ok] respected);
    - {b call graph}: every module-level binding is a node; references
      (applied or passed as values) are edges, with local [Pident]s mapped
      through their unique stamps so shadowing cannot forge edges.

    On top of the graph, the three interprocedural rule families:

    - {b R7 determinism taint}: occurrences of nondeterminism sources
      ([Unix.*], [Random.*], [Sys.time], un-[@order_ok]ed
      [Hashtbl.iter/fold], [Domain.*] outside [lib/par]) are traced
      backwards; if a definition in an entry-scope library
      ({!Lint.entry_libs}) reaches the source through at least one call
      edge, the source is reported with the shortest entry→source chain.
      [@deterministic] on a binding is a taint barrier ("audited").
    - {b R8 hot-path allocation}: inside [[@hot]]-marked bindings the
      typed tree must contain no closure (a [Texp_function] off the
      binding's currying spine), no [lazy], no tuple construction, no
      partial application, and no float boxing (float-typed argument to a
      polymorphic formal, float in a constructor, float field in a
      non-float-record, float stored into a mixed record).  [@alloc_ok]
      marks a deliberate cold branch.
    - {b R9 escaping mutable state}: {!Lint}'s R6 through the call graph —
      a module-level binding whose value is a closure capturing locally
      created mutable state ([let c = let r = ref 0 in fun () -> ...]),
      directly or via a "factory" function returning such a closure.
      [[@@domain_safe]] suppresses, as for R6.

    Limitations (documented in docs/LINT.md): [let module] aliases are
    keyed per unit (two same-named local aliases in one unit share a key);
    R9's mutable-creator check on locals is name-based. *)

open Typedtree

(* ---- small helpers --------------------------------------------------- *)

let has_attr name (attrs : Parsetree.attributes) =
  List.exists
    (fun (a : Parsetree.attribute) -> String.equal a.attr_name.txt name)
    attrs

let rec path_comps (p : Path.t) =
  match p with
  | Path.Pident id -> [ Ident.name id ]
  | Path.Pdot (p, s) -> path_comps p @ [ s ]
  | Path.Papply (p, _) -> path_comps p
  | Path.Pextra_ty (p, _) -> path_comps p

let path_pident_unique (p : Path.t) =
  match p with Path.Pident id -> Some (Ident.unique_name id) | _ -> None

(* "Sss_sim__Equeue" -> "Equeue" (keep the tail after the last "__"). *)
let demangle_comp c =
  let n = String.length c in
  let rec last_sep i best =
    if i + 1 >= n then best
    else if c.[i] = '_' && c.[i + 1] = '_' then last_sep (i + 1) (Some (i + 2))
    else last_sep (i + 1) best
  in
  match last_sep 0 None with
  | Some j when j < n -> String.sub c j (n - j)
  | _ -> c

(* ---- program representation ------------------------------------------ *)

type param_class = Pc_scalar | Pc_var | Pc_name of string list | Pc_other

type hot_alloc =
  | Ha_closure
  | Ha_lazy
  | Ha_tuple
  | Ha_partial of string  (* lexeme of the partially applied head *)
  | Ha_float_app of string list * string option  (* callee comps, pident *)
  | Ha_float_box of string  (* constructor / field lexeme *)

type r6_shape =
  | R6_creator of string list * string option  (* head comps, pident *)
  | R6_definite of string  (* lexeme *)

type okind =
  | K_ident of {
      pclass : param_class;
      exempt_operand : bool;  (* const-ctor arg or [@poly_ok] on an operand *)
      head_ident : string option;  (* Ident.unique_name for Pident paths *)
    }
  | K_hot of hot_alloc
  | K_r6 of r6_shape
  | K_r9_direct of string  (* creator lexeme captured by the closure *)

type occ = {
  o_kind : okind;
  o_comps : string list;  (* raw path components; [] for non-name kinds *)
  o_file : string;
  o_scope : string;
  o_line : int;
  o_col : int;
  o_context : string;
  o_unit : string;
  o_prefixes : string list;  (* qualification candidates, longest first *)
  o_def : string option;  (* canonical name of the enclosing def *)
  o_sup : int;  (* suppression bitmask by Lint.rule_index *)
}

type def = {
  d_name : string;  (* canonical: "Unit.Sub.binding" *)
  d_unit : string;
  d_scope : string;
  d_file : string;
  d_line : int;
  d_col : int;
  d_context : string;
  d_hot : bool;
  d_det : bool;  (* [@deterministic]: taint barrier *)
  d_entry : bool;  (* lives in an R7 entry-scope library *)
  d_toplevel_value : bool;  (* module-level non-function binding *)
  d_sup9 : bool;  (* [@@domain_safe] *)
  d_prefixes : string list;
  mutable d_factory : bool;
  mutable d_result_apps : (string list * string option) list;
}

type program = {
  mutable p_occs : occ list;  (* reversed during the walk *)
  p_defs : (string, def) Hashtbl.t;
  p_def_order : string list ref;  (* insertion order, for determinism *)
  p_def_idents : (string, string) Hashtbl.t;  (* Ident.unique_name -> def *)
  p_aliases : (string, string list) Hashtbl.t;  (* qualified alias -> target *)
  p_tyaliases : (string, string * string list) Hashtbl.t;
      (* canonical type name -> owner unit, raw target comps *)
  mutable p_wrappers : string list;  (* library wrapper module names *)
}

let new_program () =
  {
    p_occs = [];
    p_defs = Hashtbl.create 256;
    p_def_order = ref [];
    p_def_idents = Hashtbl.create 256;
    p_aliases = Hashtbl.create 64;
    p_tyaliases = Hashtbl.create 64;
    p_wrappers = [];
  }

(* ---- per-unit walk state --------------------------------------------- *)

type wstate = {
  prog : program;
  w_file : string;
  w_scope : string;
  w_unit : string;
  sup : int array;  (* suppression depth per rule *)
  mutable ctx : string option list;
  mutable modpath : string list;  (* outermost first *)
  mutable cur_def : def option;
  mutable hot_depth : int;
  mutable spine : bool;
  mutable in_functor : bool;
}

let context_name st =
  match List.find_map Fun.id st.ctx with Some c -> c | None -> "<toplevel>"

let sup_mask st =
  let m = ref 0 in
  Array.iteri (fun i d -> if d > 0 then m := !m lor (1 lsl i)) st.sup;
  !m

let in_lib st = match Lint.scope_dir st.w_scope with Lint.Lib _ -> true | _ -> false

let push_attrs st (attrs : Parsetree.attributes) =
  List.filter_map
    (fun (a : Parsetree.attribute) ->
      match Lint.attr_rule a with
      | Some Lint.R1 when in_lib st && String.equal a.attr_name.txt "wallclock_ok"
        ->
          None
      | Some r ->
          st.sup.(Lint.rule_index r) <- st.sup.(Lint.rule_index r) + 1;
          Some r
      | None -> None)
    attrs

let pop_attrs st pushed =
  List.iter (fun r -> st.sup.(Lint.rule_index r) <- st.sup.(Lint.rule_index r) - 1) pushed

(* Qualification candidates at the current module path ([modpath] is
   innermost-first): with [w_unit = "Network"] and [modpath = ["Iq"]] this
   is ["Network.Iq"; "Network"; ""]. *)
let prefixes_of ~unit_name modpath =
  let rec go rev acc =
    match rev with
    | [] -> List.rev ("" :: unit_name :: acc)
    | _ :: tl ->
        go tl ((unit_name ^ "." ^ String.concat "." (List.rev rev)) :: acc)
  in
  go modpath []

let record_occ st ?(comps = []) ?def_name ~loc kind =
  let pos = loc.Location.loc_start in
  let def_name =
    match def_name with
    | Some _ as d -> d
    | None -> Option.map (fun d -> d.d_name) st.cur_def
  in
  st.prog.p_occs <-
    {
      o_kind = kind;
      o_comps = comps;
      o_file = st.w_file;
      o_scope = st.w_scope;
      o_line = pos.Lexing.pos_lnum;
      o_col = pos.Lexing.pos_cnum - pos.Lexing.pos_bol;
      o_context = context_name st;
      o_unit = st.w_unit;
      o_prefixes = prefixes_of ~unit_name:st.w_unit st.modpath;
      o_def = def_name;
      o_sup = sup_mask st;
    }
    :: st.prog.p_occs

(* ---- type classification --------------------------------------------- *)

let scalar_predefs =
  [ Predef.path_int; Predef.path_float; Predef.path_bool; Predef.path_char;
    Predef.path_unit ]

let is_float_ty ty =
  match Types.get_desc ty with
  | Types.Tconstr (p, [], _) -> Path.same p Predef.path_float
  | _ -> false

let rec first_param ty =
  match Types.get_desc ty with
  | Types.Tarrow (_, a, _, _) -> Some a
  | Types.Tpoly (t, _) -> first_param t
  | _ -> None

let classify_param ty =
  match first_param ty with
  | None -> Pc_other
  | Some a -> (
      match Types.get_desc a with
      | Types.Tconstr (p, [], _) ->
          if List.exists (Path.same p) scalar_predefs then Pc_scalar
          else Pc_name (path_comps p)
      | Types.Tvar _ | Types.Tunivar _ -> Pc_var
      | _ -> Pc_other)

(* Walk the generic scheme of a callee alongside the actual arguments:
   a [Tvar] formal receiving a float actual boxes it (minus the flat
   float-array primitives, exempted after resolution in phase 2). *)
let float_into_poly_formal (vd : Types.value_description) args =
  let rec go ty args =
    match (Types.get_desc ty, args) with
    | _, [] -> false
    | Types.Tpoly (t, _), _ -> go t args
    | Types.Tarrow (_, formal, rest, _), (_, actual) :: more ->
        let hit =
          match (Types.get_desc formal, actual) with
          | (Types.Tvar _ | Types.Tunivar _), Some (e : expression) ->
              is_float_ty e.exp_type
          | _ -> false
        in
        hit || go rest more
    | _ -> false
  in
  go vd.Types.val_type args

(* ---- R9 local analysis ----------------------------------------------- *)

(* Does this RHS create mutable state?  Name-based on the raw head (the
   fixture/real cases use literal [ref]/[Hashtbl.create]); records and
   array literals are judged from types. *)
let rec creates_mutable (e : expression) =
  match e.exp_desc with
  | Texp_apply ({ exp_desc = Texp_ident (p, _, _); _ }, _) ->
      let s = Lint.strip_stdlib (String.concat "." (path_comps p)) in
      if List.mem s Lint.mutable_creators then Some s else None
  | Texp_array _ -> Some "[|...|]"
  | Texp_record { fields; _ }
    when Array.exists
           (fun ((ld : Types.label_description), _) ->
             ld.Types.lbl_mut = Asttypes.Mutable)
           fields ->
      Some "{mutable record}"
  | Texp_let (_, _, b) | Texp_sequence (_, b) | Texp_open (_, b) ->
      creates_mutable b
  | _ -> None

(* Collect every [Pident] unique name referenced anywhere under [e]. *)
let referenced_uniques (e : expression) =
  let acc = Hashtbl.create 16 in
  let open Tast_iterator in
  let expr self (e : expression) =
    (match e.exp_desc with
    | Texp_ident (Path.Pident id, _, _) ->
        Hashtbl.replace acc (Ident.unique_name id) ()
    | _ -> ());
    default_iterator.expr self e
  in
  let it = { default_iterator with expr } in
  it.expr it e;
  acc

(* The value spine of a binding: mutable locals introduced by [let]s on the
   way down, and whether the final value is a closure capturing one of
   them.  Returns [Some creator_lexeme] on capture. *)
let escaped_capture (e : expression) =
  let rec go muts e =
    match e.exp_desc with
    | Texp_let (_, vbs, body) ->
        let muts =
          List.fold_left
            (fun muts vb ->
              match (vb.vb_pat.pat_desc, creates_mutable vb.vb_expr) with
              | Tpat_var (id, _), Some lex -> (Ident.unique_name id, lex) :: muts
              | _ -> muts)
            muts vbs
        in
        go muts body
    | Texp_sequence (_, b) | Texp_open (_, b) -> go muts b
    | Texp_letmodule (_, _, _, _, b) -> go muts b
    | Texp_function _ -> (
        match muts with
        | [] -> None
        | _ ->
            let refs = referenced_uniques e in
            List.find_map
              (fun (u, lex) -> if Hashtbl.mem refs u then Some lex else None)
              muts)
    | _ -> None
  in
  go [] e

(* Applications in result position (through let/sequence spines and
   if/match branches): the calls whose result becomes this binding's
   value.  Used to propagate R9 "factory" status. *)
let result_apps (e : expression) =
  let acc = ref [] in
  let rec go e =
    match e.exp_desc with
    | Texp_let (_, _, b) | Texp_sequence (_, b) | Texp_open (_, b) -> go b
    | Texp_letmodule (_, _, _, _, b) -> go b
    | Texp_ifthenelse (_, t, f) ->
        go t;
        Option.iter go f
    | Texp_match (_, cases, _) -> List.iter (fun c -> go c.c_rhs) cases
    | Texp_apply ({ exp_desc = Texp_ident (p, _, _); _ }, _) ->
        acc := (path_comps p, path_pident_unique p) :: !acc
    | _ -> ()
  in
  go e;
  !acc

(* Unwrap a function definition's currying spine (single-pattern chunks
   merge into one compiled function) down to the body expressions. *)
let rec spine_bodies (e : expression) =
  match e.exp_desc with
  | Texp_function { cases = [ { c_rhs; c_guard = None; _ } ]; _ } ->
      spine_bodies c_rhs
  | Texp_function { cases; _ } -> List.map (fun c -> c.c_rhs) cases
  | _ -> [ e ]

let is_function (e : expression) =
  match e.exp_desc with Texp_function _ -> true | _ -> false

(* ---- R6 typed spine --------------------------------------------------- *)

let rec r6_shape (e : expression) =
  match e.exp_desc with
  | Texp_apply ({ exp_desc = Texp_ident (p, _, _); _ }, _) ->
      Some (R6_creator (path_comps p, path_pident_unique p))
  | Texp_record { fields; representation; _ } -> (
      match representation with
      | _
        when Array.exists
               (fun ((ld : Types.label_description), _) ->
                 ld.Types.lbl_mut = Asttypes.Mutable)
               fields ->
          Some (R6_definite "{mutable record}")
      | _ -> None)
  | Texp_array (_ :: _) -> Some (R6_definite "[|...|]")
  | Texp_lazy _ -> Some (R6_definite "lazy")
  | Texp_tuple es -> List.find_map r6_shape es
  | Texp_let (_, _, b) | Texp_sequence (_, b) | Texp_open (_, b) -> r6_shape b
  | Texp_letmodule (_, _, _, _, b) -> r6_shape b
  | _ -> None

(* ---- the per-unit walk ------------------------------------------------ *)

let const_ctor_arg args =
  List.exists
    (fun ((_ : Asttypes.arg_label), a) ->
      match a with
      | Some (e : expression) -> (
          (match e.exp_desc with
          | Texp_construct (_, _, []) -> true
          | Texp_variant (_, None) -> true
          | _ -> false)
          || List.exists
               (fun (at : Parsetree.attribute) ->
                 match Lint.attr_rule at with Some Lint.R2 -> true | _ -> false)
               e.exp_attributes)
      | None -> false)
    args

let hot st = st.hot_depth > 0

let rec unwrap_mod (me : module_expr) =
  match me.mod_desc with
  | Tmod_constraint (m, _, _, _) -> unwrap_mod m
  | _ -> me

let qualified_name st name =
  match st.modpath with
  | [] -> name
  | mp -> String.concat "." (List.rev mp) ^ "." ^ name

let register_alias st name (me : module_expr) =
  match (unwrap_mod me).mod_desc with
  | Tmod_ident (p, _) ->
      Hashtbl.replace st.prog.p_aliases
        (st.w_unit ^ "." ^ qualified_name st name)
        (path_comps p)
  | _ -> ()

let make_def st ?name ~loc ~hot_def ~det ~domain_safe ~is_fun () =
  let nm = match name with Some n -> n | None -> "<toplevel>" in
  let context = qualified_name st nm in
  let d_name = st.w_unit ^ "." ^ context in
  let pos = loc.Location.loc_start in
  let d =
    {
      d_name;
      d_unit = st.w_unit;
      d_scope = st.w_scope;
      d_file = st.w_file;
      d_line = pos.Lexing.pos_lnum;
      d_col = pos.Lexing.pos_cnum - pos.Lexing.pos_bol;
      d_context = context;
      d_hot = hot_def;
      d_det = det;
      d_entry =
        (match Lint.scope_dir st.w_scope with
        | Lint.Lib sub -> List.mem sub Lint.entry_libs
        | _ -> false);
      d_toplevel_value = (not is_fun) && not st.in_functor;
      d_sup9 = domain_safe;
      d_prefixes = prefixes_of ~unit_name:st.w_unit st.modpath;
      d_factory = false;
      d_result_apps = [];
    }
  in
  if not (Hashtbl.mem st.prog.p_defs d_name) then
    st.prog.p_def_order := d_name :: !(st.prog.p_def_order);
  Hashtbl.replace st.prog.p_defs d_name d;
  d

let make_iterator st =
  let open Tast_iterator in
  let record_ident ~loc (p : Path.t) (ty : Types.type_expr) args =
    record_occ st ~comps:(path_comps p) ~loc
      (K_ident
         {
           pclass = classify_param ty;
           exempt_operand =
             (match args with Some a -> const_ctor_arg a | None -> false);
           head_ident = path_pident_unique p;
         })
  in
  let expr self (e : expression) =
    let saved_spine = st.spine in
    let pushed = push_attrs st e.exp_attributes in
    (match e.exp_desc with
    | Texp_function { cases; _ } -> (
        if (not st.spine) && hot st then
          record_occ st ~loc:e.exp_loc (K_hot Ha_closure);
        match cases with
        | [ { c_guard = None; c_rhs; _ } ] ->
            (* single-pattern chunk: stays on the compiled function's
               currying spine *)
            st.spine <- true;
            self.expr self c_rhs
        | cases ->
            List.iter
              (fun c ->
                (match c.c_guard with
                | Some g ->
                    st.spine <- false;
                    self.expr self g
                | None -> ());
                st.spine <- false;
                self.expr self c.c_rhs)
              cases)
    | Texp_apply (({ exp_desc = Texp_ident (p, _, vd); _ } as head), args) ->
        record_ident ~loc:head.exp_loc p head.exp_type (Some args);
        if hot st then begin
          (match Types.get_desc e.exp_type with
          | Types.Tarrow _ ->
              record_occ st ~loc:e.exp_loc
                (K_hot
                   (Ha_partial
                      (Lint.strip_stdlib (String.concat "." (path_comps p)))))
          | _ -> ());
          if float_into_poly_formal vd args then
            record_occ st ~loc:e.exp_loc
              (K_hot (Ha_float_app (path_comps p, path_pident_unique p)))
        end;
        st.spine <- false;
        List.iter (fun (_, a) -> Option.iter (self.expr self) a) args
    | Texp_ident (p, _, _) -> record_ident ~loc:e.exp_loc p e.exp_type None
    | Texp_lazy inner ->
        if hot st then record_occ st ~loc:e.exp_loc (K_hot Ha_lazy);
        st.spine <- false;
        self.expr self inner
    | Texp_tuple es ->
        if hot st then record_occ st ~loc:e.exp_loc (K_hot Ha_tuple);
        st.spine <- false;
        List.iter (self.expr self) es
    | Texp_construct (_, cd, args) ->
        if hot st && List.exists (fun a -> is_float_ty a.exp_type) args then
          record_occ st ~loc:e.exp_loc
            (K_hot (Ha_float_box cd.Types.cstr_name));
        st.spine <- false;
        List.iter (self.expr self) args
    | Texp_record { fields; representation; extended_expression } ->
        (if hot st then
           let float_repr =
             match representation with
             | Types.Record_float -> true
             | _ -> false
           in
           if
             (not float_repr)
             && Array.exists
                  (fun ((_ : Types.label_description), rld) ->
                    match rld with
                    | Overridden (_, fe) -> is_float_ty fe.exp_type
                    | Kept _ -> false)
                  fields
           then
             record_occ st ~loc:e.exp_loc (K_hot (Ha_float_box "{float field}")));
        st.spine <- false;
        Option.iter (self.expr self) extended_expression;
        Array.iter
          (fun ((_ : Types.label_description), rld) ->
            match rld with Overridden (_, fe) -> self.expr self fe | Kept _ -> ())
          fields
    | Texp_setfield (obj, _, lbl, v) ->
        (if hot st && is_float_ty v.exp_type then
           let float_repr =
             match lbl.Types.lbl_repres with
             | Types.Record_float -> true
             | _ -> false
           in
           if not float_repr then
             record_occ st ~loc:e.exp_loc
               (K_hot (Ha_float_box ("<- " ^ lbl.Types.lbl_name))));
        st.spine <- false;
        self.expr self obj;
        self.expr self v
    | Texp_let (_, vbs, body)
      when st.spine && has_attr "#default" e.exp_attributes ->
        (* optional-argument default expansion ([?(prio = 100)]): the
           typechecker splices this let between curry chunks and the
           backend fuses the chain into one n-ary function — the next
           chunk is not a runtime closure, keep it on the spine *)
        st.spine <- false;
        List.iter (fun vb -> self.expr self vb.vb_expr) vbs;
        st.spine <- true;
        self.expr self body
    | Texp_letmodule (_, name, _, mexpr, _) ->
        (match name.txt with
        | Some n -> register_alias st n mexpr
        | None -> ());
        st.spine <- false;
        default_iterator.expr self e
    | _ ->
        st.spine <- false;
        default_iterator.expr self e);
    st.spine <- saved_spine;
    pop_attrs st pushed
  in
  (* Reached for [let]s nested in expressions and for structures inside
     local modules: context + suppression + [@hot] tracking, value spine on
     the RHS.  Module-level bindings go through [walk_toplevel_vb] instead
     (defs, R6/R9), which does not use this hook. *)
  let value_binding self (vb : value_binding) =
    let pushed = push_attrs st vb.vb_attributes in
    let name =
      match vb.vb_pat.pat_desc with
      | Tpat_var (_, l) -> Some l.txt
      | _ -> None
    in
    let was_hot = st.hot_depth in
    if has_attr "hot" vb.vb_attributes then st.hot_depth <- st.hot_depth + 1;
    st.ctx <- name :: st.ctx;
    (* Unlike a module-level binding (whose currying chain is a static
       closure), a [let]-bound function nested in a hot body is a fresh
       runtime allocation per evaluation: no value spine in hot code. *)
    st.spine <- not (hot st);
    self.expr self vb.vb_expr;
    st.ctx <- List.tl st.ctx;
    st.hot_depth <- was_hot;
    pop_attrs st pushed
  in
  { default_iterator with expr; value_binding }

let rec walk_structure st it (str : structure) =
  List.iter (walk_structure_item st it) str.str_items

and walk_structure_item st it (item : structure_item) =
  match item.str_desc with
  | Tstr_value (_, vbs) -> List.iter (walk_toplevel_vb st it) vbs
  | Tstr_eval (e, attrs) ->
      let pushed = push_attrs st attrs in
      let def =
        make_def st ~name:"<init>" ~loc:e.exp_loc ~hot_def:false ~det:false
          ~domain_safe:false ~is_fun:true ()
      in
      let saved = st.cur_def in
      st.cur_def <- Some def;
      st.spine <- false;
      it.Tast_iterator.expr it e;
      st.cur_def <- saved;
      pop_attrs st pushed
  | Tstr_module mb -> walk_module_binding st it mb
  | Tstr_recmodule mbs -> List.iter (walk_module_binding st it) mbs
  | Tstr_include incl -> walk_module_expr st it incl.incl_mod
  | Tstr_type (_, tds) -> List.iter (collect_tyalias st) tds
  | _ -> ()

and collect_tyalias st (td : type_declaration) =
  match td.typ_manifest with
  | Some { ctyp_desc = Ttyp_constr (p, _, []); _ } ->
      Hashtbl.replace st.prog.p_tyaliases
        (st.w_unit ^ "." ^ qualified_name st td.typ_name.txt)
        (st.w_unit, path_comps p)
  | _ -> ()

and walk_module_binding st it (mb : module_binding) =
  let name = match mb.mb_name.txt with Some n -> n | None -> "_" in
  register_alias st name mb.mb_expr;
  let pushed = push_attrs st mb.mb_attributes in
  let r9 = Lint.rule_index Lint.R9 in
  let extra9 = has_attr "domain_safe" mb.mb_attributes in
  if extra9 then st.sup.(r9) <- st.sup.(r9) + 1;
  st.modpath <- name :: st.modpath;
  walk_module_expr st it mb.mb_expr;
  st.modpath <- List.tl st.modpath;
  if extra9 then st.sup.(r9) <- st.sup.(r9) - 1;
  pop_attrs st pushed

and walk_module_expr st it (me : module_expr) =
  match me.mod_desc with
  | Tmod_structure str -> walk_structure st it str
  | Tmod_constraint (inner, _, _, _) -> walk_module_expr st it inner
  | Tmod_functor (_, body) ->
      let was = st.in_functor in
      st.in_functor <- true;
      walk_module_expr st it body;
      st.in_functor <- was
  | Tmod_apply (f, a, _) ->
      walk_module_expr st it f;
      walk_module_expr st it a
  | Tmod_apply_unit f -> walk_module_expr st it f
  | Tmod_ident _ | Tmod_unpack _ -> ()

and walk_toplevel_vb st it (vb : value_binding) =
  let pushed = push_attrs st vb.vb_attributes in
  let domain_safe = has_attr "domain_safe" vb.vb_attributes in
  let r9 = Lint.rule_index Lint.R9 in
  if domain_safe then st.sup.(r9) <- st.sup.(r9) + 1;
  let hot_def = has_attr "hot" vb.vb_attributes in
  let det = has_attr "deterministic" vb.vb_attributes in
  let name, uniq =
    match vb.vb_pat.pat_desc with
    | Tpat_var (id, l) -> (Some l.txt, Some (Ident.unique_name id))
    | _ -> (None, None)
  in
  let is_fun = is_function vb.vb_expr in
  let def =
    make_def st ?name ~loc:vb.vb_loc ~hot_def ~det ~domain_safe ~is_fun ()
  in
  (match uniq with
  | Some u -> Hashtbl.replace st.prog.p_def_idents u def.d_name
  | None -> ());
  let saved_def = st.cur_def in
  st.cur_def <- Some def;
  st.ctx <- name :: st.ctx;
  (if not st.in_functor then begin
     (* R6: does the binding's value spine construct mutable state? *)
     (match r6_shape vb.vb_expr with
     | Some shape -> record_occ st ~loc:vb.vb_loc (K_r6 shape)
     | None -> ());
     (* R9 direct: a module-level value closing over locally created
        mutable state *)
     (if not is_fun then
        match escaped_capture vb.vb_expr with
        | Some lex -> record_occ st ~loc:vb.vb_loc (K_r9_direct lex)
        | None -> ());
     def.d_result_apps <-
       (if is_fun then List.concat_map result_apps (spine_bodies vb.vb_expr)
        else result_apps vb.vb_expr);
     if
       is_fun
       && List.exists
            (fun b -> match escaped_capture b with Some _ -> true | None -> false)
            (spine_bodies vb.vb_expr)
     then def.d_factory <- true
   end);
  let was_hot = st.hot_depth in
  if hot_def then st.hot_depth <- st.hot_depth + 1;
  st.spine <- true;
  it.Tast_iterator.expr it vb.vb_expr;
  st.hot_depth <- was_hot;
  st.ctx <- List.tl st.ctx;
  st.cur_def <- saved_def;
  if domain_safe then st.sup.(r9) <- st.sup.(r9) - 1;
  pop_attrs st pushed

let walk_unit prog ~file ~scope (str : structure) =
  let unit_name =
    String.capitalize_ascii (Filename.remove_extension (Filename.basename file))
  in
  let st =
    {
      prog;
      w_file = file;
      w_scope = scope;
      w_unit = unit_name;
      sup = Array.make (List.length Lint.all_rules) 0;
      ctx = [];
      modpath = [];
      cur_def = None;
      hot_depth = 0;
      spine = false;
      in_functor = false;
    }
  in
  let it = make_iterator st in
  walk_structure st it str

(* ---- phase 2: whole-program resolution and rule emission -------------- *)

let rec take k l =
  if k <= 0 then [] else match l with [] -> [] | x :: tl -> x :: take (k - 1) tl

let rec drop k l =
  if k <= 0 then l else match l with [] -> [] | _ :: tl -> drop (k - 1) tl

(* Demangle wrapper components and drop a leading library-wrapper head
   ([Sss_net.Network.send] -> [Network.send]). *)
let demangle prog comps =
  let comps = List.map demangle_comp comps in
  match comps with
  | w :: (_ :: _ as rest) when List.mem w prog.p_wrappers -> rest
  | _ -> comps

(* Iterative longest-prefix alias rewriting: each round replaces the
   longest module prefix that matches an alias visible from [prefixes].
   Bounded fuel keeps accidental alias cycles from looping. *)
let resolve_comps prog ~prefixes comps =
  let rec loop fuel comps =
    if fuel = 0 then comps
    else
      let n = List.length comps in
      let rec try_j j =
        if j < 1 then None
        else
          let head = String.concat "." (take j comps) in
          let rec try_q = function
            | [] -> None
            | q :: qs -> (
                let key =
                  if String.equal q "" then head else q ^ "." ^ head
                in
                match Hashtbl.find_opt prog.p_aliases key with
                | Some target -> Some (demangle prog target @ drop j comps)
                | None -> try_q qs)
          in
          match try_q prefixes with Some r -> Some r | None -> try_j (j - 1)
      in
      match try_j (n - 1) with
      | Some comps' -> loop (fuel - 1) comps'
      | None -> comps
  in
  let comps = loop 12 (demangle prog comps) in
  match comps with "Stdlib" :: (_ :: _ as rest) -> rest | _ -> comps

let resolved_name prog ~prefixes comps =
  String.concat "." (resolve_comps prog ~prefixes comps)

let find_def prog ~prefixes name =
  let rec go = function
    | [] -> None
    | q :: qs -> (
        let key = if String.equal q "" then name else q ^ "." ^ name in
        match Hashtbl.find_opt prog.p_defs key with
        | Some d -> Some d
        | None -> go qs)
  in
  go prefixes

let find_tyalias prog ~prefixes name =
  let rec go = function
    | [] -> None
    | q :: qs -> (
        let key = if String.equal q "" then name else q ^ "." ^ name in
        match Hashtbl.find_opt prog.p_tyaliases key with
        | Some t -> Some t
        | None -> go qs)
  in
  go prefixes

let predef_scalars = [ "int"; "float"; "bool"; "char"; "unit" ]

(* Chase a named type through abbreviations ([Ids.node = int]) down to a
   predef scalar. *)
let type_is_scalar prog ~prefixes comps =
  let rec chase fuel ~prefixes comps =
    fuel > 0
    &&
    let n = resolved_name prog ~prefixes comps in
    List.mem n predef_scalars
    ||
    (fuel > 0
    &&
    match find_tyalias prog ~prefixes (resolved_name prog ~prefixes comps) with
    | Some (owner, target) ->
        chase (fuel - 1) ~prefixes:[ owner; "" ] target
    | None -> false)
  in
  chase 8 ~prefixes comps

(* Flat float arrays and identity primitives do not box their float
   argument despite the polymorphic formal. *)
let float_exempt =
  [
    "Array.get"; "Array.set"; "Array.unsafe_get"; "Array.unsafe_set";
    "Array.make"; "Array.fill"; "Array.blit"; "Array.unsafe_blit";
    "Array.length"; "ignore"; "Sys.opaque_identity"; "Obj.repr"; "Obj.magic";
    ":=";
    (* comparison primitives specialize to unboxed float compares in native
       code; [min]/[max]/[compare] are real functions and stay flagged *)
    "="; "<>"; "<"; ">"; "<="; ">=";
  ]

(* Identity primitives: "applying" them to a function type re-types the
   argument, it does not build a closure. *)
let partial_exempt = [ "Obj.magic"; "Obj.repr"; "Obj.obj"; "Sys.opaque_identity" ]

type emitter = {
  mutable ef : Lint.finding list;
  counts : (string, int) Hashtbl.t;
  e_rules : Lint.rule list;
  e_owned : string list;
}

let emit em rule ~file ~scope ~line ~col ~context ~lexeme ?(chain = []) message
    =
  let base =
    Printf.sprintf "%s|%s|%s|%s" (Lint.rule_name rule) scope context lexeme
  in
  let n =
    match Hashtbl.find_opt em.counts base with Some n -> n + 1 | None -> 0
  in
  Hashtbl.replace em.counts base n;
  em.ef <-
    {
      Lint.rule;
      file;
      line;
      col;
      context;
      lexeme;
      message;
      chain;
      fingerprint = Printf.sprintf "%s|%d" base n;
    }
    :: em.ef

let occ_enabled em rule (o : occ) =
  List.mem rule em.e_rules
  && Lint.rule_applies rule o.o_scope
  && o.o_sup land (1 lsl Lint.rule_index rule) = 0

let emit_at em rule (o : occ) ~lexeme ?chain message =
  emit em rule ~file:o.o_file ~scope:o.o_scope ~line:o.o_line ~col:o.o_col
    ~context:o.o_context ~lexeme ?chain message

(* R1/R3/R4/R5/R2 on one resolved identifier occurrence; returns the R7
   source classification, if any. *)
let judge_ident em prog (o : occ) ~pclass ~exempt_operand name =
  let head = match String.split_on_char '.' name with h :: _ -> h | [] -> "" in
  (* R1 *)
  let r1_banned =
    String.equal head "Unix" || String.equal head "Random"
    || String.equal name "Sys.time"
  in
  if r1_banned && occ_enabled em Lint.R1 o then
    emit_at em Lint.R1 o ~lexeme:name
      (Printf.sprintf
         "nondeterministic primitive %s is banned in lib/ (use virtual time \
          / Prng; DESIGN.md: determinism)"
         name);
  (* R3 *)
  (match Lint.vclock_owned_op name with
  | Some _ when occ_enabled em Lint.R3 o ->
      let allowed =
        List.exists
          (fun entry ->
            String.equal entry o.o_context
            || String.equal entry (o.o_unit ^ "." ^ o.o_context))
          em.e_owned
      in
      if not allowed then
        emit_at em Lint.R3 o ~lexeme:name
          (Printf.sprintf
             "in-place Vclock operation %s requires [@owned] (exclusively \
              owned, never-published clock; DESIGN.md §8)"
             name)
  | _ -> ());
  (* R4 *)
  let is_hiter =
    String.equal name "Hashtbl.iter" || String.equal name "Hashtbl.fold"
  in
  if is_hiter && occ_enabled em Lint.R4 o then
    emit_at em Lint.R4 o ~lexeme:name
      (Printf.sprintf
         "%s iterates in bucket order; sort the result or annotate \
          [@order_ok] if the result is order-insensitive"
         name);
  (* R5 *)
  if List.mem name Lint.print_funs && occ_enabled em Lint.R5 o then
    emit_at em Lint.R5 o ~lexeme:name
      (Printf.sprintf
         "%s prints directly from library code; emit a typed trace event \
          through Obs.emit instead (docs/OBSERVABILITY.md), or annotate \
          [@print_ok] for deliberate CLI output"
         name);
  (* R2, on the instantiated type at the use site *)
  (if occ_enabled em Lint.R2 o && not exempt_operand then
     let is_poly =
       List.mem name Lint.poly_named
       || List.mem name Lint.poly_ops
       || String.equal name "Hashtbl.hash"
     in
     if is_poly then
       let scalar =
         match pclass with
         | Pc_scalar -> true
         | Pc_name comps -> type_is_scalar prog ~prefixes:o.o_prefixes comps
         | Pc_var | Pc_other -> false
       in
       if String.equal name "Hashtbl.hash" || not scalar then
         emit_at em Lint.R2 o ~lexeme:name
           (Printf.sprintf
              "polymorphic %s instantiated at a non-scalar type; use a \
               monomorphic comparison (Int.compare, String.equal, \
               Vclock.equal, ...) or annotate [@poly_ok]"
              name));
  (* R7 source classification *)
  let sup r = o.o_sup land (1 lsl Lint.rule_index r) <> 0 in
  if String.equal head "Domain" then Some (name, true)
  else if r1_banned && not (sup Lint.R1) then Some (name, false)
  else if is_hiter && not (sup Lint.R4) then Some (name, false)
  else None

let analyze ?(rules = Lint.all_rules) ?(owned_allow = []) prog =
  let occs = List.rev prog.p_occs in
  let def_order = List.rev !(prog.p_def_order) in
  let em =
    { ef = []; counts = Hashtbl.create 64; e_rules = rules; e_owned = owned_allow }
  in
  let edges_rev : (string, string list ref) Hashtbl.t = Hashtbl.create 256 in
  let add_edge caller callee =
    if not (String.equal caller callee) then
      match Hashtbl.find_opt edges_rev callee with
      | Some l -> if not (List.mem caller !l) then l := caller :: !l
      | None -> Hashtbl.add edges_rev callee (ref [ caller ])
  in
  let sources = ref [] in
  (* pass 1 over occurrences: direct rules, call edges, R7 sources *)
  List.iter
    (fun o ->
      match o.o_kind with
      | K_ident { pclass; exempt_operand; head_ident } -> (
          let target =
            match head_ident with
            | Some u -> (
                match Hashtbl.find_opt prog.p_def_idents u with
                | Some dn -> Hashtbl.find_opt prog.p_defs dn
                | None -> None)
            | None ->
                find_def prog ~prefixes:o.o_prefixes
                  (resolved_name prog ~prefixes:o.o_prefixes o.o_comps)
          in
          (match (o.o_def, target) with
          | Some caller, Some callee -> add_edge caller callee.d_name
          | _ -> ());
          match head_ident with
          | Some _ -> ()  (* a binding of this unit: nothing external to judge *)
          | None -> (
              let name = resolved_name prog ~prefixes:o.o_prefixes o.o_comps in
              match judge_ident em prog o ~pclass ~exempt_operand name with
              | Some (lexeme, is_domain) ->
                  sources := (o, lexeme, is_domain) :: !sources
              | None -> ()))
      | K_hot ha ->
          if occ_enabled em Lint.R8 o then (
            match ha with
            | Ha_closure ->
                emit_at em Lint.R8 o ~lexeme:"fun"
                  "closure allocated in [@hot] code; hoist it to a toplevel \
                   function or annotate [@alloc_ok] on a deliberate cold \
                   branch"
            | Ha_lazy ->
                emit_at em Lint.R8 o ~lexeme:"lazy"
                  "lazy thunk allocated in [@hot] code; force eagerly or \
                   annotate [@alloc_ok]"
            | Ha_tuple ->
                emit_at em Lint.R8 o ~lexeme:"(,)"
                  "tuple allocated in [@hot] code; use a preallocated record \
                   / struct-of-arrays slot or annotate [@alloc_ok]"
            | Ha_partial head when List.mem head partial_exempt -> ()
            | Ha_partial head ->
                emit_at em Lint.R8 o ~lexeme:head
                  (Printf.sprintf
                     "partial application of %s allocates a closure in \
                      [@hot] code; apply fully or annotate [@alloc_ok]"
                     head)
            | Ha_float_app (comps, uniq) -> (
                match uniq with
                | Some u when Hashtbl.mem prog.p_def_idents u ->
                    ()  (* project-local helper: inspected on its own *)
                | _ ->
                    let callee =
                      resolved_name prog ~prefixes:o.o_prefixes comps
                    in
                    if not (List.mem callee float_exempt) then
                      emit_at em Lint.R8 o ~lexeme:callee
                        (Printf.sprintf
                           "float argument to polymorphic %s boxes in [@hot] \
                            code; use a float-specialized path or annotate \
                            [@alloc_ok]"
                           callee))
            | Ha_float_box lex ->
                emit_at em Lint.R8 o ~lexeme:lex
                  (Printf.sprintf
                     "float boxed into %s in [@hot] code; keep hot floats in \
                      float arrays/fields or annotate [@alloc_ok]"
                     lex))
      | K_r6 shape ->
          if occ_enabled em Lint.R6 o then (
            let flag lexeme =
              emit_at em Lint.R6 o ~lexeme
                (Printf.sprintf
                   "module-level binding constructs mutable state (%s), \
                    shared across domains when runs fan out in parallel; \
                    make it per-run state threaded through Config/run setup, \
                    use Atomic.t, or annotate [@@domain_safe] with a \
                    justification"
                   lexeme)
            in
            match shape with
            | R6_definite lexeme -> flag lexeme
            | R6_creator (comps, uniq) -> (
                match uniq with
                | Some u when Hashtbl.mem prog.p_def_idents u -> ()
                | _ ->
                    let n = resolved_name prog ~prefixes:o.o_prefixes comps in
                    if List.mem n Lint.mutable_creators then flag n))
      | K_r9_direct lexeme ->
          if occ_enabled em Lint.R9 o then
            emit_at em Lint.R9 o ~lexeme
              ~chain:
                [ (match o.o_def with Some d -> d | None -> "<toplevel>") ]
              (Printf.sprintf
                 "module-level closure captures locally created mutable \
                  state (%s): every domain shares one instance once runs fan \
                  out in parallel; thread the state per run or annotate \
                  [@@domain_safe]"
                 lexeme))
    occs;
  (* R7: shortest entry-scope chain to each source, through the reverse
     call graph; [@deterministic] defs are barriers. *)
  let chain_to src =
    let parent : (string, string option) Hashtbl.t = Hashtbl.create 16 in
    Hashtbl.replace parent src None;
    let q = Queue.create () in
    Queue.add src q;
    let result = ref [] in
    (try
       while not (Queue.is_empty q) do
         let cur = Queue.pop q in
         let callers =
           match Hashtbl.find_opt edges_rev cur with
           | Some l -> List.sort String.compare !l
           | None -> []
         in
         List.iter
           (fun caller ->
             if not (Hashtbl.mem parent caller) then
               match Hashtbl.find_opt prog.p_defs caller with
               | Some d when d.d_det -> ()
               | Some d ->
                   Hashtbl.replace parent caller (Some cur);
                   if d.d_entry then begin
                     let rec collect n =
                       n
                       ::
                       (match Hashtbl.find_opt parent n with
                       | Some (Some child) -> collect child
                       | _ -> [])
                     in
                     result := collect caller;
                     raise Exit
                   end;
                   Queue.add caller q
               | None -> ())
           callers
       done
     with Exit -> ());
    !result
  in
  List.iter
    (fun ((o : occ), lexeme, is_domain) ->
      if occ_enabled em Lint.R7 o then
        if is_domain then
          emit_at em Lint.R7 o ~lexeme
            ~chain:(match o.o_def with Some d -> [ d ] | None -> [])
            (Printf.sprintf
               "%s used outside lib/par: domain fan-out belongs to the \
                sanctioned Sss_par pool (parallelism anywhere else breaks \
                run determinism)"
               lexeme)
        else
          match o.o_def with
          | None -> ()
          | Some d when
              (match Hashtbl.find_opt prog.p_defs d with
              | Some def -> def.d_det
              | None -> false) ->
              ()  (* the audited boundary contains the source itself *)
          | Some d -> (
              match chain_to d with
              | [] -> ()
              | chain ->
                  emit_at em Lint.R7 o ~lexeme ~chain
                    (Printf.sprintf
                       "nondeterminism source %s is reachable from \
                        protocol/engine entry point %s (chain: %s); make the \
                        path deterministic or mark the audited boundary \
                        [@deterministic]"
                       lexeme (List.hd chain)
                       (String.concat " -> " chain))))
    (List.rev !sources);
  (* R9 factories: propagate "returns a closure over fresh mutable state"
     through result-position applications, then flag module-level values
     built by calling one. *)
  let resolve_app (d : def) (comps, uniq) =
    match uniq with
    | Some u -> (
        match Hashtbl.find_opt prog.p_def_idents u with
        | Some dn -> Hashtbl.find_opt prog.p_defs dn
        | None -> None)
    | None ->
        find_def prog ~prefixes:d.d_prefixes
          (resolved_name prog ~prefixes:d.d_prefixes comps)
  in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun dn ->
        let d = Hashtbl.find prog.p_defs dn in
        if (not d.d_factory) && not d.d_toplevel_value then
          if
            List.exists
              (fun app ->
                match resolve_app d app with
                | Some f -> f.d_factory
                | None -> false)
              d.d_result_apps
          then begin
            d.d_factory <- true;
            changed := true
          end)
      def_order
  done;
  List.iter
    (fun dn ->
      let d = Hashtbl.find prog.p_defs dn in
      if
        d.d_toplevel_value && (not d.d_sup9)
        && List.mem Lint.R9 rules
        && Lint.rule_applies Lint.R9 d.d_scope
      then
        match
          List.find_map
            (fun app ->
              match resolve_app d app with
              | Some f when f.d_factory -> Some f
              | _ -> None)
            d.d_result_apps
        with
        | Some f ->
            emit em Lint.R9 ~file:d.d_file ~scope:d.d_scope ~line:d.d_line
              ~col:d.d_col ~context:d.d_context ~lexeme:f.d_name
              ~chain:[ d.d_name; f.d_name ]
              (Printf.sprintf
                 "module-level value calls %s, which returns a closure over \
                  fresh mutable state: the instance is shared across domains \
                  once runs fan out in parallel; create it per run or \
                  annotate [@@domain_safe]"
                 f.d_name)
        | None -> ())
    def_order;
  List.stable_sort
    (fun (a : Lint.finding) (b : Lint.finding) ->
      let c = String.compare a.file b.file in
      if c <> 0 then c
      else
        let c = Int.compare a.line b.line in
        if c <> 0 then c else Int.compare a.col b.col)
    (List.rev em.ef)

(* ---- entry points ----------------------------------------------------- *)

let engine_version = "2.0"

let unit_of_file file =
  String.capitalize_ascii (Filename.remove_extension (Filename.basename file))

(* .cmt mode: the real linter.  [paths] are .cmt files produced by dune's
   [-bin-annot]; each carries its repo-relative source path, which provides
   both the display name and the rule scope. *)
let check_cmts ?rules ?owned_allow cmt_paths =
  let prog = new_program () in
  let units =
    List.filter_map
      (fun path ->
        let cmt =
          try Cmt_format.read_cmt path
          with exn ->
            raise
              (Lint.Parse_error
                 (Printf.sprintf "%s: cannot read cmt (%s)" path
                    (Printexc.to_string exn)))
        in
        match (cmt.Cmt_format.cmt_annots, cmt.Cmt_format.cmt_sourcefile) with
        | Cmt_format.Implementation str, Some src
          when Filename.check_suffix src ".ml" ->
            Some (src, cmt.Cmt_format.cmt_modname, str)
        | _ -> None)
      cmt_paths
  in
  (* wrapper modules: the prefix before the last "__" of any mangled unit
     name ("Sss_sim__Equeue" -> "Sss_sim") *)
  let wrappers =
    List.fold_left
      (fun acc (_, modname, _) ->
        let n = String.length modname in
        let rec last_sep i best =
          if i + 1 >= n then best
          else if modname.[i] = '_' && modname.[i + 1] = '_' then
            last_sep (i + 1) (Some i)
          else last_sep (i + 1) best
        in
        match last_sep 0 None with
        | Some j ->
            let w = String.sub modname 0 j in
            let acc = if List.mem w acc then acc else w :: acc in
            let wd = demangle_comp w in
            if List.mem wd acc then acc else wd :: acc
        | None -> acc)
      [] units
  in
  prog.p_wrappers <- wrappers;
  let units =
    List.sort_uniq
      (fun (a, _, _) (b, _, _) -> String.compare a b)
      units
  in
  List.iter (fun (src, _, str) -> walk_unit prog ~file:src ~scope:src str) units;
  analyze ?rules ?owned_allow prog

(* Source mode, for fixture tests: typecheck .ml files in-process (fixtures
   are self-contained modulo stdlib + unix) and run the same analysis.
   [scope_as] plays the same role as in {!Lint.check_file}. *)
let typecheck_init = ref false

let typecheck_source path =
  if not !typecheck_init then begin
    Clflags.include_dirs :=
      [ Filename.concat Config.standard_library "unix" ];
    Compmisc.init_path ();
    (* fixtures deliberately contain lint-bait: keep the compiler quiet *)
    ignore (Warnings.parse_options false "-a");
    typecheck_init := true
  end;
  Env.set_unit_name (unit_of_file path);
  let env = Compmisc.initial_env () in
  let ast = Lint.parse_file path in
  try
    let tstr, _, _, _, _ = Typemod.type_structure env ast in
    tstr
  with exn ->
    let msg =
      match Location.error_of_exn exn with
      | Some (`Ok report) -> Format.asprintf "%a" Location.print_report report
      | _ -> Printexc.to_string exn
    in
    raise (Lint.Parse_error (Printf.sprintf "%s: %s" path msg))

let check_sources ?rules ?owned_allow files =
  let prog = new_program () in
  List.iter
    (fun (path, scope) ->
      walk_unit prog ~file:path ~scope (typecheck_source path))
    files;
  analyze ?rules ?owned_allow prog

let check_source ?rules ?owned_allow ?scope_as path =
  let scope = match scope_as with Some s -> s | None -> path in
  check_sources ?rules ?owned_allow [ (path, scope) ]
