(* sss_lint CLI: run the lint engines over the project.

   Two engines share the CLI, the rule set, and the baseline format:

   - [typed] (default): the whole-program Typedtree analysis
     (tools/lint/typed_lint.ml).  Input paths are source directories; the
     CLI locates the corresponding dune [.cmt] artifacts (under the path
     itself when invoked from inside [_build/default], or under
     [_build/default/PATH] when invoked from the repo root).  Requires a
     prior [dune build @check] (or any full build).
   - [syntactic]: the legacy per-file Parsetree pass (tools/lint/lint.ml),
     kept for comparison and for the regression test proving what string
     matching misses.

   Exit codes: 0 clean, 1 unsuppressed findings, 2 usage/parse errors. *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* Schema 2: top-level object with engine identification; each finding
   carries its rule family and, for interprocedural rules (R7/R9), the
   call-graph chain from entry point to source. *)
let print_json ~engine_name ~engine_version findings =
  Printf.printf
    "{\"schema\": 2, \"engine\": {\"name\": \"%s\", \"version\": \"%s\"}, \
     \"findings\": ["
    engine_name engine_version;
  List.iteri
    (fun i (f : Lint.finding) ->
      if i > 0 then print_string ",";
      let chain =
        String.concat ", "
          (List.map (fun c -> Printf.sprintf "\"%s\"" (json_escape c)) f.chain)
      in
      Printf.printf
        "\n  {\"rule\": \"%s\", \"family\": \"%s\", \"file\": \"%s\", \
         \"line\": %d, \"col\": %d, \"context\": \"%s\", \"lexeme\": \"%s\", \
         \"chain\": [%s], \"fingerprint\": \"%s\", \"message\": \"%s\"}"
        (Lint.rule_name f.rule)
        (Lint.rule_family f.rule)
        (json_escape f.file) f.line f.col (json_escape f.context)
        (json_escape f.lexeme) chain (json_escape f.fingerprint)
        (json_escape f.message))
    findings;
  print_string "\n]}\n"

let print_human findings =
  List.iter
    (fun (f : Lint.finding) ->
      Printf.printf "%s:%d:%d: [%s] %s\n" f.file f.line f.col
        (Lint.rule_name f.rule) f.message;
      (match f.chain with
      | [] -> ()
      | chain -> Printf.printf "  chain: %s\n" (String.concat " -> " chain));
      Printf.printf "  fingerprint: %s\n" f.fingerprint)
    findings

(* .cmt discovery for the typed engine: recursively scan both PATH and
   _build/default/PATH, so the CLI works from the repo root and from inside
   a dune rule's working directory. *)
let rec collect_cmts path =
  if not (Sys.file_exists path) then []
  else if Sys.is_directory path then
    Sys.readdir path |> Array.to_list
    |> List.sort String.compare
    |> List.concat_map (fun entry -> collect_cmts (Filename.concat path entry))
  else if Filename.check_suffix path ".cmt" then [ path ]
  else []

let cmts_for_path p =
  collect_cmts p @ collect_cmts (Filename.concat "_build/default" p)

let run engine rules paths baseline update_baseline format owned_allow =
  let rules =
    match rules with
    | [] -> Lint.all_rules
    | names -> (
        match
          List.map (fun n -> (n, Lint.rule_of_string n)) names
          |> List.partition (fun (_, r) -> Option.is_some r)
        with
        | ok, [] -> List.filter_map snd ok
        | _, (bad, _) :: _ ->
            Printf.eprintf "sss_lint: unknown rule %S (use R1..R9)\n" bad;
            exit 2)
  in
  let engine_name, engine_version, findings =
    match engine with
    | `Typed -> (
        match List.concat_map cmts_for_path paths with
        | [] ->
            Printf.eprintf
              "sss_lint: no .cmt files under %s (run `dune build @check` \
               first, or pass --engine syntactic)\n"
              (String.concat ", " paths);
            exit 2
        | cmts -> (
            try
              ( "typed",
                Typed_lint.engine_version,
                Typed_lint.check_cmts ~rules ~owned_allow cmts )
            with Lint.Parse_error msg ->
              Printf.eprintf "sss_lint: %s\n" msg;
              exit 2))
    | `Syntactic -> (
        match List.concat_map Lint.collect_ml paths with
        | [] ->
            Printf.eprintf "sss_lint: no .ml files under %s\n"
              (String.concat ", " paths);
            exit 2
        | files ->
            ( "syntactic",
              "1.0",
              List.concat_map
                (fun file ->
                  try Lint.check_file ~rules ~owned_allow file
                  with Lint.Parse_error msg ->
                    Printf.eprintf "sss_lint: parse error: %s\n" msg;
                    exit 2)
                files ))
  in
  (match (update_baseline, baseline) with
  | true, Some path ->
      Lint.write_baseline path findings;
      Printf.printf "sss_lint: wrote %d fingerprints to %s\n"
        (List.length findings) path
  | true, None ->
      Printf.eprintf "sss_lint: --update-baseline requires --baseline FILE\n";
      exit 2
  | false, _ -> ());
  let known = match baseline with Some p -> Lint.read_baseline p | None -> [] in
  let fresh, baselined = Lint.apply_baseline ~known findings in
  if update_baseline then exit 0;
  (match format with
  | `Json -> print_json ~engine_name ~engine_version fresh
  | `Human ->
      print_human fresh;
      Printf.printf "sss_lint: engine %s, rules %s: %d finding(s)%s\n"
        engine_name
        (String.concat "," (List.map Lint.rule_name rules))
        (List.length fresh)
        (match baselined with
        | [] -> ""
        | l -> Printf.sprintf " (+%d baselined)" (List.length l)));
  match fresh with [] -> exit 0 | _ -> exit 1

open Cmdliner

let engine_arg =
  let doc =
    "Analysis engine: $(b,typed) (whole-program Typedtree over dune .cmt \
     artifacts; default) or $(b,syntactic) (legacy per-file Parsetree pass)."
  in
  Arg.(
    value
    & opt (enum [ ("typed", `Typed); ("syntactic", `Syntactic) ]) `Typed
    & info [ "engine" ] ~docv:"ENGINE" ~doc)

let rules_arg =
  let doc =
    "Comma-separated rules to run (R1 determinism, R2 polymorphic compare, \
     R3 Vclock ownership, R4 iteration order, R5 no ad-hoc printing, R6 no \
     toplevel mutable state, R7 determinism taint, R8 hot-path allocation, \
     R9 escaping mutable state). Default: all."
  in
  Arg.(value & opt (list string) [] & info [ "rules" ] ~docv:"RULES" ~doc)

let paths_arg =
  let doc =
    "Source directories to lint (scope comes from the source path; the \
     typed engine reads the matching _build .cmt artifacts)."
  in
  Arg.(value & pos_all string [ "lib" ] & info [] ~docv:"PATH" ~doc)

let baseline_arg =
  let doc = "Baseline file of accepted fingerprints to suppress." in
  Arg.(value & opt (some string) None & info [ "baseline" ] ~docv:"FILE" ~doc)

let update_baseline_arg =
  let doc = "Rewrite the baseline file with the current findings and exit." in
  Arg.(value & flag & info [ "update-baseline" ] ~doc)

let format_arg =
  let doc = "Output format: $(b,human) or $(b,json) (schema 2)." in
  Arg.(
    value
    & opt (enum [ ("human", `Human); ("json", `Json) ]) `Human
    & info [ "format" ] ~docv:"FMT" ~doc)

let owned_allow_arg =
  let doc =
    "Function names (optionally Module.fn) allowed to use Vclock in-place \
     operations without [@owned]."
  in
  Arg.(
    value & opt (list string) [] & info [ "owned-allow" ] ~docv:"FNS" ~doc)

let cmd =
  let doc =
    "static checks for the SSS simulator's determinism and hot-path contracts"
  in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Analyzes the project (typed whole-program over dune .cmt files by \
         default) and enforces the project rules of DESIGN.md §8 / \
         docs/LINT.md:";
      `P (Printf.sprintf "R1: %s" (Lint.rule_doc Lint.R1));
      `P (Printf.sprintf "R2: %s" (Lint.rule_doc Lint.R2));
      `P (Printf.sprintf "R3: %s" (Lint.rule_doc Lint.R3));
      `P (Printf.sprintf "R4: %s" (Lint.rule_doc Lint.R4));
      `P (Printf.sprintf "R5: %s" (Lint.rule_doc Lint.R5));
      `P (Printf.sprintf "R6: %s" (Lint.rule_doc Lint.R6));
      `P (Printf.sprintf "R7: %s" (Lint.rule_doc Lint.R7));
      `P (Printf.sprintf "R8: %s" (Lint.rule_doc Lint.R8));
      `P (Printf.sprintf "R9: %s" (Lint.rule_doc Lint.R9));
      `P
        "Suppressions: [@poly_ok] (R2), [@owned] (R3), [@order_ok] (R4), \
         [@print_ok] (R5), [@@domain_safe] (R6/R9), [@wallclock_ok] (R1, \
         harness scopes only), [@alloc_ok] (R8), [@deterministic] (R7 \
         barrier), or a fingerprint baseline file (all rules).";
    ]
  in
  Cmd.v
    (Cmd.info "sss_lint" ~version:"2.0" ~doc ~man)
    Term.(
      const run $ engine_arg $ rules_arg $ paths_arg $ baseline_arg
      $ update_baseline_arg $ format_arg $ owned_allow_arg)

let () = exit (Cmd.eval cmd)
