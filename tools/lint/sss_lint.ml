(* sss_lint CLI: run the Lint engine over source trees.

   Exit codes: 0 clean, 1 unsuppressed findings, 2 usage/parse errors. *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let print_json findings =
  print_string "[";
  List.iteri
    (fun i (f : Lint.finding) ->
      if i > 0 then print_string ",";
      Printf.printf
        "\n  {\"rule\": \"%s\", \"file\": \"%s\", \"line\": %d, \"col\": %d, \
         \"context\": \"%s\", \"lexeme\": \"%s\", \"fingerprint\": \"%s\", \
         \"message\": \"%s\"}"
        (Lint.rule_name f.rule) (json_escape f.file) f.line f.col
        (json_escape f.context) (json_escape f.lexeme)
        (json_escape f.fingerprint) (json_escape f.message))
    findings;
  print_string "\n]\n"

let print_human findings =
  List.iter
    (fun (f : Lint.finding) ->
      Printf.printf "%s:%d:%d: [%s] %s\n  fingerprint: %s\n" f.file f.line
        f.col (Lint.rule_name f.rule) f.message f.fingerprint)
    findings

let run rules paths baseline update_baseline format owned_allow =
  let rules =
    match rules with
    | [] -> Lint.all_rules
    | names -> (
        match
          List.map (fun n -> (n, Lint.rule_of_string n)) names
          |> List.partition (fun (_, r) -> r <> None)
        with
        | ok, [] -> List.filter_map snd ok
        | _, (bad, _) :: _ ->
            Printf.eprintf "sss_lint: unknown rule %S (use R1..R5)\n" bad;
            exit 2)
  in
  let files = List.concat_map Lint.collect_ml paths in
  if files = [] then begin
    Printf.eprintf "sss_lint: no .ml files under %s\n"
      (String.concat ", " paths);
    exit 2
  end;
  let findings =
    List.concat_map
      (fun file ->
        try Lint.check_file ~rules ~owned_allow file
        with Lint.Parse_error msg ->
          Printf.eprintf "sss_lint: parse error: %s\n" msg;
          exit 2)
      files
  in
  (match (update_baseline, baseline) with
  | true, Some path ->
      Lint.write_baseline path findings;
      Printf.printf "sss_lint: wrote %d fingerprints to %s\n"
        (List.length findings) path
  | true, None ->
      Printf.eprintf "sss_lint: --update-baseline requires --baseline FILE\n";
      exit 2
  | false, _ -> ());
  let known = match baseline with Some p -> Lint.read_baseline p | None -> [] in
  let fresh, baselined = Lint.apply_baseline ~known findings in
  if update_baseline then exit 0;
  (match format with
  | `Json -> print_json fresh
  | `Human ->
      print_human fresh;
      Printf.printf
        "sss_lint: %d file(s), rules %s: %d finding(s)%s\n" (List.length files)
        (String.concat "," (List.map Lint.rule_name rules))
        (List.length fresh)
        (if baselined = [] then ""
         else Printf.sprintf " (+%d baselined)" (List.length baselined)));
  if fresh = [] then exit 0 else exit 1

open Cmdliner

let rules_arg =
  let doc =
    "Comma-separated rules to run (R1 determinism, R2 polymorphic compare, \
     R3 Vclock ownership, R4 iteration order, R5 no ad-hoc printing, R6 no \
     toplevel mutable state). Default: all."
  in
  Arg.(value & opt (list string) [] & info [ "rules" ] ~docv:"RULES" ~doc)

let paths_arg =
  let doc = "Files or directories to lint (.ml files, recursively)." in
  Arg.(value & pos_all string [ "lib" ] & info [] ~docv:"PATH" ~doc)

let baseline_arg =
  let doc = "Baseline file of accepted fingerprints to suppress." in
  Arg.(value & opt (some string) None & info [ "baseline" ] ~docv:"FILE" ~doc)

let update_baseline_arg =
  let doc = "Rewrite the baseline file with the current findings and exit." in
  Arg.(value & flag & info [ "update-baseline" ] ~doc)

let format_arg =
  let doc = "Output format: $(b,human) or $(b,json)." in
  Arg.(
    value
    & opt (enum [ ("human", `Human); ("json", `Json) ]) `Human
    & info [ "format" ] ~docv:"FMT" ~doc)

let owned_allow_arg =
  let doc =
    "Function names (optionally Module.fn) allowed to use Vclock in-place \
     operations without [@owned]."
  in
  Arg.(
    value & opt (list string) [] & info [ "owned-allow" ] ~docv:"FNS" ~doc)

let cmd =
  let doc =
    "static checks for the SSS simulator's determinism and hot-path contracts"
  in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Parses every .ml file under the given paths with compiler-libs and \
         enforces the project rules of DESIGN.md §8 / docs/LINT.md:";
      `P (Printf.sprintf "R1: %s" (Lint.rule_doc Lint.R1));
      `P (Printf.sprintf "R2: %s" (Lint.rule_doc Lint.R2));
      `P (Printf.sprintf "R3: %s" (Lint.rule_doc Lint.R3));
      `P (Printf.sprintf "R4: %s" (Lint.rule_doc Lint.R4));
      `P (Printf.sprintf "R5: %s" (Lint.rule_doc Lint.R5));
      `P (Printf.sprintf "R6: %s" (Lint.rule_doc Lint.R6));
      `P
        "Suppressions: [@poly_ok] (R2), [@owned] (R3), [@order_ok] (R4), \
         [@print_ok] (R5), [@@domain_safe] (R6), or a fingerprint baseline \
         file (all rules).";
    ]
  in
  Cmd.v
    (Cmd.info "sss_lint" ~version:"1.0" ~doc ~man)
    Term.(
      const run $ rules_arg $ paths_arg $ baseline_arg $ update_baseline_arg
      $ format_arg $ owned_allow_arg)

let () = exit (Cmd.eval cmd)
