(** sss_lint shared core + the legacy syntactic engine.

    This module owns the rule vocabulary shared with the typed
    whole-program engine in {!Typed_lint} — rule names R1-R9, families,
    directory scoping, suppression attributes, fingerprints, baselines —
    and implements the original per-file Parsetree pass for R1-R6.  The
    syntactic pass needs no build (scope derives from the file path alone)
    but a single [module U = Unix] alias defeats it, which is why
    {!Typed_lint} is the default engine; this pass survives as
    [--engine syntactic] and as the regression baseline demonstrating what
    typed resolution catches that string matching cannot.

    The syntactic rules, each scoped by directory:

    - R1 [determinism]: no wall-clock or ambient entropy anywhere under
      [lib/] — [Unix.*], [Sys.time], and the stdlib [Random.*] are banned
      (the simulator's virtual time and the splitmix [Prng] are the only
      admissible sources).  [bin/] and [bench/] are exempt by scope.
    - R2 [no polymorphic comparison]: in the hot libraries ([lib/data],
      [lib/sim], [lib/net], [lib/core]) the named polymorphic functions
      [compare]/[min]/[max]/[Hashtbl.hash] are flagged unless an operand
      is syntactically scalar (literal, int/float arithmetic, a known
      length-returning function, or an explicit [(e : int)] coercion);
      the comparison operators [=]/[<>]/[<]/[>]/[<=]/[>=] are flagged
      when an operand is manifestly structured (tuple, record, list,
      constructor or polymorphic variant with a payload, array, string
      literal, function) or names a vector clock ([vc], [vclock], or a
      [_vc]/[_vclock] suffix — the exact class of the latent [Vclock]
      polymorphic-compare bug PR 1 fixed).  [@poly_ok] suppresses.
    - R3 [Vclock ownership]: applications (or bare mentions) of
      [Vclock.set_into]/[max_into]/[blit]/[unsafe_of_array] must carry
      [@owned] or sit inside an allowlisted function.
    - R4 [iteration order]: [Hashtbl.fold]/[Hashtbl.iter] in the
      history-affecting libraries ([lib/core], [lib/consistency],
      [lib/data], [lib/twopc], [lib/walter], [lib/rococo]) must carry
      [@order_ok], asserting the result is insensitive to bucket order.
    - R5 [no ad-hoc printing]: the stdout/stderr printers
      ([print_string], [Printf.printf], [Format.eprintf], ...) are banned
      under [lib/] — trace emission goes through [Obs.emit]
      (docs/OBSERVABILITY.md) so it is ring-buffered, virtual-time-stamped,
      and absent when [Config.observe] is off.  [lib/experiments] (the
      figure printers) is exempt by scope; [@print_ok] suppresses.
    - R6 [no toplevel mutable state]: module-level bindings under [lib/]
      must not construct mutable state — [ref], [Hashtbl.create] (and the
      other stdlib mutable containers), [Array.make]/[init], [Bytes], or a
      literal of a record type that declares a [mutable] field in the same
      file.  Such a binding is shared by every domain once runs fan out
      through [Sss_par.Pool], so it is both a data race and a determinism
      leak between runs.  State belongs in per-run values threaded through
      [Config]/run setup, or in [Atomic.t] (exempt: it is the sanctioned
      cross-domain primitive).  [@@domain_safe] on the binding suppresses,
      asserting the value is either never mutated after initialization or
      safe and intended to be shared.

    The checker is syntactic by design: [@poly_ok] therefore means
    "reviewed: this comparison is statically monomorphic at a scalar type,
    or deliberately polymorphic on a cold path", not merely "silence". *)

type rule = R1 | R2 | R3 | R4 | R5 | R6 | R7 | R8 | R9

let all_rules = [ R1; R2; R3; R4; R5; R6; R7; R8; R9 ]

(* The rules the legacy per-file Parsetree pass implements.  R7-R9 need
   resolved paths and a whole-program call graph: Typed_lint only. *)
let syntactic_rules = [ R1; R2; R3; R4; R5; R6 ]

let rule_name = function
  | R1 -> "R1"
  | R2 -> "R2"
  | R3 -> "R3"
  | R4 -> "R4"
  | R5 -> "R5"
  | R6 -> "R6"
  | R7 -> "R7"
  | R8 -> "R8"
  | R9 -> "R9"

let rule_index = function
  | R1 -> 0
  | R2 -> 1
  | R3 -> 2
  | R4 -> 3
  | R5 -> 4
  | R6 -> 5
  | R7 -> 6
  | R8 -> 7
  | R9 -> 8

let rule_of_string s =
  match String.uppercase_ascii (String.trim s) with
  | "R1" | "DETERMINISM" -> Some R1
  | "R2" | "POLY" | "POLYCOMPARE" -> Some R2
  | "R3" | "OWNED" | "VCLOCK" -> Some R3
  | "R4" | "ORDER" | "ITERATION" -> Some R4
  | "R5" | "PRINT" | "TRACE" -> Some R5
  | "R6" | "DOMAIN" | "TOPLEVEL" -> Some R6
  | "R7" | "TAINT" -> Some R7
  | "R8" | "HOT" | "ALLOC" -> Some R8
  | "R9" | "ESCAPE" -> Some R9
  | _ -> None

let rule_doc = function
  | R1 -> "determinism: no Unix/Sys.time/Random under lib/ (annotated uses ok in harnesses)"
  | R2 -> "no bare polymorphic compare in hot libraries and harnesses"
  | R3 -> "Vclock in-place ops require [@owned]"
  | R4 -> "Hashtbl iteration must be [@order_ok] in history-affecting code"
  | R5 -> "no stdout/stderr printing in lib/; trace through Obs.emit"
  | R6 -> "no toplevel mutable state in lib/ (domain-shared across parallel runs)"
  | R7 -> "determinism taint: no nondeterminism source reachable from protocol/engine code"
  | R8 -> "[@hot] functions must not allocate closures, boxed floats, or tuples"
  | R9 -> "no toplevel closures over mutable state (R6 through the call graph)"

(* Rule families group the rules by the invariant they protect; reported in
   the schema-2 JSON output so downstream tooling can bucket findings. *)
let rule_family = function
  | R1 | R7 -> "determinism"
  | R2 -> "poly-compare"
  | R3 -> "ownership"
  | R4 -> "iteration-order"
  | R5 -> "printing"
  | R6 | R9 -> "domain-safety"
  | R8 -> "allocation"

type finding = {
  rule : rule;
  file : string;
  line : int;
  col : int;
  context : string;  (** innermost enclosing let-binding, or "<toplevel>" *)
  lexeme : string;  (** the flagged identifier or operator *)
  message : string;
  chain : string list;
      (** call-graph path for interprocedural findings (R7/R9): entry point
          first, flagged definition last; [[]] for intraprocedural rules *)
  fingerprint : string;
      (** line-number independent identity: rule|file|context|lexeme|n *)
}

exception Parse_error of string

(* ---- path scoping ---------------------------------------------------- *)

(* [lib_sub "a/b/lib/core/state.ml"] is [Some "core"]. *)
let lib_sub path =
  let rec go = function
    | "lib" :: rest -> (
        match rest with [] -> None | [ _file ] -> Some "" | sub :: _ -> Some sub)
    | _ :: rest -> go rest
    | [] -> None
  in
  go (String.split_on_char '/' path)

(* The first path component naming a linted top-level tree decides the
   scope: library code ([lib/<sub>]) carries every determinism obligation,
   while the harness trees ([bin/], [bench/], [tools/]) are self-linted for
   the rules that still make sense off the simulator ([@wallclock_ok] and
   [@print_ok] mark their deliberate wall-clock/printing uses). *)
type scope_dir = Lib of string | Bin | Bench | Tools | Unscoped

let scope_dir path =
  let rec go = function
    | "lib" :: rest ->
        Lib (match rest with [] | [ _ ] -> "" | sub :: _ -> sub)
    | "bin" :: _ -> Bin
    | "bench" :: _ -> Bench
    | "tools" :: _ -> Tools
    | _ :: rest -> go rest
    | [] -> Unscoped
  in
  go (String.split_on_char '/' path)

let hot_libs = [ "data"; "sim"; "net"; "core" ]

let history_libs = [ "core"; "consistency"; "data"; "twopc"; "walter"; "rococo" ]

(* R7 taint chains must end in protocol/engine code: a nondeterminism source
   only matters if the deterministic core can actually reach it. *)
let entry_libs =
  [ "core"; "sim"; "net"; "data"; "consistency"; "twopc"; "walter"; "rococo" ]

let rule_applies rule path =
  match scope_dir path with
  | Lib sub -> (
      match rule with
      | R1 | R3 | R6 | R9 -> true
      | R2 -> List.mem sub hot_libs
      | R4 -> List.mem sub history_libs
      (* the experiment harness IS the figure printer; everything else in
         lib/ must trace through the observability sink *)
      | R5 -> not (String.equal sub "experiments")
      (* sss_par owns the sanctioned Domain fan-out *)
      | R7 -> not (String.equal sub "par")
      | R8 -> true)
  | Bin | Bench | Tools -> (
      match rule with
      | R1 | R2 | R3 | R8 -> true
      | R4 | R5 | R6 | R7 | R9 -> false)
  | Unscoped -> false

(* ---- identifier tables ----------------------------------------------- *)

let poly_named = [ "compare"; "min"; "max" ]

let poly_ops = [ "="; "<>"; "<"; ">"; "<="; ">=" ]

(* Applications of these are considered int- or float-valued, which makes a
   surrounding comparison statically monomorphic at a scalar type. *)
let scalar_funs =
  [
    (* arithmetic *)
    "+"; "-"; "*"; "/"; "mod"; "land"; "lor"; "lxor"; "lsl"; "lsr"; "asr";
    "succ"; "pred"; "abs"; "~-"; "+."; "-."; "*."; "/."; "~-."; "not";
    "float_of_int"; "int_of_char"; "int_of_float";
    (* stdlib lengths and scalar projections *)
    "Array.length"; "String.length"; "Bytes.length"; "List.length";
    "Hashtbl.length"; "Queue.length"; "Buffer.length"; "Char.code";
    "Float.of_int"; "Int.min"; "Int.max"; "Int.abs"; "Float.min"; "Float.max";
    (* project scalar projections (vector-clock entries, sizes, stamps) *)
    "Vclock.get"; "Vclock.size"; "Nlog.size"; "Nlog.most_recent_local";
    "Squeue.length"; "Commitq.length"; "Stampset.cardinal"; "Sim.now";
  ]

let vclock_owned_ops = [ "set_into"; "max_into"; "blit"; "unsafe_of_array" ]

(* R5: direct stdout/stderr printers.  [Printf.sprintf]/[Format.asprintf]
   and the [pp_print_*] combinators build strings or print to an explicit
   formatter and stay legal. *)
let print_funs =
  [
    "print_string"; "print_endline"; "print_newline"; "print_char";
    "print_int"; "print_float"; "print_bytes";
    "prerr_string"; "prerr_endline"; "prerr_newline"; "prerr_char";
    "prerr_int"; "prerr_float"; "prerr_bytes";
    "Printf.printf"; "Printf.eprintf"; "Format.printf"; "Format.eprintf";
    "Format.print_string"; "Format.print_newline";
  ]

(* ---- traversal ------------------------------------------------------- *)

let ident_string (lid : Longident.t) = String.concat "." (Longident.flatten lid)

(* Strip a [Stdlib.] qualification so [Stdlib.compare] and [compare] are the
   same lexeme. *)
let strip_stdlib name =
  match String.index_opt name '.' with
  | Some 6 when String.equal (String.sub name 0 6) "Stdlib" ->
      String.sub name 7 (String.length name - 7)
  | _ -> name

let scalar_types = [ "int"; "float"; "bool"; "char"; "unit" ]

(* Syntactic approximation of "this expression has an immediate or float
   type", used to exempt monomorphic comparisons from R2. *)
let rec scalarish (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_constant (Pconst_integer _ | Pconst_char _ | Pconst_float _) -> true
  (* constant constructors ([], None, true, Genesis, ...) compare by tag *)
  | Pexp_construct (_, None) -> true
  | Pexp_constraint (inner, ty) -> (
      match ty.ptyp_desc with
      | Ptyp_constr ({ txt = Lident t; _ }, []) when List.mem t scalar_types ->
          true
      | _ -> scalarish inner)
  | Pexp_apply (f, _) -> (
      match f.pexp_desc with
      | Pexp_ident { txt; _ } ->
          List.mem (strip_stdlib (ident_string txt)) scalar_funs
      | _ -> false)
  | _ -> false

(* Name-based approximation of "this is a vector clock": the one structured
   type whose polymorphic comparison already bit us once (PR 1). *)
let vclock_named name =
  let last =
    match List.rev (String.split_on_char '.' name) with n :: _ -> n | [] -> name
  in
  (* strip a trailing numeric disambiguator: vc1, commit_vc2, ... *)
  let stem =
    let n = String.length last in
    let rec start i =
      if i > 0 && last.[i - 1] >= '0' && last.[i - 1] <= '9' then start (i - 1)
      else i
    in
    String.sub last 0 (start n)
  in
  String.equal stem "vc" || String.equal stem "vclock"
  || String.ends_with ~suffix:"_vc" stem
  || String.ends_with ~suffix:"_vclock" stem

(* Operands on which a polymorphic comparison operator is clearly not a
   scalar comparison: structured literals, or anything vclock-named. *)
let rec suspectish (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_tuple _ | Pexp_record _ | Pexp_array _ | Pexp_fun _ | Pexp_function _
    ->
      true
  | Pexp_construct (_, Some _) | Pexp_variant (_, Some _) -> true
  | Pexp_constant (Pconst_string _) -> true
  | Pexp_ident { txt; _ } -> vclock_named (ident_string txt)
  | Pexp_field (_, { txt; _ }) -> vclock_named (ident_string txt)
  | Pexp_constraint (inner, _) -> suspectish inner
  | _ -> false

let attr_rule (attr : Parsetree.attribute) =
  match attr.attr_name.txt with
  | "poly_ok" -> Some R2
  | "owned" -> Some R3
  | "order_ok" -> Some R4
  | "print_ok" -> Some R5
  | "domain_safe" -> Some R6
  (* harness-side wall-clock measurement; honoured outside lib/ only
     (push_attrs gates on scope) *)
  | "wallclock_ok" -> Some R1
  | "alloc_ok" -> Some R8  (* deliberate cold-branch allocation in [@hot] code *)
  | _ -> None

type state = {
  mutable findings : finding list;
  suppressed : int array;  (** nesting depth of each rule's suppression *)
  mutable context : string option list;  (** binding-name stack, innermost first *)
  occurrences : (string, int) Hashtbl.t;  (** fingerprint deduplication *)
  rules : rule list;
  file : string;
  scope : string;  (** logical path used for rule scoping *)
  owned_allow : string list;
  modname : string;
}

let context_name st =
  match List.find_map Fun.id st.context with Some c -> c | None -> "<toplevel>"

let enabled st rule =
  List.mem rule st.rules && rule_applies rule st.scope
  && st.suppressed.(rule_index rule) = 0

let report st rule ~loc ~lexeme ~message =
  let context = context_name st in
  let base =
    Printf.sprintf "%s|%s|%s|%s" (rule_name rule) st.scope context lexeme
  in
  let n = match Hashtbl.find_opt st.occurrences base with Some n -> n + 1 | None -> 0 in
  Hashtbl.replace st.occurrences base n;
  let pos = loc.Location.loc_start in
  st.findings <-
    {
      rule;
      file = st.file;
      line = pos.Lexing.pos_lnum;
      col = pos.Lexing.pos_cnum - pos.Lexing.pos_bol;
      context;
      lexeme;
      message;
      chain = [];
      fingerprint = Printf.sprintf "%s|%d" base n;
    }
    :: st.findings

(* R1: banned ambient-nondeterminism identifiers. *)
let check_determinism st ~loc name =
  if enabled st R1 then
    let banned =
      match String.split_on_char '.' (strip_stdlib name) with
      | "Unix" :: _ -> true
      | "Random" :: _ -> true
      | [ "Sys"; "time" ] -> true
      | _ -> false
    in
    if banned then
      report st R1 ~loc ~lexeme:name
        ~message:
          (Printf.sprintf
             "nondeterministic primitive %s is banned in lib/ (use virtual \
              time / Prng; DESIGN.md: determinism)"
             name)

(* R3: Vclock in-place operations. *)
let vclock_owned_op name =
  match List.rev (String.split_on_char '.' name) with
  | op :: "Vclock" :: _ when List.mem op vclock_owned_ops -> Some op
  | _ -> None

let owned_allowed st =
  let ctx = context_name st in
  List.exists
    (fun entry ->
      String.equal entry ctx || String.equal entry (st.modname ^ "." ^ ctx))
    st.owned_allow

let check_vclock st ~loc name =
  if enabled st R3 then
    match vclock_owned_op name with
    | Some _ when owned_allowed st -> ()
    | Some _ ->
        report st R3 ~loc ~lexeme:name
          ~message:
            (Printf.sprintf
               "in-place Vclock operation %s requires [@owned] (exclusively \
                owned, never-published clock; DESIGN.md §8)"
               name)
    | None -> ()

(* R4: Hashtbl iteration. *)
let check_iteration st ~loc name =
  if enabled st R4 then
    match strip_stdlib name with
    | "Hashtbl.fold" | "Hashtbl.iter" ->
        report st R4 ~loc ~lexeme:name
          ~message:
            (Printf.sprintf
               "%s iterates in bucket order; sort the result or annotate \
                [@order_ok] if the result is order-insensitive"
               name)
    | _ -> ()

(* R5: ad-hoc printing on library code paths. *)
let check_print st ~loc name =
  if enabled st R5 then
    if List.mem (strip_stdlib name) print_funs then
      report st R5 ~loc ~lexeme:name
        ~message:
          (Printf.sprintf
             "%s prints directly from library code; emit a typed trace event \
              through Obs.emit instead (docs/OBSERVABILITY.md), or annotate \
              [@print_ok] for deliberate CLI output"
             name)

(* R2, bare mention (e.g. [List.sort compare]). *)
let check_poly_bare st ~loc name =
  if enabled st R2 then
    let s = strip_stdlib name in
    if List.mem s poly_named || List.mem s poly_ops || String.equal s "Hashtbl.hash"
    then
      report st R2 ~loc ~lexeme:name
        ~message:
          (Printf.sprintf
             "polymorphic %s used as a value in a hot library; pass a \
              monomorphic comparator (Int.compare, Ids.compare_txn, ...) or \
              annotate [@poly_ok]"
             name)

(* R2, application head: exempt if an operand is syntactically scalar.
   Attributes bind tighter than infix operators, so in [a = b [@poly_ok]]
   the attribute lands on the operand [b]; honour it there too. *)
let operand_poly_ok args =
  List.exists
    (fun ((_, a) : _ * Parsetree.expression) ->
      List.exists
        (fun at -> match attr_rule at with Some R2 -> true | _ -> false)
        a.pexp_attributes)
    args

let check_poly_apply st ~loc name args =
  if enabled st R2 && not (operand_poly_ok args) then
    let s = strip_stdlib name in
    let scalar_operand = List.exists (fun (_, a) -> scalarish a) args in
    if String.equal s "Hashtbl.hash" then
      report st R2 ~loc ~lexeme:name
        ~message:
          "polymorphic Hashtbl.hash in a hot library; use a monomorphic hash \
           or annotate [@poly_ok]"
    else if List.mem s poly_named && not scalar_operand then
      report st R2 ~loc ~lexeme:name
        ~message:
          (Printf.sprintf
             "polymorphic %s on non-scalar operands in a hot library; use \
              Int.%s / Float.%s / a monomorphic comparator, or annotate \
              [@poly_ok]"
             name s s)
    else if
      List.mem s poly_ops
      && (not scalar_operand)
      && List.exists (fun (_, a) -> suspectish a) args
    then
      report st R2 ~loc ~lexeme:name
        ~message:
          (Printf.sprintf
             "polymorphic %s on a structured operand in a hot library; use a \
              monomorphic comparison (Ids.equal_txn, String.equal, \
              Vclock.equal, ...) or annotate [@poly_ok]"
             name)

(* ---- R6: toplevel mutable state -------------------------------------- *)

(* Applications of these construct mutable state.  [Atomic.make] is
   deliberately absent: atomics are the sanctioned cross-domain primitive. *)
let mutable_creators =
  [
    "ref"; "Hashtbl.create"; "Queue.create"; "Stack.create"; "Buffer.create";
    "Array.make"; "Array.create_float"; "Array.init"; "Bytes.create";
    "Bytes.make"; "Weak.create";
  ]

(* Field names declared [mutable] anywhere in the file: the syntactic
   stand-in for "this record literal builds a mutable record".  Records
   whose type lives in another module are invisible to this approximation;
   the creator table above catches the common stdlib cases. *)
let mutable_field_names structure =
  let acc = ref [] in
  let open Ast_iterator in
  let type_declaration self (td : Parsetree.type_declaration) =
    (match td.ptype_kind with
    | Ptype_record labels ->
        List.iter
          (fun (l : Parsetree.label_declaration) ->
            if l.pld_mutable = Asttypes.Mutable then acc := l.pld_name.txt :: !acc)
          labels
    | _ -> ());
    default_iterator.type_declaration self td
  in
  let it = { default_iterator with type_declaration } in
  it.structure it structure;
  !acc

(* The RHS shapes that put mutable state (or a lazy thunk, which is not
   safe to force from two domains) in a module-level binding.  Functions
   are fine: they build their state per call. *)
let rec r6_suspect mut_fields (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _) ->
      let s = strip_stdlib (ident_string txt) in
      if List.mem s mutable_creators then Some s else None
  | Pexp_record (fields, _) ->
      if
        List.exists
          (fun ((lid : _ Asttypes.loc), _) ->
            let name =
              match List.rev (Longident.flatten lid.txt) with n :: _ -> n | [] -> ""
            in
            List.mem name mut_fields)
          fields
      then Some "{mutable record}"
      else None
  | Pexp_lazy _ -> Some "lazy"
  | Pexp_tuple es -> List.find_map (r6_suspect mut_fields) es
  | Pexp_constraint (inner, _) -> r6_suspect mut_fields inner
  | Pexp_let (_, _, body) | Pexp_sequence (_, body) -> r6_suspect mut_fields body
  | _ -> None

let check_r6_binding st ~mut_fields (vb : Parsetree.value_binding) =
  if
    enabled st R6
    && not
         (List.exists
            (fun a -> match attr_rule a with Some R6 -> true | _ -> false)
            vb.pvb_attributes)
  then
    match r6_suspect mut_fields vb.pvb_expr with
    | None -> ()
    | Some lexeme ->
        let name =
          match vb.pvb_pat.ppat_desc with Ppat_var { txt; _ } -> Some txt | _ -> None
        in
        st.context <- name :: st.context;
        report st R6 ~loc:vb.pvb_loc ~lexeme
          ~message:
            (Printf.sprintf
               "module-level binding constructs mutable state (%s), shared \
                across domains when runs fan out in parallel; make it per-run \
                state threaded through Config/run setup, use Atomic.t, or \
                annotate [@@domain_safe] with a justification"
               lexeme);
        st.context <- List.tl st.context

(* Module-level bindings only: a [let] inside a function builds per-call
   state and is exempt.  Nested [module X = struct ... end] items are still
   module-level state, so the walk descends; functor bodies are skipped
   (their bindings are per-application). *)
let rec r6_structure st ~mut_fields (str : Parsetree.structure) =
  List.iter
    (fun (item : Parsetree.structure_item) ->
      match item.pstr_desc with
      | Pstr_value (_, vbs) -> List.iter (check_r6_binding st ~mut_fields) vbs
      | Pstr_module mb -> r6_module_binding st ~mut_fields mb
      | Pstr_recmodule mbs -> List.iter (r6_module_binding st ~mut_fields) mbs
      | Pstr_include { pincl_mod = me; _ } -> r6_module_expr st ~mut_fields me
      | _ -> ())
    str

and r6_module_binding st ~mut_fields (mb : Parsetree.module_binding) =
  (* [@@domain_safe] on the module suppresses for its whole body *)
  if
    not
      (List.exists
         (fun a -> match attr_rule a with Some R6 -> true | _ -> false)
         mb.pmb_attributes)
  then
    r6_module_expr st ~mut_fields mb.pmb_expr

and r6_module_expr st ~mut_fields (me : Parsetree.module_expr) =
  match me.pmod_desc with
  | Pmod_structure str -> r6_structure st ~mut_fields str
  | Pmod_constraint (inner, _) -> r6_module_expr st ~mut_fields inner
  | _ -> ()

let push_attrs st attrs =
  let in_lib = match scope_dir st.scope with Lib _ -> true | _ -> false in
  let pushed =
    List.filter_map
      (fun (a : Parsetree.attribute) ->
        match attr_rule a with
        (* lib/ has no legitimate wall clock: [@wallclock_ok] only buys
           suppression in the harness trees *)
        | Some R1 when in_lib && String.equal a.attr_name.txt "wallclock_ok" ->
            None
        | Some r ->
            st.suppressed.(rule_index r) <- st.suppressed.(rule_index r) + 1;
            Some r
        | None -> None)
      attrs
  in
  pushed

let pop_attrs st pushed =
  List.iter
    (fun r -> st.suppressed.(rule_index r) <- st.suppressed.(rule_index r) - 1)
    pushed

let make_iterator st =
  let open Ast_iterator in
  let judge_ident ~loc name =
    check_determinism st ~loc name;
    check_vclock st ~loc name;
    check_iteration st ~loc name;
    check_print st ~loc name
  in
  let expr self (e : Parsetree.expression) =
    let pushed = push_attrs st e.pexp_attributes in
    (match e.pexp_desc with
    | Pexp_apply ({ pexp_desc = Pexp_ident { txt; loc }; _ }, args) ->
        let name = ident_string txt in
        judge_ident ~loc name;
        check_poly_apply st ~loc name args;
        List.iter (fun (_, a) -> self.expr self a) args
    | Pexp_ident { txt; loc } ->
        let name = ident_string txt in
        judge_ident ~loc name;
        check_poly_bare st ~loc name
    | _ -> default_iterator.expr self e);
    pop_attrs st pushed
  in
  let value_binding self (vb : Parsetree.value_binding) =
    let pushed = push_attrs st vb.pvb_attributes in
    let name =
      match vb.pvb_pat.ppat_desc with
      | Ppat_var { txt; _ } -> Some txt
      | _ -> None
    in
    st.context <- name :: st.context;
    default_iterator.value_binding self vb;
    st.context <- List.tl st.context;
    pop_attrs st pushed
  in
  { default_iterator with expr; value_binding }

(* ---- entry points ---------------------------------------------------- *)

let parse_file path =
  let ic =
    try open_in_bin path
    with Sys_error msg -> raise (Parse_error msg)
  in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let lexbuf = Lexing.from_channel ic in
      Location.init lexbuf path;
      try Parse.implementation lexbuf
      with exn ->
        let msg =
          match Location.error_of_exn exn with
          | Some (`Ok report) ->
              Format.asprintf "%a" Location.print_report report
          | _ -> Printexc.to_string exn
        in
        raise (Parse_error (Printf.sprintf "%s: %s" path msg)))

let modname_of path =
  String.capitalize_ascii (Filename.remove_extension (Filename.basename path))

let check_file ?(rules = all_rules) ?(owned_allow = []) ?scope_as path =
  let scope = match scope_as with Some s -> s | None -> path in
  let structure = parse_file path in
  let st =
    {
      findings = [];
      suppressed = Array.make (List.length all_rules) 0;
      context = [];
      occurrences = Hashtbl.create 64;
      rules;
      file = path;
      scope;
      owned_allow;
      modname = modname_of path;
    }
  in
  let it = make_iterator st in
  it.structure it structure;
  if List.mem R6 rules then
    r6_structure st ~mut_fields:(mutable_field_names structure) structure;
  List.rev st.findings

(* Recursively collect the [.ml] files under [path] (a file or directory),
   sorted so findings and fingerprints are stable across filesystems. *)
let rec collect_ml path =
  if Sys.is_directory path then
    Sys.readdir path |> Array.to_list |> List.sort String.compare
    |> List.concat_map (fun entry -> collect_ml (Filename.concat path entry))
  else if Filename.check_suffix path ".ml" then [ path ]
  else []

(* ---- baselines ------------------------------------------------------- *)

(* A baseline is a file of accepted fingerprints, one per line ([#] starts a
   comment).  It is the escape hatch for adopting the linter on a codebase
   with historical findings without annotating them all at once. *)

let read_baseline path =
  if not (Sys.file_exists path) then []
  else
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let rec go acc =
          match input_line ic with
          | line ->
              let line = String.trim line in
              let acc =
                if String.equal line "" || Char.equal line.[0] '#' then acc
                else line :: acc
              in
              go acc
          | exception End_of_file -> List.rev acc
        in
        go [])

let write_baseline path findings =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc
        "# sss_lint baseline: accepted fingerprints, one per line.\n";
      List.iter (fun f -> output_string oc (f.fingerprint ^ "\n")) findings)

(* Split [findings] into (fresh, baselined) against the fingerprints in
   [known]. *)
let apply_baseline ~known findings =
  List.partition (fun f -> not (List.mem f.fingerprint known)) findings
