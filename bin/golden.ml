(* Regenerate a golden trajectory fixture: a figure's full text followed by
   the run's simulator totals, byte-identical to what the pinned tests in
   test/test_shapes.ml recompute.  Usage:

     dune exec bin/golden.exe -- fig3       > test/golden/fig3_smoke.txt
     dune exec bin/golden.exe -- saturation > test/golden/saturation_smoke.txt

   Regenerate (and eyeball the diff) whenever a protocol or engine change
   intentionally moves the DES trajectory. *)

open Sss_experiments.Experiments

let () =
  let name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "" in
  let fig =
    match name with
    | "fig3" -> fig3
    | "saturation" -> fun c scale -> saturation c scale
    | _ ->
        prerr_endline "usage: golden (fig3|saturation)";
        exit 2
  in
  let buf = Buffer.create 4096 in
  let c = ctx ~jobs:1 ~out:(Buffer.add_string buf) () in
  let m = fig c Smoke in
  Buffer.add_string buf
    (Printf.sprintf "des_events %d\nvirtual_seconds %.6f\ncommitted_txns %d\nruns %d\n"
       m.des_events m.virtual_seconds m.committed_txns m.runs);
  print_string (Buffer.contents buf)
