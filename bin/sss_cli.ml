(* Command-line interface to the SSS reproduction.

   sss-cli point   -- run one experiment point (any system, any parameters)
   sss-cli figure  -- regenerate one of the paper's figures
   sss-cli verify  -- run a recorded workload and check consistency

   Examples:
     dune exec bin/sss_cli.exe -- point --system sss --nodes 10 --ro 0.8
     dune exec bin/sss_cli.exe -- figure fig3 --scale quick
     dune exec bin/sss_cli.exe -- verify --nodes 4 --keys 24 --seed 7 *)

open Cmdliner
open Sss_experiments.Experiments

let system_conv =
  let parse = function
    | "sss" -> Ok Sss
    | "walter" -> Ok Walter
    | "2pc" | "twopc" -> Ok Twopc
    | "rococo" -> Ok Rococo
    | s -> Error (`Msg (Printf.sprintf "unknown system %S (sss|walter|2pc|rococo)" s))
  in
  let print fmt s = Format.pp_print_string fmt (String.lowercase_ascii (system_name s)) in
  Arg.conv (parse, print)

let scale_conv =
  let parse = function
    | "full" -> Ok Full
    | "quick" -> Ok Quick
    | "smoke" -> Ok Smoke
    | s -> Error (`Msg (Printf.sprintf "unknown scale %S (full|quick|smoke)" s))
  in
  let print fmt s =
    Format.pp_print_string fmt
      (match s with Full -> "full" | Quick -> "quick" | Smoke -> "smoke")
  in
  Arg.conv (parse, print)

let system_t =
  Arg.(value & opt system_conv Sss & info [ "system" ] ~docv:"SYSTEM" ~doc:"sss, walter, 2pc or rococo")

let nodes_t = Arg.(value & opt int 5 & info [ "nodes" ] ~doc:"cluster size")
let degree_t = Arg.(value & opt int 2 & info [ "degree" ] ~doc:"replication degree")
let keys_t = Arg.(value & opt int 5000 & info [ "keys" ] ~doc:"key-space size")
let ro_t = Arg.(value & opt float 0.5 & info [ "ro" ] ~doc:"read-only transaction ratio")
let ro_ops_t = Arg.(value & opt int 2 & info [ "ro-ops" ] ~doc:"reads per read-only transaction")
let locality_t = Arg.(value & opt float 0.0 & info [ "locality" ] ~doc:"node-local key probability")
let clients_t = Arg.(value & opt int 10 & info [ "clients" ] ~doc:"closed-loop clients per node")
let duration_t = Arg.(value & opt float 0.04 & info [ "duration" ] ~doc:"measured window (virtual seconds)")
let seed_t = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"PRNG seed")
let scale_t = Arg.(value & opt scale_conv Quick & info [ "scale" ] ~doc:"full, quick or smoke")

let strict_t =
  Arg.(value & flag & info [ "strict" ] ~doc:"SSS hardened external-commit ordering")

let observe_t =
  Arg.(value & flag & info [ "observe" ] ~doc:"attach the sss_obs sink and print its metrics JSON")

let durable_t =
  Arg.(value & flag & info [ "durable" ] ~doc:"write-ahead logging on every node")

let rate_t =
  Arg.(
    value & opt float 0.0
    & info [ "rate" ]
        ~doc:"open-loop Poisson arrivals per second per node (0 = closed loop)")

let queue_t =
  Arg.(value & opt int 64 & info [ "queue" ] ~doc:"open loop: admission-queue capacity per node")

let workers_t =
  Arg.(value & opt int 10 & info [ "workers" ] ~doc:"open loop: service fibers per node")

let gc_t =
  Arg.(value & flag & info [ "gc" ] ~doc:"watermark-driven online version GC (SSS)")

let point_cmd =
  let run_point system nodes degree keys ro ro_ops locality clients duration seed strict observe
      durable rate queue workers gc =
    let o =
      run
        {
          system;
          nodes;
          degree;
          keys;
          ro_ratio = ro;
          ro_ops;
          locality;
          clients;
          warmup = duration /. 4.0;
          duration;
          seed;
          strict;
          priority_network = true;
          compress = true;
          zipf = None;
          observe;
          durability = durable;
          checkpoint_interval = None;
          crash = None;
          arrival = (if rate > 0.0 then Some (Sss_workload.Driver.Poisson rate) else None);
          queue_capacity = queue;
          workers;
          gc;
        }
    in
    Printf.printf "system      : %s\n" (system_name system);
    Printf.printf "throughput  : %.1f KTxs/sec\n" (o.throughput /. 1000.);
    Printf.printf "committed   : %d\n" o.committed;
    Printf.printf "aborted     : %d (%.1f%%)\n" o.aborted (o.abort_rate *. 100.);
    Printf.printf "latency     : mean %.3f ms, p99 %.3f ms\n" (o.mean_latency *. 1e3)
      (o.p99_latency *. 1e3);
    Printf.printf "  update    : mean %.3f ms\n" (o.mean_update_latency *. 1e3);
    Printf.printf "  read-only : mean %.3f ms\n" (o.mean_ro_latency *. 1e3);
    (match (o.sss_internal, o.sss_wait) with
    | Some i, Some w ->
        Printf.printf "  SSS breakdown: internal %.3f ms + snapshot-queue wait %.3f ms (%.0f%%)\n"
          (i *. 1e3) (w *. 1e3)
          (100. *. w /. (i +. w))
    | _ -> ());
    if o.wait_covered_timeouts > 0 then
      Printf.printf "  WARNING: %d covered-wait timeouts\n" o.wait_covered_timeouts;
    if rate > 0.0 then begin
      Printf.printf "open loop   : offered %d, accepted %d, rejected %d (%.1f%%)\n" o.offered
        o.accepted o.rejected
        (100. *. float_of_int o.rejected /. float_of_int (max 1 o.offered));
      Printf.printf "  sojourn   : mean %.3f ms, p99 %.3f ms (queue wait mean %.3f ms)\n"
        (o.mean_sojourn *. 1e3) (o.p99_sojourn *. 1e3)
        (o.mean_queue_wait *. 1e3)
    end;
    if gc then
      Printf.printf "gc          : %d versions retained, %d versions + %d log entries dropped\n"
        o.store_versions o.gc_dropped_versions o.gc_dropped_entries;
    (let m = o.store_mem in
     if m.Sss_data.Mvstore.versions > 0 then
       Printf.printf
         "store       : %d words resident (%.2f words/version; slots %d, clocks %d, index \
          %d, values %d)\n"
         (Sss_data.Mvstore.mem_total m)
         (Sss_data.Mvstore.words_per_version m)
         m.Sss_data.Mvstore.slot_words m.Sss_data.Mvstore.clock_words
         m.Sss_data.Mvstore.index_words m.Sss_data.Mvstore.value_words
     else if o.store_words > 0 then
       Printf.printf "store       : %d words resident (modelled)\n" o.store_words);
    match o.metrics with
    | Some json -> Printf.printf "metrics     : %s\n" json
    | None -> ()
  in
  let term =
    Term.(
      const run_point $ system_t $ nodes_t $ degree_t $ keys_t $ ro_t $ ro_ops_t $ locality_t
      $ clients_t $ duration_t $ seed_t $ strict_t $ observe_t $ durable_t $ rate_t $ queue_t
      $ workers_t $ gc_t)
  in
  Cmd.v (Cmd.info "point" ~doc:"Run a single experiment point") term

let figure_cmd =
  let figure_t =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"FIGURE"
          ~doc:
            "fig3 fig4a fig4b fig5 fig6 fig7 fig8 abort-rate ablation skewed durability \
             saturation all")
  in
  let jobs_t =
    let jobs_conv =
      Arg.conv
        ( (fun s ->
            if String.equal s "max" then Ok (Sss_par.Pool.default_jobs ())
            else
              match int_of_string_opt s with
              | Some n when n >= 1 -> Ok n
              | _ -> Error (`Msg (Printf.sprintf "bad jobs value %S (N or \"max\")" s))),
          fun ppf n -> Format.fprintf ppf "%d" n )
    in
    Arg.(
      value & opt jobs_conv 1
      & info [ "j"; "jobs" ]
          ~doc:"Fan the figure's runs across $(docv) domains (\"max\" = all cores)."
          ~docv:"N")
  in
  let run_figure name scale jobs slo_ms =
    Sss_sim.Sim.tune_gc ();
    let c = ctx ~jobs () in
    let fig =
      match name with
      | "fig3" -> Some fig3
      | "fig4a" -> Some fig4a
      | "fig4b" -> Some fig4b
      | "fig5" -> Some fig5
      | "fig6" -> Some fig6
      | "fig7" -> Some fig7
      | "fig8" -> Some fig8
      | "abort-rate" -> Some abort_rate
      | "ablation" -> Some ablation
      | "skewed" -> Some skewed
      | "durability" -> Some durability
      | "saturation" -> Some (fun c scale -> saturation ?slo_ms c scale)
      | "all" -> Some all
      | _ -> None
    in
    match fig with
    | Some fig -> ignore (fig c scale)
    | None -> Printf.eprintf "unknown figure %s\n" name
  in
  let slo_t =
    Arg.(
      value
      & opt (some float) None
      & info [ "slo" ] ~docv:"MS"
          ~doc:"Saturation figure: p99 sojourn SLO bound in milliseconds (default 5).")
  in
  let term = Term.(const run_figure $ figure_t $ scale_t $ jobs_t $ slo_t) in
  Cmd.v (Cmd.info "figure" ~doc:"Regenerate one of the paper's figures") term

let verify_cmd =
  let run_verify system nodes degree keys ro clients duration seed dot =
    let open Sss_sim in
    let open Sss_consistency in
    let sim = Sim.create () in
    let config =
      {
        Sss_kv.Config.default with
        nodes;
        replication_degree = degree;
        total_keys = keys;
        seed;
      }
    in
    let profile = Sss_workload.Driver.paper_profile ~read_only_ratio:ro in
    let load =
      {
        Sss_workload.Driver.default_load with
        clients_per_node = clients;
        warmup = duration /. 4.0;
        duration;
        seed;
      }
    in
    let history, extra =
      match system with
      | Sss ->
          let cl = Sss_kv.Kv.create sim config in
          let ops =
            {
              Sss_workload.Driver.begin_txn =
                (fun ~node ~read_only -> Sss_kv.Kv.begin_txn cl ~node ~read_only);
              read = Sss_kv.Kv.read;
              write = Sss_kv.Kv.write;
              commit = Sss_kv.Kv.commit;
            }
          in
          let _ =
            Sss_workload.Driver.run sim ~nodes ~total_keys:keys
              ~local_keys:(fun _ -> [||])
              ~profile ~load ~ops
          in
          (Sss_kv.Kv.history cl, [ ("quiescent", Sss_kv.Kv.quiescent cl) ])
      | Twopc ->
          let cl = Twopc_kv.Twopc.create sim config in
          let ops =
            {
              Sss_workload.Driver.begin_txn =
                (fun ~node ~read_only -> Twopc_kv.Twopc.begin_txn cl ~node ~read_only);
              read = Twopc_kv.Twopc.read;
              write = Twopc_kv.Twopc.write;
              commit = Twopc_kv.Twopc.commit;
            }
          in
          let _ =
            Sss_workload.Driver.run sim ~nodes ~total_keys:keys
              ~local_keys:(fun _ -> [||])
              ~profile ~load ~ops
          in
          (Twopc_kv.Twopc.history cl, [ ("quiescent", Twopc_kv.Twopc.quiescent cl) ])
      | Walter ->
          let cl = Walter_kv.Walter.create sim config in
          let ops =
            {
              Sss_workload.Driver.begin_txn =
                (fun ~node ~read_only -> Walter_kv.Walter.begin_txn cl ~node ~read_only);
              read = Walter_kv.Walter.read;
              write = Walter_kv.Walter.write;
              commit = Walter_kv.Walter.commit;
            }
          in
          let _ =
            Sss_workload.Driver.run sim ~nodes ~total_keys:keys
              ~local_keys:(fun _ -> [||])
              ~profile ~load ~ops
          in
          (Walter_kv.Walter.history cl, [ ("quiescent", Walter_kv.Walter.quiescent cl) ])
      | Rococo ->
          let cl = Rococo_kv.Rococo.create sim config in
          let ops =
            {
              Sss_workload.Driver.begin_txn =
                (fun ~node ~read_only -> Rococo_kv.Rococo.begin_txn cl ~node ~read_only);
              read = Rococo_kv.Rococo.read;
              write = Rococo_kv.Rococo.write;
              commit = Rococo_kv.Rococo.commit;
            }
          in
          let _ =
            Sss_workload.Driver.run sim ~nodes ~total_keys:keys
              ~local_keys:(fun _ -> [||])
              ~profile ~load ~ops
          in
          (Rococo_kv.Rococo.history cl, [ ("quiescent", Rococo_kv.Rococo.quiescent cl) ])
    in
    Printf.printf "transactions: %d committed, %d aborted\n"
      (Checker.committed_count history)
      (Checker.aborted_count history);
    let checks =
      [
        ("external consistency (session)", Checker.external_consistency history);
        ("serializability", Checker.serializability history);
        ("no lost updates", Checker.no_lost_updates history);
        ("read-only abort-free", Checker.read_only_abort_free history);
      ]
      @ extra
    in
    List.iter
      (fun (name, res) ->
        match res with
        | Ok () -> Printf.printf "  %-34s PASS\n" name
        | Error msg -> Printf.printf "  %-34s FAIL: %s\n" name msg)
      checks;
    match dot with
    | None -> ()
    | Some path ->
        let oc = open_out path in
        output_string oc (Checker.to_dot history);
        close_out oc;
        Printf.printf "dependency graph written to %s\n" path
  in
  let duration_t =
    Arg.(value & opt float 0.05 & info [ "duration" ] ~doc:"measured window (virtual seconds)")
  in
  let keys_t = Arg.(value & opt int 64 & info [ "keys" ] ~doc:"key-space size") in
  let clients_t = Arg.(value & opt int 4 & info [ "clients" ] ~doc:"clients per node") in
  let nodes_t = Arg.(value & opt int 4 & info [ "nodes" ] ~doc:"cluster size") in
  let dot_t =
    Arg.(value & opt (some string) None & info [ "dot" ] ~doc:"write the dependency graph (Graphviz)")
  in
  let term =
    Term.(
      const run_verify $ system_t $ nodes_t $ degree_t $ keys_t $ ro_t $ clients_t $ duration_t
      $ seed_t $ dot_t)
  in
  Cmd.v
    (Cmd.info "verify" ~doc:"Run a recorded workload and check consistency properties")
    term

let () =
  let info = Cmd.info "sss-cli" ~doc:"SSS (ICDCS'19) reproduction toolkit" in
  exit (Cmd.eval (Cmd.group info [ point_cmd; figure_cmd; verify_cmd ]))
