(* Seed/configuration sweep for the SSS checker properties.  Exits non-zero
   on the first violation, printing the offending configuration.

   [-j N] fans the independent runs of each sweep across N domains
   (sss_par pool; "max" = Pool.default_jobs).  Tasks never print — every
   FAIL line and summary is emitted from the merged results in submission
   order, so the output is identical at any N. *)

open Sss_sim
open Sss_data
open Sss_kv
open Sss_consistency
module Pool = Sss_par.Pool
module Sweep = Sss_par.Sweep

(* --observe: attach the sss_obs sink to every SSS run and report the first
   run's metrics as a section at the end.  The observer-effect contract says
   this must not change any committed count or checker verdict. *)

let run_one ?(strict = true) ?(observe = false) ?(gc = false) ~nodes ~degree ~keys ~ro ~seed
    ~duration ~clients () =
  let sim = Sim.create () in
  let config =
    { Config.default with nodes; replication_degree = degree; total_keys = keys; seed;
      strict_order = strict; observe; gc }
  in
  let cl = Kv.create sim config in
  let ops =
    {
      Sss_workload.Driver.begin_txn = (fun ~node ~read_only -> Kv.begin_txn cl ~node ~read_only);
      read = Kv.read;
      write = Kv.write;
      commit = Kv.commit;
    }
  in
  let result =
    Sss_workload.Driver.run sim ~nodes ~total_keys:keys
      ~local_keys:(fun n -> Replication.keys_at cl.State.repl n)
      ~profile:(Sss_workload.Driver.paper_profile ~read_only_ratio:ro)
      ~load:
        {
          Sss_workload.Driver.default_load with
          clients_per_node = clients;
          warmup = 0.005;
          duration;
          seed;
        }
      ~ops
  in
  let h = Kv.history cl in
  let checks =
    [
      ("external-consistency", Checker.external_consistency h);
      ("serializability", Checker.serializability h);
      ("no-lost-updates", Checker.no_lost_updates h);
      ("ro-abort-free", Checker.read_only_abort_free h);
      ("quiescent", Kv.quiescent cl);
    ]
  in
  (result.Sss_workload.Driver.committed, checks, Kv.metrics_json cl)

(* generic driver over any store exposing the ops quadruple *)
let drive_any sim ~nodes ~keys ~ro ~seed ~clients ~ops ~history ~extra_checks ~kind =
  let result =
    Sss_workload.Driver.run sim ~nodes ~total_keys:keys
      ~local_keys:(fun _ -> [||])
      ~profile:(Sss_workload.Driver.paper_profile ~read_only_ratio:ro)
      ~load:
        {
          Sss_workload.Driver.default_load with
          clients_per_node = clients;
          warmup = 0.005;
          duration = 0.04;
          seed;
        }
      ~ops
  in
  ignore kind;
  (result.Sss_workload.Driver.committed, extra_checks history)

(* One baseline seed: the three non-SSS systems, checks in 2PC, ROCOCO,
   Walter order (the print order of the pre-pool sequential sweep). *)
let baseline_one seed =
  (* 2PC-baseline: must be externally consistent and lost-update free *)
  let sim = Sim.create () in
  let config =
    { Sss_kv.Config.default with nodes = 4; replication_degree = 2; total_keys = 24; seed }
  in
  let cl = Twopc_kv.Twopc.create sim config in
  let _, twopc_checks =
    drive_any sim ~nodes:4 ~keys:24 ~ro:0.5 ~seed ~clients:4 ~kind:"2pc"
      ~ops:
        {
          Sss_workload.Driver.begin_txn =
            (fun ~node ~read_only -> Twopc_kv.Twopc.begin_txn cl ~node ~read_only);
          read = Twopc_kv.Twopc.read;
          write = Twopc_kv.Twopc.write;
          commit = Twopc_kv.Twopc.commit;
        }
      ~history:(Twopc_kv.Twopc.history cl)
      ~extra_checks:(fun h ->
        [
          ("2pc external-consistency", Checker.external_consistency h);
          ("2pc no-lost-updates", Checker.no_lost_updates h);
          ("2pc quiescent", Twopc_kv.Twopc.quiescent cl);
        ])
  in
  (* ROCOCO: serializable, updates never abort *)
  let sim = Sim.create () in
  let config =
    { Sss_kv.Config.default with nodes = 4; replication_degree = 1; total_keys = 24; seed }
  in
  let cl = Rococo_kv.Rococo.create sim config in
  let _, rococo_checks =
    drive_any sim ~nodes:4 ~keys:24 ~ro:0.5 ~seed ~clients:4 ~kind:"rococo"
      ~ops:
        {
          Sss_workload.Driver.begin_txn =
            (fun ~node ~read_only -> Rococo_kv.Rococo.begin_txn cl ~node ~read_only);
          read = Rococo_kv.Rococo.read;
          write = Rococo_kv.Rococo.write;
          commit = Rococo_kv.Rococo.commit;
        }
      ~history:(Rococo_kv.Rococo.history cl)
      ~extra_checks:(fun h ->
        [
          ("rococo serializability", Checker.serializability h);
          ("rococo no-lost-updates", Checker.no_lost_updates h);
          ("rococo quiescent", Rococo_kv.Rococo.quiescent cl);
        ])
  in
  (* Walter: PSI-level properties only *)
  let sim = Sim.create () in
  let config =
    { Sss_kv.Config.default with nodes = 4; replication_degree = 2; total_keys = 24; seed }
  in
  let cl = Walter_kv.Walter.create sim config in
  let _, walter_checks =
    drive_any sim ~nodes:4 ~keys:24 ~ro:0.5 ~seed ~clients:4 ~kind:"walter"
      ~ops:
        {
          Sss_workload.Driver.begin_txn =
            (fun ~node ~read_only -> Walter_kv.Walter.begin_txn cl ~node ~read_only);
          read = Walter_kv.Walter.read;
          write = Walter_kv.Walter.write;
          commit = Walter_kv.Walter.commit;
        }
      ~history:(Walter_kv.Walter.history cl)
      ~extra_checks:(fun h ->
        [
          ("walter no-lost-updates", Checker.no_lost_updates h);
          ("walter ro-abort-free", Checker.read_only_abort_free h);
          ("walter quiescent", Walter_kv.Walter.quiescent cl);
        ])
  in
  twopc_checks @ rococo_checks @ walter_checks

let baseline_sweep pool =
  let failures = ref 0 in
  let seeds = Sweep.seeds 8 in
  let results = Pool.map_list pool baseline_one seeds in
  List.iter2
    (fun seed checks ->
      List.iter
        (fun (name, res) ->
          match res with
          | Ok () -> ()
          | Error msg ->
              incr failures;
              Printf.printf "FAIL %s seed=%d: %s\n%!" name seed msg)
        checks)
    seeds results;
  let runs = 3 * List.length seeds in
  Printf.printf "baselines: %d runs, %d failures\n%!" runs !failures;
  !failures

(* ---------------------------------------------------------------- *)
(* Chaos mode (--chaos <plan>): run all four systems under a fault plan
   with fault tolerance on, across 20 seeds, and require checker-accepted
   histories throughout.  The plan's own seed is offset by the sweep seed
   so both the workload and the injected faults vary together.  Chaos runs
   never feed the paper-shape figures (see EXPERIMENTS.md). *)

let chaos_config ?(durable = false) ~degree ~seed () =
  { Config.default with nodes = 4; replication_degree = degree; total_keys = 24; seed;
    fault_tolerance = true; durability = durable }

let chaos_drive sim ~seed ~ops =
  Sss_workload.Driver.run sim ~nodes:4 ~total_keys:24
    ~local_keys:(fun _ -> [||])
    ~profile:(Sss_workload.Driver.paper_profile ~read_only_ratio:0.5)
    ~load:
      {
        Sss_workload.Driver.default_load with
        clients_per_node = 2;
        warmup = 0.005;
        duration = 0.03;
        seed;
      }
    ~ops

(* One chaos seed: all four systems; returns the committed total and the
   per-system checks, in SSS, 2PC, Walter, ROCOCO order.  [durable] turns
   on write-ahead logging and wires the Chaos crash/restart hooks so a
   fail-stopped node replays its log instead of just dropping messages. *)
let chaos_one ?(durable = false) base_plan seed =
  let module Chaos = Sss_chaos.Chaos in
  let plan = { base_plan with Chaos.seed = base_plan.Chaos.seed + seed } in
  (* SSS *)
  let sim = Sim.create () in
  let cl = Kv.create sim (chaos_config ~durable ~degree:2 ~seed ()) in
  (if durable then
     ignore
       (Chaos.install sim (Kv.network cl) ~kind_of:Message.kind_name
          ~on_crash:(Kv.crash_node cl)
          ~on_restart:(Kv.restart_node cl) plan)
   else ignore (Chaos.install sim (Kv.network cl) ~kind_of:Message.kind_name plan));
  let r =
    chaos_drive sim ~seed
      ~ops:
        {
          Sss_workload.Driver.begin_txn =
            (fun ~node ~read_only -> Kv.begin_txn cl ~node ~read_only);
          read = Kv.read;
          write = Kv.write;
          commit = Kv.commit;
        }
  in
  let committed = ref r.Sss_workload.Driver.committed in
  let h = Kv.history cl in
  let sss_checks =
    ( "sss",
      [
        ("external-consistency", Checker.external_consistency h);
        ("serializability", Checker.serializability h);
        ("no-lost-updates", Checker.no_lost_updates h);
        ("no-torn-commits", Checker.no_torn_commits h);
        ("ro-abort-free", Checker.read_only_abort_free h);
        ("quiescent", Kv.quiescent cl);
      ] )
  in
  (* 2PC *)
  let sim = Sim.create () in
  let cl = Twopc_kv.Twopc.create sim (chaos_config ~durable ~degree:2 ~seed ()) in
  (if durable then
     ignore
       (Chaos.install sim (Twopc_kv.Twopc.network cl) ~kind_of:Twopc_kv.Twopc.message_kind
          ~on_crash:(Twopc_kv.Twopc.crash_node cl)
          ~on_restart:(Twopc_kv.Twopc.restart_node cl) plan)
   else
     ignore
       (Chaos.install sim (Twopc_kv.Twopc.network cl) ~kind_of:Twopc_kv.Twopc.message_kind
          plan));
  let r =
    chaos_drive sim ~seed
      ~ops:
        {
          Sss_workload.Driver.begin_txn =
            (fun ~node ~read_only -> Twopc_kv.Twopc.begin_txn cl ~node ~read_only);
          read = Twopc_kv.Twopc.read;
          write = Twopc_kv.Twopc.write;
          commit = Twopc_kv.Twopc.commit;
        }
  in
  committed := !committed + r.Sss_workload.Driver.committed;
  let h = Twopc_kv.Twopc.history cl in
  let twopc_checks =
    ( "2pc",
      [
        ("external-consistency", Checker.external_consistency h);
        ("no-lost-updates", Checker.no_lost_updates h);
        ("no-torn-commits", Checker.no_torn_commits h);
        ("quiescent", Twopc_kv.Twopc.quiescent cl);
      ] )
  in
  (* Walter *)
  let sim = Sim.create () in
  let cl = Walter_kv.Walter.create sim (chaos_config ~durable ~degree:2 ~seed ()) in
  (if durable then
     ignore
       (Chaos.install sim (Walter_kv.Walter.network cl) ~kind_of:Walter_kv.Walter.message_kind
          ~on_crash:(Walter_kv.Walter.crash_node cl)
          ~on_restart:(Walter_kv.Walter.restart_node cl) plan)
   else
     ignore
       (Chaos.install sim (Walter_kv.Walter.network cl) ~kind_of:Walter_kv.Walter.message_kind
          plan));
  let r =
    chaos_drive sim ~seed
      ~ops:
        {
          Sss_workload.Driver.begin_txn =
            (fun ~node ~read_only -> Walter_kv.Walter.begin_txn cl ~node ~read_only);
          read = Walter_kv.Walter.read;
          write = Walter_kv.Walter.write;
          commit = Walter_kv.Walter.commit;
        }
  in
  committed := !committed + r.Sss_workload.Driver.committed;
  let h = Walter_kv.Walter.history cl in
  let walter_checks =
    ( "walter",
      [
        ("no-lost-updates", Checker.no_lost_updates h);
        ("no-torn-commits", Checker.no_torn_commits h);
        ("ro-abort-free", Checker.read_only_abort_free h);
        ("quiescent", Walter_kv.Walter.quiescent cl);
      ] )
  in
  (* ROCOCO *)
  let sim = Sim.create () in
  let cl = Rococo_kv.Rococo.create sim (chaos_config ~durable ~degree:1 ~seed ()) in
  (if durable then
     ignore
       (Chaos.install sim (Rococo_kv.Rococo.network cl) ~kind_of:Rococo_kv.Rococo.message_kind
          ~on_crash:(Rococo_kv.Rococo.crash_node cl)
          ~on_restart:(Rococo_kv.Rococo.restart_node cl) plan)
   else
     ignore
       (Chaos.install sim (Rococo_kv.Rococo.network cl) ~kind_of:Rococo_kv.Rococo.message_kind
          plan));
  let r =
    chaos_drive sim ~seed
      ~ops:
        {
          Sss_workload.Driver.begin_txn =
            (fun ~node ~read_only -> Rococo_kv.Rococo.begin_txn cl ~node ~read_only);
          read = Rococo_kv.Rococo.read;
          write = Rococo_kv.Rococo.write;
          commit = Rococo_kv.Rococo.commit;
        }
  in
  committed := !committed + r.Sss_workload.Driver.committed;
  let h = Rococo_kv.Rococo.history cl in
  let rococo_checks =
    ( "rococo",
      [
        ("serializability", Checker.serializability h);
        ("no-lost-updates", Checker.no_lost_updates h);
        ("no-torn-commits", Checker.no_torn_commits h);
        ("quiescent", Rococo_kv.Rococo.quiescent cl);
      ] )
  in
  (!committed, [ sss_checks; twopc_checks; walter_checks; rococo_checks ])

(* Durable crash-recovery sweep (always on): every system with write-ahead
   logging enabled, one node fail-stopped mid-run and restarted through log
   replay, across 10 seeds.  Histories must stay checker-accepted —
   including no torn commits — and the cluster must end quiescent. *)
let durability_sweep pool =
  let module Chaos = Sss_chaos.Chaos in
  let plan =
    {
      Chaos.seed = 0;
      rules = [];
      events = [ Chaos.Crash { at = 0.015; restart_at = Some 0.019; node = 2 } ];
    }
  in
  let failures = ref 0 in
  let committed = ref 0 in
  let seeds = Sweep.seeds 10 in
  let results = Pool.map_list pool (chaos_one ~durable:true plan) seeds in
  List.iter2
    (fun seed (c, per_system) ->
      committed := !committed + c;
      List.iter
        (fun (system, checks) ->
          List.iter
            (fun (name, res) ->
              match res with
              | Ok () -> ()
              | Error msg ->
                  incr failures;
                  Printf.printf "FAIL durable %s seed=%d %s: %s\n%!" system seed name msg)
            checks)
        per_system)
    seeds results;
  Printf.printf "durability sweep: %d seeds x 4 systems, %d committed, %d failures\n%!"
    (List.length seeds) !committed !failures;
  !failures

let chaos_sweep pool plan_text =
  let module Chaos = Sss_chaos.Chaos in
  let plan =
    match Chaos.parse plan_text with
    | Ok p -> p
    | Error e ->
        Printf.eprintf "bad --chaos plan: %s\n" e;
        exit 2
  in
  (match Chaos.validate ~nodes:4 plan with
  | Ok () -> ()
  | Error e ->
      Printf.eprintf "invalid --chaos plan: %s\n" e;
      exit 2);
  let failures = ref 0 in
  let committed = ref 0 in
  let seeds = Sweep.seeds 20 in
  let results = Pool.map_list pool (chaos_one plan) seeds in
  List.iter2
    (fun seed (c, per_system) ->
      committed := !committed + c;
      List.iter
        (fun (system, checks) ->
          List.iter
            (fun (name, res) ->
              match res with
              | Ok () -> ()
              | Error msg ->
                  incr failures;
                  Printf.printf "FAIL chaos %s seed=%d %s: %s\n%!" system seed name msg)
            checks)
        per_system)
    seeds results;
  Printf.printf "chaos sweep: 20 seeds x 4 systems, %d committed, %d failures\n%!" !committed
    !failures;
  exit (if !failures > 0 then 1 else 0)

(* --open: the large open-loop ladder — 100 then 200 nodes, 1M keys each,
   Poisson arrivals, online version GC on.  The store starts at keys x
   degree versions; GC must keep retention flat, so the end-of-run count
   may exceed that baseline only by the in-flight margin (versions newer
   than the cluster watermark).  Each rung exits non-zero if retention
   grew by more than half of what the run installed, or if the GC never
   reclaimed anything.  A sampler fiber records peak resident store words
   ([Kv.mem_words]) across the run, and the 100-node rung asserts the
   compact store's per-version footprint: the pre-arena layout priced a
   version at ~109 words there (list cons 3 + boxed record 4 + private
   101-entry clock array 102, before the value), so <= 36 words/version
   certifies the >= 3x reduction the arena store is gated on. *)
let open_rung ~nodes ~keys ~assert_footprint () =
  let degree = 2 in
  let sim = Sim.create () in
  let config =
    { Config.default with nodes; replication_degree = degree; total_keys = keys; seed = 42;
      gc = true }
  in
  let cl = Kv.create sim config in
  let ops =
    {
      Sss_workload.Driver.begin_txn = (fun ~node ~read_only -> Kv.begin_txn cl ~node ~read_only);
      read = Kv.read;
      write = Kv.write;
      commit = Kv.commit;
    }
  in
  let baseline = Kv.version_count cl in
  let warmup = 0.002 and duration = 0.03 in
  let peak = ref 0 in
  Sim.spawn sim (fun () ->
      let deadline = warmup +. duration in
      while Sim.now sim < deadline do
        peak := Stdlib.max !peak (Mvstore.mem_total (Kv.mem_words cl));
        Sim.sleep sim 0.001
      done);
  let result =
    Sss_workload.Driver.run sim ~nodes ~total_keys:keys
      ~local_keys:(fun n -> Replication.keys_at cl.State.repl n)
      ~profile:(Sss_workload.Driver.paper_profile ~read_only_ratio:0.5)
      ~load:
        {
          Sss_workload.Driver.default_load with
          warmup;
          duration;
          seed = 42;
          open_loop =
            Some
              {
                Sss_workload.Driver.arrival = Sss_workload.Driver.Poisson 2000.0;
                queue_capacity = 64;
                workers_per_node = 4;
              };
        }
      ~ops
  in
  let retained = Kv.version_count cl in
  let refreshes, dropped_v, dropped_e = Kv.gc_stats cl in
  let slack = retained - baseline in
  let installed = slack + dropped_v in
  let mem = Kv.mem_words cl in
  peak := Stdlib.max !peak (Mvstore.mem_total mem);
  let wpv = Mvstore.words_per_version mem in
  Printf.printf
    "open-loop target: %d nodes, %dk keys: %d offered, %d accepted, %d committed\n"
    nodes (keys / 1000) result.Sss_workload.Driver.offered result.Sss_workload.Driver.accepted
    result.Sss_workload.Driver.committed;
  Printf.printf
    "  versions: baseline %d, installed %d, dropped %d, retained %+d (%d watermark refreshes, %d log entries dropped)\n"
    baseline installed dropped_v slack refreshes dropped_e;
  Printf.printf "  store: %d resident words (peak %d), %.2f words/version\n"
    (Mvstore.mem_total mem) !peak wpv;
  let failures = ref 0 in
  if result.Sss_workload.Driver.committed = 0 then begin
    incr failures;
    Printf.printf "FAIL open-loop: nothing committed\n"
  end;
  if dropped_v = 0 then begin
    incr failures;
    Printf.printf "FAIL open-loop: GC reclaimed no versions\n"
  end;
  if slack * 2 > installed then begin
    incr failures;
    Printf.printf "FAIL open-loop: version retention not flat (%d of %d installed remain)\n"
      slack installed
  end;
  if assert_footprint && wpv > 36.0 then begin
    incr failures;
    Printf.printf
      "FAIL open-loop: %.2f words/version exceeds the 36.0 bound (3x of the pre-arena ~109)\n"
      wpv
  end;
  (match Kv.quiescent cl with
  | Ok () -> ()
  | Error msg ->
      incr failures;
      Printf.printf "FAIL open-loop quiescent: %s\n" msg);
  Printf.printf "open-loop target: %d failures\n" !failures;
  !failures

let open_loop_target () =
  let f100 = open_rung ~nodes:100 ~keys:1_000_000 ~assert_footprint:true () in
  let f200 = open_rung ~nodes:200 ~keys:1_000_000 ~assert_footprint:false () in
  f100 + f200

let () =
  let chaos_plan = ref None in
  let observe = ref false in
  let open_target = ref false in
  let jobs = ref 1 in
  Arg.parse
    [
      ( "--chaos",
        Arg.String (fun s -> chaos_plan := Some s),
        "PLAN  run the 4-system chaos sweep under a fault plan (DSL; see docs/FAULTS.md)" );
      ( "--observe",
        Arg.Set observe,
        " trace the SSS runs with sss_obs and print a metrics section (docs/OBSERVABILITY.md)" );
      ( "--open",
        Arg.Set open_target,
        " run only the 100-node/1M-key open-loop GC target (flat version retention)" );
      ( "-j",
        Arg.String
          (fun s ->
            jobs :=
              if String.equal s "max" then Pool.default_jobs ()
              else
                match int_of_string_opt s with
                | Some n when n >= 1 -> n
                | _ -> raise (Arg.Bad ("bad -j value " ^ s))),
        "N  fan sweep runs across N domains (\"max\" = all cores; default 1)" );
    ]
    (fun a -> raise (Arg.Bad ("unexpected argument " ^ a)))
    "stress [--chaos PLAN] [--observe] [--open] [-j N]";
  (* Resize the minor heap while the runtime is still single-domain. *)
  Sim.tune_gc ();
  if !open_target then exit (if open_loop_target () > 0 then 1 else 0);
  let pool = Pool.create ~jobs:!jobs in
  let observe = !observe in
  Option.iter (chaos_sweep pool) !chaos_plan;
  let failures = ref 0 in
  (* Contention here is measured in keys per client; the paper's evaluation
     never goes below 5000/200 = 25.  Our matrix reaches ratio ~1 — still
     an order of magnitude hotter — and must be violation-free. *)
  let configs =
    [
      (2, 1, 8, 0.5, 4);
      (3, 1, 24, 0.5, 4);
      (4, 2, 24, 0.5, 4);
      (4, 2, 32, 0.2, 6);
      (5, 3, 16, 0.8, 4);
      (6, 2, 48, 0.8, 6);
      (8, 2, 64, 0.5, 4);
    ]
  in
  let matrix_seeds = Sweep.seeds 12 in
  let grid = Sweep.cross configs matrix_seeds in
  let total = List.length grid in
  let results =
    Pool.map_list pool
      (fun ((nodes, degree, keys, ro, clients), seed) ->
        run_one ~observe ~nodes ~degree ~keys ~ro ~seed ~duration:0.04 ~clients ())
      grid
  in
  let first_metrics = ref None in
  let last_seed = List.length matrix_seeds in
  List.iter2
    (fun ((nodes, degree, keys, ro, _clients), seed) (committed, checks, metrics) ->
      (match (!first_metrics, metrics) with
      | None, Some json -> first_metrics := Some json
      | _ -> ());
      List.iter
        (fun (name, res) ->
          match res with
          | Ok () -> ()
          | Error msg ->
              incr failures;
              Printf.printf
                "FAIL %s: nodes=%d degree=%d keys=%d ro=%.1f seed=%d (%d committed): %s\n%!"
                name nodes degree keys ro seed committed msg)
        checks;
      if seed = last_seed then
        Printf.printf "config nodes=%d degree=%d keys=%d ro=%.1f done\n%!" nodes degree keys
          ro)
    grid results;
  (* Torture mode: keys-per-client ratio 0.5, ~50x hotter than anything the
     paper evaluates.  Rare Adya divergences between concurrent writers are
     still reachable here (see DESIGN.md "Known gap"); we report the rate
     rather than assert zero.  Liveness and the per-transaction properties
     must still hold. *)
  let torture_div = ref 0 and torture_committed = ref 0 in
  let torture_seeds = Sweep.seeds 12 in
  let torture_results =
    Pool.map_list pool
      (fun seed ->
        run_one ~observe ~nodes:4 ~degree:2 ~keys:8 ~ro:0.5 ~seed ~duration:0.04 ~clients:4
          ())
      torture_seeds
  in
  List.iter2
    (fun seed (committed, checks, _metrics) ->
      torture_committed := !torture_committed + committed;
      List.iter
        (fun (name, res) ->
          match (name, res) with
          | ("external-consistency" | "serializability"), Error _ -> incr torture_div
          | _, Ok () -> ()
          | _, Error msg ->
              incr failures;
              Printf.printf "FAIL torture %s seed=%d: %s\n%!" name seed msg)
        checks)
    torture_seeds torture_results;
  Printf.printf
    "torture (keys/client=0.5): %d runs, %d committed, %d divergence reports\n"
    (List.length torture_seeds) !torture_committed !torture_div;
  (* Paper mode across the same matrix: violations are the documented
     finding (DESIGN.md §8), so they are counted and reported, not
     asserted.  Liveness and per-transaction properties must still hold. *)
  let pm_div = ref 0 and pm_committed = ref 0 in
  let pm_grid = Sweep.cross configs (Sweep.seeds 6) in
  let pm_results =
    Pool.map_list pool
      (fun ((nodes, degree, keys, ro, clients), seed) ->
        run_one ~strict:false ~observe ~nodes ~degree ~keys ~ro ~seed ~duration:0.04
          ~clients ())
      pm_grid
  in
  List.iter2
    (fun ((nodes, _degree, keys, _ro, _clients), seed) (committed, checks, _metrics) ->
      pm_committed := !pm_committed + committed;
      List.iter
        (fun (name, res) ->
          match (name, res) with
          | ("external-consistency" | "serializability"), Error _ -> incr pm_div
          | _, Ok () -> ()
          | _, Error msg ->
              incr failures;
              Printf.printf "FAIL paper-mode %s nodes=%d keys=%d seed=%d: %s\n%!" name nodes
                keys seed msg)
        checks)
    pm_grid pm_results;
  Printf.printf
    "paper mode: %d runs, %d committed, %d divergence reports (the documented §8 finding)\n"
    (List.length pm_grid) !pm_committed !pm_div;
  (* GC-on sweep: the online watermark GC must never change a checker
     verdict — the full strict matrix again with Config.gc on, all
     properties asserted. *)
  let gc_grid = Sweep.cross configs (Sweep.seeds 6) in
  let gc_results =
    Pool.map_list pool
      (fun ((nodes, degree, keys, ro, clients), seed) ->
        run_one ~gc:true ~observe ~nodes ~degree ~keys ~ro ~seed ~duration:0.04 ~clients ())
      gc_grid
  in
  let gc_committed = ref 0 in
  List.iter2
    (fun ((nodes, degree, keys, ro, _clients), seed) (committed, checks, _metrics) ->
      gc_committed := !gc_committed + committed;
      List.iter
        (fun (name, res) ->
          match res with
          | Ok () -> ()
          | Error msg ->
              incr failures;
              Printf.printf
                "FAIL gc-on %s: nodes=%d degree=%d keys=%d ro=%.1f seed=%d: %s\n%!" name
                nodes degree keys ro seed msg)
        checks)
    gc_grid gc_results;
  Printf.printf "gc-on sweep: %d runs, %d committed, all properties asserted\n%!"
    (List.length gc_grid) !gc_committed;
  failures := !failures + baseline_sweep pool;
  failures := !failures + durability_sweep pool;
  (match !first_metrics with
  | Some json -> Printf.printf "metrics (first observed SSS run): %s\n" json
  | None -> ());
  Printf.printf "stress: %d runs, %d failures\n" total !failures;
  exit (if !failures > 0 then 1 else 0)
