(* Seed/configuration sweep for the SSS checker properties.  Exits non-zero
   on the first violation, printing the offending configuration. *)

open Sss_sim
open Sss_data
open Sss_kv
open Sss_consistency

(* --observe: attach the sss_obs sink to every SSS run and report the first
   run's metrics as a section at the end.  The observer-effect contract says
   this must not change any committed count or checker verdict. *)
let observe_runs = ref false

let first_metrics = ref None

let run_one ?(strict = true) ~nodes ~degree ~keys ~ro ~seed ~duration ~clients () =
  let sim = Sim.create () in
  let config =
    { Config.default with nodes; replication_degree = degree; total_keys = keys; seed;
      strict_order = strict; observe = !observe_runs }
  in
  let cl = Kv.create sim config in
  let ops =
    {
      Sss_workload.Driver.begin_txn = (fun ~node ~read_only -> Kv.begin_txn cl ~node ~read_only);
      read = Kv.read;
      write = Kv.write;
      commit = Kv.commit;
    }
  in
  let result =
    Sss_workload.Driver.run sim ~nodes ~total_keys:keys
      ~local_keys:(fun n -> Replication.keys_at cl.State.repl n)
      ~profile:(Sss_workload.Driver.paper_profile ~read_only_ratio:ro)
      ~load:
        {
          Sss_workload.Driver.default_load with
          clients_per_node = clients;
          warmup = 0.005;
          duration;
          seed;
        }
      ~ops
  in
  let h = Kv.history cl in
  let checks =
    [
      ("external-consistency", Checker.external_consistency h);
      ("serializability", Checker.serializability h);
      ("no-lost-updates", Checker.no_lost_updates h);
      ("ro-abort-free", Checker.read_only_abort_free h);
      ("quiescent", Kv.quiescent cl);
    ]
  in
  (match (!first_metrics, Kv.metrics_json cl) with
  | None, Some json -> first_metrics := Some json
  | _ -> ());
  (result.Sss_workload.Driver.committed, checks)

(* generic driver over any store exposing the ops quadruple *)
let drive_any sim ~nodes ~keys ~ro ~seed ~clients ~ops ~history ~extra_checks ~kind =
  let result =
    Sss_workload.Driver.run sim ~nodes ~total_keys:keys
      ~local_keys:(fun _ -> [||])
      ~profile:(Sss_workload.Driver.paper_profile ~read_only_ratio:ro)
      ~load:
        {
          Sss_workload.Driver.default_load with
          clients_per_node = clients;
          warmup = 0.005;
          duration = 0.04;
          seed;
        }
      ~ops
  in
  ignore kind;
  (result.Sss_workload.Driver.committed, extra_checks history)

let baseline_sweep () =
  let failures = ref 0 in
  let runs = ref 0 in
  for seed = 1 to 8 do
    (* 2PC-baseline: must be externally consistent and lost-update free *)
    incr runs;
    let sim = Sim.create () in
    let config =
      { Sss_kv.Config.default with nodes = 4; replication_degree = 2; total_keys = 24; seed }
    in
    let cl = Twopc_kv.Twopc.create sim config in
    let _, checks =
      drive_any sim ~nodes:4 ~keys:24 ~ro:0.5 ~seed ~clients:4 ~kind:"2pc"
        ~ops:
          {
            Sss_workload.Driver.begin_txn =
              (fun ~node ~read_only -> Twopc_kv.Twopc.begin_txn cl ~node ~read_only);
            read = Twopc_kv.Twopc.read;
            write = Twopc_kv.Twopc.write;
            commit = Twopc_kv.Twopc.commit;
          }
        ~history:(Twopc_kv.Twopc.history cl)
        ~extra_checks:(fun h ->
          [
            ("2pc external-consistency", Checker.external_consistency h);
            ("2pc no-lost-updates", Checker.no_lost_updates h);
            ("2pc quiescent", Twopc_kv.Twopc.quiescent cl);
          ])
    in
    List.iter
      (fun (name, res) ->
        match res with
        | Ok () -> ()
        | Error msg ->
            incr failures;
            Printf.printf "FAIL %s seed=%d: %s
%!" name seed msg)
      checks;
    (* ROCOCO: serializable, updates never abort *)
    incr runs;
    let sim = Sim.create () in
    let config =
      { Sss_kv.Config.default with nodes = 4; replication_degree = 1; total_keys = 24; seed }
    in
    let cl = Rococo_kv.Rococo.create sim config in
    let _, checks =
      drive_any sim ~nodes:4 ~keys:24 ~ro:0.5 ~seed ~clients:4 ~kind:"rococo"
        ~ops:
          {
            Sss_workload.Driver.begin_txn =
              (fun ~node ~read_only -> Rococo_kv.Rococo.begin_txn cl ~node ~read_only);
            read = Rococo_kv.Rococo.read;
            write = Rococo_kv.Rococo.write;
            commit = Rococo_kv.Rococo.commit;
          }
        ~history:(Rococo_kv.Rococo.history cl)
        ~extra_checks:(fun h ->
          [
            ("rococo serializability", Checker.serializability h);
            ("rococo no-lost-updates", Checker.no_lost_updates h);
            ("rococo quiescent", Rococo_kv.Rococo.quiescent cl);
          ])
    in
    List.iter
      (fun (name, res) ->
        match res with
        | Ok () -> ()
        | Error msg ->
            incr failures;
            Printf.printf "FAIL %s seed=%d: %s
%!" name seed msg)
      checks;
    (* Walter: PSI-level properties only *)
    incr runs;
    let sim = Sim.create () in
    let config =
      { Sss_kv.Config.default with nodes = 4; replication_degree = 2; total_keys = 24; seed }
    in
    let cl = Walter_kv.Walter.create sim config in
    let _, checks =
      drive_any sim ~nodes:4 ~keys:24 ~ro:0.5 ~seed ~clients:4 ~kind:"walter"
        ~ops:
          {
            Sss_workload.Driver.begin_txn =
              (fun ~node ~read_only -> Walter_kv.Walter.begin_txn cl ~node ~read_only);
            read = Walter_kv.Walter.read;
            write = Walter_kv.Walter.write;
            commit = Walter_kv.Walter.commit;
          }
        ~history:(Walter_kv.Walter.history cl)
        ~extra_checks:(fun h ->
          [
            ("walter no-lost-updates", Checker.no_lost_updates h);
            ("walter ro-abort-free", Checker.read_only_abort_free h);
            ("walter quiescent", Walter_kv.Walter.quiescent cl);
          ])
    in
    List.iter
      (fun (name, res) ->
        match res with
        | Ok () -> ()
        | Error msg ->
            incr failures;
            Printf.printf "FAIL %s seed=%d: %s
%!" name seed msg)
      checks
  done;
  Printf.printf "baselines: %d runs, %d failures
%!" !runs !failures;
  !failures

(* ---------------------------------------------------------------- *)
(* Chaos mode (--chaos <plan>): run all four systems under a fault plan
   with fault tolerance on, across 20 seeds, and require checker-accepted
   histories throughout.  The plan's own seed is offset by the sweep seed
   so both the workload and the injected faults vary together.  Chaos runs
   never feed the paper-shape figures (see EXPERIMENTS.md). *)

let chaos_config ~degree ~seed =
  { Config.default with nodes = 4; replication_degree = degree; total_keys = 24; seed;
    fault_tolerance = true }

let chaos_drive sim ~seed ~ops =
  Sss_workload.Driver.run sim ~nodes:4 ~total_keys:24
    ~local_keys:(fun _ -> [||])
    ~profile:(Sss_workload.Driver.paper_profile ~read_only_ratio:0.5)
    ~load:
      {
        Sss_workload.Driver.default_load with
        clients_per_node = 2;
        warmup = 0.005;
        duration = 0.03;
        seed;
      }
    ~ops

let chaos_sweep plan_text =
  let module Chaos = Sss_chaos.Chaos in
  let plan =
    match Chaos.parse plan_text with
    | Ok p -> p
    | Error e ->
        Printf.eprintf "bad --chaos plan: %s\n" e;
        exit 2
  in
  (match Chaos.validate ~nodes:4 plan with
  | Ok () -> ()
  | Error e ->
      Printf.eprintf "invalid --chaos plan: %s\n" e;
      exit 2);
  let failures = ref 0 in
  let committed = ref 0 in
  let check ~system ~seed checks =
    List.iter
      (fun (name, res) ->
        match res with
        | Ok () -> ()
        | Error msg ->
            incr failures;
            Printf.printf "FAIL chaos %s seed=%d %s: %s\n%!" system seed name msg)
      checks
  in
  for seed = 1 to 20 do
    let plan = { plan with Chaos.seed = plan.Chaos.seed + seed } in
    (* SSS *)
    let sim = Sim.create () in
    let cl = Kv.create sim (chaos_config ~degree:2 ~seed) in
    ignore (Chaos.install sim (Kv.network cl) ~kind_of:Message.kind_name plan);
    let r =
      chaos_drive sim ~seed
        ~ops:
          {
            Sss_workload.Driver.begin_txn =
              (fun ~node ~read_only -> Kv.begin_txn cl ~node ~read_only);
            read = Kv.read;
            write = Kv.write;
            commit = Kv.commit;
          }
    in
    committed := !committed + r.Sss_workload.Driver.committed;
    let h = Kv.history cl in
    check ~system:"sss" ~seed
      [
        ("external-consistency", Checker.external_consistency h);
        ("serializability", Checker.serializability h);
        ("no-lost-updates", Checker.no_lost_updates h);
        ("ro-abort-free", Checker.read_only_abort_free h);
        ("quiescent", Kv.quiescent cl);
      ];
    (* 2PC *)
    let sim = Sim.create () in
    let cl = Twopc_kv.Twopc.create sim (chaos_config ~degree:2 ~seed) in
    ignore
      (Chaos.install sim (Twopc_kv.Twopc.network cl) ~kind_of:Twopc_kv.Twopc.message_kind plan);
    let r =
      chaos_drive sim ~seed
        ~ops:
          {
            Sss_workload.Driver.begin_txn =
              (fun ~node ~read_only -> Twopc_kv.Twopc.begin_txn cl ~node ~read_only);
            read = Twopc_kv.Twopc.read;
            write = Twopc_kv.Twopc.write;
            commit = Twopc_kv.Twopc.commit;
          }
    in
    committed := !committed + r.Sss_workload.Driver.committed;
    let h = Twopc_kv.Twopc.history cl in
    check ~system:"2pc" ~seed
      [
        ("external-consistency", Checker.external_consistency h);
        ("no-lost-updates", Checker.no_lost_updates h);
        ("quiescent", Twopc_kv.Twopc.quiescent cl);
      ];
    (* Walter *)
    let sim = Sim.create () in
    let cl = Walter_kv.Walter.create sim (chaos_config ~degree:2 ~seed) in
    ignore
      (Chaos.install sim (Walter_kv.Walter.network cl) ~kind_of:Walter_kv.Walter.message_kind
         plan);
    let r =
      chaos_drive sim ~seed
        ~ops:
          {
            Sss_workload.Driver.begin_txn =
              (fun ~node ~read_only -> Walter_kv.Walter.begin_txn cl ~node ~read_only);
            read = Walter_kv.Walter.read;
            write = Walter_kv.Walter.write;
            commit = Walter_kv.Walter.commit;
          }
    in
    committed := !committed + r.Sss_workload.Driver.committed;
    let h = Walter_kv.Walter.history cl in
    check ~system:"walter" ~seed
      [
        ("no-lost-updates", Checker.no_lost_updates h);
        ("ro-abort-free", Checker.read_only_abort_free h);
        ("quiescent", Walter_kv.Walter.quiescent cl);
      ];
    (* ROCOCO *)
    let sim = Sim.create () in
    let cl = Rococo_kv.Rococo.create sim (chaos_config ~degree:1 ~seed) in
    ignore
      (Chaos.install sim (Rococo_kv.Rococo.network cl) ~kind_of:Rococo_kv.Rococo.message_kind
         plan);
    let r =
      chaos_drive sim ~seed
        ~ops:
          {
            Sss_workload.Driver.begin_txn =
              (fun ~node ~read_only -> Rococo_kv.Rococo.begin_txn cl ~node ~read_only);
            read = Rococo_kv.Rococo.read;
            write = Rococo_kv.Rococo.write;
            commit = Rococo_kv.Rococo.commit;
          }
    in
    committed := !committed + r.Sss_workload.Driver.committed;
    let h = Rococo_kv.Rococo.history cl in
    check ~system:"rococo" ~seed
      [
        ("serializability", Checker.serializability h);
        ("no-lost-updates", Checker.no_lost_updates h);
        ("quiescent", Rococo_kv.Rococo.quiescent cl);
      ]
  done;
  Printf.printf "chaos sweep: 20 seeds x 4 systems, %d committed, %d failures\n%!" !committed
    !failures;
  exit (if !failures > 0 then 1 else 0)

let () =
  let chaos_plan = ref None in
  Arg.parse
    [
      ( "--chaos",
        Arg.String (fun s -> chaos_plan := Some s),
        "PLAN  run the 4-system chaos sweep under a fault plan (DSL; see docs/FAULTS.md)" );
      ( "--observe",
        Arg.Set observe_runs,
        " trace the SSS runs with sss_obs and print a metrics section (docs/OBSERVABILITY.md)" );
    ]
    (fun a -> raise (Arg.Bad ("unexpected argument " ^ a)))
    "stress [--chaos PLAN] [--observe]";
  Option.iter chaos_sweep !chaos_plan;
  let failures = ref 0 in
  let total = ref 0 in
  (* Contention here is measured in keys per client; the paper's evaluation
     never goes below 5000/200 = 25.  Our matrix reaches ratio ~1 — still
     an order of magnitude hotter — and must be violation-free. *)
  let configs =
    [
      (2, 1, 8, 0.5, 4);
      (3, 1, 24, 0.5, 4);
      (4, 2, 24, 0.5, 4);
      (4, 2, 32, 0.2, 6);
      (5, 3, 16, 0.8, 4);
      (6, 2, 48, 0.8, 6);
      (8, 2, 64, 0.5, 4);
    ]
  in
  List.iter
    (fun (nodes, degree, keys, ro, clients) ->
      for seed = 1 to 12 do
        incr total;
        let committed, checks =
          run_one ~nodes ~degree ~keys ~ro ~seed ~duration:0.04 ~clients ()
        in
        List.iter
          (fun (name, res) ->
            match res with
            | Ok () -> ()
            | Error msg ->
                incr failures;
                Printf.printf
                  "FAIL %s: nodes=%d degree=%d keys=%d ro=%.1f seed=%d (%d committed): %s\n%!"
                  name nodes degree keys ro seed committed msg)
          checks
      done;
      Printf.printf "config nodes=%d degree=%d keys=%d ro=%.1f done\n%!" nodes degree keys ro)
    configs;
  (* Torture mode: keys-per-client ratio 0.5, ~50x hotter than anything the
     paper evaluates.  Rare Adya divergences between concurrent writers are
     still reachable here (see DESIGN.md "Known gap"); we report the rate
     rather than assert zero.  Liveness and the per-transaction properties
     must still hold. *)
  let torture_div = ref 0 and torture_runs = ref 0 and torture_committed = ref 0 in
  for seed = 1 to 12 do
    incr torture_runs;
    let committed, checks =
      run_one ~nodes:4 ~degree:2 ~keys:8 ~ro:0.5 ~seed ~duration:0.04 ~clients:4 ()
    in
    torture_committed := !torture_committed + committed;
    List.iter
      (fun (name, res) ->
        match (name, res) with
        | ("external-consistency" | "serializability"), Error _ -> incr torture_div
        | _, Ok () -> ()
        | _, Error msg ->
            incr failures;
            Printf.printf "FAIL torture %s seed=%d: %s\n%!" name seed msg)
      checks
  done;
  Printf.printf
    "torture (keys/client=0.5): %d runs, %d committed, %d divergence reports\n" !torture_runs
    !torture_committed !torture_div;
  (* Paper mode across the same matrix: violations are the documented
     finding (DESIGN.md §8), so they are counted and reported, not
     asserted.  Liveness and per-transaction properties must still hold. *)
  let pm_runs = ref 0 and pm_div = ref 0 and pm_committed = ref 0 in
  List.iter
    (fun (nodes, degree, keys, ro, clients) ->
      for seed = 1 to 6 do
        incr pm_runs;
        let committed, checks =
          run_one ~strict:false ~nodes ~degree ~keys ~ro ~seed ~duration:0.04 ~clients ()
        in
        pm_committed := !pm_committed + committed;
        List.iter
          (fun (name, res) ->
            match (name, res) with
            | ("external-consistency" | "serializability"), Error _ -> incr pm_div
            | _, Ok () -> ()
            | _, Error msg ->
                incr failures;
                Printf.printf "FAIL paper-mode %s nodes=%d keys=%d seed=%d: %s\n%!" name
                  nodes keys seed msg)
          checks
      done)
    configs;
  Printf.printf
    "paper mode: %d runs, %d committed, %d divergence reports (the documented §8 finding)\n"
    !pm_runs !pm_committed !pm_div;
  failures := !failures + baseline_sweep ();
  (match !first_metrics with
  | Some json -> Printf.printf "metrics (first observed SSS run): %s\n" json
  | None -> ());
  Printf.printf "stress: %d runs, %d failures\n" !total !failures;
  exit (if !failures > 0 then 1 else 0)
