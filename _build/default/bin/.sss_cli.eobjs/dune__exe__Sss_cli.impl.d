bin/sss_cli.ml: Arg Checker Cmd Cmdliner Format List Printf Rococo_kv Sim Sss_consistency Sss_experiments Sss_kv Sss_sim Sss_workload String Term Twopc_kv Walter_kv
