bin/stress.ml: Checker Config Kv List Printf Replication Rococo_kv Sim Sss_consistency Sss_data Sss_kv Sss_sim Sss_workload State Twopc_kv Walter_kv
