bin/sss_cli.mli:
