bin/stress.mli:
