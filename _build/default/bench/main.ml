(* Benchmark harness.

   Usage:  dune exec bench/main.exe -- [--scale full|quick|smoke] [targets]

   Targets are the paper's evaluation artefacts: fig3 fig4a fig4b fig5 fig6
   fig7 fig8 abort-rate (see DESIGN.md §3 for the mapping), plus `micro`
   (Bechamel micro-benchmarks of the core data structures).  With no target,
   everything runs.  Absolute throughput is simulator throughput; the shapes
   (orderings, ratios, crossovers) are what EXPERIMENTS.md compares against
   the paper. *)

open Sss_experiments.Experiments

(* ---------- micro benchmarks (Bechamel) ---------- *)

let micro_tests () =
  let open Bechamel in
  let open Sss_data in
  let n = 20 in
  let rng = Sss_sim.Prng.create ~seed:1 in
  let vc1 = Vclock.of_array (Array.init n (fun i -> i * 3)) in
  let vc2 = Vclock.of_array (Array.init n (fun i -> 50 - i)) in
  let zipf = Sss_workload.Zipf.create ~n:5000 ~theta:0.99 in
  let squeue = Squeue.create () in
  for i = 0 to 15 do
    Squeue.insert_read squeue ~txn:{ Ids.node = i mod 4; local = i } ~sid:(i * 7)
  done;
  let nlog = Nlog.create ~nodes:n ~node:0 in
  for i = 1 to 1000 do
    let vc = Vclock.set (Vclock.of_array (Array.init n (fun w -> i - (w mod 3)))) 0 i in
    Nlog.add nlog ~txn:{ Ids.node = 0; local = i } ~vc ~ws:[ i mod 50 ] ~at:(float_of_int i)
  done;
  let has_read = Array.make n false in
  has_read.(3) <- true;
  let bound = Vclock.of_array (Array.make n 500) in
  let store = Mvstore.create ~nodes:n in
  Mvstore.init_key store 1 ~value:"v0";
  for i = 1 to 32 do
    Mvstore.install store 1 ~value:"v"
      ~vc:(Vclock.set (Vclock.zero n) 0 i)
      ~writer:{ Ids.node = 0; local = i }
  done;
  [
    Test.make ~name:"vclock.max" (Staged.stage (fun () -> Vclock.max vc1 vc2));
    Test.make ~name:"vclock.leq" (Staged.stage (fun () -> Vclock.leq vc1 vc2));
    Test.make ~name:"zipf.sample" (Staged.stage (fun () -> Sss_workload.Zipf.sample zipf rng));
    Test.make ~name:"squeue.blocks_writer"
      (Staged.stage (fun () -> Squeue.blocks_writer squeue ~sid:60));
    Test.make ~name:"nlog.visible_max(unconstrained)"
      (Staged.stage (fun () ->
           Nlog.visible_max nlog ~has_read:(Array.make n false) ~bound ~cutoff:max_int));
    Test.make ~name:"nlog.visible_max(constrained)"
      (Staged.stage (fun () -> Nlog.visible_max nlog ~has_read ~bound ~cutoff:max_int));
    Test.make ~name:"mvstore.select"
      (Staged.stage (fun () ->
           Mvstore.select store 1 ~skip:(fun v -> Vclock.get v.Mvstore.vc 0 > 16)));
  ]

let run_micro () =
  let open Bechamel in
  Printf.printf "\n== Micro-benchmarks (core data structures) ==\n%!";
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) () in
  let tests = Test.make_grouped ~name:"micro" ~fmt:"%s %s" (micro_tests ()) in
  let raw = Benchmark.all cfg instances tests in
  let results =
    Analyze.merge ols instances (List.map (fun i -> Analyze.all ols i raw) instances)
  in
  Hashtbl.iter
    (fun _metric tbl ->
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some [ est ] -> Printf.printf "  %-42s %10.1f ns/op\n" name est
          | _ -> Printf.printf "  %-42s (no estimate)\n" name)
        tbl)
    results;
  print_newline ()

(* ---------- dispatch ---------- *)

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let scale = ref Full in
  let targets = ref [] in
  let rec parse = function
    | [] -> ()
    | "--scale" :: s :: rest ->
        (scale :=
           match s with
           | "full" -> Full
           | "quick" -> Quick
           | "smoke" -> Smoke
           | _ -> failwith ("unknown scale " ^ s));
        parse rest
    | t :: rest ->
        targets := t :: !targets;
        parse rest
  in
  parse args;
  let targets =
    match List.rev !targets with
    | [] -> [ "fig3"; "fig4a"; "fig4b"; "fig5"; "fig6"; "fig7"; "fig8"; "abort-rate"; "ablation"; "skewed"; "micro" ]
    | ts -> ts
  in
  let scale = !scale in
  Printf.printf "SSS reproduction benchmarks (scale: %s)\n"
    (match scale with Full -> "full" | Quick -> "quick" | Smoke -> "smoke");
  List.iter
    (fun t ->
      match t with
      | "fig3" -> fig3 scale
      | "fig4a" -> fig4a scale
      | "fig4b" -> fig4b scale
      | "fig5" -> fig5 scale
      | "fig6" -> fig6 scale
      | "fig7" -> fig7 scale
      | "fig8" -> fig8 scale
      | "abort-rate" -> abort_rate scale
      | "ablation" -> ablation scale
      | "skewed" -> skewed scale
      | "all" -> all scale
      | "micro" -> run_micro ()
      | other -> Printf.eprintf "unknown target %s (skipped)\n" other)
    targets
