type kind =
  | Fiber of (unit -> unit)  (* start a new fiber under the effect handler *)
  | Callback of (unit -> unit)  (* resume a parked fiber / plain callback *)

type event = { time : float; prio : int; seq : int; kind : kind }

type t = {
  mutable now : float;
  mutable seq : int;
  mutable processed : int;
  events : event Heap.t;
}

let compare_event a b =
  let c = Float.compare a.time b.time in
  if c <> 0 then c
  else
    let c = Int.compare a.prio b.prio in
    if c <> 0 then c else Int.compare a.seq b.seq

let create () =
  { now = 0.0; seq = 0; processed = 0; events = Heap.create ~cmp:compare_event }

let now t = t.now

let events_processed t = t.processed

let enqueue t ~prio ~delay kind =
  assert (delay >= 0.0);
  let ev = { time = t.now +. delay; prio; seq = t.seq; kind } in
  t.seq <- t.seq + 1;
  Heap.push t.events ev

let schedule t ?(prio = 100) ~delay f = enqueue t ~prio ~delay (Fiber f)

let spawn t ?prio f = schedule t ?prio ~delay:0.0 f

type _ Effect.t += Suspend : ((unit -> unit) -> unit) -> unit Effect.t

let run_fiber f =
  Effect.Deep.match_with f ()
    {
      retc = (fun () -> ());
      exnc = raise;
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Suspend register ->
              Some
                (fun (k : (a, unit) Effect.Deep.continuation) ->
                  register (fun () -> Effect.Deep.continue k ()))
          | _ -> None);
    }

(* [raw_suspend register] parks the fiber and hands [register] the raw
   continuation.  Whoever holds it must arrange for it to run as an event
   body, exactly once.  The public [suspend] below enforces this by routing
   through the event queue. *)
let raw_suspend register = Effect.perform (Suspend register)

let suspend t ?(prio = 100) register =
  raw_suspend (fun resume ->
      register (fun () -> enqueue t ~prio ~delay:0.0 (Callback resume)))

let sleep t delay =
  raw_suspend (fun resume -> enqueue t ~prio:100 ~delay (Callback resume))

let exec t ev =
  t.now <- ev.time;
  t.processed <- t.processed + 1;
  match ev.kind with Fiber f -> run_fiber f | Callback f -> f ()

let run t =
  let rec loop () =
    match Heap.pop t.events with
    | None -> ()
    | Some ev ->
        exec t ev;
        loop ()
  in
  loop ()

let run_until t limit =
  let rec loop () =
    match Heap.peek t.events with
    | None -> ()
    | Some ev when ev.time > limit -> ()
    | Some _ ->
        exec t (Heap.pop_exn t.events);
        loop ()
  in
  loop ();
  if t.now < limit then t.now <- limit

module Cond = struct

  type t = { mutable waiters : (unit -> unit) list }

  let create () = { waiters = [] }

  let wait _sim c = raw_suspend (fun resume -> c.waiters <- resume :: c.waiters)

  let broadcast sim c =
    let ws = List.rev c.waiters in
    c.waiters <- [];
    List.iter (fun resume -> enqueue sim ~prio:100 ~delay:0.0 (Callback resume)) ws

  let await sim c pred =
    let rec loop () =
      if not (pred ()) then begin
        wait sim c;
        loop ()
      end
    in
    loop ()

  let await_timeout sim c ~timeout pred =
    let deadline = now sim +. timeout in
    let rec loop () =
      if pred () then true
      else if now sim >= deadline then false
      else begin
        (* Park on the condition but also arm a timer; whichever fires first
           wins, the other becomes a no-op through the [fired] flag. *)
        let fired = ref false in
        raw_suspend (fun resume ->
            let once () =
              if not !fired then begin
                fired := true;
                resume ()
              end
            in
            c.waiters <- once :: c.waiters;
            enqueue sim ~prio:100 ~delay:(deadline -. now sim) (Callback once));
        loop ()
      end
    in
    loop ()
end

module Ivar = struct

  type 'a t = { mutable value : 'a option; mutable waiters : (unit -> unit) list }

  let create () = { value = None; waiters = [] }

  let is_filled iv = Option.is_some iv.value

  let peek iv = iv.value

  let fill sim iv v =
    match iv.value with
    | Some _ -> invalid_arg "Sim.Ivar.fill: already filled"
    | None ->
        iv.value <- Some v;
        let ws = List.rev iv.waiters in
        iv.waiters <- [];
        List.iter (fun resume -> enqueue sim ~prio:100 ~delay:0.0 (Callback resume)) ws

  let read sim iv =
    ignore sim;
    match iv.value with
    | Some v -> v
    | None ->
        raw_suspend (fun resume -> iv.waiters <- resume :: iv.waiters);
        (match iv.value with
        | Some v -> v
        | None -> assert false)

  let read_timeout sim iv ~timeout =
    match iv.value with
    | Some _ -> iv.value
    | None ->
        let fired = ref false in
        raw_suspend (fun resume ->
            let once () =
              if not !fired then begin
                fired := true;
                resume ()
              end
            in
            iv.waiters <- once :: iv.waiters;
            enqueue sim ~prio:100 ~delay:timeout (Callback once));
        iv.value
end
