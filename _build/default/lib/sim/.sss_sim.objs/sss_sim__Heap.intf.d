lib/sim/heap.mli:
