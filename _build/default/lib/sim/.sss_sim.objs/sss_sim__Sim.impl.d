lib/sim/sim.ml: Effect Float Heap Int List Option
