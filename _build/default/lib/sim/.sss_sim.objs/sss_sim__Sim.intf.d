lib/sim/sim.mli:
