lib/sim/prng.mli:
