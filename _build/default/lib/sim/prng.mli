(** Deterministic pseudo-random number generator (splitmix64).

    All randomness in the simulator flows through values of type {!t} so that
    a run is fully reproducible from its seed.  The generator is splittable:
    {!split} derives an independent stream, which lets each client / node own
    its own stream without cross-talk when the event order changes. *)

type t

val create : seed:int -> t
(** [create ~seed] returns a fresh generator. Equal seeds give equal
    streams. *)

val split : t -> t
(** [split t] derives a new, statistically independent generator and advances
    [t]. *)

val copy : t -> t
(** [copy t] duplicates the current state without advancing [t]. *)

val next_int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. [bound] must be positive. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. [bound] must be positive. *)

val bool : t -> bool
(** Fair coin. *)

val exponential : t -> mean:float -> float
(** Exponentially distributed value with the given mean (> 0). *)

val pick : t -> 'a array -> 'a
(** Uniform choice among the elements of a non-empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)
