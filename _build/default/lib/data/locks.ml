open Sss_sim

type mode = Shared | Exclusive

type state = { mutable ex : Ids.txn option; mutable sh : Ids.txn list }

type t = {
  sim : Sim.t;
  table : (Ids.key, state) Hashtbl.t;
  held : (Ids.txn, Ids.key list ref) Hashtbl.t;
  changed : Sim.Cond.t;
}

let create sim =
  { sim; table = Hashtbl.create 256; held = Hashtbl.create 64; changed = Sim.Cond.create () }

let state t k =
  match Hashtbl.find_opt t.table k with
  | Some s -> s
  | None ->
      let s = { ex = None; sh = [] } in
      Hashtbl.replace t.table k s;
      s

let note_held t txn k =
  let keys =
    match Hashtbl.find_opt t.held txn with
    | Some r -> r
    | None ->
        let r = ref [] in
        Hashtbl.replace t.held txn r;
        r
  in
  if not (List.mem k !keys) then keys := k :: !keys

let same = Ids.equal_txn

let can_take s txn = function
  | Shared -> ( match s.ex with None -> true | Some o -> same o txn)
  | Exclusive -> (
      (match s.ex with None -> true | Some o -> same o txn)
      && List.for_all (fun o -> same o txn) s.sh)

let take t s txn mode k =
  (match mode with
  | Shared -> if not (List.exists (same txn) s.sh) then s.sh <- txn :: s.sh
  | Exclusive -> s.ex <- Some txn);
  note_held t txn k

let acquire t txn mode k ~timeout =
  let s = state t k in
  if can_take s txn mode then begin
    take t s txn mode k;
    true
  end
  else begin
    let granted =
      Sim.Cond.await_timeout t.sim t.changed ~timeout (fun () -> can_take s txn mode)
    in
    if granted then take t s txn mode k;
    granted
  end

let release_key t txn k =
  match Hashtbl.find_opt t.table k with
  | None -> ()
  | Some s ->
      (match s.ex with Some o when same o txn -> s.ex <- None | _ -> ());
      s.sh <- List.filter (fun o -> not (same o txn)) s.sh

let release_txn t txn =
  (match Hashtbl.find_opt t.held txn with
  | None -> ()
  | Some keys ->
      List.iter (release_key t txn) !keys;
      Hashtbl.remove t.held txn);
  Sim.Cond.broadcast t.sim t.changed

let acquire_all t txn ~exclusive ~shared ~timeout =
  let sorted = List.sort_uniq Int.compare in
  let rec go mode = function
    | [] -> true
    | k :: rest -> acquire t txn mode k ~timeout && go mode rest
  in
  let ok = go Exclusive (sorted exclusive) && go Shared (sorted shared) in
  if not ok then release_txn t txn;
  ok

let holds_exclusive t txn k =
  match Hashtbl.find_opt t.table k with
  | Some { ex = Some o; _ } -> same o txn
  | _ -> false

let holds_shared t txn k =
  match Hashtbl.find_opt t.table k with
  | Some s -> List.exists (same txn) s.sh
  | None -> false

let is_free t k =
  match Hashtbl.find_opt t.table k with
  | None -> true
  | Some s -> s.ex = None && s.sh = []

let locked_keys t txn =
  match Hashtbl.find_opt t.held txn with Some r -> !r | None -> []

let holder_count t = Hashtbl.length t.held
