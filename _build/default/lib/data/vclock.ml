type t = int array

let zero n = Array.make n 0

let of_array a = Array.copy a

let to_array t = Array.copy t

let size t = Array.length t

let get t i = t.(i)

let set t i v =
  let c = Array.copy t in
  c.(i) <- v;
  c

let bump t i = set t i (t.(i) + 1)

let max a b =
  assert (Array.length a = Array.length b);
  Array.init (Array.length a) (fun i -> Stdlib.max a.(i) b.(i))

let leq a b =
  assert (Array.length a = Array.length b);
  let rec loop i = i >= Array.length a || (a.(i) <= b.(i) && loop (i + 1)) in
  loop 0

let equal a b = a = b

let lt a b = leq a b && not (equal a b)

let compare = Stdlib.compare

let concurrent a b = (not (leq a b)) && not (leq b a)

let to_string t =
  "["
  ^ String.concat "," (Array.to_list (Array.map string_of_int t))
  ^ "]"

let pp fmt t = Format.pp_print_string fmt (to_string t)
