(** Immutable vector clocks.

    SSS associates a vector clock of size [n] (number of nodes) with every
    transaction, node, and committed version.  All operations are
    non-destructive; the arrays backing clocks are never shared mutably. *)

type t

val zero : int -> t
(** [zero n] is the all-zero clock of size [n]. *)

val of_array : int array -> t
(** Copies its argument. *)

val to_array : t -> int array
(** Returns a fresh copy. *)

val size : t -> int

val get : t -> int -> int

val set : t -> int -> int -> t
(** [set vc i v] is a copy of [vc] whose [i]-th entry is [v]. *)

val bump : t -> int -> t
(** [bump vc i] increments entry [i]. *)

val max : t -> t -> t
(** Entry-wise maximum. Sizes must agree. *)

val leq : t -> t -> bool
(** [leq a b] iff every entry of [a] is <= the matching entry of [b]. *)

val lt : t -> t -> bool
(** [lt a b] iff [leq a b] and they differ somewhere. *)

val equal : t -> t -> bool

val compare : t -> t -> int
(** Total order (lexicographic) used only for deterministic tie-breaking;
    not the causal partial order. *)

val concurrent : t -> t -> bool
(** Neither [leq a b] nor [leq b a]. *)

val to_string : t -> string

val pp : Format.formatter -> t -> unit
