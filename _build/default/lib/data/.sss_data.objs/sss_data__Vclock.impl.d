lib/data/vclock.ml: Array Format Stdlib String
