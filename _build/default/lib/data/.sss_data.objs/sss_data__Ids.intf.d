lib/data/ids.mli: Format
