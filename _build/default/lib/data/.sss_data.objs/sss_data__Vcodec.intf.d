lib/data/vcodec.mli: Vclock
