lib/data/squeue.ml: Bool Format Ids Int List
