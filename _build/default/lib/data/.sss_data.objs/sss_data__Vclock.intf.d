lib/data/vclock.mli: Format
