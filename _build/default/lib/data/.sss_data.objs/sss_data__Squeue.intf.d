lib/data/squeue.mli: Format Ids
