lib/data/mvstore.mli: Ids Vclock
