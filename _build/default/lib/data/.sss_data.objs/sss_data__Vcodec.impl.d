lib/data/vcodec.ml: Array Buffer Char String Vclock
