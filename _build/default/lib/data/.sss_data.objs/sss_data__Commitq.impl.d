lib/data/commitq.ml: Ids Int List Vclock
