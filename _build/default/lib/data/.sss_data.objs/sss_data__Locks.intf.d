lib/data/locks.mli: Ids Sss_sim
