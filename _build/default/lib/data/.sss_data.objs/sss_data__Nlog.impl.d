lib/data/nlog.ml: Array Ids List Stdlib Vclock
