lib/data/commitq.mli: Ids Vclock
