lib/data/replication.ml: Array Ids Int64 List
