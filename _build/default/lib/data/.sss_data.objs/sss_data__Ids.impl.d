lib/data/ids.ml: Format Int Printf
