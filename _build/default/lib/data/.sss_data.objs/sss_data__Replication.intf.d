lib/data/replication.mli: Ids
