lib/data/nlog.mli: Ids Vclock
