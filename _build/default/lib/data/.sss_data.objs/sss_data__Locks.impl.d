lib/data/locks.ml: Hashtbl Ids Int List Sim Sss_sim
