lib/data/mvstore.ml: Hashtbl Ids List Stdlib Vclock
