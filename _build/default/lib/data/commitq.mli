(** Per-node commit queue (§III-A, "Commit repositories").

    Update transactions enter the queue in their 2PC prepare phase with a
    provisional vector clock and status [Pending]; the Decide message
    upgrades them to [Ready] with their final commit vector clock, which may
    reposition them.  Transactions leave the queue — and their writes become
    visible — only from the head, and only when [Ready].  Ordering is by the
    queue's node entry of the vector clock, with the transaction id as a
    deterministic tie-break.

    A [Ready] head is safe to commit because a [Pending] transaction's final
    clock entry can only grow (the coordinator takes entry-wise maxima), so
    nothing still pending can end up ordered before a ready head. *)

type status = Pending | Ready

type entry = { txn : Ids.txn; vc : Vclock.t; status : status }

type t

val create : node:int -> t
(** [create ~node] orders entries by [Vclock.get vc node]. *)

val put : t -> txn:Ids.txn -> vc:Vclock.t -> unit
(** Insert as [Pending]. @raise Invalid_argument if the txn is present. *)

val update : t -> txn:Ids.txn -> vc:Vclock.t -> unit
(** Set the final clock, mark [Ready], and reposition.  No-op if the
    transaction is not in the queue (it may already have been removed by an
    abort racing the decide). *)

val remove : t -> Ids.txn -> unit
(** Drop the transaction (abort path, or after its writes are applied). *)

val head : t -> entry option

val mem : t -> Ids.txn -> bool

val find : t -> Ids.txn -> entry option

val length : t -> int

val to_list : t -> entry list
(** Entries in queue order (for tests). *)

val exists_at_or_below : t -> bound:int -> bool
(** Is any queued transaction's current clock entry (at this queue's node)
    <= [bound]?  A pending transaction's final entry can only grow, so when
    this is false no queued transaction can end up ordered at or before
    [bound].  Used by the read protocol to wait until every commit covered
    by a visibility bound has been applied. *)
