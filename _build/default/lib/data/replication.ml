type t = {
  nodes : int;
  degree : int;
  total_keys : int;
  base : int array;  (* key -> first replica *)
  at : Ids.key array array;  (* node -> keys stored *)
}

(* splitmix64-style finalizer: spreads consecutive key ids uniformly. *)
let hash_key k =
  let z = Int64.add (Int64.of_int k) 0x9E3779B97F4A7C15L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.to_int (Int64.shift_right_logical (Int64.logxor z (Int64.shift_right_logical z 31)) 8)

let create ~nodes ~degree ~total_keys =
  if degree < 1 || degree > nodes then
    invalid_arg "Replication.create: degree must be within 1 .. nodes";
  let base = Array.init total_keys (fun k -> hash_key k mod nodes) in
  let buckets = Array.make nodes [] in
  for k = total_keys - 1 downto 0 do
    for j = 0 to degree - 1 do
      let n = (base.(k) + j) mod nodes in
      buckets.(n) <- k :: buckets.(n)
    done
  done;
  { nodes; degree; total_keys; base; at = Array.map Array.of_list buckets }

let nodes t = t.nodes

let degree t = t.degree

let total_keys t = t.total_keys

let replicas t k = List.init t.degree (fun j -> (t.base.(k) + j) mod t.nodes)

let is_replica t n k =
  let d = (n - t.base.(k) + t.nodes) mod t.nodes in
  d < t.degree

let keys_at t n = t.at.(n)
