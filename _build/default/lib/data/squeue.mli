(** Snapshot-queues — the paper's core new data structure (§III-A).

    Each key has one snapshot-queue holding (a) the read-only transactions
    that read the key and (b) the update transactions that overwrote it
    while a read-only transaction was reading it (i.e. writers parked in
    their Pre-Commit phase).  Entries carry an {e insertion snapshot}: the
    value of the transaction's vector clock at this node's position when
    the entry was added.  Conflicting transactions with a smaller insertion
    snapshot serialize first.

    Reader entries come in two flavours:
    - {e direct}: the transaction itself read this key here (Alg. 6);
    - {e propagated}: a transitive anti-dependency installed during an
      update transaction's Pre-Commit (Alg. 3 lines 4-6).  A propagated
      entry's [sid] was minted on the node where the read happened, so it is
      not comparable with this node's snapshots; writers treat every
      propagated entry as blocking (the reader is known to serialize before
      the writer chain that carried it here).

    Following the implementation note in §V, the queue is split in two —
    one sequence for readers and one for writers — so read-side scans do
    not traverse writer entries and vice versa.  Both sequences are kept
    ordered by [(sid, txn)]. *)

type entry = { txn : Ids.txn; sid : int; propagated : bool }

type t

val create : unit -> t

val insert_read : t -> txn:Ids.txn -> sid:int -> unit
(** Add a direct read-only entry.  Re-inserting the same [(txn, sid)] pair
    is a no-op (a transaction may legitimately touch the same key through
    several replicas or repeated reads). *)

val insert_propagated : t -> txn:Ids.txn -> sid:int -> unit
(** Add a propagated (transitive anti-dependency) reader entry. *)

val insert_write : t -> txn:Ids.txn -> sid:int -> unit
(** Add an update-transaction entry (Pre-Commit start). Idempotent like
    {!insert_read}. *)

val remove : t -> Ids.txn -> bool
(** Drop every entry of the given transaction; returns whether anything was
    removed. *)

val mem : t -> Ids.txn -> bool

val readers : t -> entry list
(** All read-only entries (direct and propagated) ordered by insertion
    snapshot — what an update transaction's read collects into its
    [PropagatedSet] (Alg. 6 line 25). *)

val writers : t -> entry list
(** Update entries ordered by insertion snapshot (used to build the
    [ExcludedSet], Alg. 6 line 7). *)

val blocks_writer : t -> sid:int -> bool
(** Pre-Commit exit condition (Alg. 4): [true] while there is a direct
    reader with insertion snapshot strictly below [sid], or any propagated
    reader at all (a propagated entry's snapshot was minted on another
    node, so it is treated conservatively as blocking). *)

val exists_read_below : t -> sid:int -> bool
(** Is there a {e direct} read-only entry with insertion snapshot strictly
    below [sid]? *)

val min_read_sid : t -> int option
(** Smallest reader [sid] of either flavour. *)

val is_empty : t -> bool

val length : t -> int

val pp : Format.formatter -> t -> unit
