(** Identifiers shared across the store: nodes, keys, transactions. *)

type node = int
(** Nodes are numbered [0 .. n-1]. *)

type key = int
(** Keys are numbered [0 .. total_keys-1], as in the YCSB port of the
    paper's evaluation. *)

(** Globally unique transaction identifier: originating node plus a
    node-local sequence number. *)
type txn = { node : node; local : int }

val genesis : txn
(** Pseudo-transaction that wrote the initial version of every key. *)

val compare_txn : txn -> txn -> int

val equal_txn : txn -> txn -> bool

val txn_to_string : txn -> string

val pp_txn : Format.formatter -> txn -> unit

(** Mint node-local transaction identifiers. *)
module Gen : sig
  type t

  val create : node -> t

  val next : t -> txn
end
