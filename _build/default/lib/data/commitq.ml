type status = Pending | Ready

type entry = { txn : Ids.txn; vc : Vclock.t; status : status }

type t = { node : int; mutable entries : entry list }

let create ~node = { node; entries = [] }

let order t a b =
  let c = Int.compare (Vclock.get a.vc t.node) (Vclock.get b.vc t.node) in
  if c <> 0 then c else Ids.compare_txn a.txn b.txn

let insert t e =
  let rec go = function
    | [] -> [ e ]
    | x :: rest as all -> if order t e x < 0 then e :: all else x :: go rest
  in
  t.entries <- go t.entries

let mem t txn = List.exists (fun e -> Ids.equal_txn e.txn txn) t.entries

let put t ~txn ~vc =
  if mem t txn then invalid_arg "Commitq.put: duplicate transaction";
  insert t { txn; vc; status = Pending }

let remove t txn =
  t.entries <- List.filter (fun e -> not (Ids.equal_txn e.txn txn)) t.entries

let update t ~txn ~vc =
  if mem t txn then begin
    remove t txn;
    insert t { txn; vc; status = Ready }
  end

let head t = match t.entries with [] -> None | e :: _ -> Some e

let find t txn = List.find_opt (fun e -> Ids.equal_txn e.txn txn) t.entries

let length t = List.length t.entries

let to_list t = t.entries

let exists_at_or_below t ~bound =
  List.exists (fun e -> Vclock.get e.vc t.node <= bound) t.entries
