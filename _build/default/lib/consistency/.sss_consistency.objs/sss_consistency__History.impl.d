lib/consistency/history.ml: Format Ids List Sss_data
