lib/consistency/checker.mli: History Ids Sss_data
