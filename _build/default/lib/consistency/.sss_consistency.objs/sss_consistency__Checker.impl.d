lib/consistency/checker.ml: Array Buffer Hashtbl History Ids Int List Map Option Printf Sss_data Stdlib String
