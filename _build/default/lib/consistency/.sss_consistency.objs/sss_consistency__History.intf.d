lib/consistency/history.mli: Format Ids Sss_data
