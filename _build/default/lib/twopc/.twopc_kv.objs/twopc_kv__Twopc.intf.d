lib/twopc/twopc.mli: Ids Sss_consistency Sss_data Sss_kv Sss_sim
