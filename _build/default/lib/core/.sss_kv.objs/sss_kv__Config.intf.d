lib/core/config.mli: Sss_net
