lib/core/message.ml: Array Ids List Sss_data String Vclock Vcodec
