lib/core/kv.mli: Client Config Ids Sss_consistency Sss_data Sss_net Sss_sim State
