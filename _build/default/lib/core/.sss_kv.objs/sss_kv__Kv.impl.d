lib/core/kv.ml: Array Client Commitq Hashtbl List Locks Printf Server Squeue Sss_data Sss_net State String
