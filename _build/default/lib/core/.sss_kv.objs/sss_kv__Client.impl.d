lib/core/client.ml: Array Config Hashtbl History Ids Int List Message Nlog Printf Replication Sim Sss_consistency Sss_data Sss_net Sss_sim State Stdlib Vclock
