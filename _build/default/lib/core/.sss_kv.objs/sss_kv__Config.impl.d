lib/core/config.ml: Sss_net
