lib/core/server.ml: Array Commitq Config Float Hashtbl History Ids List Locks Message Mvstore Nlog Replication Sim Squeue Sss_consistency Sss_data Sss_net Sss_sim State Stdlib Vclock
