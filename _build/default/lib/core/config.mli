(** SSS deployment parameters. *)

type t = {
  nodes : int;  (** cluster size *)
  replication_degree : int;  (** replicas per key (1 = no replication) *)
  total_keys : int;  (** size of the key space, pre-populated at start *)
  network : Sss_net.Network.config;
  vote_timeout : float;
      (** how long a 2PC coordinator waits for votes before aborting
          (the paper uses 1 ms on a 20 µs-latency network) *)
  lock_timeout : float;  (** prepare-phase lock acquisition timeout *)
  ack_timeout : float;
      (** safety net on the external-commit Ack wait; exceeding it is
          treated as a protocol bug and raises *)
  starvation_threshold : float;
      (** a writer parked in a snapshot-queue longer than this triggers
          admission control on new read-only reads of its keys (§III-E) *)
  backoff_initial : float;  (** first admission-control delay *)
  backoff_max : float;  (** exponential back-off cap *)
  record_history : bool;  (** record events for the consistency checker *)
  seed : int;  (** PRNG seed for network jitter *)
  strict_order : bool;
      (** order external commits per node by commit stamp (see DESIGN.md
          "hardening"); disable to measure the paper's literal per-key
          release *)
  gc_horizon : float;
      (** node logs are pruned and version chains truncated for state older
          than this; must exceed the longest transaction lifetime *)
  chain_keep : int;  (** minimum versions kept per key under GC *)
  priority_network : bool;
      (** give protocol-completing messages (Remove, Decide, ...) priority
          over new work in node ingress queues, as the paper's optimized
          network component does (§V); disable for the ablation *)
  compress_metadata : bool;
      (** account message sizes with varint-compressed vector clocks
          (§III-A); affects only the byte telemetry, not behaviour *)
}

val default : t
(** 4 nodes, replication degree 2, 64 keys, paper-like timeouts; unit tests
    override fields as needed. *)
