type t = { n : int; cumulative : float array }

let create ~n ~theta =
  if n <= 0 then invalid_arg "Zipf.create: n must be positive";
  if theta < 0.0 then invalid_arg "Zipf.create: theta must be non-negative";
  let weights = Array.init n (fun i -> 1.0 /. Float.pow (float_of_int (i + 1)) theta) in
  let total = Array.fold_left ( +. ) 0.0 weights in
  let cumulative = Array.make n 0.0 in
  let acc = ref 0.0 in
  for i = 0 to n - 1 do
    acc := !acc +. (weights.(i) /. total);
    cumulative.(i) <- !acc
  done;
  cumulative.(n - 1) <- 1.0;
  { n; cumulative }

let sample t rng =
  let u = Sss_sim.Prng.float rng 1.0 in
  (* First index whose cumulative probability exceeds u. *)
  let rec search lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if t.cumulative.(mid) > u then search lo mid else search (mid + 1) hi
  in
  search 0 (t.n - 1)

let probability t i =
  if i = 0 then t.cumulative.(0) else t.cumulative.(i) -. t.cumulative.(i - 1)
