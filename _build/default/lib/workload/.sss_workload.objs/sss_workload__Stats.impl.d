lib/workload/stats.ml: Array Float Stdlib
