lib/workload/zipf.mli: Sss_sim
