lib/workload/stats.mli:
