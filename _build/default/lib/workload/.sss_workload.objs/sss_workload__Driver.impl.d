lib/workload/driver.ml: Array Ids List Option Printf Prng Sim Sss_data Sss_sim Stats Zipf
