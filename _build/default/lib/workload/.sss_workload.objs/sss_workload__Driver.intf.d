lib/workload/driver.mli: Ids Sss_data Sss_sim Stats
