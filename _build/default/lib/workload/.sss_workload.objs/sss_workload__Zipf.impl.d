lib/workload/zipf.ml: Array Float Sss_sim
