(** Closed-loop YCSB-style workload driver (§V of the paper).

    Clients are colocated with nodes; each issues a new transaction only
    when the previous one returned (closed loop).  Update transactions read
    then overwrite [update_ops] keys; read-only transactions read [ro_ops]
    keys.  Keys are drawn uniformly, zipfian, or from the local node's
    replicas with probability [locality] (Fig. 7's 50%-locality
    configuration).

    The driver is protocol-agnostic: any store exposing the {!type:ops}
    quadruple can be measured, which is how SSS, Walter, ROCOCO and the 2PC
    baseline all run under identical load. *)

open Sss_data

type 'h ops = {
  begin_txn : node:Ids.node -> read_only:bool -> 'h;
  read : 'h -> Ids.key -> string;
  write : 'h -> Ids.key -> string -> unit;
  commit : 'h -> bool;
}

type key_dist = Uniform | Zipfian of float

type profile = {
  read_only_ratio : float;
  update_ops : int;  (** keys read and written by an update transaction *)
  ro_ops : int;  (** keys read by a read-only transaction *)
  locality : float;  (** probability of drawing a node-local key *)
}

val paper_profile : read_only_ratio:float -> profile
(** The paper's default: update transactions touch 2 keys, read-only
    transactions read 2 keys, no locality. *)

type load = {
  clients_per_node : int;
  warmup : float;  (** seconds of virtual time before measurement starts *)
  duration : float;  (** measured virtual-time window *)
  seed : int;
  dist : key_dist;
  retry_aborts : bool;  (** re-run an aborted transaction on the same keys *)
}

val default_load : load
(** 10 clients/node (the paper's setting), 50 ms warmup, 250 ms measured,
    uniform keys, no retry. *)

type result = {
  committed : int;  (** committed in the measured window *)
  committed_ro : int;
  aborted : int;  (** aborts in the measured window *)
  throughput : float;  (** committed transactions per second *)
  abort_rate : float;  (** aborted / (committed + aborted) *)
  latency : Stats.t;  (** all committed transactions *)
  ro_latency : Stats.t;
  update_latency : Stats.t;
}

val run :
  Sss_sim.Sim.t ->
  nodes:int ->
  total_keys:int ->
  local_keys:(Ids.node -> Ids.key array) ->
  profile:profile ->
  load:load ->
  ops:'h ops ->
  result
(** Spawns the clients, runs the simulator to completion (clients stop
    issuing after [warmup + duration]; in-flight work drains), and returns
    the measured-window statistics. *)
