(** Zipfian key popularity, as used by YCSB.

    Item [0] is the most popular; probability of item [i] is proportional to
    [1 / (i+1)^theta].  Sampling is O(log n) over a precomputed cumulative
    table. *)

type t

val create : n:int -> theta:float -> t
(** @raise Invalid_argument if [n <= 0] or [theta < 0]. *)

val sample : t -> Sss_sim.Prng.t -> int
(** Draw an item in [\[0, n)]. *)

val probability : t -> int -> float
(** Exact probability of an item (tests). *)
