type t = {
  mutable samples : float array;
  mutable len : int;
  mutable sorted : bool;
}

let create () = { samples = Array.make 1024 0.0; len = 0; sorted = true }

let add t x =
  if t.len = Array.length t.samples then begin
    let bigger = Array.make (2 * t.len) 0.0 in
    Array.blit t.samples 0 bigger 0 t.len;
    t.samples <- bigger
  end;
  t.samples.(t.len) <- x;
  t.len <- t.len + 1;
  t.sorted <- false

let count t = t.len

let mean t =
  if t.len = 0 then 0.0
  else begin
    let sum = ref 0.0 in
    for i = 0 to t.len - 1 do
      sum := !sum +. t.samples.(i)
    done;
    !sum /. float_of_int t.len
  end

let ensure_sorted t =
  if not t.sorted then begin
    let live = Array.sub t.samples 0 t.len in
    Array.sort Float.compare live;
    Array.blit live 0 t.samples 0 t.len;
    t.sorted <- true
  end

let percentile t p =
  if p < 0.0 || p > 1.0 then invalid_arg "Stats.percentile: fraction outside [0,1]";
  if t.len = 0 then 0.0
  else begin
    ensure_sorted t;
    let rank = int_of_float (ceil (p *. float_of_int t.len)) - 1 in
    t.samples.(Stdlib.max 0 (Stdlib.min (t.len - 1) rank))
  end

let min t = percentile t 0.0

let max t = percentile t 1.0

let clear t =
  t.len <- 0;
  t.sorted <- true
