lib/rococo/rococo.mli: Ids Replication Sss_consistency Sss_data Sss_kv Sss_sim
