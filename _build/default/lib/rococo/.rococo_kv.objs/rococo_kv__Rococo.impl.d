lib/rococo/rococo.ml: Array Hashtbl History Ids Int List Network Printf Prng Replication Rpc Sim Sss_consistency Sss_data Sss_kv Sss_net Sss_sim Stdlib String
