lib/experiments/experiments.mli:
