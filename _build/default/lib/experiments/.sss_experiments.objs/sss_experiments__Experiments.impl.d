lib/experiments/experiments.ml: List Printf Replication Rococo_kv Sim Sss_data Sss_kv Sss_net Sss_sim Sss_workload Stdlib Twopc_kv Walter_kv
