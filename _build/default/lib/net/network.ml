open Sss_sim

type config = {
  latency_base : float;
  latency_jitter : float;
  self_latency : float;
  cpu_per_message : float;
}

let default_config =
  { latency_base = 20e-6; latency_jitter = 2e-6; self_latency = 1e-6; cpu_per_message = 2e-6 }

type 'msg ingress = { prio : int; seq : int; src : Sss_data.Ids.node; msg : 'msg }

type 'msg node_state = {
  mutable handler : (src:Sss_data.Ids.node -> 'msg -> unit) option;
  queue : 'msg ingress Heap.t;
  mutable serving : bool;
  mutable crashed : bool;
}

type stats = { sent : int; delivered : int; dropped : int; bytes : int }

type 'msg t = {
  sim : Sim.t;
  rng : Prng.t;
  config : config;
  size_of : 'msg -> int;
  nodes : 'msg node_state array;
  mutable severed : (Sss_data.Ids.node * Sss_data.Ids.node) list;
  mutable drop_probability : float;
  mutable seq : int;
  mutable sent : int;
  mutable delivered : int;
  mutable dropped : int;
  mutable bytes : int;
}

let compare_ingress a b =
  let c = Int.compare a.prio b.prio in
  if c <> 0 then c else Int.compare a.seq b.seq

let create ?(size_of = fun _ -> 0) sim rng ~nodes ~config =
  let mk _ =
    { handler = None; queue = Heap.create ~cmp:compare_ingress; serving = false; crashed = false }
  in
  {
    sim;
    rng;
    config;
    size_of;
    nodes = Array.init nodes mk;
    severed = [];
    drop_probability = 0.0;
    seq = 0;
    sent = 0;
    delivered = 0;
    dropped = 0;
    bytes = 0;
  }

let nodes t = Array.length t.nodes

let set_handler t n f = t.nodes.(n).handler <- Some f

(* Drain a node's ingress queue: each message occupies the CPU for the
   configured service time, then its handler runs in its own fiber so that a
   blocking handler never stalls the queue. *)
let rec serve t n =
  let st = t.nodes.(n) in
  match Heap.pop st.queue with
  | None -> st.serving <- false
  | Some ing ->
      Sim.sleep t.sim t.config.cpu_per_message;
      if not st.crashed then begin
        t.delivered <- t.delivered + 1;
        match st.handler with
        | Some f -> Sim.spawn t.sim (fun () -> f ~src:ing.src ing.msg)
        | None -> ()
      end;
      serve t n

let deliver t ~prio ~src ~dst msg =
  let st = t.nodes.(dst) in
  if st.crashed then t.dropped <- t.dropped + 1
  else begin
    t.seq <- t.seq + 1;
    Heap.push st.queue { prio; seq = t.seq; src; msg };
    if not st.serving then begin
      st.serving <- true;
      Sim.spawn t.sim (fun () -> serve t dst)
    end
  end

let link_severed t a b =
  List.exists (fun (x, y) -> (x = a && y = b) || (x = b && y = a)) t.severed

let send t ?(prio = 100) ~src ~dst msg =
  t.sent <- t.sent + 1;
  t.bytes <- t.bytes + t.size_of msg;
  let lost =
    t.nodes.(src).crashed
    || link_severed t src dst
    || (t.drop_probability > 0.0 && Prng.float t.rng 1.0 < t.drop_probability)
  in
  if lost then t.dropped <- t.dropped + 1
  else begin
    let latency =
      if src = dst then t.config.self_latency
      else
        t.config.latency_base
        +. (if t.config.latency_jitter > 0.0 then
              Prng.exponential t.rng ~mean:t.config.latency_jitter
            else 0.0)
    in
    Sim.schedule t.sim ~delay:latency (fun () -> deliver t ~prio ~src ~dst msg)
  end

let send_many t ?prio ~src ~dst msg = List.iter (fun d -> send t ?prio ~src ~dst:d msg) dst

let crash t n = t.nodes.(n).crashed <- true

let recover t n = t.nodes.(n).crashed <- false

let is_crashed t n = t.nodes.(n).crashed

let sever t a b = if not (link_severed t a b) then t.severed <- (a, b) :: t.severed

let heal t a b =
  t.severed <- List.filter (fun (x, y) -> not ((x = a && y = b) || (x = b && y = a))) t.severed

let set_drop_probability t p =
  assert (p >= 0.0 && p <= 1.0);
  t.drop_probability <- p

let stats t = { sent = t.sent; delivered = t.delivered; dropped = t.dropped; bytes = t.bytes }
