lib/net/rpc.mli: Sss_sim
