lib/net/rpc.ml: Hashtbl List Sim Sss_sim
