lib/net/network.mli: Sss_data Sss_sim
