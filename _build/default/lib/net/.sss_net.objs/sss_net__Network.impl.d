lib/net/network.ml: Array Heap Int List Prng Sim Sss_data Sss_sim
