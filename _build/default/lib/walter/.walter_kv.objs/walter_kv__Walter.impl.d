lib/walter/walter.ml: Array Hashtbl History Ids Int List Locks Network Option Printf Prng Replication Rpc Sim Sss_consistency Sss_data Sss_kv Sss_net Sss_sim String Vclock
