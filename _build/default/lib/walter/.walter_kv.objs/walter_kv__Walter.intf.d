lib/walter/walter.mli: Ids Replication Sss_consistency Sss_data Sss_kv Sss_sim
