(* The paper's motivating scenario (§I): an online document-sharing service.

   Client C1 (on node 1) edits document D and synchronizes it.  As soon as
   C1's synchronization RETURNS, C1 tells C2 (on node 2, through a channel
   outside the system) that the edits are permanent.  C2 then synchronizes
   and expects to see C1's modification — which only an externally
   consistent store guarantees.

   We run the same script against SSS and against Walter (PSI): SSS always
   shows C2 the committed edit; Walter can return the stale document,
   because its snapshots only reflect what has propagated to C2's site.

   Run with:  dune exec examples/document_sync.exe *)

open Sss_sim

let document = 7

(* C1 commits an edit; the moment its commit returns we start C2's read on
   another node (modelling an instant out-of-band "it's saved!" message). *)
let scenario ~name ~(commit_edit : unit -> bool) ~(read_doc : unit -> string) sim =
  let observed = ref "" in
  Sim.spawn sim (fun () ->
      let ok = commit_edit () in
      Printf.printf "[%s] C1's sync returned (committed=%b) at t=%.6fs\n" name ok (Sim.now sim);
      (* C1 -> C2, outside the system: C2 reads immediately. *)
      observed := read_doc ();
      Printf.printf "[%s] C2 read %S at t=%.6fs\n" name !observed (Sim.now sim));
  Sim.run sim;
  !observed

let run_sss () =
  let sim = Sim.create () in
  let config =
    { Sss_kv.Config.default with nodes = 4; replication_degree = 2; total_keys = 16 }
  in
  let cluster = Sss_kv.Kv.create sim config in
  scenario ~name:"SSS" sim
    ~commit_edit:(fun () ->
      let t = Sss_kv.Kv.begin_txn cluster ~node:1 ~read_only:false in
      ignore (Sss_kv.Kv.read t document);
      Sss_kv.Kv.write t document "v2 (edited by C1)";
      Sss_kv.Kv.commit t)
    ~read_doc:(fun () ->
      let t = Sss_kv.Kv.begin_txn cluster ~node:2 ~read_only:true in
      let v = Sss_kv.Kv.read t document in
      ignore (Sss_kv.Kv.commit t);
      v)

let run_walter () =
  let sim = Sim.create () in
  let config =
    { Sss_kv.Config.default with nodes = 4; replication_degree = 2; total_keys = 16 }
  in
  let cluster = Walter_kv.Walter.create sim config in
  scenario ~name:"Walter" sim
    ~commit_edit:(fun () ->
      let t = Walter_kv.Walter.begin_txn cluster ~node:1 ~read_only:false in
      ignore (Walter_kv.Walter.read t document);
      Walter_kv.Walter.write t document "v2 (edited by C1)";
      Walter_kv.Walter.commit t)
    ~read_doc:(fun () ->
      let t = Walter_kv.Walter.begin_txn cluster ~node:2 ~read_only:true in
      let v = Walter_kv.Walter.read t document in
      ignore (Walter_kv.Walter.commit t);
      v)

let () =
  let sss = run_sss () in
  let walter = run_walter () in
  print_newline ();
  Printf.printf "SSS    : C2 observed %S -> %s\n" sss
    (if sss = "v2 (edited by C1)" then "external consistency held" else "STALE!");
  Printf.printf "Walter : C2 observed %S -> %s\n" walter
    (if walter = "v2 (edited by C1)" then "fresh this time (propagation won the race)"
     else "stale read: PSI does not give external consistency")
