(* Bank transfers with a concurrent auditor.

   Accounts hold integer balances (encoded as strings).  Transfer
   transactions move money between random accounts; an auditor repeatedly
   runs a read-only transaction summing every balance.  Because SSS
   read-only transactions see a consistent snapshot, every audit observes
   exactly the invariant total — while transfers race underneath.

   Run with:  dune exec examples/bank.exe *)

open Sss_sim
open Sss_kv

let accounts = 20
let initial_balance = 100
let total = accounts * initial_balance
let audits = 25
let tellers = 5

let () =
  let sim = Sim.create () in
  let config =
    { Config.default with nodes = 4; replication_degree = 2; total_keys = accounts }
  in
  let cluster = Kv.create sim config in

  (* fund the accounts *)
  let funded = ref false in
  Sim.spawn sim (fun () ->
      let t = Kv.begin_txn cluster ~node:0 ~read_only:false in
      for a = 0 to accounts - 1 do
        Kv.write t a (string_of_int initial_balance)
      done;
      ignore (Kv.commit t);
      funded := true);
  Sim.run sim;
  assert !funded;

  let stop = ref false in
  let transfers = ref 0 in
  let failed_audits = ref 0 in
  let done_audits = ref 0 in

  (* tellers: transfer a random amount between two random accounts *)
  for i = 1 to tellers do
    Sim.spawn sim (fun () ->
        let rng = Prng.create ~seed:i in
        while not !stop do
          let from_a = Prng.int rng accounts in
          let to_a = (from_a + 1 + Prng.int rng (accounts - 1)) mod accounts in
          let amount = 1 + Prng.int rng 10 in
          let t = Kv.begin_txn cluster ~node:(i mod 4) ~read_only:false in
          let b1 = int_of_string (Kv.read t from_a) in
          let b2 = int_of_string (Kv.read t to_a) in
          Kv.write t from_a (string_of_int (b1 - amount));
          Kv.write t to_a (string_of_int (b2 + amount));
          if Kv.commit t then incr transfers;
          Sim.sleep sim 30e-6
        done)
  done;

  (* the auditor: one read-only transaction summing all balances *)
  Sim.spawn sim (fun () ->
      for _ = 1 to audits do
        let t = Kv.begin_txn cluster ~node:3 ~read_only:true in
        let sum = ref 0 in
        for a = 0 to accounts - 1 do
          sum := !sum + int_of_string (Kv.read t a)
        done;
        ignore (Kv.commit t);
        incr done_audits;
        if !sum <> total then begin
          incr failed_audits;
          Printf.printf "audit %d saw TOTAL %d (expected %d)!\n" !done_audits !sum total
        end
      done;
      stop := true);

  Sim.run sim;
  Printf.printf "%d transfers committed; %d/%d audits saw exactly %d\n" !transfers
    (!done_audits - !failed_audits)
    !done_audits total;
  (match Sss_consistency.Checker.external_consistency (Kv.history cluster) with
  | Ok () -> print_endline "history externally consistent"
  | Error m -> Printf.printf "VIOLATION: %s\n" m);
  if !failed_audits = 0 then print_endline "invariant held in every audit"
  else Printf.printf "%d audits saw a broken invariant!\n" !failed_audits
