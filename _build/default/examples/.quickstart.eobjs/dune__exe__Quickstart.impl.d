examples/quickstart.ml: Config Kv Printf Sim Sss_consistency Sss_kv Sss_sim
