examples/checkout.ml: Config Kv Printf Prng Sim Sss_consistency Sss_kv Sss_sim
