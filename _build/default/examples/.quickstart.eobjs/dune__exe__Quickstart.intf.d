examples/quickstart.mli:
