examples/analytics.ml: Option Printf Prng Sim Sss_kv Sss_sim String Twopc_kv
