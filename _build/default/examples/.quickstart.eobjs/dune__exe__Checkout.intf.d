examples/checkout.mli:
