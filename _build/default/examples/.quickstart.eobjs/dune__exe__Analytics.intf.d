examples/analytics.mli:
