examples/bank.mli:
