examples/document_sync.ml: Printf Sim Sss_kv Sss_sim Walter_kv
