examples/document_sync.mli:
