(* A store checkout: reserve stock across several warehouses atomically,
   using the [with_txn] retry helper for validation conflicts.

   Items are stock counters spread over the cluster; each checkout decreases
   the stock of 2 random items if both are positive.  Competing checkouts
   conflict on hot items and occasionally abort; [with_txn] re-runs them on
   a fresh snapshot.  An auditor verifies no item was ever oversold.

   Run with:  dune exec examples/checkout.exe *)

open Sss_sim
open Sss_kv

let items = 12
let initial_stock = 6
let shoppers = 8
let attempts_per_shopper = 10

let () =
  let sim = Sim.create () in
  let cluster =
    Kv.create sim
      { Config.default with nodes = 4; replication_degree = 2; total_keys = items }
  in

  (* stock the shelves *)
  Sim.spawn sim (fun () ->
      ignore
        (Kv.with_txn cluster ~node:0 ~read_only:false (fun t ->
             for i = 0 to items - 1 do
               Kv.write t i (string_of_int initial_stock)
             done)));
  Sim.run sim;

  let sold = ref 0 and out_of_stock = ref 0 and gave_up = ref 0 in
  for s = 1 to shoppers do
    Sim.spawn sim (fun () ->
        let rng = Prng.create ~seed:s in
        for _ = 1 to attempts_per_shopper do
          let a = Prng.int rng items in
          let b = (a + 1 + Prng.int rng (items - 1)) mod items in
          let outcome =
            Kv.with_txn cluster ~node:(s mod 4) ~read_only:false ~max_attempts:8
              (fun t ->
                let sa = int_of_string (Kv.read t a) in
                let sb = int_of_string (Kv.read t b) in
                if sa > 0 && sb > 0 then begin
                  Kv.write t a (string_of_int (sa - 1));
                  Kv.write t b (string_of_int (sb - 1));
                  `Bought
                end
                else `Empty)
          in
          (match outcome with
          | Some `Bought -> incr sold
          | Some `Empty -> incr out_of_stock
          | None -> incr gave_up);
          Sim.sleep sim (Prng.float rng 100e-6)
        done)
  done;
  Sim.run sim;

  (* audit: stock never negative, and conservation holds *)
  let total = ref 0 and negative = ref 0 in
  Sim.spawn sim (fun () ->
      ignore
        (Kv.with_txn cluster ~node:3 ~read_only:true (fun t ->
             for i = 0 to items - 1 do
               let s = int_of_string (Kv.read t i) in
               if s < 0 then incr negative;
               total := !total + s
             done)));
  Sim.run sim;

  Printf.printf "checkouts: %d bought, %d out-of-stock, %d gave up after retries\n" !sold
    !out_of_stock !gave_up;
  Printf.printf "remaining stock %d = initial %d - 2*%d sold\n" !total
    (items * initial_stock) !sold;
  assert (!negative = 0);
  assert (!total = (items * initial_stock) - (2 * !sold));
  (match Sss_consistency.Checker.external_consistency (Kv.history cluster) with
  | Ok () -> print_endline "history externally consistent"
  | Error m -> Printf.printf "VIOLATION: %s\n" m);
  print_endline "no item oversold; conservation holds"
