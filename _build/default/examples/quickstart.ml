(* Quickstart: a 4-node SSS cluster, one update transaction, one read-only
   transaction, and the consistency checker on the recorded history.

   Run with:  dune exec examples/quickstart.exe *)

open Sss_sim
open Sss_kv

let () =
  (* The cluster runs on a deterministic discrete-event simulator: create
     the simulator, the cluster, and drive everything from fibers. *)
  let sim = Sim.create () in
  let config = { Config.default with nodes = 4; replication_degree = 2; total_keys = 100 } in
  let cluster = Kv.create sim config in

  Sim.spawn sim (fun () ->
      (* An update transaction: read two keys, overwrite them, commit.
         [commit] returns once the transaction is EXTERNALLY committed —
         serialized consistently with everything any client has already
         been told. *)
      let t = Kv.begin_txn cluster ~node:0 ~read_only:false in
      let a = Kv.read t 1 in
      let b = Kv.read t 2 in
      Printf.printf "[t=%.6fs] update txn read  key1=%S key2=%S\n" (Sim.now sim) a b;
      Kv.write t 1 "hello";
      Kv.write t 2 "world";
      let committed = Kv.commit t in
      Printf.printf "[t=%.6fs] update txn committed: %b\n" (Sim.now sim) committed;

      (* A read-only transaction from another node: declared read-only, it
         can never abort and sees a consistent snapshot. *)
      let r = Kv.begin_txn cluster ~node:3 ~read_only:true in
      let a = Kv.read r 1 in
      let b = Kv.read r 2 in
      ignore (Kv.commit r);
      Printf.printf "[t=%.6fs] read-only txn saw key1=%S key2=%S\n" (Sim.now sim) a b);

  Sim.run sim;

  (* Every event was recorded; check the history offline. *)
  (match Sss_consistency.Checker.external_consistency (Kv.history cluster) with
  | Ok () -> print_endline "history is externally consistent"
  | Error msg -> Printf.printf "VIOLATION: %s\n" msg);
  match Kv.quiescent cluster with
  | Ok () -> print_endline "cluster quiescent (no protocol residue)"
  | Error msg -> Printf.printf "residue: %s\n" msg
