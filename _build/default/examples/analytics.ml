(* Read-dominated analytics: long read-only scans concurrent with updates.

   An "analyst" repeatedly scans 16 keys in one read-only transaction while
   "order processors" keep updating the same keys.  On SSS the scans are
   abort-free: every scan commits on the first try and sees a consistent
   snapshot.  On the 2PC-baseline the same scans validate and lock, so under
   write contention a fraction of them aborts — the paper's core contrast
   (Figures 3 and 8).

   Run with:  dune exec examples/analytics.exe *)

open Sss_sim

let n_keys = 32
let scan_size = 16
let scans = 40
let writers = 6

let config =
  { Sss_kv.Config.default with nodes = 4; replication_degree = 2; total_keys = n_keys }

type ops = {
  begin_txn : node:int -> read_only:bool -> unit;
  read : int -> string;
  write : int -> string -> unit;
  commit : unit -> bool;
}

(* Drive the same workload against any store; returns (scans ok, scan attempts,
   updates committed). *)
let drive sim (make_ops : unit -> ops) =
  let ok = ref 0 and attempts = ref 0 and updates = ref 0 in
  let stop = ref false in
  (* order processors: small read-modify-write transactions *)
  for w = 1 to writers do
    Sim.spawn sim (fun () ->
        let rng = Prng.create ~seed:w in
        let ops = make_ops () in
        while not !stop do
          let k = Prng.int rng n_keys in
          ops.begin_txn ~node:(w mod 4) ~read_only:false;
          let v = ops.read k in
          ops.write k (Printf.sprintf "upd%d(%s)" w (String.sub v 0 (min 6 (String.length v))));
          if ops.commit () then incr updates;
          Sim.sleep sim 50e-6
        done)
  done;
  (* the analyst: 16-key scans, read-only *)
  Sim.spawn sim (fun () ->
      let ops = make_ops () in
      for _ = 1 to scans do
        incr attempts;
        ops.begin_txn ~node:0 ~read_only:true;
        for k = 0 to scan_size - 1 do
          ignore (ops.read k)
        done;
        if ops.commit () then incr ok
      done;
      stop := true);
  Sim.run sim;
  (!ok, !attempts, !updates)

let run_sss () =
  let sim = Sim.create () in
  let cluster = Sss_kv.Kv.create sim config in
  drive sim (fun () ->
      let handle = ref None in
      let h () = Option.get !handle in
      {
        begin_txn =
          (fun ~node ~read_only ->
            handle := Some (Sss_kv.Kv.begin_txn cluster ~node ~read_only));
        read = (fun k -> Sss_kv.Kv.read (h ()) k);
        write = (fun k v -> Sss_kv.Kv.write (h ()) k v);
        commit = (fun () -> Sss_kv.Kv.commit (h ()));
      })

let run_twopc () =
  let sim = Sim.create () in
  let cluster = Twopc_kv.Twopc.create sim config in
  drive sim (fun () ->
      let handle = ref None in
      let h () = Option.get !handle in
      {
        begin_txn =
          (fun ~node ~read_only ->
            handle := Some (Twopc_kv.Twopc.begin_txn cluster ~node ~read_only));
        read = (fun k -> Twopc_kv.Twopc.read (h ()) k);
        write = (fun k v -> Twopc_kv.Twopc.write (h ()) k v);
        commit = (fun () -> Twopc_kv.Twopc.commit (h ()));
      })

let () =
  let sss_ok, sss_n, sss_up = run_sss () in
  let tp_ok, tp_n, tp_up = run_twopc () in
  Printf.printf "16-key scans under concurrent updates (%d scan attempts each):\n\n" sss_n;
  Printf.printf "  SSS : %d/%d scans committed (%d updates committed concurrently)\n" sss_ok
    sss_n sss_up;
  Printf.printf "  2PC : %d/%d scans committed (%d updates committed concurrently)\n" tp_ok tp_n
    tp_up;
  print_newline ();
  if sss_ok = sss_n then
    print_endline "SSS read-only transactions are abort-free, as the paper claims.";
  if tp_ok < tp_n then
    Printf.printf "2PC-baseline aborted %d scans: read-only transactions validate and lose.\n"
      (tp_n - tp_ok)
