(* Integration tests for the SSS protocol: basic transactional behaviour,
   the paper's Figure 1 / Figure 2 executions, abort-freedom, snapshot-queue
   hygiene, and checker-verified random workloads. *)

open Sss_sim
open Sss_data
open Sss_kv
open Sss_consistency

let make ?(nodes = 2) ?(degree = 1) ?(keys = 16) ?(seed = 1) () =
  let sim = Sim.create () in
  let config =
    {
      Config.default with
      nodes;
      replication_degree = degree;
      total_keys = keys;
      seed;
    }
  in
  let cl = Kv.create sim config in
  (sim, cl)

(* A key stored (exclusively, under degree 1) on [node]. *)
let key_on (cl : Kv.cluster) node = (Replication.keys_at cl.State.repl node).(0)

let check_ok what = function
  | Ok () -> ()
  | Error msg -> Alcotest.fail (Printf.sprintf "%s: %s" what msg)

let test_basic_update_commit () =
  let sim, cl = make () in
  let outcome = ref None in
  let later_read = ref "" in
  Sim.spawn sim (fun () ->
      let t = Kv.begin_txn cl ~node:0 ~read_only:false in
      let v0 = Kv.read t 3 in
      Alcotest.(check string) "initial value" "init:3" v0;
      Kv.write t 3 "updated";
      outcome := Some (Kv.commit t);
      let t2 = Kv.begin_txn cl ~node:1 ~read_only:true in
      later_read := Kv.read t2 3;
      ignore (Kv.commit t2));
  Sim.run sim;
  Alcotest.(check (option bool)) "committed" (Some true) !outcome;
  Alcotest.(check string) "new value visible" "updated" !later_read;
  check_ok "external consistency" (Checker.external_consistency (Kv.history cl));
  check_ok "quiescent" (Kv.quiescent cl)

let test_read_your_writes () =
  let sim, cl = make () in
  Sim.spawn sim (fun () ->
      let t = Kv.begin_txn cl ~node:0 ~read_only:false in
      Kv.write t 5 "mine";
      Alcotest.(check string) "sees own write" "mine" (Kv.read t 5);
      ignore (Kv.commit t));
  Sim.run sim

let test_write_on_read_only_rejected () =
  let sim, cl = make () in
  let raised = ref false in
  Sim.spawn sim (fun () ->
      let t = Kv.begin_txn cl ~node:0 ~read_only:true in
      (try Kv.write t 1 "nope" with Invalid_argument _ -> raised := true);
      ignore (Kv.commit t));
  Sim.run sim;
  Alcotest.(check bool) "write rejected" true !raised

let test_read_only_snapshot_is_stable () =
  (* A read-only transaction that re-reads a key sees the same version even
     if an update committed in between. *)
  let sim, cl = make ~nodes:2 ~degree:1 () in
  let k = key_on cl 1 in
  let first = ref "" and second = ref "" in
  Sim.spawn sim (fun () ->
      let t = Kv.begin_txn cl ~node:0 ~read_only:true in
      first := Kv.read t k;
      Sim.sleep sim 0.005;
      second := Kv.read t k;
      ignore (Kv.commit t));
  Sim.schedule sim ~delay:0.001 (fun () ->
      let u = Kv.begin_txn cl ~node:1 ~read_only:false in
      ignore (Kv.read u k);
      Kv.write u k "overwritten";
      ignore (Kv.commit u));
  Sim.run sim;
  Alcotest.(check string) "first read" (Printf.sprintf "init:%d" k) !first;
  Alcotest.(check string) "snapshot stable" !first !second;
  check_ok "external consistency" (Checker.external_consistency (Kv.history cl));
  check_ok "quiescent" (Kv.quiescent cl)

(* Figure 1: read-only T1 reads y; concurrent update T2 overwrites y and
   internally commits, but its client response (external commit) is held
   until T1 completes and its Remove message arrives. *)
let test_fig1_anti_dependency_delays_external_commit () =
  let sim, cl = make ~nodes:2 ~degree:1 () in
  Kv.set_collect_latencies cl true;
  let ky = key_on cl 1 in
  let t1_value = ref "" in
  let t1_commit_at = ref infinity in
  let t2_external_at = ref infinity in
  let t2_ok = ref false in
  Sim.spawn sim (fun () ->
      let t1 = Kv.begin_txn cl ~node:0 ~read_only:true in
      t1_value := Kv.read t1 ky;
      Sim.sleep sim 0.010;  (* keep the snapshot open for 10ms *)
      ignore (Kv.commit t1);
      t1_commit_at := Sim.now sim);
  Sim.schedule sim ~delay:0.001 (fun () ->
      let t2 = Kv.begin_txn cl ~node:1 ~read_only:false in
      ignore (Kv.read t2 ky);
      Kv.write t2 ky "y1";
      t2_ok := Kv.commit t2;
      t2_external_at := Sim.now sim);
  Sim.run sim;
  Alcotest.(check bool) "T2 committed" true !t2_ok;
  Alcotest.(check string) "T1 read the old version" (Printf.sprintf "init:%d" ky) !t1_value;
  Alcotest.(check bool)
    (Printf.sprintf "T2's response (%.4f) held until after T1 completed (%.4f)"
       !t2_external_at !t1_commit_at)
    true
    (!t2_external_at > !t1_commit_at);
  (* The latency breakdown must show the pre-commit wait dominating. *)
  (match (Kv.stats cl).State.latencies with
  | [ (begin_at, decide_at, external_at) ] ->
      Alcotest.(check bool) "wait >= 8ms" true (external_at -. decide_at > 0.008);
      Alcotest.(check bool) "execution was fast" true (decide_at -. begin_at < 0.005)
  | l -> Alcotest.fail (Printf.sprintf "expected 1 latency record, got %d" (List.length l)));
  check_ok "external consistency" (Checker.external_consistency (Kv.history cl));
  check_ok "quiescent (snapshot queues drained)" (Kv.quiescent cl)

(* While an update transaction is parked in a snapshot-queue, its written
   keys are already visible to subsequent *update* transactions (the
   progress property of §I) — but read-only transactions observe a writer
   only once it is externally committed, so a fresh read-only sees the old
   value during the hold and the new one after. *)
let test_precommit_values_visible () =
  let sim, cl = make ~nodes:2 ~degree:1 () in
  let ky = key_on cl 1 in
  let update_saw = ref "" in
  let ro_saw_during = ref "" in
  let ro_saw_after = ref "" in
  let update_commit_at = ref infinity in
  Sim.spawn sim (fun () ->
      let t1 = Kv.begin_txn cl ~node:0 ~read_only:true in
      ignore (Kv.read t1 ky);
      Sim.sleep sim 0.010;
      ignore (Kv.commit t1));
  Sim.schedule sim ~delay:0.001 (fun () ->
      let t2 = Kv.begin_txn cl ~node:1 ~read_only:false in
      ignore (Kv.read t2 ky);
      Kv.write t2 ky "held";
      ignore (Kv.commit t2));
  (* At 5ms, T2 is internally committed but still held by T1. *)
  Sim.schedule sim ~delay:0.005 (fun () ->
      let t3 = Kv.begin_txn cl ~node:1 ~read_only:false in
      update_saw := Kv.read t3 ky;
      ignore (Kv.commit t3);
      (* T3 read T2's parked write, so its own response chains behind T2's
         external commit (which waits for T1 until 10ms). *)
      update_commit_at := Sim.now sim);
  Sim.schedule sim ~delay:0.006 (fun () ->
      let t4 = Kv.begin_txn cl ~node:1 ~read_only:true in
      ro_saw_during := Kv.read t4 ky;
      ignore (Kv.commit t4));
  Sim.schedule sim ~delay:0.015 (fun () ->
      let t5 = Kv.begin_txn cl ~node:1 ~read_only:true in
      ro_saw_after := Kv.read t5 ky;
      ignore (Kv.commit t5));
  Sim.run sim;
  Alcotest.(check string) "update txn saw the held write" "held" !update_saw;
  Alcotest.(check string) "read-only during the hold sees the old value"
    (Printf.sprintf "init:%d" ky) !ro_saw_during;
  Alcotest.(check string) "read-only after external commit sees it" "held" !ro_saw_after;
  Alcotest.(check bool) "reader of parked data chained behind the hold" true
    (!update_commit_at > 0.010);
  check_ok "external consistency" (Checker.external_consistency (Kv.history cl));
  check_ok "quiescent" (Kv.quiescent cl)

(* Figure 2: two read-only transactions and two non-conflicting update
   transactions; the readers must not observe the updates in different
   orders. The checker's serializability test is exactly this property. *)
let test_fig2_no_divergent_orders () =
  let sim, cl = make ~nodes:4 ~degree:1 ~keys:32 () in
  let kx = key_on cl 1 and ky = key_on cl 2 in
  (* T1 on node 0 reads x then y; T4 on node 3 reads y then x. *)
  Sim.spawn sim (fun () ->
      let t1 = Kv.begin_txn cl ~node:0 ~read_only:true in
      ignore (Kv.read t1 kx);
      Sim.sleep sim 0.004;
      ignore (Kv.read t1 ky);
      ignore (Kv.commit t1));
  Sim.spawn sim (fun () ->
      let t4 = Kv.begin_txn cl ~node:3 ~read_only:true in
      ignore (Kv.read t4 ky);
      Sim.sleep sim 0.004;
      ignore (Kv.read t4 kx);
      ignore (Kv.commit t4));
  (* Non-conflicting updates land in the middle of both readers. *)
  Sim.schedule sim ~delay:0.002 (fun () ->
      let t2 = Kv.begin_txn cl ~node:1 ~read_only:false in
      ignore (Kv.read t2 kx);
      Kv.write t2 kx "x1";
      ignore (Kv.commit t2));
  Sim.schedule sim ~delay:0.002 (fun () ->
      let t3 = Kv.begin_txn cl ~node:2 ~read_only:false in
      ignore (Kv.read t3 ky);
      Kv.write t3 ky "y1";
      ignore (Kv.commit t3));
  Sim.run sim;
  check_ok "serializable (no divergent orders)" (Checker.serializability (Kv.history cl));
  check_ok "external consistency" (Checker.external_consistency (Kv.history cl));
  check_ok "quiescent" (Kv.quiescent cl)

let test_conflicting_update_aborts () =
  let sim, cl = make ~nodes:2 ~degree:1 () in
  let k = key_on cl 0 in
  let r1 = ref None and r2 = ref None in
  let barrier = Sim.Cond.create () in
  let reads_done = ref 0 in
  let run_one result =
    let t = Kv.begin_txn cl ~node:0 ~read_only:false in
    ignore (Kv.read t k);
    incr reads_done;
    Sim.Cond.broadcast sim barrier;
    (* Both must have read before either commits. *)
    Sim.Cond.await sim barrier (fun () -> !reads_done >= 2);
    Kv.write t k "mine";
    result := Some (Kv.commit t)
  in
  Sim.spawn sim (fun () -> run_one r1);
  Sim.spawn sim (fun () -> run_one r2);
  Sim.run sim;
  let committed = List.length (List.filter (( = ) (Some true)) [ !r1; !r2 ]) in
  let aborted = List.length (List.filter (( = ) (Some false)) [ !r1; !r2 ]) in
  Alcotest.(check int) "exactly one committed" 1 committed;
  Alcotest.(check int) "exactly one aborted" 1 aborted;
  check_ok "external consistency" (Checker.external_consistency (Kv.history cl));
  check_ok "quiescent" (Kv.quiescent cl)

let test_ro_abort_then_cleanup () =
  let sim, cl = make ~nodes:2 ~degree:1 () in
  let k = key_on cl 1 in
  Sim.spawn sim (fun () ->
      let t = Kv.begin_txn cl ~node:0 ~read_only:true in
      ignore (Kv.read t k);
      Kv.abort t);
  Sim.run sim;
  check_ok "abort cleaned snapshot queues" (Kv.quiescent cl)

(* Run a random closed-loop workload and verify every property the paper
   claims, via the checker. *)
let run_workload ~nodes ~degree ~keys ~ro_ratio ~seed ~duration =
  let sim, cl = make ~nodes ~degree ~keys ~seed () in
  let ops =
    {
      Sss_workload.Driver.begin_txn = (fun ~node ~read_only -> Kv.begin_txn cl ~node ~read_only);
      read = Kv.read;
      write = Kv.write;
      commit = Kv.commit;
    }
  in
  let result =
    Sss_workload.Driver.run sim ~nodes ~total_keys:keys
      ~local_keys:(fun n -> Replication.keys_at cl.State.repl n)
      ~profile:(Sss_workload.Driver.paper_profile ~read_only_ratio:ro_ratio)
      ~load:
        {
          Sss_workload.Driver.default_load with
          clients_per_node = 4;
          warmup = 0.01;
          duration;
          seed;
        }
      ~ops
  in
  (cl, result)

let assert_workload_correct what cl =
  let h = Kv.history cl in
  check_ok (what ^ ": external consistency") (Checker.external_consistency h);
  check_ok (what ^ ": serializability") (Checker.serializability h);
  check_ok (what ^ ": no lost updates") (Checker.no_lost_updates h);
  check_ok (what ^ ": read-only abort-free") (Checker.read_only_abort_free h);
  check_ok (what ^ ": quiescent") (Kv.quiescent cl)

let test_workload_mixed () =
  let cl, result = run_workload ~nodes:3 ~degree:1 ~keys:24 ~ro_ratio:0.5 ~seed:7 ~duration:0.08 in
  Alcotest.(check bool)
    (Printf.sprintf "made progress (%d committed)" result.Sss_workload.Driver.committed)
    true
    (result.Sss_workload.Driver.committed > 50);
  assert_workload_correct "mixed" cl

let test_workload_replicated () =
  let cl, result = run_workload ~nodes:4 ~degree:2 ~keys:32 ~ro_ratio:0.2 ~seed:11 ~duration:0.08 in
  Alcotest.(check bool) "made progress" true (result.Sss_workload.Driver.committed > 50);
  assert_workload_correct "replicated" cl

let test_workload_contended () =
  (* Tiny key space: plenty of conflicts, aborts, and snapshot-queue traffic. *)
  let cl, result = run_workload ~nodes:4 ~degree:2 ~keys:8 ~ro_ratio:0.5 ~seed:13 ~duration:0.08 in
  Alcotest.(check bool) "made progress" true (result.Sss_workload.Driver.committed > 50);
  Alcotest.(check bool)
    (Printf.sprintf "saw conflicts (%d aborts)" result.Sss_workload.Driver.aborted)
    true
    (result.Sss_workload.Driver.aborted > 0);
  assert_workload_correct "contended" cl

let test_workload_read_dominated () =
  let cl, result = run_workload ~nodes:4 ~degree:2 ~keys:32 ~ro_ratio:0.9 ~seed:17 ~duration:0.08 in
  Alcotest.(check bool) "made progress" true (result.Sss_workload.Driver.committed > 50);
  assert_workload_correct "read-dominated" cl

let test_determinism () =
  let run () =
    let cl, result = run_workload ~nodes:3 ~degree:2 ~keys:16 ~ro_ratio:0.5 ~seed:23 ~duration:0.05 in
    (result.Sss_workload.Driver.committed, result.Sss_workload.Driver.aborted,
     History.length (Kv.history cl))
  in
  let a = run () and b = run () in
  Alcotest.(check (triple int int int)) "identical runs" a b

let () =
  Alcotest.run "sss"
    [
      ( "basics",
        [
          Alcotest.test_case "update commit" `Quick test_basic_update_commit;
          Alcotest.test_case "read your writes" `Quick test_read_your_writes;
          Alcotest.test_case "ro write rejected" `Quick test_write_on_read_only_rejected;
          Alcotest.test_case "ro snapshot stable" `Quick test_read_only_snapshot_is_stable;
        ] );
      ( "paper-scenarios",
        [
          Alcotest.test_case "fig1 anti-dependency delay" `Quick
            test_fig1_anti_dependency_delays_external_commit;
          Alcotest.test_case "pre-commit visibility" `Quick test_precommit_values_visible;
          Alcotest.test_case "fig2 non-conflicting order" `Quick test_fig2_no_divergent_orders;
          Alcotest.test_case "conflict aborts one" `Quick test_conflicting_update_aborts;
          Alcotest.test_case "ro abort cleanup" `Quick test_ro_abort_then_cleanup;
        ] );
      ( "workloads",
        [
          Alcotest.test_case "mixed" `Quick test_workload_mixed;
          Alcotest.test_case "replicated" `Quick test_workload_replicated;
          Alcotest.test_case "contended" `Quick test_workload_contended;
          Alcotest.test_case "read dominated" `Quick test_workload_read_dominated;
          Alcotest.test_case "determinism" `Quick test_determinism;
        ] );
    ]
