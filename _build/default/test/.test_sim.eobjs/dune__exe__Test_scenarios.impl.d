test/test_scenarios.ml: Alcotest Array Checker Config Float Fun Kv List Printf Replication Sim Sss_consistency Sss_data Sss_kv Sss_net Sss_sim State
