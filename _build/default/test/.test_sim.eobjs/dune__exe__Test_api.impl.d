test/test_api.ml: Alcotest Array Config Format Heap Ids Int Kv List Option Printf Prng Replication Sim Squeue Sss_consistency Sss_data Sss_kv Sss_net Sss_sim Sss_workload State String Vclock
