test/test_sim.ml: Alcotest Buffer Heap Int List Printf Prng QCheck QCheck_alcotest Sim Sss_sim
