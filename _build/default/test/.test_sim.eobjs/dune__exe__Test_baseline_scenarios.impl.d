test/test_baseline_scenarios.ml: Alcotest Array Checker List Printf Replication Rococo_kv Sim Sss_consistency Sss_data Sss_kv Sss_sim Twopc_kv Walter_kv
