test/test_net.ml: Alcotest Array List Network Prng Rpc Sim Sss_net Sss_sim
