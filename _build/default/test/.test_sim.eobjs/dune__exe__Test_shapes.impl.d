test/test_shapes.ml: Alcotest Printf Sss_experiments
