test/test_consistency.ml: Alcotest Checker History Ids List Printf Sss_consistency Sss_data String
