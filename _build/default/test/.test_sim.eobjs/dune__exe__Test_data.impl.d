test/test_data.ml: Alcotest Array Commitq Gen Ids Int List Locks Mvstore Nlog Printf QCheck QCheck_alcotest Replication Squeue Sss_data Sss_sim Vclock Vcodec
