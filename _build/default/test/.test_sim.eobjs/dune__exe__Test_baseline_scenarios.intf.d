test/test_baseline_scenarios.mli:
