test/test_props.ml: Alcotest Array Commitq Gen Heap Ids Int List Locks Nlog Printf Prng QCheck QCheck_alcotest Replication Sim Squeue Sss_data Sss_sim Vclock
