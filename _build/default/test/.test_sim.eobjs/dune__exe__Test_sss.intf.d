test/test_sss.mli:
