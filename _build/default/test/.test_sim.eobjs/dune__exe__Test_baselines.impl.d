test/test_baselines.ml: Alcotest Checker Hashtbl History Ids List Printf Rococo_kv Sim Sss_consistency Sss_data Sss_kv Sss_sim Sss_workload Twopc_kv Walter_kv
