test/test_sss.ml: Alcotest Array Checker Config History Kv List Printf Replication Sim Sss_consistency Sss_data Sss_kv Sss_sim Sss_workload State
