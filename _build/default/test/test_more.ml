(* Second-round test battery: paper-mode behaviour, garbage collection,
   workload-generator properties, statistics, and protocol edge cases. *)

open Sss_sim
open Sss_data
open Sss_kv
open Sss_consistency

let check_ok what = function
  | Ok () -> ()
  | Error msg -> Alcotest.fail (Printf.sprintf "%s: %s" what msg)

let make ?(nodes = 3) ?(degree = 1) ?(keys = 24) ?(seed = 1) ?(strict = true)
    ?(gc_horizon = 1.0) ?(chain_keep = 128) () =
  let sim = Sim.create () in
  let config =
    {
      Config.default with
      nodes;
      replication_degree = degree;
      total_keys = keys;
      seed;
      strict_order = strict;
      gc_horizon;
      chain_keep;
    }
  in
  (sim, Kv.create sim config)

let run_workload sim cl ~nodes ~keys ~ro ~seed ~duration =
  let ops =
    {
      Sss_workload.Driver.begin_txn = (fun ~node ~read_only -> Kv.begin_txn cl ~node ~read_only);
      read = Kv.read;
      write = Kv.write;
      commit = Kv.commit;
    }
  in
  Sss_workload.Driver.run sim ~nodes ~total_keys:keys
    ~local_keys:(fun n -> Replication.keys_at cl.State.repl n)
    ~profile:(Sss_workload.Driver.paper_profile ~read_only_ratio:ro)
    ~load:
      {
        Sss_workload.Driver.default_load with
        clients_per_node = 4;
        warmup = 0.005;
        duration;
        seed;
      }
    ~ops

(* ---------- paper mode ---------- *)

let test_paper_mode_liveness_and_core_properties () =
  (* Paper mode must stay live and keep the per-transaction guarantees
     (no lost updates, abort-free reads); full serializability under hot
     contention is exactly what it gives up (DESIGN.md findings). *)
  let sim, cl = make ~nodes:4 ~degree:2 ~keys:32 ~seed:3 ~strict:false () in
  let r = run_workload sim cl ~nodes:4 ~keys:32 ~ro:0.5 ~seed:3 ~duration:0.05 in
  Alcotest.(check bool) "progress" true (r.Sss_workload.Driver.committed > 100);
  let h = Kv.history cl in
  check_ok "no lost updates" (Checker.no_lost_updates h);
  check_ok "read-only abort free" (Checker.read_only_abort_free h);
  check_ok "quiescent" (Kv.quiescent cl)

let test_paper_mode_faster_on_long_reads () =
  (* The ablation in one assertion: under long read-only scans, the paper's
     literal release outperforms the hardened ordering. *)
  let throughput strict =
    let sim, cl = make ~nodes:4 ~degree:1 ~keys:64 ~seed:5 ~strict () in
    let ops =
      {
        Sss_workload.Driver.begin_txn = (fun ~node ~read_only -> Kv.begin_txn cl ~node ~read_only);
        read = Kv.read;
        write = Kv.write;
        commit = Kv.commit;
      }
    in
    let r =
      Sss_workload.Driver.run sim ~nodes:4 ~total_keys:64
        ~local_keys:(fun n -> Replication.keys_at cl.State.repl n)
        ~profile:
          { Sss_workload.Driver.read_only_ratio = 0.8; update_ops = 2; ro_ops = 12;
            locality = 0.0 }
        ~load:
          {
            Sss_workload.Driver.default_load with
            clients_per_node = 6;
            warmup = 0.005;
            duration = 0.04;
            seed = 5;
          }
        ~ops
    in
    r.Sss_workload.Driver.throughput
  in
  let paper = throughput false and hardened = throughput true in
  Alcotest.(check bool)
    (Printf.sprintf "paper mode >= hardened under long scans (%.0f vs %.0f)" paper hardened)
    true (paper >= hardened)

(* ---------- garbage collection ---------- *)

let test_gc_bounds_state () =
  let sim, cl = make ~nodes:3 ~degree:1 ~keys:8 ~seed:11 ~gc_horizon:0.004 ~chain_keep:4 () in
  let r = run_workload sim cl ~nodes:3 ~keys:8 ~ro:0.2 ~seed:11 ~duration:0.08 in
  Alcotest.(check bool) "progress" true (r.Sss_workload.Driver.committed > 200);
  Array.iter
    (fun (n : State.node) ->
      Alcotest.(check bool)
        (Printf.sprintf "node %d nlog bounded (%d)" n.State.id (Nlog.size n.State.nlog))
        true
        (Nlog.size n.State.nlog < 2048);
      Alcotest.(check bool)
        (Printf.sprintf "node %d chains bounded (%d versions)" n.State.id
           (Mvstore.version_count n.State.store))
        true
        (Mvstore.version_count n.State.store <= 8 * 8))
    cl.State.nodes;
  check_ok "still externally consistent under GC"
    (Checker.external_consistency (Kv.history cl));
  check_ok "quiescent" (Kv.quiescent cl)

(* ---------- replication degree 3 with history ---------- *)

let test_degree3_consistency () =
  let sim, cl = make ~nodes:5 ~degree:3 ~keys:20 ~seed:21 () in
  let r = run_workload sim cl ~nodes:5 ~keys:20 ~ro:0.8 ~seed:21 ~duration:0.04 in
  Alcotest.(check bool) "progress" true (r.Sss_workload.Driver.committed > 100);
  let h = Kv.history cl in
  check_ok "external consistency" (Checker.external_consistency h);
  check_ok "serializability" (Checker.serializability h);
  check_ok "quiescent" (Kv.quiescent cl)

(* ---------- repeat contact: multi-read snapshot stability ---------- *)

let test_snapshot_stability_under_churn () =
  let sim, cl = make ~nodes:2 ~degree:1 ~keys:4 ~seed:2 () in
  let stable = ref true in
  (* churn: constant updates of all keys *)
  let stop = ref false in
  Sim.spawn sim (fun () ->
      let rng = Prng.create ~seed:9 in
      while not !stop do
        let t = Kv.begin_txn cl ~node:1 ~read_only:false in
        let k = Prng.int rng 4 in
        ignore (Kv.read t k);
        Kv.write t k "x";
        ignore (Kv.commit t);
        Sim.sleep sim 20e-6
      done);
  (* a reader that re-reads every key several times: all repeats must agree *)
  Sim.spawn sim (fun () ->
      Sim.sleep sim 0.002;
      let t = Kv.begin_txn cl ~node:0 ~read_only:true in
      let first = Array.init 4 (fun k -> Kv.read t k) in
      for _ = 1 to 3 do
        Sim.sleep sim 0.0005;
        for k = 0 to 3 do
          if Kv.read t k <> first.(k) then stable := false
        done
      done;
      ignore (Kv.commit t);
      stop := true);
  Sim.run sim;
  Alcotest.(check bool) "re-reads returned identical versions" true !stable;
  check_ok "external consistency" (Checker.external_consistency (Kv.history cl))

(* ---------- workload generator properties ---------- *)

let zipf_is_monotone =
  QCheck.Test.make ~name:"zipf probabilities decrease with rank" ~count:50
    QCheck.(pair (int_range 2 200) (float_range 0.1 1.2))
    (fun (n, theta) ->
      let z = Sss_workload.Zipf.create ~n ~theta in
      let ok = ref true in
      for i = 1 to n - 1 do
        if
          Sss_workload.Zipf.probability z i
          > Sss_workload.Zipf.probability z (i - 1) +. 1e-12
        then ok := false
      done;
      !ok)

let zipf_sums_to_one =
  QCheck.Test.make ~name:"zipf probabilities sum to 1" ~count:30
    QCheck.(int_range 1 500)
    (fun n ->
      let z = Sss_workload.Zipf.create ~n ~theta:0.99 in
      let sum = ref 0.0 in
      for i = 0 to n - 1 do
        sum := !sum +. Sss_workload.Zipf.probability z i
      done;
      abs_float (!sum -. 1.0) < 1e-9)

let zipf_skews_head () =
  let z = Sss_workload.Zipf.create ~n:1000 ~theta:0.99 in
  let rng = Prng.create ~seed:5 in
  let head = ref 0 in
  let n = 20_000 in
  for _ = 1 to n do
    if Sss_workload.Zipf.sample z rng < 100 then incr head
  done;
  (* with theta=.99 the first 10% of items carry well over half the mass *)
  Alcotest.(check bool)
    (Printf.sprintf "head heavy (%d/%d)" !head n)
    true
    (float_of_int !head /. float_of_int n > 0.5)

let stats_percentile_properties =
  QCheck.Test.make ~name:"stats percentiles are order statistics" ~count:100
    QCheck.(list_of_size (Gen.int_range 1 200) (float_range 0.0 100.0))
    (fun xs ->
      let s = Sss_workload.Stats.create () in
      List.iter (Sss_workload.Stats.add s) xs;
      let sorted = List.sort Float.compare xs in
      let max_x = List.nth sorted (List.length xs - 1) in
      let min_x = List.hd sorted in
      Sss_workload.Stats.percentile s 1.0 = max_x
      && Sss_workload.Stats.min s = min_x
      && Sss_workload.Stats.percentile s 0.5 >= min_x
      && Sss_workload.Stats.percentile s 0.5 <= max_x)

let test_stats_interleaved_add_query () =
  let s = Sss_workload.Stats.create () in
  Sss_workload.Stats.add s 5.0;
  Alcotest.(check (float 1e-9)) "p50 single" 5.0 (Sss_workload.Stats.percentile s 0.5);
  Sss_workload.Stats.add s 1.0;
  Sss_workload.Stats.add s 9.0;
  Alcotest.(check (float 1e-9)) "median after more adds" 5.0 (Sss_workload.Stats.percentile s 0.5);
  Alcotest.(check (float 1e-9)) "mean" 5.0 (Sss_workload.Stats.mean s);
  Sss_workload.Stats.clear s;
  Alcotest.(check int) "cleared" 0 (Sss_workload.Stats.count s)

(* ---------- network under protocol load ---------- *)

let test_remove_priority_matters () =
  (* sanity: the protocol tags Remove/Finalize as highest priority *)
  Alcotest.(check bool) "remove beats read" true
    (Sss_kv.Message.priority (Sss_kv.Message.Remove { txn = Ids.genesis })
    < Sss_kv.Message.priority
        (Sss_kv.Message.Read_request
           {
             req = 0;
             txn = Ids.genesis;
             key = 0;
             vc = Vclock.zero 1;
             has_read = [| false |];
             is_update = false;
           }))

(* ---------- determinism across modes ---------- *)

let test_hardening_fixes_documented_anomaly () =
  (* The centrepiece of DESIGN.md §8.4: at torture-level contention the
     paper's literal per-key snapshot-queue release produces a
     serialization cycle the checker catches; the hardened ordering removes
     it on the very same workload and seed. *)
  let run strict =
    let sim, cl = make ~nodes:4 ~degree:2 ~keys:8 ~seed:7 ~strict () in
    let _ = run_workload sim cl ~nodes:4 ~keys:8 ~ro:0.5 ~seed:7 ~duration:0.04 in
    Checker.serializability (Kv.history cl)
  in
  (match run false with
  | Error _ -> ()  (* the witness: Adya divergence under the paper's rules *)
  | Ok () -> Alcotest.fail "expected the documented paper-mode anomaly at seed 7");
  match run true with
  | Ok () -> ()
  | Error msg -> Alcotest.fail (Printf.sprintf "hardened mode should be clean: %s" msg)

let test_compression_reduces_traffic () =
  let run compress =
    let sim = Sim.create () in
    let config =
      { Config.default with nodes = 3; total_keys = 24; compress_metadata = compress;
        record_history = false }
    in
    let cl = Kv.create sim config in
    let r = run_workload sim cl ~nodes:3 ~keys:24 ~ro:0.5 ~seed:8 ~duration:0.02 in
    (r.Sss_workload.Driver.committed, (Kv.network_stats cl).Sss_net.Network.bytes)
  in
  let committed_c, bytes_c = run true in
  let committed_r, bytes_r = run false in
  Alcotest.(check int) "same execution either way" committed_c committed_r;
  Alcotest.(check bool)
    (Printf.sprintf "compressed %d < raw %d bytes" bytes_c bytes_r)
    true (bytes_c < bytes_r)

let test_mode_determinism () =
  let fingerprint strict =
    let sim, cl = make ~nodes:3 ~degree:2 ~keys:16 ~seed:33 ~strict () in
    let r = run_workload sim cl ~nodes:3 ~keys:16 ~ro:0.5 ~seed:33 ~duration:0.03 in
    (r.Sss_workload.Driver.committed, r.Sss_workload.Driver.aborted)
  in
  Alcotest.(check (pair int int)) "strict deterministic" (fingerprint true) (fingerprint true);
  Alcotest.(check (pair int int)) "paper deterministic" (fingerprint false) (fingerprint false)

let test_experiments_smoke () =
  (* every system runs through the experiment harness and reports sane
     numbers (tiny scale) *)
  List.iter
    (fun sys ->
      let o =
        Sss_experiments.Experiments.run
          {
            Sss_experiments.Experiments.default_params with
            system = sys;
            nodes = 3;
            degree = 1;
            keys = 60;
            clients = 3;
            warmup = 0.002;
            duration = 0.01;
          }
      in
      Alcotest.(check bool)
        (Printf.sprintf "%s throughput > 0"
           (Sss_experiments.Experiments.system_name sys))
        true
        (o.Sss_experiments.Experiments.throughput > 0.0);
      Alcotest.(check bool) "latency sane" true
        (o.Sss_experiments.Experiments.mean_latency > 0.0
        && o.Sss_experiments.Experiments.mean_latency < 0.01))
    [
      Sss_experiments.Experiments.Sss;
      Sss_experiments.Experiments.Walter;
      Sss_experiments.Experiments.Twopc;
      Sss_experiments.Experiments.Rococo;
    ]

let () =
  Alcotest.run "more"
    [
      ( "modes",
        [
          Alcotest.test_case "paper mode core properties" `Quick
            test_paper_mode_liveness_and_core_properties;
          Alcotest.test_case "paper mode faster on long reads" `Quick
            test_paper_mode_faster_on_long_reads;
          Alcotest.test_case "mode determinism" `Quick test_mode_determinism;
          Alcotest.test_case "metadata compression telemetry" `Quick
            test_compression_reduces_traffic;
          Alcotest.test_case "hardening fixes documented anomaly" `Quick
            test_hardening_fixes_documented_anomaly;
        ] );
      ( "experiments",
        [ Alcotest.test_case "harness smoke, all systems" `Quick test_experiments_smoke ] );
      ( "gc",
        [ Alcotest.test_case "bounded state, same guarantees" `Quick test_gc_bounds_state ] );
      ( "protocol",
        [
          Alcotest.test_case "degree-3 consistency" `Quick test_degree3_consistency;
          Alcotest.test_case "snapshot stable under churn" `Quick
            test_snapshot_stability_under_churn;
          Alcotest.test_case "remove priority" `Quick test_remove_priority_matters;
        ] );
      ( "workload",
        [
          QCheck_alcotest.to_alcotest zipf_is_monotone;
          QCheck_alcotest.to_alcotest zipf_sums_to_one;
          Alcotest.test_case "zipf skews head" `Quick zipf_skews_head;
          QCheck_alcotest.to_alcotest stats_percentile_properties;
          Alcotest.test_case "stats interleaved" `Quick test_stats_interleaved_add_query;
        ] );
    ]
