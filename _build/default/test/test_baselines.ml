(* Tests for the three competitor key-value stores re-implemented per §V:
   2PC-baseline (external consistent, read-only can abort), Walter (PSI,
   abort-free reads, long forks possible), and ROCOCO (two-round, abort-free
   updates, round-based read-only). *)

open Sss_sim
open Sss_data
open Sss_consistency

let config ?(nodes = 3) ?(degree = 1) ?(keys = 24) ?(seed = 1) () =
  { Sss_kv.Config.default with nodes; replication_degree = degree; total_keys = keys; seed }

let check_ok what = function
  | Ok () -> ()
  | Error msg -> Alcotest.fail (Printf.sprintf "%s: %s" what msg)

let run_driver sim ~nodes ~keys ~ro ~seed ~ops ~local_keys =
  Sss_workload.Driver.run sim ~nodes ~total_keys:keys ~local_keys
    ~profile:(Sss_workload.Driver.paper_profile ~read_only_ratio:ro)
    ~load:
      {
        Sss_workload.Driver.default_load with
        clients_per_node = 4;
        warmup = 0.005;
        duration = 0.05;
        seed;
      }
    ~ops

(* ---------- 2PC-baseline ---------- *)

let twopc_ops cl =
  {
    Sss_workload.Driver.begin_txn = (fun ~node ~read_only -> Twopc_kv.Twopc.begin_txn cl ~node ~read_only);
    read = Twopc_kv.Twopc.read;
    write = Twopc_kv.Twopc.write;
    commit = Twopc_kv.Twopc.commit;
  }

let test_twopc_basic () =
  let sim = Sim.create () in
  let cl = Twopc_kv.Twopc.create sim (config ()) in
  let later = ref "" in
  Sim.spawn sim (fun () ->
      let t = Twopc_kv.Twopc.begin_txn cl ~node:0 ~read_only:false in
      Alcotest.(check string) "initial" "init:3" (Twopc_kv.Twopc.read t 3);
      Twopc_kv.Twopc.write t 3 "updated";
      Alcotest.(check bool) "commits" true (Twopc_kv.Twopc.commit t);
      let t2 = Twopc_kv.Twopc.begin_txn cl ~node:1 ~read_only:true in
      later := Twopc_kv.Twopc.read t2 3;
      ignore (Twopc_kv.Twopc.commit t2));
  Sim.run sim;
  Alcotest.(check string) "visible" "updated" !later;
  check_ok "external consistency" (Checker.external_consistency (Twopc_kv.Twopc.history cl));
  check_ok "quiescent" (Twopc_kv.Twopc.quiescent cl)

let test_twopc_workload () =
  let sim = Sim.create () in
  let cl = Twopc_kv.Twopc.create sim (config ~nodes:4 ~degree:2 ~keys:24 ~seed:5 ()) in
  let result =
    run_driver sim ~nodes:4 ~keys:24 ~ro:0.5 ~seed:5 ~ops:(twopc_ops cl)
      ~local_keys:(fun _ -> [||])
  in
  Alcotest.(check bool) "progress" true (result.Sss_workload.Driver.committed > 50);
  let h = Twopc_kv.Twopc.history cl in
  check_ok "external consistency" (Checker.external_consistency h);
  check_ok "serializability" (Checker.serializability h);
  check_ok "no lost updates" (Checker.no_lost_updates h);
  check_ok "quiescent" (Twopc_kv.Twopc.quiescent cl)

let test_twopc_read_only_can_abort () =
  (* tiny key space: read-only validation conflicts must appear *)
  let sim = Sim.create () in
  let cl = Twopc_kv.Twopc.create sim (config ~nodes:4 ~degree:2 ~keys:8 ~seed:3 ()) in
  let result =
    run_driver sim ~nodes:4 ~keys:8 ~ro:0.5 ~seed:3 ~ops:(twopc_ops cl)
      ~local_keys:(fun _ -> [||])
  in
  Alcotest.(check bool)
    (Printf.sprintf "aborts under contention (%d)" result.Sss_workload.Driver.aborted)
    true
    (result.Sss_workload.Driver.aborted > 0);
  (* the defining contrast with SSS: 2PC-baseline aborts read-only txns *)
  (match Checker.read_only_abort_free (Twopc_kv.Twopc.history cl) with
  | Ok () -> Alcotest.fail "expected some read-only aborts in 2PC-baseline"
  | Error _ -> ());
  check_ok "still externally consistent"
    (Checker.external_consistency (Twopc_kv.Twopc.history cl))

(* ---------- Walter ---------- *)

let walter_ops cl =
  {
    Sss_workload.Driver.begin_txn = (fun ~node ~read_only -> Walter_kv.Walter.begin_txn cl ~node ~read_only);
    read = Walter_kv.Walter.read;
    write = Walter_kv.Walter.write;
    commit = Walter_kv.Walter.commit;
  }

let test_walter_basic () =
  let sim = Sim.create () in
  let cl = Walter_kv.Walter.create sim (config ()) in
  let later = ref "" in
  Sim.spawn sim (fun () ->
      let t = Walter_kv.Walter.begin_txn cl ~node:0 ~read_only:false in
      Alcotest.(check string) "initial" "init:3" (Walter_kv.Walter.read t 3);
      Walter_kv.Walter.write t 3 "updated";
      Alcotest.(check bool) "commits" true (Walter_kv.Walter.commit t);
      (* same-site session: the next transaction sees the write *)
      let t2 = Walter_kv.Walter.begin_txn cl ~node:0 ~read_only:true in
      later := Walter_kv.Walter.read t2 3;
      ignore (Walter_kv.Walter.commit t2));
  Sim.run sim;
  Alcotest.(check string) "visible in session" "updated" !later;
  check_ok "quiescent" (Walter_kv.Walter.quiescent cl)

let test_walter_workload () =
  let sim = Sim.create () in
  let cl = Walter_kv.Walter.create sim (config ~nodes:4 ~degree:2 ~keys:24 ~seed:7 ()) in
  let result =
    run_driver sim ~nodes:4 ~keys:24 ~ro:0.5 ~seed:7 ~ops:(walter_ops cl)
      ~local_keys:(fun _ -> [||])
  in
  Alcotest.(check bool) "progress" true (result.Sss_workload.Driver.committed > 50);
  let h = Walter_kv.Walter.history cl in
  (* PSI: intact read-modify-writes and abort-free read-only transactions,
     but NOT serializability (long forks are possible). *)
  check_ok "no lost updates" (Checker.no_lost_updates h);
  check_ok "read-only abort free" (Checker.read_only_abort_free h);
  check_ok "quiescent" (Walter_kv.Walter.quiescent cl)

let test_walter_weaker_than_serializable () =
  (* Across seeds and a hot key space, PSI should exhibit at least one
     serializability violation (the long fork) — the reason the paper calls
     Walter's guarantee "much weaker" (§V). *)
  let violations = ref 0 in
  for seed = 1 to 8 do
    let sim = Sim.create () in
    let cl = Walter_kv.Walter.create sim (config ~nodes:4 ~degree:2 ~keys:8 ~seed ()) in
    let _ =
      run_driver sim ~nodes:4 ~keys:8 ~ro:0.6 ~seed ~ops:(walter_ops cl)
        ~local_keys:(fun _ -> [||])
    in
    (match Checker.serializability (Walter_kv.Walter.history cl) with
    | Ok () -> ()
    | Error _ -> incr violations);
    check_ok "no lost updates" (Checker.no_lost_updates (Walter_kv.Walter.history cl))
  done;
  Alcotest.(check bool)
    (Printf.sprintf "observed PSI anomalies in %d/8 runs" !violations)
    true (!violations > 0)

(* ---------- ROCOCO ---------- *)

let rococo_ops cl =
  {
    Sss_workload.Driver.begin_txn = (fun ~node ~read_only -> Rococo_kv.Rococo.begin_txn cl ~node ~read_only);
    read = Rococo_kv.Rococo.read;
    write = Rococo_kv.Rococo.write;
    commit = Rococo_kv.Rococo.commit;
  }

let test_rococo_basic () =
  let sim = Sim.create () in
  let cl = Rococo_kv.Rococo.create sim (config ()) in
  let later = ref "" in
  Sim.spawn sim (fun () ->
      let t = Rococo_kv.Rococo.begin_txn cl ~node:0 ~read_only:false in
      Alcotest.(check string) "initial" "init:3" (Rococo_kv.Rococo.read t 3);
      Rococo_kv.Rococo.write t 3 "updated";
      Alcotest.(check bool) "commits" true (Rococo_kv.Rococo.commit t);
      let t2 = Rococo_kv.Rococo.begin_txn cl ~node:1 ~read_only:true in
      later := Rococo_kv.Rococo.read t2 3;
      ignore (Rococo_kv.Rococo.commit t2));
  Sim.run sim;
  Alcotest.(check string) "visible" "updated" !later;
  check_ok "external consistency" (Checker.external_consistency (Rococo_kv.Rococo.history cl));
  check_ok "quiescent" (Rococo_kv.Rococo.quiescent cl)

let test_rococo_workload () =
  let sim = Sim.create () in
  let cl = Rococo_kv.Rococo.create sim (config ~nodes:4 ~degree:1 ~keys:24 ~seed:11 ()) in
  let result =
    run_driver sim ~nodes:4 ~keys:24 ~ro:0.5 ~seed:11 ~ops:(rococo_ops cl)
      ~local_keys:(fun _ -> [||])
  in
  Alcotest.(check bool) "progress" true (result.Sss_workload.Driver.committed > 50);
  let h = Rococo_kv.Rococo.history cl in
  check_ok "serializability" (Checker.serializability h);
  check_ok "external consistency" (Checker.external_consistency h);
  check_ok "no lost updates" (Checker.no_lost_updates h);
  check_ok "quiescent" (Rococo_kv.Rococo.quiescent cl)

let test_rococo_updates_never_abort () =
  (* hot keys: all aborts must come from the round-based read-only path *)
  let sim = Sim.create () in
  let cl = Rococo_kv.Rococo.create sim (config ~nodes:4 ~degree:1 ~keys:8 ~seed:13 ()) in
  let result =
    run_driver sim ~nodes:4 ~keys:8 ~ro:0.5 ~seed:13 ~ops:(rococo_ops cl)
      ~local_keys:(fun _ -> [||])
  in
  ignore result;
  let h = Rococo_kv.Rococo.history cl in
  (* every aborted txn in the history must be read-only *)
  let events = History.events h in
  let ro_txns = Hashtbl.create 64 in
  List.iter
    (fun { History.event; _ } ->
      match event with
      | History.Begin { txn; ro; _ } -> Hashtbl.replace ro_txns txn ro
      | _ -> ())
    events;
  List.iter
    (fun { History.event; _ } ->
      match event with
      | History.Abort { txn } ->
          Alcotest.(check bool)
            (Printf.sprintf "aborted %s is read-only" (Ids.txn_to_string txn))
            true
            (Hashtbl.find ro_txns txn)
      | _ -> ())
    events;
  check_ok "serializability under contention" (Checker.serializability h);
  check_ok "quiescent" (Rococo_kv.Rococo.quiescent cl)

let () =
  Alcotest.run "baselines"
    [
      ( "twopc",
        [
          Alcotest.test_case "basic" `Quick test_twopc_basic;
          Alcotest.test_case "workload" `Quick test_twopc_workload;
          Alcotest.test_case "read-only can abort" `Quick test_twopc_read_only_can_abort;
        ] );
      ( "walter",
        [
          Alcotest.test_case "basic" `Quick test_walter_basic;
          Alcotest.test_case "workload" `Quick test_walter_workload;
          Alcotest.test_case "weaker than serializable" `Quick test_walter_weaker_than_serializable;
        ] );
      ( "rococo",
        [
          Alcotest.test_case "basic" `Quick test_rococo_basic;
          Alcotest.test_case "workload" `Quick test_rococo_workload;
          Alcotest.test_case "updates never abort" `Quick test_rococo_updates_never_abort;
        ] );
    ]
