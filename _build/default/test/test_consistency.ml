(* Tests for the history recorder and the DSG-based consistency checker,
   using hand-crafted histories exhibiting classic anomalies. *)

open Sss_data
open Sss_consistency

let tx node local : Ids.txn = { node; local }

let mk events =
  let h = History.create () in
  List.iteri (fun i e -> History.record h ~at:(float_of_int i) e) events;
  h

let check_ok what = function
  | Ok () -> ()
  | Error msg -> Alcotest.fail (Printf.sprintf "%s should pass: %s" what msg)

let check_err what = function
  | Ok () -> Alcotest.fail (Printf.sprintf "%s should detect a violation" what)
  | Error _ -> ()

let t1 = tx 0 1
let t2 = tx 1 1
let t3 = tx 2 1
let t4 = tx 3 1

let test_serial_history_passes () =
  (* T1 writes k0; T2 then reads it and overwrites it. Strictly serial. *)
  let h =
    mk
      History.
        [
          Begin { txn = t1; ro = false; node = 0 };
          Install { txn = t1; key = 0 };
          Commit { txn = t1 };
          Begin { txn = t2; ro = false; node = 1 };
          Read { txn = t2; key = 0; writer = t1 };
          Install { txn = t2; key = 0 };
          Commit { txn = t2 };
        ]
  in
  check_ok "external consistency" (Checker.external_consistency h);
  check_ok "serializability" (Checker.serializability h);
  check_ok "no lost updates" (Checker.no_lost_updates h);
  check_ok "ro abort free" (Checker.read_only_abort_free h);
  Alcotest.(check int) "committed" 2 (Checker.committed_count h);
  Alcotest.(check int) "aborted" 0 (Checker.aborted_count h)

let test_stale_read_after_completion () =
  (* T1 installs and commits; T2 begins afterwards but reads the genesis
     version.  Serializable (T2 serializes first) but NOT external
     consistent when both clients sit on the same node — and flagged by the
     strict (global real-time) check even across nodes. *)
  let h node2 =
    mk
      History.
        [
          Begin { txn = t1; ro = false; node = 0 };
          Install { txn = t1; key = 0 };
          Commit { txn = t1 };
          Begin { txn = t2; ro = true; node = node2 };
          Read { txn = t2; key = 0; writer = Ids.genesis };
          Commit { txn = t2 };
        ]
  in
  check_ok "serializability" (Checker.serializability (h 0));
  check_err "same-session external consistency" (Checker.external_consistency (h 0));
  (* Cross-node, non-communicating: the session check accepts it... *)
  check_ok "cross-node session check" (Checker.external_consistency (h 1));
  (* ...but the strict global real-time check does not. *)
  check_err "strict external consistency" (Checker.external_consistency_strict (h 1))

let test_write_skew_detected () =
  let h =
    mk
      History.
        [
          Begin { txn = t1; ro = false; node = 0 };
          Begin { txn = t2; ro = false; node = 1 };
          Read { txn = t1; key = 0; writer = Ids.genesis };
          Read { txn = t2; key = 1; writer = Ids.genesis };
          Install { txn = t1; key = 1 };
          Install { txn = t2; key = 0 };
          Commit { txn = t1 };
          Commit { txn = t2 };
        ]
  in
  check_err "write skew" (Checker.serializability h);
  check_err "write skew (external)" (Checker.external_consistency h);
  (* Write skew is not a lost update: neither read the key it wrote. *)
  check_ok "no lost updates" (Checker.no_lost_updates h)

let test_lost_update_detected () =
  let h =
    mk
      History.
        [
          Begin { txn = t1; ro = false; node = 0 };
          Begin { txn = t2; ro = false; node = 1 };
          Read { txn = t1; key = 0; writer = Ids.genesis };
          Read { txn = t2; key = 0; writer = Ids.genesis };
          Install { txn = t1; key = 0 };
          Install { txn = t2; key = 0 };
          Commit { txn = t1 };
          Commit { txn = t2 };
        ]
  in
  check_err "lost update" (Checker.no_lost_updates h);
  check_err "lost update is not serializable" (Checker.serializability h)

let test_long_fork_detected () =
  (* Walter's PSI admits this: two read-only transactions observe two
     non-conflicting writers in opposite orders (Adya's anomaly, the exact
     situation Fig. 2 of the paper prevents). *)
  let h =
    mk
      History.
        [
          Begin { txn = t1; ro = false; node = 0 };
          Begin { txn = t2; ro = false; node = 1 };
          Install { txn = t1; key = 0 };
          Install { txn = t2; key = 1 };
          Begin { txn = t3; ro = true; node = 2 };
          Read { txn = t3; key = 0; writer = t1 };
          Read { txn = t3; key = 1; writer = Ids.genesis };
          Begin { txn = t4; ro = true; node = 3 };
          Read { txn = t4; key = 0; writer = Ids.genesis };
          Read { txn = t4; key = 1; writer = t2 };
          Commit { txn = t1 };
          Commit { txn = t2 };
          Commit { txn = t3 };
          Commit { txn = t4 };
        ]
  in
  check_err "long fork" (Checker.serializability h);
  (* But each read-modify-write is intact, so PSI-style checks pass. *)
  check_ok "no lost updates" (Checker.no_lost_updates h)

let test_aborted_txns_excluded () =
  let h =
    mk
      History.
        [
          Begin { txn = t1; ro = false; node = 0 };
          Read { txn = t1; key = 0; writer = Ids.genesis };
          Abort { txn = t1 };
          Begin { txn = t2; ro = false; node = 1 };
          Install { txn = t2; key = 0 };
          Commit { txn = t2 };
        ]
  in
  (* The aborted read of genesis would be a stale read if counted. *)
  check_ok "aborted excluded" (Checker.external_consistency h);
  Alcotest.(check int) "aborted counted" 1 (Checker.aborted_count h)

let test_read_only_abort_flagged () =
  let h =
    mk
      History.
        [ Begin { txn = t1; ro = true; node = 0 }; Abort { txn = t1 } ]
  in
  check_err "ro abort" (Checker.read_only_abort_free h);
  let h2 =
    mk History.[ Begin { txn = t1; ro = false; node = 0 }; Abort { txn = t1 } ]
  in
  check_ok "update abort fine" (Checker.read_only_abort_free h2)

let test_uncommitted_installer_constrains () =
  (* t1 installed but its external commit was not recorded (e.g. still parked
     in a snapshot-queue at the end of the run): it must still participate in
     dependency edges. *)
  let h =
    mk
      History.
        [
          Begin { txn = t1; ro = false; node = 0 };
          Install { txn = t1; key = 0 };
          Begin { txn = t2; ro = true; node = 1 };
          Read { txn = t2; key = 0; writer = t1 };
          Commit { txn = t2 };
        ]
  in
  check_ok "partial run ok" (Checker.external_consistency h);
  let edges = Checker.dependency_edges h in
  Alcotest.(check bool) "wr edge from uncommitted installer" true
    (List.exists (fun (s, d, l) -> Ids.equal_txn s t1 && Ids.equal_txn d t2 && l = "wr") edges)

let test_dependency_edge_kinds () =
  let h =
    mk
      History.
        [
          Begin { txn = t1; ro = false; node = 0 };
          Install { txn = t1; key = 0 };
          Commit { txn = t1 };
          Begin { txn = t2; ro = false; node = 1 };
          Read { txn = t2; key = 0; writer = t1 };
          Install { txn = t2; key = 0 };
          Commit { txn = t2 };
          Begin { txn = t3; ro = true; node = 2 };
          Read { txn = t3; key = 0; writer = t1 };
          Commit { txn = t3 };
        ]
  in
  let edges = Checker.dependency_edges h in
  let has s d l =
    List.exists (fun (a, b, lbl) -> Ids.equal_txn a s && Ids.equal_txn b d && lbl = l) edges
  in
  Alcotest.(check bool) "wr t1->t2" true (has t1 t2 "wr");
  Alcotest.(check bool) "ww t1->t2" true (has t1 t2 "ww");
  Alcotest.(check bool) "rw t3->t2 (t3 read the overwritten version)" true (has t3 t2 "rw");
  Alcotest.(check bool) "no self edges" false (List.exists (fun (a, b, _) -> Ids.equal_txn a b) edges)

let test_to_dot_renders_edges () =
  let h =
    mk
      History.
        [
          Begin { txn = t1; ro = false; node = 0 };
          Install { txn = t1; key = 0 };
          Commit { txn = t1 };
          Begin { txn = t2; ro = true; node = 1 };
          Read { txn = t2; key = 0; writer = t1 };
          Commit { txn = t2 };
        ]
  in
  let dot = Checker.to_dot h in
  let contains needle =
    let len = String.length needle in
    let rec go i =
      i + len <= String.length dot && (String.sub dot i len = needle || go (i + 1))
    in
    go 0
  in
  Alcotest.(check bool) "digraph" true (contains "digraph dsg");
  Alcotest.(check bool) "wr edge" true (contains "label=\"wr\"");
  Alcotest.(check bool) "reader ellipse" true (contains "shape=ellipse");
  Alcotest.(check bool) "writer box" true (contains "shape=box")

let test_strict_vs_session_semantics () =
  (* same history, different real-time scopes: cross-node completion->begin
     precedence is only an edge under the strict check *)
  let cross =
    mk
      History.
        [
          Begin { txn = t1; ro = false; node = 0 };
          Install { txn = t1; key = 0 };
          Commit { txn = t1 };
          Begin { txn = t2; ro = true; node = 1 };
          Read { txn = t2; key = 0; writer = Ids.genesis };
          Commit { txn = t2 };
        ]
  in
  check_ok "session accepts cross-node" (Checker.external_consistency cross);
  check_err "strict rejects" (Checker.external_consistency_strict cross);
  (* overlapping transactions are unconstrained even under strict *)
  let overlapping =
    mk
      History.
        [
          Begin { txn = t1; ro = false; node = 0 };
          Begin { txn = t2; ro = true; node = 0 };
          Install { txn = t1; key = 0 };
          Commit { txn = t1 };
          Read { txn = t2; key = 0; writer = Ids.genesis };
          Commit { txn = t2 };
        ]
  in
  check_ok "overlap fine under strict" (Checker.external_consistency_strict overlapping)

let test_disabled_recorder () =
  let h = History.create ~enabled:false () in
  History.record h ~at:0.0 (History.Commit { txn = t1 });
  Alcotest.(check int) "nothing recorded" 0 (History.length h);
  Alcotest.(check int) "no txns" 0 (Checker.txn_count h)

let () =
  Alcotest.run "consistency"
    [
      ( "checker",
        [
          Alcotest.test_case "serial passes" `Quick test_serial_history_passes;
          Alcotest.test_case "stale read after completion" `Quick test_stale_read_after_completion;
          Alcotest.test_case "write skew" `Quick test_write_skew_detected;
          Alcotest.test_case "lost update" `Quick test_lost_update_detected;
          Alcotest.test_case "long fork" `Quick test_long_fork_detected;
          Alcotest.test_case "aborted excluded" `Quick test_aborted_txns_excluded;
          Alcotest.test_case "ro abort flagged" `Quick test_read_only_abort_flagged;
          Alcotest.test_case "uncommitted installer" `Quick test_uncommitted_installer_constrains;
          Alcotest.test_case "edge kinds" `Quick test_dependency_edge_kinds;
          Alcotest.test_case "disabled recorder" `Quick test_disabled_recorder;
          Alcotest.test_case "to_dot" `Quick test_to_dot_renders_edges;
          Alcotest.test_case "strict vs session" `Quick test_strict_vs_session_semantics;
        ] );
    ]
