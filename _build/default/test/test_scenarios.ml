(* Protocol scenario tests: transitive anti-dependency chains, fault
   behaviour, starvation control, and replica races. *)

open Sss_sim
open Sss_data
open Sss_kv
open Sss_consistency

let check_ok what = function
  | Ok () -> ()
  | Error msg -> Alcotest.fail (Printf.sprintf "%s: %s" what msg)

let make ?(nodes = 3) ?(degree = 1) ?(keys = 24) ?(seed = 1) ?(network = None) () =
  let sim = Sim.create () in
  let config =
    {
      Config.default with
      nodes;
      replication_degree = degree;
      total_keys = keys;
      seed;
      network =
        (match network with Some n -> n | None -> Config.default.Config.network);
    }
  in
  (sim, Kv.create sim config)

let key_on (cl : Kv.cluster) node = (Replication.keys_at cl.State.repl node).(0)


(* Transitive anti-dependency (§III-C): T_ro reads x; T_w overwrites x and
   parks; T_w' reads T_w's parked x and writes y — T_w' inherits T_ro
   through the PropagatedSet, so its response must ALSO wait for T_ro, and
   T_ro's Remove must be forwarded to y's node to release it. *)
let test_transitive_anti_dependency_chain () =
  let sim, cl = make ~nodes:3 ~degree:1 () in
  let kx = key_on cl 1 and ky = key_on cl 2 in
  let ro_done = ref infinity in
  let w_done = ref infinity in
  let w'_done = ref infinity in
  Sim.spawn sim (fun () ->
      let t = Kv.begin_txn cl ~node:0 ~read_only:true in
      ignore (Kv.read t kx);
      Sim.sleep sim 0.012;
      ignore (Kv.commit t);
      ro_done := Sim.now sim);
  Sim.schedule sim ~delay:0.001 (fun () ->
      let t = Kv.begin_txn cl ~node:1 ~read_only:false in
      ignore (Kv.read t kx);
      Kv.write t kx "x1";
      ignore (Kv.commit t);
      w_done := Sim.now sim);
  (* T_w' starts once T_w is internally committed but still held. *)
  Sim.schedule sim ~delay:0.004 (fun () ->
      let t = Kv.begin_txn cl ~node:2 ~read_only:false in
      let x = Kv.read t kx in
      Alcotest.(check string) "T_w' reads the parked write" "x1" x;
      Kv.write t ky "y1";
      ignore (Kv.commit t);
      w'_done := Sim.now sim);
  Sim.run sim;
  Alcotest.(check bool)
    (Printf.sprintf "T_w held until T_ro (%.4f > %.4f)" !w_done !ro_done)
    true (!w_done > !ro_done);
  Alcotest.(check bool)
    (Printf.sprintf "T_w' transitively held until T_ro (%.4f > %.4f)" !w'_done !ro_done)
    true (!w'_done > !ro_done);
  check_ok "external consistency" (Checker.external_consistency (Kv.history cl));
  check_ok "queues drained (Remove forwarding worked)" (Kv.quiescent cl)

(* §VI contrast with quorum systems: reads are served by the fastest
   replica, so a crashed replica does not block read-only traffic. *)
let test_reads_survive_replica_crash () =
  let sim, cl = make ~nodes:3 ~degree:2 ~keys:12 () in
  (* find a key replicated on nodes {a,b}; crash one replica *)
  let k = key_on cl 1 in
  let replicas = Replication.replicas cl.State.repl k in
  let crashed = List.hd replicas in
  let value = ref "" in
  Sim.schedule sim ~delay:0.001 (fun () ->
      Sss_net.Network.crash cl.State.net crashed);
  Sim.schedule sim ~delay:0.002 (fun () ->
      let t =
        Kv.begin_txn cl
          ~node:(List.find (fun n -> n <> crashed) (List.init 3 Fun.id))
          ~read_only:true
      in
      value := Kv.read t k;
      ignore (Kv.commit t));
  Sim.run_until sim 0.1;
  Alcotest.(check string) "read served by surviving replica"
    (Printf.sprintf "init:%d" k) !value

(* A 2PC participant that never answers (crashed) must lead to a timely
   abort, not a hang: the coordinator's vote timeout fires. *)
let test_update_to_crashed_node_aborts () =
  let sim, cl = make ~nodes:3 ~degree:1 ~keys:24 () in
  let k = key_on cl 2 in
  let outcome = ref None in
  let finished_at = ref infinity in
  Sim.schedule sim ~delay:0.001 (fun () -> Sss_net.Network.crash cl.State.net 2);
  Sim.schedule sim ~delay:0.002 (fun () ->
      let t = Kv.begin_txn cl ~node:0 ~read_only:false in
      Kv.write t k "doomed";  (* blind write: no read needed from node 2 *)
      outcome := Some (Kv.commit t);
      finished_at := Sim.now sim);
  Sim.run_until sim 0.5;
  Alcotest.(check (option bool)) "aborted, not hung" (Some false) !outcome;
  Alcotest.(check bool)
    (Printf.sprintf "aborted within vote timeout (%.4f)" !finished_at)
    true
    (!finished_at < 0.01)

(* Admission control (§III-E): a writer held by a slow reader triggers
   back-off on later readers of its keys, and the writer does get through. *)
let test_admission_control_engages () =
  let sim, cl = make ~nodes:2 ~degree:1 () in
  let k = key_on cl 1 in
  let writer_done = ref infinity in
  (* a slow reader holds the writer well past the starvation threshold *)
  Sim.spawn sim (fun () ->
      let t = Kv.begin_txn cl ~node:0 ~read_only:true in
      ignore (Kv.read t k);
      Sim.sleep sim 0.008;
      ignore (Kv.commit t));
  Sim.schedule sim ~delay:0.001 (fun () ->
      let t = Kv.begin_txn cl ~node:1 ~read_only:false in
      ignore (Kv.read t k);
      Kv.write t k "w";
      ignore (Kv.commit t);
      writer_done := Sim.now sim);
  (* a stream of fresh readers keeps arriving while the writer is parked *)
  for i = 1 to 20 do
    Sim.schedule sim ~delay:(0.002 +. (0.0005 *. float_of_int i)) (fun () ->
        let t = Kv.begin_txn cl ~node:0 ~read_only:true in
        ignore (Kv.read t k);
        ignore (Kv.commit t))
  done;
  Sim.run sim;
  Alcotest.(check bool)
    (Printf.sprintf "writer eventually externally committed (%.4f)" !writer_done)
    true
    (!writer_done < 0.05);
  check_ok "external consistency" (Checker.external_consistency (Kv.history cl));
  check_ok "quiescent" (Kv.quiescent cl)

(* Fig. 1 under replication: the anti-dependency hold works identically when
   the key lives on two replicas and the read was served by the fastest. *)
let test_fig1_with_replication () =
  let sim, cl = make ~nodes:4 ~degree:2 ~keys:16 () in
  let k = key_on cl 2 in
  let t1_done = ref infinity and t2_done = ref infinity in
  Sim.spawn sim (fun () ->
      let t1 = Kv.begin_txn cl ~node:0 ~read_only:true in
      ignore (Kv.read t1 k);
      Sim.sleep sim 0.006;
      ignore (Kv.commit t1);
      t1_done := Sim.now sim);
  Sim.schedule sim ~delay:0.001 (fun () ->
      let t2 = Kv.begin_txn cl ~node:1 ~read_only:false in
      ignore (Kv.read t2 k);
      Kv.write t2 k "v1";
      ignore (Kv.commit t2);
      t2_done := Sim.now sim);
  Sim.run sim;
  Alcotest.(check bool) "writer held across both replicas" true (!t2_done > !t1_done);
  check_ok "external consistency" (Checker.external_consistency (Kv.history cl));
  check_ok "quiescent" (Kv.quiescent cl)

(* Two sessions on one node: the second transaction must observe everything
   the first one was told, even when the keys live elsewhere. *)
let test_session_monotonicity () =
  let sim, cl = make ~nodes:3 ~degree:1 () in
  let k = key_on cl 2 in
  let seen = ref "" in
  Sim.spawn sim (fun () ->
      let t1 = Kv.begin_txn cl ~node:0 ~read_only:false in
      ignore (Kv.read t1 k);
      Kv.write t1 k "first";
      ignore (Kv.commit t1);
      (* same node, immediately after: must read its own session's commit *)
      let t2 = Kv.begin_txn cl ~node:0 ~read_only:true in
      seen := Kv.read t2 k;
      ignore (Kv.commit t2));
  Sim.run sim;
  Alcotest.(check string) "session read-your-commits" "first" !seen

(* Update transactions read the latest version even mid-chain: three
   sequential RMWs from different nodes compose. *)
let test_rmw_chain_composes () =
  let sim, cl = make ~nodes:3 ~degree:1 () in
  let k = key_on cl 0 in
  let final = ref "" in
  Sim.spawn sim (fun () ->
      for i = 1 to 3 do
        let t = Kv.begin_txn cl ~node:(i mod 3) ~read_only:false in
        let v = Kv.read t k in
        Kv.write t k (v ^ "+");
        ignore (Kv.commit t)
      done;
      let t = Kv.begin_txn cl ~node:1 ~read_only:true in
      final := Kv.read t k;
      ignore (Kv.commit t));
  Sim.run sim;
  Alcotest.(check string) "chain composed" (Printf.sprintf "init:%d+++" k) !final;
  check_ok "external consistency" (Checker.external_consistency (Kv.history cl))

(* Overlapping read-only transactions never block each other: N readers of
   the same keys all proceed concurrently (latency stays ~2 RTTs each). *)
let test_readers_dont_block_readers () =
  let sim, cl = make ~nodes:2 ~degree:1 () in
  let k = key_on cl 1 in
  let slowest = ref 0.0 in
  for _ = 1 to 50 do
    Sim.spawn sim (fun () ->
        let t0 = Sim.now sim in
        let t = Kv.begin_txn cl ~node:0 ~read_only:true in
        ignore (Kv.read t k);
        ignore (Kv.commit t);
        slowest := Float.max !slowest (Sim.now sim -. t0))
  done;
  Sim.run sim;
  Alcotest.(check bool)
    (Printf.sprintf "50 concurrent readers, slowest %.0fµs" (!slowest *. 1e6))
    true
    (!slowest < 0.002)

let () =
  Alcotest.run "scenarios"
    [
      ( "anti-dependency",
        [
          Alcotest.test_case "transitive chain + remove forwarding" `Quick
            test_transitive_anti_dependency_chain;
          Alcotest.test_case "fig1 with replication" `Quick test_fig1_with_replication;
        ] );
      ( "faults",
        [
          Alcotest.test_case "reads survive replica crash" `Quick
            test_reads_survive_replica_crash;
          Alcotest.test_case "update to crashed node aborts" `Quick
            test_update_to_crashed_node_aborts;
        ] );
      ( "liveness",
        [
          Alcotest.test_case "admission control engages" `Quick test_admission_control_engages;
          Alcotest.test_case "readers don't block readers" `Quick
            test_readers_dont_block_readers;
        ] );
      ( "sessions",
        [
          Alcotest.test_case "session monotonicity" `Quick test_session_monotonicity;
          Alcotest.test_case "rmw chain composes" `Quick test_rmw_chain_composes;
        ] );
    ]
