(* Targeted scenario tests for the competitor protocols: Walter's commit
   paths and snapshot semantics, ROCOCO's reorder-instead-of-abort, and the
   2PC baseline's lock discipline. *)

open Sss_sim
open Sss_data
open Sss_consistency

let config ?(nodes = 4) ?(degree = 2) ?(keys = 16) ?(seed = 1) () =
  { Sss_kv.Config.default with nodes; replication_degree = degree; total_keys = keys; seed }

let check_ok what = function
  | Ok () -> ()
  | Error msg -> Alcotest.fail (Printf.sprintf "%s: %s" what msg)

(* ---------- Walter ---------- *)

(* A key whose primary is [node]. *)
let key_with_primary repl node total =
  let rec find k =
    if k >= total then None
    else if List.hd (Replication.replicas repl k) = node then Some k
    else find (k + 1)
  in
  find 0

let test_walter_fast_path_is_local () =
  (* Writing only keys whose preferred site is the home node commits without
     waiting on any other node: latency ~ the self-delivery cost. *)
  let sim = Sim.create () in
  let cl = Walter_kv.Walter.create sim (config ~nodes:3 ~degree:2 ~keys:30 ()) in
  let repl = Walter_kv.Walter.repl cl in
  match key_with_primary repl 1 30 with
  | None -> Alcotest.fail "no key with primary 1"
  | Some k ->
      let committed_at = ref infinity in
      Sim.spawn sim (fun () ->
          let t = Walter_kv.Walter.begin_txn cl ~node:1 ~read_only:false in
          Walter_kv.Walter.write t k "fast";
          Alcotest.(check bool) "committed" true (Walter_kv.Walter.commit t);
          committed_at := Sim.now sim);
      Sim.run sim;
      Alcotest.(check bool)
        (Printf.sprintf "fast path latency %.1fµs" (!committed_at *. 1e6))
        true
        (* no network round trip: well under one 20µs hop *)
        (!committed_at < 20e-6)

let test_walter_slow_path_conflict_aborts () =
  (* Two transactions racing a write on the same key: exactly one commits
     (PSI write-write conflict). *)
  let sim = Sim.create () in
  let cl = Walter_kv.Walter.create sim (config ~nodes:3 ~degree:2 ~keys:30 ()) in
  let repl = Walter_kv.Walter.repl cl in
  match key_with_primary repl 2 30 with
  | None -> Alcotest.fail "no key with primary 2"
  | Some k ->
      let r1 = ref None and r2 = ref None in
      let run_one result home =
        let t = Walter_kv.Walter.begin_txn cl ~node:home ~read_only:false in
        ignore (Walter_kv.Walter.read t k);
        Walter_kv.Walter.write t k (Printf.sprintf "from%d" home);
        result := Some (Walter_kv.Walter.commit t)
      in
      Sim.spawn sim (fun () -> run_one r1 0);
      Sim.spawn sim (fun () -> run_one r2 1);
      Sim.run sim;
      let committed = List.length (List.filter (( = ) (Some true)) [ !r1; !r2 ]) in
      Alcotest.(check int) "exactly one writer wins" 1 committed;
      check_ok "no lost updates" (Checker.no_lost_updates (Walter_kv.Walter.history cl));
      check_ok "quiescent" (Walter_kv.Walter.quiescent cl)

let test_walter_snapshot_excludes_concurrent_commit () =
  (* A transaction begun before a remote commit propagates keeps reading the
     old value (PSI snapshot), even after the commit lands. *)
  let sim = Sim.create () in
  let cl = Walter_kv.Walter.create sim (config ~nodes:3 ~degree:2 ~keys:30 ()) in
  let seen = ref "" in
  Sim.spawn sim (fun () ->
      let snap = Walter_kv.Walter.begin_txn cl ~node:0 ~read_only:true in
      (* hold the snapshot while another site commits *)
      Sim.sleep sim 0.002;
      seen := Walter_kv.Walter.read snap 5;
      ignore (Walter_kv.Walter.commit snap));
  Sim.schedule sim ~delay:0.0005 (fun () ->
      let t = Walter_kv.Walter.begin_txn cl ~node:1 ~read_only:false in
      ignore (Walter_kv.Walter.read t 5);
      Walter_kv.Walter.write t 5 "new";
      ignore (Walter_kv.Walter.commit t));
  Sim.run sim;
  Alcotest.(check string) "snapshot isolation" "init:5" !seen

(* ---------- ROCOCO ---------- *)

let test_rococo_conflicting_updates_both_commit () =
  (* The defining contrast with lock/validation protocols: two conflicting
     RMWs dispatched concurrently BOTH commit — the servers reorder the
     pieces instead of aborting. *)
  let sim = Sim.create () in
  let cl = Rococo_kv.Rococo.create sim (config ~nodes:3 ~degree:1 ~keys:12 ()) in
  let r1 = ref None and r2 = ref None in
  let barrier = Sim.Cond.create () in
  let dispatched = ref 0 in
  let run_one result home =
    let t = Rococo_kv.Rococo.begin_txn cl ~node:home ~read_only:false in
    ignore (Rococo_kv.Rococo.read t 3);
    incr dispatched;
    Sim.Cond.broadcast sim barrier;
    Sim.Cond.await sim barrier (fun () -> !dispatched >= 2);
    Rococo_kv.Rococo.write t 3 (Printf.sprintf "w%d" home);
    result := Some (Rococo_kv.Rococo.commit t)
  in
  Sim.spawn sim (fun () -> run_one r1 0);
  Sim.spawn sim (fun () -> run_one r2 1);
  Sim.run sim;
  Alcotest.(check (option bool)) "first committed" (Some true) !r1;
  Alcotest.(check (option bool)) "second committed" (Some true) !r2;
  check_ok "serializable nonetheless" (Checker.serializability (Rococo_kv.Rococo.history cl));
  check_ok "quiescent" (Rococo_kv.Rococo.quiescent cl)

let test_rococo_ro_waits_out_conflicts () =
  (* A read-only transaction issued while update pieces are buffered returns
     a consistent (post-update) state rather than a torn one. *)
  let sim = Sim.create () in
  let cl = Rococo_kv.Rococo.create sim (config ~nodes:3 ~degree:1 ~keys:12 ()) in
  let a = ref "" and b = ref "" in
  Sim.spawn sim (fun () ->
      let t = Rococo_kv.Rococo.begin_txn cl ~node:0 ~read_only:false in
      ignore (Rococo_kv.Rococo.read t 1);
      ignore (Rococo_kv.Rococo.read t 2);
      Rococo_kv.Rococo.write t 1 "pair";
      Rococo_kv.Rococo.write t 2 "pair";
      ignore (Rococo_kv.Rococo.commit t));
  Sim.schedule sim ~delay:0.00003 (fun () ->
      let t = Rococo_kv.Rococo.begin_txn cl ~node:1 ~read_only:true in
      a := Rococo_kv.Rococo.read t 1;
      b := Rococo_kv.Rococo.read t 2;
      if Rococo_kv.Rococo.commit t then ()
      else begin
        (* bounded retries may abort under contention; rerun once quiet *)
        let t = Rococo_kv.Rococo.begin_txn cl ~node:1 ~read_only:true in
        a := Rococo_kv.Rococo.read t 1;
        b := Rococo_kv.Rococo.read t 2;
        ignore (Rococo_kv.Rococo.commit t)
      end);
  Sim.run sim;
  Alcotest.(check bool)
    (Printf.sprintf "atomic view (%S/%S)" !a !b)
    true
    ((!a = "pair" && !b = "pair") || (!a = "init:1" && !b = "init:2"));
  check_ok "serializable" (Checker.serializability (Rococo_kv.Rococo.history cl))

(* ---------- 2PC baseline ---------- *)

let test_twopc_write_write_race_one_wins () =
  let sim = Sim.create () in
  let cl = Twopc_kv.Twopc.create sim (config ~nodes:3 ~degree:2 ~keys:12 ()) in
  let results = Array.make 4 None in
  for i = 0 to 3 do
    (* slight stagger: fully simultaneous prepares can all mutually abort *)
    Sim.schedule sim ~delay:(float_of_int i *. 60e-6) (fun () ->
        let t = Twopc_kv.Twopc.begin_txn cl ~node:(i mod 3) ~read_only:false in
        ignore (Twopc_kv.Twopc.read t 7);
        Twopc_kv.Twopc.write t 7 (Printf.sprintf "c%d" i);
        results.(i) <- Some (Twopc_kv.Twopc.commit t))
  done;
  Sim.run sim;
  let commits =
    Array.to_list results |> List.filter (( = ) (Some true)) |> List.length
  in
  Alcotest.(check bool)
    (Printf.sprintf "%d of 4 racing RMWs committed" commits)
    true
    (commits >= 1 && commits < 4);
  check_ok "external consistency" (Checker.external_consistency (Twopc_kv.Twopc.history cl));
  check_ok "no lost updates" (Checker.no_lost_updates (Twopc_kv.Twopc.history cl));
  check_ok "quiescent" (Twopc_kv.Twopc.quiescent cl)

let test_twopc_locks_released_after_abort () =
  let sim = Sim.create () in
  let cl = Twopc_kv.Twopc.create sim (config ~nodes:3 ~degree:2 ~keys:12 ()) in
  Sim.spawn sim (fun () ->
      (* a validation-doomed transaction: read, let someone overwrite, commit *)
      let t = Twopc_kv.Twopc.begin_txn cl ~node:0 ~read_only:false in
      ignore (Twopc_kv.Twopc.read t 4);
      let u = Twopc_kv.Twopc.begin_txn cl ~node:1 ~read_only:false in
      ignore (Twopc_kv.Twopc.read u 4);
      Twopc_kv.Twopc.write u 4 "overwritten";
      Alcotest.(check bool) "overwriter commits" true (Twopc_kv.Twopc.commit u);
      Twopc_kv.Twopc.write t 4 "stale";
      Alcotest.(check bool) "stale RMW aborts" false (Twopc_kv.Twopc.commit t);
      (* and the system is usable right away *)
      let v = Twopc_kv.Twopc.begin_txn cl ~node:2 ~read_only:false in
      ignore (Twopc_kv.Twopc.read v 4);
      Twopc_kv.Twopc.write v 4 "after";
      Alcotest.(check bool) "next txn commits" true (Twopc_kv.Twopc.commit v));
  Sim.run sim;
  check_ok "quiescent" (Twopc_kv.Twopc.quiescent cl)

let () =
  Alcotest.run "baseline-scenarios"
    [
      ( "walter",
        [
          Alcotest.test_case "fast path is local" `Quick test_walter_fast_path_is_local;
          Alcotest.test_case "ww conflict aborts one" `Quick
            test_walter_slow_path_conflict_aborts;
          Alcotest.test_case "snapshot excludes concurrent commit" `Quick
            test_walter_snapshot_excludes_concurrent_commit;
        ] );
      ( "rococo",
        [
          Alcotest.test_case "conflicting updates both commit" `Quick
            test_rococo_conflicting_updates_both_commit;
          Alcotest.test_case "read-only atomic view" `Quick test_rococo_ro_waits_out_conflicts;
        ] );
      ( "twopc",
        [
          Alcotest.test_case "ww race" `Quick test_twopc_write_write_race_one_wins;
          Alcotest.test_case "abort releases locks" `Quick test_twopc_locks_released_after_abort;
        ] );
    ]
