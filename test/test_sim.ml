(* Tests for the discrete-event simulator substrate: PRNG, event queue,
   fibers, virtual time, condition variables and ivars. *)

open Sss_sim

let test_prng_determinism () =
  let a = Prng.create ~seed:42 and b = Prng.create ~seed:42 in
  for _ = 1 to 1000 do
    Alcotest.(check int64) "same stream" (Prng.next_int64 a) (Prng.next_int64 b)
  done

let test_prng_seed_sensitivity () =
  let a = Prng.create ~seed:1 and b = Prng.create ~seed:2 in
  let differs = ref false in
  for _ = 1 to 16 do
    if Prng.next_int64 a <> Prng.next_int64 b then differs := true
  done;
  Alcotest.(check bool) "different seeds diverge" true !differs

let test_prng_int_bounds () =
  let g = Prng.create ~seed:7 in
  for _ = 1 to 10_000 do
    let x = Prng.int g 17 in
    Alcotest.(check bool) "in range" true (x >= 0 && x < 17)
  done

let test_prng_float_bounds () =
  let g = Prng.create ~seed:7 in
  for _ = 1 to 10_000 do
    let x = Prng.float g 3.5 in
    Alcotest.(check bool) "in range" true (x >= 0.0 && x < 3.5)
  done

let test_prng_split_independent () =
  let g = Prng.create ~seed:3 in
  let g1 = Prng.split g in
  let g2 = Prng.split g in
  (* Streams from two splits should not coincide. *)
  let same = ref 0 in
  for _ = 1 to 64 do
    if Prng.next_int64 g1 = Prng.next_int64 g2 then incr same
  done;
  Alcotest.(check bool) "split streams differ" true (!same < 8)

let test_prng_exponential_mean () =
  let g = Prng.create ~seed:11 in
  let n = 50_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. Prng.exponential g ~mean:2.0
  done;
  let mean = !sum /. float_of_int n in
  Alcotest.(check bool)
    (Printf.sprintf "mean close to 2.0 (got %f)" mean)
    true
    (abs_float (mean -. 2.0) < 0.1)

(* The ladder queue is exercised through its payload API: each event
   records its own identity when run, making pop order observable. *)

let eq_drain q out =
  while Equeue.pop q do
    Equeue.run_popped q
  done;
  List.rev !out

let test_equeue_sorts () =
  let q = Equeue.create () in
  let out = ref [] in
  let record o = out := (Obj.obj o : int) :: !out in
  let input = [ 5; 3; 8; 1; 9; 2; 7; 4; 6; 0 ] in
  List.iter
    (fun k -> Equeue.push q ~time:(float_of_int k *. 1e-6) ~key:k record (Obj.repr k))
    input;
  Alcotest.(check int) "length" 10 (Equeue.length q);
  Alcotest.(check (list int)) "sorted" [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ] (eq_drain q out);
  Alcotest.(check bool) "drained" true (Equeue.is_empty q)

let test_equeue_key_ties () =
  (* Same timestamp: the int key (packed priority, sequence) decides. *)
  let q = Equeue.create () in
  let out = ref [] in
  let record o = out := (Obj.obj o : int) :: !out in
  List.iter
    (fun k -> Equeue.push q ~time:42e-6 ~key:k record (Obj.repr k))
    [ 3; 1; 4; 0; 2 ];
  Alcotest.(check (list int)) "key order" [ 0; 1; 2; 3; 4 ] (eq_drain q out)

let test_equeue_empty () =
  let q = Equeue.create () in
  Alcotest.(check bool) "empty" true (Equeue.is_empty q);
  Alcotest.(check int) "length 0" 0 (Equeue.length q);
  Alcotest.(check bool) "pop on empty" false (Equeue.pop q);
  Alcotest.(check bool) "min_time infinity" true (Equeue.min_time q = infinity)

let equeue_property =
  QCheck.Test.make ~name:"equeue pop order matches sort by (time, key)" ~count:200
    QCheck.(list (int_bound 2000))
    (fun xs ->
      let q = Equeue.create () in
      let out = ref [] in
      let record o = out := (Obj.obj o : float * int) :: !out in
      List.iteri
        (fun i us ->
          let time = float_of_int us *. 1e-6 in
          Equeue.push q ~time ~key:i record (Obj.repr (time, i)))
        xs;
      let expect =
        List.sort compare (List.mapi (fun i us -> (float_of_int us *. 1e-6, i)) xs)
      in
      eq_drain q out = expect)

let test_sim_time_order () =
  let sim = Sim.create () in
  let log = ref [] in
  let record tag () = log := (tag, Sim.now sim) :: !log in
  Sim.schedule sim ~delay:0.3 (record "c");
  Sim.schedule sim ~delay:0.1 (record "a");
  Sim.schedule sim ~delay:0.2 (record "b");
  Sim.run sim;
  Alcotest.(check (list (pair string (float 1e-9))))
    "events by time"
    [ ("a", 0.1); ("b", 0.2); ("c", 0.3) ]
    (List.rev !log)

let test_sim_priority_ties () =
  let sim = Sim.create () in
  let log = ref [] in
  let record tag () = log := tag :: !log in
  Sim.schedule sim ~prio:50 ~delay:1.0 (record "high");
  Sim.schedule sim ~prio:100 ~delay:1.0 (record "normal1");
  Sim.schedule sim ~prio:100 ~delay:1.0 (record "normal2");
  Sim.schedule sim ~prio:10 ~delay:1.0 (record "urgent");
  Sim.run sim;
  Alcotest.(check (list string))
    "priority then FIFO"
    [ "urgent"; "high"; "normal1"; "normal2" ]
    (List.rev !log)

let test_sim_sleep () =
  let sim = Sim.create () in
  let trace = ref [] in
  Sim.spawn sim (fun () ->
      trace := ("start", Sim.now sim) :: !trace;
      Sim.sleep sim 2.5;
      trace := ("mid", Sim.now sim) :: !trace;
      Sim.sleep sim 1.5;
      trace := ("end", Sim.now sim) :: !trace);
  Sim.run sim;
  Alcotest.(check (list (pair string (float 1e-9))))
    "sleep advances virtual time"
    [ ("start", 0.0); ("mid", 2.5); ("end", 4.0) ]
    (List.rev !trace)

let test_sim_run_until () =
  let sim = Sim.create () in
  let fired = ref [] in
  Sim.schedule sim ~delay:1.0 (fun () -> fired := 1 :: !fired);
  Sim.schedule sim ~delay:2.0 (fun () -> fired := 2 :: !fired);
  Sim.schedule sim ~delay:3.0 (fun () -> fired := 3 :: !fired);
  Sim.run_until sim 2.0;
  Alcotest.(check (list int)) "only first two" [ 1; 2 ] (List.rev !fired);
  Alcotest.(check (float 1e-9)) "clock at limit" 2.0 (Sim.now sim);
  Sim.run sim;
  Alcotest.(check (list int)) "rest run" [ 1; 2; 3 ] (List.rev !fired)

let test_cond_await () =
  let sim = Sim.create () in
  let cond = Sim.Cond.create () in
  let counter = ref 0 in
  let woke_at = ref (-1.0) in
  Sim.spawn sim (fun () ->
      Sim.Cond.await sim cond (fun () -> !counter >= 3);
      woke_at := Sim.now sim);
  for i = 1 to 3 do
    Sim.schedule sim ~delay:(float_of_int i) (fun () ->
        incr counter;
        Sim.Cond.broadcast sim cond)
  done;
  Sim.run sim;
  Alcotest.(check (float 1e-9)) "woke when pred held" 3.0 !woke_at

let test_cond_broadcast_wakes_all () =
  let sim = Sim.create () in
  let cond = Sim.Cond.create () in
  let woken = ref 0 in
  for _ = 1 to 5 do
    Sim.spawn sim (fun () ->
        Sim.Cond.wait sim cond;
        incr woken)
  done;
  Sim.schedule sim ~delay:1.0 (fun () -> Sim.Cond.broadcast sim cond);
  Sim.run sim;
  Alcotest.(check int) "all woken" 5 !woken

let test_cond_await_timeout_expires () =
  let sim = Sim.create () in
  let cond = Sim.Cond.create () in
  let result = ref None in
  Sim.spawn sim (fun () ->
      let ok = Sim.Cond.await_timeout sim cond ~timeout:2.0 (fun () -> false) in
      result := Some (ok, Sim.now sim));
  Sim.run sim;
  Alcotest.(check (option (pair bool (float 1e-9))))
    "timed out at deadline" (Some (false, 2.0)) !result

let test_cond_await_timeout_succeeds () =
  let sim = Sim.create () in
  let cond = Sim.Cond.create () in
  let flag = ref false in
  let result = ref None in
  Sim.spawn sim (fun () ->
      let ok = Sim.Cond.await_timeout sim cond ~timeout:5.0 (fun () -> !flag) in
      result := Some (ok, Sim.now sim));
  Sim.schedule sim ~delay:1.0 (fun () ->
      flag := true;
      Sim.Cond.broadcast sim cond);
  Sim.run sim;
  Alcotest.(check (option (pair bool (float 1e-9))))
    "woke before deadline" (Some (true, 1.0)) !result

let test_ivar_basic () =
  let sim = Sim.create () in
  let iv = Sim.Ivar.create () in
  let got = ref None in
  Sim.spawn sim (fun () ->
      let v = Sim.Ivar.read sim iv in
      got := Some (v, Sim.now sim));
  Sim.schedule sim ~delay:1.5 (fun () -> Sim.Ivar.fill sim iv 99);
  Sim.run sim;
  Alcotest.(check (option (pair int (float 1e-9)))) "read value" (Some (99, 1.5)) !got;
  Alcotest.(check bool) "is filled" true (Sim.Ivar.is_filled iv)

let test_ivar_already_filled () =
  let sim = Sim.create () in
  let iv = Sim.Ivar.create () in
  Sim.spawn sim (fun () ->
      Sim.Ivar.fill sim iv "x";
      Alcotest.(check string) "immediate read" "x" (Sim.Ivar.read sim iv));
  Sim.run sim

let test_ivar_double_fill_rejected () =
  let sim = Sim.create () in
  let iv = Sim.Ivar.create () in
  let raised = ref false in
  Sim.spawn sim (fun () ->
      Sim.Ivar.fill sim iv 1;
      (try Sim.Ivar.fill sim iv 2 with Invalid_argument _ -> raised := true));
  Sim.run sim;
  Alcotest.(check bool) "second fill rejected" true !raised

let test_ivar_read_timeout () =
  let sim = Sim.create () in
  let never = Sim.Ivar.create () in
  let late = Sim.Ivar.create () in
  let r1 = ref (Some 0) and r2 = ref None in
  Sim.spawn sim (fun () -> r1 := Sim.Ivar.read_timeout sim never ~timeout:1.0);
  Sim.spawn sim (fun () -> r2 := Sim.Ivar.read_timeout sim late ~timeout:10.0);
  Sim.schedule sim ~delay:2.0 (fun () -> Sim.Ivar.fill sim late 7);
  Sim.run sim;
  Alcotest.(check (option int)) "timed out" None !r1;
  Alcotest.(check (option int)) "filled in time" (Some 7) !r2

let test_many_fibers () =
  let sim = Sim.create () in
  let n = 1000 in
  let done_count = ref 0 in
  let g = Prng.create ~seed:5 in
  for _ = 1 to n do
    let naps = 1 + Prng.int g 5 in
    Sim.spawn sim (fun () ->
        for _ = 1 to naps do
          Sim.sleep sim (Prng.float g 1.0)
        done;
        incr done_count)
  done;
  Sim.run sim;
  Alcotest.(check int) "all fibers completed" n !done_count

let test_fiber_exception_propagates () =
  let sim = Sim.create () in
  Sim.spawn sim (fun () -> failwith "kaboom");
  match Sim.run sim with
  | exception Failure m -> Alcotest.(check string) "propagated" "kaboom" m
  | () -> Alcotest.fail "exception should escape Sim.run"

let test_events_processed_counts () =
  let sim = Sim.create () in
  for _ = 1 to 5 do
    Sim.schedule sim ~delay:0.1 (fun () -> ())
  done;
  Sim.run sim;
  Alcotest.(check bool) "counted at least the scheduled events" true
    (Sim.events_processed sim >= 5)

let test_suspend_roundtrip () =
  let sim = Sim.create () in
  let hops = ref 0 in
  Sim.spawn sim (fun () ->
      (* a custom suspension resumed via an external event *)
      Sim.suspend sim (fun resume -> Sim.schedule sim ~delay:0.5 (fun () -> resume ()));
      incr hops;
      Sim.suspend sim (fun resume -> Sim.schedule sim ~delay:0.5 (fun () -> resume ()));
      incr hops);
  Sim.run sim;
  Alcotest.(check int) "resumed twice" 2 !hops;
  Alcotest.(check (float 1e-9)) "time advanced" 1.0 (Sim.now sim)

let test_determinism () =
  let run_once () =
    let sim = Sim.create () in
    let g = Prng.create ~seed:123 in
    let log = Buffer.create 256 in
    for i = 1 to 50 do
      Sim.spawn sim (fun () ->
          Sim.sleep sim (Prng.float g 10.0);
          Buffer.add_string log (Printf.sprintf "%d@%.9f;" i (Sim.now sim)))
    done;
    Sim.run sim;
    Buffer.contents log
  in
  Alcotest.(check string) "identical traces" (run_once ()) (run_once ())

let () =
  Alcotest.run "sim"
    [
      ( "prng",
        [
          Alcotest.test_case "determinism" `Quick test_prng_determinism;
          Alcotest.test_case "seed sensitivity" `Quick test_prng_seed_sensitivity;
          Alcotest.test_case "int bounds" `Quick test_prng_int_bounds;
          Alcotest.test_case "float bounds" `Quick test_prng_float_bounds;
          Alcotest.test_case "split independence" `Quick test_prng_split_independent;
          Alcotest.test_case "exponential mean" `Quick test_prng_exponential_mean;
        ] );
      ( "equeue",
        [
          Alcotest.test_case "sorts" `Quick test_equeue_sorts;
          Alcotest.test_case "key ties" `Quick test_equeue_key_ties;
          Alcotest.test_case "empty behaviour" `Quick test_equeue_empty;
          QCheck_alcotest.to_alcotest equeue_property;
        ] );
      ( "engine",
        [
          Alcotest.test_case "time order" `Quick test_sim_time_order;
          Alcotest.test_case "priority ties" `Quick test_sim_priority_ties;
          Alcotest.test_case "sleep" `Quick test_sim_sleep;
          Alcotest.test_case "run_until" `Quick test_sim_run_until;
          Alcotest.test_case "many fibers" `Quick test_many_fibers;
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "exception propagates" `Quick test_fiber_exception_propagates;
          Alcotest.test_case "events processed" `Quick test_events_processed_counts;
          Alcotest.test_case "suspend roundtrip" `Quick test_suspend_roundtrip;
        ] );
      ( "cond",
        [
          Alcotest.test_case "await" `Quick test_cond_await;
          Alcotest.test_case "broadcast wakes all" `Quick test_cond_broadcast_wakes_all;
          Alcotest.test_case "await_timeout expires" `Quick test_cond_await_timeout_expires;
          Alcotest.test_case "await_timeout succeeds" `Quick test_cond_await_timeout_succeeds;
        ] );
      ( "ivar",
        [
          Alcotest.test_case "basic" `Quick test_ivar_basic;
          Alcotest.test_case "already filled" `Quick test_ivar_already_filled;
          Alcotest.test_case "double fill rejected" `Quick test_ivar_double_fill_rejected;
          Alcotest.test_case "read timeout" `Quick test_ivar_read_timeout;
        ] );
    ]
