(* Typed-R2 fixture: the judgment is the *instantiated* type at the use
   site.  Scalars and scalar aliases pass; structured types and
   still-generalized comparisons (the mli-boundary trap: the body infers
   ['a] even when the interface says [int array]) are flagged. *)

type id = int

let same_id (a : id) (b : id) = a = b

let same_int a b = a + 0 = b

let diff_list (a : int list) b = a = b

let generalized a b = a = b
