(* R1 fixture: every banned ambient-nondeterminism primitive. *)

let wall_clock () = Unix.gettimeofday ()

let cpu_seconds () = Sys.time ()

let dice () = Random.int 6

let jitter () = Stdlib.Random.float 1.0
