(* R5 fixture: ad-hoc printing from library code.  Trace emission must go
   through Obs.emit (docs/OBSERVABILITY.md).  Expected findings, in order:
   print_endline, Printf.printf, Format.eprintf, prerr_string,
   print_string (bare mention passed as a value). *)

let announce_commit txn = print_endline ("commit " ^ txn)

let debug_queue depth = Printf.printf "queue depth: %d\n" depth

let warn_stall src dst = Format.eprintf "stall %d -> %d@." src dst

let complain msg = prerr_string msg

let emit_all lines = List.iter print_string lines
