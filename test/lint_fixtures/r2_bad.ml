(* R2 fixture: polymorphic comparisons a hot library must not contain.
   Expected findings, in order: compare, compare (as value), Stdlib.min,
   Hashtbl.hash, = (vclock-named), = (constructor payload), = (string
   literal), < (tuples). *)

let cmp a b = compare a b

let sorted xs = List.sort compare xs

let smaller a b = Stdlib.min a b

let bucket k = Hashtbl.hash k

let same_clock vc1 vc2 = vc1 = vc2

let is_some_zero x = x = Some 0

let is_fast mode = mode = "fast"

let pair_less a b c d = (a, b) < (c, d)
