(* R4 fixture: order-insensitive iteration, annotated [@order_ok]. *)

let keys table =
  List.sort Int.compare
    (Hashtbl.fold (fun k _ acc -> k :: acc) table [] [@order_ok])

let total table = (Hashtbl.fold (fun _ v acc -> acc + v) table 0 [@order_ok])

(* binding-level suppression also works *)
let[@order_ok] any_pending table =
  Hashtbl.fold (fun _ d acc -> acc || d) table false
