(* R8 fixture: allocation in [@hot] code — a closure passed as an
   argument, a tuple in result position, and a float boxed into a
   polymorphic formal. *)

let[@hot] fanout fs x = List.map (fun f -> f x) fs

let[@hot] pair a b = (a, b)

let[@hot] stash tbl (v : float) = Hashtbl.replace tbl 0 v
