(* R2 fixture: comparisons that are fine in a hot library — scalar
   operands, monomorphic comparators, or reviewed [@poly_ok] sites. *)

let small x = x < 3

let nonempty xs = xs <> []

let within a n = Array.length a > n

let ordered la lb = Int.compare la lb

let clamped x = Int.max 0 x

let typed_bound (x : int) y = x <= y

let sorted xs = List.sort Ids.compare_txn xs

let same_clock vc1 vc2 = (vc1 = vc2 [@poly_ok])

let cold_compare a b = (compare a b [@poly_ok])

let[@poly_ok] cold_path a b = min a b
