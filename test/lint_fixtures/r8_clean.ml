(* Clean twin of r8_bad: fully applied helpers instead of closures, no
   tuples, floats kept in float arrays (flat, exempt), and a deliberate
   cold-branch closure annotated [@alloc_ok]. *)

let apply f x = f x

let[@hot] fanout f x = apply f x

let[@hot] pair a b = a + b

let[@hot] stash (arr : float array) i (v : float) = arr.(i) <- v

let[@hot] cold x = ((fun () -> x + 1) [@alloc_ok]) ()
