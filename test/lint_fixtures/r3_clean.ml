(* R3 fixture: the same operations, each carrying [@owned] — plus one in a
   function meant to be covered by --owned-allow (see r3_allow.ml). *)

let bump_clock vc i v = (Vclock.set_into vc i v [@owned])

let fold_vote dst src = (Vclock.max_into dst src [@owned])

let overwrite ~src ~dst = (Vclock.blit ~src ~dst [@owned])

let adopt a = (Vclock.unsafe_of_array a [@owned])

(* binding-level suppression also works *)
let[@owned] rebuild_row m = Vclock.unsafe_of_array m
