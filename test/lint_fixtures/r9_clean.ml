(* Clean twin of r9_bad: the factory stays (calling it per run is the
   pattern R9 pushes toward), escaping instances are either created inside
   a function (per call, nothing shared) or annotated [@@domain_safe]. *)

let make_counter () =
  let n = ref 0 in
  fun () ->
    incr n;
    !n

let fresh_counter () = make_counter ()

let counter = make_counter () [@@domain_safe]

let lookup_fresh k =
  let cache = Hashtbl.create 16 in
  Hashtbl.mem cache k

let lookup =
  let cache = Hashtbl.create 16 in
  fun k -> Hashtbl.mem cache k
[@@domain_safe]
