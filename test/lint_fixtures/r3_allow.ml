(* R3 fixture: an unannotated in-place op inside a function that the
   allowlist ([--owned-allow recompute] or [R3_allow.recompute]) covers. *)

let recompute row = Vclock.unsafe_of_array row
