(* R6 fixture, clean twin: per-run state built inside functions, immutable
   module-level values, the sanctioned Atomic primitive, and deliberate
   sharing justified with [@@domain_safe]. *)

(* per-run state: constructed per call, never shared *)
let fresh_counter () = ref 0

let fresh_memo () = Hashtbl.create 64

(* immutable module-level values are fine *)
let golden_ratio = 1.618

let default_widths = [ 6; 14; 14 ]

type gauge = { mutable current : int; peak : int }

let bump g = g.current <- g.current + 1

(* Atomic is the sanctioned cross-domain primitive: not flagged *)
let initialized = Atomic.make false

(* deliberate, reviewed sharing: an immutable sentinel that merely shares a
   field name with a mutable record elsewhere in the file *)
let zero_gauge = { current = 0; peak = 0 } [@@domain_safe]

(* binding-level justification on genuinely shared state *)
let interned = Hashtbl.create 16 [@@domain_safe]

(* module-level suppression covers the whole body *)
module Registry = struct
  let slots = Array.make 8 None
end
[@@domain_safe]
