(* Clean twin of r7_bad: the same alias-laundered wall clock, but the
   boundary is audited with [@deterministic], which is an R7 taint barrier
   (R1 still applies to the direct occurrence when enabled). *)

module U = Unix
module V = U

let[@deterministic] now () = V.gettimeofday ()

let step () = now () +. 1.0
