(* R7/typed-R1 fixture: wall clock laundered through a two-module alias
   chain.  The syntactic pass sees only [V.gettimeofday] and stays silent;
   the typed engine resolves V -> U -> Unix and flags the occurrence (R1)
   plus its reachability from an entry-scope caller (R7). *)

module U = Unix
module V = U

let now () = V.gettimeofday ()

let step () = now () +. 1.0
