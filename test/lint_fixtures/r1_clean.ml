(* R1 fixture: deterministic equivalents — virtual time and the project
   PRNG — plus benign Sys uses that must not be flagged. *)

let virtual_now sim = Sim.now sim

let dice rng = Prng.int rng 6

let argv_len () = Array.length Sys.argv
