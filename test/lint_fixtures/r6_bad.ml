(* R6 fixture: module-level mutable state, shared across domains once runs
   fan out through Sss_par.Pool.  Expected findings, in order: ref,
   Hashtbl.create, {mutable record}, Array.make, lazy, ref (in submodule). *)

let total_runs = ref 0

let memo = Hashtbl.create 64

type gauge = { mutable current : int; peak : int }

let live_gauge = { current = 0; peak = 0 }

let scratch = Array.make 16 0

let table = lazy (build_table ())

module Counters = struct
  let hits = ref 0
end
