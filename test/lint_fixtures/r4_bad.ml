(* R4 fixture: Hashtbl iteration whose order can leak into results.
   Expected findings, in order: fold, iter. *)

let keys table = Hashtbl.fold (fun k _ acc -> k :: acc) table []

let report table =
  Hashtbl.iter (fun k v -> Stats.note k v) table
