(* R9 fixture: module-level closures over locally created mutable state —
   directly ([lookup]) and via a factory function whose result escapes into
   a toplevel binding ([counter]). *)

let make_counter () =
  let n = ref 0 in
  fun () ->
    incr n;
    !n

let counter = make_counter ()

let lookup =
  let cache = Hashtbl.create 16 in
  fun k -> Hashtbl.mem cache k
