(* R3 fixture: in-place Vclock operations without an ownership marker.
   Expected findings, in order: set_into, max_into, blit, unsafe_of_array. *)

let bump_clock vc i v = Vclock.set_into vc i v

let fold_vote dst src = Vclock.max_into dst src

let overwrite ~src ~dst = Vclock.blit ~src ~dst

let adopt a = Vclock.unsafe_of_array a
