(* R5 fixture, clean twin: emission through the observability sink, string
   building (always legal), and a deliberate CLI print under [@print_ok]. *)

let announce_commit obs ~at txn =
  Sss_obs.Obs.emit obs ~at (Sss_obs.Obs.Txn_commit { txn; node = 0; ro = false })

let describe_queue depth = Printf.sprintf "queue depth: %d" depth

let pp_stall fmt (src, dst) = Format.fprintf fmt "stall %d -> %d" src dst

(* binding-level suppression: a deliberate operator-facing dump *)
let[@print_ok] dump_trace lines = List.iter print_endline lines

(* expression-level suppression also works *)
let last_resort msg = (prerr_endline msg [@print_ok])
