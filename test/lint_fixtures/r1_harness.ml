(* [@wallclock_ok] fixture: harness trees (bin/, bench/, tools/) may
   measure wall clock when annotated; the same annotation buys nothing in
   lib/, where there is no legitimate wall clock. *)

let elapsed () = (Unix.gettimeofday () [@wallclock_ok])
