(* Property-based battery for the substrate data structures: random
   operation sequences against reference models. *)

open Sss_sim
open Sss_data

let tx node local : Ids.txn = { node; local }

(* ---------- Ladder queue vs sorted-list model ----------

   The reference model is a list kept sorted by [(time, key)]; the queue
   must pop in exactly that order.  Pushes respect the simulator's
   no-past-events invariant (never before the last popped time), and the
   delay profile is chosen to cross every rung: sub-window delays land in
   calendar buckets, mid delays exercise the occupancy-bitmap scan, and
   far-future delays go through the overflow heap and its re-anchoring. *)

let eq_record out o = out := (Obj.obj o : float * int) :: !out

let eq_delay d =
  if d < 80 then float_of_int d *. 1e-7 (* in-window: calendar buckets *)
  else if d < 95 then 1e-4 +. (float_of_int (d - 80) *. 1e-5) (* bitmap scan *)
  else 0.01 +. (float_of_int (d - 95) *. 0.2) (* overflow rung *)

let equeue_mixed_ops =
  QCheck.Test.make ~name:"equeue mixed push/pop matches model" ~count:300
    QCheck.(list (option (int_bound 99)))
    (fun ops ->
      (* Some d = push at watermark + profile delay, None = pop *)
      let q = Sss_sim.Equeue.create () in
      let out = ref [] in
      let model = ref [] and watermark = ref 0.0 and next_key = ref 0 in
      let ok =
        List.for_all
          (fun op ->
            match op with
            | Some d ->
                let time = !watermark +. eq_delay d in
                let key = !next_key in
                incr next_key;
                Sss_sim.Equeue.push q ~time ~key (eq_record out) (Obj.repr (time, key));
                model := List.sort compare ((time, key) :: !model);
                true
            | None -> (
                match !model with
                | [] -> not (Sss_sim.Equeue.pop q)
                | ((t, _) as hd) :: rest ->
                    Sss_sim.Equeue.min_time q = t
                    && Sss_sim.Equeue.pop q
                    &&
                    (Sss_sim.Equeue.run_popped q;
                     model := rest;
                     watermark := t;
                     Sss_sim.Equeue.popped_time q = t
                     && (match !out with x :: _ -> x = hd | [] -> false))))
          ops
      in
      ok && Sss_sim.Equeue.length q = List.length !model)

let equeue_spill_bucket =
  (* Many events colliding in one calendar bucket must overflow into the
     spill heap without disturbing the (time, key) order. *)
  QCheck.Test.make ~name:"equeue same-bucket spill keeps order" ~count:50
    QCheck.(list_of_size (Gen.int_range 150 250) (int_bound 9))
    (fun ds ->
      let q = Sss_sim.Equeue.create () in
      let out = ref [] in
      let expect =
        List.mapi (fun i d -> (float_of_int d *. 1e-8, i)) ds |> List.sort compare
      in
      List.iteri
        (fun i d ->
          let time = float_of_int d *. 1e-8 in
          Sss_sim.Equeue.push q ~time ~key:i (eq_record out) (Obj.repr (time, i)))
        ds;
      while Sss_sim.Equeue.pop q do
        Sss_sim.Equeue.run_popped q
      done;
      List.rev !out = expect)

let equeue_arena_reuse =
  (* Fill/drain cycles on one queue: recycled slots must behave exactly
     like fresh ones, and the queue must return to empty every cycle. *)
  QCheck.Test.make ~name:"equeue slot recycling across cycles" ~count:50
    QCheck.(pair (int_range 2 5) (list_of_size (Gen.int_range 20 80) (int_bound 99)))
    (fun (cycles, ds) ->
      let q = Sss_sim.Equeue.create () in
      let base = ref 0.0 and key = ref 0 and ok = ref true in
      for _ = 1 to cycles do
        let out = ref [] in
        let expect =
          List.map
            (fun d ->
              let time = !base +. eq_delay d in
              let k = !key in
              incr key;
              Sss_sim.Equeue.push q ~time ~key:k (eq_record out) (Obj.repr (time, k));
              (time, k))
            ds
          |> List.sort compare
        in
        while Sss_sim.Equeue.pop q do
          Sss_sim.Equeue.run_popped q;
          base := Stdlib.max !base (Sss_sim.Equeue.popped_time q)
        done;
        if List.rev !out <> expect then ok := false;
        if not (Sss_sim.Equeue.is_empty q) then ok := false
      done;
      !ok)

(* ---------- Prng statistical sanity ---------- *)

let test_prng_chi_square_uniform () =
  let g = Prng.create ~seed:99 in
  let buckets = Array.make 10 0 in
  let n = 100_000 in
  for _ = 1 to n do
    let b = Prng.int g 10 in
    buckets.(b) <- buckets.(b) + 1
  done;
  let expected = float_of_int n /. 10.0 in
  let chi2 =
    Array.fold_left
      (fun acc c ->
        let d = float_of_int c -. expected in
        acc +. (d *. d /. expected))
      0.0 buckets
  in
  (* 9 degrees of freedom: chi2 should be far below 30 for a healthy PRNG *)
  Alcotest.(check bool) (Printf.sprintf "chi2=%.1f" chi2) true (chi2 < 30.0)

let test_prng_copy_independent () =
  let a = Prng.create ~seed:5 in
  ignore (Prng.next_int64 a);
  let b = Prng.copy a in
  let xa = Prng.next_int64 a in
  let xb = Prng.next_int64 b in
  Alcotest.(check int64) "copy continues identically" xa xb

let test_prng_shuffle_permutes () =
  let g = Prng.create ~seed:3 in
  let arr = Array.init 20 (fun i -> i) in
  Prng.shuffle g arr;
  let sorted = Array.copy arr in
  Array.sort Int.compare sorted;
  Alcotest.(check (array int)) "same multiset" (Array.init 20 (fun i -> i)) sorted;
  Alcotest.(check bool) "actually shuffled" true (arr <> Array.init 20 (fun i -> i))

(* ---------- Vclock algebra ---------- *)

let vclock_partial_order =
  let vec = QCheck.(list_of_size (Gen.return 5) (int_bound 50)) in
  QCheck.Test.make ~name:"vclock leq is a partial order" ~count:300
    (QCheck.triple vec vec vec)
    (fun (a, b, c) ->
      let va = Vclock.of_array (Array.of_list a) in
      let vb = Vclock.of_array (Array.of_list b) in
      let vc = Vclock.of_array (Array.of_list c) in
      (* reflexive *)
      Vclock.leq va va
      (* antisymmetric *)
      && ((not (Vclock.leq va vb && Vclock.leq vb va)) || Vclock.equal va vb)
      (* transitive *)
      && ((not (Vclock.leq va vb && Vclock.leq vb vc)) || Vclock.leq va vc))

let vclock_concurrent_symmetric =
  let vec = QCheck.(list_of_size (Gen.return 4) (int_bound 20)) in
  QCheck.Test.make ~name:"vclock concurrency is symmetric and irreflexive" ~count:300
    (QCheck.pair vec vec)
    (fun (a, b) ->
      let va = Vclock.of_array (Array.of_list a) in
      let vb = Vclock.of_array (Array.of_list b) in
      Vclock.concurrent va vb = Vclock.concurrent vb va && not (Vclock.concurrent va va))

(* ---------- Nlog: visible_max against a brute-force model ---------- *)

let nlog_visible_max_model =
  QCheck.Test.make ~name:"nlog visible_max matches brute force" ~count:200
    QCheck.(
      pair
        (list_of_size (Gen.int_range 1 30) (pair (int_bound 20) (int_bound 20)))
        (pair (int_bound 25) small_nat))
    (fun (entries, (bound1, cutoff_raw)) ->
      let nodes = 3 in
      let l = Nlog.create ~nodes ~node:0 in
      (* entries applied in increasing local clock; other coords arbitrary *)
      let all = ref [ Array.make nodes 0 ] in
      List.iteri
        (fun i (b, c) ->
          let vc = [| i + 1; b; c |] in
          all := vc :: !all;
          Nlog.add l ~txn:(tx 0 (i + 1)) ~vc:(Vclock.of_array vc) ~ws:[]
            ~at:(float_of_int i))
        entries;
      let has_read = [| false; true; false |] in
      let bound = Vclock.of_array [| max_int; bound1; max_int |] in
      let cutoff = 1 + (cutoff_raw mod (List.length entries + 2)) in
      let got = Nlog.visible_max l ~has_read ~bound ~cutoff in
      (* brute force *)
      let acc = Array.make nodes 0 in
      List.iter
        (fun vc ->
          if vc.(0) < cutoff && vc.(1) <= bound1 then
            for w = 0 to nodes - 1 do
              acc.(w) <- max acc.(w) vc.(w)
            done)
        !all;
      Vclock.equal got (Vclock.of_array acc))

let nlog_prune_preserves_views =
  QCheck.Test.make ~name:"nlog prune never shrinks unconstrained visibility" ~count:100
    QCheck.(list_of_size (Gen.int_range 1 30) (int_bound 20))
    (fun others ->
      let nodes = 2 in
      let l = Nlog.create ~nodes ~node:0 in
      List.iteri
        (fun i b ->
          Nlog.add l ~txn:(tx 0 (i + 1))
            ~vc:(Vclock.of_array [| i + 1; b |])
            ~ws:[] ~at:(float_of_int i))
        others;
      let before =
        Nlog.visible_max l ~has_read:[| false; false |] ~bound:(Vclock.zero nodes)
          ~cutoff:max_int
      in
      Nlog.prune l ~before:(float_of_int (List.length others / 2));
      let after =
        Nlog.visible_max l ~has_read:[| false; false |] ~bound:(Vclock.zero nodes)
          ~cutoff:max_int
      in
      Vclock.leq before after)

(* ---------- Commitq: random puts/updates/removes keep order ---------- *)

let commitq_ordered =
  QCheck.Test.make ~name:"commitq entries always sorted by local clock" ~count:200
    QCheck.(list (pair (int_bound 20) (int_bound 100)))
    (fun ops ->
      let q = Commitq.create ~node:0 in
      List.iteri
        (fun i (who, v) ->
          let txn = tx who i in
          if not (Commitq.mem q txn) then
            Commitq.put q ~txn ~vc:(Vclock.of_array [| v |]);
          if i mod 3 = 0 then
            Commitq.update q ~txn ~vc:(Vclock.of_array [| v + 5 |]);
          if i mod 7 = 0 then Commitq.remove q txn)
        ops;
      let rec sorted = function
        | a :: (b :: _ as rest) ->
            Vclock.get a.Commitq.vc 0 <= Vclock.get b.Commitq.vc 0 && sorted rest
        | _ -> true
      in
      sorted (Commitq.to_list q))

(* ---------- Locks: random acquire/release keeps exclusion ---------- *)

let test_locks_exclusion_invariant () =
  let sim = Sim.create () in
  let t = Locks.create sim in
  let g = Prng.create ~seed:17 in
  let violations = ref 0 in
  for i = 1 to 30 do
    Sim.spawn sim (fun () ->
        let me = tx 0 i in
        for _ = 1 to 20 do
          let k = Prng.int g 4 in
          let mode = if Prng.bool g then Locks.Exclusive else Locks.Shared in
          if Locks.acquire t me mode k ~timeout:0.05 then begin
            (* invariant: exclusive => sole owner *)
            if Locks.holds_exclusive t me k then begin
              for other = 1 to 30 do
                if other <> i && (Locks.holds_exclusive t (tx 0 other) k
                                  || Locks.holds_shared t (tx 0 other) k)
                then incr violations
              done
            end;
            Sim.sleep sim (Prng.float g 0.001);
            Locks.release_txn t me
          end
        done)
  done;
  Sim.run sim;
  Alcotest.(check int) "no exclusion violations" 0 !violations;
  Alcotest.(check int) "all released" 0 (Locks.holder_count t)

(* ---------- Replication invariants ---------- *)

let replication_props =
  QCheck.Test.make ~name:"replication: degree, membership, determinism" ~count:100
    QCheck.(triple (int_range 1 12) (int_range 1 4) (int_range 1 300))
    (fun (nodes, degree_raw, keys) ->
      let degree = 1 + (degree_raw - 1) mod nodes in
      let r1 = Replication.create ~nodes ~degree ~total_keys:keys in
      let r2 = Replication.create ~nodes ~degree ~total_keys:keys in
      let ok = ref true in
      for k = 0 to keys - 1 do
        let reps = Replication.replicas r1 k in
        if List.length (List.sort_uniq Int.compare reps) <> degree then ok := false;
        if Replication.replicas r2 k <> reps then ok := false;
        List.iter (fun n -> if not (Replication.is_replica r1 n k) then ok := false) reps
      done;
      !ok)

(* ---------- Squeue model ---------- *)

let squeue_remove_model =
  QCheck.Test.make ~name:"squeue removal leaves exactly other txns" ~count:200
    QCheck.(list (triple (int_bound 6) (int_bound 30) bool))
    (fun ops ->
      let q = Squeue.create () in
      List.iter
        (fun (who, sid, prop) ->
          if prop then Squeue.insert_propagated q ~txn:(tx who 1) ~sid
          else Squeue.insert_read q ~txn:(tx who 1) ~sid)
        ops;
      (* remove txn 0, then nothing of txn 0 remains and others all do *)
      ignore (Squeue.remove q (tx 0 1));
      let remaining = Squeue.readers q in
      List.for_all (fun e -> e.Squeue.txn.Ids.node <> 0) remaining
      && List.for_all
           (fun (who, sid, _) ->
             who = 0 || List.exists (fun e -> e.Squeue.txn = tx who 1 && e.Squeue.sid = sid) remaining)
           ops)

let () =
  Alcotest.run "props"
    [
      ( "equeue+prng",
        [
          QCheck_alcotest.to_alcotest equeue_mixed_ops;
          QCheck_alcotest.to_alcotest equeue_spill_bucket;
          QCheck_alcotest.to_alcotest equeue_arena_reuse;
          Alcotest.test_case "chi-square uniformity" `Quick test_prng_chi_square_uniform;
          Alcotest.test_case "copy independence" `Quick test_prng_copy_independent;
          Alcotest.test_case "shuffle permutes" `Quick test_prng_shuffle_permutes;
        ] );
      ( "vclock",
        [
          QCheck_alcotest.to_alcotest vclock_partial_order;
          QCheck_alcotest.to_alcotest vclock_concurrent_symmetric;
        ] );
      ( "nlog",
        [
          QCheck_alcotest.to_alcotest nlog_visible_max_model;
          QCheck_alcotest.to_alcotest nlog_prune_preserves_views;
        ] );
      ("commitq", [ QCheck_alcotest.to_alcotest commitq_ordered ]);
      ("locks", [ Alcotest.test_case "exclusion invariant" `Quick test_locks_exclusion_invariant ]);
      ("replication", [ QCheck_alcotest.to_alcotest replication_props ]);
      ("squeue", [ QCheck_alcotest.to_alcotest squeue_remove_model ]);
    ]
