(* Workload-generator tests: Zipfian key popularity, the open-loop arrival
   process (Poisson / Ramp), bounded admission-queue edge cases, and the
   Nlog.prune watermark contract.  The statistical checks use fixed seeds
   and generous tolerances so they are deterministic, not flaky. *)

open Sss_sim
open Sss_data
open Sss_kv
open Sss_workload

(* ---------- Zipfian sampling ---------- *)

(* Rank frequencies are monotone: item [i] is at least as probable as
   item [i+1], and the distribution sums to one. *)
let test_zipf_monotone () =
  let z = Zipf.create ~n:50 ~theta:0.99 in
  let sum = ref 0.0 in
  for i = 0 to 49 do
    sum := !sum +. Zipf.probability z i;
    if i < 49 then
      Alcotest.(check bool)
        (Printf.sprintf "p(%d) >= p(%d)" i (i + 1))
        true
        (Zipf.probability z i >= Zipf.probability z (i + 1))
  done;
  Alcotest.(check bool) "probabilities sum to 1" true (Float.abs (!sum -. 1.0) < 1e-9)

(* theta = 0 is the uniform boundary: every item equally likely. *)
let test_zipf_theta_zero_uniform () =
  let n = 40 in
  let z = Zipf.create ~n ~theta:0.0 in
  for i = 0 to n - 1 do
    Alcotest.(check bool)
      (Printf.sprintf "p(%d) = 1/n" i)
      true
      (Float.abs (Zipf.probability z i -. (1.0 /. float_of_int n)) < 1e-9)
  done

(* Sampled frequencies respect the skew: under theta = 0.99 the top rank is
   drawn far more often than a tail rank, and clearly more often than it
   would be under the uniform boundary. *)
let test_zipf_sample_skew () =
  let n = 50 and draws = 20_000 in
  let freq theta =
    let z = Zipf.create ~n ~theta in
    let rng = Prng.create ~seed:42 in
    let counts = Array.make n 0 in
    for _ = 1 to draws do
      let i = Zipf.sample z rng in
      counts.(i) <- counts.(i) + 1
    done;
    counts
  in
  let skewed = freq 0.99 and uniform = freq 0.0 in
  Alcotest.(check bool)
    (Printf.sprintf "rank 0 (%d) dominates rank 25 (%d)" skewed.(0) skewed.(25))
    true
    (skewed.(0) > 4 * skewed.(25));
  Alcotest.(check bool)
    (Printf.sprintf "skewed head (%d) > 2x uniform head (%d)" skewed.(0) uniform.(0))
    true
    (skewed.(0) > 2 * uniform.(0))

(* Same seed, same sample sequence. *)
let test_zipf_determinism () =
  let draw () =
    let z = Zipf.create ~n:100 ~theta:0.8 in
    let rng = Prng.create ~seed:7 in
    List.init 200 (fun _ -> Zipf.sample z rng)
  in
  Alcotest.(check (list int)) "replay is identical" (draw ()) (draw ())

let test_zipf_invalid_args () =
  Alcotest.check_raises "n = 0 rejected"
    (Invalid_argument "Zipf.create: n must be positive") (fun () ->
      ignore (Zipf.create ~n:0 ~theta:0.5));
  Alcotest.check_raises "negative theta rejected"
    (Invalid_argument "Zipf.create: theta must be non-negative") (fun () ->
      ignore (Zipf.create ~n:10 ~theta:(-0.1)))

(* ---------- Arrival process ---------- *)

(* Poisson: constant instantaneous rate; mean inter-arrival gap 1/rate. *)
let test_poisson_gap_mean () =
  let rate = 500.0 in
  Alcotest.(check (float 1e-9)) "rate is constant" rate
    (Driver.arrival_rate (Driver.Poisson rate) ~at:0.37 ~horizon:1.0);
  let rng = Prng.create ~seed:99 in
  let draws = 20_000 in
  let sum = ref 0.0 in
  for _ = 1 to draws do
    let gap = Driver.arrival_gap (Driver.Poisson rate) rng ~at:0.0 ~horizon:1.0 in
    Alcotest.(check bool) "gaps are positive" true (gap > 0.0);
    sum := !sum +. gap
  done;
  let mean = !sum /. float_of_int draws in
  Alcotest.(check bool)
    (Printf.sprintf "mean gap %.6f within 5%% of %.6f" mean (1.0 /. rate))
    true
    (Float.abs (mean -. (1.0 /. rate)) < 0.05 /. rate)

(* Ramp: the instantaneous rate interpolates linearly over the horizon and
   clamps outside it. *)
let test_ramp_interpolation () =
  let a = Driver.Ramp { from_rate = 100.0; to_rate = 300.0 } in
  let rate at = Driver.arrival_rate a ~at ~horizon:1.0 in
  Alcotest.(check (float 1e-9)) "start" 100.0 (rate 0.0);
  Alcotest.(check (float 1e-9)) "midpoint" 200.0 (rate 0.5);
  Alcotest.(check (float 1e-9)) "end" 300.0 (rate 1.0);
  Alcotest.(check (float 1e-9)) "clamped past the end" 300.0 (rate 2.0);
  (* a ramp's gaps drawn near the end are shorter on average than near the
     start (sanity: the gap draw uses the instantaneous rate) *)
  let mean_gap at =
    let rng = Prng.create ~seed:5 in
    let sum = ref 0.0 in
    for _ = 1 to 5_000 do
      sum := !sum +. Driver.arrival_gap a rng ~at ~horizon:1.0
    done;
    !sum /. 5_000.0
  in
  Alcotest.(check bool) "gaps shrink along the ramp" true (mean_gap 0.9 < mean_gap 0.1)

(* The arrival stream is a seeded private stream: same seed, same gaps. *)
let test_arrival_determinism () =
  let draw () =
    let rng = Prng.create ~seed:1234 in
    List.init 100 (fun i ->
        Driver.arrival_gap
          (Driver.Ramp { from_rate = 50.0; to_rate = 200.0 })
          rng
          ~at:(float_of_int i *. 0.01)
          ~horizon:1.0)
  in
  Alcotest.(check (list (float 0.0))) "replay is identical" (draw ()) (draw ())

let test_arrival_invalid_rate () =
  let rng = Prng.create ~seed:1 in
  Alcotest.check_raises "zero rate rejected"
    (Invalid_argument "Driver.arrival_gap: arrival rate must be positive") (fun () ->
      ignore (Driver.arrival_gap (Driver.Poisson 0.0) rng ~at:0.0 ~horizon:1.0));
  Alcotest.check_raises "ramp through zero rejected"
    (Invalid_argument "Driver.arrival_gap: arrival rate must be positive") (fun () ->
      ignore
        (Driver.arrival_gap
           (Driver.Ramp { from_rate = 0.0; to_rate = 100.0 })
           rng ~at:0.0 ~horizon:1.0))

(* ---------- qcheck properties over the generator space ---------- *)

let zipf_property =
  QCheck.Test.make ~name:"zipf: monotone pmf summing to 1, samples in range" ~count:100
    QCheck.(pair (int_range 1 200) (int_bound 200))
    (fun (n, theta_pct) ->
      let theta = float_of_int theta_pct /. 100.0 in
      let z = Zipf.create ~n ~theta in
      let sum = ref 0.0 in
      let mono = ref true in
      for i = 0 to n - 1 do
        sum := !sum +. Zipf.probability z i;
        if i > 0 && Zipf.probability z (i - 1) < Zipf.probability z i -. 1e-12 then
          mono := false
      done;
      let rng = Prng.create ~seed:(n + (1000 * theta_pct)) in
      let in_range = ref true in
      for _ = 1 to 50 do
        let s = Zipf.sample z rng in
        if s < 0 || s >= n then in_range := false
      done;
      !mono && !in_range && Float.abs (!sum -. 1.0) < 1e-6)

let arrival_property =
  QCheck.Test.make ~name:"arrival gaps: positive and seed-deterministic" ~count:100
    QCheck.(triple (int_range 1 1_000_000) (int_range 1 100_000) (int_range 1 100))
    (fun (seed, rate_i, steps) ->
      let rate = float_of_int rate_i in
      let arrivals =
        [ Driver.Poisson rate; Driver.Ramp { from_rate = rate; to_rate = 2.0 *. rate } ]
      in
      List.for_all
        (fun a ->
          let draw () =
            let rng = Prng.create ~seed in
            List.init steps (fun i ->
                Driver.arrival_gap a rng ~at:(float_of_int i *. 1e-4) ~horizon:1.0)
          in
          let g1 = draw () and g2 = draw () in
          List.for_all (fun g -> g > 0.0) g1 && g1 = g2)
        arrivals)

let ramp_bounded_property =
  QCheck.Test.make ~name:"ramp rate stays within its endpoints" ~count:200
    QCheck.(triple (int_range 1 1000) (int_range 1 1000) (int_bound 400))
    (fun (f, t, at_pct) ->
      let lo = float_of_int (min f t) and hi = float_of_int (max f t) in
      let a = Driver.Ramp { from_rate = float_of_int f; to_rate = float_of_int t } in
      let r = Driver.arrival_rate a ~at:(float_of_int at_pct /. 100.0) ~horizon:1.0 in
      r >= lo -. 1e-9 && r <= hi +. 1e-9)

(* ---------- Open-loop admission queue ---------- *)

let open_loop_run ~queue_capacity ~workers ~rate ~seed =
  let sim = Sim.create () in
  let nodes = 2 and keys = 16 in
  let config =
    { Config.default with nodes; replication_degree = 1; total_keys = keys; seed }
  in
  let cl = Kv.create sim config in
  let ops =
    {
      Driver.begin_txn = (fun ~node ~read_only -> Kv.begin_txn cl ~node ~read_only);
      read = Kv.read;
      write = Kv.write;
      commit = Kv.commit;
    }
  in
  let result =
    Driver.run sim ~nodes ~total_keys:keys
      ~local_keys:(fun n -> Replication.keys_at cl.State.repl n)
      ~profile:(Driver.paper_profile ~read_only_ratio:0.5)
      ~load:
        {
          Driver.default_load with
          warmup = 0.005;
          duration = 0.05;
          seed;
          open_loop =
            Some
              {
                Driver.arrival = Driver.Poisson rate;
                queue_capacity;
                workers_per_node = workers;
              };
        }
      ~ops
  in
  (cl, result)

(* Capacity 0 is a pure-loss system: every arrival is rejected, nothing is
   admitted, nothing commits — but the offered load is still counted. *)
let test_queue_capacity_zero () =
  let cl, (r : Driver.result) = open_loop_run ~queue_capacity:0 ~workers:2 ~rate:2_000.0 ~seed:3 in
  Alcotest.(check bool) "arrivals were offered" true (r.offered > 50);
  Alcotest.(check int) "none accepted" 0 r.accepted;
  Alcotest.(check int) "all rejected" r.offered r.rejected;
  Alcotest.(check int) "none committed" 0 r.committed;
  (match Kv.quiescent cl with
  | Ok () -> ()
  | Error m -> Alcotest.fail ("quiescent: " ^ m))

(* Capacity 1 admits work but sheds most of an overload; the admission
   accounting is exact: offered = accepted + rejected, and only accepted
   work can commit. *)
let test_queue_capacity_one () =
  let _, (r : Driver.result) = open_loop_run ~queue_capacity:1 ~workers:1 ~rate:5_000.0 ~seed:4 in
  Alcotest.(check bool) "arrivals were offered" true (r.offered > 100);
  Alcotest.(check int) "offered = accepted + rejected" r.offered (r.accepted + r.rejected);
  Alcotest.(check bool) "some work admitted" true (r.accepted > 0);
  Alcotest.(check bool) "overload is shed" true (r.rejected > 0);
  Alcotest.(check bool)
    (Printf.sprintf "committed %d <= accepted %d" r.committed r.accepted)
    true
    (r.committed <= r.accepted)

(* An uncontended run (ample queue, modest rate) rejects nothing, and the
   sojourn of every committed transaction decomposes into queueing plus
   service. *)
let test_queue_uncontended_accounting () =
  let _, (r : Driver.result) = open_loop_run ~queue_capacity:64 ~workers:8 ~rate:500.0 ~seed:5 in
  Alcotest.(check int) "nothing rejected" 0 r.rejected;
  Alcotest.(check int) "everything accepted" r.offered r.accepted;
  Alcotest.(check bool) "made progress" true (r.committed > 10);
  let mean s = Stats.mean s in
  Alcotest.(check bool)
    (Printf.sprintf "mean sojourn %.6f >= mean service %.6f" (mean r.sojourn)
       (mean r.service))
    true
    (mean r.sojourn >= mean r.service -. 1e-12);
  Alcotest.(check (float 1e-9)) "sojourn = queue wait + service"
    (mean r.sojourn)
    (mean r.queue_wait +. mean r.service)

(* Same seed, same open-loop trajectory: the arrival stream is private and
   seeded, so replays are exactly identical. *)
let test_open_loop_determinism () =
  let snap () =
    let _, (r : Driver.result) = open_loop_run ~queue_capacity:4 ~workers:2 ~rate:3_000.0 ~seed:6 in
    (r.offered, r.accepted, r.rejected, r.committed, Stats.mean r.sojourn)
  in
  let o1, a1, j1, c1, s1 = snap () and o2, a2, j2, c2, s2 = snap () in
  Alcotest.(check int) "offered replays" o1 o2;
  Alcotest.(check int) "accepted replays" a1 a2;
  Alcotest.(check int) "rejected replays" j1 j2;
  Alcotest.(check int) "committed replays" c1 c2;
  Alcotest.(check bool) "sojourn replays" true (s1 = s2)

(* Closed-loop runs report no open-loop traffic at all: the admission
   counters exist only when the arrival engine is on. *)
let test_closed_loop_counters_zero () =
  let sim = Sim.create () in
  let nodes = 2 and keys = 16 in
  let config =
    { Config.default with nodes; replication_degree = 1; total_keys = keys; seed = 8 }
  in
  let cl = Kv.create sim config in
  let ops =
    {
      Driver.begin_txn = (fun ~node ~read_only -> Kv.begin_txn cl ~node ~read_only);
      read = Kv.read;
      write = Kv.write;
      commit = Kv.commit;
    }
  in
  let (r : Driver.result) =
    Driver.run sim ~nodes ~total_keys:keys
      ~local_keys:(fun n -> Replication.keys_at cl.State.repl n)
      ~profile:(Driver.paper_profile ~read_only_ratio:0.5)
      ~load:{ Driver.default_load with warmup = 0.005; duration = 0.02; seed = 8 }
      ~ops
  in
  Alcotest.(check int) "offered = 0" 0 r.offered;
  Alcotest.(check int) "accepted = 0" 0 r.accepted;
  Alcotest.(check int) "rejected = 0" 0 r.rejected;
  Alcotest.(check bool) "but the closed loop committed" true (r.committed > 10)

(* ---------- Nlog.prune watermark contract ---------- *)

(* [prune ?watermark] documents that callers must not drop entries a live
   transaction still needs; passing the cluster watermark turns that
   contract into a debug assertion.  Violating it must trip. *)
let test_nlog_prune_watermark_trips () =
  let txn local = { Ids.node = 0; local } in
  (* three entries past genesis: prune keeps the newest plus one floor
     entry, so the genesis AND the [1;0] entry get dropped — and [1;0] is
     not covered by the zero watermark *)
  let log = Nlog.create ~nodes:2 ~node:0 in
  Nlog.add log ~txn:(txn 1) ~vc:(Vclock.of_array [| 1; 0 |]) ~ws:[ 0 ] ~at:0.001;
  Nlog.add log ~txn:(txn 2) ~vc:(Vclock.of_array [| 2; 0 |]) ~ws:[ 1 ] ~at:0.002;
  Nlog.add log ~txn:(txn 3) ~vc:(Vclock.of_array [| 3; 0 |]) ~ws:[ 0 ] ~at:0.003;
  (* watermark below the entries about to be dropped: the contract is
     violated, the debug assertion must fire *)
  let tripped =
    try
      Nlog.prune ~watermark:(Vclock.zero 2) log ~before:0.01;
      false
    with Assert_failure _ -> true
  in
  Alcotest.(check bool) "violating the prune contract trips the assertion" true tripped;
  (* and a watermark that does cover the dropped entries passes *)
  let log2 = Nlog.create ~nodes:2 ~node:0 in
  Nlog.add log2 ~txn:(txn 4) ~vc:(Vclock.of_array [| 1; 0 |]) ~ws:[ 0 ] ~at:0.001;
  Nlog.add log2 ~txn:(txn 5) ~vc:(Vclock.of_array [| 2; 0 |]) ~ws:[ 1 ] ~at:0.002;
  Nlog.add log2 ~txn:(txn 6) ~vc:(Vclock.of_array [| 3; 0 |]) ~ws:[ 0 ] ~at:0.003;
  let before = Nlog.size log2 in
  Nlog.prune ~watermark:(Vclock.of_array [| 5; 5 |]) log2 ~before:0.01;
  Alcotest.(check bool) "covered prune is accepted and drops entries" true
    (Nlog.size log2 < before && Nlog.size log2 >= 1)

let () =
  Alcotest.run "workload"
    [
      ( "zipf",
        [
          Alcotest.test_case "rank frequencies monotone" `Quick test_zipf_monotone;
          Alcotest.test_case "theta 0 = uniform" `Quick test_zipf_theta_zero_uniform;
          Alcotest.test_case "sampled skew" `Quick test_zipf_sample_skew;
          Alcotest.test_case "seeded determinism" `Quick test_zipf_determinism;
          Alcotest.test_case "invalid args rejected" `Quick test_zipf_invalid_args;
        ] );
      ( "arrivals",
        [
          Alcotest.test_case "poisson gap mean" `Quick test_poisson_gap_mean;
          Alcotest.test_case "ramp interpolation" `Quick test_ramp_interpolation;
          Alcotest.test_case "seeded determinism" `Quick test_arrival_determinism;
          Alcotest.test_case "non-positive rate rejected" `Quick test_arrival_invalid_rate;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest zipf_property;
          QCheck_alcotest.to_alcotest arrival_property;
          QCheck_alcotest.to_alcotest ramp_bounded_property;
        ] );
      ( "admission-queue",
        [
          Alcotest.test_case "capacity 0 is pure loss" `Quick test_queue_capacity_zero;
          Alcotest.test_case "capacity 1 sheds overload" `Quick test_queue_capacity_one;
          Alcotest.test_case "uncontended accounting" `Quick test_queue_uncontended_accounting;
          Alcotest.test_case "open-loop determinism" `Quick test_open_loop_determinism;
          Alcotest.test_case "closed loop has no admission counters" `Quick
            test_closed_loop_counters_zero;
        ] );
      ( "nlog-prune",
        [
          Alcotest.test_case "watermark contract trips" `Quick
            test_nlog_prune_watermark_trips;
        ] );
    ]
