(* Fail-stop-recover chaos: with [Config.durability] on, a node crash
   discards volatile state (Chaos [on_crash] -> crash_node) and the restart
   replays the write-ahead log (on_restart -> restart_node).  Every system
   must come back to a checker-accepted history — including no torn
   commits — across a seed sweep, with the crash landing mid-workload where
   group commits are continuously in flight.  SSS read-only transactions
   must still never abort.  And with durability OFF the hooks must change
   nothing: the off trajectory is byte-identical whether or not the crash
   hooks are wired. *)

open Sss_sim
open Sss_consistency
module Chaos = Sss_chaos.Chaos
module Driver = Sss_workload.Driver

(* crash node 2 mid-window; recovery gets ~a third of the run to finish
   and prove liveness afterwards *)
let crash_plan ~seed =
  {
    Chaos.seed;
    rules = [];
    events = [ Chaos.Crash { at = 0.015; restart_at = Some 0.019; node = 2 } ];
  }

let durable_config ~degree ~seed =
  {
    Sss_kv.Config.default with
    nodes = 4;
    replication_degree = degree;
    total_keys = 24;
    seed;
    fault_tolerance = true;
    durability = true;
  }

let load ~seed =
  { Driver.default_load with clients_per_node = 2; warmup = 0.005; duration = 0.03; seed }

let drive sim ~seed ~ops =
  Driver.run sim ~nodes:4 ~total_keys:24
    ~local_keys:(fun _ -> [||])
    ~profile:(Driver.paper_profile ~read_only_ratio:0.5)
    ~load:(load ~seed) ~ops

type outcome = {
  committed : int;
  checks : (string * (unit, string) result) list;
  history : History.t;
  events_processed : int;
  chaos_stats : Chaos.stats;
}

let run_sss ?(durability = true) ?(wire_hooks = true) ~plan ~seed () =
  let sim = Sim.create () in
  let config = { (durable_config ~degree:2 ~seed) with durability } in
  let cl = Sss_kv.Kv.create sim config in
  let h =
    if wire_hooks then
      Chaos.install sim (Sss_kv.Kv.network cl) ~kind_of:Sss_kv.Message.kind_name
        ~on_crash:(Sss_kv.Kv.crash_node cl)
        ~on_restart:(Sss_kv.Kv.restart_node cl)
        plan
    else Chaos.install sim (Sss_kv.Kv.network cl) ~kind_of:Sss_kv.Message.kind_name plan
  in
  let result =
    drive sim ~seed
      ~ops:
        {
          Driver.begin_txn = (fun ~node ~read_only -> Sss_kv.Kv.begin_txn cl ~node ~read_only);
          read = Sss_kv.Kv.read;
          write = Sss_kv.Kv.write;
          commit = Sss_kv.Kv.commit;
        }
  in
  let history = Sss_kv.Kv.history cl in
  {
    committed = result.Driver.committed;
    checks =
      [
        ("sss external-consistency", Checker.external_consistency history);
        ("sss serializability", Checker.serializability history);
        ("sss no-lost-updates", Checker.no_lost_updates history);
        ("sss no-torn-commits", Checker.no_torn_commits history);
        ("sss ro-abort-free", Checker.read_only_abort_free history);
      ];
    history;
    events_processed = Sim.events_processed sim;
    chaos_stats = Chaos.stats h;
  }

let run_twopc ~plan ~seed =
  let sim = Sim.create () in
  let cl = Twopc_kv.Twopc.create sim (durable_config ~degree:2 ~seed) in
  let h =
    Chaos.install sim (Twopc_kv.Twopc.network cl) ~kind_of:Twopc_kv.Twopc.message_kind
      ~on_crash:(Twopc_kv.Twopc.crash_node cl)
      ~on_restart:(Twopc_kv.Twopc.restart_node cl)
      plan
  in
  let result =
    drive sim ~seed
      ~ops:
        {
          Driver.begin_txn =
            (fun ~node ~read_only -> Twopc_kv.Twopc.begin_txn cl ~node ~read_only);
          read = Twopc_kv.Twopc.read;
          write = Twopc_kv.Twopc.write;
          commit = Twopc_kv.Twopc.commit;
        }
  in
  let history = Twopc_kv.Twopc.history cl in
  {
    committed = result.Driver.committed;
    checks =
      [
        ("2pc external-consistency", Checker.external_consistency history);
        ("2pc no-lost-updates", Checker.no_lost_updates history);
        ("2pc no-torn-commits", Checker.no_torn_commits history);
      ];
    history;
    events_processed = Sim.events_processed sim;
    chaos_stats = Chaos.stats h;
  }

let run_walter ~plan ~seed =
  let sim = Sim.create () in
  let cl = Walter_kv.Walter.create sim (durable_config ~degree:2 ~seed) in
  let h =
    Chaos.install sim (Walter_kv.Walter.network cl) ~kind_of:Walter_kv.Walter.message_kind
      ~on_crash:(Walter_kv.Walter.crash_node cl)
      ~on_restart:(Walter_kv.Walter.restart_node cl)
      plan
  in
  let result =
    drive sim ~seed
      ~ops:
        {
          Driver.begin_txn =
            (fun ~node ~read_only -> Walter_kv.Walter.begin_txn cl ~node ~read_only);
          read = Walter_kv.Walter.read;
          write = Walter_kv.Walter.write;
          commit = Walter_kv.Walter.commit;
        }
  in
  let history = Walter_kv.Walter.history cl in
  {
    committed = result.Driver.committed;
    checks =
      [
        ("walter no-lost-updates", Checker.no_lost_updates history);
        ("walter no-torn-commits", Checker.no_torn_commits history);
        ("walter ro-abort-free", Checker.read_only_abort_free history);
      ];
    history;
    events_processed = Sim.events_processed sim;
    chaos_stats = Chaos.stats h;
  }

let run_rococo ~plan ~seed =
  let sim = Sim.create () in
  let cl = Rococo_kv.Rococo.create sim (durable_config ~degree:1 ~seed) in
  let h =
    Chaos.install sim (Rococo_kv.Rococo.network cl) ~kind_of:Rococo_kv.Rococo.message_kind
      ~on_crash:(Rococo_kv.Rococo.crash_node cl)
      ~on_restart:(Rococo_kv.Rococo.restart_node cl)
      plan
  in
  let result =
    drive sim ~seed
      ~ops:
        {
          Driver.begin_txn =
            (fun ~node ~read_only -> Rococo_kv.Rococo.begin_txn cl ~node ~read_only);
          read = Rococo_kv.Rococo.read;
          write = Rococo_kv.Rococo.write;
          commit = Rococo_kv.Rococo.commit;
        }
  in
  let history = Rococo_kv.Rococo.history cl in
  {
    committed = result.Driver.committed;
    checks =
      [
        ("rococo serializability", Checker.serializability history);
        ("rococo no-lost-updates", Checker.no_lost_updates history);
        ("rococo no-torn-commits", Checker.no_torn_commits history);
      ];
    history;
    events_processed = Sim.events_processed sim;
    chaos_stats = Chaos.stats h;
  }

let systems =
  [
    ("sss", fun ~plan ~seed -> run_sss ~plan ~seed ());
    ("2pc", run_twopc);
    ("walter", run_walter);
    ("rococo", run_rococo);
  ]

let assert_recovered name seed (o : outcome) =
  if o.chaos_stats.Chaos.crashes <> 1 || o.chaos_stats.Chaos.restarts <> 1 then
    Alcotest.failf "%s seed=%d: crash/restart did not fire" name seed;
  List.iter
    (fun (check, res) ->
      match res with
      | Ok () -> ()
      | Error msg -> Alcotest.failf "%s seed=%d %s: %s" name seed check msg)
    o.checks;
  (* liveness: work committed after the restart *)
  let after_restart =
    List.exists
      (fun (s : History.stamped) ->
        match s.History.event with
        | History.Commit _ -> s.History.at > 0.019
        | _ -> false)
      (History.events o.history)
  in
  if not after_restart then Alcotest.failf "%s seed=%d: nothing committed after recovery" name seed

(* ---------- the sweep: every system, 10 seeds, crash mid-run ---------- *)

let test_crash_recovery_sweep () =
  let total = ref 0 in
  for seed = 1 to 10 do
    List.iter
      (fun (name, run) ->
        let o = run ~plan:(crash_plan ~seed) ~seed in
        total := !total + o.committed;
        assert_recovered name seed o)
      systems
  done;
  if !total = 0 then Alcotest.fail "durable sweep committed nothing"

(* mid-group-commit precision: land crashes on a dense grid around the
   default fsync latency so some hit with flushes in flight *)
let test_sss_crash_grid () =
  List.iteri
    (fun i at ->
      let seed = 100 + i in
      let plan =
        {
          Chaos.seed;
          rules = [];
          events = [ Chaos.Crash { at; restart_at = Some (at +. 0.004); node = 1 } ];
        }
      in
      let o = run_sss ~plan ~seed () in
      if o.chaos_stats.Chaos.crashes <> 1 then Alcotest.failf "grid %d: crash did not fire" i;
      List.iter
        (fun (check, res) ->
          match res with
          | Ok () -> ()
          | Error msg -> Alcotest.failf "grid at=%.6f %s: %s" at check msg)
        o.checks)
    [ 0.0100; 0.01002; 0.01004; 0.01006; 0.01008; 0.0101 ]

(* SSS read-only abort-freedom survives durability + crash: no RO abort
   events, and RO work actually committed *)
let test_sss_ro_abort_free_durable () =
  for seed = 1 to 10 do
    let o = run_sss ~plan:(crash_plan ~seed) ~seed () in
    let ro_txns = Hashtbl.create 64 in
    let ro_aborts = ref 0 and ro_commits = ref 0 in
    List.iter
      (fun (s : History.stamped) ->
        match s.History.event with
        | History.Begin { txn; ro = true; _ } -> Hashtbl.replace ro_txns txn ()
        | History.Abort { txn } -> if Hashtbl.mem ro_txns txn then incr ro_aborts
        | History.Commit { txn; _ } -> if Hashtbl.mem ro_txns txn then incr ro_commits
        | _ -> ())
      (History.events o.history);
    Alcotest.(check int) (Printf.sprintf "seed %d: RO aborts" seed) 0 !ro_aborts;
    if !ro_commits = 0 then Alcotest.failf "seed %d: no RO transaction committed" seed
  done

(* ---------- determinism: a durable crashy run replays byte-identically ---------- *)

let test_deterministic_replay () =
  List.iter
    (fun (name, run) ->
      let seed = 7 in
      let a = run ~plan:(crash_plan ~seed) ~seed in
      let b = run ~plan:(crash_plan ~seed) ~seed in
      Alcotest.(check int) (name ^ ": events processed") a.events_processed b.events_processed;
      if History.events a.history <> History.events b.history then
        Alcotest.failf "%s: durable histories diverge between identical runs" name)
    systems

(* ---------- durability off: the hooks are inert ---------- *)

let test_off_trajectory_unchanged () =
  let seed = 7 in
  (* without durability, crash_node/restart_node fall back to the NIC-only
     fault: wiring the hooks must not move a single event *)
  let bare = run_sss ~durability:false ~wire_hooks:false ~plan:(crash_plan ~seed) ~seed () in
  let hooked = run_sss ~durability:false ~wire_hooks:true ~plan:(crash_plan ~seed) ~seed () in
  Alcotest.(check int) "events identical" bare.events_processed hooked.events_processed;
  if History.events bare.history <> History.events hooked.history then
    Alcotest.fail "durability=off trajectory depends on hook wiring"

let () =
  Alcotest.run "durability"
    [
      ( "recovery",
        [
          Alcotest.test_case "crash-recovery sweep" `Quick test_crash_recovery_sweep;
          Alcotest.test_case "sss crash grid" `Quick test_sss_crash_grid;
          Alcotest.test_case "sss ro abort-free" `Quick test_sss_ro_abort_free_durable;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "deterministic replay" `Quick test_deterministic_replay;
          Alcotest.test_case "off trajectory unchanged" `Quick test_off_trajectory_unchanged;
        ] );
    ]
