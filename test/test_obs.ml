(* Tests for the observability layer (lib/obs): histogram and trace-ring
   unit/property tests, trace-driven assertions over a real SSS run, and
   the observer-effect contract — observe=true must not change a
   trajectory, observe=false must not even allocate a sink. *)

open Sss_sim
open Sss_data
open Sss_kv
open Sss_consistency
module Obs = Sss_obs.Obs
module Hist = Sss_obs.Hist

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  nl = 0 || go 0

(* ---------- histograms: bucket boundaries ---------- *)

let test_hist_buckets () =
  let h = Hist.create ~lo:1.0 ~ratio:2.0 ~buckets:4 () in
  (* buckets: [0,1) [1,2) [2,4) [4,inf) *)
  Alcotest.(check int) "below lo" 0 (Hist.bucket_of h 0.5);
  Alcotest.(check int) "at lo" 1 (Hist.bucket_of h 1.0);
  Alcotest.(check int) "inside bucket 1" 1 (Hist.bucket_of h 1.999);
  Alcotest.(check int) "at edge 2" 2 (Hist.bucket_of h 2.0);
  Alcotest.(check int) "last bucket lower edge" 3 (Hist.bucket_of h 4.0);
  Alcotest.(check int) "last bucket absorbs" 3 (Hist.bucket_of h 1e12);
  Alcotest.(check (pair (float 0.0) (float 0.0))) "bucket 0 bounds" (0.0, 1.0)
    (Hist.bucket_bounds h 0);
  let lo3, hi3 = Hist.bucket_bounds h 3 in
  Alcotest.(check (float 0.0)) "last lower" 4.0 lo3;
  Alcotest.(check bool) "last upper is inf" true (hi3 = infinity)

let test_hist_stats () =
  let h = Hist.create ~lo:1.0 ~ratio:2.0 ~buckets:4 () in
  List.iter (Hist.observe h) [ 0.5; 1.5; 3.0; 6.0 ];
  Alcotest.(check int) "count" 4 (Hist.count h);
  Alcotest.(check (float 1e-9)) "sum" 11.0 (Hist.sum h);
  Alcotest.(check (float 1e-9)) "mean" 2.75 (Hist.mean h);
  Alcotest.(check (float 1e-9)) "min" 0.5 (Hist.min_value h);
  Alcotest.(check (float 1e-9)) "max" 6.0 (Hist.max_value h);
  Alcotest.(check (list int)) "per-bucket counts" [ 1; 1; 1; 1 ]
    (Array.to_list (Hist.counts h));
  (* negative values clamp to 0 instead of being lost *)
  Hist.observe h (-3.0);
  Alcotest.(check int) "negative clamped into bucket 0" 2 (Hist.counts h).(0);
  Alcotest.(check (float 1e-9)) "clamped min" 0.0 (Hist.min_value h)

let test_hist_percentile () =
  let h = Hist.create ~lo:1.0 ~ratio:2.0 ~buckets:4 () in
  Alcotest.(check (float 0.0)) "empty percentile" 0.0 (Hist.percentile h 0.5);
  for _ = 1 to 99 do Hist.observe h 1.5 done;
  Hist.observe h 6.0;
  (* p50 rank lands in bucket [1,2): reported as that bucket's upper edge *)
  Alcotest.(check (float 1e-9)) "p50 bucket upper edge" 2.0 (Hist.percentile h 0.5);
  (* p100 lands in the last occupied bucket; its upper edge (inf for the
     overflow bucket) clamps to the observed max *)
  Alcotest.(check (float 1e-9)) "p100 clamps to vmax" 6.0 (Hist.percentile h 1.0);
  Alcotest.check_raises "p out of range"
    (Invalid_argument "Hist.percentile: p outside (0, 1]") (fun () ->
      ignore (Hist.percentile h 1.5))

let test_hist_merge () =
  let mk () = Hist.create ~lo:1.0 ~ratio:2.0 ~buckets:4 () in
  let a = mk () and b = mk () in
  List.iter (Hist.observe a) [ 0.5; 3.0 ];
  List.iter (Hist.observe b) [ 1.5; 9.0 ];
  let m = Hist.merge a b in
  Alcotest.(check int) "merged count" 4 (Hist.count m);
  Alcotest.(check (float 1e-9)) "merged sum" 14.0 (Hist.sum m);
  Alcotest.(check (float 1e-9)) "merged min" 0.5 (Hist.min_value m);
  Alcotest.(check (float 1e-9)) "merged max" 9.0 (Hist.max_value m);
  Alcotest.(check (list int)) "merged buckets" [ 1; 1; 1; 1 ]
    (Array.to_list (Hist.counts m));
  let odd = Hist.create ~lo:1.0 ~ratio:2.0 ~buckets:6 () in
  Alcotest.check_raises "shape mismatch"
    (Invalid_argument "Hist.merge: shape mismatch") (fun () ->
      ignore (Hist.merge a odd))

(* ---------- histogram properties ---------- *)

let pos_floats = QCheck.(list_of_size Gen.(int_range 0 200) (float_bound_exclusive 1e6))

let prop_count_preserved =
  QCheck.Test.make ~name:"hist: total bucket count = observations" ~count:200
    pos_floats (fun xs ->
      let h = Hist.create () in
      List.iter (Hist.observe h) xs;
      Array.fold_left ( + ) 0 (Hist.counts h) = List.length xs
      && Hist.count h = List.length xs)

let prop_bucket_monotone =
  QCheck.Test.make ~name:"hist: bucket_of monotone in the value" ~count:500
    QCheck.(pair (float_bound_exclusive 1e9) (float_bound_exclusive 1e9))
    (fun (a, b) ->
      let h = Hist.create () in
      let lo = Float.min a b and hi = Float.max a b in
      Hist.bucket_of h lo <= Hist.bucket_of h hi)

let prop_merge_is_concat =
  QCheck.Test.make ~name:"hist: merge = observing the concatenation" ~count:100
    QCheck.(pair pos_floats pos_floats) (fun (xs, ys) ->
      let mk l =
        let h = Hist.create () in
        List.iter (Hist.observe h) l;
        h
      in
      let merged = Hist.merge (mk xs) (mk ys) in
      let both = mk (xs @ ys) in
      Hist.counts merged = Hist.counts both [@poly_ok]
      && Hist.count merged = Hist.count both)

(* ---------- the trace ring ---------- *)

let ev i = Obs.Vclock_advance { node = 0; value = i }

let test_ring_basic () =
  let o = Obs.create ~capacity:4 () in
  for i = 1 to 3 do Obs.emit o ~at:(float_of_int i) (ev i) done;
  Alcotest.(check int) "emitted" 3 (Obs.emitted o);
  Alcotest.(check int) "nothing dropped" 0 (Obs.dropped o);
  Alcotest.(check (list int)) "seq 0,1,2" [ 0; 1; 2 ]
    (List.map (fun (s : Obs.stamped) -> s.seq) (Obs.events o))

let test_ring_wraparound () =
  let o = Obs.create ~capacity:4 () in
  for i = 1 to 10 do Obs.emit o ~at:(float_of_int i) (ev i) done;
  Alcotest.(check int) "emitted" 10 (Obs.emitted o);
  Alcotest.(check int) "dropped = emitted - capacity" 6 (Obs.dropped o);
  let seqs = List.map (fun (s : Obs.stamped) -> s.seq) (Obs.events o) in
  Alcotest.(check (list int)) "retains the newest, oldest first" [ 6; 7; 8; 9 ] seqs;
  let ats = List.map (fun (s : Obs.stamped) -> s.at) (Obs.events o) in
  Alcotest.(check (list (float 0.0))) "timestamps follow" [ 7.0; 8.0; 9.0; 10.0 ] ats

let test_counters_and_gauges () =
  let o = Obs.create () in
  Obs.incr o "b";
  Obs.incr o "a";
  Obs.incr o "b";
  Obs.add o "a" 10;
  Alcotest.(check int) "counter a" 11 (Obs.counter o "a");
  Alcotest.(check int) "unknown counter" 0 (Obs.counter o "zzz");
  Alcotest.(check (list (pair string int))) "sorted read-back"
    [ ("a", 11); ("b", 2) ] (Obs.counters o);
  Obs.gauge_set o "depth" 3;
  Obs.gauge_set o "depth" 7;
  Obs.gauge_set o "depth" 2;
  Alcotest.(check (list (pair string (pair int int)))) "gauge current+peak"
    [ ("depth", (2, 7)) ] (Obs.gauges o)

let test_json_shapes () =
  let o = Obs.create ~capacity:8 () in
  Obs.incr o "txn.commit.ro";
  Obs.observe o "lat.txn.ro" 0.001;
  Obs.gauge_set o "net.queue.node0" 2;
  Obs.emit o ~at:0.5 (Obs.Txn_commit { txn = "t<0,1>"; node = 0; ro = true });
  let m = Obs.metrics_json o in
  List.iter
    (fun needle ->
      Alcotest.(check bool)
        (Printf.sprintf "metrics has %s" needle)
        true
        (contains ~needle m))
    [ "\"counters\""; "\"histograms\""; "\"gauges\""; "\"trace\""; "txn.commit.ro" ];
  let lines = String.split_on_char '\n' (String.trim (Obs.trace_jsonl o)) in
  Alcotest.(check int) "one line per retained event" 1 (List.length lines);
  List.iter
    (fun l ->
      Alcotest.(check bool) "line is a JSON object" true
        (String.length l > 2 && l.[0] = '{' && l.[String.length l - 1] = '}'))
    lines;
  (* identical registries render identically *)
  let o2 = Obs.create ~capacity:8 () in
  Obs.incr o2 "txn.commit.ro";
  Obs.observe o2 "lat.txn.ro" 0.001;
  Obs.gauge_set o2 "net.queue.node0" 2;
  Obs.emit o2 ~at:0.5 (Obs.Txn_commit { txn = "t<0,1>"; node = 0; ro = true });
  Alcotest.(check string) "deterministic rendering" m (Obs.metrics_json o2)

(* ---------- trace-driven assertions over a real SSS run ---------- *)

let run_sss ~observe ~seed =
  let sim = Sim.create () in
  let config =
    {
      Config.default with
      nodes = 3;
      replication_degree = 1;
      total_keys = 24;
      seed;
      observe;
    }
  in
  let cl = Kv.create sim config in
  let ops =
    {
      Sss_workload.Driver.begin_txn = (fun ~node ~read_only -> Kv.begin_txn cl ~node ~read_only);
      read = Kv.read;
      write = Kv.write;
      commit = Kv.commit;
    }
  in
  let result =
    Sss_workload.Driver.run sim ~nodes:3 ~total_keys:24
      ~local_keys:(fun n -> Replication.keys_at cl.State.repl n)
      ~profile:(Sss_workload.Driver.paper_profile ~read_only_ratio:0.5)
      ~load:
        {
          Sss_workload.Driver.default_load with
          clients_per_node = 4;
          warmup = 0.005;
          duration = 0.04;
          seed;
        }
      ~ops
  in
  (sim, cl, result)

let obs_exn cl =
  match Kv.obs cl with
  | Some o -> o
  | None -> Alcotest.fail "observe=true but no sink attached"

let test_traced_run_events () =
  let _, cl, result = run_sss ~observe:true ~seed:7 in
  let o = obs_exn cl in
  Alcotest.(check bool) "made progress" true (result.Sss_workload.Driver.committed > 50);
  Alcotest.(check bool) "ran read-only transactions" true (Obs.counter o "txn.begin.ro" > 0);
  let events = Obs.events o in
  Alcotest.(check bool) "trace retained events" true (events <> []);
  (* the paper's headline property, visible in the trace: no read-only
     transaction ever aborts *)
  List.iter
    (fun (s : Obs.stamped) ->
      match s.event with
      | Obs.Txn_abort { ro = true; txn; _ } ->
          Alcotest.fail (Printf.sprintf "read-only transaction %s aborted" txn)
      | _ -> ())
    events;
  (* vclock advances are strictly monotone per node *)
  let last = Array.make 3 min_int in
  List.iter
    (fun (s : Obs.stamped) ->
      match s.event with
      | Obs.Vclock_advance { node; value } ->
          if value <= last.(node) then
            Alcotest.fail
              (Printf.sprintf "vclock on node %d went %d -> %d" node last.(node) value);
          last.(node) <- value
      | _ -> ())
    events;
  Alcotest.(check bool) "saw vclock advances" true (Array.exists (fun v -> v > 0) last);
  (* sequence numbers are the emission order *)
  ignore
    (List.fold_left
       (fun prev (s : Obs.stamped) ->
         Alcotest.(check bool) "seq strictly increasing" true (s.seq > prev);
         s.seq)
       (-1) events);
  (* every park is matched by an unpark before quiescence *)
  Alcotest.(check int) "park = unpark at quiescence" (Obs.counter o "sq.park")
    (Obs.counter o "sq.unpark");
  Alcotest.(check bool) "parking actually happened" true (Obs.counter o "sq.park" > 0);
  (* the observed run is still checker-clean *)
  let h = Kv.history cl in
  (match Checker.external_consistency h with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("external consistency: " ^ e));
  (match Checker.read_only_abort_free h with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("ro abort-free: " ^ e));
  match Kv.quiescent cl with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("quiescent: " ^ e)

let test_traced_run_metrics () =
  let _, cl, _ = run_sss ~observe:true ~seed:7 in
  let o = obs_exn cl in
  (* non-zero latency histograms for the protocol's message kinds *)
  List.iter
    (fun kind ->
      let name = "lat.msg." ^ kind in
      match Obs.hist o name with
      | Some h ->
          Alcotest.(check bool) (name ^ " non-empty") true (Hist.count h > 0);
          Alcotest.(check bool) (name ^ " positive mean") true (Hist.mean h > 0.0)
      | None -> Alcotest.fail (name ^ " missing"))
    [ "read_request"; "read_return"; "prepare"; "vote"; "decide"; "ack" ];
  (* per-class transaction latency *)
  List.iter
    (fun name ->
      match Obs.hist o name with
      | Some h -> Alcotest.(check bool) (name ^ " non-empty") true (Hist.count h > 0)
      | None -> Alcotest.fail (name ^ " missing"))
    [ "lat.txn.ro"; "lat.txn.update" ];
  (* sent/recv counters pair up per kind on a lossless network *)
  List.iter
    (fun kind ->
      Alcotest.(check int)
        (Printf.sprintf "sent=recv for %s" kind)
        (Obs.counter o ("msg.sent." ^ kind))
        (Obs.counter o ("msg.recv." ^ kind)))
    [ "prepare"; "vote"; "decide"; "read_request"; "read_return" ];
  (* queue-depth gauges were sampled for every node *)
  let gauges = Obs.gauges o in
  List.iter
    (fun n ->
      let name = Printf.sprintf "net.queue.node%d" n in
      Alcotest.(check bool) (name ^ " present") true (List.mem_assoc name gauges))
    [ 0; 1; 2 ];
  (* the metrics JSON carries it all *)
  match Kv.metrics_json cl with
  | None -> Alcotest.fail "metrics_json absent"
  | Some json ->
      List.iter
        (fun needle ->
          Alcotest.(check bool) ("metrics has " ^ needle) true
            (contains ~needle json))
        [ "lat.msg.prepare"; "lat.txn.ro"; "txn.commit.ro"; "vclock.advance"; "\"trace\"" ]

(* ---------- the observer-effect contract ---------- *)

let test_observer_effect_zero () =
  let sim_off, cl_off, r_off = run_sss ~observe:false ~seed:13 in
  let sim_on, cl_on, r_on = run_sss ~observe:true ~seed:13 in
  Alcotest.(check (option unit)) "observe=false allocates no sink" None
    (Option.map ignore (Kv.obs cl_off));
  Alcotest.(check int) "same DES event count" (Sim.events_processed sim_off)
    (Sim.events_processed sim_on);
  Alcotest.(check (float 0.0)) "same virtual end time" (Sim.now sim_off) (Sim.now sim_on);
  Alcotest.(check int) "same committed" r_off.Sss_workload.Driver.committed
    r_on.Sss_workload.Driver.committed;
  Alcotest.(check int) "same aborted" r_off.Sss_workload.Driver.aborted
    r_on.Sss_workload.Driver.aborted;
  let verdict cl =
    let h = Kv.history cl in
    ( Result.is_ok (Checker.external_consistency h),
      Result.is_ok (Checker.serializability h),
      Result.is_ok (Checker.no_lost_updates h),
      Result.is_ok (Checker.read_only_abort_free h) )
  in
  Alcotest.(check (pair (pair bool bool) (pair bool bool)))
    "same checker verdicts"
    (let a, b, c, d = verdict cl_off in
     ((a, b), (c, d)))
    (let a, b, c, d = verdict cl_on in
     ((a, b), (c, d)))

let test_observed_runs_deterministic () =
  let metrics seed =
    let _, cl, _ = run_sss ~observe:true ~seed in
    match Kv.metrics_json cl with Some m -> m | None -> Alcotest.fail "no metrics"
  in
  Alcotest.(check string) "same seed => identical metrics JSON" (metrics 21) (metrics 21);
  Alcotest.(check bool) "different seed => different metrics" true
    (metrics 21 <> metrics 22)

let () =
  Alcotest.run "obs"
    [
      ( "hist",
        [
          Alcotest.test_case "bucket boundaries" `Quick test_hist_buckets;
          Alcotest.test_case "count/sum/mean/min/max" `Quick test_hist_stats;
          Alcotest.test_case "percentiles" `Quick test_hist_percentile;
          Alcotest.test_case "merge" `Quick test_hist_merge;
          QCheck_alcotest.to_alcotest prop_count_preserved;
          QCheck_alcotest.to_alcotest prop_bucket_monotone;
          QCheck_alcotest.to_alcotest prop_merge_is_concat;
        ] );
      ( "ring",
        [
          Alcotest.test_case "below capacity" `Quick test_ring_basic;
          Alcotest.test_case "wraparound" `Quick test_ring_wraparound;
          Alcotest.test_case "counters and gauges" `Quick test_counters_and_gauges;
          Alcotest.test_case "json shapes" `Quick test_json_shapes;
        ] );
      ( "traced-run",
        [
          Alcotest.test_case "event stream invariants" `Quick test_traced_run_events;
          Alcotest.test_case "metrics registry" `Quick test_traced_run_metrics;
        ] );
      ( "observer-effect",
        [
          Alcotest.test_case "observe on/off: identical trajectory" `Quick
            test_observer_effect_zero;
          Alcotest.test_case "observed runs are deterministic" `Quick
            test_observed_runs_deterministic;
        ] );
    ]
